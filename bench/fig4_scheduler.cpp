//===- bench/fig4_scheduler.cpp - Fig. 4 panel: CPU Scheduler ------------------===//
///
/// \file
/// Reproduces the "CPU Scheduler" panel of Fig. 4: per-benchmark synthesis
/// time split into SyGuS (assumption generation) and TSL (reactive
/// synthesis), compared against the minimum-realizability-core oracle.
///
//===----------------------------------------------------------------------===//

#include "Fig4Common.h"

int main(int argc, char **argv) {
  return temos::runFig4Family("CPU Scheduler", argc, argv);
}
