//===- bench/ablation_consistency.cpp - Powerset vs minimal cores ---------===//
///
/// \file
/// Sec. 4.2 enumerates the full powerset of predicate literals (O(2^n)
/// SMT queries) and adds an assumption per unsatisfiable subset. This
/// ablation compares that against minimal-core mode (supersets of known
/// cores are skipped): SMT query counts, assumption counts, and whether
/// the final realizability verdict is unaffected.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"

#include <cstdio>

using namespace temos;

int main() {
  std::printf("=== Ablation: consistency checking, powerset vs minimal "
              "cores (Sec. 4.2) ===\n\n");
  std::printf("%-16s | %8s %8s | %8s %8s | %s\n", "Benchmark", "full-q",
              "full-psi", "min-q", "min-psi", "verdicts");

  size_t Agreements = 0, Count = 0;
  size_t FullQueries = 0, MinQueries = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    // The heavyweight music row would dominate the ablation's wall time
    // (4 full runs) without changing the aggregate comparison.
    if (std::string(B.Name) == "Multi-effect") {
      std::printf("%-16s | skipped (heavyweight row; see bench/table1)\n",
                  B.Name);
      continue;
    }
    PipelineOptions Full;
    Full.Consistency.MinimalCoresOnly = false;
    BenchmarkRun FullRun = runBenchmark(B, Full);

    PipelineOptions Minimal;
    Minimal.Consistency.MinimalCoresOnly = true;
    BenchmarkRun MinRun = runBenchmark(B, Minimal);

    bool Agree = FullRun.Row.Status == MinRun.Row.Status;
    Agreements += Agree;
    ++Count;
    FullQueries += FullRun.Result.Stats.ConsistencyQueries;
    MinQueries += MinRun.Result.Stats.ConsistencyQueries;

    std::printf("%-16s | %8zu %8zu | %8zu %8zu | %s\n", B.Name,
                FullRun.Result.Stats.ConsistencyQueries,
                FullRun.Result.ConsistencyAssumptions.size(),
                MinRun.Result.Stats.ConsistencyQueries,
                MinRun.Result.ConsistencyAssumptions.size(),
                Agree ? "agree" : "DISAGREE");
  }

  std::printf("\ntotal SMT queries: full %zu, minimal %zu\n", FullQueries,
              MinQueries);
  std::printf("verdict agreement: %zu/%zu\n", Agreements, Count);
  return Agreements == Count ? 0 : 1;
}
