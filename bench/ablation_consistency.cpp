//===- bench/ablation_consistency.cpp - Powerset vs minimal cores ---------===//
///
/// \file
/// Sec. 4.2 enumerates the full powerset of predicate literals (O(2^n)
/// SMT queries) and adds an assumption per unsatisfiable subset. This
/// ablation compares that against minimal-core mode (supersets of known
/// cores are skipped): SMT query counts, assumption counts, and whether
/// the final realizability verdict is unaffected.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace temos;

namespace {

/// Renders a consistency result to one comparable string.
std::string renderAssumptions(const ConsistencyResult &R) {
  std::string Out;
  for (const Formula *A : R.Assumptions)
    Out += A->str() + "\n";
  return Out;
}

/// Parallel solver-service ablation: sweep a many-predicate consistency
/// instance at NumThreads 1 vs 4, full powerset, cache off (so every
/// query does real solver work), and check the assumption sets match
/// byte for byte. On a multi-core host the 4-thread sweep must also be
/// faster. Returns false on a determinism or speedup violation.
bool runParallelAblation() {
  std::printf("\n=== Ablation: parallel consistency sweep, 1 vs 4 solver "
              "threads ===\n\n");

  // Find the bundled spec with the most predicate literals.
  const BenchmarkSpec *Largest = nullptr;
  size_t LargestPreds = 0;
  Context ScanCtx;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    auto Spec = parseSpecification(B.Source, ScanCtx);
    if (!Spec)
      continue;
    Decomposition D = decompose(*Spec, ScanCtx);
    if (D.PredicateLiterals.size() > LargestPreds) {
      LargestPreds = D.PredicateLiterals.size();
      Largest = &B;
    }
  }
  if (!Largest) {
    std::printf("no parseable benchmark found\n");
    return false;
  }
  std::printf("largest bundled predicate set: %s (|P| = %zu)\n",
              Largest->Name, LargestPreds);

  // The bundled sets are small (a handful of predicates), so the timed
  // sweep uses a scaled instance instead: five disjoint inequality
  // 3-cycles (a < b < c < a), 15 predicates in all. The bounded
  // powerset has ~1900 subsets with real simplex work in each, and
  // every 3-cycle (plus its in-bound supersets) is unsatisfiable, so
  // the byte-identical comparison covers a non-trivial assumption set.
  const unsigned StressGroups = 5;
  std::string StressSource = "#LIA#\ninputs { int ";
  for (unsigned G = 0; G < StressGroups; ++G)
    for (unsigned V = 0; V < 3; ++V)
      StressSource += (G + V ? ", a" : "a") + std::to_string(G * 3 + V);
  StressSource += "; }\ncells { int m = 0; }\nalways guarantee {\n";
  for (unsigned G = 0; G < StressGroups; ++G)
    for (unsigned V = 0; V < 3; ++V)
      StressSource += "  G (a" + std::to_string(G * 3 + V) + " < a" +
                      std::to_string(G * 3 + (V + 1) % 3) + " -> [m <- a" +
                      std::to_string(G * 3 + V) + "]);\n";
  StressSource += "}\n";

  Context Ctx;
  auto Spec = parseSpecification(StressSource, Ctx);
  if (!Spec) {
    std::printf("stress spec failed to parse: %s\n",
                Spec.error().str().c_str());
    return false;
  }
  Decomposition D = decompose(*Spec, Ctx);
  std::printf("scaled instance: 5 inequality 3-cycles, |P| = %zu\n",
              D.PredicateLiterals.size());

  ConsistencyOptions Sweep;
  Sweep.MinimalCoresOnly = false;
  Sweep.MaxSubsetSize = 4;

  const int Iterations = 3;
  auto timeSweep = [&](unsigned NumThreads, std::string &AssumptionsOut,
                       size_t &QueriesOut) {
    SolverService::Config C;
    C.NumThreads = NumThreads;
    C.CacheEnabled = false;
    SolverService Svc(Spec->Th, C);
    double Best = 1e100;
    for (int It = 0; It < Iterations; ++It) {
      Timer T;
      ConsistencyResult R =
          checkConsistency(D.PredicateLiterals, Spec->Th, Ctx, Sweep, &Svc);
      Best = std::min(Best, T.seconds());
      AssumptionsOut = renderAssumptions(R);
      QueriesOut = R.SolverQueries;
    }
    return Best;
  };

  std::string SerialPsi, ParallelPsi;
  size_t SerialQ = 0, ParallelQ = 0;
  double Serial = timeSweep(1, SerialPsi, SerialQ);
  double Parallel = timeSweep(4, ParallelPsi, ParallelQ);
  double Speedup = Serial / Parallel;

  std::printf("threads=1: %8.2f ms  (%zu queries)\n", Serial * 1e3, SerialQ);
  std::printf("threads=4: %8.2f ms  (%zu queries)  speedup %.2fx\n",
              Parallel * 1e3, ParallelQ, Speedup);
  bool Identical = SerialPsi == ParallelPsi;
  std::printf("assumption sets: %s (%zu assumptions)\n",
              Identical ? "byte-identical" : "MISMATCH",
              static_cast<size_t>(
                  std::count(SerialPsi.begin(), SerialPsi.end(), '\n')));

  // Wall-clock speedup is only a pass/fail criterion when the host can
  // physically exhibit one; on a single-core machine the 4-thread sweep
  // degenerates to time-sliced serial execution plus pool overhead.
  unsigned Cores = std::thread::hardware_concurrency();
  bool SpeedupOk = true;
  if (Cores >= 2) {
    SpeedupOk = Speedup > 1.0;
    std::printf("host cores: %u -> speedup check %s\n", Cores,
                SpeedupOk ? "passed" : "FAILED");
  } else {
    std::printf("host cores: %u -> speedup not measurable, check skipped\n",
                Cores);
  }

  // Cache ablation: a second identical run on one service answers from
  // the memo table.
  SolverService::Config C;
  C.NumThreads = 1;
  SolverService Svc(Spec->Th, C);
  (void)checkConsistency(D.PredicateLiterals, Spec->Th, Ctx, Sweep, &Svc);
  size_t MissesAfterFirst = Svc.cache().misses();
  (void)checkConsistency(D.PredicateLiterals, Spec->Th, Ctx, Sweep, &Svc);
  size_t Hits = Svc.cache().hits();
  std::printf("query cache: run 1 = %zu misses, run 2 = %zu hits\n",
              MissesAfterFirst, Hits);

  return Identical && SpeedupOk && Hits > 0;
}

} // namespace

int main() {
  std::printf("=== Ablation: consistency checking, powerset vs minimal "
              "cores (Sec. 4.2) ===\n\n");
  std::printf("%-16s | %8s %8s | %8s %8s | %s\n", "Benchmark", "full-q",
              "full-psi", "min-q", "min-psi", "verdicts");

  size_t Agreements = 0, Count = 0;
  size_t FullQueries = 0, MinQueries = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    // The heavyweight music row would dominate the ablation's wall time
    // (4 full runs) without changing the aggregate comparison.
    if (std::string(B.Name) == "Multi-effect") {
      std::printf("%-16s | skipped (heavyweight row; see bench/table1)\n",
                  B.Name);
      continue;
    }
    PipelineOptions Full;
    Full.Consistency.MinimalCoresOnly = false;
    BenchmarkRun FullRun = runBenchmark(B, Full);

    PipelineOptions Minimal;
    Minimal.Consistency.MinimalCoresOnly = true;
    BenchmarkRun MinRun = runBenchmark(B, Minimal);

    bool Agree = FullRun.Row.Status == MinRun.Row.Status;
    Agreements += Agree;
    ++Count;
    FullQueries += FullRun.Result.Stats.ConsistencyQueries;
    MinQueries += MinRun.Result.Stats.ConsistencyQueries;

    std::printf("%-16s | %8zu %8zu | %8zu %8zu | %s\n", B.Name,
                FullRun.Result.Stats.ConsistencyQueries,
                FullRun.Result.ConsistencyAssumptions.size(),
                MinRun.Result.Stats.ConsistencyQueries,
                MinRun.Result.ConsistencyAssumptions.size(),
                Agree ? "agree" : "DISAGREE");
  }

  std::printf("\ntotal SMT queries: full %zu, minimal %zu\n", FullQueries,
              MinQueries);
  std::printf("verdict agreement: %zu/%zu\n", Agreements, Count);

  bool ParallelOk = runParallelAblation();
  return (Agreements == Count && ParallelOk) ? 0 : 1;
}
