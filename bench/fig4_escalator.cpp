//===- bench/fig4_escalator.cpp - Fig. 4 panel: Escalator ------------------===//
///
/// \file
/// Reproduces the "Escalator" panel of Fig. 4: per-benchmark synthesis
/// time split into SyGuS (assumption generation) and TSL (reactive
/// synthesis), compared against the minimum-realizability-core oracle.
///
//===----------------------------------------------------------------------===//

#include "Fig4Common.h"

int main(int argc, char **argv) {
  return temos::runFig4Family("Escalator", argc, argv);
}
