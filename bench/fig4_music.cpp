//===- bench/fig4_music.cpp - Fig. 4 panel: Music Synthesizer ------------------===//
///
/// \file
/// Reproduces the "Music Synthesizer" panel of Fig. 4: per-benchmark synthesis
/// time split into SyGuS (assumption generation) and TSL (reactive
/// synthesis), compared against the minimum-realizability-core oracle.
///
//===----------------------------------------------------------------------===//

#include "Fig4Common.h"

int main(int argc, char **argv) {
  return temos::runFig4Family("Music Synthesizer", argc, argv);
}
