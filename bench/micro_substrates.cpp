//===- bench/micro_substrates.cpp - Substrate micro-benchmarks ------------===//
///
/// \file
/// google-benchmark micro-benchmarks of the three substrates that
/// replace the paper's external tools: the SMT simplex core (CVC4's
/// role in consistency checking), the tableau construction (tsltools'
/// TSL->automaton role), and SyGuS enumeration (CVC4's SyGuS role).
/// These quantify where pipeline time goes and back the engineering
/// notes in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#include "automata/Tableau.h"
#include "logic/Parser.h"
#include "sygus/SygusSolver.h"
#include "theory/Simplex.h"
#include "theory/SmtSolver.h"

#include <benchmark/benchmark.h>

using namespace temos;

namespace {

//===----------------------------------------------------------------------===//
// Simplex.
//===----------------------------------------------------------------------===//

void BM_SimplexChain(benchmark::State &State) {
  // x0 < x1 < ... < x(n-1) < x0: an unsat cycle forcing pivot work.
  const int N = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Simplex S;
    for (int I = 0; I < N; ++I) {
      LinearExpr E = LinearExpr::variable("x" + std::to_string(I)) -
                     LinearExpr::variable("x" + std::to_string((I + 1) % N));
      S.assertAtom({E, LinearRel::LT}, false);
    }
    benchmark::DoNotOptimize(S.check());
  }
}
BENCHMARK(BM_SimplexChain)->Arg(4)->Arg(8)->Arg(16);

void BM_SmtIntegerBranching(benchmark::State &State) {
  TermFactory TF;
  const Term *X = TF.signal("x", Sort::Int);
  const Term *TwoX = TF.apply("*", Sort::Int, {TF.numeral(2), X});
  const Term *Atom = TF.apply("=", Sort::Bool, {TwoX, TF.numeral(7)});
  for (auto _ : State) {
    SmtSolver Solver(Theory::LIA);
    benchmark::DoNotOptimize(Solver.checkLiterals({{Atom, true}}));
  }
}
BENCHMARK(BM_SmtIntegerBranching);

//===----------------------------------------------------------------------===//
// Tableau.
//===----------------------------------------------------------------------===//

void BM_TableauResponseChain(benchmark::State &State) {
  // G(p -> F q) under increasing conjunction width.
  const int N = static_cast<int>(State.range(0));
  Context Ctx;
  std::string Decl = "inputs { bool ";
  for (int I = 0; I < N; ++I)
    Decl += (I ? ", p" : "p") + std::to_string(I);
  Decl += "; } cells { int x = 0; }";
  auto Spec = parseSpecification(Decl, Ctx);
  std::string Source;
  for (int I = 0; I < N; ++I) {
    if (I)
      Source += " && ";
    Source += "G (p" + std::to_string(I) + " -> F (! p" +
              std::to_string(I) + "))";
  }
  const Formula *F = *parseFormula(Source, *Spec, Ctx);
  Alphabet AB = Alphabet::build(*Spec, Ctx, {F});
  for (auto _ : State) {
    Context Local;
    auto S2 = parseSpecification(Decl, Local);
    const Formula *F2 = *parseFormula(Source, *S2, Local);
    Alphabet AB2 = Alphabet::build(*S2, Local, {F2});
    TableauStats Stats;
    Nba A = buildNba(Local.Formulas.notF(F2), Local, AB2, &Stats);
    benchmark::DoNotOptimize(A.stateCount());
  }
}
BENCHMARK(BM_TableauResponseChain)->Arg(1)->Arg(2)->Arg(3);

//===----------------------------------------------------------------------===//
// SyGuS enumeration.
//===----------------------------------------------------------------------===//

void BM_SygusSequentialSearch(benchmark::State &State) {
  // Reach x = N from x = 0 with +1/-1/skip: candidate space 3^N.
  const int64_t N = State.range(0);
  Context Ctx;
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Inc = Ctx.Terms.apply("+", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Dec = Ctx.Terms.apply("-", Sort::Int, {X, Ctx.Terms.numeral(1)});
  SygusQuery Q;
  Q.Cells = {{"x", Sort::Int, {Inc, Dec, X}}};
  Q.Pre = {{Ctx.Terms.apply("=", Sort::Bool, {X, Ctx.Terms.numeral(0)}),
            true}};
  Q.Post = {{Ctx.Terms.apply("=", Sort::Bool, {X, Ctx.Terms.numeral(N)}),
             true}};
  for (auto _ : State) {
    SygusSolver Solver(Ctx, Theory::LIA);
    SygusStats Stats;
    auto P = Solver.synthesizeSequential(Q, static_cast<unsigned>(N), {},
                                         &Stats);
    benchmark::DoNotOptimize(P.has_value());
  }
}
BENCHMARK(BM_SygusSequentialSearch)->Arg(2)->Arg(3)->Arg(4);

void BM_SygusLoopWrapper(benchmark::State &State) {
  Context Ctx;
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Inc = Ctx.Terms.apply("+", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Dec = Ctx.Terms.apply("-", Sort::Int, {X, Ctx.Terms.numeral(1)});
  SygusQuery Q;
  Q.Cells = {{"x", Sort::Int, {Inc, Dec}}};
  Q.Pre = {{Ctx.Terms.apply("<", Sort::Bool, {X, Ctx.Terms.numeral(0)}),
            true}};
  Q.Post = {{Ctx.Terms.apply("=", Sort::Bool, {X, Ctx.Terms.numeral(0)}),
             true}};
  for (auto _ : State) {
    SygusSolver Solver(Ctx, Theory::LIA);
    auto L = Solver.synthesizeLoop(Q);
    benchmark::DoNotOptimize(L.has_value());
  }
}
BENCHMARK(BM_SygusLoopWrapper);

} // namespace

BENCHMARK_MAIN();
