//===- bench/ablation_eager_lazy.cpp - Eager vs lazy assumptions ----------===//
///
/// \file
/// The Sec. 5.2 discussion, measured: the paper argues that its *eager*
/// strategy (generate every assumption, run reactive synthesis once)
/// beats a *lazy* strategy (add assumptions one at a time, re-running
/// reactive synthesis after each) because a single reactive run
/// dominates many SyGuS queries. This ablation runs both modes on every
/// benchmark and reports times and reactive-run counts.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"

#include <cstdio>

using namespace temos;

int main() {
  std::printf("=== Ablation: eager vs lazy assumption addition "
              "(Sec. 5.2) ===\n\n");
  std::printf("%-16s | %9s %5s | %9s %5s | %s\n", "Benchmark", "eager(s)",
              "runs", "lazy(s)", "runs", "verdicts");

  double EagerTotal = 0, LazyTotal = 0;
  size_t Agreements = 0, Count = 0;
  int Failures = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    // The heavyweight music row would dominate the ablation's wall time
    // (4 full runs) without changing the aggregate comparison.
    if (std::string(B.Name) == "Multi-effect") {
      std::printf("%-16s | skipped (heavyweight row; see bench/table1)\n",
                  B.Name);
      continue;
    }
    PipelineOptions Eager;
    BenchmarkRun EagerRun = runBenchmark(B, Eager);

    PipelineOptions Lazy;
    Lazy.Eager = false;
    BenchmarkRun LazyRun = runBenchmark(B, Lazy);

    double EagerTime = EagerRun.Row.SumSeconds;
    double LazyTime = LazyRun.Row.SumSeconds;
    EagerTotal += EagerTime;
    LazyTotal += LazyTime;
    bool Agree = EagerRun.Row.Status == LazyRun.Row.Status;
    Agreements += Agree;
    ++Count;
    bool EagerOk = EagerRun.Row.Status == Realizability::Realizable;
    Failures += EagerOk ? 0 : 1;

    std::printf("%-16s | %9.3f %5u | %9.3f %5u | %s\n", B.Name, EagerTime,
                EagerRun.Result.Stats.ReactiveRuns, LazyTime,
                LazyRun.Result.Stats.ReactiveRuns,
                Agree ? "agree" : "DISAGREE");
    if (!Agree && EagerOk)
      std::printf("%-16s | (lazy mode adds assumptions without the Alg. 4 "
                  "refinement loop, so specs that need refined programs -- "
                  "like CFS -- fail lazily)\n",
                  "");
  }

  std::printf("\ntotals: eager %.3fs, lazy %.3fs (lazy/eager = %.2fx)\n",
              EagerTotal, LazyTotal,
              EagerTotal > 0 ? LazyTotal / EagerTotal : 0);
  std::printf("verdict agreement: %zu/%zu\n", Agreements, Count);
  if (LazyTotal < EagerTotal)
    std::printf("note: lazy is *faster* here, inverting the paper's "
                "Sec. 5.2 expectation -- our reactive engine pays so much "
                "for extra assumptions that fewer, later-added assumptions "
                "win despite repeated synthesis runs. With Strix (nearly "
                "assumption-insensitive, one expensive run) the paper's "
                "argument holds.\n");
  return Failures == 0 ? 0 : 1;
}
