//===- bench/table1.cpp - Reproduces Table 1 ------------------------------===//
///
/// \file
/// Regenerates Table 1 of the paper: for all 16 benchmarks, the spec
/// size |phi|, the number of unique predicate terms |P| and update terms
/// |F|, the number of generated assumptions |psi|, the psi-generation
/// time, the TSL (reactive) synthesis time, their sum, and the lines of
/// generated JavaScript.
///
/// Absolute numbers differ from the paper (different machine; our
/// reactive engine is bounded synthesis rather than Strix; the specs are
/// re-authored, see DESIGN.md). The shape claims checked at the end are
/// the ones EXPERIMENTS.md tracks.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/BenchJson.h"
#include "benchmarks/Runner.h"

#include <cstdio>
#include <cstring>

using namespace temos;

namespace {

/// Table 1 of the paper, for side-by-side comparison.
struct PaperRow {
  const char *Name;
  double PsiGen, Synth, Sum;
  int Loc;
};
const PaperRow PaperRows[] = {
    {"Vibrato", 0.431, 0.914, 1.345, 206},
    {"Modulation", 2.012, 3.983, 5.995, 1352},
    {"Intertwined", 2.157, 3.178, 5.335, 1366},
    {"Multi-effect", 3.145, 81.470, 84.615, 1463},
    {"Single-Player", 0.043, 0.571, 0.614, 169},
    {"Two-Player", 0.181, 0.625, 0.806, 195},
    {"Bouncing", 0.418, 0.808, 1.226, 169},
    {"Automatic", 0.541, 0.988, 1.529, 214},
    {"Simple", 0.011, 0.434, 0.445, 166},
    {"Counting", 0.100, 0.592, 0.692, 241},
    {"Bidirectional", 0.340, 2.291, 1.121, 279},
    {"Smart", 3.034, 0.935, 3.969, 179},
    {"Round Robin", 0.149, 0.740, 0.889, 252},
    {"Load Balancer", 0.531, 2.128, 1.345, 208},
    {"Preemptive", 0.548, 0.765, 1.313, 356},
    {"CFS", 0.533, 2.443, 2.976, 2825},
};

} // namespace

int main(int argc, char **argv) {
  // --bench-json[=DIR]: also write one temos-bench-v1 record per row.
  bool BenchJsonWanted = false;
  std::string BenchJsonDir;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--bench-json") == 0) {
      BenchJsonWanted = true;
    } else if (std::strncmp(argv[I], "--bench-json=", 13) == 0) {
      BenchJsonWanted = true;
      BenchJsonDir = argv[I] + 13;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json[=DIR]]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Table 1: Experimental Results (measured) ===\n\n");
  std::vector<BenchmarkRow> Rows;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    // With --bench-json the pipeline runs twice on one Synthesizer so
    // the record includes the cross-run reuse the incremental engine
    // delivers (the Table-1 row still reports the first, cold run).
    BenchmarkRun Run = runBenchmark(B, {}, BenchJsonWanted ? 2u : 1u);
    Rows.push_back(Run.Row);
    if (BenchJsonWanted) {
      size_t States =
          Run.Result.Machine ? Run.Result.Machine->stateCount() : 0;
      const PipelineStats *Repeat =
          Run.RepeatStats.empty() ? nullptr : &Run.RepeatStats.back();
      std::string Json =
          benchJson(B.Name, Run.Result.Status, 1, true, Run.Result.Stats,
                    States, Run.Row.SynthesizedLoc, Repeat);
      std::string Written = writeBenchJson(BenchJsonDir, B.Name, Json);
      if (Written.empty())
        std::fprintf(stderr, "warning: cannot write bench JSON for %s\n",
                     B.Name);
    }
  }
  std::printf("%s\n", formatTable(Rows).c_str());

  std::printf("=== Paper reference (Xeon E-2286M, Strix+CVC4 backends) "
              "===\n");
  std::printf("%-16s %10s %9s %8s %6s\n", "Benchmark", "psi-gen(s)",
              "synth(s)", "sum(s)", "LoC");
  for (const PaperRow &R : PaperRows)
    std::printf("%-16s %10.3f %9.3f %8.3f %6d\n", R.Name, R.PsiGen, R.Synth,
                R.Sum, R.Loc);

  // Shape checks (EXPERIMENTS.md items).
  std::printf("\n=== Shape checks ===\n");
  int Failures = 0;
  auto Check = [&](bool Ok, const char *What) {
    std::printf("  [%s] %s\n", Ok ? "ok" : "FAIL", What);
    Failures += Ok ? 0 : 1;
  };

  bool AllRealizable = true;
  for (const BenchmarkRow &R : Rows)
    AllRealizable &= R.Status == Realizability::Realizable;
  Check(AllRealizable, "all 16 benchmarks synthesize");

  size_t SynthDominates = 0;
  for (const BenchmarkRow &R : Rows)
    SynthDominates += R.SynthesisSeconds >= R.PsiGenSeconds;
  Check(SynthDominates * 2 >= Rows.size(),
        "reactive synthesis time dominates psi generation on most rows");

  double MusicMax = 0;
  std::string MusicSlowest;
  for (const BenchmarkRow &R : Rows)
    if (R.Family == std::string("Music Synthesizer") &&
        R.SumSeconds > MusicMax) {
      MusicMax = R.SumSeconds;
      MusicSlowest = R.Name;
    }
  Check(MusicSlowest == "Multi-effect",
        "Multi-effect is the slowest music benchmark");

  size_t MaxLoc = 0;
  std::string Biggest;
  for (const BenchmarkRow &R : Rows)
    if (R.SynthesizedLoc > MaxLoc) {
      MaxLoc = R.SynthesizedLoc;
      Biggest = R.Name;
    }
  Check(Biggest == "CFS", "CFS produces the largest synthesized program");

  return Failures == 0 ? 0 : 1;
}
