//===- bench/Fig4Common.h - Shared Fig. 4 harness --------------*- C++ -*-===//
///
/// \file
/// The Fig. 4 comparison, shared by the four per-family binaries: for
/// each benchmark, plot (as text) the TSL reactive-synthesis time, the
/// SyGuS assumption-generation time stacked below it, and the oracle's
/// synthesis time on the minimum realizability core (Sec. 5.2). The
/// paper's claim -- temos is at worst a small multiple of the oracle --
/// is checked per family.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_BENCH_FIG4COMMON_H
#define TEMOS_BENCH_FIG4COMMON_H

#include "benchmarks/BenchJson.h"
#include "benchmarks/Runner.h"
#include "core/AssumptionCore.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace temos {

/// Runs the Fig. 4 panel for \p Family. The argv vector (forwarded from
/// main) may carry --bench-json[=DIR] to also write one temos-bench-v1
/// record per benchmark. Returns the process exit code.
inline int runFig4Family(const std::string &Family, int argc = 0,
                         char **argv = nullptr) {
  bool BenchJsonWanted = false;
  std::string BenchJsonDir;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--bench-json") == 0) {
      BenchJsonWanted = true;
    } else if (std::strncmp(argv[I], "--bench-json=", 13) == 0) {
      BenchJsonWanted = true;
      BenchJsonDir = argv[I] + 13;
    } else {
      std::fprintf(stderr, "usage: %s [--bench-json[=DIR]]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Fig. 4 (%s): synthesis times vs oracle ===\n\n",
              Family.c_str());
  std::printf("%-14s %10s %10s %10s %12s %7s\n", "Benchmark", "SyGuS(s)",
              "TSL(s)", "total(s)", "oracle(s)", "ratio");

  int Failures = 0;
  double WorstRatio = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    if (Family != B.Family)
      continue;
    BenchmarkRun Run = runBenchmark(B);
    if (BenchJsonWanted) {
      size_t States =
          Run.Result.Machine ? Run.Result.Machine->stateCount() : 0;
      std::string Json =
          benchJson(B.Name, Run.Result.Status, 1, true, Run.Result.Stats,
                    States, Run.Row.SynthesizedLoc);
      if (writeBenchJson(BenchJsonDir, B.Name, Json).empty())
        std::fprintf(stderr, "warning: cannot write bench JSON for %s\n",
                     B.Name);
    }
    if (Run.Row.Status != Realizability::Realizable) {
      std::printf("%-14s synthesis FAILED\n", B.Name);
      ++Failures;
      continue;
    }
    // Greedy core minimization costs |psi|+2 realizability checks, each
    // comparable to one synthesis run; for the heavyweight rows we keep
    // the bench bounded by timing the oracle on the full assumption set
    // (an upper bound on the true oracle, so the reported ratio is a
    // lower bound -- stated in the output).
    const double SkipMinimizationAboveSeconds = 45.0;
    bool SkipMinimization =
        Run.Row.SynthesisSeconds > SkipMinimizationAboveSeconds;
    OracleResult Oracle;
    if (SkipMinimization) {
      Timer OracleTimer;
      Synthesizer Synth(*Run.Ctx);
      const Formula *Phi =
          Synth.formulaWithAssumptions(Run.Spec, Run.Result.Assumptions);
      std::vector<const Formula *> ForAlphabet = Run.Result.Assumptions;
      ForAlphabet.push_back(Phi);
      Alphabet AB = Alphabet::build(Run.Spec, *Run.Ctx, ForAlphabet);
      synthesizeLtl(Phi, *Run.Ctx, AB);
      Oracle.Status = Realizability::Realizable;
      Oracle.Core = Run.Result.Assumptions;
      Oracle.OracleSynthesisSeconds = OracleTimer.seconds();
    } else {
      Oracle = computeOracle(Run.Spec, Run.Result.Assumptions, *Run.Ctx);
    }
    double Total = Run.Row.SumSeconds;
    double OracleTime = Oracle.OracleSynthesisSeconds;
    double Ratio = OracleTime > 0 ? Total / OracleTime : 0;
    // Sub-millisecond rows make the ratio meaningless; the shape claim
    // is about *affordable overhead*, so rows with small absolute
    // overhead are excluded from the worst-ratio tracking.
    if (Total - OracleTime > 2.0)
      WorstRatio = std::max(WorstRatio, Ratio);
    std::printf("%-14s %10.3f %10.3f %10.3f %12.3f %6.2fx\n", B.Name,
                Run.Row.PsiGenSeconds, Run.Row.SynthesisSeconds, Total,
                OracleTime, Ratio);
    if (SkipMinimization)
      std::printf("               (core minimization skipped above %.0fs; "
                  "oracle timed on the full set => ratio is a lower "
                  "bound)\n",
                  SkipMinimizationAboveSeconds);
    else
      std::printf("               core: %zu of %zu assumptions needed "
                  "(%zu realizability checks, %.3fs minimization)\n",
                  Oracle.Core.size(), Run.Result.Assumptions.size(),
                  Oracle.RealizabilityChecks, Oracle.MinimizationSeconds);
  }

  std::printf("\nworst temos/oracle ratio in family (rows with > 2s "
              "overhead): %.2fx\n",
              WorstRatio);
  // The paper reports at-worst ~2x, crediting Strix's lazy state-space
  // construction for shrugging off superfluous assumptions. Our bounded
  // synthesis engine is far more sensitive to them, so the measured
  // ratios can exceed the paper's on rows where the generated set is
  // much larger than the core -- a documented substitution deviation
  // (EXPERIMENTS.md). The bench verdict therefore only fails on
  // synthesis failures; the ratios are reported for the comparison.
  if (WorstRatio > 2)
    std::printf("note: ratio exceeds the paper's ~2x regime -- see "
                "EXPERIMENTS.md on the Strix substitution\n");
  return Failures == 0 ? 0 : 1;
}

} // namespace temos

#endif // TEMOS_BENCH_FIG4COMMON_H
