//===- bench/fig4_pong.cpp - Fig. 4 panel: Pong ------------------===//
///
/// \file
/// Reproduces the "Pong" panel of Fig. 4: per-benchmark synthesis
/// time split into SyGuS (assumption generation) and TSL (reactive
/// synthesis), compared against the minimum-realizability-core oracle.
///
//===----------------------------------------------------------------------===//

#include "Fig4Common.h"

int main(int argc, char **argv) {
  return temos::runFig4Family("Pong", argc, argv);
}
