//===- tests/support/QueryCacheTest.cpp - Query cache unit tests ----------===//

#include "support/QueryCache.h"
#include "support/SolverPool.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace temos;

namespace {

TEST(QueryCache, MissThenHit) {
  QueryCache Cache;
  EXPECT_FALSE(Cache.lookup("k").has_value());
  EXPECT_EQ(Cache.misses(), 1u);

  Cache.insert("k", 7);
  std::optional<int> Verdict = Cache.lookup("k");
  ASSERT_TRUE(Verdict.has_value());
  EXPECT_EQ(*Verdict, 7);
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(QueryCache, InsertIsLastWriterWins) {
  // Concurrent writers for one key computed the same verdict, so the
  // overwrite is benign; sequentially, the latest insert sticks.
  QueryCache Cache;
  Cache.insert("k", 1);
  Cache.insert("k", 2);
  std::optional<int> Verdict = Cache.lookup("k");
  ASSERT_TRUE(Verdict.has_value());
  EXPECT_EQ(*Verdict, 2);
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(QueryCache, ClearResetsEverything) {
  QueryCache Cache;
  Cache.insert("k", 1);
  (void)Cache.lookup("k");
  (void)Cache.lookup("missing");
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
  EXPECT_EQ(Cache.hits(), 0u);
  EXPECT_EQ(Cache.misses(), 0u);
}

TEST(QueryCache, CanonicalKeyIsOrderInvariant) {
  // The same literal set in any order must produce the same key: the
  // consistency checker enumerates subsets in mask order while SyGuS
  // verifiers build conjunctions in chain order.
  std::string A = QueryCache::canonicalKey(
      "lits/LIA", {{"(x < y)", true}, {"(y < x)", true}});
  std::string B = QueryCache::canonicalKey(
      "lits/LIA", {{"(y < x)", true}, {"(x < y)", true}});
  EXPECT_EQ(A, B);
}

TEST(QueryCache, CanonicalKeySeparatesPolarity) {
  // (p, true) and (p, false) are different literals.
  std::string Pos = QueryCache::canonicalKey("lits/LIA", {{"(x < y)", true}});
  std::string Neg = QueryCache::canonicalKey("lits/LIA", {{"(x < y)", false}});
  EXPECT_NE(Pos, Neg);
}

TEST(QueryCache, CanonicalKeySeparatesTheories) {
  std::string Lia = QueryCache::canonicalKey("lits/LIA", {{"(x = y)", true}});
  std::string Uf = QueryCache::canonicalKey("lits/UF", {{"(x = y)", true}});
  EXPECT_NE(Lia, Uf);
}

TEST(QueryCache, CanonicalKeyDeduplicatesLiterals) {
  // {l, l} and {l} are the same conjunction.
  std::string Twice = QueryCache::canonicalKey(
      "lits/LIA", {{"(x < y)", true}, {"(x < y)", true}});
  std::string Once = QueryCache::canonicalKey("lits/LIA", {{"(x < y)", true}});
  EXPECT_EQ(Twice, Once);
}

TEST(QueryCache, CanonicalKeyResistsConcatenationCollisions) {
  // Length-prefixed joining: {"ab", "c"} must not collide with
  // {"a", "bc"} even though the concatenations agree.
  std::string AbC =
      QueryCache::canonicalKey("t", {{"ab", true}, {"c", true}});
  std::string ABc =
      QueryCache::canonicalKey("t", {{"a", true}, {"bc", true}});
  EXPECT_NE(AbC, ABc);
}

TEST(QueryCache, EvictsLeastRecentlyUsedAtCapacity) {
  QueryCache Cache(2);
  EXPECT_EQ(Cache.capacity(), 2u);
  Cache.insert("a", 1);
  Cache.insert("b", 2);
  // Touch "a" so "b" becomes the LRU entry.
  EXPECT_TRUE(Cache.lookup("a").has_value());
  Cache.insert("c", 3);
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_TRUE(Cache.lookup("a").has_value());
  EXPECT_TRUE(Cache.lookup("c").has_value());
  EXPECT_FALSE(Cache.lookup("b").has_value());
}

TEST(QueryCache, ReinsertRefreshesRecencyWithoutEvicting) {
  QueryCache Cache(2);
  Cache.insert("a", 1);
  Cache.insert("b", 2);
  // Overwriting "a" must not evict anything and must move "a" to the
  // front, so the next insert evicts "b".
  Cache.insert("a", 9);
  EXPECT_EQ(Cache.evictions(), 0u);
  Cache.insert("c", 3);
  EXPECT_FALSE(Cache.lookup("b").has_value());
  std::optional<int> A = Cache.lookup("a");
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(*A, 9);
}

TEST(QueryCache, ZeroCapacityMeansUnbounded) {
  QueryCache Cache(0);
  for (int I = 0; I < 1000; ++I)
    Cache.insert("k" + std::to_string(I), I);
  EXPECT_EQ(Cache.size(), 1000u);
  EXPECT_EQ(Cache.evictions(), 0u);
}

TEST(QueryCache, ClearResetsEvictions) {
  QueryCache Cache(1);
  Cache.insert("a", 1);
  Cache.insert("b", 2);
  EXPECT_EQ(Cache.evictions(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.evictions(), 0u);
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(QueryCache, ConcurrentUseUnderCapacityPressureStaysCoherent) {
  // Eviction under contention: counts stay coherent and every lookup
  // that hits returns the verdict originally stored for that key.
  QueryCache Cache(4);
  SolverPool Pool(4);
  std::atomic<int> Bad{0};
  Pool.forEach(256, [&](size_t I) {
    std::string Key = "k" + std::to_string(I % 16);
    if (std::optional<int> Verdict = Cache.lookup(Key)) {
      if (*Verdict != int(I % 16))
        ++Bad;
    } else {
      Cache.insert(Key, int(I % 16));
    }
  });
  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Cache.hits() + Cache.misses(), 256u);
  EXPECT_LE(Cache.size(), 4u);
}

TEST(QueryCache, ConcurrentMixedUseKeepsCountsConsistent) {
  // Hammer one cache from a pool: every lookup is either a hit or a
  // miss, and the stored verdict for a key never changes.
  QueryCache Cache;
  SolverPool Pool(4);
  std::atomic<int> Bad{0};
  Pool.forEach(64, [&](size_t I) {
    std::string Key = "k" + std::to_string(I % 8);
    if (std::optional<int> Verdict = Cache.lookup(Key)) {
      if (*Verdict != int(I % 8))
        ++Bad;
    } else {
      Cache.insert(Key, int(I % 8));
    }
  });
  EXPECT_EQ(Bad.load(), 0);
  EXPECT_EQ(Cache.hits() + Cache.misses(), 64u);
  EXPECT_LE(Cache.size(), 8u);
}

} // namespace
