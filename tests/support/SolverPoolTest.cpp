//===- tests/support/SolverPoolTest.cpp - Pool + deadline unit tests ------===//
///
/// \file
/// Regression tests for the two support-layer robustness guarantees the
/// pipeline leans on: a worker exception must never reach
/// std::terminate (it is captured and rethrown deterministically,
/// smallest submission ticket first, at wait()), and the Deadline token
/// must behave identically across copies, combinations, and the unarmed
/// fast path.
///
//===----------------------------------------------------------------------===//

#include "support/Deadline.h"
#include "support/SolverPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

using namespace temos;

namespace {

//===----------------------------------------------------------------------===//
// SolverPool exception safety
//===----------------------------------------------------------------------===//

/// Submits \p N tasks of which those with index in \p ThrowAt throw, and
/// returns the message of the exception wait() surfaces ("" when none).
/// Tasks finish in scrambled order on purpose (later tickets sleep
/// less), so a nondeterministic "first to fail wins" implementation
/// would be caught.
std::string surfacedError(unsigned Width, unsigned N,
                          std::vector<unsigned> ThrowAt,
                          std::atomic<unsigned> *Ran = nullptr) {
  SolverPool Pool(Width);
  // The try wraps submit() too: an inline pool (width 1) runs tasks in
  // submission order and throws out of submit() itself -- that natural
  // propagation is the reference behavior the pooled capture mimics.
  try {
    for (unsigned I = 0; I < N; ++I) {
      bool Throws =
          std::find(ThrowAt.begin(), ThrowAt.end(), I) != ThrowAt.end();
      Pool.submit([I, N, Throws, Ran] {
        std::this_thread::sleep_for(std::chrono::microseconds((N - I) * 100));
        if (Ran)
          Ran->fetch_add(1);
        if (Throws)
          throw std::runtime_error("task " + std::to_string(I));
      });
    }
    Pool.wait();
  } catch (const std::runtime_error &E) {
    return E.what();
  }
  return "";
}

TEST(SolverPool, WorkerExceptionDoesNotTerminate) {
  // Before the capture fix this reached std::terminate inside the
  // worker thread and took the whole test binary down.
  EXPECT_EQ(surfacedError(4, 8, {5}), "task 5");
}

TEST(SolverPool, SmallestTicketWinsAcrossWidths) {
  // Multiple failures: every pool width must surface the same one --
  // the earliest submitted -- exactly like an inline pool would.
  for (unsigned Width : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(surfacedError(Width, 16, {11, 3, 7}), "task 3")
        << "width " << Width;
  }
}

TEST(SolverPool, RemainingTasksStillRunAfterThrow) {
  std::atomic<unsigned> Ran{0};
  EXPECT_EQ(surfacedError(4, 12, {0}, &Ran), "task 0");
  // The throwing task still counts itself before throwing; every other
  // task must have run to completion rather than being abandoned.
  EXPECT_EQ(Ran.load(), 12u);
}

TEST(SolverPool, PoolIsReusableAfterRethrow) {
  SolverPool Pool(2);
  Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Pool.wait(), std::runtime_error);

  // A captured-and-rethrown exception must not poison the pool.
  std::atomic<unsigned> Ran{0};
  for (unsigned I = 0; I < 8; ++I)
    Pool.submit([&Ran] { Ran.fetch_add(1); });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 8u);
}

TEST(SolverPool, InlinePoolPropagatesNaturally) {
  // Width 1 spawns no workers; the throw propagates out of submit()
  // itself, which is the reference behavior the pooled rethrow mimics.
  SolverPool Pool(1);
  EXPECT_EQ(Pool.workerCount(), 0u);
  EXPECT_THROW(Pool.submit([] { throw std::runtime_error("inline"); }),
               std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Deadline token
//===----------------------------------------------------------------------===//

TEST(Deadline, UnarmedNeverExpires) {
  Deadline D;
  EXPECT_FALSE(D.armed());
  EXPECT_FALSE(D.expired());
  EXPECT_NO_THROW(D.check());
  EXPECT_TRUE(std::isinf(D.remainingSeconds()));
  D.cancel(); // no-op, not a crash
  EXPECT_FALSE(D.expired());
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after(0).expired());
  EXPECT_TRUE(Deadline::after(-1).expired());
  EXPECT_THROW(Deadline::after(0).check(), DeadlineExpired);
}

TEST(Deadline, CopiesShareOneState) {
  Deadline A = Deadline::after(3600);
  Deadline B = A;
  EXPECT_FALSE(B.expired());
  A.cancel();
  EXPECT_TRUE(B.expired());
  EXPECT_THROW(B.check(), DeadlineExpired);
}

TEST(Deadline, EarlierPrefersArmedAndSooner) {
  Deadline Unarmed;
  Deadline Long = Deadline::after(3600);
  Deadline Short = Deadline::after(0.001);

  EXPECT_FALSE(Deadline::earlier(Unarmed, Unarmed).armed());
  EXPECT_TRUE(Deadline::earlier(Unarmed, Long).armed());
  EXPECT_TRUE(Deadline::earlier(Long, Unarmed).armed());

  // The combined token shares state with the sooner input: cancelling
  // the short one trips the combination.
  Deadline Combined = Deadline::earlier(Long, Short);
  Short.cancel();
  EXPECT_TRUE(Combined.expired());
  EXPECT_FALSE(Long.expired());
}

TEST(Deadline, ClockExpiryTripsEveryCopy) {
  Deadline A = Deadline::after(0.01);
  Deadline B = A;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(A.expired());
  EXPECT_TRUE(B.expired());
  EXPECT_LE(B.remainingSeconds(), 0.0);
}

TEST(Deadline, CrossThreadCancellationIsSeen) {
  Deadline D = Deadline::after(3600);
  std::thread Canceller([D] { D.cancel(); });
  Canceller.join();
  EXPECT_TRUE(D.expired());
}

} // namespace
