//===- tests/support/RationalTest.cpp - Rational arithmetic tests ---------===//

#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace temos;

TEST(Rational, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_EQ(R.numerator(), 0);
  EXPECT_EQ(R.denominator(), 1);
}

TEST(Rational, CanonicalForm) {
  Rational R(4, 8);
  EXPECT_EQ(R.numerator(), 1);
  EXPECT_EQ(R.denominator(), 2);

  Rational Negative(3, -6);
  EXPECT_EQ(Negative.numerator(), -1);
  EXPECT_EQ(Negative.denominator(), 2);
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2);
  Rational Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(Rational, DivisionByNegative) {
  EXPECT_EQ(Rational(1) / Rational(-2), Rational(-1, 2));
  EXPECT_EQ(Rational(-3, 4) / Rational(-1, 2), Rational(3, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_GE(Rational(7), Rational(7));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6).floor(), 6);
  EXPECT_EQ(Rational(6).ceil(), 6);
  EXPECT_EQ(Rational(-6).floor(), -6);
}

TEST(Rational, Str) {
  EXPECT_EQ(Rational(5).str(), "5");
  EXPECT_EQ(Rational(-5).str(), "-5");
  EXPECT_EQ(Rational(1, 3).str(), "1/3");
  EXPECT_EQ(Rational(-1, 3).str(), "-1/3");
}

TEST(Rational, ParseInteger) {
  Rational R;
  ASSERT_TRUE(Rational::parse("42", R));
  EXPECT_EQ(R, Rational(42));
  ASSERT_TRUE(Rational::parse("-42", R));
  EXPECT_EQ(R, Rational(-42));
}

TEST(Rational, ParseFraction) {
  Rational R;
  ASSERT_TRUE(Rational::parse("3/4", R));
  EXPECT_EQ(R, Rational(3, 4));
  ASSERT_TRUE(Rational::parse("-3/9", R));
  EXPECT_EQ(R, Rational(-1, 3));
}

TEST(Rational, ParseDecimal) {
  Rational R;
  ASSERT_TRUE(Rational::parse("2.5", R));
  EXPECT_EQ(R, Rational(5, 2));
  ASSERT_TRUE(Rational::parse("-0.25", R));
  EXPECT_EQ(R, Rational(-1, 4));
}

TEST(Rational, ParseRejectsGarbage) {
  Rational R;
  EXPECT_FALSE(Rational::parse("", R));
  EXPECT_FALSE(Rational::parse("abc", R));
  EXPECT_FALSE(Rational::parse("1/0", R));
  EXPECT_FALSE(Rational::parse("1.2.3", R));
  EXPECT_FALSE(Rational::parse("1/", R));
}

// The overflow guard must hold in release builds too: these tests run
// identically under NDEBUG, where the previous assert-based narrowing
// compiled out and silently wrapped.
TEST(Rational, OverflowThrowsInReleaseBuilds) {
  Rational Huge(INT64_MAX);
  EXPECT_THROW(Huge + Rational(1), RationalOverflow);
  EXPECT_THROW(Huge * Rational(2), RationalOverflow);
  EXPECT_THROW(Rational(INT64_MIN) - Rational(1), RationalOverflow);
  // (2^62)/1 * (2^62)/1 overflows even after gcd reduction.
  int64_t Big = int64_t(1) << 62;
  EXPECT_THROW(Rational(Big) * Rational(Big), RationalOverflow);
  // RationalOverflow is catchable as std::overflow_error.
  EXPECT_THROW(Huge + Rational(1), std::overflow_error);
}

TEST(Rational, Int64MinEdgeCases) {
  // INT64_MIN has no int64 negation; these used to be UB, now they are
  // either exact or a clean throw.
  EXPECT_THROW(-Rational(INT64_MIN), RationalOverflow);
  EXPECT_THROW(Rational(1, INT64_MIN), RationalOverflow);
  // INT64_MIN / 2 reduces to a representable value.
  Rational R(INT64_MIN, 2);
  EXPECT_EQ(R.numerator(), INT64_MIN / 2);
  EXPECT_EQ(R.denominator(), 1);
  // INT64_MIN / -k flips sign out of range.
  EXPECT_THROW(Rational(INT64_MIN, -1), RationalOverflow);
  EXPECT_EQ(Rational(INT64_MIN).floor(), INT64_MIN);
  EXPECT_EQ(Rational(INT64_MIN).ceil(), INT64_MIN);
  EXPECT_EQ(Rational(INT64_MIN, 3).ceil(), INT64_MIN / 3);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), RationalOverflow);
  EXPECT_THROW(Rational(1) / Rational(0), RationalOverflow);
}

TEST(Rational, ParseRejectsOverflowingValues) {
  Rational R;
  // Exceeds int64 after canonicalization; parse reports malformed input
  // instead of letting the overflow escape.
  EXPECT_FALSE(Rational::parse("-9223372036854775808/-1", R));
  EXPECT_FALSE(Rational::parse("9223372036854775807.9", R));
}

TEST(Rational, NearLimitArithmeticStaysExact) {
  // Values near the limit that do NOT overflow must still be exact.
  Rational A(INT64_MAX - 1);
  EXPECT_EQ(A + Rational(1), Rational(INT64_MAX));
  EXPECT_EQ(Rational(INT64_MAX) - Rational(INT64_MAX), Rational(0));
  EXPECT_EQ(Rational(INT64_MAX) / Rational(INT64_MAX), Rational(1));
}

TEST(DeltaRational, StrictBoundOrdering) {
  // x <= 3 - delta < 3: models x < 3 exactly.
  DeltaRational StrictBelow3(Rational(3), Rational(-1));
  DeltaRational Exactly3(Rational(3));
  EXPECT_LT(StrictBelow3, Exactly3);
  EXPECT_GT(Exactly3, StrictBelow3);
}

TEST(DeltaRational, Arithmetic) {
  DeltaRational A(Rational(1), Rational(2));
  DeltaRational B(Rational(3), Rational(-1));
  DeltaRational Sum = A + B;
  EXPECT_EQ(Sum.real(), Rational(4));
  EXPECT_EQ(Sum.delta(), Rational(1));
  DeltaRational Scaled = A * Rational(3);
  EXPECT_EQ(Scaled.real(), Rational(3));
  EXPECT_EQ(Scaled.delta(), Rational(6));
}

TEST(DeltaRational, ComparesRealPartFirst) {
  DeltaRational A(Rational(1), Rational(100));
  DeltaRational B(Rational(2), Rational(-100));
  EXPECT_LT(A, B);
}
