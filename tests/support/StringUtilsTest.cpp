//===- tests/support/StringUtilsTest.cpp ----------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace temos;

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\t\nhi\r "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nochange"), "nochange");
}

TEST(StringUtils, Split) {
  auto Pieces = split("a,b,,c", ',');
  ASSERT_EQ(Pieces.size(), 4u);
  EXPECT_EQ(Pieces[0], "a");
  EXPECT_EQ(Pieces[1], "b");
  EXPECT_EQ(Pieces[2], "");
  EXPECT_EQ(Pieces[3], "c");

  auto SingleItem = split("solo", ',');
  ASSERT_EQ(SingleItem.size(), 1u);
  EXPECT_EQ(SingleItem[0], "solo");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"one"}, ", "), "one");
}

TEST(StringUtils, SplitJoinRoundTrip) {
  std::string Text = "x|y|z";
  EXPECT_EQ(join(split(Text, '|'), "|"), Text);
}

TEST(StringUtils, IsIdentifier) {
  EXPECT_TRUE(isIdentifier("task1"));
  EXPECT_TRUE(isIdentifier("_private"));
  EXPECT_TRUE(isIdentifier("x'"));
  EXPECT_FALSE(isIdentifier(""));
  EXPECT_FALSE(isIdentifier("1abc"));
  EXPECT_FALSE(isIdentifier("a b"));
  EXPECT_FALSE(isIdentifier("a-b"));
}

TEST(StringUtils, ReplaceAll) {
  EXPECT_EQ(replaceAll("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replaceAll("hello world", "o", "0"), "hell0 w0rld");
  EXPECT_EQ(replaceAll("nothing", "zz", "x"), "nothing");
  EXPECT_EQ(replaceAll("abc", "", "x"), "abc");
}
