//===- tests/golden/GoldenFileTest.cpp - Checked-in output corpus ---------===//
///
/// \file
/// Diffs the CLI's --emit=assumptions and --emit=summary output for the
/// bundled benchmarks against the checked-in corpus under tests/golden/.
/// Timings in summaries are normalized to <T>s, matching
/// scripts/regen_goldens.sh; everything else must be byte-identical.
/// After an intentional output change, regenerate with:
///
///   scripts/regen_goldens.sh build/src/tools/temos
///
/// The three slowest benchmarks (Multi-effect ~80s, Load Balancer,
/// CFS) only run when TEMOS_GOLDEN_SLOW is set, so the default suite
/// stays fast.
///
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <regex>
#include <sstream>
#include <string>

namespace {

struct GoldenBenchmark {
  const char *Name; ///< As accepted by temos --benchmark.
  const char *Slug; ///< File stem under tests/golden/.
  bool Slow;        ///< Gated behind TEMOS_GOLDEN_SLOW.
};

const GoldenBenchmark Benchmarks[] = {
    {"Vibrato", "vibrato", false},
    {"Modulation", "modulation", false},
    {"Intertwined", "intertwined", false},
    {"Multi-effect", "multi_effect", true},
    {"Single-Player", "single_player", false},
    {"Two-Player", "two_player", false},
    {"Bouncing", "bouncing", false},
    {"Automatic", "automatic", false},
    {"Simple", "simple", false},
    {"Counting", "counting", false},
    {"Bidirectional", "bidirectional", false},
    {"Smart", "smart", false},
    {"Round Robin", "round_robin", false},
    {"Load Balancer", "load_balancer", true},
    {"Preemptive", "preemptive", false},
    {"CFS", "cfs", true},
};

std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Command =
      std::string(TEMOS_CLI_PATH) + " " + Args + " 2>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Out;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

/// Wall/CPU timings vary per run; replace them like regen_goldens.sh
/// does so summaries compare stably.
std::string normalizeTimings(const std::string &Text) {
  static const std::regex Timing("[0-9]+\\.[0-9]+s");
  return std::regex_replace(Text, Timing, "<T>s");
}

/// Reads a golden file; nullopt when it does not exist. An *empty*
/// golden is legitimate (benchmarks with |psi|=0 emit no assumptions),
/// so existence and emptiness must stay distinct.
std::optional<std::string> readGolden(const std::string &Slug,
                                      const std::string &Kind) {
  std::string Path =
      std::string(TEMOS_GOLDEN_DIR) + "/" + Slug + "." + Kind + ".golden";
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

class GoldenFileTest : public ::testing::TestWithParam<GoldenBenchmark> {};

TEST_P(GoldenFileTest, AssumptionsMatchCorpus) {
  const GoldenBenchmark &B = GetParam();
  if (B.Slow && !std::getenv("TEMOS_GOLDEN_SLOW"))
    GTEST_SKIP() << "slow benchmark; set TEMOS_GOLDEN_SLOW=1 to run";
  auto Expected = readGolden(B.Slug, "assumptions");
  ASSERT_TRUE(Expected.has_value())
      << "missing golden file for " << B.Slug
      << "; run scripts/regen_goldens.sh";
  auto [Code, Out] =
      runCli("--benchmark \"" + std::string(B.Name) + "\" --emit=assumptions");
  ASSERT_EQ(Code, 0);
  EXPECT_EQ(Out, *Expected)
      << "assumption drift for '" << B.Name
      << "'; if intentional, regenerate with scripts/regen_goldens.sh";
}

TEST_P(GoldenFileTest, SummaryMatchesCorpus) {
  const GoldenBenchmark &B = GetParam();
  if (B.Slow && !std::getenv("TEMOS_GOLDEN_SLOW"))
    GTEST_SKIP() << "slow benchmark; set TEMOS_GOLDEN_SLOW=1 to run";
  auto Expected = readGolden(B.Slug, "summary");
  ASSERT_TRUE(Expected.has_value())
      << "missing golden file for " << B.Slug
      << "; run scripts/regen_goldens.sh";
  auto [Code, Out] =
      runCli("--benchmark \"" + std::string(B.Name) + "\" --emit=summary");
  ASSERT_EQ(Code, 0);
  EXPECT_EQ(normalizeTimings(Out), *Expected)
      << "summary drift for '" << B.Name
      << "'; if intentional, regenerate with scripts/regen_goldens.sh";
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenFileTest,
                         ::testing::ValuesIn(Benchmarks),
                         [](const auto &Info) {
                           std::string Name = Info.param.Slug;
                           return Name;
                         });

} // namespace
