//===- tests/tsl2ltl/TlsfExporterTest.cpp - TLSF export tests -------------===//

#include "tsl2ltl/TlsfExporter.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class TlsfExporterTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  Context Ctx;
};

TEST_F(TlsfExporterTest, BasicStructure) {
  Specification Spec = parse(R"(
    #LIA#
    spec Mutex
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  std::string Tlsf = exportTlsf(Spec, AB, Ctx);
  EXPECT_NE(Tlsf.find("INFO {"), std::string::npos);
  EXPECT_NE(Tlsf.find("TITLE:       \"Mutex\""), std::string::npos);
  EXPECT_NE(Tlsf.find("SEMANTICS:   Mealy"), std::string::npos);
  EXPECT_NE(Tlsf.find("INPUTS {"), std::string::npos);
  EXPECT_NE(Tlsf.find("OUTPUTS {"), std::string::npos);
  EXPECT_NE(Tlsf.find("GUARANTEES {"), std::string::npos);
}

TEST_F(TlsfExporterTest, PropositionsPerAtom) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee { G (x < y -> [m <- x]); }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  std::string Tlsf = exportTlsf(Spec, AB, Ctx);
  // One input proposition for the predicate, one output per update
  // option (update + implicit self).
  EXPECT_NE(Tlsf.find(tlsfInputName(AB, 0)), std::string::npos);
  ASSERT_EQ(AB.cells().size(), 1u);
  for (size_t O = 0; O < AB.cells()[0].Options.size(); ++O)
    EXPECT_NE(Tlsf.find(tlsfOutputName(AB, 0, O)), std::string::npos);
}

TEST_F(TlsfExporterTest, ExactlyOneConstraintsSpelledOut) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x + 1] || [x <- x - 1]; }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  std::string Tlsf = exportTlsf(Spec, AB, Ctx);
  // Mutual exclusion between the three options (3 pairs) plus
  // at-least-one.
  EXPECT_NE(Tlsf.find("G (u_x_0 || u_x_1 || u_x_2)"), std::string::npos);
  EXPECT_NE(Tlsf.find("G !(u_x_0 && u_x_1)"), std::string::npos);
  EXPECT_NE(Tlsf.find("G !(u_x_1 && u_x_2)"), std::string::npos);
}

TEST_F(TlsfExporterTest, TemporalOperatorsRendered) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { bool p; }
    cells { int x = 0; }
    always guarantee {
      p -> F [x <- x + 1];
      p U [x <- x];
    }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  std::string Tlsf = exportTlsf(Spec, AB, Ctx);
  EXPECT_NE(Tlsf.find("(F "), std::string::npos);
  EXPECT_NE(Tlsf.find(" U "), std::string::npos);
}

TEST_F(TlsfExporterTest, GeneratedAssumptionsIncluded) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  auto PsiR = parseFormula(
      "G (x = 0 && [x <- x + 1] -> X (x = 1))", Spec, Ctx);
  ASSERT_TRUE(PsiR.ok()) << PsiR.error().str();
  const Formula *Psi = *PsiR;
  Alphabet AB = Alphabet::build(Spec, Ctx, {Psi});
  std::string Tlsf = exportTlsf(Spec, AB, Ctx, {Psi});
  EXPECT_NE(Tlsf.find("ASSUMPTIONS {"), std::string::npos);
  // The psi formula mentions the predicate propositions.
  EXPECT_NE(Tlsf.find("(X "), std::string::npos);
}

} // namespace
