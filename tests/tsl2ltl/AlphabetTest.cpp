//===- tests/tsl2ltl/AlphabetTest.cpp - Alphabet tests --------------------===//

#include "tsl2ltl/Alphabet.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class AlphabetTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  Context Ctx;
};

TEST_F(AlphabetTest, CollectsPredicatesAndUpdates) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee {
      G (a < x -> [x <- x + 1]);
      G (x < a -> [x <- x - 1]);
    }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  EXPECT_EQ(AB.predicates().size(), 2u);
  ASSERT_EQ(AB.cells().size(), 1u);
  // x+1, x-1, plus the implicit self-update.
  EXPECT_EQ(AB.cells()[0].Options.size(), 3u);
  EXPECT_EQ(AB.inputLetterCount(), 4u);
  EXPECT_EQ(AB.outputLetterCount(), 3u);
}

TEST_F(AlphabetTest, SelfUpdateNotDuplicated) {
  Specification Spec = parse(R"(
    cells { int x = 0; }
    always guarantee { [x <- x]; }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  ASSERT_EQ(AB.cells().size(), 1u);
  EXPECT_EQ(AB.cells()[0].Options.size(), 1u);
}

TEST_F(AlphabetTest, OutputsAreUpdatable) {
  Specification Spec = parse(R"(
    inputs { int t1; }
    outputs { int next; }
    always guarantee { [next <- t1]; }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  ASSERT_EQ(AB.cells().size(), 1u);
  EXPECT_EQ(AB.cells()[0].Cell, "next");
  // [next <- t1] and implicit [next <- next].
  EXPECT_EQ(AB.cells()[0].Options.size(), 2u);
}

TEST_F(AlphabetTest, OutputEncodingRoundTrip) {
  Specification Spec = parse(R"(
    cells { int x = 0; int y = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      [y <- y + 1] || [y <- x];
    }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  ASSERT_EQ(AB.cells().size(), 2u);
  size_t Total = AB.outputLetterCount();
  EXPECT_EQ(Total, AB.cells()[0].Options.size() *
                       AB.cells()[1].Options.size());
  for (uint32_t O = 0; O < Total; ++O) {
    auto Choices = AB.decodeOutput(O);
    EXPECT_EQ(AB.encodeOutput(Choices), O);
  }
}

TEST_F(AlphabetTest, HoldsEvaluatesPredicates) {
  Specification Spec = parse(R"(
    inputs { int a; }
    cells { int x = 0; }
    always guarantee { G (a < x -> [x <- a]); }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  ASSERT_EQ(AB.predicates().size(), 1u);
  const Formula *Pred = Ctx.Formulas.pred(AB.predicates()[0]);

  Letter WithPred{1, 0};
  Letter WithoutPred{0, 0};
  EXPECT_TRUE(AB.holds(Pred, WithPred));
  EXPECT_FALSE(AB.holds(Pred, WithoutPred));
}

TEST_F(AlphabetTest, HoldsEvaluatesUpdatesExactlyOnePerCell) {
  Specification Spec = parse(R"(
    cells { int x = 0; }
    always guarantee { [x <- x + 1] || [x <- x - 1]; }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  ASSERT_EQ(AB.cells()[0].Options.size(), 3u);
  const Formula *Inc = AB.cells()[0].Options[0];
  const Formula *Dec = AB.cells()[0].Options[1];

  for (uint32_t O = 0; O < AB.outputLetterCount(); ++O) {
    Letter L{0, O};
    // Exactly one option fires per letter.
    int FiringCount = 0;
    for (const Formula *U : AB.cells()[0].Options)
      FiringCount += AB.holds(U, L) ? 1 : 0;
    EXPECT_EQ(FiringCount, 1);
  }
  EXPECT_TRUE(AB.holds(Inc, Letter{0, 0}));
  EXPECT_FALSE(AB.holds(Dec, Letter{0, 0}));
  EXPECT_TRUE(AB.holds(Dec, Letter{0, 1}));
}

TEST_F(AlphabetTest, ExtraFormulasContributeAtoms) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x + 1] || [x <- x - 1]; }
  )");
  // An assumption mentioning a new predicate x = 2.
  auto AssumptionR = parseFormula("x = 2 -> [x <- x + 1]", Spec, Ctx);
  ASSERT_TRUE(AssumptionR.ok()) << AssumptionR.error().str();
  const Formula *Assumption = *AssumptionR;
  Alphabet AB = Alphabet::build(Spec, Ctx, {Assumption});
  EXPECT_EQ(AB.predicates().size(), 1u);
}

TEST_F(AlphabetTest, LetterStr) {
  Specification Spec = parse(R"(
    inputs { int a; }
    cells { int x = 0; }
    always guarantee { G (a < x -> [x <- a]); }
  )");
  Alphabet AB = Alphabet::build(Spec, Ctx);
  Letter L{1, 0};
  std::string S = AB.letterStr(L);
  EXPECT_NE(S.find("(a < x)"), std::string::npos);
  EXPECT_NE(S.find("[x <- a]"), std::string::npos);
}

} // namespace
