//===- tests/automata/TableauTest.cpp - Tableau and NBA tests -------------===//

#include "automata/Tableau.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

/// Fixture with two boolean input predicates p, q and one cell with two
/// real updates (inc/dec), giving a small but nontrivial alphabet.
class TableauTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto Parsed = parseSpecification(R"(
      #LIA#
      inputs { bool p, q; }
      cells { int x = 0; }
      always guarantee {
        G (p -> [x <- x + 1]);
        G (q -> [x <- x - 1]);
      }
    )", Ctx);
    ASSERT_TRUE(Parsed.ok()) << Parsed.error().str();
    Spec = *Parsed;
    AB = Alphabet::build(Spec, Ctx);
  }

  /// Parses a formula in the fixture's signal scope.
  const Formula *formula(const std::string &Source) {
    auto F = parseFormula(Source, Spec, Ctx);
    EXPECT_TRUE(F.ok()) << F.error().str();
    return F.valueOr(nullptr);
  }

  bool sat(const std::string &Source) {
    const Formula *F = formula(Source);
    Alphabet A = Alphabet::build(Spec, Ctx, {F});
    return isSatisfiable(F, Ctx, A);
  }

  Context Ctx;
  Specification Spec;
  Alphabet AB;
};

TEST_F(TableauTest, AtomsAreSatisfiable) {
  EXPECT_TRUE(sat("p"));
  EXPECT_TRUE(sat("! p"));
  EXPECT_TRUE(sat("[x <- x + 1]"));
}

TEST_F(TableauTest, ContradictionsAreUnsat) {
  EXPECT_FALSE(sat("p && ! p"));
  EXPECT_FALSE(sat("false"));
  EXPECT_TRUE(sat("true"));
}

TEST_F(TableauTest, UpdateMutualExclusionIsStructural) {
  // Two different updates of the same cell cannot fire together.
  EXPECT_FALSE(sat("[x <- x + 1] && [x <- x - 1]"));
  // But an update and a predicate can.
  EXPECT_TRUE(sat("[x <- x + 1] && p"));
  // Negated update with the other choices remains satisfiable.
  EXPECT_TRUE(sat("! [x <- x + 1]"));
  // Forbidding all three options (inc, dec, self) is unsatisfiable.
  EXPECT_FALSE(sat("! [x <- x + 1] && ! [x <- x - 1] && ! [x <- x]"));
}

TEST_F(TableauTest, TemporalSatisfiability) {
  EXPECT_TRUE(sat("G p"));
  EXPECT_TRUE(sat("F p"));
  EXPECT_TRUE(sat("G F p"));
  EXPECT_TRUE(sat("F G p"));
  EXPECT_TRUE(sat("p U q"));
  EXPECT_TRUE(sat("X X X p"));
  EXPECT_TRUE(sat("p W q"));
  EXPECT_TRUE(sat("p R q"));
}

TEST_F(TableauTest, LivenessContradictions) {
  // These require correct Buechi acceptance, not just propositional
  // reasoning.
  EXPECT_FALSE(sat("G p && F (! p)"));
  EXPECT_FALSE(sat("G F p && F G (! p)"));
  EXPECT_FALSE(sat("(G p) && ((! p) U q) && G (! q)"));
  EXPECT_FALSE(sat("F G p && G F (! p)"));
}

TEST_F(TableauTest, UntilRequiresEventualFulfillment) {
  // p U q with G !q is unsat; p W q with G !q is fine if G p.
  EXPECT_FALSE(sat("(p U q) && G (! q)"));
  EXPECT_TRUE(sat("(p W q) && G (! q)"));
  EXPECT_FALSE(sat("(p W q) && G (! q) && F (! p)"));
}

TEST_F(TableauTest, ReleaseSemantics) {
  // p R q: q holds until (and including when) p holds.
  EXPECT_TRUE(sat("p R q"));
  EXPECT_FALSE(sat("(p R q) && (! q)"));
  EXPECT_FALSE(sat("(false R q) && F (! q)")); // G q && F !q.
}

TEST_F(TableauTest, NextInteraction) {
  EXPECT_TRUE(sat("p && X (! p)"));
  EXPECT_FALSE(sat("X p && X (! p)"));
  EXPECT_FALSE(sat("G (p -> X p) && p && F (! p)"));
}

TEST_F(TableauTest, UpdateLiveness) {
  EXPECT_TRUE(sat("G F [x <- x + 1] && G F [x <- x - 1]"));
  EXPECT_FALSE(sat("G [x <- x + 1] && F [x <- x - 1]"));
}

TEST_F(TableauTest, ImplicationChains) {
  // The mutex example shape (Sec. 4.2): without consistency assumptions
  // both guards can be true simultaneously, forcing both updates: unsat
  // at that instant.
  EXPECT_FALSE(sat("p && q && (p -> [x <- x + 1]) && (q -> [x <- x - 1])"));
  // With the consistency assumption !(p && q), satisfiable.
  EXPECT_TRUE(
      sat("! (p && q) && (p -> [x <- x + 1]) && (q -> [x <- x - 1])"));
}

TEST_F(TableauTest, StatsAreReported) {
  TableauStats Stats;
  buildNba(formula("G (p -> F q)"), Ctx, AB, &Stats);
  EXPECT_GT(Stats.NbaStates, 0u);
  EXPECT_GT(Stats.NbaTransitions, 0u);
  EXPECT_EQ(Stats.AcceptanceSets, 1u);
}

TEST_F(TableauTest, NoAcceptanceSetsForSafety) {
  TableauStats Stats;
  buildNba(formula("G p"), Ctx, AB, &Stats);
  EXPECT_EQ(Stats.AcceptanceSets, 0u);
}

} // namespace
