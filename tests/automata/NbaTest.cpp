//===- tests/automata/NbaTest.cpp - Direct NBA structure tests ------------===//

#include "automata/Nba.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class NbaTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto Parsed = parseSpecification(R"(
      inputs { bool p; }
      cells { int x = 0; }
      always guarantee { G (p -> [x <- x]); }
    )", Ctx);
    ASSERT_TRUE(Parsed.ok()) << Parsed.error().str();
    Spec = *Parsed;
    AB = Alphabet::build(Spec, Ctx);
  }

  /// Guard matching letters where input bit 0 equals \p P.
  LetterConstraint inputIs(bool P) {
    LetterConstraint G;
    G.InputCare = 1;
    G.InputValue = P ? 1 : 0;
    return G;
  }

  Context Ctx;
  Specification Spec;
  Alphabet AB;
};

TEST_F(NbaTest, EmptyAutomatonIsEmpty) {
  Nba A;
  EXPECT_FALSE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, AcceptingSelfLoopIsNonEmpty) {
  Nba A;
  uint32_t Q = A.addState();
  A.setInitial(Q);
  A.addTransition(Q, {LetterConstraint{}, Q, /*Accepting=*/true});
  EXPECT_TRUE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, NonAcceptingLoopIsEmpty) {
  Nba A;
  uint32_t Q = A.addState();
  A.setInitial(Q);
  A.addTransition(Q, {LetterConstraint{}, Q, /*Accepting=*/false});
  EXPECT_FALSE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, AcceptingTransitionOutsideCycleIsEmpty) {
  // q0 --accepting--> q1 (dead end): no lasso.
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState();
  A.setInitial(Q0);
  A.addTransition(Q0, {LetterConstraint{}, Q1, /*Accepting=*/true});
  EXPECT_FALSE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, ReachableAcceptingCycle) {
  // q0 -> q1 <-> q2 with the q1->q2 edge accepting.
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState();
  uint32_t Q2 = A.addState();
  A.setInitial(Q0);
  A.addTransition(Q0, {LetterConstraint{}, Q1, false});
  A.addTransition(Q1, {LetterConstraint{}, Q2, true});
  A.addTransition(Q2, {LetterConstraint{}, Q1, false});
  EXPECT_TRUE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, UnreachableAcceptingCycleIsEmpty) {
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState(); // Unreachable from Q0.
  A.setInitial(Q0);
  A.addTransition(Q1, {LetterConstraint{}, Q1, true});
  EXPECT_FALSE(A.isNonEmpty(AB));
}

TEST_F(NbaTest, SuccessorsFilterByGuard) {
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState();
  uint32_t Q2 = A.addState();
  A.addTransition(Q0, {inputIs(true), Q1, false});
  A.addTransition(Q0, {inputIs(false), Q2, true});

  std::vector<unsigned> Choices = AB.decodeOutput(0);
  auto OnTrue = A.successors(Q0, /*InputBits=*/1, Choices);
  ASSERT_EQ(OnTrue.size(), 1u);
  EXPECT_EQ(OnTrue[0].first, Q1);
  EXPECT_FALSE(OnTrue[0].second);

  auto OnFalse = A.successors(Q0, /*InputBits=*/0, Choices);
  ASSERT_EQ(OnFalse.size(), 1u);
  EXPECT_EQ(OnFalse[0].first, Q2);
  EXPECT_TRUE(OnFalse[0].second);
}

TEST_F(NbaTest, SuccessorsMergeDuplicateTargets) {
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState();
  A.addTransition(Q0, {LetterConstraint{}, Q1, false});
  A.addTransition(Q0, {LetterConstraint{}, Q1, true});
  auto Succ = A.successors(Q0, 0, AB.decodeOutput(0));
  ASSERT_EQ(Succ.size(), 1u);
  EXPECT_TRUE(Succ[0].second); // Strongest flag wins.
}

TEST_F(NbaTest, LiveStates) {
  // q0 -> q1 --accepting--> q1; q2 isolated.
  Nba A;
  uint32_t Q0 = A.addState();
  uint32_t Q1 = A.addState();
  uint32_t Q2 = A.addState();
  A.addTransition(Q0, {LetterConstraint{}, Q1, false});
  A.addTransition(Q1, {LetterConstraint{}, Q1, true});
  (void)Q2;
  auto Live = A.liveStates();
  ASSERT_EQ(Live.size(), 3u);
  EXPECT_TRUE(Live[Q0]);
  EXPECT_TRUE(Live[Q1]);
  EXPECT_FALSE(Live[Q2]);
}

TEST_F(NbaTest, GuardUpdateRequirements) {
  // Guard requiring cell 0's option 0 positively, and one forbidding it.
  LetterConstraint Want;
  Want.Updates.push_back({0, 0, true});
  LetterConstraint Forbid;
  Forbid.Updates.push_back({0, 0, false});

  std::vector<unsigned> Choice0 = {0};
  std::vector<unsigned> Choice1 = {1};
  EXPECT_TRUE(Want.matches(0, Choice0));
  EXPECT_FALSE(Want.matches(0, Choice1));
  EXPECT_FALSE(Forbid.matches(0, Choice0));
  EXPECT_TRUE(Forbid.matches(0, Choice1));
}

} // namespace
