//===- tests/codegen/JsDifferentialTest.cpp - JS vs interpreter -----------===//
///
/// \file
/// Differential testing of the JavaScript emitter: the generated
/// controller is executed under node (when available) on a scripted
/// input sequence and its cell trajectory must match the native
/// Interpreter step for step. This is the strongest check that the
/// emitted code means what the Mealy machine means.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace temos;

namespace {

bool nodeAvailable() {
  return std::system("node -e 'process.exit(0)' > /dev/null 2>&1") == 0;
}

/// Runs `node Script` and returns its stdout.
std::string runNode(const std::string &ScriptPath) {
  std::string Command = "node " + ScriptPath + " 2>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return "";
  std::string Out;
  char Buffer[256];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  pclose(Pipe);
  return Out;
}

TEST(JsDifferential, MutexControllerMatchesInterpreter) {
  if (!nodeAvailable())
    GTEST_SKIP() << "node not available";

  Context Ctx;
  auto Spec = parseSpecification(R"(
    #LIA#
    spec Mutex
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  // Scripted inputs.
  const int64_t Xs[] = {3, 9, 5, 0, 7, 2, 2, 8};
  const int64_t Ys[] = {7, 4, 5, 2, 1, 2, 6, 3};
  const size_t Steps = 8;

  // Native run.
  std::vector<std::string> Native;
  Controller C(*R.Machine, R.AB, *Spec);
  for (size_t I = 0; I < Steps; ++I) {
    auto Outcome = C.step({{"x", Value::integer(Xs[I])},
                           {"y", Value::integer(Ys[I])}});
    ASSERT_TRUE(Outcome.has_value());
    Native.push_back(C.cell("m").str());
  }

  // Node run.
  std::string Js = emitJavaScript(*R.Machine, R.AB, *Spec);
  std::string Script = Js + "\nconst c = createController({});\n";
  for (size_t I = 0; I < Steps; ++I)
    Script += "console.log(c.step({x: " + std::to_string(Xs[I]) +
              ", y: " + std::to_string(Ys[I]) + "}).m);\n";
  std::string Path = ::testing::TempDir() + "/temos_mutex_diff.js";
  {
    std::ofstream Out(Path);
    Out << Script;
  }
  std::string Output = runNode(Path);
  ASSERT_FALSE(Output.empty()) << "node produced no output";

  std::vector<std::string> Lines;
  for (const std::string &Line : split(Output, '\n'))
    if (!trim(Line).empty())
      Lines.push_back(trim(Line));
  ASSERT_EQ(Lines.size(), Steps);
  for (size_t I = 0; I < Steps; ++I)
    EXPECT_EQ(Lines[I], Native[I]) << "step " << I;
}

TEST(JsDifferential, CounterControllerMatchesInterpreter) {
  if (!nodeAvailable())
    GTEST_SKIP() << "node not available";

  Context Ctx;
  auto Spec = parseSpecification(R"(
    #LIA#
    spec Counter
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  const size_t Steps = 10;
  std::vector<std::string> Native;
  Controller C(*R.Machine, R.AB, *Spec);
  for (size_t I = 0; I < Steps; ++I) {
    auto Outcome = C.step({});
    ASSERT_TRUE(Outcome.has_value());
    Native.push_back(C.cell("x").str());
  }

  std::string Js = emitJavaScript(*R.Machine, R.AB, *Spec);
  std::string Script = Js + "\nconst c = createController({});\n";
  for (size_t I = 0; I < Steps; ++I)
    Script += "console.log(c.step({}).x);\n";
  std::string Path = ::testing::TempDir() + "/temos_counter_diff.js";
  {
    std::ofstream Out(Path);
    Out << Script;
  }
  std::string Output = runNode(Path);
  ASSERT_FALSE(Output.empty());

  std::vector<std::string> Lines;
  for (const std::string &Line : split(Output, '\n'))
    if (!trim(Line).empty())
      Lines.push_back(trim(Line));
  ASSERT_EQ(Lines.size(), Steps);
  for (size_t I = 0; I < Steps; ++I)
    EXPECT_EQ(Lines[I], Native[I]) << "step " << I;
}

} // namespace
