//===- tests/codegen/InterpreterTest.cpp - Controller execution tests -----===//

#include "codegen/Interpreter.h"

#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class InterpreterTest : public ::testing::Test {
protected:
  /// Synthesizes the spec and wraps the machine in a Controller.
  PipelineResult synthesize(const std::string &Source) {
    auto Parsed = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Parsed.ok()) << Parsed.error().str();
    Spec = *Parsed;
    Synthesizer Synth(Ctx);
    PipelineResult R = Synth.run(Spec);
    EXPECT_EQ(R.Status, Realizability::Realizable);
    return R;
  }

  Context Ctx;
  Specification Spec;
};

TEST_F(InterpreterTest, IntroCounterReachesTwo) {
  PipelineResult R = synthesize(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Controller C(*R.Machine, R.AB, Spec);
  EXPECT_EQ(C.cell("x").getNumber(), Rational(0));

  // Run the controller; the guarantee demands x = 2 eventually after
  // x = 0 (which holds initially).
  bool ReachedTwo = false;
  for (int Step = 0; Step < 32 && !ReachedTwo; ++Step) {
    auto Outcome = C.step({});
    ASSERT_TRUE(Outcome.has_value());
    ReachedTwo = C.cell("x").getNumber() == Rational(2);
  }
  EXPECT_TRUE(ReachedTwo);
}

TEST_F(InterpreterTest, MutexTracksMinimum) {
  PipelineResult R = synthesize(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  Controller C(*R.Machine, R.AB, Spec);

  auto StepWith = [&](int64_t X, int64_t Y) {
    Assignment In = {{"x", Value::integer(X)}, {"y", Value::integer(Y)}};
    auto Outcome = C.step(In);
    ASSERT_TRUE(Outcome.has_value());
  };
  StepWith(3, 7);
  EXPECT_EQ(C.cell("m").getNumber(), Rational(3));
  StepWith(9, 4);
  EXPECT_EQ(C.cell("m").getNumber(), Rational(4));
  // Equal inputs: neither guard constrains the system; m may be
  // rewritten with x, y (both 5) or kept.
  StepWith(5, 5);
  Rational M = C.cell("m").getNumber();
  EXPECT_TRUE(M == Rational(4) || M == Rational(5)) << M.str();
}

TEST_F(InterpreterTest, ResetRestoresInitialState) {
  PipelineResult R = synthesize(R"(
    #LIA#
    cells { int x = 7; }
    always guarantee { [x <- x + 1]; }
  )");
  Controller C(*R.Machine, R.AB, Spec);
  EXPECT_EQ(C.cell("x").getNumber(), Rational(7));
  ASSERT_TRUE(C.step({}).has_value());
  EXPECT_EQ(C.cell("x").getNumber(), Rational(8));
  C.reset();
  EXPECT_EQ(C.cell("x").getNumber(), Rational(7));
  EXPECT_EQ(C.state(), R.Machine->initialState());
}

TEST_F(InterpreterTest, OutcomeReportsFiredUpdates) {
  PipelineResult R = synthesize(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x + 1]; }
  )");
  Controller C(*R.Machine, R.AB, Spec);
  auto Outcome = C.step({});
  ASSERT_TRUE(Outcome.has_value());
  ASSERT_EQ(Outcome->FiredUpdates.size(), 1u);
  EXPECT_EQ(Outcome->FiredUpdates[0]->str(), "[x <- (x + 1)]");
}

TEST_F(InterpreterTest, MissingInputFailsGracefully) {
  PipelineResult R = synthesize(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee { G (a < x -> [x <- x + 1]); }
  )");
  Controller C(*R.Machine, R.AB, Spec);
  // Predicate a < x cannot be evaluated without a.
  EXPECT_FALSE(C.step({}).has_value());
  // With the input present it works.
  EXPECT_TRUE(C.step({{"a", Value::integer(-5)}}).has_value());
}

TEST_F(InterpreterTest, RealValuedCells) {
  PipelineResult R = synthesize(R"(
    #RA#
    cells { real f = 0; }
    always guarantee {
      [f <- f + 1] || [f <- f - 1];
      f <= c10() -> F (f > c10());
    }
  )");
  Controller C(*R.Machine, R.AB, Spec);
  bool Crossed = false;
  for (int Step = 0; Step < 64 && !Crossed; ++Step) {
    ASSERT_TRUE(C.step({}).has_value());
    Crossed = C.cell("f").getNumber() > Rational(10);
  }
  EXPECT_TRUE(Crossed);
}

} // namespace
