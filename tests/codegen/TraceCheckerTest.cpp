//===- tests/codegen/TraceCheckerTest.cpp - Trace monitoring tests --------===//

#include "codegen/TraceChecker.h"

#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class TraceCheckerTest : public ::testing::Test {
protected:
  void SetUp() override {
    P = TF.signal("p", Sort::Bool);
    Q = TF.signal("q", Sort::Bool);
    AtomP = FF.pred(P);
    AtomQ = FF.pred(Q);
  }

  /// Builds a trace from a string over {'p','q','b','n'}: p only, q
  /// only, both, none.
  Trace trace(const std::string &Pattern) {
    Trace T;
    for (char C : Pattern) {
      TraceStep Step;
      if (C == 'p' || C == 'b')
        Step.TruePredicates.push_back(P);
      if (C == 'q' || C == 'b')
        Step.TruePredicates.push_back(Q);
      T.append(Step);
    }
    return T;
  }

  TermFactory TF;
  FormulaFactory FF;
  const Term *P = nullptr;
  const Term *Q = nullptr;
  const Formula *AtomP = nullptr;
  const Formula *AtomQ = nullptr;
};

TEST_F(TraceCheckerTest, Atoms) {
  Trace T = trace("pn");
  EXPECT_EQ(T.check(AtomP, 0), TraceVerdict::Holds);
  EXPECT_EQ(T.check(AtomP, 1), TraceVerdict::Violated);
  EXPECT_EQ(T.check(AtomP, 2), TraceVerdict::Undecided); // Past the end.
}

TEST_F(TraceCheckerTest, BooleanConnectives) {
  Trace T = trace("b");
  EXPECT_EQ(T.check(FF.andF(AtomP, AtomQ)), TraceVerdict::Holds);
  EXPECT_EQ(T.check(FF.notF(AtomP)), TraceVerdict::Violated);
  EXPECT_EQ(T.check(FF.orF(FF.notF(AtomP), AtomQ)), TraceVerdict::Holds);
  EXPECT_EQ(T.check(FF.implies(AtomP, AtomQ)), TraceVerdict::Holds);
  EXPECT_EQ(T.check(FF.iff(AtomP, FF.notF(AtomQ))), TraceVerdict::Violated);
}

TEST_F(TraceCheckerTest, NextShiftsPosition) {
  Trace T = trace("np");
  EXPECT_EQ(T.check(FF.next(AtomP)), TraceVerdict::Holds);
  EXPECT_EQ(T.check(FF.next(FF.next(AtomP))), TraceVerdict::Undecided);
}

TEST_F(TraceCheckerTest, GloballyNeverHoldsOnFiniteTraces) {
  Trace T = trace("ppp");
  // G p is not Violated but cannot be confirmed either.
  EXPECT_EQ(T.check(FF.globally(AtomP)), TraceVerdict::Undecided);
  EXPECT_TRUE(T.noViolation(FF.globally(AtomP)));
  Trace T2 = trace("ppn");
  EXPECT_EQ(T2.check(FF.globally(AtomP)), TraceVerdict::Violated);
  EXPECT_FALSE(T2.noViolation(FF.globally(AtomP)));
}

TEST_F(TraceCheckerTest, FinallyFulfillment) {
  EXPECT_EQ(trace("nnp").check(FF.finallyF(AtomP)), TraceVerdict::Holds);
  EXPECT_EQ(trace("nnn").check(FF.finallyF(AtomP)),
            TraceVerdict::Undecided);
}

TEST_F(TraceCheckerTest, UntilSemantics) {
  const Formula *PUQ = FF.until(AtomP, AtomQ);
  EXPECT_EQ(trace("ppq").check(PUQ), TraceVerdict::Holds);
  EXPECT_EQ(trace("q").check(PUQ), TraceVerdict::Holds);
  EXPECT_EQ(trace("pn").check(PUQ), TraceVerdict::Violated);
  EXPECT_EQ(trace("ppp").check(PUQ), TraceVerdict::Undecided);
}

TEST_F(TraceCheckerTest, WeakUntilAllowsForever) {
  const Formula *PWQ = FF.weakUntil(AtomP, AtomQ);
  EXPECT_EQ(trace("ppp").check(PWQ), TraceVerdict::Undecided); // G p open.
  EXPECT_EQ(trace("pn").check(PWQ), TraceVerdict::Violated);
  EXPECT_EQ(trace("pq").check(PWQ), TraceVerdict::Holds);
}

TEST_F(TraceCheckerTest, ReleaseSemantics) {
  const Formula *PRQ = FF.release(AtomP, AtomQ);
  // q holds until p releases (inclusive).
  EXPECT_EQ(trace("qqb").check(PRQ), TraceVerdict::Holds);
  EXPECT_EQ(trace("qn").check(PRQ), TraceVerdict::Violated);
  EXPECT_EQ(trace("qqq").check(PRQ), TraceVerdict::Undecided);
}

TEST_F(TraceCheckerTest, ResponsePattern) {
  const Formula *Response = FF.globally(FF.implies(AtomP, FF.finallyF(AtomQ)));
  EXPECT_TRUE(trace("pnq").noViolation(Response));
  EXPECT_TRUE(trace("pnn").noViolation(Response)); // Pending, not violated.
  EXPECT_TRUE(trace("nnn").noViolation(Response));
}

TEST_F(TraceCheckerTest, MonitorsSynthesizedController) {
  // End-to-end: synthesize the mutex spec, run it, and monitor the
  // guarantees on the recorded trace.
  Context Ctx;
  auto Spec = parseSpecification(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  Controller C(*R.Machine, R.AB, *Spec);
  Trace T;
  int64_t Xs[] = {3, 9, 5, 0, 7};
  int64_t Ys[] = {7, 4, 5, 2, 1};
  for (int I = 0; I < 5; ++I) {
    auto Outcome = C.step({{"x", Value::integer(Xs[I])},
                           {"y", Value::integer(Ys[I])}});
    ASSERT_TRUE(Outcome.has_value());
    T.append(R.AB, *Outcome);
  }
  for (const Formula *G : Spec->AlwaysGuarantees)
    EXPECT_TRUE(T.noViolation(Ctx.Formulas.globally(G))) << G->str();
}

} // namespace
