//===- tests/codegen/CodeEmitterTest.cpp - Emitter tests ------------------===//

#include "codegen/CodeEmitter.h"

#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class CodeEmitterTest : public ::testing::Test {
protected:
  PipelineResult synthesize(const std::string &Source) {
    auto Parsed = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Parsed.ok()) << Parsed.error().str();
    Spec = *Parsed;
    Synthesizer Synth(Ctx);
    PipelineResult R = Synth.run(Spec);
    EXPECT_EQ(R.Status, Realizability::Realizable);
    return R;
  }

  Context Ctx;
  Specification Spec;
};

TEST_F(CodeEmitterTest, JavaScriptShape) {
  PipelineResult R = synthesize(R"(
    #LIA#
    spec Counter
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  std::string Js = emitJavaScript(*R.Machine, R.AB, Spec);
  EXPECT_NE(Js.find("function createController"), std::string::npos);
  EXPECT_NE(Js.find("x: 0"), std::string::npos);
  EXPECT_NE(Js.find("switch (state)"), std::string::npos);
  EXPECT_NE(Js.find("next.x = (cells.x + 1);"), std::string::npos);
  EXPECT_NE(Js.find("'Counter'"), std::string::npos);
  // Every machine state appears as a case.
  for (uint32_t S = 0; S < R.Machine->stateCount(); ++S)
    EXPECT_NE(Js.find("case " + std::to_string(S) + ":"), std::string::npos);
}

TEST_F(CodeEmitterTest, JavaScriptInputsAndPredicates) {
  PipelineResult R = synthesize(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  std::string Js = emitJavaScript(*R.Machine, R.AB, Spec);
  EXPECT_NE(Js.find("const p0 = (inputs.x < inputs.y);"), std::string::npos);
  EXPECT_NE(Js.find("const p1 = (inputs.y < inputs.x);"), std::string::npos);
  EXPECT_NE(Js.find("next.m = inputs.x;"), std::string::npos);
}

TEST_F(CodeEmitterTest, CppCompilesStandalone) {
  // The strongest emitter test: generated C++ must actually compile and
  // behave like the interpreter. We compile it in-process by embedding
  // it into a TU via a golden string comparison proxy: here we at least
  // check structure; the integration test compiles it for real.
  PipelineResult R = synthesize(R"(
    #LIA#
    spec Mutex
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  std::string Cpp = emitCpp(*R.Machine, R.AB, Spec);
  EXPECT_NE(Cpp.find("struct MutexController"), std::string::npos);
  EXPECT_NE(Cpp.find("struct Inputs"), std::string::npos);
  EXPECT_NE(Cpp.find("long long m = 0;"), std::string::npos);
  EXPECT_NE(Cpp.find("const Cells &step(const Inputs &inputs)"),
            std::string::npos);
  EXPECT_NE(Cpp.find("next.m = inputs.x;"), std::string::npos);
}

TEST_F(CodeEmitterTest, LineCountMatchesNewlines) {
  EXPECT_EQ(countLines(""), 0u);
  EXPECT_EQ(countLines("a\nb\n"), 2u);
  EXPECT_EQ(countLines("a"), 0u);
}

TEST_F(CodeEmitterTest, LocGrowsWithMachineSize) {
  PipelineResult Small = synthesize(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x + 1]; }
  )");
  std::string SmallJs = emitJavaScript(*Small.Machine, Small.AB, Spec);

  Context Ctx2;
  auto BigSpec = parseSpecification(R"(
    #LIA#
    inputs { int a, b; }
    cells { int x = 0; int y = 0; }
    always guarantee {
      G (a < x -> [x <- x + 1]);
      G (b < y -> [y <- y + 1]);
      G (x < a -> [x <- x]);
    }
  )", Ctx2);
  ASSERT_TRUE(BigSpec.ok()) << BigSpec.error().str();
  Synthesizer Synth2(Ctx2);
  PipelineResult Big = Synth2.run(*BigSpec);
  ASSERT_EQ(Big.Status, Realizability::Realizable);
  std::string BigJs = emitJavaScript(*Big.Machine, Big.AB, *BigSpec);

  EXPECT_GT(countLines(BigJs), countLines(SmallJs));
}

TEST_F(CodeEmitterTest, RealConstantsEmitted) {
  PipelineResult R = synthesize(R"(
    #RA#
    cells { real f = 0; }
    always guarantee {
      [f <- f + 1] || [f <- f];
      f <= c10() -> F (f > c10());
    }
  )");
  std::string Js = emitJavaScript(*R.Machine, R.AB, Spec);
  EXPECT_NE(Js.find("cells.f <= 10"), std::string::npos);
}

TEST_F(CodeEmitterTest, SelfUpdatesAreElided) {
  PipelineResult R = synthesize(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x]; }
  )");
  std::string Js = emitJavaScript(*R.Machine, R.AB, Spec);
  EXPECT_EQ(Js.find("next.x = cells.x;"), std::string::npos);
}

} // namespace
