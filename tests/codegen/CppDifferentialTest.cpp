//===- tests/codegen/CppDifferentialTest.cpp - C++ emitter diff test ------===//
///
/// \file
/// Differential testing of the C++ emitter: the generated controller is
/// compiled with the host compiler, executed on a scripted input
/// sequence, and must match the native Interpreter step for step.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace temos;

namespace {

bool compilerAvailable() {
  return std::system("g++ --version > /dev/null 2>&1") == 0;
}

std::string runBinary(const std::string &Path) {
  FILE *Pipe = popen((Path + " 2>/dev/null").c_str(), "r");
  if (!Pipe)
    return "";
  std::string Out;
  char Buffer[256];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  pclose(Pipe);
  return Out;
}

TEST(CppDifferential, MutexControllerMatchesInterpreter) {
  if (!compilerAvailable())
    GTEST_SKIP() << "g++ not available";

  Context Ctx;
  auto Spec = parseSpecification(R"(
    #LIA#
    spec Mutex
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  const int64_t Xs[] = {3, 9, 5, 0, 7, 2};
  const int64_t Ys[] = {7, 4, 5, 2, 1, 6};
  const size_t Steps = 6;

  // Native run.
  std::vector<std::string> Native;
  Controller C(*R.Machine, R.AB, *Spec);
  for (size_t I = 0; I < Steps; ++I) {
    auto Outcome = C.step({{"x", Value::integer(Xs[I])},
                           {"y", Value::integer(Ys[I])}});
    ASSERT_TRUE(Outcome.has_value());
    Native.push_back(C.cell("m").str());
  }

  // Generated C++ + a main() driver.
  std::string Code = emitCpp(*R.Machine, R.AB, *Spec);
  Code += "\n#include <cstdio>\nint main() {\n  MutexController c;\n";
  for (size_t I = 0; I < Steps; ++I)
    Code += "  std::printf(\"%lld\\n\", c.step({" + std::to_string(Xs[I]) +
            ", " + std::to_string(Ys[I]) + "}).m);\n";
  Code += "  return 0;\n}\n";

  std::string Dir = ::testing::TempDir();
  std::string Source = Dir + "/temos_mutex_diff.cpp";
  std::string Binary = Dir + "/temos_mutex_diff";
  {
    std::ofstream Out(Source);
    Out << Code;
  }
  std::string Compile =
      "g++ -std=c++17 -O0 -o " + Binary + " " + Source + " 2>/dev/null";
  ASSERT_EQ(std::system(Compile.c_str()), 0) << "generated C++ must compile";

  std::string Output = runBinary(Binary);
  std::vector<std::string> Lines;
  for (const std::string &Line : split(Output, '\n'))
    if (!trim(Line).empty())
      Lines.push_back(trim(Line));
  ASSERT_EQ(Lines.size(), Steps);
  for (size_t I = 0; I < Steps; ++I)
    EXPECT_EQ(Lines[I], Native[I]) << "step " << I;
}

} // namespace
