//===- tests/core/AssumptionGeneratorTest.cpp - Alg. 2/3 tests ------------===//

#include "core/AssumptionGenerator.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class AssumptionGeneratorTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  Obligation obligation(const Specification &Spec, const std::string &Pre,
                        const std::string &Post, Obligation::Kind K,
                        unsigned Steps = 1) {
    const Formula *PreF = parseFormula(Pre, Spec, Ctx).valueOr(nullptr);
    const Formula *PostF = parseFormula(Post, Spec, Ctx).valueOr(nullptr);
    EXPECT_TRUE(PreF && PostF) << Pre << " / " << Post;
    Obligation Ob;
    Ob.Pre = {{PreF->pred(), true}};
    Ob.Post = {{PostF->pred(), true}};
    Ob.K = K;
    Ob.Steps = Steps;
    return Ob;
  }

  Context Ctx;
};

TEST_F(AssumptionGeneratorTest, IntroExampleAssumption) {
  // The introduction: from x = 0, two increments reach x = 2. The
  // generated assumption is
  //   G ((x = 0) && [x <- x+1] && X [x <- x+1] -> X X (x = 2)).
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob =
      obligation(Spec, "x = 0", "x = 2", Obligation::Kind::Eventually);
  auto A = Gen.generate(Ob);
  ASSERT_TRUE(A.has_value());
  EXPECT_FALSE(A->IsLoop);
  EXPECT_EQ(A->Sequential.Steps.size(), 2u);
  EXPECT_EQ(A->Assumption->str(),
            "G (((x = 0) && [x <- (x + 1)] && X [x <- (x + 1)]) -> "
            "X X (x = 2))");
}

TEST_F(AssumptionGeneratorTest, ExactStepEncoding) {
  // Example 4.2: height exactly 2, post-condition x = 0 again.
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> X X (x = 0);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob = obligation(Spec, "x = 0", "x = 0", Obligation::Kind::Exact,
                             /*Steps=*/2);
  auto A = Gen.generate(Ob);
  ASSERT_TRUE(A.has_value());
  ASSERT_EQ(A->Sequential.Steps.size(), 2u);
  // One increment and one decrement, in either order.
  std::string S0 = A->Sequential.Steps[0].at("x")->str();
  std::string S1 = A->Sequential.Steps[1].at("x")->str();
  EXPECT_TRUE((S0 == "(x + 1)" && S1 == "(x - 1)") ||
              (S0 == "(x - 1)" && S1 == "(x + 1)"));
}

TEST_F(AssumptionGeneratorTest, LoopEncodingExampleFourFive) {
  // Example 4.5: from x < 0 reach x = 0; needs the W-encoded loop:
  //   G ((x < 0) && ([x <- x+1] W (x = 0)) -> F (x = 0)).
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = -5; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      0 > x -> F (x = 0);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob =
      obligation(Spec, "x < 0", "x = 0", Obligation::Kind::Eventually);
  AssumptionGenerator::Options Opts;
  Opts.MaxSequentialSteps = 0; // Force the loop path.
  Gen.Opts = Opts;
  auto A = Gen.generate(Ob);
  ASSERT_TRUE(A.has_value());
  EXPECT_TRUE(A->IsLoop);
  EXPECT_EQ(A->Assumption->str(),
            "G (((x < 0) && ([x <- (x + 1)] W (x = 0))) -> F (x = 0))");
}

TEST_F(AssumptionGeneratorTest, QueryRestrictsCellsToPostCondition) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; int y = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      [y <- y + 1] || [y <- y];
      x = 0 -> F (x = 2);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob =
      obligation(Spec, "x = 0", "x = 2", Obligation::Kind::Eventually);
  SygusQuery Q = Gen.buildQuery(Ob);
  ASSERT_EQ(Q.Cells.size(), 1u);
  EXPECT_EQ(Q.Cells[0].Name, "x");
  EXPECT_EQ(Q.Cells[0].Updates.size(), 2u);
}

TEST_F(AssumptionGeneratorTest, UnsolvableObligationYieldsNothing) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      x = 0 -> F (x < 0);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  // x only grows: x < 0 is unreachable from x = 0.
  Obligation Ob =
      obligation(Spec, "x = 0", "x < 0", Obligation::Kind::Eventually);
  EXPECT_FALSE(Gen.generate(Ob).has_value());
}

TEST_F(AssumptionGeneratorTest, RefinementGuaranteeShape) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob =
      obligation(Spec, "x = 0", "x = 2", Obligation::Kind::Eventually);
  auto A = Gen.generate(Ob);
  ASSERT_TRUE(A.has_value());
  const Formula *G = Gen.refinementGuarantee(*A);
  EXPECT_EQ(G->str(),
            "G ((x = 0) -> ([x <- (x + 1)] && X [x <- (x + 1)]))");
}

TEST_F(AssumptionGeneratorTest, ExclusionProducesDifferentAssumption) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      x = 0 -> F (x = 2);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  Obligation Ob =
      obligation(Spec, "x = 0", "x = 2", Obligation::Kind::Eventually);
  auto First = Gen.generate(Ob);
  ASSERT_TRUE(First.has_value());
  auto Second = Gen.generate(Ob, {First->Sequential});
  ASSERT_TRUE(Second.has_value());
  EXPECT_NE(First->Assumption, Second->Assumption);
}

TEST_F(AssumptionGeneratorTest, UninterpretedTheoryExampleFourThree) {
  // Example 4.3 (plain TSL): the assumption G (p x && [y <- x] -> X p y).
  Specification Spec = parse(R"(
    #UF#
    inputs { opaque x; }
    cells { opaque y; }
    functions { bool p(opaque); }
    always guarantee {
      [y <- y] || [y <- x];
      p x -> X (p y);
    }
  )");
  AssumptionGenerator Gen(Spec, Ctx);
  const Formula *PX = parseFormula("p x", Spec, Ctx).valueOr(nullptr);
  const Formula *PY = parseFormula("p y", Spec, Ctx).valueOr(nullptr);
  ASSERT_TRUE(PX && PY);
  Obligation Ob;
  Ob.Pre = {{PX->pred(), true}};
  Ob.Post = {{PY->pred(), true}};
  Ob.K = Obligation::Kind::Exact;
  Ob.Steps = 1;
  auto A = Gen.generate(Ob);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Assumption->str(),
            "G (((p x) && [y <- x]) -> X (p y))");
}

} // namespace
