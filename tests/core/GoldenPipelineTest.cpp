//===- tests/core/GoldenPipelineTest.cpp - Deterministic golden values ----===//
///
/// \file
/// Regression guards on the paper's running examples: formula ids are
/// stable (creation-ordered), the tableau orders states by them, and
/// the game extracts the least-output strategy, so machine sizes and
/// assumption sets are fully deterministic. These tests pin the exact
/// artifacts so that behavioural drift in any pipeline stage is caught.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

TEST(GoldenPipeline, IntroCounterArtifacts) {
  Context Ctx;
  auto Spec = parseSpecification(R"(
    #LIA#
    spec Counter
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  // The exact generated assumption set (order and content).
  ASSERT_EQ(R.Assumptions.size(), 3u);
  EXPECT_EQ(R.Assumptions[0]->str(), "G ! ((x = 0) && (x = 2))");
  EXPECT_EQ(R.Assumptions[1]->str(),
            "G (((x = 0) && [x <- (x + 1)] && X [x <- (x + 1)]) -> "
            "X X (x = 2))");
  EXPECT_EQ(R.Assumptions[2]->str(),
            "G (((x = 2) && [x <- (x - 1)] && X [x <- (x - 1)]) -> "
            "X X (x = 0))");

  // Stats golden values.
  EXPECT_EQ(R.Stats.SpecSize, 7u);
  EXPECT_EQ(R.Stats.PredicateCount, 2u);
  EXPECT_EQ(R.Stats.UpdateTermCount, 2u);
  EXPECT_EQ(R.Stats.Refinements, 0u);
  EXPECT_EQ(R.Stats.ReactiveRuns, 1u);

  // Machine shape.
  EXPECT_EQ(R.Machine->stateCount(), 8u);
  EXPECT_EQ(R.Machine->inputCount(), 4u); // 2 predicates.
  EXPECT_EQ(R.AB.outputLetterCount(), 3u); // +1, -1, self.

  // Generated code is byte-stable.
  std::string Js = emitJavaScript(*R.Machine, R.AB, *Spec);
  EXPECT_EQ(countLines(Js), 179u);
}

TEST(GoldenPipeline, VibratoArtifacts) {
  Context Ctx;
  auto Spec = parseSpecification(R"(
    #RA#
    spec Vibrato
    cells { real lfoFreq = 0; bool lfo; }
    always guarantee {
      G F [lfo <- True()];
      G F [lfo <- False()];
      lfoFreq <= c10() -> [lfo <- False()] U lfoFreq > c10();
      lfoFreq > c10() -> [lfo <- True()] U lfoFreq <= c10();
      [lfo <- False()] -> [lfoFreq <- lfoFreq + c1()];
      [lfo <- True()] -> [lfoFreq <- lfoFreq - c1()];
    }
  )", Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);

  // The two threshold-crossing loop assumptions plus consistency.
  ASSERT_EQ(R.Assumptions.size(), 3u);
  EXPECT_EQ(R.Assumptions[0]->str(),
            "G ! ((lfoFreq <= 10) && (lfoFreq > 10))");
  EXPECT_EQ(R.Assumptions[1]->str(),
            "G (((lfoFreq <= 10) && ([lfoFreq <- (lfoFreq + 1)] W "
            "(lfoFreq > 10))) -> F (lfoFreq > 10))");
  EXPECT_EQ(R.Assumptions[2]->str(),
            "G (((lfoFreq > 10) && ([lfoFreq <- (lfoFreq - 1)] W "
            "(lfoFreq <= 10))) -> F (lfoFreq <= 10))");
  EXPECT_EQ(R.Stats.PredicateCount, 2u);
  EXPECT_EQ(R.Stats.UpdateTermCount, 4u);
}

TEST(GoldenPipeline, DeterministicAcrossRuns) {
  // Two independent contexts produce identical machines.
  auto Run = []() {
    Context Ctx;
    auto Spec = parseSpecification(R"(
      #LIA#
      inputs { int a; }
      cells { int x = 0; }
      always guarantee {
        G (a < x -> [x <- x]);
        G (x < a -> [x <- x + 1]);
      }
    )", Ctx);
    Synthesizer Synth(Ctx);
    PipelineResult R = Synth.run(*Spec);
    EXPECT_EQ(R.Status, Realizability::Realizable);
    return emitJavaScript(*R.Machine, R.AB, *Spec);
  };
  EXPECT_EQ(Run(), Run());
}

} // namespace
