//===- tests/core/DecompositionTest.cpp - Alg. 1 tests --------------------===//

#include "core/Decomposition.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class DecompositionTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  bool hasObligation(const Decomposition &D, const std::string &PreStr,
                     const std::string &PostStr, Obligation::Kind K,
                     unsigned Steps = 0) {
    for (const Obligation &Ob : D.Obligations) {
      if (Ob.K != K)
        continue;
      if (K == Obligation::Kind::Exact && Steps != 0 && Ob.Steps != Steps)
        continue;
      if (Ob.Pre.size() != 1 || Ob.Post.size() != 1)
        continue;
      std::string Pre = (Ob.Pre[0].Positive ? "" : "!") + Ob.Pre[0].Atom->str();
      std::string Post =
          (Ob.Post[0].Positive ? "" : "!") + Ob.Post[0].Atom->str();
      if (Pre == PreStr && Post == PostStr)
        return true;
    }
    return false;
  }

  Context Ctx;
};

TEST_F(DecompositionTest, IntroExampleCounts) {
  // The introduction's counter spec.
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  EXPECT_EQ(D.PredicateLiterals.size(), 2u); // x = 0, x = 2.
  EXPECT_EQ(D.UpdateTerms.size(), 2u);       // x+1, x-1.
  EXPECT_TRUE(hasObligation(D, "(x = 0)", "(x = 2)",
                            Obligation::Kind::Eventually));
}

TEST_F(DecompositionTest, ExactStepObligationsFromNext) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      x = 0 -> X X (x = 2);
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  EXPECT_TRUE(
      hasObligation(D, "(x = 0)", "(x = 2)", Obligation::Kind::Exact, 2));
}

TEST_F(DecompositionTest, UntilProducesReachability) {
  Specification Spec = parse(R"(
    #RA#
    inputs { real f; }
    cells { bool lfo; }
    always guarantee {
      f <= c10() -> [lfo <- False()] U f > c10();
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  // The U right-hand side literal becomes a reachability post-condition.
  EXPECT_TRUE(hasObligation(D, "(f <= 10)", "(f > 10)",
                            Obligation::Kind::Eventually));
}

TEST_F(DecompositionTest, NegatedLiteralsUnderNNF) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee {
      F (! (a < x));
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  EXPECT_TRUE(hasObligation(D, "(a < x)", "!(a < x)",
                            Obligation::Kind::Eventually));
}

TEST_F(DecompositionTest, TrivialEventualObligationsSkipped) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { F (x = 0); }
  )");
  Decomposition D = decompose(Spec, Ctx);
  // pre (x=0) with post F(x=0) is trivially fulfilled: skipped; the
  // negated pre-condition variant remains.
  EXPECT_FALSE(
      hasObligation(D, "(x = 0)", "(x = 0)", Obligation::Kind::Eventually));
  EXPECT_TRUE(
      hasObligation(D, "!(x = 0)", "(x = 0)", Obligation::Kind::Eventually));
}

TEST_F(DecompositionTest, ObligationCapRespected) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a, b, c; }
    cells { int x = 0; }
    always guarantee {
      F (a < x); F (b < x); F (c < x); F (a < b); F (b < c);
    }
  )");
  DecompositionOptions Options;
  Options.MaxObligations = 7;
  Decomposition D = decompose(Spec, Ctx, Options);
  EXPECT_LE(D.Obligations.size(), 7u);
}

TEST_F(DecompositionTest, PairwisePreconditionsWhenEnabled) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee { a < x -> F (x < a); }
  )");
  DecompositionOptions Options;
  Options.MaxPreConjuncts = 2;
  Decomposition D = decompose(Spec, Ctx, Options);
  bool FoundPair = false;
  for (const Obligation &Ob : D.Obligations)
    FoundPair |= Ob.Pre.size() == 2;
  EXPECT_TRUE(FoundPair);
}

TEST_F(DecompositionTest, GloballyIsTransparentForNextCounting) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { G (x = 0 -> X (x = 1)); }
  )");
  Decomposition D = decompose(Spec, Ctx);
  EXPECT_TRUE(
      hasObligation(D, "(x = 0)", "(x = 1)", Obligation::Kind::Exact, 1));
}

TEST_F(DecompositionTest, ObligationStr) {
  Obligation Ob;
  TermFactory TF;
  const Term *P = TF.apply("=", Sort::Bool,
                           {TF.signal("x", Sort::Int), TF.numeral(0)});
  Ob.Pre = {{P, true}};
  Ob.Post = {{P, false}};
  Ob.K = Obligation::Kind::Exact;
  Ob.Steps = 2;
  EXPECT_EQ(Ob.str(), "(x = 0) --[2 steps]--> !(x = 0)");
}

TEST_F(DecompositionTest, LiteralCanonicalizationCollapsesEquivalents) {
  // !(f <= 10) and (f > 10) are the same predicate evaluation in RA;
  // obligations must not be duplicated across the two spellings.
  Specification Spec = parse(R"(
    #RA#
    cells { real f = 0; }
    always guarantee {
      [f <- f + 1] || [f <- f - 1];
      f <= c10() -> F (f > c10());
      f > c10() -> F (f <= c10());
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  // Exactly the two direction obligations survive: (f<=10 -> F f>10)
  // and (f>10 -> F f<=10); every negated spelling collapses onto them.
  EXPECT_EQ(D.Obligations.size(), 2u);
}

TEST_F(DecompositionTest, AllLiteralsBecomeEventualPosts) {
  // The CFS mechanism (Sec. 2): vr-comparisons appear under no temporal
  // operator in the spec, yet the flip obligation must exist.
  Specification Spec = parse(R"(
    #LIA#
    cells { int vr1 = 0; int vr2 = 0; }
    always guarantee {
      G (vr1 < vr2 -> [vr1 <- vr1 + 1]);
      G (vr2 < vr1 -> [vr2 <- vr2 + 1]);
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  EXPECT_TRUE(hasObligation(D, "(vr1 < vr2)", "(vr2 < vr1)",
                            Obligation::Kind::Eventually));
  // Disabled: no eventual posts at all (no temporal operators in spec).
  DecompositionOptions Off;
  Off.AllLiteralsAsEventualPosts = false;
  Decomposition D2 = decompose(Spec, Ctx, Off);
  EXPECT_TRUE(D2.Obligations.empty());
}

TEST_F(DecompositionTest, RelatedPreObligationsComeFirst) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { bool enq; }
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
      G (enq -> [x <- x + 1]);
    }
  )");
  Decomposition D = decompose(Spec, Ctx);
  ASSERT_FALSE(D.Obligations.empty());
  // The first obligations relate pre and post through a shared signal.
  std::vector<std::string> PostSignals, PreSignals;
  collectSignals(D.Obligations[0].Post[0].Atom, PostSignals);
  bool Shares = false;
  for (const TheoryLiteral &L : D.Obligations[0].Pre) {
    std::vector<std::string> S;
    collectSignals(L.Atom, S);
    for (const std::string &N : S)
      Shares |= std::find(PostSignals.begin(), PostSignals.end(), N) !=
                PostSignals.end();
  }
  EXPECT_TRUE(Shares);
}

} // namespace
