//===- tests/core/SynthesizerTest.cpp - Full pipeline tests ---------------===//

#include "core/Synthesizer.h"

#include "core/AssumptionCore.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class SynthesizerTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  Context Ctx;
};

TEST_F(SynthesizerTest, IntroCounterExample) {
  // The introduction's spec: unrealizable in plain TSL, realizable in
  // TSL modulo LIA thanks to the generated assumption.
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_EQ(R.Status, Realizability::Realizable);
  ASSERT_TRUE(R.Machine.has_value());
  EXPECT_GT(R.Stats.AssumptionCount, 0u);
  EXPECT_EQ(R.Stats.PredicateCount, 2u);
  EXPECT_EQ(R.Stats.UpdateTermCount, 2u);
}

TEST_F(SynthesizerTest, PlainTslIsUnrealizableWithoutAssumptions) {
  // The same spec, but with assumption generation disabled (no
  // obligations -> no psi): the plain TSL underapproximation cannot
  // realize it, exactly the paper's point.
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Decomp.MaxObligations = 0;
  Options.Consistency.MaxSubsetSize = 0;
  PipelineResult R = Synth.run(Spec, Options);
  EXPECT_EQ(R.Status, Realizability::Unrealizable);
}

TEST_F(SynthesizerTest, MutexExampleNeedsConsistency) {
  // Sec. 4.2's min example: realizable only with the consistency
  // assumption G !(x < y && y < x).
  Specification Spec = parse(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_EQ(R.Status, Realizability::Realizable);
  EXPECT_FALSE(R.ConsistencyAssumptions.empty());

  // Without consistency checking the spec is unrealizable.
  PipelineOptions NoConsistency;
  NoConsistency.Consistency.MaxSubsetSize = 0;
  PipelineResult R2 = Synth.run(Spec, NoConsistency);
  EXPECT_EQ(R2.Status, Realizability::Unrealizable);
}

TEST_F(SynthesizerTest, RefinementLoopExampleFourSix) {
  // Example 4.6: [x <- x+1] must be followed by [x <- x], so the first
  // SyGuS program (+1;+1) is unhelpful and refinement must find
  // (+1; skip; +1).
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      [x <- x + 1] -> X [x <- x];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_EQ(R.Status, Realizability::Realizable);
  EXPECT_GT(R.Stats.Refinements, 0u);
}

TEST_F(SynthesizerTest, VibratoStyleSpec) {
  // A cut-down Fig. 5 vibrato: threshold-crossing liveness over a real
  // cell.
  Specification Spec = parse(R"(
    #RA#
    cells { real freq = 0; bool lfo; }
    always guarantee {
      [freq <- freq + 1] || [freq <- freq - 1];
      freq <= c10() -> F (freq > c10());
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_EQ(R.Status, Realizability::Realizable);
  EXPECT_GT(R.Stats.AssumptionCount, 0u);
}

TEST_F(SynthesizerTest, LazyModeMatchesEagerVerdict) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineOptions Lazy;
  Lazy.Eager = false;
  PipelineResult R = Synth.run(Spec, Lazy);
  EXPECT_EQ(R.Status, Realizability::Realizable);
  // Lazy mode re-runs reactive synthesis at least once more than eager.
  EXPECT_GE(R.Stats.ReactiveRuns, 1u);
}

TEST_F(SynthesizerTest, StatsTimingsPopulated) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_GT(R.Stats.SpecSize, 0u);
  EXPECT_GE(R.Stats.PsiGenSeconds, 0.0);
  EXPECT_GE(R.Stats.SynthesisSeconds, 0.0);
  EXPECT_GE(R.Stats.ReactiveRuns, 1u);
}

TEST_F(SynthesizerTest, OracleMinimizesAssumptions) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);
  OracleResult O = computeOracle(Spec, R.Assumptions, Ctx);
  EXPECT_EQ(O.Status, Realizability::Realizable);
  EXPECT_LE(O.Core.size(), R.Assumptions.size());
  EXPECT_GT(O.RealizabilityChecks, 0u);
  // The core must still be realizable (checked inside computeOracle) and
  // nonempty for this spec (plain TSL alone is unrealizable).
  EXPECT_GE(O.Core.size(), 1u);
}

TEST_F(SynthesizerTest, TinyReactiveBudgetsSurfaceUnknown) {
  // Budget exhaustion inside the reactive engine must reach the
  // pipeline verdict as Unknown -- never as Unrealizable, which would
  // wrongly claim the spec has no controller.
  const char *Source = R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )";
  {
    Specification Spec = parse(Source);
    Synthesizer Synth(Ctx);
    PipelineOptions Options;
    Options.Reactive.StateBudget = 1;
    PipelineResult R = Synth.run(Spec, Options);
    EXPECT_EQ(R.Status, Realizability::Unknown);
    EXPECT_FALSE(R.Machine.has_value());
  }
  {
    Specification Spec = parse(Source);
    Synthesizer Synth(Ctx);
    PipelineOptions Options;
    Options.Reactive.Tableau.MaxGeneralizedStates = 1;
    PipelineResult R = Synth.run(Spec, Options);
    EXPECT_EQ(R.Status, Realizability::Unknown);
    EXPECT_FALSE(R.Machine.has_value());
  }
}

TEST_F(SynthesizerTest, UnrealizableSpecReported) {
  // x must eventually exceed any input... the guarantee G p over an
  // environment-controlled predicate is hopeless.
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      a < x;
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  EXPECT_EQ(R.Status, Realizability::Unrealizable);
}

} // namespace
