//===- tests/core/ParallelConsistencyTest.cpp - Determinism tests ---------===//
///
/// The determinism guarantee of the solver-service redesign: fanning the
/// Sec. 4.2 consistency sweep and per-obligation SyGuS across worker
/// threads must emit byte-for-byte the same assumption set as the serial
/// pipeline, for every thread count.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace temos;

namespace {

/// Renders the full assumption output of one pipeline run: consistency
/// assumptions followed by SyGuS assumptions, in emission order.
std::string renderAssumptions(const PipelineResult &R) {
  std::string Out;
  for (const Formula *A : R.ConsistencyAssumptions)
    Out += A->str() + "\n";
  for (const GeneratedAssumption &A : R.SygusAssumptions)
    Out += A.Assumption->str() + "\n";
  return Out;
}

/// Runs the psi-generation front end of the pipeline on \p Source with
/// \p NumThreads workers and returns the rendered assumption set.
std::string runWithThreads(const std::string &Source, unsigned NumThreads) {
  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  EXPECT_TRUE(Spec.ok()) << Spec.error().str();
  if (!Spec)
    return "<parse error>";
  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Parallelism.NumThreads = NumThreads;
  // The comparison is about psi generation; strangle the reactive
  // back end so the sweep over all benchmarks stays fast. The emitted
  // assumption set is unaffected (refinement is disabled too, since it
  // could rewrite assumptions based on reactive outcomes).
  Options.Reactive.BoundSchedule = {1};
  Options.Reactive.StateBudget = 1000;
  Options.MaxRefinements = 0;
  PipelineResult R = Synth.run(*Spec, Options);
  EXPECT_TRUE(R.Diagnostic.empty()) << R.Diagnostic;
  return renderAssumptions(R);
}

TEST(ParallelConsistency, BundledBenchmarksMatchSerial) {
  // Every bundled Table-1 benchmark: the NumThreads=4 assumption set is
  // byte-identical to the NumThreads=1 one.
  for (const BenchmarkSpec &B : allBenchmarks()) {
    std::string Serial = runWithThreads(B.Source, 1);
    std::string Parallel = runWithThreads(B.Source, 4);
    EXPECT_EQ(Serial, Parallel) << B.Name;
  }
}

TEST(ParallelConsistency, ConsistencyCheckerDirectFanOut) {
  // Drive checkConsistency directly with a predicate set large enough
  // that the powerset sweep actually spreads across workers.
  const std::string Source = R"(
    #LIA#
    inputs { int a, b, c, d; }
    cells { int m = 0; }
    always guarantee {
      G (a < b -> [m <- a]);
      G (b < c -> [m <- b]);
      G (c < d -> [m <- c]);
      G (d < a -> [m <- d]);
      G (a = b -> [m <- m]);
      G (c = d -> [m <- m]);
    }
  )";

  auto run = [&](unsigned NumThreads) {
    Context Ctx;
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    Decomposition D = decompose(*Spec, Ctx);
    SolverService::Config C;
    C.NumThreads = NumThreads;
    SolverService Svc(Spec->Th, C);
    ConsistencyResult R = checkConsistency(D.PredicateLiterals, Spec->Th,
                                           Ctx, {}, &Svc);
    std::string Out;
    for (const Formula *A : R.Assumptions)
      Out += A->str() + "\n";
    return Out;
  };

  std::string Serial = run(1);
  EXPECT_FALSE(Serial.empty());
  for (unsigned Threads : {2u, 4u, 8u})
    EXPECT_EQ(Serial, run(Threads)) << Threads << " threads";
}

TEST(ParallelConsistency, RepeatedRunHitsTheCache) {
  // The service's cache is structural, so a second run of the same spec
  // on the same Synthesizer answers its queries from the cache.
  const BenchmarkSpec *B = findBenchmark("Simple");
  ASSERT_NE(B, nullptr);
  Context Ctx;
  auto Spec = parseSpecification(B->Source, Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);

  PipelineResult First = Synth.run(*Spec);
  EXPECT_GT(First.Stats.CacheMisses, 0u);

  PipelineResult Second = Synth.run(*Spec);
  EXPECT_GT(Second.Stats.CacheHits, 0u);
  EXPECT_EQ(renderAssumptions(First), renderAssumptions(Second));
}

TEST(PipelineValidate, RejectsZeroThreads) {
  PipelineOptions Options;
  Options.Parallelism.NumThreads = 0;
  EXPECT_FALSE(Options.validate().empty());
}

TEST(PipelineValidate, RejectsLoopCapAboveSygusCap) {
  PipelineOptions Options;
  Options.MaxLoopAssumptions = 20;
  Options.MaxSygusAssumptions = 10;
  EXPECT_FALSE(Options.validate().empty());
}

TEST(PipelineValidate, AcceptsDefaults) {
  PipelineOptions Options;
  EXPECT_EQ(Options.validate(), "");
}

TEST(PipelineValidate, RunRefusesInvalidOptions) {
  Context Ctx;
  auto Spec = parseSpecification("inputs { bool p; }", Ctx);
  ASSERT_TRUE(Spec.ok());
  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Parallelism.NumThreads = 0;
  PipelineResult R = Synth.run(*Spec, Options);
  EXPECT_EQ(R.Status, Realizability::Unknown);
  EXPECT_FALSE(R.Diagnostic.empty());
}

} // namespace
