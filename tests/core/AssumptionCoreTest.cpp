//===- tests/core/AssumptionCoreTest.cpp - Fig. 4 oracle tests ------------===//

#include "core/AssumptionCore.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class AssumptionCoreTest : public ::testing::Test {
protected:
  Specification parse(const std::string &Source) {
    auto Spec = parseSpecification(Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << Spec.error().str();
    return *Spec;
  }

  Context Ctx;
};

TEST_F(AssumptionCoreTest, DropsSuperfluousAssumptions) {
  // The counter spec plus a junk assumption: the core must not need it.
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);
  ASSERT_GE(R.Assumptions.size(), 2u);

  // Add a valid-but-useless extra assumption.
  auto JunkR = parseFormula("G (x = 2 -> ! (x = 0))", Spec, Ctx);
  ASSERT_TRUE(JunkR.ok()) << JunkR.error().str();
  const Formula *Junk = *JunkR;
  std::vector<const Formula *> WithJunk = R.Assumptions;
  WithJunk.push_back(Ctx.Formulas.globally(Junk));

  OracleResult O = computeOracle(Spec, WithJunk, Ctx);
  EXPECT_EQ(O.Status, Realizability::Realizable);
  EXPECT_LT(O.Core.size(), WithJunk.size());
  // The two-increment assumption must survive (the spec is unrealizable
  // without any data knowledge).
  EXPECT_GE(O.Core.size(), 1u);
}

TEST_F(AssumptionCoreTest, UnrealizableWithAllAssumptionsReported) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x];
      a < x;
    }
  )");
  OracleResult O = computeOracle(Spec, {}, Ctx);
  EXPECT_EQ(O.Status, Realizability::Unrealizable);
  EXPECT_TRUE(O.Core.empty());
}

TEST_F(AssumptionCoreTest, EmptySetStaysEmptyWhenRealizable) {
  Specification Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee { [x <- x + 1]; }
  )");
  OracleResult O = computeOracle(Spec, {}, Ctx);
  EXPECT_EQ(O.Status, Realizability::Realizable);
  EXPECT_TRUE(O.Core.empty());
  EXPECT_GT(O.RealizabilityChecks, 0u);
  EXPECT_GE(O.OracleSynthesisSeconds, 0.0);
}

TEST_F(AssumptionCoreTest, CoreIsStillRealizable) {
  Specification Spec = parse(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      G (x < y -> [m <- x]);
      G (y < x -> [m <- y]);
    }
  )");
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(Spec);
  ASSERT_EQ(R.Status, Realizability::Realizable);
  OracleResult O = computeOracle(Spec, R.Assumptions, Ctx);
  ASSERT_EQ(O.Status, Realizability::Realizable);
  // Verify the reduced set really suffices.
  const Formula *Phi = Synth.formulaWithAssumptions(Spec, O.Core);
  std::vector<const Formula *> ForAlphabet = O.Core;
  ForAlphabet.push_back(Phi);
  Alphabet AB = Alphabet::build(Spec, Ctx, ForAlphabet);
  EXPECT_EQ(checkRealizable(Phi, Ctx, AB), Realizability::Realizable);
}

} // namespace
