//===- tests/core/ConsistencyCheckerTest.cpp - Sec. 4.2 tests -------------===//

#include "core/ConsistencyChecker.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class ConsistencyCheckerTest : public ::testing::Test {
protected:
  const Term *cmp(const char *Op, const Term *A, const Term *B) {
    return Ctx.Terms.apply(Op, Sort::Bool, {A, B});
  }

  Context Ctx;
};

TEST_F(ConsistencyCheckerTest, MutexExample) {
  // The Sec. 4.2 example: predicates x < y and y < x; their conjunction
  // is unsatisfiable, producing G !(x < y && y < x).
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Y = Ctx.Terms.signal("y", Sort::Int);
  std::vector<const Term *> Preds = {cmp("<", X, Y), cmp("<", Y, X)};
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx);
  ASSERT_EQ(R.Assumptions.size(), 1u);
  EXPECT_EQ(R.Assumptions[0]->str(), "G ! ((x < y) && (y < x))");
}

TEST_F(ConsistencyCheckerTest, ConsistentPredicatesProduceNothing) {
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  std::vector<const Term *> Preds = {cmp("<", X, Ctx.Terms.numeral(5)),
                                     cmp(">", X, Ctx.Terms.numeral(0))};
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx);
  EXPECT_TRUE(R.Assumptions.empty());
  EXPECT_GT(R.SolverQueries, 0u);
}

TEST_F(ConsistencyCheckerTest, SingleLiteralContradiction) {
  // x < x alone is unsatisfiable.
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  std::vector<const Term *> Preds = {cmp("<", X, X)};
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx);
  ASSERT_EQ(R.Assumptions.size(), 1u);
  EXPECT_EQ(R.Assumptions[0]->str(), "G ! (x < x)");
}

TEST_F(ConsistencyCheckerTest, MinimalCoresSuppressSupersets) {
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Y = Ctx.Terms.signal("y", Sort::Int);
  const Term *Z = Ctx.Terms.signal("z", Sort::Int);
  // {x<y, y<x} unsat; adding z<z's companions should not re-report
  // supersets in minimal mode.
  std::vector<const Term *> Preds = {cmp("<", X, Y), cmp("<", Y, X),
                                     cmp("<", Z, Ctx.Terms.numeral(3))};
  ConsistencyOptions Minimal;
  Minimal.MinimalCoresOnly = true;
  ConsistencyResult RMin = checkConsistency(Preds, Theory::LIA, Ctx, Minimal);
  EXPECT_EQ(RMin.Assumptions.size(), 1u);

  ConsistencyOptions Full;
  Full.MinimalCoresOnly = false;
  ConsistencyResult RFull = checkConsistency(Preds, Theory::LIA, Ctx, Full);
  // Powerset mode reports the pair and its size-3 superset.
  EXPECT_EQ(RFull.Assumptions.size(), 2u);
  EXPECT_GE(RFull.SolverQueries, RMin.SolverQueries);
}

TEST_F(ConsistencyCheckerTest, ThreeWayCoreNeedsSizeThree) {
  // x < y, y < z, z < x: pairwise consistent, jointly unsat.
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Y = Ctx.Terms.signal("y", Sort::Int);
  const Term *Z = Ctx.Terms.signal("z", Sort::Int);
  std::vector<const Term *> Preds = {cmp("<", X, Y), cmp("<", Y, Z),
                                     cmp("<", Z, X)};
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx);
  ASSERT_EQ(R.Assumptions.size(), 1u);
  EXPECT_NE(R.Assumptions[0]->str().find("(x < y)"), std::string::npos);
  EXPECT_NE(R.Assumptions[0]->str().find("(y < z)"), std::string::npos);
  EXPECT_NE(R.Assumptions[0]->str().find("(z < x)"), std::string::npos);
}

TEST_F(ConsistencyCheckerTest, SubsetSizeCap) {
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Y = Ctx.Terms.signal("y", Sort::Int);
  const Term *Z = Ctx.Terms.signal("z", Sort::Int);
  std::vector<const Term *> Preds = {cmp("<", X, Y), cmp("<", Y, Z),
                                     cmp("<", Z, X)};
  ConsistencyOptions Options;
  Options.MaxSubsetSize = 2; // The size-3 core is out of reach.
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx, Options);
  EXPECT_TRUE(R.Assumptions.empty());
}

TEST_F(ConsistencyCheckerTest, EmptyPredicateSet) {
  ConsistencyResult R = checkConsistency({}, Theory::LIA, Ctx);
  EXPECT_TRUE(R.Assumptions.empty());
  EXPECT_EQ(R.SolverQueries, 0u);
}

TEST_F(ConsistencyCheckerTest, EqualityChainUnsat) {
  // x = 0 && x = 2 is unsatisfiable: exactly the consistency fact the
  // intro example needs.
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  std::vector<const Term *> Preds = {cmp("=", X, Ctx.Terms.numeral(0)),
                                     cmp("=", X, Ctx.Terms.numeral(2))};
  ConsistencyResult R = checkConsistency(Preds, Theory::LIA, Ctx);
  ASSERT_EQ(R.Assumptions.size(), 1u);
}

} // namespace
