//===- tests/property/PropertyTest.cpp - Property-based invariants --------===//
///
/// \file
/// Randomized (deterministically seeded) property tests over the
/// substrate invariants:
///  * rational arithmetic obeys the field axioms,
///  * NNF preserves truth under every boolean assignment,
///  * simplex models satisfy the asserted atoms; unsat verdicts agree
///    with brute force on small integer grids,
///  * the tableau respects basic logical laws (F && !F unsat, ...),
///  * SyGuS-verified sequential programs satisfy their obligations on
///    concrete runs.
///
//===----------------------------------------------------------------------===//

#include "automata/Tableau.h"
#include "logic/Simplify.h"
#include "logic/Parser.h"
#include "support/Rng.h"
#include "sygus/SygusSolver.h"
#include "theory/Evaluator.h"
#include "theory/Simplex.h"
#include "theory/SmtSolver.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

/// Effective seed for one parameterized case: the suite's built-in
/// parameter unless the TEMOS_SEED environment variable overrides it.
/// Callers wrap it in SCOPED_TRACE so every failure names the exact
/// rerun command.
uint64_t caseSeed(int64_t Param) {
  return resolveSeed(static_cast<uint64_t>(Param));
}

//===----------------------------------------------------------------------===//
// Rational field axioms.
//===----------------------------------------------------------------------===//

class RationalProperties : public ::testing::TestWithParam<int> {};

TEST_P(RationalProperties, FieldAxioms) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  for (int I = 0; I < 200; ++I) {
    Rational A(R.range(-50, 50), R.range(1, 20));
    Rational B(R.range(-50, 50), R.range(1, 20));
    Rational C(R.range(-50, 50), R.range(1, 20));
    EXPECT_EQ(A + B, B + A);
    EXPECT_EQ((A + B) + C, A + (B + C));
    EXPECT_EQ(A * B, B * A);
    EXPECT_EQ((A * B) * C, A * (B * C));
    EXPECT_EQ(A * (B + C), A * B + A * C);
    EXPECT_EQ(A + Rational(0), A);
    EXPECT_EQ(A * Rational(1), A);
    EXPECT_EQ(A - A, Rational(0));
    if (!B.isZero())
      EXPECT_EQ((A / B) * B, A);
    // Order consistency.
    EXPECT_EQ(A < B, !(B <= A));
    // Floor/ceil bracket the value.
    EXPECT_LE(Rational(A.floor()), A);
    EXPECT_GE(Rational(A.ceil()), A);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalProperties,
                         ::testing::Values(1, 2, 3, 4, 5));

//===----------------------------------------------------------------------===//
// NNF truth preservation.
//===----------------------------------------------------------------------===//

class NnfProperties : public ::testing::TestWithParam<int> {
protected:
  const Formula *randomBooleanFormula(Rng &R, FormulaFactory &FF,
                                      const std::vector<const Formula *> &Atoms,
                                      int Depth) {
    if (Depth == 0 || R.range(0, 3) == 0)
      return Atoms[R.range(0, static_cast<int64_t>(Atoms.size()) - 1)];
    switch (R.range(0, 4)) {
    case 0:
      return FF.notF(randomBooleanFormula(R, FF, Atoms, Depth - 1));
    case 1:
      return FF.andF(randomBooleanFormula(R, FF, Atoms, Depth - 1),
                     randomBooleanFormula(R, FF, Atoms, Depth - 1));
    case 2:
      return FF.orF(randomBooleanFormula(R, FF, Atoms, Depth - 1),
                    randomBooleanFormula(R, FF, Atoms, Depth - 1));
    case 3:
      return FF.implies(randomBooleanFormula(R, FF, Atoms, Depth - 1),
                        randomBooleanFormula(R, FF, Atoms, Depth - 1));
    default:
      return FF.iff(randomBooleanFormula(R, FF, Atoms, Depth - 1),
                    randomBooleanFormula(R, FF, Atoms, Depth - 1));
    }
  }

  bool evalBool(const Formula *F, const std::vector<bool> &Assign,
                const std::vector<const Formula *> &Atoms) {
    switch (F->kind()) {
    case Formula::Kind::True:
      return true;
    case Formula::Kind::False:
      return false;
    case Formula::Kind::Pred: {
      for (size_t I = 0; I < Atoms.size(); ++I)
        if (Atoms[I] == F)
          return Assign[I];
      ADD_FAILURE() << "unknown atom";
      return false;
    }
    case Formula::Kind::Not:
      return !evalBool(F->child(0), Assign, Atoms);
    case Formula::Kind::And: {
      for (const Formula *Kid : F->children())
        if (!evalBool(Kid, Assign, Atoms))
          return false;
      return true;
    }
    case Formula::Kind::Or: {
      for (const Formula *Kid : F->children())
        if (evalBool(Kid, Assign, Atoms))
          return true;
      return false;
    }
    case Formula::Kind::Implies:
      return !evalBool(F->lhs(), Assign, Atoms) ||
             evalBool(F->rhs(), Assign, Atoms);
    case Formula::Kind::Iff:
      return evalBool(F->lhs(), Assign, Atoms) ==
             evalBool(F->rhs(), Assign, Atoms);
    default:
      ADD_FAILURE() << "unexpected node";
      return false;
    }
  }
};

TEST_P(NnfProperties, NnfPreservesTruth) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  TermFactory TF;
  FormulaFactory FF;
  std::vector<const Formula *> Atoms;
  for (const char *Name : {"a", "b", "c"})
    Atoms.push_back(FF.pred(TF.signal(Name, Sort::Bool)));

  for (int Trial = 0; Trial < 60; ++Trial) {
    const Formula *F = randomBooleanFormula(R, FF, Atoms, 4);
    const Formula *N = FF.toNNF(F);
    // NNF has negations only on atoms.
    bool DeepNegation = false;
    std::function<void(const Formula *)> Check = [&](const Formula *Node) {
      if (Node->is(Formula::Kind::Not) && !Node->child(0)->isAtom())
        DeepNegation = true;
      if (Node->is(Formula::Kind::Implies) || Node->is(Formula::Kind::Iff))
        DeepNegation = true;
      for (const Formula *Kid : Node->children())
        Check(Kid);
    };
    Check(N);
    EXPECT_FALSE(DeepNegation) << N->str();

    for (unsigned Mask = 0; Mask < 8; ++Mask) {
      std::vector<bool> Assign = {(Mask & 1) != 0, (Mask & 2) != 0,
                                  (Mask & 4) != 0};
      EXPECT_EQ(evalBool(F, Assign, Atoms), evalBool(N, Assign, Atoms))
          << F->str() << "  vs  " << N->str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NnfProperties, ::testing::Values(7, 8, 9));

//===----------------------------------------------------------------------===//
// SMT solver vs brute force on small integer boxes.
//===----------------------------------------------------------------------===//

class SmtProperties : public ::testing::TestWithParam<int> {};

TEST_P(SmtProperties, AgreesWithBruteForce) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  TermFactory TF;
  const Term *X = TF.signal("x", Sort::Int);
  const Term *Y = TF.signal("y", Sort::Int);
  Evaluator E;

  for (int Trial = 0; Trial < 40; ++Trial) {
    // Random conjunction of 3 atoms: (ax + by) REL c within a small box.
    std::vector<TheoryLiteral> Literals;
    // Box bounds keep brute force feasible and match the solver domain.
    auto Bound = [&](const Term *V, const char *Op, int64_t C) {
      Literals.push_back({TF.apply(Op, Sort::Bool, {V, TF.numeral(C)}), true});
    };
    Bound(X, ">=", -6);
    Bound(X, "<=", 6);
    Bound(Y, ">=", -6);
    Bound(Y, "<=", 6);
    static const char *Rels[] = {"<", "<=", ">", ">=", "="};
    for (int I = 0; I < 3; ++I) {
      const Term *Lhs = TF.apply(
          "+", Sort::Int,
          {TF.apply("*", Sort::Int, {TF.numeral(R.range(-3, 3)), X}),
           TF.apply("*", Sort::Int, {TF.numeral(R.range(-3, 3)), Y})});
      const Term *Atom = TF.apply(Rels[R.range(0, 4)], Sort::Bool,
                                  {Lhs, TF.numeral(R.range(-8, 8))});
      Literals.push_back({Atom, R.range(0, 1) == 0});
    }

    SmtSolver Solver(Theory::LIA);
    Assignment Model;
    SatResult Verdict = Solver.checkLiterals(Literals, &Model);

    // Brute force over the box.
    bool BruteSat = false;
    for (int64_t XV = -6; XV <= 6 && !BruteSat; ++XV)
      for (int64_t YV = -6; YV <= 6 && !BruteSat; ++YV) {
        Assignment Env = {{"x", Value::integer(XV)},
                          {"y", Value::integer(YV)}};
        bool All = true;
        for (const TheoryLiteral &L : Literals) {
          auto V = E.evaluateBool(L.Atom, Env);
          if (!V || *V != L.Positive) {
            All = false;
            break;
          }
        }
        BruteSat |= All;
      }

    ASSERT_NE(Verdict, SatResult::Unknown);
    EXPECT_EQ(Verdict == SatResult::Sat, BruteSat) << "trial " << Trial;
    if (Verdict == SatResult::Sat) {
      // The model must satisfy every literal.
      for (const TheoryLiteral &L : Literals) {
        auto V = E.evaluateBool(L.Atom, Model);
        ASSERT_TRUE(V.has_value());
        EXPECT_EQ(*V, L.Positive);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtProperties,
                         ::testing::Values(11, 12, 13, 14));

//===----------------------------------------------------------------------===//
// Tableau logical laws.
//===----------------------------------------------------------------------===//

class TableauProperties : public ::testing::TestWithParam<int> {
protected:
  const Formula *randomLtl(Rng &R, FormulaFactory &FF,
                           const std::vector<const Formula *> &Atoms,
                           int Depth) {
    if (Depth == 0 || R.range(0, 3) == 0)
      return Atoms[R.range(0, static_cast<int64_t>(Atoms.size()) - 1)];
    switch (R.range(0, 6)) {
    case 0:
      return FF.notF(randomLtl(R, FF, Atoms, Depth - 1));
    case 1:
      return FF.andF(randomLtl(R, FF, Atoms, Depth - 1),
                     randomLtl(R, FF, Atoms, Depth - 1));
    case 2:
      return FF.orF(randomLtl(R, FF, Atoms, Depth - 1),
                    randomLtl(R, FF, Atoms, Depth - 1));
    case 3:
      return FF.next(randomLtl(R, FF, Atoms, Depth - 1));
    case 4:
      return FF.globally(randomLtl(R, FF, Atoms, Depth - 1));
    case 5:
      return FF.finallyF(randomLtl(R, FF, Atoms, Depth - 1));
    default:
      return FF.until(randomLtl(R, FF, Atoms, Depth - 1),
                      randomLtl(R, FF, Atoms, Depth - 1));
    }
  }
};

TEST_P(TableauProperties, LogicalLaws) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  Context Ctx;
  auto Spec = parseSpecification("inputs { bool a, b; }", Ctx);
  ASSERT_TRUE(Spec.ok());
  std::vector<const Formula *> Atoms = {
      Ctx.Formulas.pred(Ctx.Terms.signal("a", Sort::Bool)),
      Ctx.Formulas.pred(Ctx.Terms.signal("b", Sort::Bool))};

  for (int Trial = 0; Trial < 25; ++Trial) {
    const Formula *F = randomLtl(R, Ctx.Formulas, Atoms, 3);
    // Register both atoms regardless of which ones F mentions: the law
    // checks below combine F with them.
    Alphabet AB = Alphabet::build(*Spec, Ctx, {F, Atoms[0], Atoms[1]});
    bool SatF = isSatisfiable(F, Ctx, AB);
    bool SatNotF = isSatisfiable(Ctx.Formulas.notF(F), Ctx, AB);
    // Excluded middle at the trace level.
    EXPECT_TRUE(SatF || SatNotF) << F->str();
    // Contradiction law.
    EXPECT_FALSE(
        isSatisfiable(Ctx.Formulas.andF(F, Ctx.Formulas.notF(F)), Ctx, AB))
        << F->str();
    // Monotonicity: F satisfiable implies F || anything satisfiable.
    if (SatF)
      EXPECT_TRUE(isSatisfiable(Ctx.Formulas.orF(F, Atoms[0]), Ctx, AB));
    // G F idempotence: sat(G f) implies sat(f).
    EXPECT_EQ(isSatisfiable(Ctx.Formulas.globally(F), Ctx, AB) && true,
              isSatisfiable(Ctx.Formulas.globally(F), Ctx, AB));
    if (isSatisfiable(Ctx.Formulas.globally(F), Ctx, AB))
      EXPECT_TRUE(SatF) << "G " << F->str();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableauProperties,
                         ::testing::Values(21, 22, 23));

//===----------------------------------------------------------------------===//
// Verified SyGuS programs satisfy their obligations concretely.
//===----------------------------------------------------------------------===//

class SygusProperties : public ::testing::TestWithParam<int> {};

TEST_P(SygusProperties, VerifiedProgramsHoldOnConcreteRuns) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  Context Ctx;
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Inc = Ctx.Terms.apply("+", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Dec = Ctx.Terms.apply("-", Sort::Int, {X, Ctx.Terms.numeral(1)});
  Evaluator E;

  for (int Trial = 0; Trial < 20; ++Trial) {
    int64_t Start = R.range(-3, 3);
    int64_t TargetDelta = R.range(-3, 3);
    SygusSolver Solver(Ctx, Theory::LIA);
    SygusQuery Q;
    Q.Cells = {{"x", Sort::Int, {Inc, Dec, X}}};
    Q.Pre = {{Ctx.Terms.apply("=", Sort::Bool, {X, Ctx.Terms.numeral(Start)}),
              true}};
    Q.Post = {{Ctx.Terms.apply(
                   "=", Sort::Bool,
                   {X, Ctx.Terms.numeral(Start + TargetDelta)}),
               true}};
    unsigned Steps = static_cast<unsigned>(
        TargetDelta >= 0 ? TargetDelta : -TargetDelta);
    if (Steps == 0)
      Steps = 2; // Reach the same value in two steps (+1 then -1).
    auto P = Solver.synthesizeSequential(Q, Steps);
    ASSERT_TRUE(P.has_value()) << "start " << Start << " delta "
                               << TargetDelta;

    // Execute from the pre-condition state: post must hold.
    Assignment State = {{"x", Value::integer(Start)}};
    for (const StepChoice &Step : P->Steps)
      ASSERT_TRUE(applyStepConcrete(E, State, Step));
    EXPECT_EQ(State.at("x").getNumber(), Rational(Start + TargetDelta));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SygusProperties,
                         ::testing::Values(31, 32, 33));

//===----------------------------------------------------------------------===//
// Simplifier preserves the language (checked via tableau satisfiability
// of the XOR-style combinations).
//===----------------------------------------------------------------------===//

class SimplifyProperties : public TableauProperties {};

TEST_P(SimplifyProperties, SimplifyPreservesSatisfiability) {
  const uint64_t Seed = caseSeed(GetParam() + 100);
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  Context Ctx;
  auto Spec = parseSpecification("inputs { bool a, b; }", Ctx);
  ASSERT_TRUE(Spec.ok());
  std::vector<const Formula *> Atoms = {
      Ctx.Formulas.pred(Ctx.Terms.signal("a", Sort::Bool)),
      Ctx.Formulas.pred(Ctx.Terms.signal("b", Sort::Bool))};

  for (int Trial = 0; Trial < 20; ++Trial) {
    const Formula *F = randomLtl(R, Ctx.Formulas, Atoms, 3);
    const Formula *S = simplify(F, Ctx.Formulas);
    Alphabet AB = Alphabet::build(*Spec, Ctx, {F, S, Atoms[0], Atoms[1]});
    // Equivalence: F && !S and !F && S must both be unsatisfiable.
    EXPECT_FALSE(isSatisfiable(
        Ctx.Formulas.andF(F, Ctx.Formulas.notF(S)), Ctx, AB))
        << F->str() << "  vs  " << S->str();
    EXPECT_FALSE(isSatisfiable(
        Ctx.Formulas.andF(Ctx.Formulas.notF(F), S), Ctx, AB))
        << F->str() << "  vs  " << S->str();
    // Note: no size assertion -- distribution rules (G over &&, F over
    // ||) intentionally trade node count for automaton-state sharing.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperties,
                         ::testing::Values(41, 42, 43));

//===----------------------------------------------------------------------===//
// verifySequential agrees with exhaustive simulation on input-free
// queries (soundness AND completeness on a finite box).
//===----------------------------------------------------------------------===//

class VerifierProperties : public ::testing::TestWithParam<int> {};

TEST_P(VerifierProperties, SequentialVerifierMatchesBruteForce) {
  const uint64_t Seed = caseSeed(GetParam());
  SCOPED_TRACE(::testing::Message() << "reproduce with TEMOS_SEED=" << Seed);
  Rng R(Seed);
  Context Ctx;
  const Term *X = Ctx.Terms.signal("x", Sort::Int);
  const Term *Inc = Ctx.Terms.apply("+", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Dec = Ctx.Terms.apply("-", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Dbl = Ctx.Terms.apply("*", Sort::Int, {Ctx.Terms.numeral(2), X});
  std::vector<const Term *> Updates = {Inc, Dec, Dbl, X};
  Evaluator E;

  for (int Trial = 0; Trial < 30; ++Trial) {
    // Random 1-3 step program over the updates.
    SequentialProgram Program;
    size_t Steps = static_cast<size_t>(R.range(1, 3));
    for (size_t I = 0; I < Steps; ++I)
      Program.Steps.push_back({{"x", Updates[R.range(0, 3)]}});

    // Pre: lo <= x <= hi; post: x REL c.
    int64_t Lo = R.range(-4, 0), Hi = R.range(0, 4);
    static const char *Rels[] = {"<", "<=", ">", ">=", "="};
    const char *Rel = Rels[R.range(0, 4)];
    int64_t C = R.range(-10, 10);

    SygusSolver Solver(Ctx, Theory::LIA);
    SygusQuery Q;
    Q.Cells = {{"x", Sort::Int, Updates}};
    Q.Pre = {
        {Ctx.Terms.apply(">=", Sort::Bool, {X, Ctx.Terms.numeral(Lo)}), true},
        {Ctx.Terms.apply("<=", Sort::Bool, {X, Ctx.Terms.numeral(Hi)}), true}};
    Q.Post = {{Ctx.Terms.apply(Rel, Sort::Bool, {X, Ctx.Terms.numeral(C)}),
               true}};

    bool Verified = Solver.verifySequential(Q, Program);

    // Brute force: every start value in [Lo, Hi] must reach the post.
    bool Brute = true;
    for (int64_t Start = Lo; Start <= Hi; ++Start) {
      Assignment State = {{"x", Value::integer(Start)}};
      for (const StepChoice &Step : Program.Steps)
        ASSERT_TRUE(applyStepConcrete(E, State, Step));
      auto V = E.evaluateBool(Q.Post[0].Atom, State);
      ASSERT_TRUE(V.has_value());
      Brute &= *V;
    }
    EXPECT_EQ(Verified, Brute)
        << "program " << Program.str() << " pre [" << Lo << "," << Hi
        << "] post x " << Rel << " " << C;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerifierProperties,
                         ::testing::Values(51, 52, 53, 54));

} // namespace
