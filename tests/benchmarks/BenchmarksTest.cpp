//===- tests/benchmarks/BenchmarksTest.cpp - Benchmark suite tests --------===//
///
/// \file
/// Integration tests over the Table-1 benchmark registry: every spec
/// parses; the fast benchmarks synthesize end to end (the full 16-row
/// sweep lives in bench/table1, not in the unit suite).
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"

#include "logic/Parser.h"
#include "tsl2ltl/TlsfExporter.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

TEST(Benchmarks, RegistryHasSixteenRows) {
  ASSERT_EQ(allBenchmarks().size(), 16u);
  size_t Music = 0, Pong = 0, Escalator = 0, Scheduler = 0;
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Music += B.Family == std::string("Music Synthesizer");
    Pong += B.Family == std::string("Pong");
    Escalator += B.Family == std::string("Escalator");
    Scheduler += B.Family == std::string("CPU Scheduler");
  }
  EXPECT_EQ(Music, 4u);
  EXPECT_EQ(Pong, 4u);
  EXPECT_EQ(Escalator, 4u);
  EXPECT_EQ(Scheduler, 4u);
}

TEST(Benchmarks, FindByName) {
  EXPECT_NE(findBenchmark("CFS"), nullptr);
  EXPECT_NE(findBenchmark("Vibrato"), nullptr);
  EXPECT_EQ(findBenchmark("NoSuchBenchmark"), nullptr);
}

TEST(Benchmarks, AllSpecsParse) {
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Context Ctx;
    auto Spec = parseSpecification(B.Source, Ctx);
    EXPECT_TRUE(Spec.ok()) << B.Name << ": " << Spec.error().str();
    if (!Spec)
      continue;
    EXPECT_FALSE(Spec->AlwaysGuarantees.empty() && Spec->Guarantees.empty())
        << B.Name;
  }
}

/// Parameterized fast-benchmark synthesis: each of these rows must
/// synthesize end to end within the unit-test budget.
class FastBenchmark : public ::testing::TestWithParam<const char *> {};

TEST_P(FastBenchmark, SynthesizesEndToEnd) {
  const BenchmarkSpec *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  BenchmarkRun Run = runBenchmark(*B);
  EXPECT_EQ(Run.Row.Status, Realizability::Realizable) << B->Name;
  EXPECT_GT(Run.Row.SynthesizedLoc, 0u);
  EXPECT_GT(Run.Row.SpecSize, 0u);
}

INSTANTIATE_TEST_SUITE_P(Table1, FastBenchmark,
                         ::testing::Values("Vibrato", "Modulation",
                                           "Single-Player", "Two-Player",
                                           "Bouncing", "Simple", "Counting",
                                           "Bidirectional", "Smart",
                                           "Round Robin", "Preemptive"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });

TEST(Benchmarks, AllSpecsRoundTripThroughPrinter) {
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Context Ctx;
    auto Spec = parseSpecification(B.Source, Ctx);
    ASSERT_TRUE(Spec.ok()) << B.Name << ": " << Spec.error().str();
    std::string Printed = Spec->str();
    Context Ctx2;
    auto Reparsed = parseSpecification(Printed, Ctx2);
    ASSERT_TRUE(Reparsed.ok())
        << B.Name << ": " << Reparsed.error().str() << "\n" << Printed;
    ASSERT_EQ(Reparsed->AlwaysGuarantees.size(),
              Spec->AlwaysGuarantees.size())
        << B.Name;
    for (size_t I = 0; I < Spec->AlwaysGuarantees.size(); ++I)
      EXPECT_EQ(Reparsed->AlwaysGuarantees[I]->str(),
                Spec->AlwaysGuarantees[I]->str())
          << B.Name << " formula " << I;
  }
}

TEST(Benchmarks, AllSpecsExportTlsf) {
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Context Ctx;
    auto Spec = parseSpecification(B.Source, Ctx);
    ASSERT_TRUE(Spec.ok()) << B.Name;
    Alphabet AB = Alphabet::build(*Spec, Ctx);
    std::string Tlsf = exportTlsf(*Spec, AB, Ctx);
    EXPECT_NE(Tlsf.find("INFO {"), std::string::npos) << B.Name;
    EXPECT_NE(Tlsf.find("GUARANTEES {"), std::string::npos) << B.Name;
    // Every predicate and update proposition must be declared.
    for (size_t I = 0; I < AB.predicates().size(); ++I)
      EXPECT_NE(Tlsf.find(tlsfInputName(AB, I)), std::string::npos)
          << B.Name;
    for (size_t C2 = 0; C2 < AB.cells().size(); ++C2)
      for (size_t O = 0; O < AB.cells()[C2].Options.size(); ++O)
        EXPECT_NE(Tlsf.find(tlsfOutputName(AB, C2, O)), std::string::npos)
            << B.Name;
  }
}

TEST(Benchmarks, SpecSizesInPaperRegime) {
  // |phi|, |P|, |F| stay in the paper's small-integer regime.
  for (const BenchmarkSpec &B : allBenchmarks()) {
    Context Ctx;
    auto Spec = parseSpecification(B.Source, Ctx);
    ASSERT_TRUE(Spec.ok()) << B.Name;
    size_t Size = 0;
    for (const Formula *F : Spec->AlwaysGuarantees)
      Size += F->size();
    for (const Formula *F : Spec->Guarantees)
      Size += F->size();
    EXPECT_GE(Size, 5u) << B.Name;
    EXPECT_LE(Size, 120u) << B.Name;
  }
}

} // namespace
