//===- tests/benchmarks/RunnerTest.cpp - Harness formatting tests ---------===//

#include "benchmarks/Runner.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

TEST(Runner, FormatTableLaysOutFamilies) {
  std::vector<BenchmarkRow> Rows;
  BenchmarkRow A;
  A.Family = "Music Synthesizer";
  A.Name = "Vibrato";
  A.Parsed = true;
  A.Status = Realizability::Realizable;
  A.SpecSize = 22;
  A.PredicateCount = 2;
  A.UpdateTermCount = 4;
  A.AssumptionCount = 3;
  A.PsiGenSeconds = 0.1;
  A.SynthesisSeconds = 0.9;
  A.SumSeconds = 1.0;
  A.SynthesizedLoc = 206;
  Rows.push_back(A);
  BenchmarkRow B = A;
  B.Name = "Modulation";
  Rows.push_back(B);
  BenchmarkRow C = A;
  C.Family = "Pong";
  C.Name = "Bouncing";
  C.Status = Realizability::Unrealizable;
  Rows.push_back(C);

  std::string Table = formatTable(Rows);
  // Family headers appear once each.
  EXPECT_NE(Table.find("Music Synthesizer"), std::string::npos);
  EXPECT_NE(Table.find("Pong"), std::string::npos);
  EXPECT_EQ(Table.find("Music Synthesizer"),
            Table.rfind("Music Synthesizer"));
  // Rows and statuses.
  EXPECT_NE(Table.find("Vibrato"), std::string::npos);
  EXPECT_NE(Table.find("UNREALIZABLE"), std::string::npos);
  EXPECT_NE(Table.find("ok"), std::string::npos);
}

TEST(Runner, FormatTableMarksParseErrors) {
  BenchmarkRow Bad;
  Bad.Family = "X";
  Bad.Name = "Broken";
  Bad.Parsed = false;
  std::string Table = formatTable({Bad});
  EXPECT_NE(Table.find("PARSE-ERROR"), std::string::npos);
}

TEST(Runner, RunBenchmarkFillsRow) {
  const BenchmarkSpec *B = findBenchmark("Simple");
  ASSERT_NE(B, nullptr);
  BenchmarkRun Run = runBenchmark(*B);
  EXPECT_TRUE(Run.Row.Parsed);
  EXPECT_EQ(Run.Row.Status, Realizability::Realizable);
  EXPECT_GT(Run.Row.SpecSize, 0u);
  EXPECT_GT(Run.Row.SynthesizedLoc, 0u);
  EXPECT_EQ(Run.Row.Family, std::string("Escalator"));
  ASSERT_TRUE(Run.Result.Machine.has_value());
  EXPECT_GE(Run.Result.Machine->stateCount(), 1u);
}

TEST(Runner, RunBenchmarkHonorsOptions) {
  const BenchmarkSpec *B = findBenchmark("Simple");
  ASSERT_NE(B, nullptr);
  PipelineOptions NoObligations;
  NoObligations.Decomp.MaxObligations = 0;
  NoObligations.Consistency.MaxSubsetSize = 0;
  BenchmarkRun Run = runBenchmark(*B, NoObligations);
  EXPECT_EQ(Run.Row.AssumptionCount, 0u);
  // "Simple" needs no assumptions, so it still synthesizes.
  EXPECT_EQ(Run.Row.Status, Realizability::Realizable);
}

} // namespace
