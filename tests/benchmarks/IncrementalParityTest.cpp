//===- tests/benchmarks/IncrementalParityTest.cpp - Incremental == scratch ===//
///
/// \file
/// Proves the incremental reactive-synthesis engine is observationally
/// identical to from-scratch mode: on every bundled benchmark, running
/// the pipeline with SynthesisOptions::Incremental on and off yields
/// the same verdict, the same generated assumptions, and byte-identical
/// emitted JavaScript and C++. A second group pins jobs=4 to jobs=1
/// under the incremental engine, and a third runs one Synthesizer twice
/// to check the cross-run reuse counters (NBA cache hit, arena states
/// kept alive) actually fire without changing the output.
///
/// The three slowest benchmarks (Multi-effect, Load Balancer, CFS) only
/// run when TEMOS_GOLDEN_SLOW is set, mirroring the golden-file suite.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "codegen/CodeEmitter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

using namespace temos;

namespace {

struct ParityBenchmark {
  const char *Name; ///< As accepted by findBenchmark.
  bool Slow;        ///< Gated behind TEMOS_GOLDEN_SLOW.
};

const ParityBenchmark ParityBenchmarks[] = {
    {"Vibrato", false},       {"Modulation", false},
    {"Intertwined", false},   {"Multi-effect", true},
    {"Single-Player", false}, {"Two-Player", false},
    {"Bouncing", false},      {"Automatic", false},
    {"Simple", false},        {"Counting", false},
    {"Bidirectional", false}, {"Smart", false},
    {"Round Robin", false},   {"Load Balancer", true},
    {"Preemptive", false},    {"CFS", true},
};

/// Everything an outside observer can see of one pipeline run.
struct RunArtifacts {
  Realizability Status = Realizability::Unknown;
  std::vector<std::string> Assumptions;
  std::string Js;
  std::string Cpp;
};

RunArtifacts runOnce(const BenchmarkSpec &B, const PipelineOptions &Options) {
  RunArtifacts A;
  Context Ctx;
  auto Spec = parseSpecification(B.Source, Ctx);
  if (!Spec) {
    ADD_FAILURE() << B.Name << ": " << Spec.error().str();
    return A;
  }
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec, Options);
  EXPECT_TRUE(R.Diagnostic.empty()) << R.Diagnostic;
  A.Status = R.Status;
  for (const Formula *F : R.Assumptions)
    A.Assumptions.push_back(F->str());
  if (R.Machine) {
    A.Js = emitJavaScript(*R.Machine, R.AB, *Spec);
    A.Cpp = emitCpp(*R.Machine, R.AB, *Spec);
  }
  return A;
}

class IncrementalParity : public ::testing::TestWithParam<ParityBenchmark> {};

TEST_P(IncrementalParity, MatchesFromScratch) {
  const ParityBenchmark &P = GetParam();
  if (P.Slow && !std::getenv("TEMOS_GOLDEN_SLOW"))
    GTEST_SKIP() << "set TEMOS_GOLDEN_SLOW to run " << P.Name;
  const BenchmarkSpec *B = findBenchmark(P.Name);
  ASSERT_NE(B, nullptr);

  PipelineOptions Incremental;
  Incremental.Reactive.Incremental = true;
  PipelineOptions Scratch;
  Scratch.Reactive.Incremental = false;

  RunArtifacts Inc = runOnce(*B, Incremental);
  RunArtifacts Fresh = runOnce(*B, Scratch);

  EXPECT_EQ(Inc.Status, Fresh.Status) << P.Name;
  EXPECT_EQ(Inc.Assumptions, Fresh.Assumptions) << P.Name;
  EXPECT_EQ(Inc.Js, Fresh.Js) << P.Name;
  EXPECT_EQ(Inc.Cpp, Fresh.Cpp) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, IncrementalParity, ::testing::ValuesIn(ParityBenchmarks),
    [](const ::testing::TestParamInfo<ParityBenchmark> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// The wave-parallel game exploration merges in deterministic order, so
/// the incremental engine must emit the same machine under any pool
/// width.
TEST(IncrementalParity, JobsFourMatchesJobsOne) {
  for (const char *Name : {"Counting", "Two-Player"}) {
    const BenchmarkSpec *B = findBenchmark(Name);
    ASSERT_NE(B, nullptr);

    PipelineOptions One;
    One.Parallelism.NumThreads = 1;
    PipelineOptions Four;
    Four.Parallelism.NumThreads = 4;

    RunArtifacts Serial = runOnce(*B, One);
    RunArtifacts Parallel = runOnce(*B, Four);

    EXPECT_EQ(Serial.Status, Parallel.Status) << Name;
    EXPECT_EQ(Serial.Js, Parallel.Js) << Name;
    EXPECT_EQ(Serial.Cpp, Parallel.Cpp) << Name;
  }
}

/// Two runs on one Synthesizer: the second must hit the NBA cache and
/// reuse the live arena, and still produce byte-identical output.
TEST(IncrementalParity, SecondRunReusesEngineState) {
  const BenchmarkSpec *B = findBenchmark("Counting");
  ASSERT_NE(B, nullptr);

  Context Ctx;
  auto Spec = parseSpecification(B->Source, Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);

  PipelineResult First = Synth.run(*Spec, {});
  ASSERT_EQ(First.Status, Realizability::Realizable);
  ASSERT_TRUE(First.Machine.has_value());
  std::string FirstJs = emitJavaScript(*First.Machine, First.AB, *Spec);

  PipelineResult Second = Synth.run(*Spec, {});
  ASSERT_EQ(Second.Status, Realizability::Realizable);
  ASSERT_TRUE(Second.Machine.has_value());

  EXPECT_EQ(emitJavaScript(*Second.Machine, Second.AB, *Spec), FirstJs);
  EXPECT_GT(Second.Stats.NbaCacheHits, 0u);
  ASSERT_FALSE(Second.Stats.ReactiveDetail.empty());
  EXPECT_TRUE(Second.Stats.ReactiveDetail.front().NbaCacheHit);
  EXPECT_GT(Second.Stats.ReactiveDetail.front().ArenaStatesReused, 0u);
}

} // namespace
