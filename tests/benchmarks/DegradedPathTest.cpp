//===- tests/benchmarks/DegradedPathTest.cpp - Budget-exhausted runs ------===//
///
/// \file
/// The degraded tier: proves every bundled benchmark fails *cleanly*
/// when its time budget is exhausted -- status Unknown (never a wrong
/// verdict), at least one Timeout failure record, a non-empty
/// diagnostic-free result object -- and, dually, that a deadline which
/// is armed but never fires is observationally invisible: byte-identical
/// assumptions and emitted code against the no-budget reference, at
/// every pool width. The latter pins the core determinism invariant of
/// the deadline subsystem (polls are read-only; the budget is not part
/// of any cache key).
///
/// The three slowest benchmarks (Multi-effect, Load Balancer, CFS) only
/// run their unfired-parity leg when TEMOS_GOLDEN_SLOW is set, mirroring
/// the golden-file suite; the tiny-budget leg is cheap (it aborts within
/// the budget) and always runs.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "codegen/CodeEmitter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

using namespace temos;

namespace {

struct DegradedBenchmark {
  const char *Name; ///< As accepted by findBenchmark.
  bool Slow;        ///< Parity leg gated behind TEMOS_GOLDEN_SLOW.
};

const DegradedBenchmark DegradedBenchmarks[] = {
    {"Vibrato", false},       {"Modulation", false},
    {"Intertwined", false},   {"Multi-effect", true},
    {"Single-Player", false}, {"Two-Player", false},
    {"Bouncing", false},      {"Automatic", false},
    {"Simple", false},        {"Counting", false},
    {"Bidirectional", false}, {"Smart", false},
    {"Round Robin", false},   {"Load Balancer", true},
    {"Preemptive", false},    {"CFS", true},
};

/// Everything an outside observer can see of one pipeline run.
struct RunArtifacts {
  Realizability Status = Realizability::Unknown;
  std::string Diagnostic;
  std::vector<std::string> Assumptions;
  std::vector<FailureRecord> Failures;
  std::string Js;
  std::string Cpp;
};

RunArtifacts runOnce(const BenchmarkSpec &B, const PipelineOptions &Options) {
  RunArtifacts A;
  Context Ctx;
  auto Spec = parseSpecification(B.Source, Ctx);
  if (!Spec) {
    ADD_FAILURE() << B.Name << ": " << Spec.error().str();
    return A;
  }
  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec, Options);
  A.Status = R.Status;
  A.Diagnostic = R.Diagnostic;
  A.Failures = R.Stats.Failures;
  for (const Formula *F : R.Assumptions)
    A.Assumptions.push_back(F->str());
  if (R.Status == Realizability::Realizable && R.Machine) {
    A.Js = emitJavaScript(*R.Machine, R.AB, *Spec);
    A.Cpp = emitCpp(*R.Machine, R.AB, *Spec);
  }
  return A;
}

class DegradedPath : public ::testing::TestWithParam<DegradedBenchmark> {};

/// A budget too small for any benchmark: the run must come back Unknown
/// with a structured Timeout record, not crash, hang, or -- worst --
/// return a confident wrong verdict.
TEST_P(DegradedPath, TinyBudgetDegradesCleanly) {
  const DegradedBenchmark &P = GetParam();
  const BenchmarkSpec *B = findBenchmark(P.Name);
  ASSERT_NE(B, nullptr);

  PipelineOptions Options;
  Options.Budget.TotalSeconds = 1e-4;
  RunArtifacts A = runOnce(*B, Options);

  EXPECT_EQ(A.Status, Realizability::Unknown) << P.Name;
  ASSERT_FALSE(A.Failures.empty()) << P.Name;
  bool SawTimeout = false;
  for (const FailureRecord &F : A.Failures) {
    SawTimeout |= F.Kind == FailureKind::Timeout;
    EXPECT_FALSE(F.Phase.empty()) << P.Name;
    EXPECT_FALSE(F.Detail.empty()) << P.Name;
  }
  EXPECT_TRUE(SawTimeout) << P.Name;
  // A timed-out run never emits code.
  EXPECT_TRUE(A.Js.empty()) << P.Name;
}

/// An armed-but-unfired deadline must be observationally invisible:
/// byte-identical verdict, assumptions, and code against no budget at
/// all, at jobs=1 and jobs=4.
TEST_P(DegradedPath, UnfiredDeadlineIsByteIdentical) {
  const DegradedBenchmark &P = GetParam();
  if (P.Slow && !std::getenv("TEMOS_GOLDEN_SLOW"))
    GTEST_SKIP() << "set TEMOS_GOLDEN_SLOW to run " << P.Name;
  const BenchmarkSpec *B = findBenchmark(P.Name);
  ASSERT_NE(B, nullptr);

  PipelineOptions Reference; // no budget
  RunArtifacts Ref = runOnce(*B, Reference);
  EXPECT_TRUE(Ref.Failures.empty()) << P.Name;

  for (unsigned Jobs : {1u, 4u}) {
    PipelineOptions Budgeted;
    Budgeted.Parallelism.NumThreads = Jobs;
    Budgeted.Budget.TotalSeconds = 3600; // armed, never fires
    RunArtifacts Got = runOnce(*B, Budgeted);

    EXPECT_EQ(Got.Status, Ref.Status) << P.Name << " jobs=" << Jobs;
    EXPECT_EQ(Got.Assumptions, Ref.Assumptions) << P.Name << " jobs=" << Jobs;
    EXPECT_EQ(Got.Js, Ref.Js) << P.Name << " jobs=" << Jobs;
    EXPECT_EQ(Got.Cpp, Ref.Cpp) << P.Name << " jobs=" << Jobs;
    EXPECT_TRUE(Got.Failures.empty()) << P.Name << " jobs=" << Jobs;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DegradedPath, ::testing::ValuesIn(DegradedBenchmarks),
    [](const ::testing::TestParamInfo<DegradedBenchmark> &Info) {
      std::string Name = Info.param.Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// Per-phase budgets: exhausting only the SyGuS budget must still let
/// the consistency phase finish and the reactive phase run on whatever
/// assumptions survived; the failure record names the sygus phase.
TEST(DegradedPath, SygusBudgetOnlyDegradesSygus) {
  const BenchmarkSpec *B = findBenchmark("Vibrato");
  ASSERT_NE(B, nullptr);

  PipelineOptions Options;
  Options.Budget.SygusSeconds = 1e-4;
  RunArtifacts A = runOnce(*B, Options);

  bool SawSygusTimeout = false;
  for (const FailureRecord &F : A.Failures)
    SawSygusTimeout |=
        F.Kind == FailureKind::Timeout && F.Phase == "sygus";
  EXPECT_TRUE(SawSygusTimeout);
}

/// The injected spin-hang is refused without a budget to bound it (it
/// would literally never return), and with one the pipeline must come
/// back within 2x the budget carrying a sygus Timeout record.
TEST(DegradedPath, SpinHangTripsWithinTwiceTheBudget) {
  const BenchmarkSpec *B = findBenchmark("Vibrato");
  ASSERT_NE(B, nullptr);
  Context Ctx;
  auto Spec = parseSpecification(B->Source, Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  Synthesizer Synth(Ctx);

  {
    PipelineOptions Unbounded;
    Unbounded.InjectSpinHang = true;
    PipelineResult R = Synth.run(*Spec, Unbounded);
    EXPECT_FALSE(R.Diagnostic.empty());
    EXPECT_TRUE(R.Stats.Failures.empty()); // refused up front, not degraded
  }

  const double Budget = 0.2;
  PipelineOptions Options;
  Options.InjectSpinHang = true;
  Options.Budget.TotalSeconds = Budget;
  Timer Wall;
  PipelineResult R = Synth.run(*Spec, Options);
  // Generous 10x wall ceiling for loaded CI machines; the tight 2x
  // bound is asserted by the fuzz probe and the CLI test.
  EXPECT_LT(Wall.seconds(), 10 * Budget);
  bool SawSygusTimeout = false;
  for (const FailureRecord &F : R.Stats.Failures)
    SawSygusTimeout |=
        F.Kind == FailureKind::Timeout && F.Phase == "sygus";
  EXPECT_TRUE(SawSygusTimeout);
}

} // namespace
