//===- tests/fuzz/FuzzOracleTest.cpp - Oracle smoke tests -----------------===//
///
/// \file
/// Bounded smoke runs of the four differential oracles: a fixed seed,
/// a few dozen iterations, and the expectation that the substrates
/// agree. The heavyweight sweep lives in the `fuzz_smoke` ctest entry
/// and scripts/ci.sh; these stay small enough for the edit-compile-test
/// loop.
///
//===----------------------------------------------------------------------===//

#include "tools/fuzz/Fuzz.h"

#include <gtest/gtest.h>

using namespace temos::fuzz;

namespace {

FuzzOptions smokeOptions(unsigned Iterations) {
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = Iterations;
  Options.ArtifactsDir.clear(); // No repro files from unit tests.
  return Options;
}

void expectClean(const OracleReport &Report, unsigned Iterations) {
  EXPECT_EQ(Report.Iterations, Iterations);
  for (const FailureCase &F : Report.Failures)
    ADD_FAILURE() << Report.Oracle << " seed " << F.Seed << " iteration "
                  << F.Iteration << ": " << F.Description << "\n"
                  << F.Repro;
}

TEST(FuzzOracle, TheorySolverAgreesWithGroundEvaluation) {
  expectClean(runTheoryOracle(smokeOptions(150)), 150);
}

TEST(FuzzOracle, PrintParseRoundTripIsFixpoint) {
  expectClean(runRoundTripOracle(smokeOptions(150)), 150);
}

TEST(FuzzOracle, SynthesizedProgramsSurviveGroundCheck) {
  expectClean(runSygusOracle(smokeOptions(80)), 80);
}

TEST(FuzzOracle, PipelineIsDeterministicAcrossConfigs) {
  expectClean(runPipelineOracle(smokeOptions(10)), 10);
}

TEST(FuzzOracle, RunAllCoversEveryOracle) {
  auto Reports = runAllOracles(smokeOptions(5));
  ASSERT_EQ(Reports.size(), 4u);
  EXPECT_EQ(Reports[0].Oracle, "theory");
  EXPECT_EQ(Reports[1].Oracle, "roundtrip");
  EXPECT_EQ(Reports[2].Oracle, "sygus");
  EXPECT_EQ(Reports[3].Oracle, "pipeline");
}

TEST(FuzzOracle, SameSeedSkipsAndFailuresAreDeterministic) {
  auto A = runTheoryOracle(smokeOptions(60));
  auto B = runTheoryOracle(smokeOptions(60));
  EXPECT_EQ(A.Skipped, B.Skipped);
  EXPECT_EQ(A.Failures.size(), B.Failures.size());
}

} // namespace
