//===- tests/fuzz/FuzzRegressionTest.cpp - Shrunk fuzz findings -----------===//
///
/// \file
/// Regression tests distilled from genuine bugs the differential fuzzer
/// found (each repro here is the shrinker's output, re-expressed as a
/// direct unit test), plus the nastiest shrunk-but-passing cases the
/// theory oracle produced, kept as a tripwire for the solver's
/// delta-rational and mixed-congruence corners.
///
//===----------------------------------------------------------------------===//

#include "logic/Parser.h"
#include "theory/Evaluator.h"
#include "theory/SmtSolver.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

//===----------------------------------------------------------------------===//
// Bug 1 (theory oracle, shrunk to `v = w`): SmtSolver::checkLiterals
// used to assign every opaque signal its own fresh symbol when building
// a model, ignoring the congruence classes — so the returned "model" for
// the satisfiable conjunction {v = w} violated the very equality it came
// from.
//===----------------------------------------------------------------------===//

class UfModelRegression : public ::testing::Test {
protected:
  const Term *opaque(const std::string &Name) {
    return Ctx.Terms.signal(Name, Sort::Opaque);
  }
  const Term *boolSig(const std::string &Name) {
    return Ctx.Terms.signal(Name, Sort::Bool);
  }
  const Term *eq(const Term *A, const Term *B) {
    return Ctx.Terms.apply("=", Sort::Bool, {A, B});
  }

  Context Ctx;
  SmtSolver Solver{Theory::UF};
};

TEST_F(UfModelRegression, EqualOpaquesGetTheSameSymbol) {
  std::vector<TheoryLiteral> Literals = {{eq(opaque("v"), opaque("w")), true}};
  Assignment Model;
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  ASSERT_TRUE(Model.count("v") && Model.count("w"));
  EXPECT_EQ(Model.at("v"), Model.at("w"));
}

TEST_F(UfModelRegression, EqualityChainsShareOneSymbol) {
  std::vector<TheoryLiteral> Literals = {
      {eq(opaque("u"), opaque("v")), true},
      {eq(opaque("v"), opaque("w")), true},
  };
  Assignment Model;
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  EXPECT_EQ(Model.at("u"), Model.at("v"));
  EXPECT_EQ(Model.at("v"), Model.at("w"));
}

TEST_F(UfModelRegression, DisequalOpaquesGetDistinctSymbols) {
  std::vector<TheoryLiteral> Literals = {
      {eq(opaque("v"), opaque("w")), false}};
  Assignment Model;
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  EXPECT_NE(Model.at("v"), Model.at("w"));
}

TEST_F(UfModelRegression, BooleanSignalsTakeTheirAssertedTruth) {
  std::vector<TheoryLiteral> Literals = {{boolSig("p"), true},
                                         {boolSig("q"), false}};
  Assignment Model;
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  EXPECT_EQ(Model.at("p"), Value::boolean(true));
  EXPECT_EQ(Model.at("q"), Value::boolean(false));
}

TEST_F(UfModelRegression, ModelSatisfiesTheLiteralsItCameFrom) {
  // The shrunk repro's whole point: round-trip the model through the
  // ground evaluator and re-check each interpreted literal.
  std::vector<TheoryLiteral> Literals = {
      {eq(opaque("v"), opaque("w")), true},
      {boolSig("p"), true},
  };
  Assignment Model;
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  Evaluator Eval;
  for (const TheoryLiteral &L : Literals) {
    auto B = Eval.evaluateBool(L.Atom, Model);
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(*B, L.Positive);
  }
}

//===----------------------------------------------------------------------===//
// Bug 2 (round-trip oracle): Specification::str() silently dropped the
// `spec Name` line and the whole functions block, so printed specs
// re-parsed into different specifications.
//===----------------------------------------------------------------------===//

TEST(SpecPrintRegression, NameAndFunctionsSurviveRoundTrip) {
  const char *Source = "#UF#\n"
                       "spec Shrunk\n"
                       "inputs { opaque x; }\n"
                       "cells { opaque y; }\n"
                       "functions { bool p(opaque); opaque f(opaque, opaque); }\n"
                       "always guarantee {\n"
                       "  p x -> [y <- f x y];\n"
                       "}\n";
  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();

  std::string Printed = Spec->str();
  EXPECT_NE(Printed.find("spec Shrunk"), std::string::npos) << Printed;
  EXPECT_NE(Printed.find("functions {"), std::string::npos) << Printed;

  Context Ctx2;
  auto Reparsed = parseSpecification(Printed, Ctx2);
  ASSERT_TRUE(Reparsed.ok())
      << "printed spec failed to re-parse: " << Reparsed.error().str()
      << "\n" << Printed;
  EXPECT_EQ(Reparsed->Name, "Shrunk");
  ASSERT_EQ(Reparsed->Functions.size(), 2u);
  EXPECT_EQ(Reparsed->Functions[1].Name, "f");
  EXPECT_EQ(Reparsed->Functions[1].Params.size(), 2u);
  // Fixpoint: printing the re-parsed spec changes nothing.
  EXPECT_EQ(Reparsed->str(), Printed);
}

//===----------------------------------------------------------------------===//
// Nasty shrunk-but-passing cases: kept verbatim so a future solver
// change that regresses a corner trips a named test, not a fuzz run.
//===----------------------------------------------------------------------===//

class NastyCornerCase : public ::testing::Test {
protected:
  const Term *real(const std::string &Name) {
    return Ctx.Terms.signal(Name, Sort::Real);
  }
  const Term *cmp(const char *Op, const Term *A, const Term *B) {
    return Ctx.Terms.apply(Op, Sort::Bool, {A, B});
  }
  const Term *rat(int64_t Num, int64_t Den) {
    return Ctx.Terms.numeral(Rational(Num, Den), Sort::Real);
  }

  Context Ctx;
};

TEST_F(NastyCornerCase, OpenUnitIntervalIsSatOnlyOverReals) {
  // 0 < x < 1: delta-rationals must find the open interval's interior.
  const Term *X = real("x");
  std::vector<TheoryLiteral> Literals = {{cmp(">", X, rat(0, 1)), true},
                                         {cmp("<", X, rat(1, 1)), true}};
  Assignment Model;
  SmtSolver Solver(Theory::LRA);
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  Evaluator Eval;
  for (const TheoryLiteral &L : Literals) {
    auto B = Eval.evaluateBool(L.Atom, Model);
    ASSERT_TRUE(B.has_value());
    EXPECT_TRUE(*B) << "model violates " << L.Atom->str();
  }

  // The integer twin of the same conjunction is Unsat.
  const Term *I = Ctx.Terms.signal("i", Sort::Int);
  std::vector<TheoryLiteral> IntLiterals = {
      {cmp(">", I, Ctx.Terms.numeral(0)), true},
      {cmp("<", I, Ctx.Terms.numeral(1)), true}};
  SmtSolver IntSolver(Theory::LIA);
  EXPECT_EQ(IntSolver.checkLiterals(IntLiterals), SatResult::Unsat);
}

TEST_F(NastyCornerCase, StrictCycleIsUnsat) {
  // x < y && y < x: the strict bounds cancel only if deltas are handled.
  const Term *X = real("x");
  const Term *Y = real("y");
  std::vector<TheoryLiteral> Literals = {{cmp("<", X, Y), true},
                                         {cmp("<", Y, X), true}};
  SmtSolver Solver(Theory::LRA);
  EXPECT_EQ(Solver.checkLiterals(Literals), SatResult::Unsat);
}

TEST_F(NastyCornerCase, HalfStepSqueezePinpointsOneRational) {
  // 1/2 <= x && x <= 1/2 && x != 1/3: exactly one model, off the grid of
  // integers; the disequality must not confuse the bound propagation.
  const Term *X = real("x");
  std::vector<TheoryLiteral> Literals = {
      {cmp("<=", rat(1, 2), X), true},
      {cmp("<=", X, rat(1, 2)), true},
      {cmp("=", X, rat(1, 3)), false},
  };
  Assignment Model;
  SmtSolver Solver(Theory::LRA);
  ASSERT_EQ(Solver.checkLiterals(Literals, &Model), SatResult::Sat);
  EXPECT_EQ(Model.at("x"), Value::number(Rational(1, 2)));
}

} // namespace
