//===- tests/fuzz/ShrinkerTest.cpp - Greedy shrinker units ----------------===//

#include "tools/fuzz/Shrinker.h"

#include "logic/Term.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace temos;
using namespace temos::fuzz;

namespace {

class ShrinkerTest : public ::testing::Test {
protected:
  const Term *sig(const std::string &Name, Sort S = Sort::Int) {
    return Ctx.Terms.signal(Name, S);
  }
  const Term *num(int64_t V) { return Ctx.Terms.numeral(V); }
  const Term *app(const std::string &F, Sort S,
                  std::vector<const Term *> Args) {
    return Ctx.Terms.apply(F, S, Args);
  }

  bool contains(const std::vector<const Term *> &Variants, const Term *T) {
    return std::find(Variants.begin(), Variants.end(), T) != Variants.end();
  }

  Context Ctx;
};

TEST_F(ShrinkerTest, NumeralsShrinkTowardZero) {
  auto Variants = simplerTermVariants(Ctx.Terms, num(8));
  EXPECT_TRUE(contains(Variants, num(0)));
  EXPECT_TRUE(contains(Variants, num(4)));
  EXPECT_FALSE(contains(Variants, num(8))) << "a variant must be simpler";
}

TEST_F(ShrinkerTest, ZeroHasNoVariants) {
  EXPECT_TRUE(simplerTermVariants(Ctx.Terms, num(0)).empty());
}

TEST_F(ShrinkerTest, CompoundTermCollapsesToArguments) {
  const Term *X = sig("x");
  const Term *Sum = app("+", Sort::Int, {X, num(3)});
  auto Variants = simplerTermVariants(Ctx.Terms, Sum);
  EXPECT_TRUE(contains(Variants, X));
}

TEST_F(ShrinkerTest, ComparisonShrinksOnEitherSide) {
  const Term *X = sig("x");
  const Term *Cmp = app("<", Sort::Bool, {app("+", Sort::Int, {X, num(1)}),
                                          num(6)});
  auto Variants = simplerTermVariants(Ctx.Terms, Cmp);
  // Left side collapsed to its argument.
  EXPECT_TRUE(contains(Variants, app("<", Sort::Bool, {X, num(6)})));
  // Right side moved toward zero.
  EXPECT_TRUE(contains(
      Variants, app("<", Sort::Bool, {app("+", Sort::Int, {X, num(1)}),
                                      num(0)})));
}

TEST_F(ShrinkerTest, ShrinkLiteralsDropsIrrelevantConjuncts) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  std::vector<TheoryLiteral> Case = {
      {app("<", Sort::Bool, {X, num(5)}), true},
      {app("<", Sort::Bool, {Y, num(7)}), true},
      {app("=", Sort::Bool, {X, num(2)}), false},
  };
  // The "failure" only needs some literal mentioning y.
  auto StillFails = [&](const std::vector<TheoryLiteral> &Ls) {
    for (const TheoryLiteral &L : Ls)
      for (const Term *Arg : L.Atom->args())
        if (Arg == Y)
          return true;
    return false;
  };
  auto Shrunk = shrinkLiterals(Ctx.Terms, Case, StillFails);
  ASSERT_EQ(Shrunk.size(), 1u);
  EXPECT_EQ(Shrunk[0].Atom->args()[0], Y);
  EXPECT_TRUE(StillFails(Shrunk));
}

TEST_F(ShrinkerTest, ShrinkLiteralsPrefersPositiveLiterals) {
  const Term *X = sig("x");
  std::vector<TheoryLiteral> Case = {{app("<", Sort::Bool, {X, num(5)}),
                                      false}};
  auto StillFails = [&](const std::vector<TheoryLiteral> &Ls) {
    return !Ls.empty();
  };
  auto Shrunk = shrinkLiterals(Ctx.Terms, Case, StillFails);
  ASSERT_EQ(Shrunk.size(), 1u);
  EXPECT_TRUE(Shrunk[0].Positive);
}

TEST_F(ShrinkerTest, ShrinkLiteralsNeverReturnsAPassingCase) {
  const Term *X = sig("x");
  std::vector<TheoryLiteral> Case = {
      {app("<", Sort::Bool, {X, num(5)}), true},
      {app(">", Sort::Bool, {X, num(3)}), true},
  };
  // Failure requires both literals: the shrinker must keep them.
  auto StillFails = [](const std::vector<TheoryLiteral> &Ls) {
    return Ls.size() >= 2;
  };
  EXPECT_EQ(shrinkLiterals(Ctx.Terms, Case, StillFails).size(), 2u);
}

TEST_F(ShrinkerTest, ShrinkSourceDropsIrrelevantLines) {
  std::string Source = "aaa\nkeep this line\nbbb\nccc\n";
  auto StillFails = [](const std::string &S) {
    return S.find("keep") != std::string::npos;
  };
  std::string Shrunk = shrinkSource(Source, StillFails);
  EXPECT_NE(Shrunk.find("keep"), std::string::npos);
  EXPECT_EQ(Shrunk.find("aaa"), std::string::npos);
  EXPECT_EQ(Shrunk.find("bbb"), std::string::npos);
  EXPECT_EQ(Shrunk.find("ccc"), std::string::npos);
}

TEST_F(ShrinkerTest, ShrinkSourceShrinksIntegerTokens) {
  std::string Source = "x = 90071;\n";
  auto StillFails = [](const std::string &S) {
    return S.find("x = ") != std::string::npos;
  };
  std::string Shrunk = shrinkSource(Source, StillFails);
  EXPECT_NE(Shrunk.find("x = 0"), std::string::npos) << Shrunk;
}

TEST_F(ShrinkerTest, ShrinkSourceIsDeterministic) {
  std::string Source = "one\ntwo\nthree\nkeep\nfour\n";
  auto StillFails = [](const std::string &S) {
    return S.find("keep") != std::string::npos;
  };
  EXPECT_EQ(shrinkSource(Source, StillFails), shrinkSource(Source, StillFails));
}

} // namespace
