//===- tests/fuzz/FuzzInjectionTest.cpp - Fault-injection coverage --------===//
///
/// \file
/// Every FaultKind perturbs one substrate answer; the matching oracle
/// must notice, shrink, and report a repro. This keeps the harness's
/// own detection and shrinking paths honest: a fuzzer that cannot catch
/// a planted bug proves nothing by running clean.
///
//===----------------------------------------------------------------------===//

#include "tools/fuzz/Fuzz.h"

#include <gtest/gtest.h>

using namespace temos::fuzz;

namespace {

FuzzOptions faultOptions(FaultKind Fault, unsigned Iterations) {
  FuzzOptions Options;
  Options.Seed = 1;
  Options.Iterations = Iterations;
  Options.ArtifactsDir.clear();
  Options.Fault = Fault;
  return Options;
}

void expectDetected(const OracleReport &Report, const char *Oracle) {
  ASSERT_FALSE(Report.ok()) << Oracle
                            << " oracle missed the injected fault";
  const FailureCase &F = Report.Failures.front();
  EXPECT_EQ(F.Oracle, Oracle);
  EXPECT_NE(F.Seed, 0u) << "failure must carry the reproducing seed";
  EXPECT_FALSE(F.Description.empty());
  EXPECT_FALSE(F.Repro.empty()) << "failure must carry a shrunk repro";
}

TEST(FuzzInjection, FlipStrictCaughtByTheoryOracle) {
  expectDetected(runTheoryOracle(faultOptions(FaultKind::FlipStrict, 300)),
                 "theory");
}

TEST(FuzzInjection, DropConjunctCaughtByTheoryOracle) {
  expectDetected(runTheoryOracle(faultOptions(FaultKind::DropConjunct, 300)),
                 "theory");
}

TEST(FuzzInjection, MutatePrintCaughtByRoundTripOracle) {
  expectDetected(
      runRoundTripOracle(faultOptions(FaultKind::MutatePrint, 200)),
      "roundtrip");
}

TEST(FuzzInjection, SkipVerifyCaughtBySygusOracle) {
  expectDetected(runSygusOracle(faultOptions(FaultKind::SkipVerify, 150)),
                 "sygus");
}

TEST(FuzzInjection, LazyConfigCaughtByPipelineOracle) {
  expectDetected(runPipelineOracle(faultOptions(FaultKind::LazyConfig, 15)),
                 "pipeline");
}

/// The spin-hang probe is a liveness check on the deadline subsystem: a
/// planted non-terminating SyGuS enumeration under a ~0.3s budget must
/// come back with a sygus Timeout record within 2x the budget. A
/// deadline regression yields zero detections here (or hangs, which the
/// per-test TIMEOUT converts into a failure).
TEST(FuzzInjection, SpinHangCaughtByPipelineOracle) {
  OracleReport Report =
      runPipelineOracle(faultOptions(FaultKind::SpinHang, 5));
  expectDetected(Report, "pipeline");
  const FailureCase &F = Report.Failures.front();
  EXPECT_NE(F.Description.find("tripped the sygus deadline"),
            std::string::npos)
      << F.Description;
  // The repro is a pipeline artifact so `temos-fuzz --replay` re-runs
  // it with the recorded budget and fault.
  EXPECT_TRUE(isPipelineArtifact(F.Repro));
  bool StillFails = false;
  std::string Replay = replayPipelineArtifact(F.Repro, StillFails);
  EXPECT_TRUE(StillFails) << Replay;
}

TEST(FuzzInjection, FaultNamesRoundTrip) {
  const FaultKind Kinds[] = {FaultKind::FlipStrict, FaultKind::DropConjunct,
                             FaultKind::MutatePrint, FaultKind::SkipVerify,
                             FaultKind::LazyConfig, FaultKind::SpinHang};
  for (FaultKind K : Kinds) {
    FaultKind Parsed = FaultKind::None;
    ASSERT_TRUE(parseFaultKind(faultName(K), Parsed)) << faultName(K);
    EXPECT_EQ(Parsed, K);
  }
  FaultKind Parsed = FaultKind::None;
  EXPECT_FALSE(parseFaultKind("no-such-fault", Parsed));
}

} // namespace
