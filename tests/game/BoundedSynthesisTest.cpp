//===- tests/game/BoundedSynthesisTest.cpp - Synthesis game tests ---------===//

#include "game/BoundedSynthesis.h"

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class BoundedSynthesisTest : public ::testing::Test {
protected:
  void SetUp() override {
    auto Parsed = parseSpecification(R"(
      #LIA#
      inputs { bool p, q; }
      cells { int x = 0; }
      always guarantee {
        G ([x <- x + 1] || [x <- x - 1] || [x <- x]);
      }
    )", Ctx);
    ASSERT_TRUE(Parsed.ok()) << Parsed.error().str();
    Spec = *Parsed;
    AB = Alphabet::build(Spec, Ctx);
  }

  const Formula *formula(const std::string &Source) {
    auto F = parseFormula(Source, Spec, Ctx);
    EXPECT_TRUE(F.ok()) << F.error().str();
    return F.valueOr(nullptr);
  }

  SynthesisResult synth(const std::string &Source) {
    const Formula *F = formula(Source);
    // The alphabet must cover the synthesized formula's atoms, exactly
    // as the pipeline builds it from spec + generated assumptions.
    AB = Alphabet::build(Spec, Ctx, {F});
    return synthesizeLtl(F, Ctx, AB);
  }

  /// Simulates the machine on an input sequence and checks the reaction
  /// predicate at each step.
  void checkReactions(
      const MealyMachine &M, const std::vector<uint32_t> &Inputs,
      const std::function<void(uint32_t In, uint32_t Out, size_t Step)>
          &Check) {
    uint32_t State = M.initialState();
    uint32_t Mask = static_cast<uint32_t>(M.inputCount()) - 1;
    for (size_t Step = 0; Step < Inputs.size(); ++Step) {
      uint32_t In = Inputs[Step] & Mask;
      MealyMachine::Edge E = M.step(State, In);
      Check(In, E.Output, Step);
      State = E.NextState;
    }
  }

  /// True if update option [x <- x + 1] fires in output letter Out.
  bool firesInc(uint32_t Out) {
    const Formula *Inc = AB.cells()[0].Options[0];
    EXPECT_EQ(Inc->updateValue()->str(), "(x + 1)");
    return AB.holds(Inc, Letter{0, Out});
  }

  Context Ctx;
  Specification Spec;
  Alphabet AB;
};

TEST_F(BoundedSynthesisTest, TriviallyRealizable) {
  auto R = synth("true");
  EXPECT_EQ(R.Status, Realizability::Realizable);
  ASSERT_TRUE(R.Machine.has_value());
  EXPECT_GE(R.Machine->stateCount(), 1u);
}

TEST_F(BoundedSynthesisTest, SystemCannotControlInputs) {
  // The environment owns p: the system cannot force it.
  EXPECT_EQ(synth("G p").Status, Realizability::Unrealizable);
  EXPECT_EQ(synth("F p").Status, Realizability::Unrealizable);
  EXPECT_EQ(synth("p").Status, Realizability::Unrealizable);
  EXPECT_EQ(synth("X p").Status, Realizability::Unrealizable);
}

TEST_F(BoundedSynthesisTest, SystemControlsUpdates) {
  EXPECT_EQ(synth("G [x <- x + 1]").Status, Realizability::Realizable);
  EXPECT_EQ(synth("G F [x <- x + 1]").Status, Realizability::Realizable);
  EXPECT_EQ(synth("F [x <- x - 1]").Status, Realizability::Realizable);
  // Two permanent different updates are structurally impossible.
  EXPECT_EQ(synth("G [x <- x + 1] && F [x <- x - 1]").Status,
            Realizability::Unrealizable);
}

TEST_F(BoundedSynthesisTest, ReactiveResponse) {
  // G (p -> [x <- x+1]): copy the input into the update choice.
  auto R = synth("G (p -> [x <- x + 1])");
  ASSERT_EQ(R.Status, Realizability::Realizable);
  ASSERT_TRUE(R.Machine.has_value());
  // Whenever input bit p (bit 0) is set, the inc option must fire.
  checkReactions(*R.Machine, {1, 0, 1, 1, 3, 2, 0, 1},
                 [&](uint32_t In, uint32_t Out, size_t Step) {
                   if (In & 1)
                     EXPECT_TRUE(firesInc(Out)) << "step " << Step;
                 });
}

TEST_F(BoundedSynthesisTest, IffResponse) {
  auto R = synth("G (p <-> [x <- x + 1])");
  ASSERT_EQ(R.Status, Realizability::Realizable);
  checkReactions(*R.Machine, {1, 0, 3, 2, 1, 0},
                 [&](uint32_t In, uint32_t Out, size_t Step) {
                   EXPECT_EQ(static_cast<bool>(In & 1), firesInc(Out))
                       << "step " << Step;
                 });
}

TEST_F(BoundedSynthesisTest, DelayedResponse) {
  // G (p -> X [x <- x+1]): needs one state of memory.
  auto R = synth("G (p -> X [x <- x + 1])");
  ASSERT_EQ(R.Status, Realizability::Realizable);
  ASSERT_TRUE(R.Machine.has_value());
  EXPECT_GE(R.Machine->stateCount(), 2u);
  uint32_t PrevIn = 0;
  checkReactions(*R.Machine, {1, 0, 1, 1, 0, 2, 1, 0},
                 [&](uint32_t In, uint32_t Out, size_t Step) {
                   if (Step > 0 && (PrevIn & 1))
                     EXPECT_TRUE(firesInc(Out)) << "step " << Step;
                   PrevIn = In;
                 });
}

TEST_F(BoundedSynthesisTest, ConflictingObligationsUnrealizable) {
  // p and q can hold together, forcing contradictory updates.
  EXPECT_EQ(
      synth("G ((p -> [x <- x + 1]) && (q -> [x <- x - 1]))").Status,
      Realizability::Unrealizable);
  // With the consistency assumption G !(p && q) it becomes realizable
  // (the Sec. 4.2 mechanism).
  EXPECT_EQ(synth("G (! (p && q)) -> "
                  "G ((p -> [x <- x + 1]) && (q -> [x <- x - 1]))")
                .Status,
            Realizability::Realizable);
}

TEST_F(BoundedSynthesisTest, UntilGuarantee) {
  auto R = synth("[x <- x] U p || G [x <- x]");
  EXPECT_EQ(R.Status, Realizability::Realizable);
}

TEST_F(BoundedSynthesisTest, LivenessUnderFairness) {
  // Without fairness, q may never arrive: the response
  // G(p -> F q)-style guarantee on an input is unrealizable...
  EXPECT_EQ(synth("G (p -> F q)").Status, Realizability::Unrealizable);
  // ...but the update version is realizable since the system owns it.
  EXPECT_EQ(synth("G (p -> F [x <- x - 1])").Status,
            Realizability::Realizable);
}

TEST_F(BoundedSynthesisTest, BoundZeroSafetySuffices) {
  // Safety specs are realizable at counter bound 0: force a {0}-only
  // schedule and check it succeeds there.
  const Formula *F = formula("G [x <- x + 1]");
  AB = Alphabet::build(Spec, Ctx, {F});
  SynthesisOptions Options;
  Options.BoundSchedule = {0};
  auto R = synthesizeLtl(F, Ctx, AB, Options);
  ASSERT_EQ(R.Status, Realizability::Realizable);
  EXPECT_EQ(R.Stats.BoundUsed, 0u);
}

TEST_F(BoundedSynthesisTest, CheckRealizableAgreesWithSynthesize) {
  const Formula *Good = formula("G [x <- x + 1]");
  Alphabet A1 = Alphabet::build(Spec, Ctx, {Good});
  EXPECT_EQ(checkRealizable(Good, Ctx, A1), Realizability::Realizable);
  const Formula *Bad = formula("G p");
  Alphabet A2 = Alphabet::build(Spec, Ctx, {Bad});
  EXPECT_EQ(checkRealizable(Bad, Ctx, A2), Realizability::Unrealizable);
}

TEST_F(BoundedSynthesisTest, TinyStateBudgetReportsUnknown) {
  // A realizable spec under a starvation budget must degrade to
  // Unknown -- never be misreported Unrealizable -- and the pre-insert
  // check must keep the arena at or under the budget.
  const Formula *F = formula("G (p -> X [x <- x + 1])");
  AB = Alphabet::build(Spec, Ctx, {F});
  SynthesisOptions Tiny;
  Tiny.StateBudget = 1;
  auto R = synthesizeLtl(F, Ctx, AB, Tiny);
  EXPECT_EQ(R.Status, Realizability::Unknown);
  EXPECT_FALSE(R.Machine.has_value());
  EXPECT_LE(R.Stats.GameStates, Tiny.StateBudget);
  EXPECT_EQ(checkRealizable(F, Ctx, AB, Tiny), Realizability::Unknown);
}

TEST_F(BoundedSynthesisTest, TinyStateBudgetUnknownThroughEngine) {
  // Same through a held engine, both incremental modes.
  const Formula *F = formula("G (p -> X [x <- x + 1])");
  AB = Alphabet::build(Spec, Ctx, {F});
  for (bool Incremental : {true, false}) {
    SynthesisOptions Tiny;
    Tiny.StateBudget = 1;
    Tiny.Incremental = Incremental;
    SynthesisEngine Engine;
    auto R = Engine.synthesize(F, Ctx, AB, Tiny);
    EXPECT_EQ(R.Status, Realizability::Unknown) << Incremental;
    EXPECT_LE(R.Stats.GameStates, Tiny.StateBudget) << Incremental;
  }
}

TEST_F(BoundedSynthesisTest, TableauBudgetReportsUnknown) {
  // Exhausting the tableau's budget mid-construction must surface as
  // Unknown, and a BudgetExceeded automaton must never enter the NBA
  // cache: a later call with sane limits succeeds on the same engine.
  const Formula *F = formula("G (p -> X [x <- x + 1])");
  AB = Alphabet::build(Spec, Ctx, {F});
  SynthesisEngine Engine;
  SynthesisOptions Tiny;
  Tiny.Tableau.MaxGeneralizedStates = 1;
  auto R = Engine.synthesize(F, Ctx, AB, Tiny);
  EXPECT_EQ(R.Status, Realizability::Unknown);
  EXPECT_TRUE(R.Stats.Tableau.BudgetExceeded);
  EXPECT_FALSE(R.Machine.has_value());

  auto Sane = Engine.synthesize(F, Ctx, AB);
  EXPECT_EQ(Sane.Status, Realizability::Realizable);
  EXPECT_FALSE(Sane.Stats.NbaCacheHit);
}

TEST_F(BoundedSynthesisTest, BudgetRecoveryAfterRaise) {
  // Raising a previously exhausting state budget on the same engine
  // rebuilds the arena and succeeds.
  const Formula *F = formula("G (p -> X [x <- x + 1])");
  AB = Alphabet::build(Spec, Ctx, {F});
  SynthesisEngine Engine;
  SynthesisOptions Tiny;
  Tiny.StateBudget = 1;
  EXPECT_EQ(Engine.synthesize(F, Ctx, AB, Tiny).Status,
            Realizability::Unknown);
  EXPECT_EQ(Engine.synthesize(F, Ctx, AB).Status, Realizability::Realizable);
}

TEST_F(BoundedSynthesisTest, MachineEdgesAreTotal) {
  auto R = synth("G (p -> [x <- x + 1])");
  ASSERT_EQ(R.Status, Realizability::Realizable);
  const MealyMachine &M = *R.Machine;
  EXPECT_EQ(M.inputCount(), AB.inputLetterCount());
  for (uint32_t S = 0; S < M.stateCount(); ++S)
    for (uint32_t In = 0; In < M.inputCount(); ++In) {
      MealyMachine::Edge E = M.edge(S, In);
      EXPECT_LT(E.NextState, M.stateCount());
      EXPECT_LT(E.Output, AB.outputLetterCount());
    }
}

} // namespace
