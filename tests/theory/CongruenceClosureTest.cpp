//===- tests/theory/CongruenceClosureTest.cpp - EUF tests -----------------===//

#include "theory/CongruenceClosure.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class CongruenceClosureTest : public ::testing::Test {
protected:
  const Term *sig(const std::string &Name) {
    return F.signal(Name, Sort::Opaque);
  }
  const Term *app(const std::string &Fn, const Term *Arg) {
    return F.apply(Fn, Sort::Opaque, {Arg});
  }

  TermFactory F;
  CongruenceClosure CC;
};

TEST_F(CongruenceClosureTest, ReflexiveEquality) {
  const Term *X = sig("x");
  EXPECT_TRUE(CC.areEqual(X, X));
}

TEST_F(CongruenceClosureTest, MergeMakesEqual) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  EXPECT_FALSE(CC.areEqual(X, Y));
  EXPECT_TRUE(CC.merge(X, Y));
  EXPECT_TRUE(CC.areEqual(X, Y));
}

TEST_F(CongruenceClosureTest, Transitivity) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  const Term *Z = sig("z");
  CC.merge(X, Y);
  CC.merge(Y, Z);
  EXPECT_TRUE(CC.areEqual(X, Z));
}

TEST_F(CongruenceClosureTest, CongruencePropagation) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  const Term *FX = app("f", X);
  const Term *FY = app("f", Y);
  CC.add(FX);
  CC.add(FY);
  EXPECT_FALSE(CC.areEqual(FX, FY));
  CC.merge(X, Y);
  EXPECT_TRUE(CC.areEqual(FX, FY));
}

TEST_F(CongruenceClosureTest, NestedCongruence) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  const Term *FFX = app("f", app("f", X));
  const Term *FFY = app("f", app("f", Y));
  CC.add(FFX);
  CC.add(FFY);
  CC.merge(X, Y);
  EXPECT_TRUE(CC.areEqual(FFX, FFY));
}

TEST_F(CongruenceClosureTest, DifferentFunctionsStayApart) {
  const Term *X = sig("x");
  const Term *FX = app("f", X);
  const Term *GX = app("g", X);
  CC.add(FX);
  CC.add(GX);
  EXPECT_FALSE(CC.areEqual(FX, GX));
}

TEST_F(CongruenceClosureTest, DisequalityConflict) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  EXPECT_TRUE(CC.addDisequality(X, Y));
  EXPECT_FALSE(CC.merge(X, Y));
}

TEST_F(CongruenceClosureTest, DisequalityOnAlreadyEqualFails) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  CC.merge(X, Y);
  EXPECT_FALSE(CC.addDisequality(X, Y));
}

TEST_F(CongruenceClosureTest, CongruenceTriggersDisequalityConflict) {
  // x = y, f(x) != f(y) is inconsistent.
  const Term *X = sig("x");
  const Term *Y = sig("y");
  const Term *FX = app("f", X);
  const Term *FY = app("f", Y);
  EXPECT_TRUE(CC.addDisequality(FX, FY));
  EXPECT_FALSE(CC.merge(X, Y));
}

TEST_F(CongruenceClosureTest, BinaryFunctionCongruence) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  const Term *Z = sig("z");
  const Term *FXZ = F.apply("f", Sort::Opaque, {X, Z});
  const Term *FYZ = F.apply("f", Sort::Opaque, {Y, Z});
  CC.add(FXZ);
  CC.add(FYZ);
  CC.merge(X, Y);
  EXPECT_TRUE(CC.areEqual(FXZ, FYZ));
  // One differing argument blocks congruence.
  const Term *FZX = F.apply("f", Sort::Opaque, {Z, X});
  CC.add(FZX);
  EXPECT_FALSE(CC.areEqual(FXZ, FZX));
}

TEST_F(CongruenceClosureTest, EqualPairsReporting) {
  const Term *X = sig("x");
  const Term *Y = sig("y");
  CC.merge(X, Y);
  auto Pairs = CC.equalPairs();
  ASSERT_EQ(Pairs.size(), 1u);
}

} // namespace
