//===- tests/theory/SimplexTest.cpp - Simplex solver tests ----------------===//

#include "theory/Simplex.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

LinearExpr var(const std::string &Name) { return LinearExpr::variable(Name); }

LinearExpr constant(int64_t C) { return LinearExpr(Rational(C)); }

TEST(Simplex, TrivialSat) {
  Simplex S;
  // x <= 5.
  EXPECT_TRUE(S.assertAtom({var("x") - constant(5), LinearRel::LE}, false));
  EXPECT_TRUE(S.check());
  EXPECT_LE(S.value("x"), DeltaRational(Rational(5)));
}

TEST(Simplex, ConflictingBounds) {
  Simplex S;
  EXPECT_TRUE(S.assertAtom({var("x") - constant(5), LinearRel::LE}, false));
  // x >= 6 conflicts immediately.
  EXPECT_FALSE(S.assertAtom({var("x") - constant(6), LinearRel::GE}, false));
}

TEST(Simplex, StrictVsWeakBoundary) {
  // x >= 3 && x < 3 is unsat; x >= 3 && x <= 3 is sat.
  {
    Simplex S;
    EXPECT_TRUE(S.assertAtom({var("x") - constant(3), LinearRel::GE}, false));
    EXPECT_FALSE(S.assertAtom({var("x") - constant(3), LinearRel::LT}, false));
  }
  {
    Simplex S;
    EXPECT_TRUE(S.assertAtom({var("x") - constant(3), LinearRel::GE}, false));
    EXPECT_TRUE(S.assertAtom({var("x") - constant(3), LinearRel::LE}, false));
    EXPECT_TRUE(S.check());
    EXPECT_EQ(S.value("x"), DeltaRational(Rational(3)));
  }
}

TEST(Simplex, MutexParadoxUnsat) {
  // The Sec. 4.2 example: x < y && y < x is unsatisfiable.
  Simplex S;
  EXPECT_TRUE(S.assertAtom({var("x") - var("y"), LinearRel::LT}, false));
  S.assertAtom({var("y") - var("x"), LinearRel::LT}, false);
  EXPECT_FALSE(S.check());
}

TEST(Simplex, ChainOfInequalities) {
  // x < y && y < z && z < x is unsat (needs pivoting, not just bounds).
  Simplex S;
  S.assertAtom({var("x") - var("y"), LinearRel::LT}, false);
  S.assertAtom({var("y") - var("z"), LinearRel::LT}, false);
  S.assertAtom({var("z") - var("x"), LinearRel::LT}, false);
  EXPECT_FALSE(S.check());
}

TEST(Simplex, SatWithPivoting) {
  // x + y <= 4 && x - y >= 2 && y >= 0 is sat (e.g. x=3, y=0 or x=4,y=0).
  Simplex S;
  S.assertAtom({var("x") + var("y") - constant(4), LinearRel::LE}, false);
  S.assertAtom({var("x") - var("y") - constant(2), LinearRel::GE}, false);
  S.assertAtom({var("y"), LinearRel::GE}, false);
  ASSERT_TRUE(S.check());
  DeltaRational X = S.value("x");
  DeltaRational Y = S.value("y");
  EXPECT_LE(X + Y, DeltaRational(Rational(4)));
  EXPECT_GE(X - Y, DeltaRational(Rational(2)));
  EXPECT_GE(Y, DeltaRational(Rational(0)));
}

TEST(Simplex, EqualityConstraints) {
  // x + y = 10 && x - y = 4 -> x = 7, y = 3.
  Simplex S;
  S.assertAtom({var("x") + var("y") - constant(10), LinearRel::EQ}, false);
  S.assertAtom({var("x") - var("y") - constant(4), LinearRel::EQ}, false);
  ASSERT_TRUE(S.check());
  EXPECT_EQ(S.value("x"), DeltaRational(Rational(7)));
  EXPECT_EQ(S.value("y"), DeltaRational(Rational(3)));
}

TEST(Simplex, GroundAtoms) {
  Simplex S;
  EXPECT_TRUE(S.assertAtom({constant(-1), LinearRel::LE}, false));
  EXPECT_FALSE(S.assertAtom({constant(1), LinearRel::LE}, false));
  EXPECT_TRUE(S.assertAtom({constant(0), LinearRel::EQ}, false));
  EXPECT_FALSE(S.assertAtom({constant(0), LinearRel::LT}, false));
}

TEST(Simplex, FractionalIntDetection) {
  Simplex S;
  S.getVariable("x", /*IsInt=*/true);
  // 2x = 1 forces x = 1/2.
  S.assertAtom({var("x").scaled(Rational(2)) - constant(1), LinearRel::EQ},
               true);
  ASSERT_TRUE(S.check());
  auto Fractional = S.fractionalIntVariables();
  ASSERT_EQ(Fractional.size(), 1u);
  EXPECT_EQ(Fractional[0], "x");
}

TEST(Simplex, ConcreteModelRespectsStrictBounds) {
  Simplex S;
  // 0 < x < 1 over the reals.
  S.assertAtom({var("x"), LinearRel::GT}, false);
  S.assertAtom({var("x") - constant(1), LinearRel::LT}, false);
  ASSERT_TRUE(S.check());
  auto Model = S.concreteModel();
  ASSERT_TRUE(Model.count("x"));
  EXPECT_GT(Model["x"], Rational(0));
  EXPECT_LT(Model["x"], Rational(1));
}

TEST(Simplex, VariableBoundBranching) {
  Simplex S;
  S.assertAtom({var("x") - constant(10), LinearRel::LE}, false);
  ASSERT_TRUE(S.assertVariableBound("x", /*Upper=*/false,
                                    DeltaRational(Rational(4))));
  ASSERT_TRUE(S.check());
  EXPECT_GE(S.value("x"), DeltaRational(Rational(4)));
  EXPECT_FALSE(S.assertVariableBound("x", /*Upper=*/true,
                                     DeltaRational(Rational(3))));
}

TEST(Simplex, CopyIndependence) {
  Simplex S;
  S.assertAtom({var("x") - constant(5), LinearRel::LE}, false);
  Simplex Copy = S;
  EXPECT_FALSE(Copy.assertAtom({var("x") - constant(6), LinearRel::GE},
                               false));
  // Original is unaffected by the copy's conflict.
  EXPECT_TRUE(S.assertAtom({var("x") - constant(5), LinearRel::GE}, false));
  EXPECT_TRUE(S.check());
}

TEST(Simplex, LargerSystem) {
  // A small flow-style system that exercises repeated pivoting.
  Simplex S;
  S.assertAtom({var("a") + var("b") + var("c") - constant(10), LinearRel::EQ},
               false);
  S.assertAtom({var("a") - var("b"), LinearRel::GE}, false);
  S.assertAtom({var("b") - var("c"), LinearRel::GE}, false);
  S.assertAtom({var("c") - constant(2), LinearRel::GE}, false);
  ASSERT_TRUE(S.check());
  DeltaRational A = S.value("a");
  DeltaRational B = S.value("b");
  DeltaRational C = S.value("c");
  EXPECT_EQ(A + B + C, DeltaRational(Rational(10)));
  EXPECT_GE(A, B);
  EXPECT_GE(B, C);
  EXPECT_GE(C, DeltaRational(Rational(2)));
}

} // namespace
