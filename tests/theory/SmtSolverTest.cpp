//===- tests/theory/SmtSolverTest.cpp - SMT driver tests ------------------===//

#include "theory/SmtSolver.h"

#include "theory/Evaluator.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class SmtSolverTest : public ::testing::Test {
protected:
  const Term *intSig(const std::string &Name) {
    return Ctx.Terms.signal(Name, Sort::Int);
  }
  const Term *realSig(const std::string &Name) {
    return Ctx.Terms.signal(Name, Sort::Real);
  }
  const Term *cmp(const char *Op, const Term *A, const Term *B) {
    return Ctx.Terms.apply(Op, Sort::Bool, {A, B});
  }

  Context Ctx;
  SmtSolver Solver{Theory::LIA};
};

TEST_F(SmtSolverTest, EmptyConjunctionIsSat) {
  EXPECT_EQ(Solver.checkLiterals({}), SatResult::Sat);
}

TEST_F(SmtSolverTest, MutexParadox) {
  // Sec. 4.2: (x < y) && (y < x) is unsatisfiable -- this is exactly the
  // consistency-checking query for the mutex example.
  const Term *X = intSig("x");
  const Term *Y = intSig("y");
  std::vector<TheoryLiteral> Lits = {{cmp("<", X, Y), true},
                                     {cmp("<", Y, X), true}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Unsat);
  // Each literal alone is satisfiable.
  EXPECT_EQ(Solver.checkLiterals({{cmp("<", X, Y), true}}), SatResult::Sat);
}

TEST_F(SmtSolverTest, ModelExtraction) {
  const Term *X = intSig("x");
  const Term *Y = intSig("y");
  Assignment Model;
  std::vector<TheoryLiteral> Lits = {
      {cmp("<", X, Y), true},
      {cmp("<", Y, Ctx.Terms.numeral(3)), true},
      {cmp(">", X, Ctx.Terms.numeral(0)), true}};
  ASSERT_EQ(Solver.checkLiterals(Lits, &Model), SatResult::Sat);
  // The model must actually satisfy all literals.
  Evaluator E;
  for (const TheoryLiteral &L : Lits) {
    auto V = E.evaluateBool(L.Atom, Model);
    ASSERT_TRUE(V.has_value());
    EXPECT_EQ(*V, L.Positive);
  }
  // Integer sort means integral values.
  EXPECT_TRUE(Model.at("x").getNumber().isInteger());
  EXPECT_TRUE(Model.at("y").getNumber().isInteger());
}

TEST_F(SmtSolverTest, IntegerInfeasibleRealFeasible) {
  // 0 < x < 1 has no integer solution but a real one.
  const Term *X = intSig("x");
  std::vector<TheoryLiteral> Lits = {
      {cmp(">", X, Ctx.Terms.numeral(0)), true},
      {cmp("<", X, Ctx.Terms.numeral(1)), true}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Unsat);

  const Term *R = realSig("r");
  std::vector<TheoryLiteral> RealLits = {
      {cmp(">", R, Ctx.Terms.numeral(0)), true},
      {cmp("<", R, Ctx.Terms.numeral(1)), true}};
  EXPECT_EQ(Solver.checkLiterals(RealLits), SatResult::Sat);
}

TEST_F(SmtSolverTest, ParityViaScaledEquality) {
  // 2x = 5 has no integer solution.
  const Term *X = intSig("x");
  const Term *TwoX =
      Ctx.Terms.apply("*", Sort::Int, {Ctx.Terms.numeral(2), X});
  EXPECT_EQ(
      Solver.checkLiterals({{cmp("=", TwoX, Ctx.Terms.numeral(5)), true}}),
      SatResult::Unsat);
  EXPECT_EQ(
      Solver.checkLiterals({{cmp("=", TwoX, Ctx.Terms.numeral(6)), true}}),
      SatResult::Sat);
}

TEST_F(SmtSolverTest, NegatedLiterals) {
  // !(x < 5) && x < 4 is unsat.
  const Term *X = intSig("x");
  std::vector<TheoryLiteral> Lits = {
      {cmp("<", X, Ctx.Terms.numeral(5)), false},
      {cmp("<", X, Ctx.Terms.numeral(4)), true}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Unsat);
}

TEST_F(SmtSolverTest, DisequalitySplitting) {
  // x != 0 && 0 <= x && x <= 1 forces x = 1 over the integers.
  const Term *X = intSig("x");
  Assignment Model;
  std::vector<TheoryLiteral> Lits = {
      {cmp("=", X, Ctx.Terms.numeral(0)), false},
      {cmp(">=", X, Ctx.Terms.numeral(0)), true},
      {cmp("<=", X, Ctx.Terms.numeral(1)), true}};
  ASSERT_EQ(Solver.checkLiterals(Lits, &Model), SatResult::Sat);
  EXPECT_EQ(Model.at("x").getNumber(), Rational(1));
}

TEST_F(SmtSolverTest, EufPredicateConsistency) {
  // p(x) && !p(y) && x = y is unsat (congruence).
  const Term *X = Ctx.Terms.signal("x", Sort::Opaque);
  const Term *Y = Ctx.Terms.signal("y", Sort::Opaque);
  const Term *PX = Ctx.Terms.apply("p", Sort::Bool, {X});
  const Term *PY = Ctx.Terms.apply("p", Sort::Bool, {Y});
  const Term *Eq = cmp("=", X, Y);
  EXPECT_EQ(Solver.checkLiterals({{PX, true}, {PY, false}, {Eq, true}}),
            SatResult::Unsat);
  EXPECT_EQ(Solver.checkLiterals({{PX, true}, {PY, false}}), SatResult::Sat);
}

TEST_F(SmtSolverTest, EufFunctionCongruenceIntoArithmetic) {
  // x = y && f(x) < f(y) is unsat via congruence + purification.
  const Term *X = intSig("x");
  const Term *Y = intSig("y");
  const Term *FX = Ctx.Terms.apply("f", Sort::Int, {X});
  const Term *FY = Ctx.Terms.apply("f", Sort::Int, {Y});
  std::vector<TheoryLiteral> Lits = {{cmp("=", X, Y), true},
                                     {cmp("<", FX, FY), true}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Unsat);
  // Without the equality it is satisfiable.
  EXPECT_EQ(Solver.checkLiterals({{cmp("<", FX, FY), true}}), SatResult::Sat);
}

TEST_F(SmtSolverTest, BooleanSignalAtoms) {
  const Term *P = Ctx.Terms.signal("p", Sort::Bool);
  EXPECT_EQ(Solver.checkLiterals({{P, true}, {P, false}}), SatResult::Unsat);
  EXPECT_EQ(Solver.checkLiterals({{P, true}}), SatResult::Sat);
}

TEST_F(SmtSolverTest, TrueFalseConstants) {
  const Term *T = Ctx.Terms.apply("True", Sort::Bool, {});
  const Term *F = Ctx.Terms.apply("False", Sort::Bool, {});
  EXPECT_EQ(Solver.checkLiterals({{T, true}}), SatResult::Sat);
  EXPECT_EQ(Solver.checkLiterals({{T, false}}), SatResult::Unsat);
  EXPECT_EQ(Solver.checkLiterals({{F, true}}), SatResult::Unsat);
  EXPECT_EQ(Solver.checkLiterals({{F, false}}), SatResult::Sat);
}

TEST_F(SmtSolverTest, FormulaWithBooleanStructure) {
  // (x < 0 || x > 10) && 0 <= x && x <= 10 is unsat.
  const Term *X = intSig("x");
  const Formula *F = Ctx.Formulas.andF(
      {Ctx.Formulas.orF(
           Ctx.Formulas.pred(cmp("<", X, Ctx.Terms.numeral(0))),
           Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(10)))),
       Ctx.Formulas.pred(cmp(">=", X, Ctx.Terms.numeral(0))),
       Ctx.Formulas.pred(cmp("<=", X, Ctx.Terms.numeral(10)))});
  EXPECT_EQ(Solver.checkFormula(F), SatResult::Unsat);
}

TEST_F(SmtSolverTest, FormulaSatWithModel) {
  const Term *X = intSig("x");
  const Formula *F = Ctx.Formulas.implies(
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(5))),
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(3))));
  EXPECT_EQ(Solver.checkFormula(F), SatResult::Sat);
}

TEST_F(SmtSolverTest, ValidityChecking) {
  // x > 5 -> x > 3 is valid; the converse is not.
  const Term *X = intSig("x");
  const Formula *Valid = Ctx.Formulas.implies(
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(5))),
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(3))));
  EXPECT_EQ(Solver.checkValid(Valid, Ctx), SatResult::Sat);
  const Formula *Invalid = Ctx.Formulas.implies(
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(3))),
      Ctx.Formulas.pred(cmp(">", X, Ctx.Terms.numeral(5))));
  EXPECT_EQ(Solver.checkValid(Invalid, Ctx), SatResult::Unsat);
}

TEST_F(SmtSolverTest, IncrementTwiceReachesTwo) {
  // The introduction's assumption: x = 0 -> ((x+1)+1) = 2 is valid.
  const Term *X = intSig("x");
  const Term *Inc1 = Ctx.Terms.apply("+", Sort::Int, {X, Ctx.Terms.numeral(1)});
  const Term *Inc2 =
      Ctx.Terms.apply("+", Sort::Int, {Inc1, Ctx.Terms.numeral(1)});
  const Formula *F = Ctx.Formulas.implies(
      Ctx.Formulas.pred(cmp("=", X, Ctx.Terms.numeral(0))),
      Ctx.Formulas.pred(cmp("=", Inc2, Ctx.Terms.numeral(2))));
  EXPECT_EQ(Solver.checkValid(F, Ctx), SatResult::Sat);
}

TEST_F(SmtSolverTest, OpaqueEquality) {
  const Term *A = Ctx.Terms.signal("a", Sort::Opaque);
  const Term *B = Ctx.Terms.signal("b", Sort::Opaque);
  const Term *C = Ctx.Terms.signal("c", Sort::Opaque);
  std::vector<TheoryLiteral> Lits = {{cmp("=", A, B), true},
                                     {cmp("=", B, C), true},
                                     {cmp("=", A, C), false}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Unsat);
}

TEST_F(SmtSolverTest, RealStrictChainSat) {
  // Vibrato-style: lfoFreq <= 10 && lfoFreq + 1 > 10 is satisfiable.
  const Term *F = realSig("lfoFreq");
  const Term *FPlus1 =
      Ctx.Terms.apply("+", Sort::Real, {F, Ctx.Terms.numeral(1)});
  std::vector<TheoryLiteral> Lits = {
      {cmp("<=", F, Ctx.Terms.numeral(10)), true},
      {cmp(">", FPlus1, Ctx.Terms.numeral(10)), true}};
  EXPECT_EQ(Solver.checkLiterals(Lits), SatResult::Sat);
}

} // namespace
