//===- tests/theory/LinearExprTest.cpp - Linear extraction tests ----------===//

#include "theory/LinearExpr.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class LinearExprTest : public ::testing::Test {
protected:
  TermFactory F;
};

TEST_F(LinearExprTest, FromSignal) {
  auto E = LinearExpr::fromTerm(F.signal("x", Sort::Int));
  ASSERT_TRUE(E.has_value());
  ASSERT_EQ(E->coefficients().size(), 1u);
  EXPECT_EQ(E->coefficients().at("x"), Rational(1));
  EXPECT_EQ(E->constant(), Rational(0));
}

TEST_F(LinearExprTest, FromSum) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Y = F.signal("y", Sort::Int);
  const Term *T = F.apply(
      "+", Sort::Int, {F.apply("-", Sort::Int, {X, Y}), F.numeral(3)});
  auto E = LinearExpr::fromTerm(T);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->coefficients().at("x"), Rational(1));
  EXPECT_EQ(E->coefficients().at("y"), Rational(-1));
  EXPECT_EQ(E->constant(), Rational(3));
}

TEST_F(LinearExprTest, ScalarMultiplication) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *T = F.apply("*", Sort::Int, {F.numeral(4), X});
  auto E = LinearExpr::fromTerm(T);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->coefficients().at("x"), Rational(4));
}

TEST_F(LinearExprTest, NonlinearRejected) {
  const Term *X = F.signal("x", Sort::Int);
  EXPECT_FALSE(LinearExpr::fromTerm(F.apply("*", Sort::Int, {X, X})));
}

TEST_F(LinearExprTest, CancellationDropsVariables) {
  const Term *X = F.signal("x", Sort::Int);
  auto E = LinearExpr::fromTerm(F.apply("-", Sort::Int, {X, X}));
  ASSERT_TRUE(E.has_value());
  EXPECT_TRUE(E->isConstant());
}

TEST_F(LinearExprTest, PurifiesUninterpretedApplications) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *FX = F.apply("f", Sort::Int, {X});
  const Term *T = F.apply("+", Sort::Int, {FX, F.numeral(1)});
  auto E = LinearExpr::fromTerm(T);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->coefficients().count("(f x)"), 1u);
}

TEST_F(LinearExprTest, OpaqueSignalRejected) {
  EXPECT_FALSE(LinearExpr::fromTerm(F.signal("t", Sort::Opaque)));
}

TEST_F(LinearExprTest, FromComparison) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Y = F.signal("y", Sort::Int);
  const Term *Cmp = F.apply("<", Sort::Bool, {X, Y});
  auto A = LinearAtom::fromComparison(Cmp, /*Negated=*/false);
  ASSERT_TRUE(A.has_value());
  EXPECT_EQ(A->Rel, LinearRel::LT);
  EXPECT_EQ(A->Expr.coefficients().at("x"), Rational(1));
  EXPECT_EQ(A->Expr.coefficients().at("y"), Rational(-1));

  auto N = LinearAtom::fromComparison(Cmp, /*Negated=*/true);
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(N->Rel, LinearRel::GE);
}

TEST_F(LinearExprTest, NegatedEqualityNeedsSplit) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Eq = F.apply("=", Sort::Bool, {X, F.numeral(0)});
  EXPECT_FALSE(LinearAtom::fromComparison(Eq, /*Negated=*/true).has_value());
  EXPECT_TRUE(LinearAtom::fromComparison(Eq, /*Negated=*/false).has_value());
}

TEST_F(LinearExprTest, NonComparisonRejected) {
  const Term *X = F.signal("x", Sort::Int);
  EXPECT_FALSE(LinearAtom::fromComparison(X, false).has_value());
  const Term *Sum = F.apply("+", Sort::Int, {X, X});
  EXPECT_FALSE(LinearAtom::fromComparison(Sum, false).has_value());
}

} // namespace
