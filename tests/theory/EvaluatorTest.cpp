//===- tests/theory/EvaluatorTest.cpp - Ground evaluation tests -----------===//

#include "theory/Evaluator.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class EvaluatorTest : public ::testing::Test {
protected:
  TermFactory F;
  Evaluator E;
  Assignment Env;
};

TEST_F(EvaluatorTest, Numerals) {
  auto V = E.evaluate(F.numeral(7), Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getNumber(), Rational(7));
}

TEST_F(EvaluatorTest, SignalLookup) {
  Env["x"] = Value::integer(5);
  auto V = E.evaluate(F.signal("x", Sort::Int), Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getNumber(), Rational(5));
  EXPECT_FALSE(E.evaluate(F.signal("y", Sort::Int), Env).has_value());
}

TEST_F(EvaluatorTest, Arithmetic) {
  Env["x"] = Value::integer(5);
  const Term *X = F.signal("x", Sort::Int);
  const Term *Expr = F.apply(
      "+", Sort::Int, {X, F.apply("*", Sort::Int, {F.numeral(2), X})});
  auto V = E.evaluate(Expr, Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getNumber(), Rational(15));
}

TEST_F(EvaluatorTest, Comparisons) {
  Env["x"] = Value::integer(3);
  Env["y"] = Value::integer(4);
  const Term *X = F.signal("x", Sort::Int);
  const Term *Y = F.signal("y", Sort::Int);
  EXPECT_EQ(E.evaluateBool(F.apply("<", Sort::Bool, {X, Y}), Env), true);
  EXPECT_EQ(E.evaluateBool(F.apply(">=", Sort::Bool, {X, Y}), Env), false);
  EXPECT_EQ(E.evaluateBool(F.apply("=", Sort::Bool, {X, X}), Env), true);
  EXPECT_EQ(E.evaluateBool(F.apply("!=", Sort::Bool, {X, Y}), Env), true);
}

TEST_F(EvaluatorTest, BooleanConstants) {
  EXPECT_EQ(E.evaluateBool(F.apply("True", Sort::Bool, {}), Env), true);
  EXPECT_EQ(E.evaluateBool(F.apply("False", Sort::Bool, {}), Env), false);
}

TEST_F(EvaluatorTest, OpaqueConstantsAreSymbols) {
  auto V = E.evaluate(F.apply("idle", Sort::Opaque, {}), Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_TRUE(V->isSymbol());
  EXPECT_EQ(V->getSymbol(), "idle()");
}

TEST_F(EvaluatorTest, UninterpretedFunctionsAreCongruent) {
  Env["x"] = Value::integer(2);
  Env["y"] = Value::integer(2);
  const Term *FX = F.apply("f", Sort::Opaque, {F.signal("x", Sort::Int)});
  const Term *FY = F.apply("f", Sort::Opaque, {F.signal("y", Sort::Int)});
  auto VX = E.evaluate(FX, Env);
  auto VY = E.evaluate(FY, Env);
  ASSERT_TRUE(VX && VY);
  // Equal arguments -> equal symbolic values (congruence).
  EXPECT_EQ(*VX, *VY);
  Env["y"] = Value::integer(3);
  auto VY2 = E.evaluate(FY, Env);
  ASSERT_TRUE(VY2);
  EXPECT_NE(*VX, *VY2);
}

TEST_F(EvaluatorTest, EqualityOnSymbols) {
  Env["a"] = Value::symbol("s1");
  Env["b"] = Value::symbol("s1");
  const Term *A = F.signal("a", Sort::Opaque);
  const Term *B = F.signal("b", Sort::Opaque);
  EXPECT_EQ(E.evaluateBool(F.apply("=", Sort::Bool, {A, B}), Env), true);
  Env["b"] = Value::symbol("s2");
  EXPECT_EQ(E.evaluateBool(F.apply("=", Sort::Bool, {A, B}), Env), false);
}

TEST_F(EvaluatorTest, SortMismatchFails) {
  Env["a"] = Value::symbol("s1");
  const Term *A = F.signal("a", Sort::Opaque);
  EXPECT_FALSE(E.evaluate(F.apply("+", Sort::Int, {A, A}), Env).has_value());
  EXPECT_FALSE(E.evaluateBool(F.apply("<", Sort::Bool, {A, A}), Env)
                   .has_value());
}

TEST_F(EvaluatorTest, RealArithmetic) {
  Env["f"] = Value::number(Rational(5, 2));
  const Term *Freq = F.signal("f", Sort::Real);
  const Term *Expr =
      F.apply("+", Sort::Real, {Freq, F.numeral(Rational(1, 2), Sort::Real)});
  auto V = E.evaluate(Expr, Env);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->getNumber(), Rational(3));
}

} // namespace
