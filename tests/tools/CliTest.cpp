//===- tests/tools/CliTest.cpp - temos CLI end-to-end tests ---------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace {

/// Runs the CLI with \p Args; returns (exit code, stdout).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Command = std::string(TEMOS_CLI_PATH) + " " + Args +
                        " 2>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Out;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

/// Runs the CLI with \p Args; returns (exit code, stderr). stdout is
/// discarded — used for warning/diagnostic assertions, which the tool
/// prints to stderr so piped output stays clean.
std::pair<int, std::string> runCliStderr(const std::string &Args) {
  std::string Command = std::string(TEMOS_CLI_PATH) + " " + Args +
                        " 2>&1 1>/dev/null";
  FILE *Pipe = popen(Command.c_str(), "r");
  if (!Pipe)
    return {-1, ""};
  std::string Out;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

std::string writeSpec(const std::string &Name, const std::string &Body) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path);
  Out << Body;
  return Path;
}

const char *CounterSpec = R"(
#LIA#
spec Counter
cells { int x = 0; }
always guarantee {
  [x <- x + 1] || [x <- x - 1];
  x = 0 -> F (x = 2);
}
)";

TEST(Cli, ListShowsSixteenBenchmarks) {
  auto [Code, Out] = runCli("--list");
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(temos::split(temos::trim(Out), '\n').size(), 16u);
  EXPECT_NE(Out.find("CFS"), std::string::npos);
  EXPECT_NE(Out.find("Vibrato"), std::string::npos);
}

TEST(Cli, SynthesizesSpecFile) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli(Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("Counter: realizable"), std::string::npos);
  EXPECT_NE(Out.find("|psi|=3"), std::string::npos);
}

TEST(Cli, EmitsJavaScript) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--js " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("function createController"), std::string::npos);
}

TEST(Cli, PrintsAssumptions) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--assumptions " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("X X (x = 2)"), std::string::npos);
}

TEST(Cli, SimulatesSteps) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--simulate 3 " + Path);
  EXPECT_EQ(Code, 0);
  auto Lines = temos::split(temos::trim(Out), '\n');
  ASSERT_EQ(Lines.size(), 3u);
  EXPECT_NE(Lines[0].find("step 0: x="), std::string::npos);
}

TEST(Cli, EmitsJavaScriptViaEmitFlag) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--emit=js " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("function createController"), std::string::npos);
}

TEST(Cli, EmitsCppViaEmitFlag) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--emit=cpp " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("struct CounterController"), std::string::npos);
}

TEST(Cli, PrintsAssumptionsViaEmitFlag) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--emit=assumptions " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("X X (x = 2)"), std::string::npos);
}

TEST(Cli, DeprecatedFlagsWarnOnStderr) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  struct {
    const char *Flag;
    const char *Replacement;
  } Cases[] = {
      {"--js", "--emit=js"},
      {"--cpp", "--emit=cpp"},
      {"--assumptions", "--emit=assumptions"},
  };
  for (const auto &C : Cases) {
    SCOPED_TRACE(C.Flag);
    auto [Code, Err] = runCliStderr(std::string(C.Flag) + " " + Path);
    EXPECT_EQ(Code, 0);
    EXPECT_NE(Err.find(std::string("warning: ") + C.Flag +
                       " is deprecated, use " + C.Replacement),
              std::string::npos)
        << "stderr was: " << Err;
  }
}

TEST(Cli, EmitFlagDoesNotWarn) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Err] = runCliStderr("--emit=js " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_EQ(Err.find("deprecated"), std::string::npos) << "stderr was: "
                                                       << Err;
}

TEST(Cli, ParseErrorOnStderrNamesLineAndColumn) {
  std::string Path = writeSpec("cli_badcol.tslmt",
                               "inputs { bool p; }\nalways guarantee {\n"
                               "  q;\n}\n");
  auto [Code, Err] = runCliStderr(Path);
  EXPECT_NE(Code, 0);
  EXPECT_NE(Err.find("line 3, col 3: unknown signal 'q'"), std::string::npos)
      << "stderr was: " << Err;
}

TEST(Cli, EmitSummaryShowsSolverJobs) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--emit=summary " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("solver jobs:"), std::string::npos);
  EXPECT_NE(Out.find("cache on"), std::string::npos);
}

TEST(Cli, JobsFlagSynthesizesSameSpec) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Serial, SerialOut] = runCli("--emit=assumptions --jobs 1 " + Path);
  auto [Par, ParOut] = runCli("--emit=assumptions --jobs 4 " + Path);
  EXPECT_EQ(Serial, 0);
  EXPECT_EQ(Par, 0);
  // Determinism guarantee: the emitted assumption list is byte-identical
  // across thread counts.
  EXPECT_EQ(SerialOut, ParOut);
}

TEST(Cli, NoCacheFlagDisablesCache) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--no-cache " + Path);
  EXPECT_EQ(Code, 0);
  EXPECT_NE(Out.find("cache off"), std::string::npos);
  EXPECT_NE(Out.find("0 hits, 0 misses"), std::string::npos);
}

TEST(Cli, UnknownEmitValueFails) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--emit=fortran " + Path);
  EXPECT_EQ(Code, 2);
  (void)Out;
}

TEST(Cli, ZeroJobsFails) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Out] = runCli("--jobs 0 " + Path);
  EXPECT_EQ(Code, 2);
  (void)Out;
}

TEST(Cli, UnknownBenchmarkFails) {
  auto [Code, Out] = runCli("--benchmark NoSuchThing");
  EXPECT_NE(Code, 0);
  (void)Out;
}

TEST(Cli, MissingFileFails) {
  auto [Code, Out] = runCli("/nonexistent/spec.tslmt");
  EXPECT_NE(Code, 0);
  (void)Out;
}

TEST(Cli, ParseErrorReportsLine) {
  std::string Path = writeSpec("cli_bad.tslmt", "inputs { zzz p; }");
  auto [Code, Out] = runCli(Path);
  EXPECT_NE(Code, 0);
  (void)Out;
}

TEST(Cli, UnrealizableSpecExitsNonZero) {
  std::string Path = writeSpec("cli_unreal.tslmt", R"(
#LIA#
spec Hopeless
inputs { int a; }
cells { int x = 0; }
always guarantee {
  [x <- x + 1] || [x <- x];
  a < x;
}
)");
  auto [Code, Out] = runCli(Path);
  EXPECT_NE(Code, 0);
  (void)Out;
}

//===----------------------------------------------------------------------===//
// Exit-code contract (documented in the README):
//   0 success, 1 input error, 2 usage error, 3 unrealizable,
//   4 resource budget exhausted (Unknown).
//===----------------------------------------------------------------------===//

TEST(Cli, ExitCodesAreDistinctPerOutcome) {
  std::string Unreal = writeSpec("cli_unreal3.tslmt", R"(
#LIA#
spec Hopeless
inputs { int a; }
cells { int x = 0; }
always guarantee {
  [x <- x + 1] || [x <- x];
  a < x;
}
)");
  EXPECT_EQ(runCli(Unreal).first, 3);
  EXPECT_EQ(runCli("/nonexistent/spec.tslmt").first, 1);
  EXPECT_EQ(runCli("--benchmark NoSuchThing").first, 1);
  std::string Good = writeSpec("cli_counter.tslmt", CounterSpec);
  EXPECT_EQ(runCli(Good).first, 0);
}

TEST(Cli, BadBudgetFlagsAreUsageErrors) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  EXPECT_EQ(runCli("--time-budget abc " + Path).first, 2);
  EXPECT_EQ(runCli("--time-budget -1 " + Path).first, 2);
  EXPECT_EQ(runCli("--inject-fault=other " + Path).first, 2);
  // spin-hang without any budget to bound it would literally never
  // return; the CLI must refuse it up front.
  EXPECT_EQ(runCli("--inject-fault=spin-hang " + Path).first, 2);
}

TEST(Cli, UnfiredTimeBudgetKeepsOutputByteIdentical) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [RefCode, RefOut] = runCli("--emit=js " + Path);
  auto [BudCode, BudOut] = runCli("--emit=js --time-budget 3600 " + Path);
  EXPECT_EQ(RefCode, 0);
  EXPECT_EQ(BudCode, 0);
  EXPECT_EQ(RefOut, BudOut);
}

/// The acceptance bar for the deadline subsystem: an injected
/// non-terminating SyGuS search under a 2s budget must exit with the
/// resource-exhausted code within 4s of wall clock, report a timeout in
/// the summary, and dump an artifact that temos-fuzz can replay.
TEST(Cli, SpinHangTripsDeadlineAndDumpsReplayableArtifact) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  std::string Dir = ::testing::TempDir() + "/cli_artifacts";

  auto Start = std::chrono::steady_clock::now();
  auto [Code, Err] = runCliStderr("--emit=summary --time-budget 2 "
                                  "--inject-fault=spin-hang --artifacts " +
                                  Dir + " " + Path);
  double Wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  EXPECT_EQ(Code, 4) << "stderr was: " << Err;
  EXPECT_LT(Wall, 4.0) << "deadline failed to trip within 2x the budget";
  EXPECT_NE(Err.find("timeout"), std::string::npos) << "stderr was: " << Err;

  // The artifact is announced on stderr and must exist on disk with the
  // replayable header.
  std::string Artifact = Dir + "/temos-artifact-Counter.tslmt";
  EXPECT_NE(Err.find(Artifact), std::string::npos) << "stderr was: " << Err;
  std::ifstream In(Artifact);
  ASSERT_TRUE(In.good()) << Artifact;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("// temos-artifact: v1"), std::string::npos);
  EXPECT_NE(Buf.str().find("inject-fault=spin-hang"), std::string::npos);

  // temos-fuzz --replay re-runs the artifact with the recorded options
  // and exits 1 because the degradation reproduces.
  std::string Replay = std::string(TEMOS_FUZZ_CLI_PATH) + " --replay " +
                       Artifact + " 2>/dev/null";
  FILE *Pipe = popen(Replay.c_str(), "r");
  ASSERT_NE(Pipe, nullptr);
  std::string Out;
  char Buffer[512];
  while (fgets(Buffer, sizeof(Buffer), Pipe))
    Out += Buffer;
  int Status = pclose(Pipe);
  EXPECT_EQ(WEXITSTATUS(Status), 1) << "replay output: " << Out;
  EXPECT_NE(Out.find("degradation reproduces"), std::string::npos) << Out;
}

TEST(Cli, DegradedSummaryListsFailures) {
  std::string Path = writeSpec("cli_counter.tslmt", CounterSpec);
  auto [Code, Err] = runCliStderr(
      "--emit=summary --time-budget 0.0001 --artifacts none " + Path);
  EXPECT_EQ(Code, 4);
  EXPECT_NE(Err.find("failure:"), std::string::npos) << "stderr was: " << Err;
}

} // namespace
