//===- tests/logic/DiagnosticsTest.cpp - Parse diagnostic quality ---------===//
///
/// \file
/// Table-driven checks that ParseError carries the right 1-based
/// line/column and a message naming the culprit, for a spread of
/// malformed specifications. Columns anchor on the offending token, not
/// on whatever the parser happened to be looking at when it noticed.
///
//===----------------------------------------------------------------------===//

#include "logic/Parser.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

struct DiagnosticCase {
  const char *Label;
  const char *Source;
  size_t Line;
  size_t Column;
  /// Substring the message must contain (full messages stay free to
  /// gain detail without churning this table).
  const char *MessagePart;
};

const DiagnosticCase Cases[] = {
    {"unknown-theory", "#XYZ#", 1, 2, "unknown theory 'XYZ'"},
    {"missing-theory-name", "#", 1, 2, "expected theory name after '#'"},
    {"unexpected-character",
     "inputs { bool p; }\nalways guarantee {\n  p $ p;\n}", 3, 5,
     "unexpected character '$'"},
    {"missing-semicolon", "inputs { bool p }", 1, 17,
     "expected ';' but found '}'"},
    {"bad-sort", "inputs { integer x; }", 1, 10,
     "expected sort name, found 'integer'"},
    {"update-of-non-cell",
     "inputs { int x; }\ncells { int c; }\nalways guarantee { [y <- x]; }", 3,
     21, "'y' is not a cell or output"},
    {"unknown-signal", "inputs { bool p; }\nalways guarantee {\n  q;\n}", 3, 3,
     "unknown signal 'q'"},
    {"unknown-function", "inputs { bool p; }\nalways guarantee { foo p; }", 2,
     25, "unknown function 'foo'"},
    {"builtin-arity", "inputs { int x; }\nalways guarantee { lt x; }", 2, 24,
     "builtin '<' expects 2 arguments, got 1"},
    {"malformed-numeral", "inputs { int x; }\nalways guarantee { x < 1.2.3; }",
     2, 24, "malformed numeral '1.2.3'"},
    {"term-as-formula", "inputs { int x; }\nalways guarantee { x; }", 2, 21,
     "term 'x' used as a formula but has sort int"},
    {"always-without-block-kind", "always foo { }", 1, 8,
     "expected 'assume' or 'guarantee' after 'always'"},
    {"stray-toplevel-ident", "bogus", 1, 1,
     "expected a block keyword, found 'bogus'"},
    {"dangling-comparison", "inputs { int x; }\nalways guarantee { x < ; }", 2,
     24, "expected a formula or term, found ';'"},
    {"spec-without-name", "spec", 1, 5,
     "expected specification name after 'spec'"},
    {"bad-parameter-sort", "functions { bool f(; }", 1, 20,
     "expected parameter sort"},
};

TEST(DiagnosticsTest, MalformedSpecsReportPreciseLocations) {
  for (const DiagnosticCase &C : Cases) {
    SCOPED_TRACE(C.Label);
    Context Ctx;
    auto Spec = parseSpecification(C.Source, Ctx);
    ASSERT_FALSE(Spec.ok()) << "expected a parse failure";
    const ParseError &Err = Spec.error();
    EXPECT_EQ(Err.Line, C.Line);
    EXPECT_EQ(Err.Column, C.Column);
    EXPECT_NE(Err.Message.find(C.MessagePart), std::string::npos)
        << "message was: " << Err.Message;
  }
}

TEST(DiagnosticsTest, StrIncludesLineAndColumn) {
  Context Ctx;
  auto Spec = parseSpecification("#XYZ#", Ctx);
  ASSERT_FALSE(Spec.ok());
  EXPECT_EQ(Spec.error().str(),
            "line 1, col 2: unknown theory 'XYZ' (expected LIA/RA/UF)");
}

TEST(DiagnosticsTest, ColumnZeroOmittedFromStr) {
  ParseError Err;
  Err.Line = 7;
  Err.Message = "legacy error";
  EXPECT_EQ(Err.str(), "line 7: legacy error");
}

TEST(DiagnosticsTest, FormulaParseCarriesLocation) {
  Context Ctx;
  auto Spec = parseSpecification("inputs { bool p; }", Ctx);
  ASSERT_TRUE(Spec.ok());
  auto F = parseFormula("p && nope", *Spec, Ctx);
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.error().Line, 1u);
  EXPECT_EQ(F.error().Column, 6u);
  EXPECT_NE(F.error().Message.find("unknown signal 'nope'"),
            std::string::npos);
}

} // namespace
