//===- tests/logic/TermTest.cpp - Term and TermFactory tests --------------===//

#include "logic/Term.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermFactory F;
};

TEST_F(TermTest, SignalsAreHashConsed) {
  const Term *A = F.signal("x", Sort::Int);
  const Term *B = F.signal("x", Sort::Int);
  EXPECT_EQ(A, B);
  const Term *Different = F.signal("y", Sort::Int);
  EXPECT_NE(A, Different);
  const Term *DifferentSort = F.signal("x", Sort::Real);
  EXPECT_NE(A, DifferentSort);
}

TEST_F(TermTest, AppliesAreHashConsed) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *One = F.numeral(1);
  const Term *A = F.apply("+", Sort::Int, {X, One});
  const Term *B = F.apply("+", Sort::Int, {X, One});
  EXPECT_EQ(A, B);
  const Term *Flipped = F.apply("+", Sort::Int, {One, X});
  EXPECT_NE(A, Flipped);
}

TEST_F(TermTest, NumeralsCarryValues) {
  const Term *N = F.numeral(Rational(7, 2), Sort::Real);
  EXPECT_TRUE(N->isNumeral());
  EXPECT_EQ(N->value(), Rational(7, 2));
  EXPECT_EQ(N->sort(), Sort::Real);
}

TEST_F(TermTest, Str) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *One = F.numeral(1);
  const Term *Sum = F.apply("+", Sort::Int, {X, One});
  EXPECT_EQ(Sum->str(), "(x + 1)");
  EXPECT_EQ(Sum->strInfix(), "(x + 1)");
  const Term *C = F.apply("c10", Sort::Int, {});
  EXPECT_EQ(C->str(), "c10()");
}

TEST_F(TermTest, StrInfixFunctionCall) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *App = F.apply("foo", Sort::Int, {X, X});
  EXPECT_EQ(App->strInfix(), "foo(x, x)");
}

TEST_F(TermTest, Substitute) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Y = F.signal("y", Sort::Int);
  const Term *Sum = F.apply("+", Sort::Int, {X, F.numeral(1)});
  const Term *Substituted = F.substitute(Sum, "x", Y);
  EXPECT_EQ(Substituted->str(), "(y + 1)");
  // No occurrence: structurally identical result (same pointer).
  EXPECT_EQ(F.substitute(Sum, "z", Y), Sum);
}

TEST_F(TermTest, SubstituteNested) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Inner = F.apply("+", Sort::Int, {X, F.numeral(1)});
  const Term *Outer = F.apply("+", Sort::Int, {Inner, X});
  const Term *Val = F.numeral(5);
  const Term *Result = F.substitute(Outer, "x", Val);
  EXPECT_EQ(Result->str(), "((5 + 1) + 5)");
}

TEST_F(TermTest, CollectSignals) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *Y = F.signal("y", Sort::Int);
  const Term *T = F.apply("+", Sort::Int, {X, F.apply("-", Sort::Int, {Y, X})});
  std::vector<std::string> Names;
  collectSignals(T, Names);
  ASSERT_EQ(Names.size(), 2u);
  EXPECT_EQ(Names[0], "x");
  EXPECT_EQ(Names[1], "y");
}

TEST_F(TermTest, MentionsSignal) {
  const Term *X = F.signal("x", Sort::Int);
  const Term *T = F.apply("f", Sort::Int, {X});
  EXPECT_TRUE(mentionsSignal(T, "x"));
  EXPECT_FALSE(mentionsSignal(T, "y"));
}

} // namespace
