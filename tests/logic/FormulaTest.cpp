//===- tests/logic/FormulaTest.cpp - Formula factory and NNF tests --------===//

#include "logic/Formula.h"
#include "logic/Traversal.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class FormulaTest : public ::testing::Test {
protected:
  const Formula *atom(const std::string &Name) {
    return FF.pred(TF.signal(Name, Sort::Bool));
  }

  TermFactory TF;
  FormulaFactory FF;
};

TEST_F(FormulaTest, HashConsing) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(FF.andF(A, B), FF.andF(A, B));
  EXPECT_NE(FF.andF(A, B), FF.andF(B, A));
  EXPECT_EQ(FF.until(A, B), FF.until(A, B));
}

TEST_F(FormulaTest, AndSimplifications) {
  const Formula *A = atom("a");
  EXPECT_EQ(FF.andF(A, FF.trueF()), A);
  EXPECT_EQ(FF.andF(A, FF.falseF()), FF.falseF());
  EXPECT_EQ(FF.andF(std::vector<const Formula *>{}), FF.trueF());
  // Nested Ands flatten.
  const Formula *B = atom("b");
  const Formula *C = atom("c");
  const Formula *Nested = FF.andF(FF.andF(A, B), C);
  EXPECT_EQ(Nested->children().size(), 3u);
  // Duplicates collapse.
  EXPECT_EQ(FF.andF(A, A), A);
}

TEST_F(FormulaTest, OrSimplifications) {
  const Formula *A = atom("a");
  EXPECT_EQ(FF.orF(A, FF.falseF()), A);
  EXPECT_EQ(FF.orF(A, FF.trueF()), FF.trueF());
  EXPECT_EQ(FF.orF(std::vector<const Formula *>{}), FF.falseF());
}

TEST_F(FormulaTest, DoubleNegationCollapses) {
  const Formula *A = atom("a");
  EXPECT_EQ(FF.notF(FF.notF(A)), A);
  EXPECT_EQ(FF.notF(FF.trueF()), FF.falseF());
}

TEST_F(FormulaTest, UpdateAtom) {
  const Term *X = TF.signal("x", Sort::Int);
  const Term *Inc = TF.apply("+", Sort::Int, {X, TF.numeral(1)});
  const Formula *U = FF.update("x", Inc);
  EXPECT_TRUE(U->is(Formula::Kind::Update));
  EXPECT_EQ(U->cell(), "x");
  EXPECT_EQ(U->updateValue(), Inc);
  EXPECT_EQ(U->str(), "[x <- (x + 1)]");
}

TEST_F(FormulaTest, Str) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(FF.globally(FF.implies(A, FF.finallyF(B)))->str(),
            "G (a -> F b)");
  EXPECT_EQ(FF.until(A, B)->str(), "(a U b)");
}

TEST_F(FormulaTest, SizeCountsNodes) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  // G(a -> F b): G, ->, a, F, b = 5 nodes.
  EXPECT_EQ(FF.globally(FF.implies(A, FF.finallyF(B)))->size(), 5u);
}

TEST_F(FormulaTest, NNFPushesNegationThroughAnd) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *F = FF.notF(FF.andF(A, B));
  const Formula *N = FF.toNNF(F);
  EXPECT_EQ(N, FF.orF(FF.notF(A), FF.notF(B)));
}

TEST_F(FormulaTest, NNFEliminatesImplies) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(FF.toNNF(FF.implies(A, B)), FF.orF(FF.notF(A), B));
}

TEST_F(FormulaTest, NNFIff) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *N = FF.toNNF(FF.iff(A, B));
  EXPECT_EQ(N, FF.orF(FF.andF(A, B), FF.andF(FF.notF(A), FF.notF(B))));
  const Formula *NegN = FF.toNNF(FF.notF(FF.iff(A, B)));
  EXPECT_EQ(NegN, FF.orF(FF.andF(A, FF.notF(B)), FF.andF(FF.notF(A), B)));
}

TEST_F(FormulaTest, NNFTemporalDuals) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(FF.toNNF(FF.notF(FF.globally(A))), FF.finallyF(FF.notF(A)));
  EXPECT_EQ(FF.toNNF(FF.notF(FF.finallyF(A))), FF.globally(FF.notF(A)));
  EXPECT_EQ(FF.toNNF(FF.notF(FF.next(A))), FF.next(FF.notF(A)));
  EXPECT_EQ(FF.toNNF(FF.notF(FF.until(A, B))),
            FF.release(FF.notF(A), FF.notF(B)));
  EXPECT_EQ(FF.toNNF(FF.notF(FF.release(A, B))),
            FF.until(FF.notF(A), FF.notF(B)));
}

TEST_F(FormulaTest, NNFWeakUntilNegation) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  // !(a W b) === !b U (!a && !b).
  EXPECT_EQ(FF.toNNF(FF.notF(FF.weakUntil(A, B))),
            FF.until(FF.notF(B), FF.andF(FF.notF(A), FF.notF(B))));
}

TEST_F(FormulaTest, NNFIsIdempotent) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *F = FF.notF(
      FF.implies(FF.globally(A), FF.until(A, FF.notF(FF.andF(A, B)))));
  const Formula *N = FF.toNNF(F);
  EXPECT_EQ(FF.toNNF(N), N);
}

TEST_F(FormulaTest, CollectPredicateTerms) {
  const Term *P = TF.signal("p", Sort::Bool);
  const Term *Q = TF.signal("q", Sort::Bool);
  const Formula *F =
      FF.andF(FF.pred(P), FF.globally(FF.orF(FF.pred(Q), FF.pred(P))));
  auto Preds = collectPredicateTerms(F);
  ASSERT_EQ(Preds.size(), 2u);
  EXPECT_EQ(Preds[0], P);
  EXPECT_EQ(Preds[1], Q);
}

TEST_F(FormulaTest, CollectUpdateTerms) {
  const Term *X = TF.signal("x", Sort::Int);
  const Formula *U1 = FF.update("x", TF.apply("+", Sort::Int, {X, TF.numeral(1)}));
  const Formula *U2 = FF.update("x", X);
  const Formula *F = FF.globally(FF.orF(U1, FF.andF(U2, U1)));
  auto Updates = collectUpdateTerms(F);
  ASSERT_EQ(Updates.size(), 2u);
  EXPECT_EQ(Updates[0], U1);
  EXPECT_EQ(Updates[1], U2);
}

TEST_F(FormulaTest, BuildParentMap) {
  const Formula *A = atom("a");
  const Formula *G = FF.globally(A);
  const Formula *Root = FF.andF(G, atom("b"));
  auto Parents = buildParentMap(Root);
  ASSERT_EQ(Parents[A].size(), 1u);
  EXPECT_EQ(Parents[A][0], G);
  ASSERT_EQ(Parents[G].size(), 1u);
  EXPECT_EQ(Parents[G][0], Root);
  EXPECT_TRUE(Parents[Root].empty());
}

} // namespace
