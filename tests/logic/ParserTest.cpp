//===- tests/logic/ParserTest.cpp - Concrete syntax parser tests ----------===//

#include "logic/Parser.h"
#include "logic/Traversal.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class ParserTest : public ::testing::Test {
protected:
  ParseResult<Specification> parse(const std::string &Source) {
    return parseSpecification(Source, Ctx);
  }

  Context Ctx;
};

TEST_F(ParserTest, EmptySpec) {
  auto Spec = parse("");
  ASSERT_TRUE(Spec.ok());
  EXPECT_TRUE(Spec->Inputs.empty());
  EXPECT_TRUE(Spec->AlwaysGuarantees.empty());
}

TEST_F(ParserTest, TheoryHeader) {
  auto Spec = parse("#RA#");
  ASSERT_TRUE(Spec.ok());
  EXPECT_EQ(Spec->Th, Theory::LRA);
  auto SpecLIA = parse("#LIA#");
  ASSERT_TRUE(SpecLIA.ok());
  EXPECT_EQ(SpecLIA->Th, Theory::LIA);
  auto SpecUF = parse("#UF#");
  ASSERT_TRUE(SpecUF.ok());
  EXPECT_EQ(SpecUF->Th, Theory::UF);
}

TEST_F(ParserTest, UnknownTheoryFails) {
  auto Spec = parse("#XYZ#");
  EXPECT_FALSE(Spec.ok());
  EXPECT_FALSE(Spec.error().Message.empty());
}

TEST_F(ParserTest, SignalDeclarations) {
  auto Spec = parse(R"(
    inputs { int task1, task2; bool enq; }
    cells { int vruntime1 = 0; real freq; }
    outputs { opaque next_task; }
  )");
  ASSERT_TRUE(Spec.ok());
  ASSERT_EQ(Spec->Inputs.size(), 3u);
  EXPECT_EQ(Spec->Inputs[0].Name, "task1");
  EXPECT_EQ(Spec->Inputs[2].S, Sort::Bool);
  ASSERT_EQ(Spec->Cells.size(), 2u);
  EXPECT_EQ(Spec->Cells[0].Name, "vruntime1");
  ASSERT_NE(Spec->Cells[0].Init, nullptr);
  EXPECT_EQ(Spec->Cells[0].Init->value(), Rational(0));
  EXPECT_EQ(Spec->Cells[1].Init, nullptr);
  ASSERT_EQ(Spec->Outputs.size(), 1u);
  EXPECT_EQ(Spec->Outputs[0].S, Sort::Opaque);
}

TEST_F(ParserTest, SimpleGuarantee) {
  auto Spec = parse(R"(
    #LIA#
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->AlwaysGuarantees.size(), 1u);
  const Formula *G = Spec->AlwaysGuarantees[0];
  EXPECT_EQ(G->kind(), Formula::Kind::Or);
  EXPECT_EQ(G->str(), "([x <- (x + 1)] || [x <- (x - 1)])");
}

TEST_F(ParserTest, PrefixApplicationSyntax) {
  // The Fig. 5 vibrato style: prefix application + cN() constants.
  auto Spec = parse(R"(
    #RA#
    cells { real lfoFreq = 0; bool lfo; }
    always guarantee {
      G F [lfo <- True()];
      lte lfoFreq c10() -> [lfo <- False()] U gt lfoFreq c10();
      [lfo <- False()] -> [lfoFreq <- add lfoFreq c1()];
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->AlwaysGuarantees.size(), 3u);
  EXPECT_EQ(Spec->AlwaysGuarantees[0]->str(), "G F [lfo <- True()]");
  EXPECT_EQ(Spec->AlwaysGuarantees[1]->str(),
            "((lfoFreq <= 10) -> ([lfo <- False()] U (lfoFreq > 10)))");
  EXPECT_EQ(Spec->AlwaysGuarantees[2]->str(),
            "([lfo <- False()] -> [lfoFreq <- (lfoFreq + 1)])");
}

TEST_F(ParserTest, InfixAndPrefixBuildSameAst) {
  auto Spec = parse(R"(
    #LIA#
    inputs { int x, y; }
    cells { int m = 0; }
    always guarantee {
      x < y -> [m <- x];
      lt x y -> [m <- x];
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->AlwaysGuarantees.size(), 2u);
  EXPECT_EQ(Spec->AlwaysGuarantees[0], Spec->AlwaysGuarantees[1]);
}

TEST_F(ParserTest, TemporalOperators) {
  auto Spec = parse(R"(
    inputs { bool p, q; }
    always guarantee {
      G (p -> F q);
      p U q;
      p W q;
      p R q;
      X p;
      G F p;
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->AlwaysGuarantees.size(), 6u);
  EXPECT_EQ(Spec->AlwaysGuarantees[1]->kind(), Formula::Kind::Until);
  EXPECT_EQ(Spec->AlwaysGuarantees[2]->kind(), Formula::Kind::WeakUntil);
  EXPECT_EQ(Spec->AlwaysGuarantees[3]->kind(), Formula::Kind::Release);
  EXPECT_EQ(Spec->AlwaysGuarantees[4]->kind(), Formula::Kind::Next);
}

TEST_F(ParserTest, PrecedenceImpliesBindsLooserThanAnd) {
  auto Spec = parse(R"(
    inputs { bool a, b, c; }
    always guarantee { a && b -> c; }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  const Formula *F = Spec->AlwaysGuarantees[0];
  ASSERT_EQ(F->kind(), Formula::Kind::Implies);
  EXPECT_EQ(F->lhs()->kind(), Formula::Kind::And);
}

TEST_F(ParserTest, ImpliesIsRightAssociative) {
  auto Spec = parse(R"(
    inputs { bool a, b, c; }
    always guarantee { a -> b -> c; }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  const Formula *F = Spec->AlwaysGuarantees[0];
  ASSERT_EQ(F->kind(), Formula::Kind::Implies);
  EXPECT_EQ(F->rhs()->kind(), Formula::Kind::Implies);
}

TEST_F(ParserTest, DeclaredFunctions) {
  auto Spec = parse(R"(
    #UF#
    inputs { opaque x; }
    cells { opaque y; }
    functions { bool p(opaque); opaque f(opaque); }
    always guarantee {
      p x -> X (p y);
      [y <- f x];
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  auto Preds = collectPredicateTerms(*Spec);
  ASSERT_EQ(Preds.size(), 2u);
  EXPECT_EQ(Preds[0]->str(), "(p x)");
  EXPECT_EQ(Preds[0]->sort(), Sort::Bool);
}

TEST_F(ParserTest, UpdateOfUndeclaredCellFails) {
  auto Spec = parse(R"(
    inputs { int x; }
    always guarantee { [y <- x]; }
  )");
  EXPECT_FALSE(Spec.ok());
  EXPECT_NE(Spec.error().Message.find("y"), std::string::npos);
}

TEST_F(ParserTest, UnknownSignalFails) {
  auto Spec = parse(R"(
    inputs { int x; }
    cells { int c; }
    always guarantee { [c <- zz]; }
  )");
  EXPECT_FALSE(Spec.ok());
}

TEST_F(ParserTest, UnknownFunctionWithArgsFails) {
  auto Spec = parse(R"(
    inputs { int x; }
    cells { int c; }
    always guarantee { [c <- mystery x]; }
  )");
  EXPECT_FALSE(Spec.ok());
  EXPECT_NE(Spec.error().Message.find("mystery"), std::string::npos);
}

TEST_F(ParserTest, TermUsedAsFormulaMustBeBool) {
  auto Spec = parse(R"(
    inputs { int x; }
    always guarantee { x; }
  )");
  EXPECT_FALSE(Spec.ok());
}

TEST_F(ParserTest, Comments) {
  auto Spec = parse(R"(
    // A comment before everything.
    inputs { bool p; } // trailing comment
    always guarantee {
      // comment inside block
      G p;
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->AlwaysGuarantees.size(), 1u);
}

TEST_F(ParserTest, ErrorCarriesLineNumber) {
  auto Spec = parse("inputs { bool p; }\nalways guarantee {\n  q;\n}");
  ASSERT_FALSE(Spec.ok());
  EXPECT_EQ(Spec.error().Line, 3u);
}

TEST_F(ParserTest, ParseSingleFormula) {
  auto Spec = parse("inputs { int x; } cells { int y; }");
  ASSERT_TRUE(Spec.ok());
  auto F = parseFormula("G (x < y -> [y <- x])", *Spec, Ctx);
  ASSERT_TRUE(F.ok()) << F.error().str();
  EXPECT_EQ((*F)->kind(), Formula::Kind::Globally);
}

TEST_F(ParserTest, ParseSingleFormulaRejectsTrailing) {
  auto Spec = parse("inputs { bool p; }");
  ASSERT_TRUE(Spec.ok());
  EXPECT_FALSE(parseFormula("p p", *Spec, Ctx).ok());
}

TEST_F(ParserTest, SpecNameBlock) {
  auto Spec = parse("spec CFS inputs { bool p; }");
  ASSERT_TRUE(Spec.ok());
  EXPECT_EQ(Spec->Name, "CFS");
}

TEST_F(ParserTest, RoundTripThroughStr) {
  std::string Source = R"(
    #LIA#
    inputs { int x; }
    cells { int y = 0; }
    always guarantee { G (x < y -> [y <- x + 1]); }
  )";
  auto Spec = parse(Source);
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  std::string Printed = Spec->str();
  Context Ctx2;
  auto Reparsed = parseSpecification(Printed, Ctx2);
  ASSERT_TRUE(Reparsed.ok()) << Reparsed.error().str() << "\n" << Printed;
  ASSERT_EQ(Reparsed->AlwaysGuarantees.size(), 1u);
  EXPECT_EQ(Reparsed->AlwaysGuarantees[0]->str(),
            Spec->AlwaysGuarantees[0]->str());
}

TEST_F(ParserTest, NegativeNumeral) {
  auto Spec = parse(R"(
    #LIA#
    cells { int x = -5; }
    always guarantee { x < -1 -> [x <- x + 1]; }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  EXPECT_EQ(Spec->Cells[0].Init->value(), Rational(-5));
}

TEST_F(ParserTest, AssumeBlockParsed) {
  auto Spec = parse(R"(
    #LIA#
    inputs { int ball; }
    cells { int p = 0; }
    always assume { ball >= c0(); ball <= c9(); }
    always guarantee { G (p < ball -> [p <- p + 1]); }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  ASSERT_EQ(Spec->Assumptions.size(), 2u);
  EXPECT_EQ(Spec->Assumptions[0]->str(), "(ball >= 0)");
}

TEST_F(ParserTest, MissingSemicolonFails) {
  EXPECT_FALSE(parse("inputs { bool p } ").ok());
}

TEST_F(ParserTest, UnbalancedParenFails) {
  EXPECT_FALSE(parse(R"(
    inputs { bool p; }
    always guarantee { (p && p; }
  )").ok());
}

TEST_F(ParserTest, UnterminatedUpdateFails) {
  EXPECT_FALSE(parse(R"(
    cells { int x; }
    always guarantee { [x <- x + 1; }
  )").ok());
}

TEST_F(ParserTest, UntilIsRightAssociative) {
  auto Spec = parse(R"(
    inputs { bool a, b, c; }
    always guarantee { a U b U c; }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  const Formula *F = Spec->AlwaysGuarantees[0];
  ASSERT_EQ(F->kind(), Formula::Kind::Until);
  EXPECT_EQ(F->rhs()->kind(), Formula::Kind::Until);
}

TEST_F(ParserTest, ComparisonChainsRejected) {
  // a < b < c is not a chained comparison: the first yields Bool and
  // the second rejects a Bool operand.
  auto Spec = parse(R"(
    inputs { int a, b, c; }
    always guarantee { a < b < c; }
  )");
  EXPECT_FALSE(Spec.ok());
}

TEST_F(ParserTest, OpaqueEqualityAllowed) {
  auto Spec = parse(R"(
    inputs { opaque t1, t2; }
    cells { int x = 0; }
    always guarantee { G (t1 = t2 -> [x <- x + 1]); }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
}

TEST_F(ParserTest, MultiplicationParses) {
  auto Spec = parse(R"(
    #LIA#
    inputs { int a; }
    cells { int x = 0; }
    always guarantee { G (2 * a < x -> [x <- x]); }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
}

TEST_F(ParserTest, FunctionsWithArity) {
  auto Spec = parse(R"(
    #UF#
    inputs { opaque a, b; }
    cells { opaque y; }
    functions { opaque g(opaque, opaque); }
    always guarantee { [y <- g a b]; }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  // Wrong arity fails.
  auto Bad = parse(R"(
    #UF#
    inputs { opaque a; }
    cells { opaque y; }
    functions { opaque g(opaque, opaque); }
    always guarantee { [y <- g a]; }
  )");
  EXPECT_FALSE(Bad.ok());
}

TEST_F(ParserTest, BenchmarkHeaderStyleComment) {
  auto Spec = parse(R"(
    // #RA# annotation as in Fig. 5 of the paper:
    #RA#
    cells { real lfoFreq = 0; bool lfo; }
    always guarantee {
      G F [lfo <- True()];
    }
  )");
  ASSERT_TRUE(Spec.ok()) << Spec.error().str();
  EXPECT_EQ(Spec->Th, Theory::LRA);
}

} // namespace
