//===- tests/logic/SimplifyTest.cpp - Simplifier tests --------------------===//

#include "logic/Simplify.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class SimplifyTest : public ::testing::Test {
protected:
  const Formula *atom(const std::string &Name) {
    return FF.pred(TF.signal(Name, Sort::Bool));
  }

  TermFactory TF;
  FormulaFactory FF;
};

TEST_F(SimplifyTest, GloballyDistributesOverAnd) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *F = FF.globally(FF.andF(A, B));
  EXPECT_EQ(simplify(F, FF), FF.andF(FF.globally(A), FF.globally(B)));
}

TEST_F(SimplifyTest, FinallyDistributesOverOr) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *F = FF.finallyF(FF.orF(A, B));
  EXPECT_EQ(simplify(F, FF), FF.orF(FF.finallyF(A), FF.finallyF(B)));
}

TEST_F(SimplifyTest, NextDistributes) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(simplify(FF.next(FF.andF(A, B)), FF),
            FF.andF(FF.next(A), FF.next(B)));
  EXPECT_EQ(simplify(FF.next(FF.orF(A, B)), FF),
            FF.orF(FF.next(A), FF.next(B)));
}

TEST_F(SimplifyTest, NestedGloballyCollapses) {
  const Formula *A = atom("a");
  EXPECT_EQ(simplify(FF.globally(FF.globally(A)), FF), FF.globally(A));
  EXPECT_EQ(simplify(FF.finallyF(FF.finallyF(A)), FF), FF.finallyF(A));
}

TEST_F(SimplifyTest, UntilIdempotence) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *Inner = FF.until(A, B);
  EXPECT_EQ(simplify(FF.until(A, Inner), FF), Inner);
}

TEST_F(SimplifyTest, WeakUntilUnits) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(simplify(FF.weakUntil(FF.trueF(), B), FF), FF.trueF());
  EXPECT_EQ(simplify(FF.weakUntil(A, FF.trueF()), FF), FF.trueF());
  EXPECT_EQ(simplify(FF.weakUntil(FF.falseF(), B), FF), B);
  EXPECT_EQ(simplify(FF.weakUntil(A, FF.falseF()), FF), FF.globally(A));
}

TEST_F(SimplifyTest, ReleaseUnits) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  EXPECT_EQ(simplify(FF.release(FF.trueF(), B), FF), B);
  const Formula *Inner = FF.release(A, B);
  EXPECT_EQ(simplify(FF.release(A, Inner), FF), Inner);
}

TEST_F(SimplifyTest, RecursesThroughConnectives) {
  const Formula *A = atom("a");
  const Formula *B = atom("b");
  const Formula *F =
      FF.implies(FF.globally(FF.globally(A)), FF.notF(FF.finallyF(FF.finallyF(B))));
  const Formula *S = simplify(F, FF);
  EXPECT_EQ(S, FF.implies(FF.globally(A), FF.notF(FF.finallyF(B))));
}

TEST_F(SimplifyTest, AtomsUntouched) {
  const Formula *A = atom("a");
  EXPECT_EQ(simplify(A, FF), A);
  EXPECT_EQ(simplify(FF.trueF(), FF), FF.trueF());
  const Term *X = TF.signal("x", Sort::Int);
  const Formula *U = FF.update("x", X);
  EXPECT_EQ(simplify(U, FF), U);
}

} // namespace
