//===- tests/sygus/SygusSolverTest.cpp - SyGuS solver tests ---------------===//

#include "sygus/SygusSolver.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class SygusSolverTest : public ::testing::Test {
protected:
  const Term *X() { return Ctx.Terms.signal("x", Sort::Int); }
  const Term *num(int64_t N) { return Ctx.Terms.numeral(N); }
  const Term *cmp(const char *Op, const Term *A, const Term *B) {
    return Ctx.Terms.apply(Op, Sort::Bool, {A, B});
  }
  const Term *inc(const Term *T) {
    return Ctx.Terms.apply("+", Sort::Int, {T, num(1)});
  }
  const Term *dec(const Term *T) {
    return Ctx.Terms.apply("-", Sort::Int, {T, num(1)});
  }

  /// The introduction's counter query: cell x with updates x+1 and x-1.
  SygusQuery counterQuery() {
    SygusQuery Q;
    Q.Cells = {{"x", Sort::Int, {inc(X()), dec(X())}}};
    return Q;
  }

  Context Ctx;
};

TEST_F(SygusSolverTest, IntroExampleTwoIncrements) {
  // x = 0 must reach x = 2 in exactly two steps: [x<-x+1];[x<-x+1].
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(2)), true}};
  auto P = Solver.synthesizeSequential(Q, 2);
  ASSERT_TRUE(P.has_value());
  ASSERT_EQ(P->Steps.size(), 2u);
  EXPECT_EQ(P->Steps[0].at("x")->str(), "(x + 1)");
  EXPECT_EQ(P->Steps[1].at("x")->str(), "(x + 1)");
}

TEST_F(SygusSolverTest, ExampleFourTwoHeightTwoIdentity) {
  // Example 4.2: x = 0 -> X X (x = 0) with exactly two steps; the
  // first verifying candidate is (+1 then -1).
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(0)), true}};
  auto P = Solver.synthesizeSequential(Q, 2);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Steps[0].at("x")->str(), "(x + 1)");
  EXPECT_EQ(P->Steps[1].at("x")->str(), "(x - 1)");
}

TEST_F(SygusSolverTest, ExclusionForcesDifferentProgram) {
  // Example 4.6's refinement: exclude (+1,+1); with updates {+1, skip}
  // reaching x=2 from x=0 needs a different interleaving.
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {{"x", Sort::Int, {inc(X()), X()}}}; // x+1 or skip.
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(2)), true}};

  auto First = Solver.synthesizeSequential(Q, 3);
  ASSERT_TRUE(First.has_value());
  auto Second = Solver.synthesizeSequential(Q, 3, {*First});
  ASSERT_TRUE(Second.has_value());
  EXPECT_FALSE(*First == *Second);
  // Both must still verify.
  EXPECT_TRUE(Solver.verifySequential(Q, *First));
  EXPECT_TRUE(Solver.verifySequential(Q, *Second));
}

TEST_F(SygusSolverTest, UnsolvableObligationReturnsNothing) {
  // From x = 0, two increments can never give x = 5.
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(5)), true}};
  EXPECT_FALSE(Solver.synthesizeSequential(Q, 2).has_value());
}

TEST_F(SygusSolverTest, UpToSearchFindsShortest) {
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(3)), true}};
  auto P = Solver.synthesizeSequentialUpTo(Q);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Steps.size(), 3u);
}

TEST_F(SygusSolverTest, VerificationIsUniversal) {
  // Pre x > 0, post x > 1 after one +1 step: holds for ALL x > 0, so
  // verification must pass; post x > 5 must fail (x = 1 counterexample).
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp(">", X(), num(0)), true}};
  Q.Post = {{cmp(">", X(), num(1)), true}};
  SequentialProgram OneInc;
  OneInc.Steps = {{{"x", inc(X())}}};
  EXPECT_TRUE(Solver.verifySequential(Q, OneInc));
  Q.Post = {{cmp(">", X(), num(5)), true}};
  EXPECT_FALSE(Solver.verifySequential(Q, OneInc));
}

TEST_F(SygusSolverTest, MultiCellObligation) {
  // CFS-style: vr1 < vr2 must flip to vr2 <= vr1 by repeatedly adding
  // weight to vr1... in one step from equality-distance 1.
  const Term *V1 = Ctx.Terms.signal("vr1", Sort::Int);
  const Term *V2 = Ctx.Terms.signal("vr2", Sort::Int);
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {
      {"vr1", Sort::Int, {Ctx.Terms.apply("+", Sort::Int, {V1, num(1)}), V1}},
      {"vr2", Sort::Int, {Ctx.Terms.apply("+", Sort::Int, {V2, num(1)}), V2}},
  };
  Q.Pre = {{cmp("=", V1, V2), true}};
  Q.Post = {{cmp("<", V2, V1), true}};
  auto P = Solver.synthesizeSequential(Q, 1);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Steps[0].at("vr1")->str(), "(vr1 + 1)");
  EXPECT_EQ(P->Steps[0].at("vr2")->str(), "vr2");
}

TEST_F(SygusSolverTest, LoopSynthesisExampleFourFive) {
  // Example 4.5: from x < 0 reach x = 0; loop body [x <- x + 1].
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("<", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(0)), true}};
  auto L = Solver.synthesizeLoop(Q);
  ASSERT_TRUE(L.has_value());
  ASSERT_EQ(L->Body.size(), 1u);
  EXPECT_EQ(L->Body[0].at("x")->str(), "(x + 1)");
}

TEST_F(SygusSolverTest, LoopSynthesisDirectionMatters) {
  // From x > 0 reach x = 0: body must be the decrement.
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp(">", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(0)), true}};
  auto L = Solver.synthesizeLoop(Q);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Body[0].at("x")->str(), "(x - 1)");
}

TEST_F(SygusSolverTest, LoopExclusion) {
  // vruntime-style: from vr1 < vr2, make vr2 <= vr1 by bumping vr1.
  const Term *V1 = Ctx.Terms.signal("vr1", Sort::Int);
  const Term *V2 = Ctx.Terms.signal("vr2", Sort::Int);
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {
      {"vr1", Sort::Int, {Ctx.Terms.apply("+", Sort::Int, {V1, num(1)}), V1}},
      {"vr2", Sort::Int, {V2}},
  };
  Q.Pre = {{cmp("<", V1, V2), true}};
  Q.Post = {{cmp("<=", V2, V1), true}};
  auto L = Solver.synthesizeLoop(Q);
  ASSERT_TRUE(L.has_value());
  ASSERT_EQ(L->Body.size(), 1u);
  EXPECT_EQ(L->Body[0].at("vr1")->str(), "(vr1 + 1)");
  // Excluding it forces a syntactically different body (a longer one
  // that still makes progress, e.g. increment + stutter).
  auto Other = Solver.synthesizeLoop(Q, {*L});
  ASSERT_TRUE(Other.has_value());
  EXPECT_NE(Other->Body, L->Body);
  bool SomeStepIncrements = false;
  for (const StepChoice &Step : Other->Body)
    SomeStepIncrements |= Step.at("vr1")->str() == "(vr1 + 1)";
  EXPECT_TRUE(SomeStepIncrements);
}

TEST_F(SygusSolverTest, SamplePreModelsSatisfyPre) {
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("<", X(), num(0)), true}};
  auto Samples = Solver.samplePreModels(Q);
  ASSERT_FALSE(Samples.empty());
  Evaluator E;
  for (const Assignment &Sample : Samples) {
    auto V = E.evaluateBool(cmp("<", X(), num(0)), Sample);
    ASSERT_TRUE(V.has_value());
    EXPECT_TRUE(*V);
  }
}

TEST_F(SygusSolverTest, UninterpretedFunctionObligation) {
  // Example 4.3 (plain TSL = TSL-MT over UF): cell y with updates
  // {y, x}; obligation p(x) -> p(y') in one step. Only [y <- x] works.
  const Term *XSig = Ctx.Terms.signal("x", Sort::Opaque);
  const Term *YSig = Ctx.Terms.signal("y", Sort::Opaque);
  const Term *PX = Ctx.Terms.apply("p", Sort::Bool, {XSig});
  const Term *PY = Ctx.Terms.apply("p", Sort::Bool, {YSig});
  SygusSolver Solver(Ctx, Theory::UF);
  SygusQuery Q;
  Q.Cells = {{"y", Sort::Opaque, {YSig, XSig}}};
  Q.Pre = {{PX, true}};
  Q.Post = {{PY, true}};
  auto P = Solver.synthesizeSequential(Q, 1);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->Steps[0].at("y")->str(), "x");
}

TEST_F(SygusSolverTest, StatsAreReported) {
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(2)), true}};
  SygusStats Stats;
  auto P = Solver.synthesizeSequential(Q, 2, {}, &Stats);
  ASSERT_TRUE(P.has_value());
  EXPECT_GT(Stats.CandidatesTried, 0u);
}

TEST_F(SygusSolverTest, LoopRankingRejectsInputChasing) {
  // A loop whose post-condition depends on a free environment input is
  // invalid (the input can run away); the ranking check must reject it
  // even though fixed-input sampling would accept.
  const Term *Ball = Ctx.Terms.signal("ball", Sort::Int);
  const Term *Paddle = Ctx.Terms.signal("paddle", Sort::Int);
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {{"paddle", Sort::Int,
              {Ctx.Terms.apply("+", Sort::Int, {Paddle, num(1)})}}};
  Q.Pre = {{cmp("<", Paddle, Ball), true}};
  Q.Post = {{cmp("<", Paddle, Ball), false}}; // eventually !(paddle < ball)
  std::vector<StepChoice> Body = {
      {{"paddle", Ctx.Terms.apply("+", Sort::Int, {Paddle, num(1)})}}};
  EXPECT_FALSE(Solver.verifyLoopRanking(Q, Body));
  EXPECT_FALSE(Solver.synthesizeLoop(Q).has_value());
}

TEST_F(SygusSolverTest, LoopRankingAcceptsCellOnlyMilestone) {
  // Post over cells only: paddle >= 9 is reached by incrementing no
  // matter what the environment does (tier-1 global progress).
  const Term *Paddle = Ctx.Terms.signal("paddle", Sort::Int);
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {{"paddle", Sort::Int,
              {Ctx.Terms.apply("+", Sort::Int, {Paddle, num(1)}), Paddle}}};
  Q.Pre = {{cmp("<", Paddle, num(9)), true}};
  Q.Post = {{cmp(">=", Paddle, num(9)), true}};
  auto L = Solver.synthesizeLoop(Q);
  ASSERT_TRUE(L.has_value());
  EXPECT_EQ(L->Body[0].at("paddle")->str(), "(paddle + 1)");
}

TEST_F(SygusSolverTest, LoopRankingTierTwoEqualityTarget) {
  // Example 4.5 again, but checking the ranking path directly: the
  // equality target x = 0 needs the pre-invariant tier (x < 0 is
  // inductive until the post).
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q = counterQuery();
  Q.Pre = {{cmp("<", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(0)), true}};
  std::vector<StepChoice> IncBody = {{{"x", inc(X())}}};
  std::vector<StepChoice> DecBody = {{{"x", dec(X())}}};
  EXPECT_TRUE(Solver.verifyLoopRanking(Q, IncBody));
  EXPECT_FALSE(Solver.verifyLoopRanking(Q, DecBody));
}

TEST_F(SygusSolverTest, SequentialVerificationHavocsInputs) {
  // [x <- x + a] twice reaches x = 2a only if a is rigid; with a free
  // input a per step the chain is invalid and must be rejected.
  const Term *A = Ctx.Terms.signal("a", Sort::Int);
  const Term *PlusA = Ctx.Terms.apply("+", Sort::Int, {X(), A});
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {{"x", Sort::Int, {PlusA}}};
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(),
                 Ctx.Terms.apply("*", Sort::Int, {num(2), A})),
             true}};
  SequentialProgram Twice;
  Twice.Steps = {{{"x", PlusA}}, {{"x", PlusA}}};
  EXPECT_FALSE(Solver.verifySequential(Q, Twice));
}

TEST_F(SygusSolverTest, AmbientFactsEnableVerification) {
  // With the ambient fact a = 1 the same chain verifies against the
  // concrete target x = 2 (ambient facts hold at every step).
  const Term *A = Ctx.Terms.signal("a", Sort::Int);
  const Term *PlusA = Ctx.Terms.apply("+", Sort::Int, {X(), A});
  SygusSolver Solver(Ctx, Theory::LIA);
  SygusQuery Q;
  Q.Cells = {{"x", Sort::Int, {PlusA}}};
  Q.Pre = {{cmp("=", X(), num(0)), true}};
  Q.Post = {{cmp("=", X(), num(2)), true}};
  SequentialProgram Twice;
  Twice.Steps = {{{"x", PlusA}}, {{"x", PlusA}}};
  EXPECT_FALSE(Solver.verifySequential(Q, Twice));
  Q.Ambient = {{cmp("=", A, num(1)), true}};
  EXPECT_TRUE(Solver.verifySequential(Q, Twice));
}

} // namespace
