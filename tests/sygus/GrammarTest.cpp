//===- tests/sygus/GrammarTest.cpp - Grammar enumeration tests ------------===//

#include "sygus/Grammar.h"

#include "theory/Evaluator.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class GrammarTest : public ::testing::Test {
protected:
  /// The paper's Example 4.2 grammar: S ::= S + 1 | S - 1 | x.
  Grammar counterGrammar() {
    const Term *S = TF.signal(Grammar::placeholder(0), Sort::Int);
    NonTerminal NT;
    NT.Name = "S";
    NT.S = Sort::Int;
    NT.Productions = {
        {TF.apply("+", Sort::Int, {S, TF.numeral(1)})},
        {TF.apply("-", Sort::Int, {S, TF.numeral(1)})},
        {TF.signal("x", Sort::Int)},
    };
    Grammar G;
    G.NonTerminals.push_back(NT);
    return G;
  }

  TermFactory TF;
};

TEST_F(GrammarTest, EnumeratesTerminalsFirst) {
  Grammar G = counterGrammar();
  std::vector<std::string> Seen;
  EnumerationOptions Options;
  Options.MaxHeight = 2;
  enumerateGrammar(TF, G, Options, [&](const Term *T) {
    Seen.push_back(T->str());
    return false;
  });
  ASSERT_GE(Seen.size(), 3u);
  EXPECT_EQ(Seen[0], "x");
  EXPECT_EQ(Seen[1], "(x + 1)");
  EXPECT_EQ(Seen[2], "(x - 1)");
}

TEST_F(GrammarTest, CandidateCountsByHeight) {
  // Height h chains: 2^(h-1) candidates; total for MaxHeight=3 is
  // 1 + 2 + 4 = 7.
  Grammar G = counterGrammar();
  EnumerationOptions Options;
  Options.MaxHeight = 3;
  EnumerationStats Stats;
  enumerateGrammar(TF, G, Options, [](const Term *) { return false; },
                   &Stats);
  EXPECT_EQ(Stats.Generated, 7u);
}

TEST_F(GrammarTest, AcceptStopsEnumeration) {
  Grammar G = counterGrammar();
  EnumerationOptions Options;
  Options.MaxHeight = 5;
  size_t Count = 0;
  const Term *Found = enumerateGrammar(TF, G, Options, [&](const Term *T) {
    ++Count;
    return T->str() == "((x + 1) + 1)";
  });
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->str(), "((x + 1) + 1)");
  EXPECT_LE(Count, 7u);
}

TEST_F(GrammarTest, ObservationalEquivalencePrunes) {
  // On examples, (x+1)-1 is equivalent to x and gets pruned.
  Grammar G = counterGrammar();
  EnumerationOptions Options;
  Options.MaxHeight = 3;
  Options.Examples = {{{"x", Value::integer(0)}},
                      {{"x", Value::integer(5)}},
                      {{"x", Value::integer(-3)}}};
  EnumerationStats Stats;
  std::vector<std::string> Seen;
  enumerateGrammar(TF, G, Options, [&](const Term *T) {
    Seen.push_back(T->str());
    return false;
  }, &Stats);
  EXPECT_GT(Stats.Pruned, 0u);
  // x+1-1 and x-1+1 both pruned: of the 7 syntactic candidates only 5
  // distinct behaviours remain (x, x+1, x-1, x+2, x-2).
  EXPECT_EQ(Stats.Generated, 5u);
}

TEST_F(GrammarTest, CandidateLimit) {
  Grammar G = counterGrammar();
  EnumerationOptions Options;
  Options.MaxHeight = 10;
  Options.CandidateLimit = 4;
  EnumerationStats Stats;
  enumerateGrammar(TF, G, Options, [](const Term *) { return false; },
                   &Stats);
  EXPECT_EQ(Stats.Generated, 4u);
}

TEST_F(GrammarTest, ExampleFourTwoFindsHeightTwoSolution) {
  // Example 4.2: find f with f(0) = 0 of height exactly 2 (two steps).
  // Solutions: (x+1)-1 and (x-1)+1 -- the paper notes either is valid;
  // our bottom-up order (outermost production first) yields (x-1)+1.
  Grammar G = counterGrammar();
  EnumerationOptions Options;
  Options.MaxHeight = 3;
  Evaluator E;
  Assignment Zero = {{"x", Value::integer(0)}};
  const Term *Found = enumerateGrammar(TF, G, Options, [&](const Term *T) {
    // Exactly-height-2 chains have 2 operators; smaller terms evaluate
    // to x or x+-1 and fail f(0) = 0 unless they are literally "x",
    // which has the wrong height. Enforce height via node count.
    if (T->size() != 5) // (x op 1) op 1 has 5 nodes.
      return false;
    auto V = E.evaluate(T, Zero);
    return V && V->getNumber() == Rational(0);
  });
  ASSERT_NE(Found, nullptr);
  EXPECT_EQ(Found->str(), "((x - 1) + 1)");
}

} // namespace
