//===- tests/sygus/ProgramTest.cpp - Program composition tests ------------===//

#include "sygus/Program.h"

#include <gtest/gtest.h>

using namespace temos;

namespace {

class ProgramTest : public ::testing::Test {
protected:
  const Term *X() { return TF.signal("x", Sort::Int); }
  const Term *Y() { return TF.signal("y", Sort::Int); }
  const Term *inc(const Term *T) {
    return TF.apply("+", Sort::Int, {T, TF.numeral(1)});
  }

  TermFactory TF;
  Evaluator E;
};

TEST_F(ProgramTest, SymbolicSingleStep) {
  StepChoice Step = {{"x", inc(X())}};
  auto Final = composeSymbolic(TF, {"x"}, {Sort::Int}, {Step});
  EXPECT_EQ(Final.at("x")->str(), "(x + 1)");
}

TEST_F(ProgramTest, SymbolicChainedSteps) {
  StepChoice Step = {{"x", inc(X())}};
  auto Final = composeSymbolic(TF, {"x"}, {Sort::Int}, {Step, Step});
  EXPECT_EQ(Final.at("x")->str(), "((x + 1) + 1)");
}

TEST_F(ProgramTest, ParallelSwapSeesPreStepState) {
  // Simultaneous [x <- y], [y <- x] must swap, not alias.
  StepChoice Swap = {{"x", Y()}, {"y", X()}};
  auto Final = composeSymbolic(TF, {"x", "y"}, {Sort::Int, Sort::Int}, {Swap});
  EXPECT_EQ(Final.at("x")->str(), "y");
  EXPECT_EQ(Final.at("y")->str(), "x");

  // And twice restores the identity.
  auto Twice =
      composeSymbolic(TF, {"x", "y"}, {Sort::Int, Sort::Int}, {Swap, Swap});
  EXPECT_EQ(Twice.at("x")->str(), "x");
  EXPECT_EQ(Twice.at("y")->str(), "y");
}

TEST_F(ProgramTest, CellsNotInStepKeepValue) {
  StepChoice Step = {{"x", inc(X())}};
  auto Final =
      composeSymbolic(TF, {"x", "y"}, {Sort::Int, Sort::Int}, {Step});
  EXPECT_EQ(Final.at("y")->str(), "y");
}

TEST_F(ProgramTest, ConcreteExecution) {
  Assignment State = {{"x", Value::integer(0)}};
  StepChoice Step = {{"x", inc(X())}};
  ASSERT_TRUE(applyStepConcrete(E, State, Step));
  ASSERT_TRUE(applyStepConcrete(E, State, Step));
  EXPECT_EQ(State.at("x").getNumber(), Rational(2));
}

TEST_F(ProgramTest, ConcreteSwap) {
  Assignment State = {{"x", Value::integer(1)}, {"y", Value::integer(2)}};
  StepChoice Swap = {{"x", Y()}, {"y", X()}};
  ASSERT_TRUE(applyStepConcrete(E, State, Swap));
  EXPECT_EQ(State.at("x").getNumber(), Rational(2));
  EXPECT_EQ(State.at("y").getNumber(), Rational(1));
}

TEST_F(ProgramTest, ConcreteFailureOnMissingSignal) {
  Assignment State = {{"x", Value::integer(0)}};
  StepChoice Step = {{"x", Y()}}; // y unassigned.
  EXPECT_FALSE(applyStepConcrete(E, State, Step));
}

TEST_F(ProgramTest, ProgramStr) {
  SequentialProgram P;
  P.Steps = {{{"x", inc(X())}}, {{"x", inc(X())}}};
  EXPECT_EQ(P.str(), "{[x <- (x + 1)]}; {[x <- (x + 1)]}");
  LoopProgram L{{{{"x", inc(X())}}}};
  EXPECT_EQ(L.str(), "while (!post) {[x <- (x + 1)]}");
}

TEST_F(ProgramTest, SymbolicMatchesConcrete) {
  // Property check on a fixed seed set: composing symbolically and then
  // evaluating equals executing concretely.
  StepChoice S1 = {{"x", inc(X())}, {"y", X()}};
  StepChoice S2 = {{"x", TF.apply("+", Sort::Int, {X(), Y()})}};
  std::vector<StepChoice> Steps = {S1, S2, S1};
  auto Final = composeSymbolic(TF, {"x", "y"}, {Sort::Int, Sort::Int}, Steps);

  for (int64_t XV = -3; XV <= 3; ++XV) {
    for (int64_t YV = -2; YV <= 2; ++YV) {
      Assignment Init = {{"x", Value::integer(XV)}, {"y", Value::integer(YV)}};
      Assignment State = Init;
      for (const StepChoice &Step : Steps)
        ASSERT_TRUE(applyStepConcrete(E, State, Step));
      for (const char *Cell : {"x", "y"}) {
        auto Symbolic = E.evaluate(Final.at(Cell), Init);
        ASSERT_TRUE(Symbolic.has_value());
        EXPECT_EQ(*Symbolic, State.at(Cell))
            << "cell " << Cell << " x=" << XV << " y=" << YV;
      }
    }
  }
}

} // namespace
