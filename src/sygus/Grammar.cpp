//===- sygus/Grammar.cpp - Context-free term grammars ----------------------===//

#include "sygus/Grammar.h"

#include "theory/Evaluator.h"

#include <map>
#include <set>

using namespace temos;

namespace {

/// Replaces placeholder signals in \p Template with derived terms.
const Term *instantiate(TermFactory &TF, const Term *Template,
                        const std::vector<const Term *> &NonTerminalTerms) {
  std::unordered_map<std::string, const Term *> Map;
  for (size_t I = 0; I < NonTerminalTerms.size(); ++I)
    if (NonTerminalTerms[I])
      Map[Grammar::placeholder(I)] = NonTerminalTerms[I];
  return TF.substituteAll(Template, Map);
}

/// Which nonterminals a template references.
void placeholdersUsed(const Term *Template, size_t Count,
                      std::vector<bool> &Used) {
  if (Template->isSignal()) {
    for (size_t I = 0; I < Count; ++I)
      if (Template->name() == Grammar::placeholder(I))
        Used[I] = true;
    return;
  }
  for (const Term *Arg : Template->args())
    placeholdersUsed(Arg, Count, Used);
}

/// Observational signature of a candidate on the example set.
std::string signature(const Term *T, const std::vector<Assignment> &Examples) {
  Evaluator E;
  std::string Sig;
  for (const Assignment &Env : Examples) {
    auto V = E.evaluate(T, Env);
    Sig += V ? V->str() : "?";
    Sig += '|';
  }
  return Sig;
}

} // namespace

const Term *
temos::enumerateGrammar(TermFactory &TF, const Grammar &G,
                        const EnumerationOptions &Options,
                        const std::function<bool(const Term *)> &Yield,
                        EnumerationStats *Stats) {
  const size_t N = G.NonTerminals.size();
  assert(N > 0 && "grammar without nonterminals");

  // ByHeight[h][nt] = terms of exactly height h derivable from nt. Height
  // here counts production applications.
  std::vector<std::vector<std::vector<const Term *>>> ByHeight;
  // Observational-equivalence signatures for the start nonterminal.
  std::set<std::string> SeenSignatures;
  size_t Produced = 0;

  for (unsigned Height = 1; Height <= Options.MaxHeight; ++Height) {
    ByHeight.push_back(std::vector<std::vector<const Term *>>(N));
    auto &Current = ByHeight.back();

    for (size_t NT = 0; NT < N; ++NT) {
      for (const Production &P : G.NonTerminals[NT].Productions) {
        std::vector<bool> Used(N, false);
        placeholdersUsed(P.Template, N, Used);

        bool AnyPlaceholder = false;
        for (bool U : Used)
          AnyPlaceholder |= U;

        if (!AnyPlaceholder) {
          // Terminal production: height 1 only.
          if (Height == 1)
            Current[NT].push_back(P.Template);
          continue;
        }
        if (Height == 1)
          continue;

        // For exact height H, at least one child must have height H-1
        // and the rest may have any height < H. We only support
        // templates using a single distinct nonterminal occurrence here
        // (the shapes the pipeline emits: chains); general multi-child
        // products would need a height-combination sweep.
        size_t Child = 0;
        size_t UsedCount = 0;
        for (size_t I = 0; I < N; ++I)
          if (Used[I]) {
            Child = I;
            ++UsedCount;
          }
        assert(UsedCount == 1 && "multi-nonterminal templates unsupported");

        for (const Term *Sub : ByHeight[Height - 2][Child]) {
          std::vector<const Term *> Children(N, nullptr);
          Children[Child] = Sub;
          Current[NT].push_back(instantiate(TF, P.Template, Children));
        }
      }
    }

    // Yield candidates of this height from the start nonterminal.
    for (const Term *Candidate : Current[0]) {
      if (!Options.Examples.empty()) {
        std::string Sig = signature(Candidate, Options.Examples);
        if (!SeenSignatures.insert(Sig).second) {
          if (Stats)
            ++Stats->Pruned;
          continue;
        }
      }
      if (Stats)
        ++Stats->Generated;
      ++Produced;
      if (Yield(Candidate))
        return Candidate;
      if (Options.CandidateLimit && Produced >= Options.CandidateLimit)
        return nullptr;
    }
  }
  return nullptr;
}
