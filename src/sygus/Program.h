//===- sygus/Program.h - Data transformation programs ----------*- C++ -*-===//
///
/// \file
/// Representations of the programs SyGuS produces for data
/// transformation obligations (Sec. 4.3 of the paper):
///
///  * SequentialProgram -- a fixed-length chain of parallel update
///    choices, one per time step (Sec. 4.3.1). Each step picks, for every
///    cell, one of the update terms available in the specification; cells
///    not mentioned keep their value ([c <- c], TSL self-update).
///  * LoopProgram -- a loop body iterated until the post-condition holds
///    (Sec. 4.3.2), i.e. the recursive function
///    f(s) = IF post THEN s ELSE f(body(s)).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SYGUS_PROGRAM_H
#define TEMOS_SYGUS_PROGRAM_H

#include "logic/Term.h"
#include "theory/Evaluator.h"
#include "theory/Value.h"

#include <map>
#include <string>
#include <vector>

namespace temos {

/// One synthesis step: for each cell, the chosen update right-hand side.
/// Cells without an entry implicitly self-update.
using StepChoice = std::map<std::string, const Term *>;

/// A fixed-length sequential data transformation program.
struct SequentialProgram {
  std::vector<StepChoice> Steps;

  size_t length() const { return Steps.size(); }
  bool operator==(const SequentialProgram &RHS) const {
    return Steps == RHS.Steps;
  }

  std::string str() const;
};

/// A looping data transformation program: iterate Body until the
/// obligation's post-condition holds.
struct LoopProgram {
  std::vector<StepChoice> Body;

  std::string str() const;
};

/// Applies one parallel update step symbolically: every cell's current
/// symbolic value is rewritten through its chosen update term.
/// \p State maps cell names to their current symbolic values (terms over
/// the initial-state signals); entries missing from \p Step are kept.
std::map<std::string, const Term *>
applyStepSymbolic(TermFactory &TF, const std::map<std::string, const Term *> &State,
                  const StepChoice &Step);

/// Composes a whole program symbolically from the identity state over
/// the given cell names. The result maps each cell to a term over the
/// initial-state signals describing its final value.
std::map<std::string, const Term *>
composeSymbolic(TermFactory &TF, const std::vector<std::string> &CellNames,
                const std::vector<Sort> &CellSorts,
                const std::vector<StepChoice> &Steps);

/// Applies one parallel update step concretely. Returns false if some
/// right-hand side fails to evaluate.
bool applyStepConcrete(const Evaluator &E, Assignment &State,
                       const StepChoice &Step);

} // namespace temos

#endif // TEMOS_SYGUS_PROGRAM_H
