//===- sygus/SygusSolver.h - Enumerative SyGuS engine ----------*- C++ -*-===//
///
/// \file
/// The SyGuS half of the temos pipeline (Sec. 4.3). Given a data
/// transformation obligation -- pre-condition literals, post-condition
/// literals, and the update terms available per cell -- the solver
/// searches for:
///
///  * a SequentialProgram of an exact number of steps whose final state
///    provably satisfies the post-condition whenever the initial state
///    satisfies the pre-condition (Sec. 4.3.1) -- candidates are
///    enumerated by the paper's chain grammar and verified with the SMT
///    layer (validity of pre -> post[final]), or
///  * a LoopProgram (Sec. 4.3.2) via the paper's recursion wrapper
///    (Sec. 5.1): instantiate models of the pre-condition, synthesize
///    straight-line witnesses per model, and extract the repeated
///    fragment as the loop body, validated by bounded iteration on every
///    sample.
///
/// The refinement loop (Sec. 4.4 / Alg. 4) re-invokes the solver with an
/// exclusion list to obtain a *different* program for the same
/// obligation.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SYGUS_SYGUSSOLVER_H
#define TEMOS_SYGUS_SYGUSSOLVER_H

#include "logic/Specification.h"
#include "sygus/Program.h"
#include "theory/SmtSolver.h"

#include <optional>

namespace temos {

/// A cell that data transformation programs may write, with the update
/// right-hand sides the specification makes available for it.
struct CellSpec {
  std::string Name;
  Sort S = Sort::Int;
  std::vector<const Term *> Updates;
};

/// A SyGuS query extracted from a data transformation obligation.
struct SygusQuery {
  std::vector<TheoryLiteral> Pre;
  std::vector<TheoryLiteral> Post;
  /// Ambient facts that hold at EVERY time step (non-temporal literals
  /// from the spec's 'always assume' block, e.g. weight > 0 or input
  /// bounds). Unlike Pre, these are re-instantiated for the fresh input
  /// copies of later steps during verification.
  std::vector<TheoryLiteral> Ambient;
  std::vector<CellSpec> Cells;
};

/// Statistics of one synthesis call.
struct SygusStats {
  size_t CandidatesTried = 0;
  size_t VerifierCalls = 0;
};

class SolverService;

/// Enumerative SyGuS solver with SMT-backed verification.
class SygusSolver {
public:
  SygusSolver(Context &Ctx, Theory Th) : Ctx(Ctx), Th(Th), Solver(Th) {}

  /// Routes verdict-only SMT checks through \p Service so repeated
  /// verification conditions hit its query cache (shared across
  /// workers and across pipeline runs). Model-producing queries keep
  /// using the private solver. Null restores the direct path.
  void setService(SolverService *S) { Service = S; }

  /// Tunables.
  struct Options {
    /// Maximum sequential chain length when the obligation does not fix
    /// one.
    unsigned MaxSteps = 4;
    /// Samples of the pre-condition used for screening and the loop
    /// wrapper.
    unsigned SampleCount = 4;
    /// Iteration budget when validating loop bodies on samples.
    unsigned MaxLoopIterations = 64;
    /// Maximum loop body length (in steps).
    unsigned MaxBodySteps = 2;
    /// Fault injection (temos --inject-fault=spin-hang): the sequential
    /// enumeration never terminates -- verified candidates are withheld
    /// and the odometer wraps around forever -- so only a cooperative
    /// deadline can stop it. Exists to prove the deadline machinery
    /// trips; never set in production.
    bool SpinHangForTesting = false;
  };
  Options Opts;

  /// Attaches a cooperative deadline, shared with the private SMT
  /// solver: enumeration rounds poll it and throw DeadlineExpired when
  /// the budget is gone. Default Deadline detaches.
  void setDeadline(const Deadline &D) {
    Dl = D;
    Solver.setDeadline(D);
  }

  /// Synthesizes a sequential program of exactly \p Steps steps (the
  /// temporal constraint of Sec. 4.3.1). Programs in \p Excluded are
  /// skipped (refinement). Returns nullopt if no candidate verifies.
  std::optional<SequentialProgram>
  synthesizeSequential(const SygusQuery &Query, unsigned Steps,
                       const std::vector<SequentialProgram> &Excluded = {},
                       SygusStats *Stats = nullptr);

  /// Synthesizes a sequential program of any length 1..MaxSteps
  /// (shortest first), for F-obligations solvable without loops.
  std::optional<SequentialProgram>
  synthesizeSequentialUpTo(const SygusQuery &Query,
                           const std::vector<SequentialProgram> &Excluded = {},
                           SygusStats *Stats = nullptr);

  /// Synthesizes a loop program for a reachability (F) obligation via
  /// the recursion wrapper.
  std::optional<LoopProgram>
  synthesizeLoop(const SygusQuery &Query,
                 const std::vector<LoopProgram> &Excluded = {},
                 SygusStats *Stats = nullptr);

  /// Verifies a sequential candidate: validity of pre -> post[final].
  /// Environment inputs (signals that are not cells) are havocked per
  /// step: step j reads fresh input copies, so the program must work for
  /// every input evolution, not just a rigid one. Exposed for tests and
  /// the assumption generator.
  bool verifySequential(const SygusQuery &Query,
                        const SequentialProgram &Program);

  /// Soundness check for loop bodies (makes Theorem 4.4's premise
  /// real): accepts the body only if a linear ranking argument proves
  /// that iterating it reaches the post-condition from every
  /// pre-condition state, for every input evolution. Two tiers:
  /// (1) global progress -- from any !post state the post-gap shrinks
  /// by >= 1; (2) pre-invariant progress -- pre is inductive (modulo
  /// reaching post) and the gap shrinks under it. Exposed for tests.
  bool verifyLoopRanking(const SygusQuery &Query,
                         const std::vector<StepChoice> &Body);

  /// Sample assignments satisfying the pre-condition (SMT model plus
  /// perturbations). Exposed for the loop wrapper and tests.
  std::vector<Assignment> samplePreModels(const SygusQuery &Query);

private:
  /// All per-step choices: the cartesian product of cell update options.
  std::vector<StepChoice> stepChoices(const SygusQuery &Query) const;
  /// Three-valued concrete post-condition check: nullopt when some
  /// literal cannot be evaluated concretely (e.g. uninterpreted
  /// predicates) -- such samples neither screen nor accept.
  std::optional<bool> postHoldsConcrete(const SygusQuery &Query,
                                        const Assignment &State) const;
  /// Verdict-only satisfiability, via the service's cache when one is
  /// attached.
  SatResult checkSat(const Formula *F);

  Context &Ctx;
  Theory Th;
  SmtSolver Solver;
  SolverService *Service = nullptr;
  Evaluator Eval;
  Deadline Dl;
};

} // namespace temos

#endif // TEMOS_SYGUS_SYGUSSOLVER_H
