//===- sygus/Program.cpp - Data transformation programs --------------------===//

#include "sygus/Program.h"

#include <unordered_map>

using namespace temos;

namespace {

std::string stepStr(const StepChoice &Step) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[Cell, Rhs] : Step) {
    if (!First)
      Out += ", ";
    First = false;
    Out += "[" + Cell + " <- " + Rhs->str() + "]";
  }
  return Out + "}";
}

} // namespace

std::string SequentialProgram::str() const {
  std::string Out;
  for (size_t I = 0; I < Steps.size(); ++I) {
    if (I != 0)
      Out += "; ";
    Out += stepStr(Steps[I]);
  }
  return Out;
}

std::string LoopProgram::str() const {
  std::string Out = "while (!post) ";
  for (size_t I = 0; I < Body.size(); ++I) {
    if (I != 0)
      Out += "; ";
    Out += stepStr(Body[I]);
  }
  return Out;
}

std::map<std::string, const Term *>
temos::applyStepSymbolic(TermFactory &TF,
                         const std::map<std::string, const Term *> &State,
                         const StepChoice &Step) {
  // Substitution maps every cell name to its *current* symbolic value,
  // applied simultaneously so parallel updates see the pre-step state.
  std::unordered_map<std::string, const Term *> Subst(State.begin(),
                                                      State.end());
  std::map<std::string, const Term *> Next = State;
  for (const auto &[Cell, Rhs] : Step) {
    assert(State.count(Cell) && "update of unknown cell");
    Next[Cell] = TF.substituteAll(Rhs, Subst);
  }
  return Next;
}

std::map<std::string, const Term *>
temos::composeSymbolic(TermFactory &TF,
                       const std::vector<std::string> &CellNames,
                       const std::vector<Sort> &CellSorts,
                       const std::vector<StepChoice> &Steps) {
  assert(CellNames.size() == CellSorts.size() && "cell name/sort mismatch");
  std::map<std::string, const Term *> State;
  for (size_t I = 0; I < CellNames.size(); ++I)
    State[CellNames[I]] = TF.signal(CellNames[I], CellSorts[I]);
  for (const StepChoice &Step : Steps)
    State = applyStepSymbolic(TF, State, Step);
  return State;
}

bool temos::applyStepConcrete(const Evaluator &E, Assignment &State,
                              const StepChoice &Step) {
  Assignment Next = State;
  for (const auto &[Cell, Rhs] : Step) {
    auto V = E.evaluate(Rhs, State);
    if (!V)
      return false;
    Next[Cell] = *V;
  }
  State = std::move(Next);
  return true;
}
