//===- sygus/SygusSolver.cpp - Enumerative SyGuS engine --------------------===//

#include "sygus/SygusSolver.h"

#include "theory/SolverService.h"

#include <algorithm>
#include <set>

using namespace temos;

namespace {

/// Collects every signal mentioned by the query (pre, post, updates).
void collectQuerySignals(const SygusQuery &Query,
                         std::map<std::string, Sort> &Out) {
  auto FromTerm = [&](const Term *T) {
    std::function<void(const Term *)> Walk = [&](const Term *Node) {
      if (Node->isSignal())
        Out.emplace(Node->name(), Node->sort());
      for (const Term *Arg : Node->args())
        Walk(Arg);
    };
    Walk(T);
  };
  for (const TheoryLiteral &L : Query.Pre)
    FromTerm(L.Atom);
  for (const TheoryLiteral &L : Query.Post)
    FromTerm(L.Atom);
  for (const CellSpec &Cell : Query.Cells)
    for (const Term *U : Cell.Updates)
      FromTerm(U);
}

Value defaultValue(Sort S) {
  switch (S) {
  case Sort::Bool:
    return Value::boolean(false);
  case Sort::Int:
  case Sort::Real:
    return Value::integer(0);
  case Sort::Opaque:
    return Value::symbol("@default");
  }
  return Value::integer(0);
}

} // namespace

std::vector<StepChoice> SygusSolver::stepChoices(const SygusQuery &Query) const {
  // Cartesian product of per-cell update options. Cells with no declared
  // updates implicitly self-update (TSL semantics).
  std::vector<StepChoice> Choices;
  Choices.push_back({});
  for (const CellSpec &Cell : Query.Cells) {
    std::vector<const Term *> Options = Cell.Updates;
    if (Options.empty())
      Options.push_back(Ctx.Terms.signal(Cell.Name, Cell.S));
    std::vector<StepChoice> Expanded;
    Expanded.reserve(Choices.size() * Options.size());
    for (const StepChoice &Partial : Choices)
      for (const Term *Option : Options) {
        StepChoice Next = Partial;
        Next[Cell.Name] = Option;
        Expanded.push_back(std::move(Next));
      }
    Choices = std::move(Expanded);
  }
  return Choices;
}

std::optional<bool>
SygusSolver::postHoldsConcrete(const SygusQuery &Query,
                               const Assignment &State) const {
  bool SawUnknown = false;
  for (const TheoryLiteral &L : Query.Post) {
    auto V = Eval.evaluateBool(L.Atom, State);
    if (!V) {
      SawUnknown = true;
      continue;
    }
    if (*V != L.Positive)
      return false;
  }
  if (SawUnknown)
    return std::nullopt;
  return true;
}

std::vector<Assignment> SygusSolver::samplePreModels(const SygusQuery &Query) {
  std::map<std::string, Sort> Signals;
  collectQuerySignals(Query, Signals);

  std::vector<Assignment> Samples;
  Assignment Base;
  std::vector<TheoryLiteral> Constraints = Query.Pre;
  Constraints.insert(Constraints.end(), Query.Ambient.begin(),
                     Query.Ambient.end());
  SatResult R = Solver.checkLiterals(Constraints, &Base);
  if (R != SatResult::Sat)
    return Samples;

  // Fill in signals the model omitted.
  for (const auto &[Name, S] : Signals)
    if (!Base.count(Name))
      Base[Name] = defaultValue(S);
  Samples.push_back(Base);

  // Perturb numeric signals and keep variants that still satisfy the
  // pre-condition (cheap model diversity without extra solver calls).
  static const int64_t Offsets[] = {1, -1, 3, 7, -5};
  for (int64_t Offset : Offsets) {
    if (Samples.size() >= Opts.SampleCount)
      break;
    Assignment Variant = Base;
    for (auto &[Name, V] : Variant)
      if (V.isNumber())
        V = Value::number(V.getNumber() + Rational(Offset));
    bool SatisfiesPre = true;
    for (const TheoryLiteral &L : Constraints) {
      auto B = Eval.evaluateBool(L.Atom, Variant);
      if (!B || *B != L.Positive) {
        SatisfiesPre = false;
        break;
      }
    }
    if (SatisfiesPre && std::find(Samples.begin(), Samples.end(), Variant) ==
                            Samples.end())
      Samples.push_back(Variant);
  }
  return Samples;
}

namespace {

/// Fresh-copy name of input signal \p Name at step \p J (step 0 keeps
/// the original name: pre and step-0 updates read the same instant).
std::string freshInputName(const std::string &Name, size_t J) {
  return J == 0 ? Name : Name + "#" + std::to_string(J);
}

} // namespace

bool SygusSolver::verifySequential(const SygusQuery &Query,
                                   const SequentialProgram &Program) {
  // Cells evolve symbolically; every other signal is an environment
  // input that gets a fresh copy per step (the environment may change
  // it arbitrarily between steps).
  std::set<std::string> CellNames;
  std::map<std::string, const Term *> State;
  for (const CellSpec &Cell : Query.Cells) {
    CellNames.insert(Cell.Name);
    State[Cell.Name] = Ctx.Terms.signal(Cell.Name, Cell.S);
  }

  // Renames input signals in \p T to their step-J copies.
  auto HavocInputs = [&](const Term *T, size_t J) {
    if (J == 0)
      return T;
    std::unordered_map<std::string, const Term *> Map;
    std::vector<std::string> Names;
    collectSignals(T, Names);
    for (const std::string &Name : Names)
      if (!CellNames.count(Name)) {
        // Sort: look the signal up in the term itself.
        std::function<const Term *(const Term *)> Find =
            [&](const Term *Node) -> const Term * {
          if (Node->isSignal() && Node->name() == Name)
            return Node;
          for (const Term *Arg : Node->args())
            if (const Term *Found = Find(Arg))
              return Found;
          return nullptr;
        };
        const Term *Original = Find(T);
        Map[Name] =
            Ctx.Terms.signal(freshInputName(Name, J), Original->sort());
      }
    return Ctx.Terms.substituteAll(T, Map);
  };

  std::vector<const Formula *> Parts;
  auto AddLiteral = [&](const TheoryLiteral &L, const Term *Atom) {
    const Formula *F = Ctx.Formulas.pred(Atom);
    Parts.push_back(L.Positive ? F : Ctx.Formulas.notF(F));
  };

  // Pre-condition at step 0.
  for (const TheoryLiteral &L : Query.Pre)
    AddLiteral(L, L.Atom);

  // Ambient facts at every step: instantiated on the step's input
  // copies and the step's symbolic cell state.
  auto AddAmbient = [&](size_t J,
                        const std::map<std::string, const Term *> &CellState) {
    for (const TheoryLiteral &L : Query.Ambient) {
      const Term *Atom = HavocInputs(L.Atom, J);
      std::unordered_map<std::string, const Term *> CellMap(CellState.begin(),
                                                            CellState.end());
      AddLiteral(L, Ctx.Terms.substituteAll(Atom, CellMap));
    }
  };
  AddAmbient(0, State);

  // Apply the steps.
  for (size_t J = 0; J < Program.Steps.size(); ++J) {
    StepChoice Havocked;
    for (const auto &[Cell, Rhs] : Program.Steps[J])
      Havocked[Cell] = HavocInputs(Rhs, J);
    State = applyStepSymbolic(Ctx.Terms, State, Havocked);
    AddAmbient(J + 1, State);
  }

  // Negated post-condition at step n on the final state and input copy.
  std::unordered_map<std::string, const Term *> FinalMap(State.begin(),
                                                         State.end());
  std::vector<const Formula *> NegPost;
  for (const TheoryLiteral &L : Query.Post) {
    const Term *Atom = HavocInputs(L.Atom, Program.Steps.size());
    Atom = Ctx.Terms.substituteAll(Atom, FinalMap);
    const Formula *F = Ctx.Formulas.pred(Atom);
    NegPost.push_back(L.Positive ? Ctx.Formulas.notF(F) : F);
  }
  Parts.push_back(Ctx.Formulas.orF(std::move(NegPost)));
  const Formula *Vc = Ctx.Formulas.andF(std::move(Parts));
  return checkSat(Vc) == SatResult::Unsat;
}

SatResult SygusSolver::checkSat(const Formula *F) {
  return Service ? Service->checkFormula(F) : Solver.checkFormula(F);
}

std::optional<SequentialProgram> SygusSolver::synthesizeSequential(
    const SygusQuery &Query, unsigned Steps,
    const std::vector<SequentialProgram> &Excluded, SygusStats *Stats) {
  std::vector<StepChoice> Choices = stepChoices(Query);
  if (Choices.empty())
    return std::nullopt;

  std::vector<Assignment> Samples = samplePreModels(Query);

  // Enumerate all length-`Steps` sequences over the per-step choices in
  // lexicographic order (the paper bounds the search by AST height; the
  // chain grammar makes that the sequence length).
  std::vector<size_t> Indices(Steps, 0);
  for (;;) {
    // One enumeration round per candidate: the poll that makes the
    // search cooperatively cancellable (and the only exit under the
    // spin-hang fault).
    Dl.check();

    SequentialProgram Candidate;
    Candidate.Steps.reserve(Steps);
    for (size_t I : Indices)
      Candidate.Steps.push_back(Choices[I]);

    bool IsExcluded =
        std::find(Excluded.begin(), Excluded.end(), Candidate) !=
        Excluded.end();
    if (!IsExcluded) {
      if (Stats)
        ++Stats->CandidatesTried;

      // Concrete screening on sampled models before the SMT query.
      bool Screened = false;
      for (const Assignment &Sample : Samples) {
        Assignment State = Sample;
        bool Ok = true;
        for (const StepChoice &Step : Candidate.Steps)
          if (!applyStepConcrete(Eval, State, Step)) {
            Ok = false;
            break;
          }
        if (Ok && postHoldsConcrete(Query, State) ==
                      std::optional<bool>(false)) {
          Screened = true;
          break;
        }
      }
      if (!Screened) {
        if (Stats)
          ++Stats->VerifierCalls;
        if (verifySequential(Query, Candidate) && !Opts.SpinHangForTesting)
          return Candidate;
      }
    }

    // Advance the odometer.
    bool Wrapped = Steps == 0;
    size_t Position = Steps;
    while (Position > 0) {
      --Position;
      if (++Indices[Position] < Choices.size())
        break;
      Indices[Position] = 0;
      if (Position == 0)
        Wrapped = true;
    }
    if (Wrapped) {
      // The injected spin-hang fault restarts the sweep instead of
      // reporting exhaustion: a deliberately non-terminating
      // enumeration only the deadline poll above can stop.
      if (!Opts.SpinHangForTesting)
        return std::nullopt;
    }
  }
}

std::optional<SequentialProgram> SygusSolver::synthesizeSequentialUpTo(
    const SygusQuery &Query, const std::vector<SequentialProgram> &Excluded,
    SygusStats *Stats) {
  for (unsigned Steps = 1; Steps <= Opts.MaxSteps; ++Steps)
    if (auto Program = synthesizeSequential(Query, Steps, Excluded, Stats))
      return Program;
  return std::nullopt;
}

std::optional<LoopProgram>
SygusSolver::synthesizeLoop(const SygusQuery &Query,
                            const std::vector<LoopProgram> &Excluded,
                            SygusStats *Stats) {
  // The recursion wrapper (Sec. 5.1): validate candidate loop bodies by
  // iterating them from sampled pre-condition models until the
  // post-condition holds.
  std::vector<Assignment> Samples = samplePreModels(Query);
  if (Samples.empty())
    return std::nullopt;

  std::vector<StepChoice> Choices = stepChoices(Query);

  // Candidate bodies: all step sequences of length 1..MaxBodySteps.
  std::vector<std::vector<StepChoice>> Bodies;
  std::function<void(std::vector<StepChoice> &)> Extend =
      [&](std::vector<StepChoice> &Prefix) {
        if (!Prefix.empty())
          Bodies.push_back(Prefix);
        if (Prefix.size() >= Opts.MaxBodySteps)
          return;
        for (const StepChoice &Choice : Choices) {
          Prefix.push_back(Choice);
          Extend(Prefix);
          Prefix.pop_back();
        }
      };
  std::vector<StepChoice> Empty;
  Extend(Empty);
  // Shortest bodies first.
  std::stable_sort(Bodies.begin(), Bodies.end(),
                   [](const auto &A, const auto &B) {
                     return A.size() < B.size();
                   });

  for (const std::vector<StepChoice> &Body : Bodies) {
    Dl.check(); // One poll per candidate body.
    LoopProgram Candidate{Body};
    bool IsExcluded = false;
    for (const LoopProgram &Ex : Excluded)
      if (Ex.Body == Body) {
        IsExcluded = true;
        break;
      }
    if (IsExcluded)
      continue;
    if (Stats)
      ++Stats->CandidatesTried;

    bool AllSamplesReach = true;
    for (const Assignment &Sample : Samples) {
      Assignment State = Sample;
      bool Reached = postHoldsConcrete(Query, State) ==
                     std::optional<bool>(true);
      for (unsigned Iter = 0;
           !Reached && Iter < Opts.MaxLoopIterations; ++Iter) {
        bool Ok = true;
        for (const StepChoice &Step : Body)
          if (!applyStepConcrete(Eval, State, Step)) {
            Ok = false;
            break;
          }
        if (!Ok)
          break;
        Reached = postHoldsConcrete(Query, State) ==
                  std::optional<bool>(true);
      }
      if (!Reached) {
        AllSamplesReach = false;
        break;
      }
    }
    if (AllSamplesReach && verifyLoopRanking(Query, Body))
      return Candidate;
  }
  return std::nullopt;
}

bool SygusSolver::verifyLoopRanking(const SygusQuery &Query,
                                    const std::vector<StepChoice> &Body) {
  // Single-literal posts only (what the pipeline emits for loops).
  if (Query.Post.size() != 1)
    return false;
  const TheoryLiteral &Post = Query.Post[0];
  const Term *Atom = Post.Atom;
  if (!Atom->isApply() || Atom->arity() != 2)
    return false;

  // Normalize the post into (A REL B) with REL in {<, <=, =}, where the
  // goal is A < B, A <= B, or A = B respectively.
  const Term *A = Atom->args()[0];
  const Term *B = Atom->args()[1];
  bool Numeric = (A->sort() == Sort::Int || A->sort() == Sort::Real) &&
                 (B->sort() == Sort::Int || B->sort() == Sort::Real);
  if (!Numeric)
    return false;
  enum class Rel { LT, LE, EQ } Goal;
  const std::string &Op = Atom->name();
  bool Pos = Post.Positive;
  if ((Op == "<" && Pos) || (Op == ">=" && !Pos))
    Goal = Rel::LT;
  else if ((Op == "<=" && Pos) || (Op == ">" && !Pos))
    Goal = Rel::LE;
  else if ((Op == ">" && Pos) || (Op == "<=" && !Pos)) {
    Goal = Rel::LT;
    std::swap(A, B);
  } else if ((Op == ">=" && Pos) || (Op == "<" && !Pos)) {
    Goal = Rel::LE;
    std::swap(A, B);
  } else if ((Op == "=" && Pos) || (Op == "!=" && !Pos)) {
    Goal = Rel::EQ;
  } else {
    return false; // Disequality targets have no single ranking.
  }

  std::set<std::string> CellNames;
  std::map<std::string, const Term *> Before;
  for (const CellSpec &Cell : Query.Cells) {
    CellNames.insert(Cell.Name);
    Before[Cell.Name] = Ctx.Terms.signal(Cell.Name, Cell.S);
  }

  // Havoc inputs: every non-cell signal in the after-state reads a fresh
  // copy (suffix "!").
  auto Havoc = [&](const Term *T) {
    std::unordered_map<std::string, const Term *> Map;
    std::vector<std::string> Names;
    collectSignals(T, Names);
    for (const std::string &Name : Names) {
      if (CellNames.count(Name))
        continue;
      std::function<const Term *(const Term *)> Find =
          [&](const Term *Node) -> const Term * {
        if (Node->isSignal() && Node->name() == Name)
          return Node;
        for (const Term *Arg : Node->args())
          if (const Term *Found = Find(Arg))
            return Found;
        return nullptr;
      };
      Map[Name] = Ctx.Terms.signal(Name + "!", Find(T)->sort());
    }
    return Ctx.Terms.substituteAll(T, Map);
  };

  // One body iteration, inputs havocked inside the body as well.
  std::map<std::string, const Term *> After = Before;
  for (const StepChoice &Step : Body) {
    StepChoice Havocked;
    for (const auto &[Cell, Rhs] : Step)
      Havocked[Cell] = Havoc(Rhs);
    After = applyStepSymbolic(Ctx.Terms, After, Havocked);
  }
  std::unordered_map<std::string, const Term *> AfterMap(After.begin(),
                                                         After.end());
  auto AtAfter = [&](const Term *T) {
    return Ctx.Terms.substituteAll(Havoc(T), AfterMap);
  };

  Sort GapSort = A->sort() == Sort::Real || B->sort() == Sort::Real
                     ? Sort::Real
                     : Sort::Int;
  auto Minus = [&](const Term *X, const Term *Y) {
    return Ctx.Terms.apply("-", GapSort, {X, Y});
  };
  auto Leq = [&](const Term *X, const Term *Y) {
    return Ctx.Formulas.pred(Ctx.Terms.apply("<=", Sort::Bool, {X, Y}));
  };
  const Term *One = Ctx.Terms.numeral(Rational(1), GapSort);

  auto LiteralFormula = [&](const TheoryLiteral &L, const Term *At) {
    const Formula *F = Ctx.Formulas.pred(At);
    return L.Positive ? F : Ctx.Formulas.notF(F);
  };
  std::vector<const Formula *> Ambient;
  for (const TheoryLiteral &L : Query.Ambient) {
    // Ambient facts hold now and after the step (on fresh inputs).
    Ambient.push_back(LiteralFormula(L, L.Atom));
    Ambient.push_back(LiteralFormula(L, Havoc(L.Atom)));
  }
  const Formula *PostNow = LiteralFormula(Post, Post.Atom);
  const Formula *PostAfter = LiteralFormula(Post, AtAfter(Post.Atom));

  // Checks that Condition -> g' <= g - 1 is valid.
  auto ProgressUnder = [&](const Formula *Condition, const Term *GNow,
                           const Term *GAfter) {
    std::vector<const Formula *> Parts = Ambient;
    Parts.push_back(Condition);
    Parts.push_back(Ctx.Formulas.notF(Leq(GAfter, Minus(GNow, One))));
    return checkSat(Ctx.Formulas.andF(std::move(Parts))) ==
           SatResult::Unsat;
  };

  if (Goal != Rel::EQ) {
    // Tier 1: from ANY !post state, the gap g = A - B shrinks. g is
    // bounded below on !post states (g >= 0 for LT, g > 0 for LE), so
    // repeated decrease forces the post-condition for every input
    // evolution.
    const Term *GNow = Minus(A, B);
    const Term *GAfter = AtAfter(GNow);
    if (ProgressUnder(Ctx.Formulas.notF(PostNow), GNow, GAfter))
      return true;
  }

  // Tier 2: use the pre-condition as an inductive region (Example 4.5:
  // from x < 0, body x+1 reaches x = 0 without overshooting).
  std::vector<const Formula *> PreNowParts, PreAfterParts;
  for (const TheoryLiteral &L : Query.Pre) {
    PreNowParts.push_back(LiteralFormula(L, L.Atom));
    PreAfterParts.push_back(LiteralFormula(L, AtAfter(L.Atom)));
  }
  const Formula *PreNow = Ctx.Formulas.andF(PreNowParts);
  const Formula *PreAfter = Ctx.Formulas.andF(PreAfterParts);
  const Formula *Lhs = Ctx.Formulas.andF(PreNow, Ctx.Formulas.notF(PostNow));

  // Invariance: pre && !post -> (pre' || post').
  {
    std::vector<const Formula *> Parts = Ambient;
    Parts.push_back(Lhs);
    Parts.push_back(Ctx.Formulas.notF(Ctx.Formulas.orF(PreAfter, PostAfter)));
    if (checkSat(Ctx.Formulas.andF(std::move(Parts))) !=
        SatResult::Unsat)
      return false;
  }

  // Direction for EQ: rank whichever side pre proves smaller.
  const Term *GNow = nullptr;
  if (Goal == Rel::EQ) {
    // pre && ambient |= A <= B?
    std::vector<const Formula *> Parts = Ambient;
    Parts.push_back(PreNow);
    Parts.push_back(Ctx.Formulas.notF(Leq(A, B)));
    if (checkSat(Ctx.Formulas.andF(Parts)) == SatResult::Unsat) {
      GNow = Minus(B, A);
    } else {
      Parts = Ambient;
      Parts.push_back(PreNow);
      Parts.push_back(Ctx.Formulas.notF(Leq(B, A)));
      if (checkSat(Ctx.Formulas.andF(Parts)) == SatResult::Unsat)
        GNow = Minus(A, B);
      else
        return false;
    }
  } else {
    GNow = Minus(A, B);
  }
  return ProgressUnder(Lhs, GNow, AtAfter(GNow));
}
