//===- sygus/Grammar.h - Context-free term grammars ------------*- C++ -*-===//
///
/// \file
/// Context-free grammars over terms and a bottom-up enumerator, the
/// syntactic half of a SyGuS problem (Sec. 3.4). The paper's sequential
/// grammar for a signal s_i (Sec. 4.3.1)
///
///   S ::= F S | s_i
///
/// is expressed with productions whose templates mention nonterminal
/// placeholder signals (reserved names "$0", "$1", ...).
///
/// The enumerator generates all derivable terms by height, optionally
/// pruning observationally equivalent candidates over a set of example
/// assignments (the classic enumerative-SyGuS optimization; the
/// ablation bench measures its effect).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SYGUS_GRAMMAR_H
#define TEMOS_SYGUS_GRAMMAR_H

#include "logic/Term.h"
#include "theory/Value.h"

#include <functional>
#include <string>
#include <vector>

namespace temos {

/// One production: a term template in which placeholder signals "$<k>"
/// stand for nonterminal k.
struct Production {
  const Term *Template = nullptr;
};

/// A nonterminal with its candidate productions.
struct NonTerminal {
  std::string Name;
  Sort S = Sort::Int;
  std::vector<Production> Productions;
};

/// A context-free grammar over terms. Nonterminal 0 is the start symbol.
struct Grammar {
  std::vector<NonTerminal> NonTerminals;

  /// The reserved placeholder signal name for nonterminal \p Index.
  static std::string placeholder(size_t Index) {
    return "$" + std::to_string(Index);
  }
};

/// Configuration for enumeration.
struct EnumerationOptions {
  /// Maximum derivation height to explore.
  unsigned MaxHeight = 6;
  /// If non-empty, candidates that agree with an already-enumerated
  /// candidate on every example are pruned (observational equivalence).
  std::vector<Assignment> Examples;
  /// Stop after this many candidates have been produced (0 = unlimited).
  size_t CandidateLimit = 0;
};

/// Statistics from one enumeration run.
struct EnumerationStats {
  size_t Generated = 0;
  size_t Pruned = 0;
};

/// Enumerates terms derivable from the start nonterminal, shortest
/// (lowest height) first. Calls \p Yield for each candidate; enumeration
/// stops when \p Yield returns true ("accepted") or limits are hit.
/// Returns the accepted term, or nullptr.
const Term *enumerateGrammar(TermFactory &TF, const Grammar &G,
                             const EnumerationOptions &Options,
                             const std::function<bool(const Term *)> &Yield,
                             EnumerationStats *Stats = nullptr);

} // namespace temos

#endif // TEMOS_SYGUS_GRAMMAR_H
