//===- logic/Formula.h - TSL-MT formulas -----------------------*- C++ -*-===//
///
/// \file
/// TSL-MT formulas (Sec. 3.1/3.3 of the paper):
///
///   phi := tau_P | [s <- tau_F] | !phi | phi && phi | X phi | phi U phi
///
/// plus the standard derived operators ||, ->, <->, R (release),
/// G (always), F (eventually) and W (weak until), which are kept as
/// first-class nodes because the decomposition algorithm (Alg. 1) and the
/// assumption encodings (Alg. 2/3) pattern-match on them.
///
/// Formulas are immutable and hash-consed by FormulaFactory; pointer
/// equality is structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_FORMULA_H
#define TEMOS_LOGIC_FORMULA_H

#include "logic/Term.h"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace temos {

/// An immutable TSL-MT formula node. Create via FormulaFactory only.
class Formula {
public:
  enum class Kind {
    True,
    False,
    /// A predicate term (a Bool-sorted Term) used as an atom.
    Pred,
    /// An update term [cell <- term].
    Update,
    Not,
    And, // n-ary, >= 2 children
    Or,  // n-ary, >= 2 children
    Implies,
    Iff,
    Next,
    Globally,
    Finally,
    Until,
    WeakUntil,
    Release,
  };

  Kind kind() const { return K; }

  /// Stable creation index within the owning factory; used to order
  /// formula sets deterministically (pointer order varies between runs).
  unsigned id() const { return Id; }

  bool is(Kind Which) const { return K == Which; }
  bool isAtom() const {
    return K == Kind::Pred || K == Kind::Update || K == Kind::True ||
           K == Kind::False;
  }
  /// An NNF literal: an atom or the negation of an atom.
  bool isLiteral() const {
    return isAtom() || (K == Kind::Not && Kids[0]->isAtom());
  }
  bool isTemporal() const {
    return K == Kind::Next || K == Kind::Globally || K == Kind::Finally ||
           K == Kind::Until || K == Kind::WeakUntil || K == Kind::Release;
  }

  /// The predicate term; only valid for Pred nodes.
  const Term *pred() const {
    assert(K == Kind::Pred && "pred() on non-predicate");
    return Atom;
  }

  /// The updated cell name; only valid for Update nodes.
  const std::string &cell() const {
    assert(K == Kind::Update && "cell() on non-update");
    return Cell;
  }
  /// The update's right-hand side term; only valid for Update nodes.
  const Term *updateValue() const {
    assert(K == Kind::Update && "updateValue() on non-update");
    return Atom;
  }

  const std::vector<const Formula *> &children() const { return Kids; }
  const Formula *child(size_t I) const {
    assert(I < Kids.size() && "child index out of range");
    return Kids[I];
  }
  /// Left operand of a binary node / sole operand of a unary node.
  const Formula *lhs() const { return child(0); }
  /// Right operand of a binary node.
  const Formula *rhs() const { return child(1); }

  /// Renders in the benchmark concrete syntax.
  std::string str() const;

  /// Number of AST nodes (the |phi| column of Table 1).
  size_t size() const;

private:
  friend class FormulaFactory;
  Formula(Kind K, const Term *Atom, std::string Cell,
          std::vector<const Formula *> Kids)
      : K(K), Atom(Atom), Cell(std::move(Cell)), Kids(std::move(Kids)) {}

  Kind K;
  unsigned Id = 0;
  const Term *Atom = nullptr;
  std::string Cell;
  std::vector<const Formula *> Kids;
};

/// Hash-consing factory for formulas.
///
/// Thread safety: interning and the NNF memo are serialized by internal
/// mutexes, so concurrent solver-service workers may build formulas in
/// one shared factory. Note that Formula::id() reflects interning
/// order: under concurrent construction ids are valid and unique but
/// their assignment order depends on scheduling, so ids order formula
/// sets consistently *within* a run, not across runs.
class FormulaFactory {
public:
  FormulaFactory() = default;
  FormulaFactory(const FormulaFactory &) = delete;
  FormulaFactory &operator=(const FormulaFactory &) = delete;

  const Formula *trueF();
  const Formula *falseF();
  /// Predicate atom; \p P must have sort Bool.
  const Formula *pred(const Term *P);
  /// Update atom [cell <- value].
  const Formula *update(const std::string &Cell, const Term *Value);
  /// Negation. notF(notF(f)) collapses to f.
  const Formula *notF(const Formula *F);
  /// N-ary conjunction; flattens nested Ands, drops True, returns False
  /// if any child is False, returns True for the empty conjunction.
  const Formula *andF(std::vector<const Formula *> Fs);
  const Formula *andF(const Formula *A, const Formula *B) {
    return andF(std::vector<const Formula *>{A, B});
  }
  /// N-ary disjunction (dual simplifications of andF).
  const Formula *orF(std::vector<const Formula *> Fs);
  const Formula *orF(const Formula *A, const Formula *B) {
    return orF(std::vector<const Formula *>{A, B});
  }
  const Formula *implies(const Formula *A, const Formula *B);
  const Formula *iff(const Formula *A, const Formula *B);
  const Formula *next(const Formula *F);
  /// Applies N next operators.
  const Formula *nextN(const Formula *F, unsigned N);
  const Formula *globally(const Formula *F);
  const Formula *finallyF(const Formula *F);
  const Formula *until(const Formula *A, const Formula *B);
  const Formula *weakUntil(const Formula *A, const Formula *B);
  const Formula *release(const Formula *A, const Formula *B);

  /// Negation normal form: negations pushed to atoms; Implies/Iff
  /// eliminated; G/F/W/U/R/X retained as first-class operators (the
  /// decomposition algorithm and the tableau expansion laws want them).
  const Formula *toNNF(const Formula *F);

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Formulas.size();
  }

private:
  const Formula *intern(Formula::Kind K, const Term *Atom,
                        const std::string &Cell,
                        std::vector<const Formula *> Kids);
  const Formula *nnf(const Formula *F, bool Negated);

  mutable std::mutex Mutex;
  /// Guards NNFCache separately: nnf() recurses through intern(), so
  /// the memo cannot share the interning mutex without deadlock.
  mutable std::mutex NNFMutex;
  std::unordered_map<std::string, std::unique_ptr<Formula>> Formulas;
  std::unordered_map<const Formula *, const Formula *> NNFCache[2];
};

} // namespace temos

#endif // TEMOS_LOGIC_FORMULA_H
