//===- logic/Term.h - TSL-MT function and predicate terms ------*- C++ -*-===//
///
/// \file
/// Function terms tau_F and predicate terms tau_P of TSL-MT (Sec. 3.1 and
/// 3.3 of the paper):
///
///   tau_F := s | f(tau_F, ..., tau_F)
///   tau_P := p(tau_F, ..., tau_F)
///
/// A predicate term is simply a term of sort Bool. Terms are immutable and
/// hash-consed by TermFactory, so pointer equality is structural equality.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_TERM_H
#define TEMOS_LOGIC_TERM_H

#include "logic/Sort.h"
#include "support/Rational.h"

#include <cassert>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace temos {

/// An immutable TSL-MT term. Create via TermFactory only.
class Term {
public:
  enum class Kind {
    /// A signal (input, cell or output), i.e. a first-order variable.
    Signal,
    /// A function application f(t1, ..., tn); n may be zero (a constant).
    Apply,
    /// A numeric literal.
    Numeral,
  };

  Kind kind() const { return K; }
  bool isSignal() const { return K == Kind::Signal; }
  bool isApply() const { return K == Kind::Apply; }
  bool isNumeral() const { return K == Kind::Numeral; }

  /// Signal name or applied function symbol. Empty for numerals.
  const std::string &name() const { return Name; }

  /// The numeric value; only valid for numerals.
  const Rational &value() const {
    assert(isNumeral() && "value() on non-numeral");
    return Value;
  }

  Sort sort() const { return S; }

  const std::vector<const Term *> &args() const { return Args; }
  size_t arity() const { return Args.size(); }

  /// Number of AST nodes.
  size_t size() const {
    size_t Total = 1;
    for (const Term *Arg : Args)
      Total += Arg->size();
    return Total;
  }

  /// Renders the term in the benchmark concrete syntax, e.g.
  /// "add vruntime1 weight1" or "c10()" or "3".
  std::string str() const;

  /// Renders with infix sugar for arithmetic/comparisons where possible,
  /// e.g. "vruntime1 + weight1"; used by the code emitters.
  std::string strInfix() const;

private:
  friend class TermFactory;
  Term(Kind K, std::string Name, Sort S, std::vector<const Term *> Args,
       Rational Value)
      : K(K), Name(std::move(Name)), S(S), Args(std::move(Args)),
        Value(Value) {}

  Kind K;
  std::string Name;
  Sort S;
  std::vector<const Term *> Args;
  Rational Value;
};

/// Hash-consing factory for terms. Terms returned by the factory live as
/// long as the factory and are unique per structure, so `==` on pointers
/// is structural equality.
///
/// Thread safety: interning is serialized by an internal mutex, so
/// concurrent solver-service workers may allocate into one shared
/// factory. Returned Term pointers are immutable and safe to read
/// without synchronization.
class TermFactory {
public:
  TermFactory() = default;
  TermFactory(const TermFactory &) = delete;
  TermFactory &operator=(const TermFactory &) = delete;

  /// A signal (first-order variable) of the given sort.
  const Term *signal(const std::string &Name, Sort S);

  /// A function application. For zero-argument constants pass no args.
  const Term *apply(const std::string &Function, Sort ResultSort,
                    const std::vector<const Term *> &Args);

  /// A numeric literal of sort Int (if integral) or the given sort.
  const Term *numeral(const Rational &Value, Sort S);
  const Term *numeral(int64_t Value) { return numeral(Rational(Value), Sort::Int); }

  /// Replaces every occurrence of signal \p SignalName in \p T by \p
  /// Replacement. Sorts must agree.
  const Term *substitute(const Term *T, const std::string &SignalName,
                         const Term *Replacement);

  /// Simultaneous substitution: every signal with an entry in \p Map is
  /// replaced by its image in one pass (needed for parallel updates such
  /// as swaps, where sequential substitution would capture).
  const Term *
  substituteAll(const Term *T,
                const std::unordered_map<std::string, const Term *> &Map);

  /// Number of distinct terms created so far.
  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Terms.size();
  }

private:
  const Term *intern(Term::Kind K, const std::string &Name, Sort S,
                     const std::vector<const Term *> &Args,
                     const Rational &Value);

  mutable std::mutex Mutex;
  std::unordered_map<std::string, std::unique_ptr<Term>> Terms;
};

/// Collects the names of all signals occurring in \p T into \p Out
/// (deduplicated, in first-occurrence order).
void collectSignals(const Term *T, std::vector<std::string> &Out);

/// True if signal \p SignalName occurs in \p T.
bool mentionsSignal(const Term *T, const std::string &SignalName);

} // namespace temos

#endif // TEMOS_LOGIC_TERM_H
