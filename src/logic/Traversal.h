//===- logic/Traversal.h - Formula traversals ------------------*- C++ -*-===//
///
/// \file
/// Traversal helpers over formulas: collecting predicate literals and
/// update terms (the |P| and |F| columns of Table 1 and the inputs to the
/// syntactic decomposition of Alg. 1), and walking subformulas with
/// parent links.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_TRAVERSAL_H
#define TEMOS_LOGIC_TRAVERSAL_H

#include "logic/Formula.h"
#include "logic/Specification.h"

#include <functional>
#include <unordered_map>
#include <vector>

namespace temos {

/// Calls \p Visit on every node of \p F (pre-order).
void forEachNode(const Formula *F,
                 const std::function<void(const Formula *)> &Visit);

/// All distinct predicate terms occurring in \p F, in first-occurrence
/// order. This is the "predicate literals" set of Sec. 4.1.
std::vector<const Term *> collectPredicateTerms(const Formula *F);

/// All distinct update atoms [c <- t] occurring in \p F, in
/// first-occurrence order (returned as Update-kind Formula nodes).
std::vector<const Formula *> collectUpdateTerms(const Formula *F);

/// Distinct predicate terms across a whole specification.
std::vector<const Term *> collectPredicateTerms(const Specification &Spec);

/// Distinct update atoms across a whole specification.
std::vector<const Formula *> collectUpdateTerms(const Specification &Spec);

/// Parent map of the formula DAG rooted at \p Root. Because formulas are
/// hash-consed a node can have several parents; the decomposition
/// traversal (Alg. 1) visits each (child, parent) edge, so the map is
/// multi-valued.
std::unordered_map<const Formula *, std::vector<const Formula *>>
buildParentMap(const Formula *Root);

} // namespace temos

#endif // TEMOS_LOGIC_TRAVERSAL_H
