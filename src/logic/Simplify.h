//===- logic/Simplify.h - Temporal formula simplification ------*- C++ -*-===//
///
/// \file
/// Equivalence-preserving rewrites on TSL/LTL formulas, applied to the
/// final "TSL with assumptions" formula before automaton construction:
///
///   G G f = G f            F F f = F f
///   G (f && g) = G f && G g        (helps tableau-state sharing)
///   F (f || g) = F f || F g
///   X (f && g) = X f && X g        X (f || g) = X f || X g
///   G F (f || g) = G F f || ... is NOT valid -- not applied
///   f U (f U g) = f U g
///   idempotent/absorption cases handled by the factory's And/Or
///
/// The property tests check each rewrite against the tableau's
/// satisfiability on sampled formulas.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_SIMPLIFY_H
#define TEMOS_LOGIC_SIMPLIFY_H

#include "logic/Formula.h"

namespace temos {

/// Returns an equivalent, usually smaller formula.
const Formula *simplify(const Formula *F, FormulaFactory &FF);

} // namespace temos

#endif // TEMOS_LOGIC_SIMPLIFY_H
