//===- logic/Parser.cpp - TSL-MT concrete syntax parser -------------------===//

#include "logic/Parser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <unordered_map>

using namespace temos;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokenKind {
  Ident,
  Number,
  Punct,
  End,
};

struct Token {
  TokenKind Kind = TokenKind::End;
  std::string Text;
  size_t Line = 1;
  size_t Col = 1;

  bool is(TokenKind K) const { return Kind == K; }
  bool isPunct(const char *P) const {
    return Kind == TokenKind::Punct && Text == P;
  }
  bool isIdent(const char *I) const {
    return Kind == TokenKind::Ident && Text == I;
  }
};

class Lexer {
public:
  Lexer(const std::string &Source) : Source(Source) { tokenize(); }

  const std::vector<Token> &tokens() const { return Tokens; }
  bool hadError() const { return !ErrorMessage.empty(); }
  const std::string &errorMessage() const { return ErrorMessage; }
  size_t errorLine() const { return ErrorLine; }
  size_t errorColumn() const { return ErrorCol; }

private:
  void tokenize();
  void fail(const std::string &Message, size_t Col) {
    if (ErrorMessage.empty()) {
      ErrorMessage = Message;
      ErrorLine = Line;
      ErrorCol = Col;
    }
  }

  const std::string &Source;
  std::vector<Token> Tokens;
  std::string ErrorMessage;
  size_t Line = 1;
  size_t ErrorLine = 1;
  size_t ErrorCol = 1;
};

void Lexer::tokenize() {
  size_t I = 0;
  const size_t N = Source.size();
  // Offset of the first character of the current line; columns are
  // 1-based offsets from it.
  size_t LineStart = 0;
  auto Col = [&](size_t Pos) { return Pos - LineStart + 1; };
  // Multi-character punctuation, longest first (maximal munch).
  static const char *MultiPunct[] = {"<->", "<-", "<=", ">=", "->", "&&",
                                     "||", "!=", "=="};
  while (I < N) {
    char C = Source[I];
    if (C == '\n') {
      ++Line;
      ++I;
      LineStart = I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Line comments: // ... \n.
    if (C == '/' && I + 1 < N && Source[I + 1] == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_' || Source[I] == '\''))
        ++I;
      Tokens.push_back({TokenKind::Ident, Source.substr(Start, I - Start),
                        Line, Col(Start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && (std::isdigit(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '.'))
        ++I;
      Tokens.push_back({TokenKind::Number, Source.substr(Start, I - Start),
                        Line, Col(Start)});
      continue;
    }
    bool Matched = false;
    for (const char *P : MultiPunct) {
      size_t Len = std::string(P).size();
      if (Source.compare(I, Len, P) == 0) {
        Tokens.push_back({TokenKind::Punct, P, Line, Col(I)});
        I += Len;
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    static const std::string Single = "{}()[];,=<>+-*/!#";
    if (Single.find(C) != std::string::npos) {
      Tokens.push_back({TokenKind::Punct, std::string(1, C), Line, Col(I)});
      ++I;
      continue;
    }
    fail(std::string("unexpected character '") + C + "'", Col(I));
    return;
  }
  Tokens.push_back({TokenKind::End, "", Line, Col(I)});
}

//===----------------------------------------------------------------------===//
// Expression values: a parsed expression is a Term, a Formula, or (for
// Bool-sorted terms) convertible between the two.
//===----------------------------------------------------------------------===//

struct ExprValue {
  const Term *T = nullptr;
  const Formula *F = nullptr;

  bool isTerm() const { return T != nullptr; }
  bool isFormula() const { return F != nullptr; }
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

struct BuiltinFunction {
  const char *Canonical;
  int Arity;
};

/// Maps surface function names to canonical operator names. Both the
/// word spelling ("lte") and the symbol spelling ("<=") are accepted.
const std::unordered_map<std::string, BuiltinFunction> &builtinFunctions() {
  static const std::unordered_map<std::string, BuiltinFunction> Map = {
      {"add", {"+", 2}},  {"sub", {"-", 2}},  {"mul", {"*", 2}},
      {"eq", {"=", 2}},   {"neq", {"!=", 2}}, {"lt", {"<", 2}},
      {"lte", {"<=", 2}}, {"leq", {"<=", 2}}, {"gt", {">", 2}},
      {"gte", {">=", 2}}, {"geq", {">=", 2}},
  };
  return Map;
}

class Parser {
public:
  Parser(const std::string &Source, Context &Ctx, ParseError &Err)
      : Lex(Source), Ctx(Ctx), Err(Err) {}

  std::optional<Specification> parseSpec();
  const Formula *parseSingleFormula(const Specification &Against);

private:
  // Token plumbing.
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    const auto &Tokens = Lex.tokens();
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  Token take() {
    Token T = peek();
    if (Pos + 1 < Lex.tokens().size())
      ++Pos;
    return T;
  }
  bool acceptPunct(const char *P) {
    if (!peek().isPunct(P))
      return false;
    take();
    return true;
  }
  bool acceptIdent(const char *I) {
    if (!peek().isIdent(I))
      return false;
    take();
    return true;
  }
  bool expectPunct(const char *P);
  bool fail(const std::string &Message);
  bool fail(const std::string &Message, const Token &At);

  // Declarations.
  bool parseHeader();
  bool parseSignalBlock(std::vector<SignalDecl> &Out);
  bool parseCellBlock();
  bool parseFunctionBlock();
  bool parseFormulaBlock(std::vector<const Formula *> &Out);

  // Expressions. Precedence climbing; levels from loosest to tightest:
  //   iff < implies < or < and < until/weakuntil/release
  //       < comparison < additive < multiplicative < prefix < application.
  ExprValue parseIff();
  ExprValue parseImplies();
  ExprValue parseOr();
  ExprValue parseAnd();
  ExprValue parseUntil();
  ExprValue parseComparison();
  ExprValue parseAdditive();
  ExprValue parseMultiplicative();
  ExprValue parsePrefix();
  ExprValue parsePrimary();
  /// A primary that can appear as a juxtaposed application argument:
  /// identifier, numeral, nullary call, or parenthesized term.
  const Term *parseArgumentTerm();

  const Formula *asFormula(const ExprValue &V);
  const Term *asTerm(const ExprValue &V);
  const Term *applyFunction(const std::string &Name,
                            const std::vector<const Term *> &Args);
  Sort numeralSort() const {
    return Spec.Th == Theory::LRA ? Sort::Real : Sort::Int;
  }

  Lexer Lex;
  Context &Ctx;
  ParseError &Err;
  size_t Pos = 0;
  bool Failed = false;
  Specification Spec;
};

bool Parser::fail(const std::string &Message) { return fail(Message, peek()); }

/// Anchors the diagnostic at \p At rather than the current token — used
/// when the offending token was already consumed, so the error points at
/// the culprit instead of whatever follows it.
bool Parser::fail(const std::string &Message, const Token &At) {
  if (!Failed) {
    Failed = true;
    Err.Line = At.Line;
    Err.Column = At.Col;
    Err.Message = Message;
  }
  return false;
}

bool Parser::expectPunct(const char *P) {
  if (acceptPunct(P))
    return true;
  return fail(std::string("expected '") + P + "' but found '" + peek().Text +
              "'");
}

bool Parser::parseHeader() {
  // Optional "#LIA#"-style theory annotation.
  if (!peek().isPunct("#"))
    return true;
  take();
  Token Name = take();
  if (!Name.is(TokenKind::Ident))
    return fail("expected theory name after '#'");
  if (Name.Text == "LIA")
    Spec.Th = Theory::LIA;
  else if (Name.Text == "RA" || Name.Text == "LRA")
    Spec.Th = Theory::LRA;
  else if (Name.Text == "UF" || Name.Text == "TSL")
    Spec.Th = Theory::UF;
  else
    return fail("unknown theory '" + Name.Text + "' (expected LIA/RA/UF)",
                Name);
  return expectPunct("#");
}

bool Parser::parseSignalBlock(std::vector<SignalDecl> &Out) {
  if (!expectPunct("{"))
    return false;
  while (!acceptPunct("}")) {
    Token SortTok = take();
    Sort S;
    if (!SortTok.is(TokenKind::Ident) || !parseSort(SortTok.Text, S))
      return fail("expected sort name, found '" + SortTok.Text + "'", SortTok);
    do {
      Token Name = take();
      if (!Name.is(TokenKind::Ident))
        return fail("expected signal name");
      Out.push_back({Name.Text, S});
    } while (acceptPunct(","));
    if (!expectPunct(";"))
      return false;
  }
  return true;
}

bool Parser::parseCellBlock() {
  if (!expectPunct("{"))
    return false;
  while (!acceptPunct("}")) {
    Token SortTok = take();
    Sort S;
    if (!SortTok.is(TokenKind::Ident) || !parseSort(SortTok.Text, S))
      return fail("expected sort name, found '" + SortTok.Text + "'", SortTok);
    Token Name = take();
    if (!Name.is(TokenKind::Ident))
      return fail("expected cell name");
    const Term *Init = nullptr;
    if (acceptPunct("=")) {
      ExprValue V = parseComparison();
      if (Failed)
        return false;
      Init = asTerm(V);
      if (!Init)
        return false;
    }
    Spec.Cells.push_back({Name.Text, S, Init});
    if (!expectPunct(";"))
      return false;
  }
  return true;
}

bool Parser::parseFunctionBlock() {
  if (!expectPunct("{"))
    return false;
  while (!acceptPunct("}")) {
    Token SortTok = take();
    Sort Result;
    if (!SortTok.is(TokenKind::Ident) || !parseSort(SortTok.Text, Result))
      return fail("expected sort name, found '" + SortTok.Text + "'", SortTok);
    Token Name = take();
    if (!Name.is(TokenKind::Ident))
      return fail("expected function name");
    if (!expectPunct("("))
      return false;
    std::vector<Sort> Params;
    if (!peek().isPunct(")")) {
      do {
        Token P = take();
        Sort PS;
        if (!P.is(TokenKind::Ident) || !parseSort(P.Text, PS))
          return fail("expected parameter sort", P);
        Params.push_back(PS);
      } while (acceptPunct(","));
    }
    if (!expectPunct(")") || !expectPunct(";"))
      return false;
    Spec.Functions.push_back({Name.Text, Result, Params});
  }
  return true;
}

bool Parser::parseFormulaBlock(std::vector<const Formula *> &Out) {
  if (!expectPunct("{"))
    return false;
  while (!acceptPunct("}")) {
    ExprValue V = parseIff();
    if (Failed)
      return false;
    const Formula *F = asFormula(V);
    if (!F)
      return false;
    Out.push_back(F);
    if (!expectPunct(";"))
      return false;
  }
  return true;
}

std::optional<Specification> Parser::parseSpec() {
  if (Lex.hadError()) {
    Err.Line = Lex.errorLine();
    Err.Column = Lex.errorColumn();
    Err.Message = Lex.errorMessage();
    return std::nullopt;
  }
  if (!parseHeader())
    return std::nullopt;
  while (!peek().is(TokenKind::End)) {
    if (acceptIdent("inputs")) {
      if (!parseSignalBlock(Spec.Inputs))
        return std::nullopt;
    } else if (acceptIdent("outputs")) {
      if (!parseSignalBlock(Spec.Outputs))
        return std::nullopt;
    } else if (acceptIdent("cells")) {
      if (!parseCellBlock())
        return std::nullopt;
    } else if (acceptIdent("functions")) {
      if (!parseFunctionBlock())
        return std::nullopt;
    } else if (acceptIdent("always")) {
      if (acceptIdent("assume")) {
        if (!parseFormulaBlock(Spec.Assumptions))
          return std::nullopt;
      } else if (acceptIdent("guarantee")) {
        if (!parseFormulaBlock(Spec.AlwaysGuarantees))
          return std::nullopt;
      } else {
        fail("expected 'assume' or 'guarantee' after 'always'");
        return std::nullopt;
      }
    } else if (acceptIdent("guarantee")) {
      if (!parseFormulaBlock(Spec.Guarantees))
        return std::nullopt;
    } else if (acceptIdent("spec")) {
      Token Name = take();
      if (!Name.is(TokenKind::Ident)) {
        fail("expected specification name after 'spec'");
        return std::nullopt;
      }
      Spec.Name = Name.Text;
    } else {
      fail("expected a block keyword, found '" + peek().Text + "'");
      return std::nullopt;
    }
  }
  return std::move(Spec);
}

const Formula *Parser::parseSingleFormula(const Specification &Against) {
  if (Lex.hadError()) {
    Err.Line = Lex.errorLine();
    Err.Column = Lex.errorColumn();
    Err.Message = Lex.errorMessage();
    return nullptr;
  }
  Spec = Against; // Borrow declarations for symbol lookup.
  ExprValue V = parseIff();
  if (Failed)
    return nullptr;
  if (!peek().is(TokenKind::End)) {
    fail("trailing input after formula: '" + peek().Text + "'");
    return nullptr;
  }
  return asFormula(V);
}

//===----------------------------------------------------------------------===//
// Expression parsing
//===----------------------------------------------------------------------===//

const Formula *Parser::asFormula(const ExprValue &V) {
  if (Failed)
    return nullptr;
  if (V.isFormula())
    return V.F;
  if (V.isTerm()) {
    if (V.T->sort() != Sort::Bool) {
      fail("term '" + V.T->str() + "' used as a formula but has sort " +
           sortName(V.T->sort()));
      return nullptr;
    }
    return Ctx.Formulas.pred(V.T);
  }
  fail("expected a formula");
  return nullptr;
}

const Term *Parser::asTerm(const ExprValue &V) {
  if (Failed)
    return nullptr;
  if (V.isTerm())
    return V.T;
  fail("expected a term, found a temporal formula");
  return nullptr;
}

const Term *Parser::applyFunction(const std::string &Name,
                                  const std::vector<const Term *> &Args) {
  // Canonical builtins.
  std::string Canonical = Name;
  if (auto It = builtinFunctions().find(Name); It != builtinFunctions().end())
    Canonical = It->second.Canonical;

  static const std::unordered_map<std::string, int> Builtins = {
      {"+", 2}, {"-", 2}, {"*", 2}, {"=", 2},  {"!=", 2},
      {"<", 2}, {"<=", 2}, {">", 2}, {">=", 2},
  };
  if (auto It = Builtins.find(Canonical); It != Builtins.end()) {
    if (static_cast<int>(Args.size()) != It->second) {
      fail("builtin '" + Canonical + "' expects " +
           std::to_string(It->second) + " arguments, got " +
           std::to_string(Args.size()));
      return nullptr;
    }
    bool IsComparison = Canonical == "=" || Canonical == "!=" ||
                        Canonical == "<" || Canonical == "<=" ||
                        Canonical == ">" || Canonical == ">=";
    Sort Result;
    if (IsComparison) {
      Result = Sort::Bool;
    } else {
      Result = Sort::Int;
      for (const Term *Arg : Args)
        if (Arg->sort() == Sort::Real)
          Result = Sort::Real;
    }
    return Ctx.Terms.apply(Canonical, Result, Args);
  }

  // Declared functions.
  for (const FunctionDecl &D : Spec.Functions) {
    if (D.Name != Name)
      continue;
    if (D.Params.size() != Args.size()) {
      fail("function '" + Name + "' expects " +
           std::to_string(D.Params.size()) + " arguments, got " +
           std::to_string(Args.size()));
      return nullptr;
    }
    return Ctx.Terms.apply(Name, D.Result, Args);
  }

  // "cN()"-style numeric constants (Fig. 5 uses c10(), c1()).
  if (Args.empty() && Name.size() > 1 && Name[0] == 'c' &&
      std::isdigit(static_cast<unsigned char>(Name[1]))) {
    Rational Value;
    if (Rational::parse(Name.substr(1), Value))
      return Ctx.Terms.numeral(Value, numeralSort());
  }
  // Boolean constants True()/False().
  if (Args.empty() && (Name == "True" || Name == "False"))
    return Ctx.Terms.apply(Name, Sort::Bool, {});
  // Other nullary symbols default to opaque constants (e.g. idle()).
  if (Args.empty())
    return Ctx.Terms.apply(Name, Sort::Opaque, {});

  fail("unknown function '" + Name + "'; declare it in a functions block");
  return nullptr;
}

ExprValue Parser::parseIff() {
  ExprValue Left = parseImplies();
  while (!Failed && peek().isPunct("<->")) {
    take();
    ExprValue Right = parseImplies();
    const Formula *A = asFormula(Left);
    const Formula *B = asFormula(Right);
    if (!A || !B)
      return {};
    Left = {nullptr, Ctx.Formulas.iff(A, B)};
  }
  return Left;
}

ExprValue Parser::parseImplies() {
  ExprValue Left = parseOr();
  if (Failed || !peek().isPunct("->"))
    return Left;
  take();
  ExprValue Right = parseImplies(); // Right-associative.
  const Formula *A = asFormula(Left);
  const Formula *B = asFormula(Right);
  if (!A || !B)
    return {};
  return {nullptr, Ctx.Formulas.implies(A, B)};
}

ExprValue Parser::parseOr() {
  ExprValue Left = parseAnd();
  while (!Failed && peek().isPunct("||")) {
    take();
    ExprValue Right = parseAnd();
    const Formula *A = asFormula(Left);
    const Formula *B = asFormula(Right);
    if (!A || !B)
      return {};
    Left = {nullptr, Ctx.Formulas.orF(A, B)};
  }
  return Left;
}

ExprValue Parser::parseAnd() {
  ExprValue Left = parseUntil();
  while (!Failed && peek().isPunct("&&")) {
    take();
    ExprValue Right = parseUntil();
    const Formula *A = asFormula(Left);
    const Formula *B = asFormula(Right);
    if (!A || !B)
      return {};
    Left = {nullptr, Ctx.Formulas.andF(A, B)};
  }
  return Left;
}

ExprValue Parser::parseUntil() {
  ExprValue Left = parseComparison();
  if (Failed)
    return Left;
  for (const char *Op : {"U", "W", "R"}) {
    if (!peek().isIdent(Op))
      continue;
    take();
    ExprValue Right = parseUntil(); // Right-associative.
    const Formula *A = asFormula(Left);
    const Formula *B = asFormula(Right);
    if (!A || !B)
      return {};
    if (std::string(Op) == "U")
      return {nullptr, Ctx.Formulas.until(A, B)};
    if (std::string(Op) == "W")
      return {nullptr, Ctx.Formulas.weakUntil(A, B)};
    return {nullptr, Ctx.Formulas.release(A, B)};
  }
  return Left;
}

ExprValue Parser::parseComparison() {
  ExprValue Left = parseAdditive();
  if (Failed)
    return Left;
  static const char *Ops[] = {"<=", ">=", "!=", "==", "<", ">", "="};
  for (const char *Op : Ops) {
    if (!peek().isPunct(Op))
      continue;
    take();
    ExprValue Right = parseAdditive();
    const Term *A = asTerm(Left);
    const Term *B = asTerm(Right);
    if (!A || !B)
      return {};
    std::string Canonical = Op;
    if (Canonical == "==")
      Canonical = "=";
    const Term *T = applyFunction(Canonical, {A, B});
    if (!T)
      return {};
    return {T, nullptr};
  }
  return Left;
}

ExprValue Parser::parseAdditive() {
  ExprValue Left = parseMultiplicative();
  while (!Failed && (peek().isPunct("+") || peek().isPunct("-"))) {
    std::string Op = take().Text;
    ExprValue Right = parseMultiplicative();
    const Term *A = asTerm(Left);
    const Term *B = asTerm(Right);
    if (!A || !B)
      return {};
    const Term *T = applyFunction(Op, {A, B});
    if (!T)
      return {};
    Left = {T, nullptr};
  }
  return Left;
}

ExprValue Parser::parseMultiplicative() {
  ExprValue Left = parsePrefix();
  while (!Failed && peek().isPunct("*")) {
    take();
    ExprValue Right = parsePrefix();
    const Term *A = asTerm(Left);
    const Term *B = asTerm(Right);
    if (!A || !B)
      return {};
    const Term *T = applyFunction("*", {A, B});
    if (!T)
      return {};
    Left = {T, nullptr};
  }
  return Left;
}

ExprValue Parser::parsePrefix() {
  if (peek().isPunct("!")) {
    take();
    ExprValue V = parsePrefix();
    const Formula *F = asFormula(V);
    if (!F)
      return {};
    return {nullptr, Ctx.Formulas.notF(F)};
  }
  if (peek().isPunct("-")) {
    take();
    ExprValue V = parsePrefix();
    const Term *T = asTerm(V);
    if (!T)
      return {};
    if (T->isNumeral())
      return {Ctx.Terms.numeral(-T->value(), T->sort()), nullptr};
    const Term *Zero = Ctx.Terms.numeral(Rational(0), T->sort());
    const Term *Negated = applyFunction("-", {Zero, T});
    if (!Negated)
      return {};
    return {Negated, nullptr};
  }
  for (const char *Op : {"X", "F", "G"}) {
    if (!peek().isIdent(Op))
      continue;
    take();
    ExprValue V = parsePrefix();
    const Formula *F = asFormula(V);
    if (!F)
      return {};
    if (std::string(Op) == "X")
      return {nullptr, Ctx.Formulas.next(F)};
    if (std::string(Op) == "F")
      return {nullptr, Ctx.Formulas.finallyF(F)};
    return {nullptr, Ctx.Formulas.globally(F)};
  }
  return parsePrimary();
}

const Term *Parser::parseArgumentTerm() {
  const Token &T = peek();
  if (T.is(TokenKind::Number)) {
    take();
    Rational Value;
    if (!Rational::parse(T.Text, Value)) {
      fail("malformed numeral '" + T.Text + "'", T);
      return nullptr;
    }
    Sort S = Value.isInteger() ? numeralSort() : Sort::Real;
    return Ctx.Terms.numeral(Value, S);
  }
  if (T.isPunct("(")) {
    take();
    ExprValue V = parseComparison();
    if (Failed)
      return nullptr;
    if (!expectPunct(")"))
      return nullptr;
    return asTerm(V);
  }
  if (T.is(TokenKind::Ident)) {
    Token Name = take();
    // Nullary call "f()".
    if (peek().isPunct("(") && peek(1).isPunct(")")) {
      take();
      take();
      return applyFunction(Name.Text, {});
    }
    if (auto S = Spec.signalSort(Name.Text))
      return Ctx.Terms.signal(Name.Text, *S);
    fail("unknown signal '" + Name.Text + "'", Name);
    return nullptr;
  }
  fail("expected a term, found '" + T.Text + "'");
  return nullptr;
}

ExprValue Parser::parsePrimary() {
  const Token &T = peek();

  // Boolean literals.
  if (T.isIdent("true")) {
    take();
    return {nullptr, Ctx.Formulas.trueF()};
  }
  if (T.isIdent("false")) {
    take();
    return {nullptr, Ctx.Formulas.falseF()};
  }

  // Update term [cell <- term].
  if (T.isPunct("[")) {
    take();
    Token Cell = take();
    if (!Cell.is(TokenKind::Ident)) {
      fail("expected cell name in update term");
      return {};
    }
    if (!Spec.isUpdatable(Cell.Text)) {
      fail("'" + Cell.Text + "' is not a cell or output; cannot be updated",
           Cell);
      return {};
    }
    if (!expectPunct("<-"))
      return {};
    ExprValue V = parseComparison();
    if (Failed)
      return {};
    const Term *Value = asTerm(V);
    if (!Value)
      return {};
    if (!expectPunct("]"))
      return {};
    return {nullptr, Ctx.Formulas.update(Cell.Text, Value)};
  }

  // Parenthesized formula or term.
  if (T.isPunct("(")) {
    take();
    ExprValue V = parseIff();
    if (Failed)
      return {};
    if (!expectPunct(")"))
      return {};
    return V;
  }

  // Numerals.
  if (T.is(TokenKind::Number)) {
    const Term *Num = parseArgumentTerm();
    if (!Num)
      return {};
    return {Num, nullptr};
  }

  // Identifier: signal, or prefix application f a1 a2 ...
  if (T.is(TokenKind::Ident)) {
    Token Name = take();
    // Nullary call.
    if (peek().isPunct("(") && peek(1).isPunct(")")) {
      take();
      take();
      const Term *C = applyFunction(Name.Text, {});
      if (!C)
        return {};
      return {C, nullptr};
    }
    // Declared signal: never takes juxtaposed arguments.
    if (auto S = Spec.signalSort(Name.Text))
      return {Ctx.Terms.signal(Name.Text, *S), nullptr};
    // Function symbol: consume juxtaposed arguments greedily.
    std::vector<const Term *> Args;
    while (!Failed && (peek().is(TokenKind::Ident) ||
                       peek().is(TokenKind::Number) || peek().isPunct("("))) {
      // Stop at temporal operator keywords.
      if (peek().is(TokenKind::Ident)) {
        const std::string &Id = peek().Text;
        if (Id == "U" || Id == "W" || Id == "R" || Id == "X" || Id == "F" ||
            Id == "G" || Id == "true" || Id == "false")
          break;
      }
      const Term *Arg = parseArgumentTerm();
      if (!Arg)
        return {};
      Args.push_back(Arg);
    }
    if (Failed)
      return {};
    if (Args.empty()) {
      // A bare unknown identifier is an undeclared signal, not a nullary
      // constant: constants require the explicit "name()" call syntax.
      fail("unknown signal '" + Name.Text + "'", Name);
      return {};
    }
    const Term *App = applyFunction(Name.Text, Args);
    if (!App)
      return {};
    return {App, nullptr};
  }

  fail("expected a formula or term, found '" + T.Text + "'");
  return {};
}

} // namespace

ParseResult<Specification>
temos::parseSpecification(const std::string &Source, Context &Ctx) {
  ParseError Err;
  Parser P(Source, Ctx, Err);
  if (std::optional<Specification> Spec = P.parseSpec())
    return std::move(*Spec);
  return Err;
}

ParseResult<const Formula *>
temos::parseFormula(const std::string &Source, const Specification &Spec,
                    Context &Ctx) {
  ParseError Err;
  Parser P(Source, Ctx, Err);
  if (const Formula *F = P.parseSingleFormula(Spec))
    return F;
  return Err;
}
