//===- logic/Specification.cpp - TSL-MT specifications --------------------===//

#include "logic/Specification.h"

using namespace temos;

const SignalDecl *Specification::findInput(const std::string &Name) const {
  for (const SignalDecl &D : Inputs)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

const CellDecl *Specification::findCell(const std::string &Name) const {
  for (const CellDecl &D : Cells)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

const SignalDecl *Specification::findOutput(const std::string &Name) const {
  for (const SignalDecl &D : Outputs)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

std::optional<Sort> Specification::signalSort(const std::string &Name) const {
  if (const SignalDecl *D = findInput(Name))
    return D->S;
  if (const CellDecl *D = findCell(Name))
    return D->S;
  if (const SignalDecl *D = findOutput(Name))
    return D->S;
  return std::nullopt;
}

bool Specification::isUpdatable(const std::string &Name) const {
  return findCell(Name) != nullptr || findOutput(Name) != nullptr;
}

const Formula *Specification::guaranteeFormula(Context &Ctx) const {
  std::vector<const Formula *> Parts;
  for (const Formula *G : AlwaysGuarantees)
    Parts.push_back(Ctx.Formulas.globally(G));
  for (const Formula *G : Guarantees)
    Parts.push_back(G);
  return Ctx.Formulas.andF(std::move(Parts));
}

const Formula *Specification::toFormula(Context &Ctx) const {
  const Formula *Guar = guaranteeFormula(Ctx);
  if (Assumptions.empty())
    return Guar;
  std::vector<const Formula *> Assume;
  for (const Formula *A : Assumptions)
    Assume.push_back(Ctx.Formulas.globally(A));
  return Ctx.Formulas.implies(Ctx.Formulas.andF(std::move(Assume)), Guar);
}

std::string Specification::str() const {
  std::string Out = "#" + std::string(theoryName(Th)) + "#\n";
  if (Name != "spec")
    Out += "spec " + Name + "\n";
  auto EmitSignals = [&](const char *Block,
                         const std::vector<SignalDecl> &Decls) {
    if (Decls.empty())
      return;
    Out += std::string(Block) + " {\n";
    for (const SignalDecl &D : Decls)
      Out += "  " + std::string(sortName(D.S)) + " " + D.Name + ";\n";
    Out += "}\n";
  };
  EmitSignals("inputs", Inputs);
  if (!Cells.empty()) {
    Out += "cells {\n";
    for (const CellDecl &D : Cells) {
      Out += "  " + std::string(sortName(D.S)) + " " + D.Name;
      if (D.Init)
        Out += " = " + D.Init->str();
      Out += ";\n";
    }
    Out += "}\n";
  }
  EmitSignals("outputs", Outputs);
  if (!Functions.empty()) {
    Out += "functions {\n";
    for (const FunctionDecl &D : Functions) {
      Out += "  " + std::string(sortName(D.Result)) + " " + D.Name + "(";
      for (size_t I = 0; I < D.Params.size(); ++I)
        Out += std::string(I ? ", " : "") + sortName(D.Params[I]);
      Out += ");\n";
    }
    Out += "}\n";
  }
  auto EmitFormulas = [&](const char *Block,
                          const std::vector<const Formula *> &Fs) {
    if (Fs.empty())
      return;
    Out += std::string(Block) + " {\n";
    for (const Formula *F : Fs)
      Out += "  " + F->str() + ";\n";
    Out += "}\n";
  };
  EmitFormulas("always assume", Assumptions);
  EmitFormulas("always guarantee", AlwaysGuarantees);
  EmitFormulas("guarantee", Guarantees);
  return Out;
}
