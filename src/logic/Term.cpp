//===- logic/Term.cpp - TSL-MT terms --------------------------------------===//

#include "logic/Term.h"

#include <algorithm>

using namespace temos;

namespace {

/// True for symbols we render infix in strInfix().
bool isInfixSymbol(const std::string &Name) {
  static const char *Symbols[] = {"+",  "-", "*",  "/", "<",
                                  "<=", ">", ">=", "=", "!="};
  return std::find_if(std::begin(Symbols), std::end(Symbols),
                      [&](const char *S) { return Name == S; }) !=
         std::end(Symbols);
}

} // namespace

std::string Term::str() const {
  switch (K) {
  case Kind::Signal:
    return Name;
  case Kind::Numeral:
    return Value.str();
  case Kind::Apply: {
    if (Args.empty())
      return Name + "()";
    // Operators render infix so printed terms re-parse ((x + 1), x < y).
    if (Args.size() == 2 && isInfixSymbol(Name))
      return "(" + Args[0]->str() + " " + Name + " " + Args[1]->str() + ")";
    std::string Result = "(" + Name;
    for (const Term *Arg : Args)
      Result += " " + Arg->str();
    return Result + ")";
  }
  }
  return "?";
}

std::string Term::strInfix() const {
  switch (K) {
  case Kind::Signal:
    return Name;
  case Kind::Numeral:
    return Value.str();
  case Kind::Apply: {
    if (Args.size() == 2 && isInfixSymbol(Name))
      return "(" + Args[0]->strInfix() + " " + Name + " " +
             Args[1]->strInfix() + ")";
    if (Args.empty())
      return Name + "()";
    std::string Result = Name + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I != 0)
        Result += ", ";
      Result += Args[I]->strInfix();
    }
    return Result + ")";
  }
  }
  return "?";
}

const Term *TermFactory::intern(Term::Kind K, const std::string &Name, Sort S,
                                const std::vector<const Term *> &Args,
                                const Rational &Value) {
  // Build a structural key. Child pointers are unique per structure, so
  // embedding their addresses keys the whole subtree.
  std::string Key;
  Key += static_cast<char>('0' + static_cast<int>(K));
  Key += static_cast<char>('0' + static_cast<int>(S));
  Key += Name;
  Key += '#';
  Key += Value.str();
  for (const Term *Arg : Args) {
    Key += '@';
    Key += std::to_string(reinterpret_cast<uintptr_t>(Arg));
  }
  // Find-or-create must be atomic: two workers interning the same
  // structure concurrently must receive the same node.
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Terms.find(Key);
  if (It != Terms.end())
    return It->second.get();
  auto Node = std::unique_ptr<Term>(new Term(K, Name, S, Args, Value));
  const Term *Result = Node.get();
  Terms.emplace(std::move(Key), std::move(Node));
  return Result;
}

const Term *TermFactory::signal(const std::string &Name, Sort S) {
  assert(!Name.empty() && "signal with empty name");
  return intern(Term::Kind::Signal, Name, S, {}, Rational());
}

const Term *TermFactory::apply(const std::string &Function, Sort ResultSort,
                               const std::vector<const Term *> &Args) {
  assert(!Function.empty() && "apply with empty function name");
  return intern(Term::Kind::Apply, Function, ResultSort, Args, Rational());
}

const Term *TermFactory::numeral(const Rational &Value, Sort S) {
  assert((S == Sort::Int || S == Sort::Real) && "numeral must be numeric");
  assert((S != Sort::Int || Value.isInteger()) &&
         "integral numeral with fractional value");
  return intern(Term::Kind::Numeral, "", S, {}, Value);
}

const Term *TermFactory::substitute(const Term *T,
                                    const std::string &SignalName,
                                    const Term *Replacement) {
  switch (T->kind()) {
  case Term::Kind::Signal:
    if (T->name() == SignalName)
      return Replacement;
    return T;
  case Term::Kind::Numeral:
    return T;
  case Term::Kind::Apply: {
    bool Changed = false;
    std::vector<const Term *> NewArgs;
    NewArgs.reserve(T->arity());
    for (const Term *Arg : T->args()) {
      const Term *NewArg = substitute(Arg, SignalName, Replacement);
      Changed |= NewArg != Arg;
      NewArgs.push_back(NewArg);
    }
    if (!Changed)
      return T;
    return apply(T->name(), T->sort(), NewArgs);
  }
  }
  return T;
}

const Term *TermFactory::substituteAll(
    const Term *T, const std::unordered_map<std::string, const Term *> &Map) {
  switch (T->kind()) {
  case Term::Kind::Signal: {
    auto It = Map.find(T->name());
    return It != Map.end() ? It->second : T;
  }
  case Term::Kind::Numeral:
    return T;
  case Term::Kind::Apply: {
    bool Changed = false;
    std::vector<const Term *> NewArgs;
    NewArgs.reserve(T->arity());
    for (const Term *Arg : T->args()) {
      const Term *NewArg = substituteAll(Arg, Map);
      Changed |= NewArg != Arg;
      NewArgs.push_back(NewArg);
    }
    if (!Changed)
      return T;
    return apply(T->name(), T->sort(), NewArgs);
  }
  }
  return T;
}

void temos::collectSignals(const Term *T, std::vector<std::string> &Out) {
  if (T->isSignal()) {
    if (std::find(Out.begin(), Out.end(), T->name()) == Out.end())
      Out.push_back(T->name());
    return;
  }
  for (const Term *Arg : T->args())
    collectSignals(Arg, Out);
}

bool temos::mentionsSignal(const Term *T, const std::string &SignalName) {
  if (T->isSignal())
    return T->name() == SignalName;
  for (const Term *Arg : T->args())
    if (mentionsSignal(Arg, SignalName))
      return true;
  return false;
}
