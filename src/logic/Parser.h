//===- logic/Parser.h - TSL-MT concrete syntax parser ----------*- C++ -*-===//
///
/// \file
/// Parser for the TSL-MT benchmark format. The syntax mirrors the
/// temos/tsltools specifications shown in the paper (Fig. 5), extended
/// with explicit signal/function declarations:
///
/// \code
///   #LIA#
///   inputs  { int task1; bool enq1; }
///   cells   { int vruntime1 = 0; }
///   outputs { int next_task; }
///   functions { opaque idle(); }
///   always assume { ... ; }
///   always guarantee {
///     [next_task <- task1] || [next_task <- task2];
///     G (vruntime1 < vruntime2 -> ! [next_task <- task2]);
///     lte x c10() -> [lfo <- False()] U gt x c10();
///   }
/// \endcode
///
/// Terms support both prefix application (`add lfoFreq c1()`, `lt x y`)
/// and infix sugar (`lfoFreq + 1`, `x < y`); both build the same AST.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_PARSER_H
#define TEMOS_LOGIC_PARSER_H

#include "logic/Specification.h"

#include <optional>
#include <string>

namespace temos {

/// A parse failure with 1-based source line information.
struct ParseError {
  size_t Line = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Parses a full specification. On failure returns std::nullopt and fills
/// \p Err. All terms/formulas are allocated in \p Ctx.
std::optional<Specification> parseSpecification(const std::string &Source,
                                                Context &Ctx, ParseError &Err);

/// Parses a single formula against the declarations of \p Spec (used by
/// tests and by the assumption-injection plumbing).
const Formula *parseFormula(const std::string &Source,
                            const Specification &Spec, Context &Ctx,
                            ParseError &Err);

} // namespace temos

#endif // TEMOS_LOGIC_PARSER_H
