//===- logic/Parser.h - TSL-MT concrete syntax parser ----------*- C++ -*-===//
///
/// \file
/// Parser for the TSL-MT benchmark format. The syntax mirrors the
/// temos/tsltools specifications shown in the paper (Fig. 5), extended
/// with explicit signal/function declarations:
///
/// \code
///   #LIA#
///   inputs  { int task1; bool enq1; }
///   cells   { int vruntime1 = 0; }
///   outputs { int next_task; }
///   functions { opaque idle(); }
///   always assume { ... ; }
///   always guarantee {
///     [next_task <- task1] || [next_task <- task2];
///     G (vruntime1 < vruntime2 -> ! [next_task <- task2]);
///     lte x c10() -> [lfo <- False()] U gt x c10();
///   }
/// \endcode
///
/// Terms support both prefix application (`add lfoFreq c1()`, `lt x y`)
/// and infix sugar (`lfoFreq + 1`, `x < y`); both build the same AST.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_PARSER_H
#define TEMOS_LOGIC_PARSER_H

#include "logic/Specification.h"

#include <optional>
#include <string>

namespace temos {

/// A parse failure with 1-based source line/column information.
struct ParseError {
  size_t Line = 0;
  /// 1-based column of the offending token; 0 when unknown (kept for
  /// errors constructed before column tracking existed).
  size_t Column = 0;
  std::string Message;

  std::string str() const {
    std::string Out = "line " + std::to_string(Line);
    if (Column != 0)
      Out += ", col " + std::to_string(Column);
    return Out + ": " + Message;
  }
};

/// Value-or-diagnostic result of a parse: either the parsed value or a
/// ParseError, never both. Converts to bool (true = success); the value
/// is reached with * / -> / value(), the diagnostic with error().
///
/// This replaces the older out-parameter convention
/// (`parse...(Source, Ctx, ParseError &Err)`): the error can no longer
/// be silently ignored, and call sites need no pre-declared error slot.
template <typename T> class [[nodiscard]] ParseResult {
public:
  /*implicit*/ ParseResult(T Value) : Value(std::move(Value)) {}
  /*implicit*/ ParseResult(ParseError Err) : Err(std::move(Err)) {}

  explicit operator bool() const { return Value.has_value(); }
  bool ok() const { return Value.has_value(); }

  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }
  T &value() { return *Value; }
  const T &value() const { return *Value; }

  /// The value on success, \p Default on failure (handy for pointer
  /// results: `parseFormula(...).valueOr(nullptr)`).
  T valueOr(T Default) const { return Value ? *Value : std::move(Default); }

  /// The diagnostic; meaningful only when the parse failed.
  const ParseError &error() const { return Err; }

private:
  std::optional<T> Value;
  ParseError Err;
};

/// Parses a full specification. All terms/formulas are allocated in
/// \p Ctx.
ParseResult<Specification> parseSpecification(const std::string &Source,
                                              Context &Ctx);

/// Parses a single formula against the declarations of \p Spec (used by
/// tests and by the assumption-injection plumbing). The contained
/// pointer is never null on success.
ParseResult<const Formula *> parseFormula(const std::string &Source,
                                          const Specification &Spec,
                                          Context &Ctx);

} // namespace temos

#endif // TEMOS_LOGIC_PARSER_H
