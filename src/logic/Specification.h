//===- logic/Specification.h - TSL-MT specifications -----------*- C++ -*-===//
///
/// \file
/// A parsed TSL-MT specification: signal declarations (inputs, cells,
/// outputs), the background theory, and the assume/guarantee formula
/// lists. Mirrors the benchmark format used by temos/tsltools (the `#RA#`
/// header + `always guarantee { ... }` blocks of Fig. 5).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_SPECIFICATION_H
#define TEMOS_LOGIC_SPECIFICATION_H

#include "logic/Formula.h"

#include <optional>
#include <string>
#include <vector>

namespace temos {

/// Shared owner of the term/formula factories. Every pipeline stage
/// allocates into the same context so pointer identity is global.
struct Context {
  TermFactory Terms;
  FormulaFactory Formulas;
};

/// Declaration of an input or output signal.
struct SignalDecl {
  std::string Name;
  Sort S = Sort::Int;
};

/// Declaration of a cell: an internal signal that memorizes its value
/// across time steps ("cells are both input and output signals", Sec. 2).
struct CellDecl {
  std::string Name;
  Sort S = Sort::Int;
  /// Initial value; null means uninitialized (defaults per sort at run
  /// time: 0, 0.0, false).
  const Term *Init = nullptr;
};

/// Signature of a user-declared (uninterpreted or theory) function.
struct FunctionDecl {
  std::string Name;
  Sort Result = Sort::Int;
  std::vector<Sort> Params;
};

/// A TSL-MT specification.
class Specification {
public:
  std::string Name = "spec";
  Theory Th = Theory::LIA;

  std::vector<SignalDecl> Inputs;
  std::vector<CellDecl> Cells;
  std::vector<SignalDecl> Outputs;
  std::vector<FunctionDecl> Functions;

  /// Environment assumptions, each implicitly under G ("always assume").
  std::vector<const Formula *> Assumptions;
  /// System guarantees, each implicitly under G ("always guarantee").
  std::vector<const Formula *> AlwaysGuarantees;
  /// Guarantees that are NOT implicitly wrapped in G ("guarantee").
  std::vector<const Formula *> Guarantees;

  /// Looks up a declared input signal.
  const SignalDecl *findInput(const std::string &Name) const;
  /// Looks up a declared cell.
  const CellDecl *findCell(const std::string &Name) const;
  /// Looks up a declared output.
  const SignalDecl *findOutput(const std::string &Name) const;
  /// Sort of any declared signal; nullopt if undeclared.
  std::optional<Sort> signalSort(const std::string &Name) const;
  /// True if \p Name is a cell or output (an updatable signal).
  bool isUpdatable(const std::string &Name) const;

  /// The single formula phi = (G assume_1 && ...) ->
  ///   (G alwaysGuarantee_1 && ... && guarantee_1 && ...), built in \p Ctx.
  const Formula *toFormula(Context &Ctx) const;

  /// The conjunction of guarantees only (G-wrapped as appropriate).
  const Formula *guaranteeFormula(Context &Ctx) const;

  /// Renders the specification back to concrete syntax.
  std::string str() const;
};

} // namespace temos

#endif // TEMOS_LOGIC_SPECIFICATION_H
