//===- logic/Traversal.cpp - Formula traversals ----------------------------===//

#include "logic/Traversal.h"

#include <algorithm>
#include <unordered_set>

using namespace temos;

void temos::forEachNode(const Formula *F,
                        const std::function<void(const Formula *)> &Visit) {
  Visit(F);
  for (const Formula *Kid : F->children())
    forEachNode(Kid, Visit);
}

std::vector<const Term *> temos::collectPredicateTerms(const Formula *F) {
  std::vector<const Term *> Result;
  std::unordered_set<const Term *> Seen;
  forEachNode(F, [&](const Formula *Node) {
    if (Node->is(Formula::Kind::Pred) && Seen.insert(Node->pred()).second)
      Result.push_back(Node->pred());
  });
  return Result;
}

std::vector<const Formula *> temos::collectUpdateTerms(const Formula *F) {
  std::vector<const Formula *> Result;
  std::unordered_set<const Formula *> Seen;
  forEachNode(F, [&](const Formula *Node) {
    if (Node->is(Formula::Kind::Update) && Seen.insert(Node).second)
      Result.push_back(Node);
  });
  return Result;
}

namespace {

template <typename T, typename CollectFn>
std::vector<T> collectAcrossSpec(const Specification &Spec,
                                 CollectFn Collect) {
  std::vector<T> Result;
  auto Merge = [&](const std::vector<T> &Items) {
    for (const T &Item : Items)
      if (std::find(Result.begin(), Result.end(), Item) == Result.end())
        Result.push_back(Item);
  };
  for (const Formula *F : Spec.Assumptions)
    Merge(Collect(F));
  for (const Formula *F : Spec.AlwaysGuarantees)
    Merge(Collect(F));
  for (const Formula *F : Spec.Guarantees)
    Merge(Collect(F));
  return Result;
}

} // namespace

std::vector<const Term *>
temos::collectPredicateTerms(const Specification &Spec) {
  return collectAcrossSpec<const Term *>(Spec, [](const Formula *F) {
    return collectPredicateTerms(F);
  });
}

std::vector<const Formula *>
temos::collectUpdateTerms(const Specification &Spec) {
  return collectAcrossSpec<const Formula *>(Spec, [](const Formula *F) {
    return collectUpdateTerms(F);
  });
}

std::unordered_map<const Formula *, std::vector<const Formula *>>
temos::buildParentMap(const Formula *Root) {
  std::unordered_map<const Formula *, std::vector<const Formula *>> Parents;
  std::unordered_set<const Formula *> Visited;
  std::function<void(const Formula *)> Walk = [&](const Formula *Node) {
    if (!Visited.insert(Node).second)
      return;
    for (const Formula *Kid : Node->children()) {
      Parents[Kid].push_back(Node);
      Walk(Kid);
    }
  };
  Walk(Root);
  return Parents;
}
