//===- logic/Formula.cpp - TSL-MT formulas --------------------------------===//

#include "logic/Formula.h"

#include <algorithm>

using namespace temos;

namespace {

const char *operatorName(Formula::Kind K) {
  switch (K) {
  case Formula::Kind::And:
    return "&&";
  case Formula::Kind::Or:
    return "||";
  case Formula::Kind::Implies:
    return "->";
  case Formula::Kind::Iff:
    return "<->";
  case Formula::Kind::Until:
    return "U";
  case Formula::Kind::WeakUntil:
    return "W";
  case Formula::Kind::Release:
    return "R";
  default:
    return "?";
  }
}

} // namespace

std::string Formula::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::False:
    return "false";
  case Kind::Pred:
    return Atom->str();
  case Kind::Update:
    return "[" + Cell + " <- " + Atom->str() + "]";
  case Kind::Not:
    return "! " + Kids[0]->str();
  case Kind::Next:
    return "X " + Kids[0]->str();
  case Kind::Globally:
    return "G " + Kids[0]->str();
  case Kind::Finally:
    return "F " + Kids[0]->str();
  case Kind::And:
  case Kind::Or:
  case Kind::Implies:
  case Kind::Iff:
  case Kind::Until:
  case Kind::WeakUntil:
  case Kind::Release: {
    std::string Result = "(";
    for (size_t I = 0; I < Kids.size(); ++I) {
      if (I != 0)
        Result += std::string(" ") + operatorName(K) + " ";
      Result += Kids[I]->str();
    }
    return Result + ")";
  }
  }
  return "?";
}

size_t Formula::size() const {
  size_t Total = 1;
  for (const Formula *Kid : Kids)
    Total += Kid->size();
  return Total;
}

const Formula *FormulaFactory::intern(Formula::Kind K, const Term *Atom,
                                      const std::string &Cell,
                                      std::vector<const Formula *> Kids) {
  std::string Key;
  Key += static_cast<char>('A' + static_cast<int>(K));
  Key += std::to_string(reinterpret_cast<uintptr_t>(Atom));
  Key += '#';
  Key += Cell;
  for (const Formula *Kid : Kids) {
    Key += '@';
    Key += std::to_string(reinterpret_cast<uintptr_t>(Kid));
  }
  // Find-or-create must be atomic: two workers interning the same
  // structure concurrently must receive the same node (and id).
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Formulas.find(Key);
  if (It != Formulas.end())
    return It->second.get();
  auto Node =
      std::unique_ptr<Formula>(new Formula(K, Atom, Cell, std::move(Kids)));
  Node->Id = static_cast<unsigned>(Formulas.size());
  const Formula *Result = Node.get();
  Formulas.emplace(std::move(Key), std::move(Node));
  return Result;
}

const Formula *FormulaFactory::trueF() {
  return intern(Formula::Kind::True, nullptr, "", {});
}

const Formula *FormulaFactory::falseF() {
  return intern(Formula::Kind::False, nullptr, "", {});
}

const Formula *FormulaFactory::pred(const Term *P) {
  assert(P->sort() == Sort::Bool && "predicate atom must be Bool-sorted");
  return intern(Formula::Kind::Pred, P, "", {});
}

const Formula *FormulaFactory::update(const std::string &Cell,
                                      const Term *Value) {
  assert(!Cell.empty() && "update with empty cell name");
  return intern(Formula::Kind::Update, Value, Cell, {});
}

const Formula *FormulaFactory::notF(const Formula *F) {
  if (F->is(Formula::Kind::Not))
    return F->child(0);
  if (F->is(Formula::Kind::True))
    return falseF();
  if (F->is(Formula::Kind::False))
    return trueF();
  return intern(Formula::Kind::Not, nullptr, "", {F});
}

const Formula *FormulaFactory::andF(std::vector<const Formula *> Fs) {
  std::vector<const Formula *> Flat;
  for (const Formula *F : Fs) {
    if (F->is(Formula::Kind::False))
      return falseF();
    if (F->is(Formula::Kind::True))
      continue;
    if (F->is(Formula::Kind::And)) {
      Flat.insert(Flat.end(), F->children().begin(), F->children().end());
      continue;
    }
    Flat.push_back(F);
  }
  // Deduplicate while preserving order (hash-consing makes this cheap).
  std::vector<const Formula *> Unique;
  for (const Formula *F : Flat)
    if (std::find(Unique.begin(), Unique.end(), F) == Unique.end())
      Unique.push_back(F);
  if (Unique.empty())
    return trueF();
  if (Unique.size() == 1)
    return Unique[0];
  return intern(Formula::Kind::And, nullptr, "", std::move(Unique));
}

const Formula *FormulaFactory::orF(std::vector<const Formula *> Fs) {
  std::vector<const Formula *> Flat;
  for (const Formula *F : Fs) {
    if (F->is(Formula::Kind::True))
      return trueF();
    if (F->is(Formula::Kind::False))
      continue;
    if (F->is(Formula::Kind::Or)) {
      Flat.insert(Flat.end(), F->children().begin(), F->children().end());
      continue;
    }
    Flat.push_back(F);
  }
  std::vector<const Formula *> Unique;
  for (const Formula *F : Flat)
    if (std::find(Unique.begin(), Unique.end(), F) == Unique.end())
      Unique.push_back(F);
  if (Unique.empty())
    return falseF();
  if (Unique.size() == 1)
    return Unique[0];
  return intern(Formula::Kind::Or, nullptr, "", std::move(Unique));
}

const Formula *FormulaFactory::implies(const Formula *A, const Formula *B) {
  if (A->is(Formula::Kind::True))
    return B;
  if (A->is(Formula::Kind::False))
    return trueF();
  return intern(Formula::Kind::Implies, nullptr, "", {A, B});
}

const Formula *FormulaFactory::iff(const Formula *A, const Formula *B) {
  return intern(Formula::Kind::Iff, nullptr, "", {A, B});
}

const Formula *FormulaFactory::next(const Formula *F) {
  if (F->is(Formula::Kind::True) || F->is(Formula::Kind::False))
    return F;
  return intern(Formula::Kind::Next, nullptr, "", {F});
}

const Formula *FormulaFactory::nextN(const Formula *F, unsigned N) {
  const Formula *Result = F;
  for (unsigned I = 0; I < N; ++I)
    Result = next(Result);
  return Result;
}

const Formula *FormulaFactory::globally(const Formula *F) {
  if (F->is(Formula::Kind::True) || F->is(Formula::Kind::False))
    return F;
  if (F->is(Formula::Kind::Globally))
    return F;
  return intern(Formula::Kind::Globally, nullptr, "", {F});
}

const Formula *FormulaFactory::finallyF(const Formula *F) {
  if (F->is(Formula::Kind::True) || F->is(Formula::Kind::False))
    return F;
  if (F->is(Formula::Kind::Finally))
    return F;
  return intern(Formula::Kind::Finally, nullptr, "", {F});
}

const Formula *FormulaFactory::until(const Formula *A, const Formula *B) {
  if (A->is(Formula::Kind::True))
    return finallyF(B);
  return intern(Formula::Kind::Until, nullptr, "", {A, B});
}

const Formula *FormulaFactory::weakUntil(const Formula *A, const Formula *B) {
  return intern(Formula::Kind::WeakUntil, nullptr, "", {A, B});
}

const Formula *FormulaFactory::release(const Formula *A, const Formula *B) {
  if (A->is(Formula::Kind::False))
    return globally(B);
  return intern(Formula::Kind::Release, nullptr, "", {A, B});
}

const Formula *FormulaFactory::toNNF(const Formula *F) {
  return nnf(F, /*Negated=*/false);
}

const Formula *FormulaFactory::nnf(const Formula *F, bool Negated) {
  auto &Cache = NNFCache[Negated ? 1 : 0];
  {
    std::lock_guard<std::mutex> Lock(NNFMutex);
    if (auto It = Cache.find(F); It != Cache.end())
      return It->second;
  }

  const Formula *Result = nullptr;
  switch (F->kind()) {
  case Formula::Kind::True:
    Result = Negated ? falseF() : trueF();
    break;
  case Formula::Kind::False:
    Result = Negated ? trueF() : falseF();
    break;
  case Formula::Kind::Pred:
  case Formula::Kind::Update:
    Result = Negated ? notF(F) : F;
    break;
  case Formula::Kind::Not:
    Result = nnf(F->child(0), !Negated);
    break;
  case Formula::Kind::And:
  case Formula::Kind::Or: {
    std::vector<const Formula *> Kids;
    Kids.reserve(F->children().size());
    for (const Formula *Kid : F->children())
      Kids.push_back(nnf(Kid, Negated));
    bool MakeAnd = (F->kind() == Formula::Kind::And) != Negated;
    Result = MakeAnd ? andF(std::move(Kids)) : orF(std::move(Kids));
    break;
  }
  case Formula::Kind::Implies: {
    // a -> b === !a || b.
    const Formula *A = nnf(F->lhs(), !Negated);
    const Formula *B = nnf(F->rhs(), Negated);
    Result = Negated ? andF({nnf(F->lhs(), false), B}) : orF({A, B});
    break;
  }
  case Formula::Kind::Iff: {
    // a <-> b === (a && b) || (!a && !b); negated: (a && !b) || (!a && b).
    const Formula *A = nnf(F->lhs(), false);
    const Formula *NA = nnf(F->lhs(), true);
    const Formula *B = nnf(F->rhs(), false);
    const Formula *NB = nnf(F->rhs(), true);
    if (Negated)
      Result = orF(andF(A, NB), andF(NA, B));
    else
      Result = orF(andF(A, B), andF(NA, NB));
    break;
  }
  case Formula::Kind::Next:
    Result = next(nnf(F->child(0), Negated));
    break;
  case Formula::Kind::Globally:
    Result = Negated ? finallyF(nnf(F->child(0), true))
                     : globally(nnf(F->child(0), false));
    break;
  case Formula::Kind::Finally:
    Result = Negated ? globally(nnf(F->child(0), true))
                     : finallyF(nnf(F->child(0), false));
    break;
  case Formula::Kind::Until: {
    const Formula *A = nnf(F->lhs(), Negated);
    const Formula *B = nnf(F->rhs(), Negated);
    // !(a U b) === !a R !b.
    Result = Negated ? release(A, B) : until(A, B);
    break;
  }
  case Formula::Kind::Release: {
    const Formula *A = nnf(F->lhs(), Negated);
    const Formula *B = nnf(F->rhs(), Negated);
    // !(a R b) === !a U !b.
    Result = Negated ? until(A, B) : release(A, B);
    break;
  }
  case Formula::Kind::WeakUntil: {
    if (!Negated) {
      Result = weakUntil(nnf(F->lhs(), false), nnf(F->rhs(), false));
    } else {
      // !(a W b) === !(a U b || G a) === (!a R !b) && F !a
      //          === !b U (!a && !b).
      const Formula *NA = nnf(F->lhs(), true);
      const Formula *NB = nnf(F->rhs(), true);
      Result = until(NB, andF(NA, NB));
    }
    break;
  }
  }

  assert(Result && "NNF produced no result");
  // Concurrent workers may race to fill the same entry; both computed
  // the same hash-consed node, so emplace's first-wins is benign.
  std::lock_guard<std::mutex> Lock(NNFMutex);
  Cache.emplace(F, Result);
  return Result;
}

