//===- logic/Simplify.cpp - Temporal formula simplification ----------------===//

#include "logic/Simplify.h"

using namespace temos;

const Formula *temos::simplify(const Formula *F, FormulaFactory &FF) {
  switch (F->kind()) {
  case Formula::Kind::True:
  case Formula::Kind::False:
  case Formula::Kind::Pred:
  case Formula::Kind::Update:
    return F;

  case Formula::Kind::Not:
    return FF.notF(simplify(F->child(0), FF));

  case Formula::Kind::And: {
    std::vector<const Formula *> Kids;
    for (const Formula *Kid : F->children())
      Kids.push_back(simplify(Kid, FF));
    return FF.andF(std::move(Kids));
  }
  case Formula::Kind::Or: {
    std::vector<const Formula *> Kids;
    for (const Formula *Kid : F->children())
      Kids.push_back(simplify(Kid, FF));
    return FF.orF(std::move(Kids));
  }
  case Formula::Kind::Implies:
    return FF.implies(simplify(F->lhs(), FF), simplify(F->rhs(), FF));
  case Formula::Kind::Iff:
    return FF.iff(simplify(F->lhs(), FF), simplify(F->rhs(), FF));

  case Formula::Kind::Next: {
    const Formula *Kid = simplify(F->child(0), FF);
    // X distributes over both conjunction and disjunction.
    if (Kid->is(Formula::Kind::And) || Kid->is(Formula::Kind::Or)) {
      std::vector<const Formula *> Parts;
      for (const Formula *Inner : Kid->children())
        Parts.push_back(FF.next(Inner));
      return Kid->is(Formula::Kind::And) ? FF.andF(std::move(Parts))
                                         : FF.orF(std::move(Parts));
    }
    return FF.next(Kid);
  }

  case Formula::Kind::Globally: {
    const Formula *Kid = simplify(F->child(0), FF);
    // G G f = G f (factory handles); G (f && g) = G f && G g.
    if (Kid->is(Formula::Kind::And)) {
      std::vector<const Formula *> Parts;
      for (const Formula *Inner : Kid->children())
        Parts.push_back(FF.globally(Inner));
      return FF.andF(std::move(Parts));
    }
    // G F G f = F G f? (true but rare) -- skipped.
    return FF.globally(Kid);
  }

  case Formula::Kind::Finally: {
    const Formula *Kid = simplify(F->child(0), FF);
    // F (f || g) = F f || F g.
    if (Kid->is(Formula::Kind::Or)) {
      std::vector<const Formula *> Parts;
      for (const Formula *Inner : Kid->children())
        Parts.push_back(FF.finallyF(Inner));
      return FF.orF(std::move(Parts));
    }
    return FF.finallyF(Kid);
  }

  case Formula::Kind::Until: {
    const Formula *A = simplify(F->lhs(), FF);
    const Formula *B = simplify(F->rhs(), FF);
    // f U (f U g) = f U g.
    if (B->is(Formula::Kind::Until) && B->lhs() == A)
      return B;
    // false U g = g is NOT an identity (it is g itself at step 0): it IS:
    // false U g requires g now. The factory already folds true U g = F g.
    if (A->is(Formula::Kind::False))
      return B;
    return FF.until(A, B);
  }
  case Formula::Kind::WeakUntil: {
    const Formula *A = simplify(F->lhs(), FF);
    const Formula *B = simplify(F->rhs(), FF);
    // true W g = true; f W true = true.
    if (A->is(Formula::Kind::True) || B->is(Formula::Kind::True))
      return FF.trueF();
    // false W g = g.
    if (A->is(Formula::Kind::False))
      return B;
    // f W false = G f.
    if (B->is(Formula::Kind::False))
      return FF.globally(A);
    return FF.weakUntil(A, B);
  }
  case Formula::Kind::Release: {
    const Formula *A = simplify(F->lhs(), FF);
    const Formula *B = simplify(F->rhs(), FF);
    // true R g = g.
    if (A->is(Formula::Kind::True))
      return B;
    // f R (f R g) = f R g.
    if (B->is(Formula::Kind::Release) && B->lhs() == A)
      return B;
    return FF.release(A, B);
  }
  }
  return F;
}
