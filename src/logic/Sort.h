//===- logic/Sort.h - Signal and term sorts --------------------*- C++ -*-===//
///
/// \file
/// Sorts for TSL-MT signals and terms. TSL-MT formulas are built over a
/// first-order theory (Sec. 3.2/3.3 of the paper); we support the theory
/// of Linear Integer Arithmetic (Int), Linear Real Arithmetic (Real),
/// booleans, and uninterpreted sorts (Opaque) for data that is moved
/// around but never computed on (task ids, MIDI notes, ...).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_LOGIC_SORT_H
#define TEMOS_LOGIC_SORT_H

#include <string>

namespace temos {

/// The sort of a signal or term.
enum class Sort {
  Bool,
  Int,
  Real,
  /// An uninterpreted sort: values can be stored, moved and compared for
  /// equality but have no arithmetic.
  Opaque,
};

/// Printable name of \p S ("bool", "int", "real", "opaque").
inline const char *sortName(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "int";
  case Sort::Real:
    return "real";
  case Sort::Opaque:
    return "opaque";
  }
  return "?";
}

/// Parses a sort keyword; returns false if \p Name is not a sort.
inline bool parseSort(const std::string &Name, Sort &Out) {
  if (Name == "bool") {
    Out = Sort::Bool;
    return true;
  }
  if (Name == "int") {
    Out = Sort::Int;
    return true;
  }
  if (Name == "real") {
    Out = Sort::Real;
    return true;
  }
  if (Name == "opaque") {
    Out = Sort::Opaque;
    return true;
  }
  return false;
}

/// The background first-order theory of a TSL-MT specification.
/// TSL proper is the special case Theory::UF (Sec. 3.3).
enum class Theory {
  /// Theory of uninterpreted functions: plain TSL.
  UF,
  /// Linear integer arithmetic (#LIA# in the benchmark headers).
  LIA,
  /// Linear real arithmetic (#RA# in the benchmark headers, e.g. Fig. 5).
  LRA,
};

inline const char *theoryName(Theory T) {
  switch (T) {
  case Theory::UF:
    return "UF";
  case Theory::LIA:
    return "LIA";
  case Theory::LRA:
    return "RA";
  }
  return "?";
}

} // namespace temos

#endif // TEMOS_LOGIC_SORT_H
