//===- automata/Tableau.cpp - LTL tableau construction ---------------------===//

#include "automata/Tableau.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace temos;

namespace {

/// A set of formulas ordered by stable id (deterministic across runs).
using FormulaSet = std::vector<const Formula *>;

FormulaSet canonicalize(std::set<const Formula *> Set) {
  FormulaSet Result(Set.begin(), Set.end());
  std::sort(Result.begin(), Result.end(),
            [](const Formula *A, const Formula *B) { return A->id() < B->id(); });
  return Result;
}

std::string setKey(const FormulaSet &Set) {
  std::string Key;
  for (const Formula *F : Set) {
    Key += std::to_string(F->id());
    Key += ',';
  }
  return Key;
}

/// One disjunct of the expansion of a formula set.
struct Branch {
  /// Atoms required now: (atom, polarity).
  std::vector<std::pair<const Formula *, bool>> Literals;
  /// Obligations for the next step.
  std::set<const Formula *> Next;
  /// Until/Finally formulas this branch defers (postpones satisfying).
  /// Kept as formulas rather than acceptance-set bits so an expansion is
  /// meaningful under any top-level formula's acceptance numbering.
  std::vector<const Formula *> Deferred;
};

/// Recursive expansion of a formula worklist into branches. Expansion
/// depends only on the state set itself, never on the surrounding
/// automaton, which is what makes its results cacheable across builds.
class Expander {
public:
  std::vector<Branch> expand(const FormulaSet &State) {
    Branches.clear();
    Branch Initial;
    std::vector<const Formula *> Worklist(State.rbegin(), State.rend());
    std::set<const Formula *> Processed;
    expandRec(Worklist, Processed, Initial);
    return std::move(Branches);
  }

private:
  void expandRec(std::vector<const Formula *> Worklist,
                 std::set<const Formula *> Processed, Branch Current) {
    while (!Worklist.empty()) {
      const Formula *F = Worklist.back();
      Worklist.pop_back();
      if (Processed.count(F))
        continue;
      Processed.insert(F);

      switch (F->kind()) {
      case Formula::Kind::True:
        continue;
      case Formula::Kind::False:
        return; // Dead branch.
      case Formula::Kind::Pred:
      case Formula::Kind::Update:
        if (conflicts(Current, F, true))
          return; // Contradictory branch: prune the whole subtree.
        Current.Literals.emplace_back(F, true);
        continue;
      case Formula::Kind::Not:
        assert(F->child(0)->isAtom() && "tableau input must be in NNF");
        if (conflicts(Current, F->child(0), false))
          return;
        Current.Literals.emplace_back(F->child(0), false);
        continue;
      case Formula::Kind::And:
        for (const Formula *Kid : F->children())
          Worklist.push_back(Kid);
        continue;
      case Formula::Kind::Or: {
        // Branch per disjunct.
        for (const Formula *Kid : F->children()) {
          std::vector<const Formula *> Sub = Worklist;
          Sub.push_back(Kid);
          expandRec(std::move(Sub), Processed, Current);
        }
        return;
      }
      case Formula::Kind::Next:
        Current.Next.insert(F->child(0));
        continue;
      case Formula::Kind::Globally: {
        // G f == f && X G f.
        Worklist.push_back(F->child(0));
        Current.Next.insert(F);
        continue;
      }
      case Formula::Kind::Finally: {
        // F f == f || X F f; the second branch defers.
        {
          std::vector<const Formula *> Sub = Worklist;
          Sub.push_back(F->child(0));
          expandRec(std::move(Sub), Processed, Current);
        }
        Branch Deferred = Current;
        Deferred.Deferred.push_back(F);
        Deferred.Next.insert(F);
        expandRec(std::move(Worklist), std::move(Processed),
                  std::move(Deferred));
        return;
      }
      case Formula::Kind::Until: {
        // a U b == b || (a && X(a U b)); the second branch defers.
        {
          std::vector<const Formula *> Sub = Worklist;
          Sub.push_back(F->rhs());
          expandRec(std::move(Sub), Processed, Current);
        }
        Branch Deferred = Current;
        Deferred.Deferred.push_back(F);
        Deferred.Next.insert(F);
        Worklist.push_back(F->lhs());
        expandRec(std::move(Worklist), std::move(Processed),
                  std::move(Deferred));
        return;
      }
      case Formula::Kind::WeakUntil: {
        // a W b == b || (a && X(a W b)); no acceptance obligation.
        {
          std::vector<const Formula *> Sub = Worklist;
          Sub.push_back(F->rhs());
          expandRec(std::move(Sub), Processed, Current);
        }
        Branch Deferred = Current;
        Deferred.Next.insert(F);
        Worklist.push_back(F->lhs());
        expandRec(std::move(Worklist), std::move(Processed),
                  std::move(Deferred));
        return;
      }
      case Formula::Kind::Release: {
        // a R b == (a && b) || (b && X(a R b)); no acceptance obligation.
        {
          std::vector<const Formula *> Sub = Worklist;
          Sub.push_back(F->lhs());
          Sub.push_back(F->rhs());
          expandRec(std::move(Sub), Processed, Current);
        }
        Branch Deferred = Current;
        Deferred.Next.insert(F);
        Worklist.push_back(F->rhs());
        expandRec(std::move(Worklist), std::move(Processed),
                  std::move(Deferred));
        return;
      }
      case Formula::Kind::Implies:
      case Formula::Kind::Iff:
        assert(false && "tableau input must be in NNF");
        return;
      }
    }
    Branches.push_back(std::move(Current));
  }

  /// Early contradiction detection: pruning at literal-insertion time
  /// avoids expanding the exponentially many dead branches of large
  /// assumption conjunctions.
  bool conflicts(const Branch &Current, const Formula *Atom,
                 bool Positive) const {
    for (const auto &[Existing, ExistingPositive] : Current.Literals) {
      if (Existing == Atom && ExistingPositive != Positive)
        return true;
      // Two different positive updates of the same cell can never fire
      // together (exactly-one semantics).
      if (Positive && ExistingPositive && Atom->is(Formula::Kind::Update) &&
          Existing->is(Formula::Kind::Update) && Existing != Atom &&
          Existing->cell() == Atom->cell())
        return true;
    }
    return false;
  }

  std::vector<Branch> Branches;
};

/// Compiles a branch's literal set into a letter guard. Returns false if
/// the literals are contradictory (the branch is dropped).
bool compileGuard(const std::vector<std::pair<const Formula *, bool>> &Literals,
                  const Alphabet &AB, LetterConstraint &Out) {
  // Per-cell positive choice, if any.
  std::map<int, int> PositiveChoice;
  std::set<std::pair<int, int>> NegativeChoices;

  for (const auto &[Atom, Positive] : Literals) {
    if (Atom->is(Formula::Kind::Pred)) {
      int I = AB.predicateIndex(Atom->pred());
      assert(I >= 0 && "predicate not registered in alphabet");
      uint32_t Bit = uint32_t(1) << I;
      uint32_t Want = Positive ? Bit : 0;
      if ((Out.InputCare & Bit) && (Out.InputValue & Bit) != Want)
        return false;
      Out.InputCare |= Bit;
      Out.InputValue |= Want;
      continue;
    }
    auto [Cell, Option] = AB.updateIndex(Atom);
    assert(Cell >= 0 && "update cell not registered in alphabet");
    if (Option < 0) {
      // The update term is not an available option: a positive literal
      // can never fire; a negative one always holds.
      if (Positive)
        return false;
      continue;
    }
    if (Positive) {
      auto It = PositiveChoice.find(Cell);
      if (It != PositiveChoice.end() && It->second != Option)
        return false; // Two different updates of one cell.
      if (NegativeChoices.count({Cell, Option}))
        return false;
      PositiveChoice[Cell] = Option;
    } else {
      if (PositiveChoice.count(Cell) && PositiveChoice[Cell] == Option)
        return false;
      NegativeChoices.insert({Cell, Option});
    }
  }

  // A cell with every option forbidden is unsatisfiable.
  std::map<int, int> ForbiddenPerCell;
  for (const auto &[Cell, Option] : NegativeChoices) {
    (void)Option;
    ++ForbiddenPerCell[Cell];
  }
  for (const auto &[Cell, Count] : ForbiddenPerCell) {
    if (PositiveChoice.count(Cell))
      continue;
    if (static_cast<size_t>(Count) >= AB.cells()[Cell].Options.size())
      return false;
  }

  for (const auto &[Cell, Option] : PositiveChoice)
    Out.Updates.push_back({static_cast<uint16_t>(Cell),
                           static_cast<uint16_t>(Option), true});
  for (const auto &[Cell, Option] : NegativeChoices) {
    if (PositiveChoice.count(Cell))
      continue; // Implied by the positive requirement.
    Out.Updates.push_back({static_cast<uint16_t>(Cell),
                           static_cast<uint16_t>(Option), false});
  }
  return true;
}

/// Collects Until/Finally subformulas (the generalized acceptance sets).
void collectAcceptanceFormulas(const Formula *F,
                               std::vector<const Formula *> &Out,
                               std::set<const Formula *> &Seen) {
  if (!Seen.insert(F).second)
    return;
  if (F->is(Formula::Kind::Until) || F->is(Formula::Kind::Finally))
    if (std::find(Out.begin(), Out.end(), F) == Out.end())
      Out.push_back(F);
  for (const Formula *Kid : F->children())
    collectAcceptanceFormulas(Kid, Out, Seen);
}

/// The cacheable unit of per-state work: a branch with its guard already
/// compiled (contradictory guards dropped) and its successor obligation
/// set canonicalized. Everything here is independent of the top-level
/// formula and of state numbering.
struct CompiledBranch {
  LetterConstraint Guard;
  FormulaSet Next;
  std::vector<const Formula *> Deferred;
};

} // namespace

struct TableauCache::Impl {
  /// Keeps the memo from growing without bound on open-ended workloads;
  /// comfortably above the working set of the bundled benchmarks. Hit
  /// once, the whole map is dropped (deterministic, and far simpler
  /// than LRU for entries that are cheap to recompute).
  static constexpr size_t MaxEntries = size_t(1) << 16;

  std::unordered_map<std::string, std::vector<CompiledBranch>> Expansions;
  size_t Hits = 0;
  size_t Misses = 0;
};

TableauCache::TableauCache() : I(new Impl) {}
TableauCache::~TableauCache() = default;
size_t TableauCache::hits() const { return I->Hits; }
size_t TableauCache::misses() const { return I->Misses; }
size_t TableauCache::size() const { return I->Expansions.size(); }
void TableauCache::clear() {
  I->Expansions.clear();
  I->Hits = I->Misses = 0;
}

Nba temos::buildNba(const Formula *F, Context &Ctx, const Alphabet &AB,
                    TableauStats *Stats, const TableauLimits &Limits,
                    TableauCache *Cache) {
  const Formula *Nnf = Ctx.Formulas.toNNF(F);

  std::vector<const Formula *> AcceptanceFormulas;
  {
    std::set<const Formula *> Seen;
    collectAcceptanceFormulas(Nnf, AcceptanceFormulas, Seen);
  }
  const size_t K = AcceptanceFormulas.size();
  assert(K <= 64 && "too many acceptance sets");

  // Position of a deferred formula in this build's acceptance numbering.
  // Cached expansions may come from a different top-level formula, but a
  // deferred formula is always a subformula of its state set and the
  // state set is in the current formula's closure, so the lookup finds
  // it whenever the acceptance machinery needs it.
  auto acceptanceIndex = [&](const Formula *G) {
    for (size_t I = 0; I < AcceptanceFormulas.size(); ++I)
      if (AcceptanceFormulas[I] == G)
        return static_cast<int>(I);
    return -1;
  };

  Expander Exp;

  // Generalized automaton: states are obligation sets; expansion is
  // memoized per state.
  struct GeneralizedTransition {
    LetterConstraint Guard;
    uint32_t Target = 0;
    uint64_t DeferMask = 0;
  };
  std::unordered_map<std::string, uint32_t> StateIds;
  std::vector<FormulaSet> StateSets;
  std::vector<std::vector<GeneralizedTransition>> Transitions;

  auto GetState = [&](const FormulaSet &Set) {
    std::string Key = setKey(Set);
    auto It = StateIds.find(Key);
    if (It != StateIds.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(StateSets.size());
    StateIds.emplace(std::move(Key), Id);
    StateSets.push_back(Set);
    Transitions.emplace_back();
    return Id;
  };

  // Key for duplicate-transition suppression: expansion of large
  // conjunctions produces many branches that compile to the same
  // (guard, target, defer) triple.
  auto TransitionKey = [](const LetterConstraint &G, uint32_t Target,
                          uint64_t Defer) {
    std::string Key = std::to_string(G.InputCare) + "/" +
                      std::to_string(G.InputValue) + "/";
    for (const LetterConstraint::UpdateReq &R : G.Updates)
      Key += std::to_string(R.Cell) + ":" + std::to_string(R.Option) +
             (R.Positive ? "+" : "-") + ",";
    Key += "@" + std::to_string(Target) + "#" + std::to_string(Defer);
    return Key;
  };

  // Expansion + guard compilation for one state, cache-aware. The
  // returned reference points into the cache (stable: entries are never
  // mutated after insertion) or into Scratch for uncached builds.
  const std::string SigKey = Cache ? AB.signatureKey() : std::string();
  std::vector<CompiledBranch> Scratch;
  auto ExpandCompiled =
      [&](const FormulaSet &Set) -> const std::vector<CompiledBranch> & {
    std::string Key;
    if (Cache) {
      Key = SigKey + "|" + setKey(Set);
      auto It = Cache->I->Expansions.find(Key);
      if (It != Cache->I->Expansions.end()) {
        ++Cache->I->Hits;
        return It->second;
      }
      ++Cache->I->Misses;
    }
    Scratch.clear();
    for (Branch &B : Exp.expand(Set)) {
      LetterConstraint Guard;
      if (!compileGuard(B.Literals, AB, Guard))
        continue;
      Scratch.push_back({std::move(Guard), canonicalize(std::move(B.Next)),
                         std::move(B.Deferred)});
    }
    if (!Cache)
      return Scratch;
    if (Cache->I->Expansions.size() >= TableauCache::Impl::MaxEntries)
      Cache->I->Expansions.clear();
    return Cache->I->Expansions.emplace(std::move(Key), std::move(Scratch))
        .first->second;
  };

  uint32_t InitialGen = GetState(canonicalize({Nnf}));
  size_t TotalTransitions = 0;
  for (uint32_t S = 0; S < StateSets.size(); ++S) {
    if (StateSets.size() > Limits.MaxGeneralizedStates ||
        TotalTransitions > Limits.MaxTransitions) {
      if (Stats)
        Stats->BudgetExceeded = true;
      return Nba();
    }
    if (Limits.Dl.expired()) {
      if (Stats) {
        Stats->BudgetExceeded = true;
        Stats->TimedOut = true;
      }
      return Nba();
    }
    const std::vector<CompiledBranch> &Branches = ExpandCompiled(StateSets[S]);
    std::set<std::string> Seen;
    for (const CompiledBranch &B : Branches) {
      uint64_t DeferMask = 0;
      for (const Formula *D : B.Deferred)
        if (int Acc = acceptanceIndex(D); Acc >= 0)
          DeferMask |= uint64_t(1) << Acc;
      uint32_t Target = GetState(B.Next);
      if (!Seen.insert(TransitionKey(B.Guard, Target, DeferMask)).second)
        continue;
      Transitions[S].push_back({B.Guard, Target, DeferMask});
      ++TotalTransitions;
    }
  }

  if (Stats) {
    Stats->GeneralizedStates = StateSets.size();
    Stats->AcceptanceSets = K;
  }

  // Degeneralize: NBA state = (generalized state, level). From level j,
  // the level advances past every acceptance set satisfied in order; a
  // transition that completes the round is Buechi-accepting.
  Nba Result;
  std::map<std::pair<uint32_t, unsigned>, uint32_t> NbaIds;
  std::vector<std::pair<uint32_t, unsigned>> Pending;
  auto GetNbaState = [&](uint32_t Gen, unsigned Level) {
    auto Key = std::make_pair(Gen, Level);
    auto It = NbaIds.find(Key);
    if (It != NbaIds.end())
      return It->second;
    uint32_t Id = Result.addState();
    NbaIds.emplace(Key, Id);
    Pending.push_back(Key);
    return Id;
  };

  uint32_t InitialNba = GetNbaState(InitialGen, 0);
  Result.setInitial(InitialNba);
  size_t TransitionCount = 0;
  while (!Pending.empty()) {
    if (Limits.Dl.expired()) {
      if (Stats) {
        Stats->BudgetExceeded = true;
        Stats->TimedOut = true;
      }
      return Nba();
    }
    auto [Gen, Level] = Pending.back();
    Pending.pop_back();
    uint32_t From = NbaIds.at({Gen, Level});
    for (const GeneralizedTransition &T : Transitions[Gen]) {
      unsigned NewLevel = Level;
      // Acceptance set i is satisfied by transitions that do NOT defer
      // formula i.
      while (NewLevel < K && !(T.DeferMask & (uint64_t(1) << NewLevel)))
        ++NewLevel;
      bool Accepting = NewLevel == K;
      if (Accepting)
        NewLevel = 0;
      uint32_t To = GetNbaState(T.Target, NewLevel);
      Result.addTransition(From, {T.Guard, To, Accepting});
      ++TransitionCount;
      if (TransitionCount > Limits.MaxTransitions) {
        if (Stats)
          Stats->BudgetExceeded = true;
        return Nba();
      }
    }
  }

  if (Stats) {
    Stats->NbaStates = Result.stateCount();
    Stats->NbaTransitions = TransitionCount;
  }
  return Result;
}

bool temos::isSatisfiable(const Formula *F, Context &Ctx, const Alphabet &AB) {
  Nba A = buildNba(F, Ctx, AB);
  return A.isNonEmpty(AB);
}
