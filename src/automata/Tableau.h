//===- automata/Tableau.h - LTL tableau construction -----------*- C++ -*-===//
///
/// \file
/// On-the-fly tableau construction from (underapproximated) TSL formulas
/// to nondeterministic Buechi automata, standing in for the
/// tsltools+Strix pipeline of the paper's implementation (Sec. 5.1).
///
/// The construction follows the classic expansion-law scheme (Gerth et
/// al. / Couvreur style): a state is the set of formulas that must hold
/// now; expansion rewrites it into branches of (literals, next-state
/// obligations); each Until/Finally subformula contributes one
/// generalized acceptance set containing the transitions that do not
/// defer it. The generalized automaton is then degeneralized with the
/// usual level counter into a single transition-based Buechi condition.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_AUTOMATA_TABLEAU_H
#define TEMOS_AUTOMATA_TABLEAU_H

#include "automata/Nba.h"
#include "logic/Specification.h"

namespace temos {

/// Statistics of one construction.
struct TableauStats {
  size_t GeneralizedStates = 0;
  size_t AcceptanceSets = 0;
  size_t NbaStates = 0;
  size_t NbaTransitions = 0;
  /// Construction aborted because a resource budget was exceeded; the
  /// returned automaton is unusable and callers must report Unknown.
  bool BudgetExceeded = false;
};

/// Resource budgets for the construction (exceeded -> BudgetExceeded).
struct TableauLimits {
  size_t MaxGeneralizedStates = 20000;
  size_t MaxTransitions = 2000000;
};

/// Builds the NBA of \p F (converted to NNF internally) over \p AB.
/// Every predicate and update atom of \p F must be registered in the
/// alphabet.
Nba buildNba(const Formula *F, Context &Ctx, const Alphabet &AB,
             TableauStats *Stats = nullptr,
             const TableauLimits &Limits = {});

/// LTL satisfiability of \p F under the underapproximation: does some
/// trace (sequence of letters) satisfy it? Used by the refinement loop's
/// CHECK-SAT (Alg. 4) and by tests.
bool isSatisfiable(const Formula *F, Context &Ctx, const Alphabet &AB);

} // namespace temos

#endif // TEMOS_AUTOMATA_TABLEAU_H
