//===- automata/Tableau.h - LTL tableau construction -----------*- C++ -*-===//
///
/// \file
/// On-the-fly tableau construction from (underapproximated) TSL formulas
/// to nondeterministic Buechi automata, standing in for the
/// tsltools+Strix pipeline of the paper's implementation (Sec. 5.1).
///
/// The construction follows the classic expansion-law scheme (Gerth et
/// al. / Couvreur style): a state is the set of formulas that must hold
/// now; expansion rewrites it into branches of (literals, next-state
/// obligations); each Until/Finally subformula contributes one
/// generalized acceptance set containing the transitions that do not
/// defer it. The generalized automaton is then degeneralized with the
/// usual level counter into a single transition-based Buechi condition.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_AUTOMATA_TABLEAU_H
#define TEMOS_AUTOMATA_TABLEAU_H

#include "automata/Nba.h"
#include "logic/Specification.h"
#include "support/Deadline.h"

#include <memory>

namespace temos {

/// Statistics of one construction.
struct TableauStats {
  size_t GeneralizedStates = 0;
  size_t AcceptanceSets = 0;
  size_t NbaStates = 0;
  size_t NbaTransitions = 0;
  /// Construction aborted because a resource budget was exceeded; the
  /// returned automaton is unusable and callers must report Unknown.
  bool BudgetExceeded = false;
  /// The budget that tripped was the cooperative deadline (wall clock),
  /// not a state/transition count. Only meaningful with BudgetExceeded.
  bool TimedOut = false;
};

/// Resource budgets for the construction (exceeded -> BudgetExceeded).
struct TableauLimits {
  size_t MaxGeneralizedStates = 20000;
  size_t MaxTransitions = 2000000;
  /// Cooperative deadline polled once per expanded state and per
  /// degeneralization wave. NOT part of the construction's identity:
  /// cache keys (the engine's limitsKey) cover only the numeric budgets
  /// above, which is sound because a deadline can only abort a build
  /// (never-cached) -- it cannot change a completed automaton.
  Deadline Dl;
};

class TableauCache;

/// Builds the NBA of \p F (converted to NNF internally) over \p AB.
/// Every predicate and update atom of \p F must be registered in the
/// alphabet. With a non-null \p Cache, per-state expansions are served
/// from / recorded into the cache (see TableauCache).
Nba buildNba(const Formula *F, Context &Ctx, const Alphabet &AB,
             TableauStats *Stats = nullptr,
             const TableauLimits &Limits = {},
             TableauCache *Cache = nullptr);

/// Cross-build memo for the tableau's per-state expansion work.
///
/// A tableau state (a set of obligations) expands to the same compiled
/// branches — guard, successor obligation set, deferred
/// acceptance formulas — regardless of the *top-level* formula being
/// translated, because expansion only ever looks at the state set
/// itself. Keys combine the alphabet signature (guards compile against
/// concrete bit/choice indices) with the state's formula-id key, so a
/// refinement round that conjoins one new assumption onto an otherwise
/// unchanged specification replays the expansion of every shared state
/// instead of re-deriving it.
///
/// The cache is tied to one Context (formula ids are interning indices):
/// never share an instance across Contexts. Not thread-safe; the
/// synthesis engine uses it from the construction thread only.
class TableauCache {
public:
  TableauCache();
  ~TableauCache();
  TableauCache(const TableauCache &) = delete;
  TableauCache &operator=(const TableauCache &) = delete;

  /// States served from the cache across all builds.
  size_t hits() const;
  /// States expanded from scratch (and recorded).
  size_t misses() const;
  /// Cached expansion entries.
  size_t size() const;
  void clear();

private:
  friend Nba buildNba(const Formula *, Context &, const Alphabet &,
                      TableauStats *, const TableauLimits &, TableauCache *);
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// LTL satisfiability of \p F under the underapproximation: does some
/// trace (sequence of letters) satisfy it? Used by the refinement loop's
/// CHECK-SAT (Alg. 4) and by tests.
bool isSatisfiable(const Formula *F, Context &Ctx, const Alphabet &AB);

} // namespace temos

#endif // TEMOS_AUTOMATA_TABLEAU_H
