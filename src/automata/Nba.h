//===- automata/Nba.h - Nondeterministic Buechi automata -------*- C++ -*-===//
///
/// \file
/// Explicit nondeterministic Buechi automata with transition-based
/// acceptance over the factored TSL alphabet. Produced by the tableau
/// (automata/Tableau.h) from the negated specification; consumed
/// universally (as a universal co-Buechi automaton) by the bounded
/// synthesis game (game/SafetyGame.h), and directly by the LTL
/// satisfiability check the refinement loop needs (Alg. 4).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_AUTOMATA_NBA_H
#define TEMOS_AUTOMATA_NBA_H

#include "tsl2ltl/Alphabet.h"

#include <cstdint>
#include <string>
#include <vector>

namespace temos {

/// A compiled guard over letters: input bits that must match plus
/// per-cell update requirements. Compiled once from the tableau's
/// literal sets so that evaluation per letter is O(#requirements).
struct LetterConstraint {
  /// Input bits that are constrained (care mask) and their values.
  uint32_t InputCare = 0;
  uint32_t InputValue = 0;
  /// Per-cell requirements: (cell, option, positive). Positive means the
  /// cell's choice must equal the option; negative means it must differ.
  struct UpdateReq {
    uint16_t Cell = 0;
    uint16_t Option = 0;
    bool Positive = true;
  };
  std::vector<UpdateReq> Updates;

  /// True if the guard matches the letter (inputs + decoded choices).
  bool matches(uint32_t InputBits,
               const std::vector<unsigned> &Choices) const {
    if ((InputBits & InputCare) != InputValue)
      return false;
    for (const UpdateReq &R : Updates) {
      bool Equal = Choices[R.Cell] == R.Option;
      if (Equal != R.Positive)
        return false;
    }
    return true;
  }
};

/// An explicit NBA with transition-based Buechi acceptance.
class Nba {
public:
  struct Transition {
    LetterConstraint Guard;
    uint32_t Target = 0;
    /// Transition-based Buechi mark (set after degeneralization).
    bool Accepting = false;
  };

  uint32_t addState() {
    States.emplace_back();
    return static_cast<uint32_t>(States.size() - 1);
  }
  void addTransition(uint32_t From, Transition T) {
    States[From].push_back(std::move(T));
  }

  size_t stateCount() const { return States.size(); }
  const std::vector<Transition> &transitions(uint32_t State) const {
    return States[State];
  }

  uint32_t initial() const { return Initial; }
  void setInitial(uint32_t State) { Initial = State; }

  /// Successor states of \p State under the concrete letter. Each result
  /// carries whether the crossing transition is accepting.
  std::vector<std::pair<uint32_t, bool>>
  successors(uint32_t State, uint32_t InputBits,
             const std::vector<unsigned> &Choices) const;

  /// Nonemptiness: does the automaton accept some word? True iff a cycle
  /// through an accepting transition is reachable. \p AB supplies the
  /// concrete letters to enumerate.
  bool isNonEmpty(const Alphabet &AB) const;

  /// For each state: can a run from it still cross an accepting
  /// transition? Runs through non-live states never reject, so the
  /// counting game drops them from its tracking sets.
  std::vector<bool> liveStates() const;

private:
  std::vector<std::vector<Transition>> States;
  uint32_t Initial = 0;
};

} // namespace temos

#endif // TEMOS_AUTOMATA_NBA_H
