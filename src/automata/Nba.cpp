//===- automata/Nba.cpp - Nondeterministic Buechi automata -----------------===//

#include "automata/Nba.h"

#include <algorithm>
#include <functional>

using namespace temos;

std::vector<std::pair<uint32_t, bool>>
Nba::successors(uint32_t State, uint32_t InputBits,
                const std::vector<unsigned> &Choices) const {
  std::vector<std::pair<uint32_t, bool>> Result;
  for (const Transition &T : States[State]) {
    if (!T.Guard.matches(InputBits, Choices))
      continue;
    // Keep the strongest acceptance flag per target.
    bool Found = false;
    for (auto &[Target, Accepting] : Result)
      if (Target == T.Target) {
        Accepting |= T.Accepting;
        Found = true;
        break;
      }
    if (!Found)
      Result.emplace_back(T.Target, T.Accepting);
  }
  return Result;
}

bool Nba::isNonEmpty(const Alphabet &AB) const {
  (void)AB; // Guards are satisfiable by construction (compileGuard).
  if (States.empty())
    return false;

  // Tarjan SCC from the initial state; the language is nonempty iff some
  // reachable SCC contains an accepting transition between two of its
  // states (including accepting self-loops).
  const uint32_t N = static_cast<uint32_t>(States.size());
  std::vector<int> Index(N, -1);
  std::vector<int> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<uint32_t> Stack;
  std::vector<int> Scc(N, -1);
  int NextIndex = 0;
  int SccCount = 0;

  std::function<void(uint32_t)> StrongConnect = [&](uint32_t V) {
    Index[V] = LowLink[V] = NextIndex++;
    Stack.push_back(V);
    OnStack[V] = true;
    for (const Transition &T : States[V]) {
      uint32_t W = T.Target;
      if (Index[W] < 0) {
        StrongConnect(W);
        LowLink[V] = std::min(LowLink[V], LowLink[W]);
      } else if (OnStack[W]) {
        LowLink[V] = std::min(LowLink[V], Index[W]);
      }
    }
    if (LowLink[V] == Index[V]) {
      for (;;) {
        uint32_t W = Stack.back();
        Stack.pop_back();
        OnStack[W] = false;
        Scc[W] = SccCount;
        if (W == V)
          break;
      }
      ++SccCount;
    }
  };
  StrongConnect(Initial);

  // A single-state SCC counts only with a self-loop; checking for an
  // intra-SCC accepting transition covers both cases.
  for (uint32_t V = 0; V < N; ++V) {
    if (Scc[V] < 0)
      continue; // Unreachable.
    for (const Transition &T : States[V])
      if (T.Accepting && Scc[T.Target] == Scc[V])
        return true;
  }
  return false;
}

std::vector<bool> Nba::liveStates() const {
  // Backward fixpoint: a state is live if one of its transitions is
  // accepting or reaches a live state.
  std::vector<bool> Live(States.size(), false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Q = 0; Q < States.size(); ++Q) {
      if (Live[Q])
        continue;
      for (const Transition &T : States[Q]) {
        if (T.Accepting || Live[T.Target]) {
          Live[Q] = true;
          Changed = true;
          break;
        }
      }
    }
  }
  return Live;
}
