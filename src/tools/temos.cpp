//===- tools/temos.cpp - The temos command-line driver --------------------===//
///
/// \file
/// Command-line front end mirroring the paper's tool: reads a TSL-MT
/// specification, runs the full pipeline, and emits executable code.
///
///   temos spec.tslmt                 synthesize, print a summary
///   temos --emit=js spec.tslmt       print the JavaScript controller
///   temos --emit=cpp spec.tslmt      print the C++ controller
///   temos --emit=assumptions ...     print the generated assumptions
///   temos --emit=summary ...         print the summary table (default)
///   temos --jobs N spec.tslmt        fan solver work out over N threads
///   temos --no-cache spec.tslmt      disable the SMT query cache
///   temos --simulate N spec.tslmt    run the controller N steps (inputs
///                                    default to zero/false) and print
///                                    the cell trace
///   temos --lazy spec.tslmt          use the lazy assumption strategy
///   temos --benchmark NAME           run a bundled Table-1 benchmark
///   temos --list                     list the bundled benchmarks
///   temos --bench-json[=PATH] ...    also write the machine-readable
///                                    temos-bench-v1 run record (default
///                                    BENCH_<name>.json in the current
///                                    directory)
///   temos --repeat N ...             run the pipeline N times on one
///                                    synthesizer; the bench record's
///                                    "repeat" object then shows the
///                                    incremental engine's cross-run
///                                    reuse (summary/emission still
///                                    reflect the first run)
///
/// The pre-redesign spellings --js, --cpp and --assumptions still work
/// as deprecated aliases for the corresponding --emit=... values.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/BenchJson.h"
#include "benchmarks/Benchmarks.h"
#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

using namespace temos;

namespace {

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--emit=<js|cpp|assumptions|summary>] [--jobs N] "
      "[--no-cache] [--simulate N] [--lazy] [--bench-json[=PATH]] "
      "[--repeat N] (spec.tslmt | --benchmark NAME | --list)\n",
      Program);
  return 2;
}

/// What the tool prints on success.
enum class EmitKind { Summary, Js, Cpp, Assumptions };

/// Parses an --emit= payload; returns false on an unknown value.
bool parseEmitKind(const char *Value, EmitKind &Out) {
  if (std::strcmp(Value, "js") == 0)
    Out = EmitKind::Js;
  else if (std::strcmp(Value, "cpp") == 0)
    Out = EmitKind::Cpp;
  else if (std::strcmp(Value, "assumptions") == 0)
    Out = EmitKind::Assumptions;
  else if (std::strcmp(Value, "summary") == 0)
    Out = EmitKind::Summary;
  else
    return false;
  return true;
}

void warnDeprecated(const char *Old, const char *New) {
  std::fprintf(stderr, "warning: %s is deprecated, use %s\n", Old, New);
}

} // namespace

int main(int argc, char **argv) {
  EmitKind Emit = EmitKind::Summary;
  bool Lazy = false;
  unsigned Jobs = 1;
  bool CacheEnabled = true;
  long SimulateSteps = -1;
  const char *Path = nullptr;
  const char *BenchmarkName = nullptr;
  bool BenchJsonWanted = false;
  std::string BenchJsonPath;
  unsigned Repeats = 1;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--list") == 0) {
      for (const BenchmarkSpec &B : allBenchmarks())
        std::printf("%-18s (%s)\n", B.Name, B.Family);
      return 0;
    } else if (std::strcmp(argv[I], "--benchmark") == 0 && I + 1 < argc) {
      BenchmarkName = argv[++I];
    } else if (std::strncmp(argv[I], "--emit=", 7) == 0) {
      if (!parseEmitKind(argv[I] + 7, Emit)) {
        std::fprintf(stderr, "error: unknown --emit value '%s'\n",
                     argv[I] + 7);
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --jobs needs a positive thread count\n");
        return usage(argv[0]);
      }
      Jobs = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--no-cache") == 0) {
      CacheEnabled = false;
    } else if (std::strcmp(argv[I], "--bench-json") == 0) {
      BenchJsonWanted = true;
    } else if (std::strncmp(argv[I], "--bench-json=", 13) == 0) {
      BenchJsonWanted = true;
      BenchJsonPath = argv[I] + 13;
    } else if (std::strcmp(argv[I], "--repeat") == 0 && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --repeat needs a positive run count\n");
        return usage(argv[0]);
      }
      Repeats = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--js") == 0) {
      warnDeprecated("--js", "--emit=js");
      Emit = EmitKind::Js;
    } else if (std::strcmp(argv[I], "--cpp") == 0) {
      warnDeprecated("--cpp", "--emit=cpp");
      Emit = EmitKind::Cpp;
    } else if (std::strcmp(argv[I], "--assumptions") == 0) {
      warnDeprecated("--assumptions", "--emit=assumptions");
      Emit = EmitKind::Assumptions;
    } else if (std::strcmp(argv[I], "--lazy") == 0) {
      Lazy = true;
    } else if (std::strcmp(argv[I], "--simulate") == 0 && I + 1 < argc) {
      SimulateSteps = std::strtol(argv[++I], nullptr, 10);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Path = argv[I];
    }
  }
  std::string Source;
  if (BenchmarkName) {
    const BenchmarkSpec *B = findBenchmark(BenchmarkName);
    if (!B) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   BenchmarkName);
      return 1;
    }
    Source = B->Source;
    Path = BenchmarkName;
  } else {
    if (!Path)
      return usage(argv[0]);
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec) {
    std::fprintf(stderr, "%s:%s\n", Path, Spec.error().str().c_str());
    return 1;
  }

  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Eager = !Lazy;
  Options.Parallelism.NumThreads = Jobs;
  Options.Parallelism.CacheEnabled = CacheEnabled;
  PipelineResult R = Synth.run(*Spec, Options);

  if (!R.Diagnostic.empty()) {
    std::fprintf(stderr, "error: invalid options: %s\n", R.Diagnostic.c_str());
    return 2;
  }
  // Extra runs on the same Synthesizer exercise the incremental engine's
  // cross-run reuse; everything the tool prints still reflects run one.
  std::optional<PipelineStats> RepeatStats;
  for (unsigned I = 1; I < Repeats; ++I)
    RepeatStats = Synth.run(*Spec, Options).Stats;
  if (BenchJsonWanted) {
    // Written for every verdict: a run that degraded to unknown should
    // fail the perf gate loudly, not silently skip its record.
    size_t MachineStates = R.Machine ? R.Machine->stateCount() : 0;
    size_t JsLoc = R.Machine
                       ? countLines(emitJavaScript(*R.Machine, R.AB, *Spec))
                       : 0;
    std::string Json =
        benchJson(Spec->Name, R.Status, Jobs, CacheEnabled, R.Stats,
                  MachineStates, JsLoc, RepeatStats ? &*RepeatStats : nullptr);
    std::string Written;
    if (!BenchJsonPath.empty()) {
      std::ofstream Out(BenchJsonPath);
      if (Out) {
        Out << Json;
        Written = BenchJsonPath;
      }
    } else {
      Written = writeBenchJson("", Spec->Name, Json);
    }
    if (Written.empty()) {
      std::fprintf(stderr, "error: cannot write bench JSON\n");
      return 1;
    }
    std::fprintf(stderr, "bench json: %s\n", Written.c_str());
  }
  if (R.Status != Realizability::Realizable) {
    std::fprintf(stderr, "%s: %s\n", Spec->Name.c_str(),
                 R.Status == Realizability::Unrealizable
                     ? "unrealizable (within the bounded-synthesis budget)"
                     : "unknown (resource budget exceeded)");
    return 1;
  }

  if (Emit == EmitKind::Assumptions) {
    for (const Formula *A : R.Assumptions)
      std::printf("%s\n", A->str().c_str());
    return 0;
  }
  if (Emit == EmitKind::Js) {
    std::printf("%s", emitJavaScript(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (Emit == EmitKind::Cpp) {
    std::printf("%s", emitCpp(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (SimulateSteps >= 0) {
    Controller C(*R.Machine, R.AB, *Spec);
    Assignment Inputs;
    for (const SignalDecl &D : Spec->Inputs) {
      switch (D.S) {
      case Sort::Bool:
        Inputs[D.Name] = Value::boolean(false);
        break;
      case Sort::Int:
      case Sort::Real:
        Inputs[D.Name] = Value::integer(0);
        break;
      case Sort::Opaque:
        Inputs[D.Name] = Value::symbol("@" + D.Name);
        break;
      }
    }
    for (long Step = 0; Step < SimulateSteps; ++Step) {
      auto Outcome = C.step(Inputs);
      if (!Outcome) {
        std::fprintf(stderr, "step %ld: evaluation failed\n", Step);
        return 1;
      }
      std::printf("step %ld:", Step);
      for (const auto &[Name, V] : C.cells())
        std::printf(" %s=%s", Name.c_str(), V.str().c_str());
      std::printf("\n");
    }
    return 0;
  }

  std::printf("%s: realizable\n", Spec->Name.c_str());
  std::printf("  theory:           %s\n", theoryName(Spec->Th));
  std::printf("  |phi|=%zu |P|=%zu |F|=%zu |psi|=%zu\n", R.Stats.SpecSize,
              R.Stats.PredicateCount, R.Stats.UpdateTermCount,
              R.Stats.AssumptionCount);
  std::printf("  psi generation:   %.3fs wall, %.3fs cpu\n",
              R.Stats.PsiGenSeconds, R.Stats.PsiGenCpuSeconds);
  std::printf("  TSL synthesis:    %.3fs wall, %.3fs cpu "
              "(%u refinement rounds)\n",
              R.Stats.SynthesisSeconds, R.Stats.SynthesisCpuSeconds,
              R.Stats.Refinements);
  std::printf("  solver jobs:      %u thread%s, cache %s "
              "(%zu hits, %zu misses)\n",
              Jobs, Jobs == 1 ? "" : "s", CacheEnabled ? "on" : "off",
              R.Stats.CacheHits, R.Stats.CacheMisses);
  std::printf("  machine states:   %zu\n", R.Machine->stateCount());
  std::printf("  JavaScript LoC:   %zu\n",
              countLines(emitJavaScript(*R.Machine, R.AB, *Spec)));
  return 0;
}
