//===- tools/temos.cpp - The temos command-line driver --------------------===//
///
/// \file
/// Command-line front end mirroring the paper's tool: reads a TSL-MT
/// specification, runs the full pipeline, and emits executable code.
///
///   temos spec.tslmt                 synthesize, print a summary
///   temos --emit=js spec.tslmt       print the JavaScript controller
///   temos --emit=cpp spec.tslmt      print the C++ controller
///   temos --emit=assumptions ...     print the generated assumptions
///   temos --emit=summary ...         print the summary table (default)
///   temos --jobs N spec.tslmt        fan solver work out over N threads
///   temos --no-cache spec.tslmt      disable the SMT query cache
///   temos --simulate N spec.tslmt    run the controller N steps (inputs
///                                    default to zero/false) and print
///                                    the cell trace
///   temos --lazy spec.tslmt          use the lazy assumption strategy
///   temos --benchmark NAME           run a bundled Table-1 benchmark
///   temos --list                     list the bundled benchmarks
///   temos --bench-json[=PATH] ...    also write the machine-readable
///                                    temos-bench-v1 run record (default
///                                    BENCH_<name>.json in the current
///                                    directory)
///   temos --repeat N ...             run the pipeline N times on one
///                                    synthesizer; the bench record's
///                                    "repeat" object then shows the
///                                    incremental engine's cross-run
///                                    reuse (summary/emission still
///                                    reflect the first run)
///   temos --time-budget S ...        cap the whole run at S wall-clock
///                                    seconds; on expiry each phase
///                                    degrades gracefully and the tool
///                                    reports unknown (exit 4)
///   temos --artifacts DIR ...        where degraded/crashed runs dump
///                                    their replayable artifact
///                                    (default temos-artifacts; 'none'
///                                    disables); replay with
///                                    `temos-fuzz --replay FILE`
///   temos --inject-fault=spin-hang   plant a non-terminating SyGuS
///                                    search (testing only) to prove
///                                    the deadline machinery trips
///
/// The pre-redesign spellings --js, --cpp and --assumptions still work
/// as deprecated aliases for the corresponding --emit=... values.
///
/// Exit codes (also in the README):
///   0  synthesis succeeded
///   1  input error: unreadable file, parse error, unknown benchmark, I/O
///   2  usage error / invalid option combination
///   3  unrealizable within the bounded-synthesis budget
///   4  resource exhausted: a time/state budget degraded the run to
///      unknown (details in the failure records)
///
//===----------------------------------------------------------------------===//

#include "benchmarks/BenchJson.h"
#include "benchmarks/Benchmarks.h"
#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

using namespace temos;

namespace {

/// Exit codes; keep in sync with the file header and the README table.
enum ExitCode {
  ExitSuccess = 0,
  ExitInputError = 1,
  ExitUsage = 2,
  ExitUnrealizable = 3,
  ExitResourceExhausted = 4,
};

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--emit=<js|cpp|assumptions|summary>] [--jobs N] "
      "[--no-cache] [--simulate N] [--lazy] [--bench-json[=PATH]] "
      "[--repeat N] [--time-budget S] [--artifacts DIR|none] "
      "[--inject-fault=spin-hang] "
      "(spec.tslmt | --benchmark NAME | --list)\n",
      Program);
  return ExitUsage;
}

/// What the tool prints on success.
enum class EmitKind { Summary, Js, Cpp, Assumptions };

/// Parses an --emit= payload; returns false on an unknown value.
bool parseEmitKind(const char *Value, EmitKind &Out) {
  if (std::strcmp(Value, "js") == 0)
    Out = EmitKind::Js;
  else if (std::strcmp(Value, "cpp") == 0)
    Out = EmitKind::Cpp;
  else if (std::strcmp(Value, "assumptions") == 0)
    Out = EmitKind::Assumptions;
  else if (std::strcmp(Value, "summary") == 0)
    Out = EmitKind::Summary;
  else
    return false;
  return true;
}

void warnDeprecated(const char *Old, const char *New) {
  std::fprintf(stderr, "warning: %s is deprecated, use %s\n", Old, New);
}

/// One stderr line per failure record, e.g.
/// "  failure: timeout [sygus] 2 of 3 obligations unresolved ...".
void printFailures(std::FILE *Stream, const PipelineStats &Stats) {
  for (const FailureRecord &F : Stats.Failures)
    std::fprintf(Stream, "  failure: %s [%s] %s\n", failureKindName(F.Kind),
                 F.Phase.c_str(), F.Detail.c_str());
}

/// Renders the replayable artifact a degraded or crashed run dumps: a
/// `// temos-artifact:` header (failure records, the exact option set,
/// the seed) followed by the verbatim specification source, so
/// `temos-fuzz --replay FILE` can re-run it.
std::string artifactText(const std::string &SpecName, Realizability Status,
                         const PipelineOptions &Options, unsigned Jobs,
                         bool Lazy, double TimeBudget,
                         const PipelineStats &Stats,
                         const std::string &Source) {
  std::string Out;
  Out += "// temos-artifact: v1\n";
  Out += "// spec: " + SpecName + "\n";
  Out += std::string("// status: ") +
         (Status == Realizability::Realizable     ? "realizable"
          : Status == Realizability::Unrealizable ? "unrealizable"
                                                  : "unknown") +
         "\n";
  for (const FailureRecord &F : Stats.Failures)
    Out += std::string("// failure: ") + failureKindName(F.Kind) + " [" +
           F.Phase + "] " + F.Detail + "\n";
  char OptLine[256];
  std::snprintf(OptLine, sizeof(OptLine),
                "// options: jobs=%u cache=%s lazy=%s time-budget=%g "
                "inject-fault=%s\n",
                Jobs, Options.Parallelism.CacheEnabled ? "on" : "off",
                Lazy ? "on" : "off", TimeBudget,
                Options.InjectSpinHang ? "spin-hang" : "none");
  Out += OptLine;
  // The pipeline is deterministic (no RNG), so the seed is fixed; the
  // field keeps the header shape shared with temos-fuzz repros.
  Out += "// seed: 0\n";
  Out += "// replay: temos-fuzz --replay <this-file>\n";
  Out += Source;
  if (!Source.empty() && Source.back() != '\n')
    Out += "\n";
  return Out;
}

/// Writes the artifact into \p Dir (created on demand); returns the
/// path, or "" when disabled or on I/O failure.
std::string writeArtifactFile(const std::string &Dir,
                              const std::string &SpecName,
                              const std::string &Text) {
  if (Dir.empty())
    return "";
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return "";
  std::string Safe;
  for (char C : SpecName)
    Safe += (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
             C == '-')
                ? C
                : '_';
  std::string Path = Dir + "/temos-artifact-" + Safe + ".tslmt";
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << Text;
  Out.close();
  return Out ? Path : "";
}

} // namespace

int main(int argc, char **argv) {
  EmitKind Emit = EmitKind::Summary;
  bool Lazy = false;
  unsigned Jobs = 1;
  bool CacheEnabled = true;
  long SimulateSteps = -1;
  const char *Path = nullptr;
  const char *BenchmarkName = nullptr;
  bool BenchJsonWanted = false;
  std::string BenchJsonPath;
  unsigned Repeats = 1;
  double TimeBudget = 0;
  bool InjectSpinHang = false;
  std::string ArtifactsDir = "temos-artifacts";

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--list") == 0) {
      for (const BenchmarkSpec &B : allBenchmarks())
        std::printf("%-18s (%s)\n", B.Name, B.Family);
      return 0;
    } else if (std::strcmp(argv[I], "--benchmark") == 0 && I + 1 < argc) {
      BenchmarkName = argv[++I];
    } else if (std::strncmp(argv[I], "--emit=", 7) == 0) {
      if (!parseEmitKind(argv[I] + 7, Emit)) {
        std::fprintf(stderr, "error: unknown --emit value '%s'\n",
                     argv[I] + 7);
        return usage(argv[0]);
      }
    } else if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --jobs needs a positive thread count\n");
        return usage(argv[0]);
      }
      Jobs = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--no-cache") == 0) {
      CacheEnabled = false;
    } else if (std::strcmp(argv[I], "--bench-json") == 0) {
      BenchJsonWanted = true;
    } else if (std::strncmp(argv[I], "--bench-json=", 13) == 0) {
      BenchJsonWanted = true;
      BenchJsonPath = argv[I] + 13;
    } else if (std::strcmp(argv[I], "--repeat") == 0 && I + 1 < argc) {
      char *End = nullptr;
      long N = std::strtol(argv[++I], &End, 10);
      if (N < 1 || End == argv[I] || *End != '\0') {
        std::fprintf(stderr, "error: --repeat needs a positive run count\n");
        return usage(argv[0]);
      }
      Repeats = static_cast<unsigned>(N);
    } else if (std::strcmp(argv[I], "--js") == 0) {
      warnDeprecated("--js", "--emit=js");
      Emit = EmitKind::Js;
    } else if (std::strcmp(argv[I], "--cpp") == 0) {
      warnDeprecated("--cpp", "--emit=cpp");
      Emit = EmitKind::Cpp;
    } else if (std::strcmp(argv[I], "--assumptions") == 0) {
      warnDeprecated("--assumptions", "--emit=assumptions");
      Emit = EmitKind::Assumptions;
    } else if (std::strcmp(argv[I], "--time-budget") == 0 && I + 1 < argc) {
      char *End = nullptr;
      double S = std::strtod(argv[++I], &End);
      if (End == argv[I] || *End != '\0' || S <= 0) {
        std::fprintf(stderr,
                     "error: --time-budget needs a positive second count\n");
        return usage(argv[0]);
      }
      TimeBudget = S;
    } else if (std::strcmp(argv[I], "--artifacts") == 0 && I + 1 < argc) {
      ++I;
      ArtifactsDir = std::strcmp(argv[I], "none") == 0 ? "" : argv[I];
    } else if (std::strncmp(argv[I], "--inject-fault=", 15) == 0) {
      if (std::strcmp(argv[I] + 15, "spin-hang") != 0) {
        std::fprintf(stderr, "error: unknown --inject-fault value '%s' "
                             "(only spin-hang is supported)\n",
                     argv[I] + 15);
        return usage(argv[0]);
      }
      InjectSpinHang = true;
    } else if (std::strcmp(argv[I], "--lazy") == 0) {
      Lazy = true;
    } else if (std::strcmp(argv[I], "--simulate") == 0 && I + 1 < argc) {
      SimulateSteps = std::strtol(argv[++I], nullptr, 10);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Path = argv[I];
    }
  }
  std::string Source;
  if (BenchmarkName) {
    const BenchmarkSpec *B = findBenchmark(BenchmarkName);
    if (!B) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   BenchmarkName);
      return ExitInputError;
    }
    Source = B->Source;
    Path = BenchmarkName;
  } else {
    if (!Path)
      return usage(argv[0]);
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path);
      return ExitInputError;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec) {
    std::fprintf(stderr, "%s:%s\n", Path, Spec.error().str().c_str());
    return ExitInputError;
  }

  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Eager = !Lazy;
  Options.Parallelism.NumThreads = Jobs;
  Options.Parallelism.CacheEnabled = CacheEnabled;
  Options.Budget.TotalSeconds = TimeBudget;
  Options.InjectSpinHang = InjectSpinHang;
  PipelineResult R = Synth.run(*Spec, Options);

  // A diagnostic without failure records is an up-front refusal (option
  // validation); with records it is a contained pipeline abort, which
  // flows through the normal failure reporting below.
  if (!R.Diagnostic.empty() && R.Stats.Failures.empty()) {
    std::fprintf(stderr, "error: invalid options: %s\n", R.Diagnostic.c_str());
    return ExitUsage;
  }
  // Extra runs on the same Synthesizer exercise the incremental engine's
  // cross-run reuse; everything the tool prints still reflects run one.
  std::optional<PipelineStats> RepeatStats;
  for (unsigned I = 1; I < Repeats; ++I)
    RepeatStats = Synth.run(*Spec, Options).Stats;
  if (BenchJsonWanted) {
    // Written for every verdict: a run that degraded to unknown should
    // fail the perf gate loudly, not silently skip its record.
    size_t MachineStates = R.Machine ? R.Machine->stateCount() : 0;
    size_t JsLoc = R.Machine
                       ? countLines(emitJavaScript(*R.Machine, R.AB, *Spec))
                       : 0;
    std::string Json =
        benchJson(Spec->Name, R.Status, Jobs, CacheEnabled, R.Stats,
                  MachineStates, JsLoc, RepeatStats ? &*RepeatStats : nullptr);
    std::string Written;
    if (!BenchJsonPath.empty()) {
      std::ofstream Out(BenchJsonPath);
      if (Out) {
        Out << Json;
        Written = BenchJsonPath;
      }
    } else {
      Written = writeBenchJson("", Spec->Name, Json);
    }
    if (Written.empty()) {
      std::fprintf(stderr, "error: cannot write bench JSON\n");
      return ExitInputError;
    }
    std::fprintf(stderr, "bench json: %s\n", Written.c_str());
  }
  // Degraded or aborted runs dump a replayable artifact (spec + failure
  // records + options), whatever the final verdict.
  if (!R.Stats.Failures.empty()) {
    std::string Artifact = writeArtifactFile(
        ArtifactsDir, Spec->Name,
        artifactText(Spec->Name, R.Status, Options, Jobs, Lazy, TimeBudget,
                     R.Stats, Source));
    if (!Artifact.empty())
      std::fprintf(stderr, "artifact: %s\n", Artifact.c_str());
  }
  if (R.Status != Realizability::Realizable) {
    std::fprintf(stderr, "%s: %s\n", Spec->Name.c_str(),
                 R.Status == Realizability::Unrealizable
                     ? "unrealizable (within the bounded-synthesis budget)"
                     : "unknown (resource budget exceeded)");
    printFailures(stderr, R.Stats);
    return R.Status == Realizability::Unrealizable ? ExitUnrealizable
                                                   : ExitResourceExhausted;
  }

  if (Emit == EmitKind::Assumptions) {
    for (const Formula *A : R.Assumptions)
      std::printf("%s\n", A->str().c_str());
    return 0;
  }
  if (Emit == EmitKind::Js) {
    std::printf("%s", emitJavaScript(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (Emit == EmitKind::Cpp) {
    std::printf("%s", emitCpp(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (SimulateSteps >= 0) {
    Controller C(*R.Machine, R.AB, *Spec);
    Assignment Inputs;
    for (const SignalDecl &D : Spec->Inputs) {
      switch (D.S) {
      case Sort::Bool:
        Inputs[D.Name] = Value::boolean(false);
        break;
      case Sort::Int:
      case Sort::Real:
        Inputs[D.Name] = Value::integer(0);
        break;
      case Sort::Opaque:
        Inputs[D.Name] = Value::symbol("@" + D.Name);
        break;
      }
    }
    for (long Step = 0; Step < SimulateSteps; ++Step) {
      auto Outcome = C.step(Inputs);
      if (!Outcome) {
        std::fprintf(stderr, "step %ld: evaluation failed\n", Step);
        return 1;
      }
      std::printf("step %ld:", Step);
      for (const auto &[Name, V] : C.cells())
        std::printf(" %s=%s", Name.c_str(), V.str().c_str());
      std::printf("\n");
    }
    return 0;
  }

  std::printf("%s: realizable\n", Spec->Name.c_str());
  std::printf("  theory:           %s\n", theoryName(Spec->Th));
  std::printf("  |phi|=%zu |P|=%zu |F|=%zu |psi|=%zu\n", R.Stats.SpecSize,
              R.Stats.PredicateCount, R.Stats.UpdateTermCount,
              R.Stats.AssumptionCount);
  std::printf("  psi generation:   %.3fs wall, %.3fs cpu\n",
              R.Stats.PsiGenSeconds, R.Stats.PsiGenCpuSeconds);
  std::printf("  TSL synthesis:    %.3fs wall, %.3fs cpu "
              "(%u refinement rounds)\n",
              R.Stats.SynthesisSeconds, R.Stats.SynthesisCpuSeconds,
              R.Stats.Refinements);
  std::printf("  solver jobs:      %u thread%s, cache %s "
              "(%zu hits, %zu misses)\n",
              Jobs, Jobs == 1 ? "" : "s", CacheEnabled ? "on" : "off",
              R.Stats.CacheHits, R.Stats.CacheMisses);
  std::printf("  machine states:   %zu\n", R.Machine->stateCount());
  std::printf("  JavaScript LoC:   %zu\n",
              countLines(emitJavaScript(*R.Machine, R.AB, *Spec)));
  // Only on degraded runs, so clean summaries stay byte-stable for the
  // golden suite.
  if (!R.Stats.Failures.empty()) {
    std::printf("  failures:         %zu\n", R.Stats.Failures.size());
    printFailures(stdout, R.Stats);
  }
  return ExitSuccess;
}
