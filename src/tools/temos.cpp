//===- tools/temos.cpp - The temos command-line driver --------------------===//
///
/// \file
/// Command-line front end mirroring the paper's tool: reads a TSL-MT
/// specification, runs the full pipeline, and emits executable code.
///
///   temos spec.tslmt                 synthesize, print a summary
///   temos --js spec.tslmt            print the JavaScript controller
///   temos --cpp spec.tslmt           print the C++ controller
///   temos --assumptions spec.tslmt   print the generated assumptions
///   temos --simulate N spec.tslmt    run the controller N steps (inputs
///                                    default to zero/false) and print
///                                    the cell trace
///   temos --lazy spec.tslmt          use the lazy assumption strategy
///   temos --benchmark NAME           run a bundled Table-1 benchmark
///   temos --list                     list the bundled benchmarks
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Benchmarks.h"
#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace temos;

namespace {

int usage(const char *Program) {
  std::fprintf(
      stderr,
      "usage: %s [--js|--cpp|--assumptions|--simulate N|--lazy] "
      "(spec.tslmt | --benchmark NAME | --list)\n",
      Program);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  bool EmitJs = false, EmitCppCode = false, PrintAssumptions = false;
  bool Lazy = false;
  long SimulateSteps = -1;
  const char *Path = nullptr;
  const char *BenchmarkName = nullptr;

  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--list") == 0) {
      for (const BenchmarkSpec &B : allBenchmarks())
        std::printf("%-18s (%s)\n", B.Name, B.Family);
      return 0;
    } else if (std::strcmp(argv[I], "--benchmark") == 0 && I + 1 < argc) {
      BenchmarkName = argv[++I];
    } else if (std::strcmp(argv[I], "--js") == 0) {
      EmitJs = true;
    } else if (std::strcmp(argv[I], "--cpp") == 0) {
      EmitCppCode = true;
    } else if (std::strcmp(argv[I], "--assumptions") == 0) {
      PrintAssumptions = true;
    } else if (std::strcmp(argv[I], "--lazy") == 0) {
      Lazy = true;
    } else if (std::strcmp(argv[I], "--simulate") == 0 && I + 1 < argc) {
      SimulateSteps = std::strtol(argv[++I], nullptr, 10);
    } else if (argv[I][0] == '-') {
      return usage(argv[0]);
    } else {
      Path = argv[I];
    }
  }
  std::string Source;
  if (BenchmarkName) {
    const BenchmarkSpec *B = findBenchmark(BenchmarkName);
    if (!B) {
      std::fprintf(stderr, "error: unknown benchmark '%s' (try --list)\n",
                   BenchmarkName);
      return 1;
    }
    Source = B->Source;
    Path = BenchmarkName;
  } else {
    if (!Path)
      return usage(argv[0]);
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open '%s'\n", Path);
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Source = Buffer.str();
  }

  Context Ctx;
  ParseError Err;
  auto Spec = parseSpecification(Source, Ctx, Err);
  if (!Spec) {
    std::fprintf(stderr, "%s:%s\n", Path, Err.str().c_str());
    return 1;
  }

  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Eager = !Lazy;
  PipelineResult R = Synth.run(*Spec, Options);

  if (R.Status != Realizability::Realizable) {
    std::fprintf(stderr, "%s: %s\n", Spec->Name.c_str(),
                 R.Status == Realizability::Unrealizable
                     ? "unrealizable (within the bounded-synthesis budget)"
                     : "unknown (resource budget exceeded)");
    return 1;
  }

  if (PrintAssumptions) {
    for (const Formula *A : R.Assumptions)
      std::printf("%s\n", A->str().c_str());
    return 0;
  }
  if (EmitJs) {
    std::printf("%s", emitJavaScript(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (EmitCppCode) {
    std::printf("%s", emitCpp(*R.Machine, R.AB, *Spec).c_str());
    return 0;
  }
  if (SimulateSteps >= 0) {
    Controller C(*R.Machine, R.AB, *Spec);
    Assignment Inputs;
    for (const SignalDecl &D : Spec->Inputs) {
      switch (D.S) {
      case Sort::Bool:
        Inputs[D.Name] = Value::boolean(false);
        break;
      case Sort::Int:
      case Sort::Real:
        Inputs[D.Name] = Value::integer(0);
        break;
      case Sort::Opaque:
        Inputs[D.Name] = Value::symbol("@" + D.Name);
        break;
      }
    }
    for (long Step = 0; Step < SimulateSteps; ++Step) {
      auto Outcome = C.step(Inputs);
      if (!Outcome) {
        std::fprintf(stderr, "step %ld: evaluation failed\n", Step);
        return 1;
      }
      std::printf("step %ld:", Step);
      for (const auto &[Name, V] : C.cells())
        std::printf(" %s=%s", Name.c_str(), V.str().c_str());
      std::printf("\n");
    }
    return 0;
  }

  std::printf("%s: realizable\n", Spec->Name.c_str());
  std::printf("  theory:           %s\n", theoryName(Spec->Th));
  std::printf("  |phi|=%zu |P|=%zu |F|=%zu |psi|=%zu\n", R.Stats.SpecSize,
              R.Stats.PredicateCount, R.Stats.UpdateTermCount,
              R.Stats.AssumptionCount);
  std::printf("  psi generation:   %.3fs\n", R.Stats.PsiGenSeconds);
  std::printf("  TSL synthesis:    %.3fs (%u refinement rounds)\n",
              R.Stats.SynthesisSeconds, R.Stats.Refinements);
  std::printf("  machine states:   %zu\n", R.Machine->stateCount());
  std::printf("  JavaScript LoC:   %zu\n",
              countLines(emitJavaScript(*R.Machine, R.AB, *Spec)));
  return 0;
}
