//===- tools/fuzz/Shrinker.cpp - Greedy repro minimization ----------------===//

#include "tools/fuzz/Shrinker.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace temos;
using namespace temos::fuzz;

namespace {

bool isArith(const std::string &Name) {
  return Name == "+" || Name == "-" || Name == "*";
}

bool isNumericSort(Sort S) { return S == Sort::Int || S == Sort::Real; }

} // namespace

std::vector<const Term *> fuzz::simplerTermVariants(TermFactory &TF,
                                                    const Term *T) {
  constexpr size_t Cap = 48;
  std::vector<const Term *> Out;
  auto Add = [&](const Term *V) {
    if (V != T && Out.size() < Cap)
      Out.push_back(V);
  };

  switch (T->kind()) {
  case Term::Kind::Numeral: {
    // Only strictly-toward-zero candidates: proposing a "variant" that
    // is no simpler (e.g. 1 for 0) lets the shrink loop ping-pong and
    // burn its budget without progress.
    const Rational &V = T->value();
    std::vector<Rational> Candidates = {
        Rational(0), Rational(V.numerator() / 2, V.denominator())};
    if (V > Rational(1))
      Candidates.push_back(Rational(1));
    if (V < Rational(-1))
      Candidates.push_back(Rational(-1));
    for (const Rational &Candidate : Candidates)
      if (Candidate != V)
        Add(TF.numeral(Candidate, T->sort()));
    return Out;
  }
  case Term::Kind::Signal:
    return Out;
  case Term::Kind::Apply:
    break;
  }

  // Collapse arithmetic to a numeric argument (drops the other side).
  if (isArith(T->name()))
    for (const Term *Arg : T->args())
      if (isNumericSort(Arg->sort()))
        Add(Arg);

  // Rebuild with one argument simplified (recursion bounded by term
  // height; each level contributes at most a handful of variants).
  for (size_t I = 0; I < T->arity() && Out.size() < Cap; ++I) {
    for (const Term *V : simplerTermVariants(TF, T->args()[I])) {
      std::vector<const Term *> Args = T->args();
      Args[I] = V;
      Add(TF.apply(T->name(), T->sort(), Args));
      if (Out.size() >= Cap)
        break;
    }
  }
  return Out;
}

std::vector<TheoryLiteral>
fuzz::shrinkLiterals(TermFactory &TF, std::vector<TheoryLiteral> Case,
                     const LiteralsPredicate &StillFails, unsigned MaxRounds) {
  unsigned Budget = MaxRounds;
  bool Changed = true;
  while (Changed && Budget > 0) {
    Changed = false;

    // Drop whole literals, first to last.
    for (size_t I = 0; I < Case.size() && Budget > 0; ++I) {
      std::vector<TheoryLiteral> Candidate = Case;
      Candidate.erase(Candidate.begin() + static_cast<long>(I));
      --Budget;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        Changed = true;
        --I;
      }
    }

    // Positive literals read better than negated ones.
    for (size_t I = 0; I < Case.size() && Budget > 0; ++I) {
      if (Case[I].Positive)
        continue;
      std::vector<TheoryLiteral> Candidate = Case;
      Candidate[I].Positive = true;
      --Budget;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        Changed = true;
      }
    }

    // Simplify atoms in place.
    for (size_t I = 0; I < Case.size() && Budget > 0; ++I) {
      for (const Term *V : simplerTermVariants(TF, Case[I].Atom)) {
        if (Budget == 0)
          break;
        std::vector<TheoryLiteral> Candidate = Case;
        Candidate[I].Atom = V;
        --Budget;
        if (StillFails(Candidate)) {
          Case = std::move(Candidate);
          Changed = true;
          break;
        }
      }
    }
  }
  return Case;
}

namespace {

/// Joins \p Lines with newlines (the inverse of split-on-'\n').
std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (size_t I = 0; I < Lines.size(); ++I) {
    if (I != 0)
      Out += "\n";
    Out += Lines[I];
  }
  return Out;
}

} // namespace

std::string fuzz::shrinkSource(std::string Source,
                               const SourcePredicate &StillFails,
                               unsigned MaxRounds) {
  unsigned Budget = MaxRounds;
  bool Changed = true;
  while (Changed && Budget > 0) {
    Changed = false;
    std::vector<std::string> Lines = split(Source, '\n');

    // Drop whole `{ ... }` blocks (an opener line through the first
    // closing-brace line at or below it).
    for (size_t I = 0; I < Lines.size() && Budget > 0; ++I) {
      if (Lines[I].find('{') == std::string::npos)
        continue;
      size_t End = I;
      while (End < Lines.size() &&
             Lines[End].find('}') == std::string::npos)
        ++End;
      if (End >= Lines.size())
        continue;
      std::vector<std::string> Candidate;
      Candidate.insert(Candidate.end(), Lines.begin(),
                       Lines.begin() + static_cast<long>(I));
      Candidate.insert(Candidate.end(),
                       Lines.begin() + static_cast<long>(End) + 1,
                       Lines.end());
      --Budget;
      if (StillFails(joinLines(Candidate))) {
        Lines = std::move(Candidate);
        Source = joinLines(Lines);
        Changed = true;
        --I;
      }
    }

    // Drop single lines.
    for (size_t I = 0; I < Lines.size() && Budget > 0; ++I) {
      std::vector<std::string> Candidate = Lines;
      Candidate.erase(Candidate.begin() + static_cast<long>(I));
      --Budget;
      if (StillFails(joinLines(Candidate))) {
        Lines = std::move(Candidate);
        Source = joinLines(Lines);
        Changed = true;
        --I;
      }
    }

    // Shrink integer tokens toward zero.
    for (size_t Pos = 0; Pos < Source.size() && Budget > 0;) {
      if (!std::isdigit(static_cast<unsigned char>(Source[Pos]))) {
        ++Pos;
        continue;
      }
      size_t End = Pos;
      while (End < Source.size() &&
             std::isdigit(static_cast<unsigned char>(Source[End])))
        ++End;
      std::string Digits = Source.substr(Pos, End - Pos);
      bool Replaced = false;
      for (const char *Candidate : {"0", "1"}) {
        if (Digits == Candidate)
          continue;
        std::string Variant = Source.substr(0, Pos) + Candidate +
                              Source.substr(End);
        --Budget;
        if (StillFails(Variant)) {
          Source = std::move(Variant);
          Pos += 1;
          Replaced = true;
          Changed = true;
          break;
        }
        if (Budget == 0)
          break;
      }
      if (!Replaced)
        Pos = End;
    }
  }
  return Source;
}
