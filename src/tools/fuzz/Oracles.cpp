//===- tools/fuzz/Oracles.cpp - Cross-substrate differential oracles ------===//

#include "tools/fuzz/Fuzz.h"

#include "codegen/CodeEmitter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "theory/Evaluator.h"
#include "tools/fuzz/Generator.h"
#include "tools/fuzz/Shrinker.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <map>

using namespace temos;
using namespace temos::fuzz;

//===----------------------------------------------------------------------===//
// Fault plumbing
//===----------------------------------------------------------------------===//

const char *fuzz::faultName(FaultKind K) {
  switch (K) {
  case FaultKind::None:
    return "none";
  case FaultKind::FlipStrict:
    return "flip-strict";
  case FaultKind::DropConjunct:
    return "drop-conjunct";
  case FaultKind::MutatePrint:
    return "mutate-print";
  case FaultKind::SkipVerify:
    return "skip-verify";
  case FaultKind::LazyConfig:
    return "lazy-config";
  case FaultKind::SpinHang:
    return "spin-hang";
  }
  return "?";
}

bool fuzz::parseFaultKind(const std::string &Name, FaultKind &Out) {
  for (FaultKind K :
       {FaultKind::None, FaultKind::FlipStrict, FaultKind::DropConjunct,
        FaultKind::MutatePrint, FaultKind::SkipVerify, FaultKind::LazyConfig,
        FaultKind::SpinHang})
    if (Name == faultName(K)) {
      Out = K;
      return true;
    }
  return false;
}

namespace {

/// Per-oracle salts so every oracle explores an independent stream even
/// under one --seed.
constexpr uint64_t TheorySalt = 0x7468656f72790000ull;
constexpr uint64_t RoundTripSalt = 0x726f756e64747200ull;
constexpr uint64_t SygusSalt = 0x7379677573000000ull;
constexpr uint64_t PipelineSalt = 0x706970656c696e65ull;

/// Writes \p Text to ArtifactsDir/<name>; returns the path ("" when
/// disabled or on I/O failure).
std::string writeArtifact(const FuzzOptions &Options, const std::string &Name,
                          const std::string &Text) {
  if (Options.ArtifactsDir.empty())
    return "";
  std::error_code EC;
  std::filesystem::create_directories(Options.ArtifactsDir, EC);
  if (EC)
    return "";
  std::string Path = Options.ArtifactsDir + "/" + Name;
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << Text;
  return Path;
}

//===----------------------------------------------------------------------===//
// Ground evaluation over a bounded model grid
//===----------------------------------------------------------------------===//

void collectTypedSignals(const Term *T, std::map<std::string, Sort> &Out) {
  if (T->isSignal()) {
    Out.emplace(T->name(), T->sort());
    return;
  }
  for (const Term *Arg : T->args())
    collectTypedSignals(Arg, Out);
}

/// The sample grid per sort: exhaustive for Int within [-5, 5] (the
/// generator's LIA boxes live in [-4, 4]), half-steps for Real, three
/// symbols for Opaque (term-model semantics make any concrete hit a
/// genuine model).
std::vector<Value> gridValues(Sort S) {
  std::vector<Value> Out;
  switch (S) {
  case Sort::Bool:
    Out = {Value::boolean(false), Value::boolean(true)};
    break;
  case Sort::Int:
    for (int64_t I = -5; I <= 5; ++I)
      Out.push_back(Value::integer(I));
    break;
  case Sort::Real:
    for (int64_t I = -8; I <= 8; ++I)
      Out.push_back(Value::number(Rational(I, 2)));
    break;
  case Sort::Opaque:
    Out = {Value::symbol("@a"), Value::symbol("@b"), Value::symbol("@c")};
    break;
  }
  return Out;
}

/// Exhaustively searches the grid for an assignment satisfying every
/// literal. Returns the model if found.
std::optional<Assignment>
bruteForceModel(const std::vector<TheoryLiteral> &Literals) {
  std::map<std::string, Sort> Signals;
  for (const TheoryLiteral &L : Literals)
    collectTypedSignals(L.Atom, Signals);

  std::vector<std::string> Names;
  std::vector<std::vector<Value>> Domains;
  size_t Combinations = 1;
  for (const auto &[Name, S] : Signals) {
    Names.push_back(Name);
    Domains.push_back(gridValues(S));
    Combinations *= Domains.back().size();
    if (Combinations > 500000)
      return std::nullopt; // Grid too large; caller treats as "no model".
  }

  Evaluator E;
  std::vector<size_t> Odometer(Names.size(), 0);
  while (true) {
    Assignment Env;
    for (size_t I = 0; I < Names.size(); ++I)
      Env[Names[I]] = Domains[I][Odometer[I]];
    bool All = true;
    for (const TheoryLiteral &L : Literals) {
      auto V = E.evaluateBool(L.Atom, Env);
      if (!V || *V != L.Positive) {
        All = false;
        break;
      }
    }
    if (All)
      return Env;
    size_t I = 0;
    for (; I < Odometer.size(); ++I) {
      if (++Odometer[I] < Domains[I].size())
        break;
      Odometer[I] = 0;
    }
    if (I == Odometer.size())
      return std::nullopt;
  }
}

/// True when \p Literals pin every occurring signal to an Int interval
/// within the grid, making brute-force refutation authoritative.
bool gridCompleteFor(const std::vector<TheoryLiteral> &Literals) {
  std::map<std::string, Sort> Signals;
  for (const TheoryLiteral &L : Literals)
    collectTypedSignals(L.Atom, Signals);
  for (const auto &[Name, S] : Signals) {
    if (S != Sort::Int && S != Sort::Bool)
      return false;
    if (S == Sort::Bool)
      continue;
    bool HasLower = false, HasUpper = false;
    for (const TheoryLiteral &L : Literals) {
      if (!L.Positive || !L.Atom->isApply() || L.Atom->arity() != 2)
        continue;
      const Term *Lhs = L.Atom->args()[0];
      const Term *Rhs = L.Atom->args()[1];
      if (!Lhs->isSignal() || Lhs->name() != Name || !Rhs->isNumeral())
        continue;
      const Rational &C = Rhs->value();
      if (L.Atom->name() == ">=" && C >= Rational(-5))
        HasLower = true;
      if (L.Atom->name() == "<=" && C <= Rational(5))
        HasUpper = true;
      if (L.Atom->name() == "=" && C >= Rational(-5) && C <= Rational(5))
        HasLower = HasUpper = true;
    }
    if (!HasLower || !HasUpper)
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Theory oracle
//===----------------------------------------------------------------------===//

/// How a theory case disagreed across substrates.
enum class DiscKind {
  None,
  /// Solver said Unsat but a concrete grid model satisfies every
  /// literal: the solver lost a model (soundness of Unsat).
  UnsoundUnsat,
  /// Solver said Sat but the exhaustive integer grid refutes it.
  UnsoundSat,
  /// Solver said Sat and produced a model that does not evaluate to
  /// true on every literal.
  BadModel,
  /// Verdict was Unknown or the case was outside the grid's competence.
  Skipped,
};

struct TheoryVerdict {
  DiscKind Kind = DiscKind::None;
  std::string Detail;
};

/// Applies the injected fault to the solver's copy of the literals.
std::vector<TheoryLiteral>
applyTheoryFault(TermFactory &TF, std::vector<TheoryLiteral> Literals,
                 FaultKind Fault) {
  if (Fault == FaultKind::DropConjunct && Literals.size() > 1) {
    Literals.pop_back();
    return Literals;
  }
  if (Fault != FaultKind::FlipStrict)
    return Literals;
  for (TheoryLiteral &L : Literals) {
    if (!L.Atom->isApply() || L.Atom->arity() != 2)
      continue;
    if (L.Atom->name() == "<" || L.Atom->name() == ">") {
      L.Atom = TF.apply(L.Atom->name() == "<" ? "<=" : ">=", Sort::Bool,
                        L.Atom->args());
      break;
    }
  }
  return Literals;
}

/// True when every application in \p T is an interpreted builtin, so the
/// Evaluator's verdict on a model assignment is authoritative. Atoms
/// containing uninterpreted applications are excluded from solver-model
/// checking: the Evaluator's fixed term-model semantics cannot represent
/// every EUF model (e.g. `u = f(u)` is Sat with f interpreted as the
/// identity, but no symbol assignment makes `f(@u)` print as `@u`).
bool modelCheckable(const Term *T) {
  if (T->isApply() && T->arity() > 0) {
    static const char *const Builtins[] = {"+",  "-", "*",  "/", "<",
                                           "<=", ">", ">=", "=", "!="};
    bool Builtin = false;
    for (const char *Op : Builtins)
      Builtin |= T->name() == Op;
    if (!Builtin)
      return false;
  }
  if (T->isApply() && T->arity() == 0 && T->name() != "True" &&
      T->name() != "False")
    return false;
  for (const Term *Arg : T->args())
    if (!modelCheckable(Arg))
      return false;
  return true;
}

TheoryVerdict checkTheoryCase(TermFactory &TF, Theory Th,
                              const std::vector<TheoryLiteral> &Literals,
                              FaultKind Fault) {
  TheoryVerdict Out;
  std::vector<TheoryLiteral> SolverLits =
      applyTheoryFault(TF, Literals, Fault);

  SmtSolver Solver(Th);
  Assignment Model;
  SatResult Verdict = Solver.checkLiterals(SolverLits, &Model);
  if (Verdict == SatResult::Unknown) {
    Out.Kind = DiscKind::Skipped;
    return Out;
  }

  std::optional<Assignment> Ground = bruteForceModel(Literals);
  if (Verdict == SatResult::Unsat && Ground) {
    Out.Kind = DiscKind::UnsoundUnsat;
    Out.Detail = "solver reported Unsat but a ground model exists:";
    for (const auto &[Name, V] : *Ground)
      Out.Detail += " " + Name + "=" + V.str();
    return Out;
  }
  if (Verdict == SatResult::Sat) {
    // The model must satisfy every literal of the *original* case when
    // no fault is injected; under a fault, of the solver's input (the
    // fault models a solver bug, and the oracle's job is to notice the
    // verdict/model disagreeing with the unperturbed ground truth).
    Evaluator E;
    for (const TheoryLiteral &L : Literals) {
      if (!modelCheckable(L.Atom))
        continue;
      auto V = E.evaluateBool(L.Atom, Model);
      if (!V || *V != L.Positive) {
        Out.Kind = DiscKind::BadModel;
        Out.Detail = "solver model violates literal " +
                     std::string(L.Positive ? "" : "! ") + L.Atom->str();
        return Out;
      }
    }
    if (!Ground && gridCompleteFor(Literals)) {
      Out.Kind = DiscKind::UnsoundSat;
      Out.Detail = "solver reported Sat but the exhaustive grid refutes it";
      return Out;
    }
  }
  return Out;
}

/// Decimal rendering for repro files: "3/2" does not re-parse, "1.5"
/// does. Falls back to n/d (with a warning comment upstream) for
/// denominators that have no finite decimal expansion.
std::string decimalText(const Rational &V) {
  if (V.isInteger())
    return V.str();
  int64_t Den = V.denominator();
  int64_t Scale = 1;
  for (int I = 0; I < 6 && Scale % Den != 0; ++I)
    Scale *= 10;
  if (Scale % Den != 0)
    return V.str();
  int64_t Scaled = V.numerator() * (Scale / Den);
  bool Neg = Scaled < 0;
  if (Neg)
    Scaled = -Scaled;
  std::string Frac = std::to_string(Scaled % Scale);
  Frac.insert(Frac.begin(),
              std::to_string(Scale).size() - 1 - Frac.size(), '0');
  return (Neg ? "-" : "") + std::to_string(Scaled / Scale) + "." + Frac;
}

std::string reproTermStr(const Term *T) {
  switch (T->kind()) {
  case Term::Kind::Signal:
    return T->name();
  case Term::Kind::Numeral:
    return decimalText(T->value());
  case Term::Kind::Apply: {
    static const char *const Infix[] = {"+",  "-", "*",  "/", "<",
                                        "<=", ">", ">=", "=", "!="};
    if (T->args().empty())
      return T->name() + "()";
    for (const char *Op : Infix)
      if (T->arity() == 2 && T->name() == Op)
        return "(" + reproTermStr(T->args()[0]) + " " + T->name() + " " +
               reproTermStr(T->args()[1]) + ")";
    std::string Out = "(" + T->name();
    for (const Term *Arg : T->args())
      Out += " " + reproTermStr(Arg);
    return Out + ")";
  }
  }
  return "?";
}

/// Renders a theory case as a standalone, re-parseable specification:
/// signals become `inputs`, uninterpreted functions a `functions` block,
/// and each literal an `always assume` conjunct. replayTheoryRepro()
/// reverses this.
std::string theoryReproSource(Theory Th,
                              const std::vector<TheoryLiteral> &Literals,
                              const std::string &Comment) {
  std::map<std::string, Sort> Signals;
  std::map<std::string, const Term *> Functions;
  for (const TheoryLiteral &L : Literals) {
    collectTypedSignals(L.Atom, Signals);
    // Non-builtin applications with arguments need declarations.
    std::function<void(const Term *)> Walk = [&](const Term *T) {
      static const char *const Builtins[] = {"+",  "-", "*", "<",  "<=", ">",
                                             ">=", "=", "!=", "True", "False"};
      if (T->isApply() && T->arity() > 0) {
        bool Builtin = false;
        for (const char *B : Builtins)
          Builtin |= T->name() == B;
        if (!Builtin)
          Functions.emplace(T->name(), T);
      }
      for (const Term *Arg : T->args())
        Walk(Arg);
    };
    Walk(L.Atom);
  }

  std::string Out;
  for (const std::string &Line : split(Comment, '\n'))
    Out += "// " + Line + "\n";
  Out += std::string("#") + theoryName(Th) + "#\n";
  if (!Signals.empty()) {
    Out += "inputs {";
    for (const auto &[Name, S] : Signals)
      Out += std::string(" ") + sortName(S) + " " + Name + ";";
    Out += " }\n";
  }
  if (!Functions.empty()) {
    Out += "functions {";
    for (const auto &[Name, T] : Functions) {
      Out += std::string(" ") + sortName(T->sort()) + " " + Name + "(";
      for (size_t I = 0; I < T->arity(); ++I)
        Out += std::string(I ? ", " : "") + sortName(T->args()[I]->sort());
      Out += ");";
    }
    Out += " }\n";
  }
  Out += "always assume {\n";
  for (const TheoryLiteral &L : Literals)
    Out += std::string("  ") + (L.Positive ? "" : "! ") +
           reproTermStr(L.Atom) + ";\n";
  Out += "}\n";
  return Out;
}

} // namespace

OracleReport fuzz::runTheoryOracle(const FuzzOptions &Options) {
  OracleReport Report;
  Report.Oracle = "theory";
  for (unsigned It = 0; It < Options.Iterations; ++It) {
    ++Report.Iterations;
    Context Ctx;
    Rng R(mixSeed(Options.Seed ^ TheorySalt, It));
    Generator Gen(Ctx, R);
    TheoryCase Case = Gen.theoryCase();

    TheoryVerdict V =
        checkTheoryCase(Ctx.Terms, Case.Th, Case.Literals, Options.Fault);
    if (V.Kind == DiscKind::Skipped) {
      ++Report.Skipped;
      continue;
    }
    if (V.Kind == DiscKind::None)
      continue;

    // Shrink while the same kind of disagreement persists.
    DiscKind Kind = V.Kind;
    Theory Th = Case.Th;
    FaultKind Fault = Options.Fault;
    std::vector<TheoryLiteral> Shrunk = shrinkLiterals(
        Ctx.Terms, Case.Literals,
        [&](const std::vector<TheoryLiteral> &Candidate) {
          return !Candidate.empty() &&
                 checkTheoryCase(Ctx.Terms, Th, Candidate, Fault).Kind ==
                     Kind;
        });
    TheoryVerdict Final = checkTheoryCase(Ctx.Terms, Th, Shrunk, Fault);

    FailureCase F;
    F.Oracle = Report.Oracle;
    F.Seed = Options.Seed;
    F.Iteration = It;
    F.Description = Final.Detail.empty() ? V.Detail : Final.Detail;
    F.Repro = theoryReproSource(
        Th, Shrunk,
        "temos-fuzz theory repro (replay: temos-fuzz --replay <file>)\n"
        "seed " + std::to_string(Options.Seed) + " iteration " +
            std::to_string(It) + (Fault != FaultKind::None
                                      ? std::string(" injected-fault ") +
                                            faultName(Fault)
                                      : "") +
            "\n" + F.Description);
    F.ArtifactPath = writeArtifact(
        Options,
        "theory-seed" + std::to_string(Options.Seed) + "-iter" +
            std::to_string(It) + ".tslmt",
        F.Repro);
    Report.Failures.push_back(std::move(F));
    if (Report.Failures.size() >= Options.MaxFailures)
      break;
  }
  return Report;
}

std::string fuzz::replayTheoryRepro(const std::string &Source,
                                    bool &StillFails) {
  StillFails = false;
  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec)
    return "repro does not parse: " + Spec.error().str();

  std::vector<TheoryLiteral> Literals;
  for (const Formula *F : Spec->Assumptions) {
    bool Positive = true;
    if (F->is(Formula::Kind::Not)) {
      Positive = false;
      F = F->child(0);
    }
    if (!F->is(Formula::Kind::Pred))
      return "repro assumption is not a literal: " + F->str();
    Literals.push_back({F->pred(), Positive});
  }
  if (Literals.empty())
    return "repro has no `always assume` literals";

  TheoryVerdict V =
      checkTheoryCase(Ctx.Terms, Spec->Th, Literals, FaultKind::None);
  switch (V.Kind) {
  case DiscKind::None:
    return "no discrepancy: solver and ground evaluation agree";
  case DiscKind::Skipped:
    return "solver verdict Unknown; nothing to compare";
  default:
    StillFails = true;
    return "discrepancy reproduces: " + V.Detail;
  }
}

//===----------------------------------------------------------------------===//
// Round-trip oracle
//===----------------------------------------------------------------------===//

namespace {

/// Applies the MutatePrint fault: first "&&" becomes "||".
std::string mutatePrinted(const std::string &Text, FaultKind Fault) {
  if (Fault != FaultKind::MutatePrint)
    return Text;
  std::string Out = Text;
  if (auto Pos = Out.find("&&"); Pos != std::string::npos)
    Out.replace(Pos, 2, "||");
  return Out;
}

/// One formula round trip under \p Spec; returns a description of the
/// failure, empty on success.
std::string formulaRoundTrip(const std::string &Printed,
                             const Specification &Spec, Context &Ctx,
                             FaultKind Fault) {
  auto Parsed = parseFormula(mutatePrinted(Printed, Fault), Spec, Ctx);
  if (!Parsed)
    return "printed formula does not re-parse (" + Parsed.error().str() +
           "): " + Printed;
  std::string Second = (*Parsed)->str();
  if (Second != Printed)
    return "print -> parse -> print is not a fixpoint:\n  first:  " + Printed +
           "\n  second: " + Second;
  return "";
}

std::string specRoundTrip(const std::string &Printed, FaultKind Fault) {
  Context Ctx2;
  auto Reparsed = parseSpecification(mutatePrinted(Printed, Fault), Ctx2);
  if (!Reparsed)
    return "printed specification does not re-parse (" +
           Reparsed.error().str() + ")";
  std::string Second = Reparsed->str();
  if (Second != Printed)
    return "spec print -> parse -> print is not a fixpoint:\n--- first\n" +
           Printed + "\n--- second\n" + Second;
  return "";
}

} // namespace

OracleReport fuzz::runRoundTripOracle(const FuzzOptions &Options) {
  OracleReport Report;
  Report.Oracle = "roundtrip";
  for (unsigned It = 0; It < Options.Iterations; ++It) {
    ++Report.Iterations;
    Context Ctx;
    Rng R(mixSeed(Options.Seed ^ RoundTripSalt, It));
    Generator Gen(Ctx, R);

    std::string Failure;
    std::string Repro;
    if (R.chance(70)) {
      auto Spec = parseSpecification(Generator::roundTripSpecSource(), Ctx);
      if (!Spec) {
        Failure = "round-trip base spec does not parse: " +
                  Spec.error().str();
        Repro = Generator::roundTripSpecSource();
      } else {
        const Formula *F =
            Gen.temporalFormula(*Spec, static_cast<int>(R.range(2, 4)));
        std::string Printed = F->str();
        Failure = formulaRoundTrip(Printed, *Spec, Ctx, Options.Fault);
        if (!Failure.empty()) {
          // Shrink at the text level, preserving the failure.
          const Specification &SpecRef = *Spec;
          FaultKind Fault = Options.Fault;
          Repro = shrinkSource(Printed, [&](const std::string &Candidate) {
            Context ShrinkCtx;
            auto SpecCopy =
                parseSpecification(Generator::roundTripSpecSource(), ShrinkCtx);
            if (!SpecCopy)
              return false;
            auto First = parseFormula(Candidate, *SpecCopy, ShrinkCtx);
            if (!First)
              return false; // Must start from a valid formula.
            return !formulaRoundTrip((*First)->str(), *SpecCopy, ShrinkCtx,
                                     Fault)
                        .empty();
          });
          (void)SpecRef;
        }
      }
    } else {
      Specification Spec = Gen.randomSpec();
      std::string Printed = Spec.str();
      Failure = specRoundTrip(Printed, Options.Fault);
      if (!Failure.empty()) {
        FaultKind Fault = Options.Fault;
        Repro = shrinkSource(Printed, [&](const std::string &Candidate) {
          Context ShrinkCtx;
          auto First = parseSpecification(Candidate, ShrinkCtx);
          if (!First)
            return false;
          return !specRoundTrip(First->str(), Fault).empty();
        });
      }
    }

    if (Failure.empty())
      continue;
    FailureCase F;
    F.Oracle = Report.Oracle;
    F.Seed = Options.Seed;
    F.Iteration = It;
    F.Description = Failure;
    F.Repro = Repro;
    F.ArtifactPath = writeArtifact(
        Options,
        "roundtrip-seed" + std::to_string(Options.Seed) + "-iter" +
            std::to_string(It) + ".tslmt",
        "// temos-fuzz roundtrip repro\n// seed " +
            std::to_string(Options.Seed) + " iteration " +
            std::to_string(It) + "\n// " + Failure + "\n" + Repro + "\n");
    Report.Failures.push_back(std::move(F));
    if (Report.Failures.size() >= Options.MaxFailures)
      break;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// SyGuS oracle
//===----------------------------------------------------------------------===//

namespace {

/// Executes \p Steps from x = Start; true when the post-condition holds
/// in the final state. nullopt when evaluation fails.
std::optional<bool> groundRun(const SygusQuery &Query, int64_t Start,
                              const std::vector<StepChoice> &Steps) {
  Evaluator E;
  Assignment State = {{"x", Value::integer(Start)}};
  for (const StepChoice &Step : Steps)
    if (!applyStepConcrete(E, State, Step))
      return std::nullopt;
  for (const TheoryLiteral &L : Query.Post) {
    auto V = E.evaluateBool(L.Atom, State);
    if (!V)
      return std::nullopt;
    if (*V != L.Positive)
      return false;
  }
  return true;
}

/// True when \p Steps reaches the post from every start in [Lo, Hi].
std::optional<bool> groundVerify(const SygusQuery &Query, int64_t Lo,
                                 int64_t Hi,
                                 const std::vector<StepChoice> &Steps) {
  for (int64_t S = Lo; S <= Hi; ++S) {
    auto Ok = groundRun(Query, S, Steps);
    if (!Ok)
      return std::nullopt;
    if (!*Ok)
      return false;
  }
  return true;
}

/// Exhaustive search over the same chain grammar the solver enumerates;
/// returns a program verified by ground execution, if any exists.
std::optional<SequentialProgram> bruteForceProgram(const SygusCase &Case) {
  const CellSpec &Cell = Case.Query.Cells[0];
  for (unsigned Len = 1; Len <= Case.MaxSteps; ++Len) {
    std::vector<size_t> Odometer(Len, 0);
    while (true) {
      SequentialProgram P;
      for (unsigned I = 0; I < Len; ++I)
        P.Steps.push_back({{Cell.Name, Cell.Updates[Odometer[I]]}});
      auto Ok = groundVerify(Case.Query, Case.Lo, Case.Hi, P.Steps);
      if (Ok && *Ok)
        return P;
      size_t I = 0;
      for (; I < Len; ++I) {
        if (++Odometer[I] < Cell.Updates.size())
          break;
        Odometer[I] = 0;
      }
      if (I == Len)
        break;
    }
  }
  return std::nullopt;
}

enum class SygusDisc { None, UnsoundProgram, MissedProgram, ExclusionIgnored };

struct SygusVerdict {
  SygusDisc Kind = SygusDisc::None;
  bool Skipped = false;
  std::string Detail;
};

SygusVerdict checkSygusCase(Context &Ctx, const SygusCase &Case,
                            FaultKind Fault) {
  SygusVerdict Out;
  SygusSolver Solver(Ctx, Theory::LIA);
  Solver.Opts.MaxSteps = Case.MaxSteps;
  auto P = Solver.synthesizeSequentialUpTo(Case.Query);

  if (!P) {
    // Completeness: the solver enumerates exactly this space, so a
    // ground-verified program it missed is a genuine bug.
    if (auto Missed = bruteForceProgram(Case)) {
      Out.Kind = SygusDisc::MissedProgram;
      Out.Detail = "solver found no program but " + Missed->str() +
                   " verifies by ground execution";
    }
    return Out;
  }

  SequentialProgram Candidate = *P;
  if (Fault == FaultKind::SkipVerify && !Candidate.Steps.empty()) {
    // Swap the first step for a different update without re-verifying.
    const CellSpec &Cell = Case.Query.Cells[0];
    const Term *Current = Candidate.Steps[0].at(Cell.Name);
    for (const Term *U : Cell.Updates)
      if (U != Current) {
        Candidate.Steps[0][Cell.Name] = U;
        break;
      }
  }

  auto Ok = groundVerify(Case.Query, Case.Lo, Case.Hi, Candidate.Steps);
  if (!Ok) {
    Out.Skipped = true;
    return Out;
  }
  if (!*Ok) {
    // Find a witness start for the report.
    std::string Witness;
    for (int64_t S = Case.Lo; S <= Case.Hi; ++S) {
      auto R = groundRun(Case.Query, S, Candidate.Steps);
      if (R && !*R) {
        Witness = " (fails from x = " + std::to_string(S) + ")";
        break;
      }
    }
    Out.Kind = SygusDisc::UnsoundProgram;
    Out.Detail = "synthesized program " + Candidate.str() +
                 " violates the post-condition under ground execution" +
                 Witness;
    return Out;
  }

  // Exclusion lists must exclude: re-synthesizing with the found
  // program excluded must not return it again.
  auto P2 = Solver.synthesizeSequential(Case.Query,
                                        static_cast<unsigned>(P->length()),
                                        {*P});
  if (P2 && *P2 == *P) {
    Out.Kind = SygusDisc::ExclusionIgnored;
    Out.Detail = "exclusion constraint ignored: " + P->str() +
                 " returned again despite being excluded";
  }
  return Out;
}

/// Renders a SyGuS case for the repro file.
std::string sygusReproText(const SygusCase &Case, const std::string &Header,
                           const std::string &Detail) {
  std::string Out = "# temos-fuzz sygus repro\n# " + Header + "\n";
  const CellSpec &Cell = Case.Query.Cells[0];
  Out += "# cell " + Cell.Name + " : int, updates {";
  for (size_t I = 0; I < Cell.Updates.size(); ++I)
    Out += std::string(I ? ", " : " ") + Cell.Updates[I]->str();
  Out += " }\n# pre: " + std::to_string(Case.Lo) + " <= x <= " +
         std::to_string(Case.Hi) + "\n# post:";
  for (const TheoryLiteral &L : Case.Query.Post)
    Out += std::string(" ") + (L.Positive ? "" : "! ") + L.Atom->str();
  Out += "\n# max steps: " + std::to_string(Case.MaxSteps) + "\n# " + Detail +
         "\n";
  return Out;
}

/// Greedy SyGuS-case shrink: drop update options, narrow the box,
/// simplify the post-condition constant.
SygusCase shrinkSygusCase(Context &Ctx, SygusCase Case, SygusDisc Kind,
                          FaultKind Fault) {
  auto StillFails = [&](const SygusCase &Candidate) {
    return !Candidate.Query.Cells[0].Updates.empty() &&
           Candidate.Lo <= Candidate.Hi &&
           checkSygusCase(Ctx, Candidate, Fault).Kind == Kind;
  };
  bool Changed = true;
  unsigned Budget = 200;
  while (Changed && Budget > 0) {
    Changed = false;
    // Drop update options.
    for (size_t I = 0; I < Case.Query.Cells[0].Updates.size() && Budget > 0;
         ++I) {
      SygusCase Candidate = Case;
      auto &Updates = Candidate.Query.Cells[0].Updates;
      Updates.erase(Updates.begin() + static_cast<long>(I));
      --Budget;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        Changed = true;
        --I;
      }
    }
    // Narrow the box from both ends (rebuilding the pre literals).
    for (bool FromLow : {true, false}) {
      if (Budget == 0 || Case.Lo >= Case.Hi)
        break;
      SygusCase Candidate = Case;
      if (FromLow)
        ++Candidate.Lo;
      else
        --Candidate.Hi;
      const Term *X = Ctx.Terms.signal("x", Sort::Int);
      Candidate.Query.Pre = {
          {Ctx.Terms.apply(">=", Sort::Bool,
                           {X, Ctx.Terms.numeral(Candidate.Lo)}),
           true},
          {Ctx.Terms.apply("<=", Sort::Bool,
                           {X, Ctx.Terms.numeral(Candidate.Hi)}),
           true}};
      --Budget;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        Changed = true;
      }
    }
    // Fewer steps.
    if (Budget > 0 && Case.MaxSteps > 1) {
      SygusCase Candidate = Case;
      --Candidate.MaxSteps;
      --Budget;
      if (StillFails(Candidate)) {
        Case = std::move(Candidate);
        Changed = true;
      }
    }
  }
  return Case;
}

} // namespace

OracleReport fuzz::runSygusOracle(const FuzzOptions &Options) {
  OracleReport Report;
  Report.Oracle = "sygus";
  for (unsigned It = 0; It < Options.Iterations; ++It) {
    ++Report.Iterations;
    Context Ctx;
    Rng R(mixSeed(Options.Seed ^ SygusSalt, It));
    Generator Gen(Ctx, R);
    SygusCase Case = Gen.sygusCase();

    SygusVerdict V = checkSygusCase(Ctx, Case, Options.Fault);
    if (V.Skipped) {
      ++Report.Skipped;
      continue;
    }
    if (V.Kind == SygusDisc::None)
      continue;

    SygusCase Shrunk = shrinkSygusCase(Ctx, Case, V.Kind, Options.Fault);
    SygusVerdict Final = checkSygusCase(Ctx, Shrunk, Options.Fault);

    FailureCase F;
    F.Oracle = Report.Oracle;
    F.Seed = Options.Seed;
    F.Iteration = It;
    F.Description = Final.Detail.empty() ? V.Detail : Final.Detail;
    F.Repro = sygusReproText(
        Shrunk,
        "seed " + std::to_string(Options.Seed) + " iteration " +
            std::to_string(It) +
            (Options.Fault != FaultKind::None
                 ? std::string(" injected-fault ") + faultName(Options.Fault)
                 : ""),
        F.Description);
    F.ArtifactPath = writeArtifact(
        Options,
        "sygus-seed" + std::to_string(Options.Seed) + "-iter" +
            std::to_string(It) + ".txt",
        F.Repro);
    Report.Failures.push_back(std::move(F));
    if (Report.Failures.size() >= Options.MaxFailures)
      break;
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Pipeline oracle
//===----------------------------------------------------------------------===//

namespace {

/// Everything that must be byte-identical across configurations.
struct PipelineOutcome {
  bool Parsed = false;
  std::string Status;
  std::string Diagnostic;
  std::string Assumptions;
  std::string Js;
  std::string Cpp;

  bool operator==(const PipelineOutcome &RHS) const {
    return Parsed == RHS.Parsed && Status == RHS.Status &&
           Diagnostic == RHS.Diagnostic && Assumptions == RHS.Assumptions &&
           Js == RHS.Js && Cpp == RHS.Cpp;
  }
};

PipelineOutcome runPipelineConfig(const std::string &Source, unsigned Jobs,
                                  bool Cache, bool Incremental,
                                  FaultKind Fault) {
  PipelineOutcome Out;
  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec)
    return Out;
  Out.Parsed = true;

  Synthesizer Synth(Ctx);
  PipelineOptions Options;
  Options.Parallelism.NumThreads = Jobs;
  Options.Parallelism.CacheEnabled = Cache;
  Options.Reactive.Incremental = Incremental;
  if (Fault == FaultKind::LazyConfig && Jobs > 1)
    Options.Eager = false;
  PipelineResult R = Synth.run(*Spec, Options);

  switch (R.Status) {
  case Realizability::Realizable:
    Out.Status = "realizable";
    break;
  case Realizability::Unrealizable:
    Out.Status = "unrealizable";
    break;
  case Realizability::Unknown:
    Out.Status = "unknown";
    break;
  }
  Out.Diagnostic = R.Diagnostic;
  for (const Formula *A : R.Assumptions)
    Out.Assumptions += A->str() + "\n";
  if (R.Status == Realizability::Realizable && R.Machine) {
    Out.Js = emitJavaScript(*R.Machine, R.AB, *Spec);
    Out.Cpp = emitCpp(*R.Machine, R.AB, *Spec);
  }
  return Out;
}

/// Returns a description of the first configuration disagreeing with
/// the jobs=1/cache=on reference; empty when all agree.
std::string pipelineDisagreement(const std::string &Source, FaultKind Fault) {
  struct Config {
    unsigned Jobs;
    bool Cache;
    bool Incremental;
  };
  // The last row pits the incremental reactive engine against the
  // rebuild-everything path: NBA/arena reuse must never change any
  // observable output.
  static const Config Configs[] = {{1, true, true},
                                   {4, true, true},
                                   {1, false, true},
                                   {4, false, true},
                                   {1, true, false}};
  PipelineOutcome Reference = runPipelineConfig(
      Source, Configs[0].Jobs, Configs[0].Cache, Configs[0].Incremental,
      Fault);
  if (!Reference.Parsed)
    return "";
  for (size_t I = 1; I < std::size(Configs); ++I) {
    PipelineOutcome Other =
        runPipelineConfig(Source, Configs[I].Jobs, Configs[I].Cache,
                          Configs[I].Incremental, Fault);
    if (Other == Reference)
      continue;
    std::string ConfigStr =
        "jobs=" + std::to_string(Configs[I].Jobs) + " cache=" +
        (Configs[I].Cache ? "on" : "off") +
        (Configs[I].Incremental ? "" : " incremental=off");
    std::string What;
    if (Other.Status != Reference.Status)
      What = "status '" + Reference.Status + "' vs '" + Other.Status + "'";
    else if (Other.Assumptions != Reference.Assumptions)
      What = "assumption sets differ:\n--- jobs=1\n" + Reference.Assumptions +
             "--- " + ConfigStr + "\n" + Other.Assumptions;
    else if (Other.Js != Reference.Js)
      What = "emitted JavaScript differs";
    else if (Other.Cpp != Reference.Cpp)
      What = "emitted C++ differs";
    else
      What = "diagnostics differ";
    return ConfigStr + " disagrees with the reference: " + What;
  }
  return "";
}

/// SpinHang probe. Unlike the differential faults, the planted bug is a
/// genuine non-termination (the SyGuS enumerator withholds every
/// verified candidate and restarts its sweep forever), so the oracle is
/// not a cross-config diff but a liveness check on the deadline
/// machinery itself: with a short SyGuS budget, the run must come back
/// within 2x the budget carrying a Timeout failure record for the sygus
/// phase. A "failure" here is the *detection* (proof the probe works),
/// mirroring how the other injected faults surface; a deadline
/// regression instead yields zero detections (or a hung harness), which
/// the injection tests treat as the bug.
OracleReport runSpinHangProbe(const FuzzOptions &Options) {
  OracleReport Report;
  Report.Oracle = "pipeline";
  const double BudgetSeconds = 0.3;
  for (unsigned It = 0; It < Options.Iterations; ++It) {
    ++Report.Iterations;
    Context Ctx;
    Rng R(mixSeed(Options.Seed ^ PipelineSalt, It));
    Generator Gen(Ctx, R);
    std::string Source = Gen.pipelineSpecSource();
    auto Spec = parseSpecification(Source, Ctx);
    if (!Spec) {
      ++Report.Skipped;
      continue;
    }

    Synthesizer Synth(Ctx);
    PipelineOptions PO;
    PO.InjectSpinHang = true;
    PO.Budget.SygusSeconds = BudgetSeconds;
    Timer Wall;
    PipelineResult PR = Synth.run(*Spec, PO);
    const double WallSeconds = Wall.seconds();

    bool SygusTimeout = false;
    std::string Records;
    for (const FailureRecord &Rec : PR.Stats.Failures) {
      if (Rec.Kind == FailureKind::Timeout && Rec.Phase == "sygus")
        SygusTimeout = true;
      Records += std::string("// failure: ") + failureKindName(Rec.Kind) +
                 " [" + Rec.Phase + "] " + Rec.Detail + "\n";
    }
    // Specs without data obligations never enter the planted loop; they
    // exercise nothing and are skipped, not counted as misses.
    if (!SygusTimeout) {
      ++Report.Skipped;
      continue;
    }
    if (WallSeconds > 2 * BudgetSeconds)
      continue; // Deadline tripped, but too late: not a clean detection.

    char Desc[160];
    std::snprintf(Desc, sizeof(Desc),
                  "spin-hang tripped the sygus deadline in %.3fs "
                  "(budget %.3fs, ceiling %.3fs)",
                  WallSeconds, BudgetSeconds, 2 * BudgetSeconds);

    char OptLine[128];
    std::snprintf(OptLine, sizeof(OptLine),
                  "// options: jobs=1 cache=on lazy=off sygus-budget=%g "
                  "inject-fault=spin-hang\n",
                  BudgetSeconds);
    std::string Repro = "// temos-artifact: v1\n// spec: fuzz-pipeline-seed" +
                        std::to_string(Options.Seed) + "-iter" +
                        std::to_string(It) + "\n// status: unknown\n" +
                        Records + OptLine + "// seed: " +
                        std::to_string(Options.Seed) +
                        "\n// replay: temos-fuzz --replay <this file>\n" +
                        Source + "\n";

    FailureCase F;
    F.Oracle = Report.Oracle;
    F.Seed = Options.Seed;
    F.Iteration = It;
    F.Description = Desc;
    F.Repro = Repro;
    F.ArtifactPath = writeArtifact(
        Options,
        "pipeline-spinhang-seed" + std::to_string(Options.Seed) + "-iter" +
            std::to_string(It) + ".tslmt",
        Repro);
    Report.Failures.push_back(std::move(F));
    if (Report.Failures.size() >= Options.MaxFailures)
      break;
  }
  return Report;
}

} // namespace

OracleReport fuzz::runPipelineOracle(const FuzzOptions &Options) {
  if (Options.Fault == FaultKind::SpinHang)
    return runSpinHangProbe(Options);
  OracleReport Report;
  Report.Oracle = "pipeline";
  for (unsigned It = 0; It < Options.Iterations; ++It) {
    ++Report.Iterations;
    Context Ctx;
    Rng R(mixSeed(Options.Seed ^ PipelineSalt, It));
    Generator Gen(Ctx, R);
    std::string Source = Gen.pipelineSpecSource();

    std::string Failure = pipelineDisagreement(Source, Options.Fault);
    if (Failure.empty())
      continue;

    FaultKind Fault = Options.Fault;
    std::string Shrunk =
        shrinkSource(Source, [&](const std::string &Candidate) {
          return !pipelineDisagreement(Candidate, Fault).empty();
        });

    FailureCase F;
    F.Oracle = Report.Oracle;
    F.Seed = Options.Seed;
    F.Iteration = It;
    F.Description = Failure;
    F.Repro = Shrunk;
    F.ArtifactPath = writeArtifact(
        Options,
        "pipeline-seed" + std::to_string(Options.Seed) + "-iter" +
            std::to_string(It) + ".tslmt",
        "// temos-fuzz pipeline repro\n// seed " +
            std::to_string(Options.Seed) + " iteration " +
            std::to_string(It) + "\n// " + Failure + "\n" + Shrunk + "\n");
    Report.Failures.push_back(std::move(F));
    if (Report.Failures.size() >= Options.MaxFailures)
      break;
  }
  return Report;
}

std::vector<OracleReport> fuzz::runAllOracles(const FuzzOptions &Options) {
  return {runTheoryOracle(Options), runRoundTripOracle(Options),
          runSygusOracle(Options), runPipelineOracle(Options)};
}

bool fuzz::isPipelineArtifact(const std::string &Source) {
  return Source.find("// temos-artifact:") != std::string::npos;
}

std::string fuzz::replayPipelineArtifact(const std::string &Source,
                                         bool &StillFails) {
  StillFails = false;

  // Re-parse the option header the artifact writer emitted; unknown
  // tokens are ignored so the format can grow.
  PipelineOptions PO;
  for (const std::string &Line : split(Source, '\n')) {
    std::string T = trim(Line);
    if (T.rfind("// options:", 0) != 0)
      continue;
    for (const std::string &Tok : split(T.substr(11), ' ')) {
      std::string::size_type Eq = Tok.find('=');
      if (Eq == std::string::npos)
        continue;
      std::string Key = Tok.substr(0, Eq);
      std::string Val = Tok.substr(Eq + 1);
      if (Key == "jobs")
        PO.Parallelism.NumThreads = static_cast<unsigned>(
            std::max(1L, std::strtol(Val.c_str(), nullptr, 10)));
      else if (Key == "cache")
        PO.Parallelism.CacheEnabled = Val != "off";
      else if (Key == "lazy")
        PO.Eager = Val != "on";
      else if (Key == "time-budget")
        PO.Budget.TotalSeconds = std::strtod(Val.c_str(), nullptr);
      else if (Key == "consistency-budget")
        PO.Budget.ConsistencySeconds = std::strtod(Val.c_str(), nullptr);
      else if (Key == "sygus-budget")
        PO.Budget.SygusSeconds = std::strtod(Val.c_str(), nullptr);
      else if (Key == "reactive-budget")
        PO.Budget.ReactiveSeconds = std::strtod(Val.c_str(), nullptr);
      else if (Key == "inject-fault")
        PO.InjectSpinHang = Val == "spin-hang";
    }
    break;
  }

  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec)
    return "artifact replay: embedded spec does not parse: " +
           Spec.error().str();

  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec, PO);

  std::string Out = "pipeline artifact replay\n";
  switch (R.Status) {
  case Realizability::Realizable:
    Out += "status: realizable\n";
    break;
  case Realizability::Unrealizable:
    Out += "status: unrealizable\n";
    break;
  case Realizability::Unknown:
    Out += "status: unknown\n";
    break;
  }
  if (!R.Diagnostic.empty())
    Out += "diagnostic: " + R.Diagnostic + "\n";
  for (const FailureRecord &F : R.Stats.Failures)
    Out += std::string("failure: ") + failureKindName(F.Kind) + " [" +
           F.Phase + "] " + F.Detail + "\n";
  StillFails = !R.Stats.Failures.empty();
  Out += StillFails ? "degradation reproduces\n"
                    : "run completed clean; degradation does not reproduce\n";
  return Out;
}
