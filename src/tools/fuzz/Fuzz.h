//===- tools/fuzz/Fuzz.h - Differential fuzzing harness --------*- C++ -*-===//
///
/// \file
/// temos-fuzz: a deterministic, seed-driven differential fuzzing harness
/// for the from-scratch substrates (SMT, SyGuS, parser, pipeline). Every
/// substrate the paper outsourced to CVC4/tsltools/Strix is reimplemented
/// here, so a silent soundness bug in any layer corrupts the whole
/// pipeline; differential oracles are the primary defense (the same
/// posture CVC5 and Z3 take).
///
/// Four cross-substrate oracles:
///  * theory    -- random QF_LIA/QF_LRA/QF_UF literal conjunctions,
///                 SmtSolver vs. brute-force ground evaluation over a
///                 bounded model grid (delta-rational strict-bound cases
///                 targeted explicitly);
///  * roundtrip -- print -> parse -> print fixpoint for generated
///                 formulas and whole specifications via ParseResult;
///  * sygus     -- synthesized candidates re-verified by independent
///                 ground execution; exclusion lists checked to exclude;
///  * pipeline  -- full runs at jobs=1 vs jobs=4, cache on vs. off,
///                 asserting byte-identical assumption sets and code.
///
/// On failure a greedy shrinker minimizes the case while the oracle
/// still fails and a standalone repro file is written to the artifacts
/// directory. Fault injection (--inject-fault) deliberately perturbs one
/// substrate answer so the harness's detection and shrinking paths stay
/// themselves tested.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_TOOLS_FUZZ_FUZZ_H
#define TEMOS_TOOLS_FUZZ_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

namespace temos {
namespace fuzz {

/// A deliberately injected fault, used to prove the harness detects and
/// shrinks real bugs (none of these touch the shipped substrates; they
/// perturb the oracle's view of one substrate answer).
enum class FaultKind {
  None,
  /// Theory oracle: the first strict comparison handed to the SMT
  /// solver is weakened to its non-strict form (emulates an off-by-delta
  /// strict-bound bug in the simplex layer).
  FlipStrict,
  /// Theory oracle: the last literal is dropped from the solver's input
  /// (emulates a lost-constraint bug in literal translation).
  DropConjunct,
  /// Round-trip oracle: the first "&&" in the printed text becomes "||"
  /// before re-parsing (emulates a printer precedence/operator bug).
  MutatePrint,
  /// SyGuS oracle: the first step of the synthesized program is swapped
  /// for a different update choice without re-verification (emulates an
  /// unsound enumerator cache).
  SkipVerify,
  /// Pipeline oracle: the multi-threaded configuration silently runs
  /// the lazy strategy (emulates a configuration-plumbing bug).
  LazyConfig,
  /// Pipeline oracle: plants PipelineOptions::InjectSpinHang (a SyGuS
  /// enumeration that never terminates) under a short SyGuS time
  /// budget. "Detection" here means the deadline machinery tripped: the
  /// run came back within 2x the budget with a Timeout failure record
  /// instead of hanging. A deadline regression turns this into an
  /// undetected fault (or a hung harness), failing the run.
  SpinHang,
};

const char *faultName(FaultKind K);
bool parseFaultKind(const std::string &Name, FaultKind &Out);

/// Harness-wide options.
struct FuzzOptions {
  uint64_t Seed = 1;
  unsigned Iterations = 500;
  /// Directory for shrunk repro files; created on demand. Empty
  /// disables artifact writing.
  std::string ArtifactsDir = "fuzz-artifacts";
  FaultKind Fault = FaultKind::None;
  /// Stop an oracle after this many (shrunk) failures.
  unsigned MaxFailures = 3;
  bool Verbose = false;
};

/// One detected, shrunk discrepancy.
struct FailureCase {
  std::string Oracle;
  uint64_t Seed = 0;
  unsigned Iteration = 0;
  /// Human-readable statement of the disagreement.
  std::string Description;
  /// Shrunk, standalone repro text (spec syntax where possible).
  std::string Repro;
  /// Path of the written artifact; empty when writing was disabled.
  std::string ArtifactPath;
};

/// Outcome of one oracle's run.
struct OracleReport {
  std::string Oracle;
  unsigned Iterations = 0;
  /// Iterations skipped because the verdict was Unknown or the case was
  /// outside the brute-force grid's competence.
  unsigned Skipped = 0;
  std::vector<FailureCase> Failures;

  bool ok() const { return Failures.empty(); }
};

OracleReport runTheoryOracle(const FuzzOptions &Options);
OracleReport runRoundTripOracle(const FuzzOptions &Options);
OracleReport runSygusOracle(const FuzzOptions &Options);
OracleReport runPipelineOracle(const FuzzOptions &Options);

/// Runs every oracle with the same options.
std::vector<OracleReport> runAllOracles(const FuzzOptions &Options);

/// Replays a theory-oracle repro file (the format written by the
/// artifacts path): parses the spec, interprets every `always assume`
/// conjunct as a theory literal, and re-runs solver vs. brute force.
/// Returns a human-readable report; sets \p StillFails when the
/// discrepancy reproduces.
std::string replayTheoryRepro(const std::string &Source, bool &StillFails);

/// Replays a `// temos-artifact:` file (the format the temos CLI and
/// the spin-hang probe dump on degraded runs): re-parses the option
/// header (jobs, cache, lazy, time budgets, inject-fault), re-runs the
/// pipeline on the embedded spec, and reports the verdict plus failure
/// records. Sets \p StillFails when the run still degrades (non-empty
/// failure list).
std::string replayPipelineArtifact(const std::string &Source,
                                   bool &StillFails);

/// True when \p Source carries the `// temos-artifact:` header and
/// should be replayed with replayPipelineArtifact rather than
/// replayTheoryRepro.
bool isPipelineArtifact(const std::string &Source);

} // namespace fuzz
} // namespace temos

#endif // TEMOS_TOOLS_FUZZ_FUZZ_H
