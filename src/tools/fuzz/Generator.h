//===- tools/fuzz/Generator.h - Random case generation ---------*- C++ -*-===//
///
/// \file
/// Seed-driven generation of the fuzzing harness's input cases: theory
/// literal conjunctions (QF_LIA / QF_LRA / QF_UF, with delta-rational
/// strict-bound families targeted explicitly), temporal formulas and
/// whole specifications for the round-trip oracle, SyGuS queries, and
/// small realizable pipeline specifications. All randomness flows from
/// one Rng, so a (seed, iteration) pair reproduces a case exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_TOOLS_FUZZ_GENERATOR_H
#define TEMOS_TOOLS_FUZZ_GENERATOR_H

#include "logic/Parser.h"
#include "support/Rng.h"
#include "sygus/SygusSolver.h"

#include <string>
#include <vector>

namespace temos {
namespace fuzz {

/// A generated theory case: a conjunction of literals allocated in the
/// generator's context.
struct TheoryCase {
  Theory Th = Theory::LIA;
  std::vector<TheoryLiteral> Literals;
  /// True when the case carries bounding-box literals that make the
  /// integer grid exhaustive, so brute force refuting satisfiability is
  /// authoritative (two-sided comparison). Otherwise the grid only
  /// certifies Sat (one-sided).
  bool GridComplete = false;
};

/// A generated SyGuS case: the query plus the concrete bounds of its
/// (input-free) pre-condition box, for independent ground checking.
struct SygusCase {
  SygusQuery Query;
  int64_t Lo = 0;
  int64_t Hi = 0;
  unsigned MaxSteps = 3;
};

/// Random case generator. Allocates all terms/formulas into the given
/// context; keep the context alive as long as the case.
class Generator {
public:
  Generator(Context &Ctx, Rng &R) : Ctx(Ctx), R(R) {}

  /// A random theory conjunction, rotating through the LIA-box, general
  /// LRA, strict-bound LRA and pure-UF families.
  TheoryCase theoryCase();

  /// A random temporal formula over \p Spec's declarations (updates,
  /// comparisons, boolean structure, X/G/F/U/W/R). \p Depth bounds the
  /// operator nesting.
  const Formula *temporalFormula(const Specification &Spec, int Depth);

  /// A random full specification built programmatically (declarations +
  /// assume/guarantee formulas), for the spec round-trip oracle.
  Specification randomSpec();

  /// Concrete source of a small specification from a family the
  /// bounded-synthesis pipeline handles quickly (counter-style), for the
  /// pipeline determinism oracle.
  std::string pipelineSpecSource();

  /// A random single-cell SyGuS query with an exhaustive integer
  /// pre-condition box.
  SygusCase sygusCase();

  /// The fixed specification the formula round-trip oracle parses its
  /// formulas against.
  static const char *roundTripSpecSource();

private:
  TheoryCase liaBoxCase();
  TheoryCase lraCase(bool TargetStrictBounds);
  TheoryCase ufCase();

  /// A random linear Int/Real term over \p Vars.
  const Term *linearTerm(const std::vector<const Term *> &Vars, Sort S,
                         bool AllowHalves);

  Context &Ctx;
  Rng &R;
};

} // namespace fuzz
} // namespace temos

#endif // TEMOS_TOOLS_FUZZ_GENERATOR_H
