//===- tools/fuzz/Shrinker.h - Greedy repro minimization -------*- C++ -*-===//
///
/// \file
/// Greedy shrinking of failing fuzz cases: repeatedly tries simpler
/// variants (drop a conjunct, shrink a constant toward zero, replace a
/// compound subterm by one of its arguments, drop a source line) and
/// keeps any variant for which the caller's predicate still reports the
/// failure. Deterministic and bounded, so shrinking itself reproduces
/// from the seed.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_TOOLS_FUZZ_SHRINKER_H
#define TEMOS_TOOLS_FUZZ_SHRINKER_H

#include "theory/SmtSolver.h"

#include <functional>
#include <string>
#include <vector>

namespace temos {
namespace fuzz {

/// Returns true when the candidate still demonstrates the failure being
/// minimized. The predicate must be deterministic.
using LiteralsPredicate =
    std::function<bool(const std::vector<TheoryLiteral> &)>;
using SourcePredicate = std::function<bool(const std::string &)>;

/// Structurally simpler variants of \p T, most aggressive first:
/// numerals move toward zero, compound arithmetic collapses to an
/// argument, comparisons shrink on either side. Capped; allocates into
/// \p TF. Exposed for the shrinker unit tests.
std::vector<const Term *> simplerTermVariants(TermFactory &TF, const Term *T);

/// Minimizes a literal conjunction while \p StillFails holds. Tries, to
/// a fixpoint: dropping literals, making negative literals positive,
/// and substituting simpler atom variants.
std::vector<TheoryLiteral> shrinkLiterals(TermFactory &TF,
                                          std::vector<TheoryLiteral> Case,
                                          const LiteralsPredicate &StillFails,
                                          unsigned MaxRounds = 400);

/// Minimizes a multi-line source text while \p StillFails holds. Tries,
/// to a fixpoint: dropping single lines, dropping whole `{...}` blocks,
/// and shrinking integer tokens toward zero.
std::string shrinkSource(std::string Source, const SourcePredicate &StillFails,
                         unsigned MaxRounds = 400);

} // namespace fuzz
} // namespace temos

#endif // TEMOS_TOOLS_FUZZ_SHRINKER_H
