//===- tools/fuzz/Generator.cpp - Random case generation ------------------===//

#include "tools/fuzz/Generator.h"

using namespace temos;
using namespace temos::fuzz;

//===----------------------------------------------------------------------===//
// Theory cases
//===----------------------------------------------------------------------===//

static const char *const Rels[] = {"<", "<=", ">", ">=", "=", "!="};

const Term *Generator::linearTerm(const std::vector<const Term *> &Vars,
                                  Sort S, bool AllowHalves) {
  auto Constant = [&]() -> const Term * {
    if (AllowHalves && R.chance(40))
      return Ctx.Terms.numeral(Rational(R.range(-8, 8), 2), S);
    return Ctx.Terms.numeral(Rational(R.range(-6, 6)), S);
  };
  auto Atom = [&]() -> const Term * {
    if (R.chance(25))
      return Constant();
    const Term *V = R.pick(Vars);
    if (R.chance(30)) {
      int64_t C = R.range(-3, 3);
      if (C == 0)
        C = 2;
      return Ctx.Terms.apply("*", S, {Ctx.Terms.numeral(Rational(C), S), V});
    }
    return V;
  };
  const Term *T = Atom();
  unsigned Extra = static_cast<unsigned>(R.range(0, 2));
  for (unsigned I = 0; I < Extra; ++I)
    T = Ctx.Terms.apply(R.chance(70) ? "+" : "-", S, {T, Atom()});
  return T;
}

TheoryCase Generator::liaBoxCase() {
  TheoryCase C;
  C.Th = Theory::LIA;
  C.GridComplete = true;

  std::vector<const Term *> Vars;
  static const char *const Names[] = {"x", "y", "z"};
  unsigned VarCount = static_cast<unsigned>(R.range(2, 3));
  for (unsigned I = 0; I < VarCount; ++I)
    Vars.push_back(Ctx.Terms.signal(Names[I], Sort::Int));

  // Bounding box: every variable confined to [-4, 4], so brute force
  // over the grid is exhaustive and Unsat verdicts are checkable too.
  for (const Term *V : Vars) {
    C.Literals.push_back(
        {Ctx.Terms.apply(">=", Sort::Bool, {V, Ctx.Terms.numeral(-4)}), true});
    C.Literals.push_back(
        {Ctx.Terms.apply("<=", Sort::Bool, {V, Ctx.Terms.numeral(4)}), true});
  }

  unsigned Extra = static_cast<unsigned>(R.range(2, 5));
  for (unsigned I = 0; I < Extra; ++I) {
    const Term *Lhs = linearTerm(Vars, Sort::Int, /*AllowHalves=*/false);
    const Term *Rhs = R.chance(75) ? Ctx.Terms.numeral(R.range(-8, 8))
                                   : linearTerm(Vars, Sort::Int, false);
    const Term *Atom =
        Ctx.Terms.apply(Rels[R.range(0, 5)], Sort::Bool, {Lhs, Rhs});
    C.Literals.push_back({Atom, !R.chance(30)});
  }
  return C;
}

TheoryCase Generator::lraCase(bool TargetStrictBounds) {
  TheoryCase C;
  C.Th = Theory::LRA;
  C.GridComplete = false;

  std::vector<const Term *> Vars = {Ctx.Terms.signal("x", Sort::Real),
                                    Ctx.Terms.signal("y", Sort::Real)};

  if (TargetStrictBounds) {
    // Delta-rational stress: tight strict corridors like c < x < c + 1,
    // x < y < x + 1/2, and strict sums right at a boundary. These are
    // exactly the cases where an off-by-delta bug in the simplex bound
    // handling flips a verdict.
    const Term *X = Vars[0], *Y = Vars[1];
    int64_t Base = R.range(-3, 3);
    const Term *Lo = Ctx.Terms.numeral(Rational(Base), Sort::Real);
    const Term *Hi = Ctx.Terms.numeral(
        Rational(2 * Base + R.range(1, 2), 2), Sort::Real);
    C.Literals.push_back(
        {Ctx.Terms.apply(R.chance(80) ? ">" : ">=", Sort::Bool, {X, Lo}),
         true});
    C.Literals.push_back(
        {Ctx.Terms.apply(R.chance(80) ? "<" : "<=", Sort::Bool, {X, Hi}),
         true});
    switch (R.range(0, 2)) {
    case 0:
      // y strictly between x and x + 1/2.
      C.Literals.push_back(
          {Ctx.Terms.apply("<", Sort::Bool, {X, Y}), true});
      C.Literals.push_back(
          {Ctx.Terms.apply(
               "<", Sort::Bool,
               {Y, Ctx.Terms.apply(
                       "+", Sort::Real,
                       {X, Ctx.Terms.numeral(Rational(1, 2), Sort::Real)})}),
           true});
      break;
    case 1:
      // x + y pinned strictly against a boundary.
      C.Literals.push_back(
          {Ctx.Terms.apply(
               ">", Sort::Bool,
               {Ctx.Terms.apply("+", Sort::Real, {X, Y}),
                Ctx.Terms.numeral(Rational(2 * Base, 2), Sort::Real)}),
           true});
      C.Literals.push_back(
          {Ctx.Terms.apply(
               "<=", Sort::Bool,
               {Y, Ctx.Terms.numeral(Rational(Base), Sort::Real)}),
           !R.chance(30)});
      break;
    default:
      // Equality colliding with a strict bound.
      C.Literals.push_back(
          {Ctx.Terms.apply("=", Sort::Bool, {Y, Lo}), true});
      C.Literals.push_back(
          {Ctx.Terms.apply(R.chance(50) ? "<" : ">", Sort::Bool, {Y, X}),
           true});
      break;
    }
    return C;
  }

  // General LRA conjunction; bounds keep models inside the sample grid
  // often enough for the one-sided check to bite.
  for (const Term *V : Vars) {
    C.Literals.push_back(
        {Ctx.Terms.apply(R.chance(40) ? ">" : ">=", Sort::Bool,
                         {V, Ctx.Terms.numeral(Rational(-4), Sort::Real)}),
         true});
    C.Literals.push_back(
        {Ctx.Terms.apply(R.chance(40) ? "<" : "<=", Sort::Bool,
                         {V, Ctx.Terms.numeral(Rational(4), Sort::Real)}),
         true});
  }
  unsigned Extra = static_cast<unsigned>(R.range(2, 4));
  for (unsigned I = 0; I < Extra; ++I) {
    const Term *Lhs = linearTerm(Vars, Sort::Real, /*AllowHalves=*/true);
    const Term *Rhs = Ctx.Terms.numeral(Rational(R.range(-10, 10), 2),
                                        Sort::Real);
    const Term *Atom =
        Ctx.Terms.apply(Rels[R.range(0, 5)], Sort::Bool, {Lhs, Rhs});
    C.Literals.push_back({Atom, !R.chance(30)});
  }
  return C;
}

TheoryCase Generator::ufCase() {
  TheoryCase C;
  C.Th = Theory::UF;
  C.GridComplete = false;

  const Term *U = Ctx.Terms.signal("u", Sort::Opaque);
  const Term *V = Ctx.Terms.signal("v", Sort::Opaque);
  const Term *W = Ctx.Terms.signal("w", Sort::Opaque);
  auto F = [&](const Term *Arg) {
    return Ctx.Terms.apply("f", Sort::Opaque, {Arg});
  };
  auto G = [&](const Term *A, const Term *B) {
    return Ctx.Terms.apply("g", Sort::Opaque, {A, B});
  };
  std::vector<const Term *> Pool = {U, V, W, F(U), F(V), F(W), F(F(U)),
                                    G(U, V), G(V, U),
                                    Ctx.Terms.apply("k", Sort::Opaque, {})};

  unsigned Count = static_cast<unsigned>(R.range(3, 6));
  for (unsigned I = 0; I < Count; ++I) {
    const Term *A = R.pick(Pool);
    const Term *B = R.pick(Pool);
    const Term *Atom = Ctx.Terms.apply(R.chance(75) ? "=" : "!=", Sort::Bool,
                                       {A, B});
    C.Literals.push_back({Atom, !R.chance(30)});
  }
  return C;
}

TheoryCase Generator::theoryCase() {
  int64_t Family = R.range(0, 9);
  if (Family <= 3)
    return liaBoxCase();
  if (Family <= 6)
    return lraCase(/*TargetStrictBounds=*/false);
  if (Family <= 8)
    return lraCase(/*TargetStrictBounds=*/true);
  return ufCase();
}

//===----------------------------------------------------------------------===//
// Round-trip cases
//===----------------------------------------------------------------------===//

const char *Generator::roundTripSpecSource() {
  return R"(#LIA#
spec RoundTrip
inputs  { int x; int y; bool p; opaque tok; }
cells   { int c = 0; }
outputs { int o; }
functions { opaque idle(); int sel(int, int); }
)";
}

const Formula *Generator::temporalFormula(const Specification &Spec,
                                          int Depth) {
  FormulaFactory &FF = Ctx.Formulas;
  TermFactory &TF = Ctx.Terms;

  auto IntTerm = [&](auto &&Self, int D) -> const Term * {
    if (D == 0 || R.chance(40)) {
      switch (R.range(0, 4)) {
      case 0:
        return TF.signal("x", Sort::Int);
      case 1:
        return TF.signal("y", Sort::Int);
      case 2:
        return TF.signal("c", Sort::Int);
      case 3:
        return TF.signal("o", Sort::Int);
      default:
        // Keep constants non-negative in application-argument position;
        // unary minus does not re-parse there (and 0..9 is plenty).
        return TF.numeral(R.range(0, 9));
      }
    }
    switch (R.range(0, 3)) {
    case 0:
      return TF.apply("+", Sort::Int,
                      {Self(Self, D - 1), Self(Self, D - 1)});
    case 1:
      return TF.apply("-", Sort::Int,
                      {Self(Self, D - 1), Self(Self, D - 1)});
    case 2:
      return TF.apply("*", Sort::Int,
                      {TF.numeral(R.range(1, 3)), Self(Self, D - 1)});
    default:
      return TF.apply("sel", Sort::Int,
                      {Self(Self, D - 1), Self(Self, D - 1)});
    }
  };

  auto AtomF = [&]() -> const Formula * {
    switch (R.range(0, 6)) {
    case 0:
      return FF.pred(TF.signal("p", Sort::Bool));
    case 1: {
      // Update of the cell or the output.
      const char *Cell = R.chance(60) ? "c" : "o";
      return FF.update(Cell, IntTerm(IntTerm, 1));
    }
    case 2:
      return FF.pred(TF.apply(
          "=", Sort::Bool,
          {TF.signal("tok", Sort::Opaque), TF.apply("idle", Sort::Opaque, {})}));
    case 3:
      return R.chance(50) ? FF.trueF() : FF.falseF();
    default: {
      static const char *const CmpRels[] = {"<", "<=", ">", ">=", "=", "!="};
      return FF.pred(TF.apply(CmpRels[R.range(0, 5)], Sort::Bool,
                              {IntTerm(IntTerm, 1), IntTerm(IntTerm, 1)}));
    }
    }
  };

  if (Depth == 0 || R.chance(25))
    return AtomF();
  switch (R.range(0, 9)) {
  case 0:
    return FF.notF(temporalFormula(Spec, Depth - 1));
  case 1:
    return FF.andF(temporalFormula(Spec, Depth - 1),
                   temporalFormula(Spec, Depth - 1));
  case 2:
    return FF.orF(temporalFormula(Spec, Depth - 1),
                  temporalFormula(Spec, Depth - 1));
  case 3:
    return FF.implies(temporalFormula(Spec, Depth - 1),
                      temporalFormula(Spec, Depth - 1));
  case 4:
    return FF.iff(temporalFormula(Spec, Depth - 1),
                  temporalFormula(Spec, Depth - 1));
  case 5:
    return FF.next(temporalFormula(Spec, Depth - 1));
  case 6:
    return FF.globally(temporalFormula(Spec, Depth - 1));
  case 7:
    return FF.finallyF(temporalFormula(Spec, Depth - 1));
  case 8:
    return FF.until(temporalFormula(Spec, Depth - 1),
                    temporalFormula(Spec, Depth - 1));
  default:
    return R.chance(50) ? FF.weakUntil(temporalFormula(Spec, Depth - 1),
                                       temporalFormula(Spec, Depth - 1))
                        : FF.release(temporalFormula(Spec, Depth - 1),
                                     temporalFormula(Spec, Depth - 1));
  }
}

Specification Generator::randomSpec() {
  Specification Spec;
  Spec.Th = R.chance(70) ? Theory::LIA : Theory::UF;
  static const char *const Names[] = {"Gen", "Fuzzed", "Spec1", "Alpha"};
  Spec.Name = Names[R.range(0, 3)];

  Spec.Inputs.push_back({"x", Sort::Int});
  if (R.chance(60))
    Spec.Inputs.push_back({"p", Sort::Bool});
  if (R.chance(30))
    Spec.Inputs.push_back({"tok", Sort::Opaque});
  Spec.Cells.push_back(
      {"c", Sort::Int,
       R.chance(60) ? Ctx.Terms.numeral(R.range(0, 3)) : nullptr});
  if (R.chance(40))
    Spec.Outputs.push_back({"o", Sort::Int});
  if (R.chance(40))
    Spec.Functions.push_back({"idle", Sort::Opaque, {}});
  if (R.chance(25))
    Spec.Functions.push_back({"sel", Sort::Int, {Sort::Int, Sort::Int}});

  // Formulas only over the signals guaranteed to be declared above.
  FormulaFactory &FF = Ctx.Formulas;
  TermFactory &TF = Ctx.Terms;
  auto Formula1 = [&](int Depth) {
    auto Atom = [&]() -> const Formula * {
      switch (R.range(0, 3)) {
      case 0:
        return FF.pred(TF.apply("<=", Sort::Bool,
                                {TF.signal("c", Sort::Int),
                                 TF.numeral(R.range(0, 5))}));
      case 1:
        return FF.update("c", TF.apply("+", Sort::Int,
                                       {TF.signal("c", Sort::Int),
                                        TF.numeral(R.range(1, 2))}));
      case 2:
        return FF.pred(TF.apply("=", Sort::Bool,
                                {TF.signal("x", Sort::Int),
                                 TF.signal("c", Sort::Int)}));
      default:
        return FF.update("c", TF.signal("x", Sort::Int));
      }
    };
    const Formula *F = Atom();
    for (int I = 0; I < Depth; ++I) {
      switch (R.range(0, 4)) {
      case 0:
        F = FF.notF(F);
        break;
      case 1:
        F = FF.andF(F, Atom());
        break;
      case 2:
        F = FF.orF(F, Atom());
        break;
      case 3:
        F = FF.implies(Atom(), F);
        break;
      default:
        F = FF.finallyF(F);
        break;
      }
    }
    return F;
  };

  unsigned Assumes = static_cast<unsigned>(R.range(0, 2));
  for (unsigned I = 0; I < Assumes; ++I)
    Spec.Assumptions.push_back(Formula1(static_cast<int>(R.range(0, 2))));
  unsigned Always = static_cast<unsigned>(R.range(1, 3));
  for (unsigned I = 0; I < Always; ++I)
    Spec.AlwaysGuarantees.push_back(Formula1(static_cast<int>(R.range(0, 2))));
  if (R.chance(30))
    Spec.Guarantees.push_back(Formula1(1));
  return Spec;
}

//===----------------------------------------------------------------------===//
// Pipeline cases
//===----------------------------------------------------------------------===//

std::string Generator::pipelineSpecSource() {
  // Counter family: known-realizable shapes the bounded-synthesis layer
  // solves in milliseconds, varied across init value, reachability
  // distance, step size and an optional second obligation. The point is
  // determinism across (jobs, cache) configurations, not hard synthesis.
  int64_t Init = R.range(-1, 1);
  int64_t Start = R.range(-1, 1);
  int64_t Step = R.chance(75) ? 1 : 2;
  int64_t Dist = R.range(1, 2) * Step;
  int64_t Target = R.chance(50) ? Start + Dist : Start - Dist;

  std::string Src = "#LIA#\nspec FuzzPipe\ncells { int x = " +
                    std::to_string(Init) + "; }\nalways guarantee {\n";
  Src += "  [x <- x + " + std::to_string(Step) + "] || [x <- x - " +
         std::to_string(Step) + "];\n";
  Src += "  x = " + std::to_string(Start) + " -> F (x = " +
         std::to_string(Target) + ");\n";
  // A second reachability obligation multiplies the acceptance sets of
  // the assumption tableau. Chains of obligations over three or more
  // distinct values make the explicit automaton construction pay
  // exponentially (the MaxLoopAssumptions cap exists for the same
  // reason), but a *reverse* pair -- bounce back to where you started --
  // stays in the fast envelope, so that is the only two-obligation shape
  // the family emits.
  if (R.chance(35))
    Src += "  x = " + std::to_string(Target) + " -> F (x = " +
           std::to_string(Start) + ");\n";
  Src += "}\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// SyGuS cases
//===----------------------------------------------------------------------===//

SygusCase Generator::sygusCase() {
  SygusCase C;
  TermFactory &TF = Ctx.Terms;
  const Term *X = TF.signal("x", Sort::Int);
  const Term *Inc = TF.apply("+", Sort::Int, {X, TF.numeral(1)});
  const Term *Dec = TF.apply("-", Sort::Int, {X, TF.numeral(1)});
  const Term *Dbl = TF.apply("*", Sort::Int, {TF.numeral(2), X});
  const Term *Jump = TF.apply("+", Sort::Int, {X, TF.numeral(3)});

  std::vector<const Term *> Updates = {Inc, Dec, X};
  if (R.chance(50))
    Updates.push_back(Dbl);
  if (R.chance(35))
    Updates.push_back(Jump);

  C.Lo = R.range(-3, 0);
  C.Hi = R.range(0, 3);
  C.MaxSteps = static_cast<unsigned>(R.range(1, 3));

  C.Query.Cells = {{"x", Sort::Int, Updates}};
  C.Query.Pre = {
      {TF.apply(">=", Sort::Bool, {X, TF.numeral(C.Lo)}), true},
      {TF.apply("<=", Sort::Bool, {X, TF.numeral(C.Hi)}), true}};
  static const char *const PostRels[] = {"<", "<=", ">", ">=", "="};
  C.Query.Post = {{TF.apply(PostRels[R.range(0, 4)], Sort::Bool,
                            {X, TF.numeral(R.range(-8, 8))}),
                   true}};
  return C;
}
