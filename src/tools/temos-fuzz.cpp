//===- tools/temos-fuzz.cpp - Differential fuzzing CLI --------------------===//
///
/// \file
/// Command-line driver for the temos differential fuzzing harness.
///
///   temos-fuzz --seed 7 --iters 500                 # all four oracles
///   temos-fuzz --oracle theory --iters 2000
///   temos-fuzz --inject-fault flip-strict           # must find failures
///   temos-fuzz --replay fuzz-artifacts/theory-seed7-iter12.tslmt
///
/// Exit status: 0 when every oracle ran clean (or an injected fault was
/// demanded and detected, with --inject-fault), 1 when discrepancies were
/// found (or an injected fault went undetected), 2 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "tools/fuzz/Fuzz.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace temos;
using namespace temos::fuzz;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "Differential fuzzing harness: generates random theory\n"
      "conjunctions, formulas, SyGuS queries and pipeline specs, and\n"
      "cross-checks each substrate against an independent ground oracle.\n"
      "Failures are shrunk and written as standalone repro files.\n"
      "\n"
      "options:\n"
      "  --oracle NAME      all|theory|roundtrip|sygus|pipeline (default all)\n"
      "  --seed N           base seed (default 1; TEMOS_SEED overrides)\n"
      "  --iters N          iterations per oracle (default 500)\n"
      "  --artifacts DIR    repro directory (default fuzz-artifacts;\n"
      "                     'none' disables writing)\n"
      "  --inject-fault K   none|flip-strict|drop-conjunct|mutate-print|\n"
      "                     skip-verify|lazy-config|spin-hang; the run then\n"
      "                     FAILS unless the fault is detected (spin-hang\n"
      "                     plants a non-terminating SyGuS enumeration and\n"
      "                     requires the deadline machinery to trip within\n"
      "                     2x the budget)\n"
      "  --replay FILE      re-run a repro file and exit: theory repros\n"
      "                     re-check solver vs. ground truth; `// temos-\n"
      "                     artifact:` files (from the temos CLI or the\n"
      "                     spin-hang probe) re-run the pipeline with the\n"
      "                     recorded options\n"
      "  --verbose          per-oracle progress on stderr\n",
      Argv0);
  return 2;
}

bool parseUnsigned(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoull(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

int replay(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "temos-fuzz: cannot read '%s'\n", Path.c_str());
    return 2;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();
  bool StillFails = false;
  std::string Report = isPipelineArtifact(Source)
                           ? replayPipelineArtifact(Source, StillFails)
                           : replayTheoryRepro(Source, StillFails);
  std::printf("%s\n", Report.c_str());
  return StillFails ? 1 : 0;
}

void printReport(const OracleReport &Report, const FuzzOptions &Options) {
  std::printf("oracle %-9s %u iterations, %u skipped, %zu failure%s\n",
              Report.Oracle.c_str(), Report.Iterations, Report.Skipped,
              Report.Failures.size(),
              Report.Failures.size() == 1 ? "" : "s");
  for (const FailureCase &F : Report.Failures) {
    std::printf("  FAILURE [%s] iteration %u -- reproduce with: "
                "temos-fuzz --oracle %s --seed %llu --iters %u%s%s\n",
                F.Oracle.c_str(), F.Iteration, F.Oracle.c_str(),
                static_cast<unsigned long long>(F.Seed), F.Iteration + 1,
                Options.Fault != FaultKind::None ? " --inject-fault " : "",
                Options.Fault != FaultKind::None ? faultName(Options.Fault)
                                                 : "");
    std::printf("  %s\n", F.Description.c_str());
    if (!F.ArtifactPath.empty())
      std::printf("  shrunk repro written to %s\n", F.ArtifactPath.c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  FuzzOptions Options;
  std::string Oracle = "all";
  std::string ReplayPath;

  std::vector<std::string> Args(argv + 1, argv + argc);
  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &Arg = Args[I];
    auto Value = [&](std::string &Out) {
      if (I + 1 >= Args.size()) {
        std::fprintf(stderr, "temos-fuzz: %s needs a value\n", Arg.c_str());
        return false;
      }
      Out = Args[++I];
      return true;
    };
    std::string V;
    if (Arg == "--help" || Arg == "-h")
      return usage(argv[0]) == 2 ? 0 : 0;
    if (Arg == "--oracle") {
      if (!Value(Oracle))
        return 2;
    } else if (Arg == "--seed") {
      if (!Value(V) || !parseUnsigned(V, Options.Seed))
        return usage(argv[0]);
    } else if (Arg == "--iters") {
      uint64_t N = 0;
      if (!Value(V) || !parseUnsigned(V, N) || N == 0)
        return usage(argv[0]);
      Options.Iterations = static_cast<unsigned>(N);
    } else if (Arg == "--artifacts") {
      if (!Value(V))
        return 2;
      Options.ArtifactsDir = V == "none" ? "" : V;
    } else if (Arg == "--inject-fault") {
      if (!Value(V) || !parseFaultKind(V, Options.Fault))
        return usage(argv[0]);
    } else if (Arg == "--replay") {
      if (!Value(ReplayPath))
        return 2;
    } else if (Arg == "--verbose") {
      Options.Verbose = true;
    } else {
      std::fprintf(stderr, "temos-fuzz: unknown option '%s'\n", Arg.c_str());
      return usage(argv[0]);
    }
  }

  if (!ReplayPath.empty())
    return replay(ReplayPath);

  Options.Seed = resolveSeed(Options.Seed);
  std::printf("temos-fuzz: seed %llu, %u iterations per oracle%s%s\n",
              static_cast<unsigned long long>(Options.Seed),
              Options.Iterations,
              Options.Fault != FaultKind::None ? ", injected fault: " : "",
              Options.Fault != FaultKind::None ? faultName(Options.Fault)
                                               : "");

  std::vector<OracleReport> Reports;
  if (Oracle == "all") {
    Reports = runAllOracles(Options);
  } else if (Oracle == "theory") {
    Reports.push_back(runTheoryOracle(Options));
  } else if (Oracle == "roundtrip") {
    Reports.push_back(runRoundTripOracle(Options));
  } else if (Oracle == "sygus") {
    Reports.push_back(runSygusOracle(Options));
  } else if (Oracle == "pipeline") {
    Reports.push_back(runPipelineOracle(Options));
  } else {
    std::fprintf(stderr, "temos-fuzz: unknown oracle '%s'\n", Oracle.c_str());
    return usage(argv[0]);
  }

  size_t Failures = 0;
  for (const OracleReport &Report : Reports) {
    printReport(Report, Options);
    Failures += Report.Failures.size();
  }

  if (Options.Fault != FaultKind::None) {
    // A fault-injection run must *find* the planted bug.
    if (Failures == 0) {
      std::printf("temos-fuzz: injected fault '%s' was NOT detected\n",
                  faultName(Options.Fault));
      return 1;
    }
    std::printf("temos-fuzz: injected fault '%s' detected and shrunk\n",
                faultName(Options.Fault));
    return 0;
  }

  if (Failures != 0) {
    std::printf("temos-fuzz: %zu failure%s -- reproduce with TEMOS_SEED=%llu\n",
                Failures, Failures == 1 ? "" : "s",
                static_cast<unsigned long long>(Options.Seed));
    return 1;
  }
  std::printf("temos-fuzz: all oracles clean\n");
  return 0;
}
