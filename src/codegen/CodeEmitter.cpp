//===- codegen/CodeEmitter.cpp - JS and C++ code generation ----------------===//

#include "codegen/CodeEmitter.h"

#include <algorithm>

using namespace temos;

namespace {

/// Rendering language.
enum class Lang { Js, Cpp };

/// True if the signal is an input (vs a cell/output).
bool isInputSignal(const Specification &Spec, const std::string &Name) {
  return Spec.findInput(Name) != nullptr;
}

/// Renders a term as an expression in the target language. Inputs read
/// from `inputs`, cells from `cells`; uninterpreted functions dispatch
/// to a user-supplied `fns` object (JS) / `Fns` member (C++).
std::string emitTerm(const Term *T, const Specification &Spec, Lang L) {
  switch (T->kind()) {
  case Term::Kind::Numeral:
    if (T->value().isInteger())
      return std::to_string(T->value().numerator());
    return "(" + std::to_string(T->value().numerator()) + ".0 / " +
           std::to_string(T->value().denominator()) + ".0)";
  case Term::Kind::Signal: {
    const char *Scope = isInputSignal(Spec, T->name()) ? "inputs" : "cells";
    return std::string(Scope) + (L == Lang::Js ? "." : ".") + T->name();
  }
  case Term::Kind::Apply:
    break;
  }

  const std::string &F = T->name();
  static const char *Infix[] = {"+", "-", "*", "<", "<=", ">", ">="};
  if (T->arity() == 2 &&
      std::find_if(std::begin(Infix), std::end(Infix), [&](const char *Op) {
        return F == Op;
      }) != std::end(Infix))
    return "(" + emitTerm(T->args()[0], Spec, L) + " " + F + " " +
           emitTerm(T->args()[1], Spec, L) + ")";
  if (T->arity() == 2 && (F == "=" || F == "!=")) {
    const char *Op = F == "=" ? (L == Lang::Js ? " === " : " == ")
                              : (L == Lang::Js ? " !== " : " != ");
    return "(" + emitTerm(T->args()[0], Spec, L) + Op +
           emitTerm(T->args()[1], Spec, L) + ")";
  }
  if (T->arity() == 0) {
    if (F == "True")
      return "true";
    if (F == "False")
      return "false";
    // Opaque constant: a tagged string literal.
    return std::string("\"") + F + "\"";
  }
  // Uninterpreted function call.
  std::string Call = (L == Lang::Js ? "fns." : "Fns.") + F + "(";
  for (size_t I = 0; I < T->arity(); ++I) {
    if (I != 0)
      Call += ", ";
    Call += emitTerm(T->args()[I], Spec, L);
  }
  return Call + ")";
}

std::string cppType(Sort S) {
  switch (S) {
  case Sort::Bool:
    return "bool";
  case Sort::Int:
    return "long long";
  case Sort::Real:
    return "double";
  case Sort::Opaque:
    return "std::string";
  }
  return "long long";
}

std::string initExpr(const CellDecl &D, const Specification &Spec, Lang L) {
  if (D.Init)
    return emitTerm(D.Init, Spec, L);
  switch (D.S) {
  case Sort::Bool:
    return "false";
  case Sort::Int:
    return "0";
  case Sort::Real:
    return L == Lang::Js ? "0" : "0.0";
  case Sort::Opaque:
    return "\"\"";
  }
  return "0";
}

} // namespace

std::string temos::emitJavaScript(const MealyMachine &M, const Alphabet &AB,
                                  const Specification &Spec) {
  std::string Out;
  Out += "// Synthesized by temoscpp from specification '" + Spec.Name +
         "' (TSL modulo " + theoryName(Spec.Th) + ").\n";
  Out += "// States: " + std::to_string(M.stateCount()) +
         ", input letters: " + std::to_string(M.inputCount()) + ".\n";
  Out += "function createController(fns) {\n";
  Out += "  let state = " + std::to_string(M.initialState()) + ";\n";
  Out += "  const cells = {\n";
  for (const CellDecl &D : Spec.Cells)
    Out += "    " + D.Name + ": " + initExpr(D, Spec, Lang::Js) + ",\n";
  for (const SignalDecl &D : Spec.Outputs)
    Out += "    " + D.Name + ": " +
           initExpr(CellDecl{D.Name, D.S, nullptr}, Spec, Lang::Js) + ",\n";
  Out += "  };\n";
  Out += "  function step(inputs) {\n";

  // Predicate evaluations form the input word.
  for (size_t I = 0; I < AB.predicates().size(); ++I)
    Out += "    const p" + std::to_string(I) + " = " +
           emitTerm(AB.predicates()[I], Spec, Lang::Js) + ";\n";
  Out += "    const word =";
  if (AB.predicates().empty()) {
    Out += " 0;\n";
  } else {
    for (size_t I = 0; I < AB.predicates().size(); ++I) {
      if (I != 0)
        Out += " |";
      Out += " (p" + std::to_string(I) + " ? " + std::to_string(1u << I) +
             " : 0)";
    }
    Out += ";\n";
  }

  Out += "    const next = Object.assign({}, cells);\n";
  Out += "    switch (state) {\n";
  for (uint32_t S = 0; S < M.stateCount(); ++S) {
    Out += "    case " + std::to_string(S) + ":\n";
    Out += "      switch (word) {\n";
    for (uint32_t In = 0; In < M.inputCount(); ++In) {
      MealyMachine::Edge E = M.edge(S, In);
      Out += "      case " + std::to_string(In) + ":\n";
      std::vector<unsigned> Choices = AB.decodeOutput(E.Output);
      for (size_t C = 0; C < AB.cells().size(); ++C) {
        const Formula *U = AB.cells()[C].Options[Choices[C]];
        // Skip no-op self updates for readability.
        if (U->updateValue()->isSignal() &&
            U->updateValue()->name() == U->cell())
          continue;
        Out += "        next." + U->cell() + " = " +
               emitTerm(U->updateValue(), Spec, Lang::Js) + ";\n";
      }
      Out += "        state = " + std::to_string(E.NextState) + ";\n";
      Out += "        break;\n";
    }
    Out += "      }\n";
    Out += "      break;\n";
  }
  Out += "    }\n";
  Out += "    Object.assign(cells, next);\n";
  Out += "    return cells;\n";
  Out += "  }\n";
  Out += "  return { step: step, cells: cells };\n";
  Out += "}\n";
  return Out;
}

std::string temos::emitCpp(const MealyMachine &M, const Alphabet &AB,
                           const Specification &Spec) {
  std::string Out;
  Out += "// Synthesized by temoscpp from specification '" + Spec.Name +
         "' (TSL modulo " + theoryName(Spec.Th) + ").\n";
  Out += "#include <string>\n\n";
  Out += "struct " + Spec.Name + "Controller {\n";
  Out += "  struct Inputs {\n";
  for (const SignalDecl &D : Spec.Inputs)
    Out += "    " + cppType(D.S) + " " + D.Name + "{};\n";
  Out += "  };\n";
  Out += "  struct Cells {\n";
  for (const CellDecl &D : Spec.Cells)
    Out += "    " + cppType(D.S) + " " + D.Name + " = " +
           initExpr(D, Spec, Lang::Cpp) + ";\n";
  for (const SignalDecl &D : Spec.Outputs)
    Out += "    " + cppType(D.S) + " " + D.Name + " = " +
           initExpr(CellDecl{D.Name, D.S, nullptr}, Spec, Lang::Cpp) + ";\n";
  Out += "  };\n";
  Out += "  int state = " + std::to_string(M.initialState()) + ";\n";
  Out += "  Cells cells;\n\n";
  Out += "  const Cells &step(const Inputs &inputs) {\n";
  for (size_t I = 0; I < AB.predicates().size(); ++I)
    Out += "    const bool p" + std::to_string(I) + " = " +
           emitTerm(AB.predicates()[I], Spec, Lang::Cpp) + ";\n";
  Out += "    const unsigned word =";
  if (AB.predicates().empty()) {
    Out += " 0;\n";
  } else {
    for (size_t I = 0; I < AB.predicates().size(); ++I) {
      if (I != 0)
        Out += " |";
      Out += " (p" + std::to_string(I) + " ? " + std::to_string(1u << I) +
             "u : 0u)";
    }
    Out += ";\n";
  }
  Out += "    Cells next = cells;\n";
  Out += "    switch (state) {\n";
  for (uint32_t S = 0; S < M.stateCount(); ++S) {
    Out += "    case " + std::to_string(S) + ":\n";
    Out += "      switch (word) {\n";
    for (uint32_t In = 0; In < M.inputCount(); ++In) {
      MealyMachine::Edge E = M.edge(S, In);
      Out += "      case " + std::to_string(In) + ":\n";
      std::vector<unsigned> Choices = AB.decodeOutput(E.Output);
      for (size_t C = 0; C < AB.cells().size(); ++C) {
        const Formula *U = AB.cells()[C].Options[Choices[C]];
        if (U->updateValue()->isSignal() &&
            U->updateValue()->name() == U->cell())
          continue;
        Out += "        next." + U->cell() + " = " +
               emitTerm(U->updateValue(), Spec, Lang::Cpp) + ";\n";
      }
      Out += "        state = " + std::to_string(E.NextState) + ";\n";
      Out += "        break;\n";
    }
    Out += "      default: break;\n";
    Out += "      }\n";
    Out += "      break;\n";
  }
  Out += "    default: break;\n";
  Out += "    }\n";
  Out += "    cells = next;\n";
  Out += "    return cells;\n";
  Out += "  }\n";
  Out += "};\n";
  return Out;
}

size_t temos::countLines(const std::string &Code) {
  size_t Lines = 0;
  for (char C : Code)
    if (C == '\n')
      ++Lines;
  return Lines;
}
