//===- codegen/TraceChecker.cpp - Finite-trace TSL checking ----------------===//

#include "codegen/TraceChecker.h"

#include <algorithm>

using namespace temos;

void Trace::append(const Alphabet &AB, const Controller::StepOutcome &Outcome) {
  TraceStep Step;
  for (size_t I = 0; I < AB.predicates().size(); ++I)
    if ((Outcome.InputBits >> I) & 1)
      Step.TruePredicates.push_back(AB.predicates()[I]);
  Step.FiredUpdates = Outcome.FiredUpdates;
  Steps.push_back(std::move(Step));
}

bool Trace::atomHolds(const Formula *Atom, size_t At) const {
  const TraceStep &S = Steps[At];
  if (Atom->is(Formula::Kind::Pred))
    return std::find(S.TruePredicates.begin(), S.TruePredicates.end(),
                     Atom->pred()) != S.TruePredicates.end();
  assert(Atom->is(Formula::Kind::Update) && "atom must be Pred or Update");
  return std::find(S.FiredUpdates.begin(), S.FiredUpdates.end(), Atom) !=
         S.FiredUpdates.end();
}

namespace {

TraceVerdict negate(TraceVerdict V) {
  switch (V) {
  case TraceVerdict::Holds:
    return TraceVerdict::Violated;
  case TraceVerdict::Violated:
    return TraceVerdict::Holds;
  case TraceVerdict::Undecided:
    return TraceVerdict::Undecided;
  }
  return TraceVerdict::Undecided;
}

TraceVerdict conj(TraceVerdict A, TraceVerdict B) {
  if (A == TraceVerdict::Violated || B == TraceVerdict::Violated)
    return TraceVerdict::Violated;
  if (A == TraceVerdict::Undecided || B == TraceVerdict::Undecided)
    return TraceVerdict::Undecided;
  return TraceVerdict::Holds;
}

TraceVerdict disj(TraceVerdict A, TraceVerdict B) {
  return negate(conj(negate(A), negate(B)));
}

} // namespace

TraceVerdict Trace::check(const Formula *F, size_t At) const {
  // Past the end of the trace: everything about the future is open.
  if (At >= Steps.size())
    return TraceVerdict::Undecided;

  switch (F->kind()) {
  case Formula::Kind::True:
    return TraceVerdict::Holds;
  case Formula::Kind::False:
    return TraceVerdict::Violated;
  case Formula::Kind::Pred:
  case Formula::Kind::Update:
    return atomHolds(F, At) ? TraceVerdict::Holds : TraceVerdict::Violated;
  case Formula::Kind::Not:
    return negate(check(F->child(0), At));
  case Formula::Kind::And: {
    TraceVerdict V = TraceVerdict::Holds;
    for (const Formula *Kid : F->children())
      V = conj(V, check(Kid, At));
    return V;
  }
  case Formula::Kind::Or: {
    TraceVerdict V = TraceVerdict::Violated;
    for (const Formula *Kid : F->children())
      V = disj(V, check(Kid, At));
    return V;
  }
  case Formula::Kind::Implies:
    return disj(negate(check(F->lhs(), At)), check(F->rhs(), At));
  case Formula::Kind::Iff: {
    TraceVerdict A = check(F->lhs(), At);
    TraceVerdict B = check(F->rhs(), At);
    if (A == TraceVerdict::Undecided || B == TraceVerdict::Undecided)
      return TraceVerdict::Undecided;
    return A == B ? TraceVerdict::Holds : TraceVerdict::Violated;
  }
  case Formula::Kind::Next:
    return check(F->child(0), At + 1);
  case Formula::Kind::Globally: {
    // Violated if any seen step violates; else Undecided (the future
    // could still fail).
    for (size_t I = At; I < Steps.size(); ++I)
      if (check(F->child(0), I) == TraceVerdict::Violated)
        return TraceVerdict::Violated;
    return TraceVerdict::Undecided;
  }
  case Formula::Kind::Finally: {
    for (size_t I = At; I < Steps.size(); ++I)
      if (check(F->child(0), I) == TraceVerdict::Holds)
        return TraceVerdict::Holds;
    return TraceVerdict::Undecided;
  }
  case Formula::Kind::Until: {
    for (size_t I = At; I < Steps.size(); ++I) {
      if (check(F->rhs(), I) == TraceVerdict::Holds)
        return TraceVerdict::Holds;
      if (check(F->lhs(), I) == TraceVerdict::Violated)
        return TraceVerdict::Violated;
    }
    return TraceVerdict::Undecided;
  }
  case Formula::Kind::WeakUntil: {
    for (size_t I = At; I < Steps.size(); ++I) {
      if (check(F->rhs(), I) == TraceVerdict::Holds)
        return TraceVerdict::Holds;
      if (check(F->lhs(), I) == TraceVerdict::Violated)
        return TraceVerdict::Violated;
    }
    return TraceVerdict::Undecided; // Could still hold via G lhs.
  }
  case Formula::Kind::Release: {
    for (size_t I = At; I < Steps.size(); ++I) {
      if (check(F->rhs(), I) == TraceVerdict::Violated)
        return TraceVerdict::Violated;
      if (check(F->lhs(), I) == TraceVerdict::Holds)
        return TraceVerdict::Holds; // rhs held through I, lhs releases.
    }
    return TraceVerdict::Undecided;
  }
  }
  return TraceVerdict::Undecided;
}
