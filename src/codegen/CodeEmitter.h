//===- codegen/CodeEmitter.h - JS and C++ code generation ------*- C++ -*-===//
///
/// \file
/// Renders synthesized Mealy machines as executable source code, the
/// final stage of the pipeline ("outputs an executable program code",
/// Sec. 4; the paper's tsltools backend targets JavaScript for the music
/// case study and C for the kernel scheduler). Two backends:
///
///  * emitJavaScript -- a createController() factory in the style of the
///    paper's WebAudio demo glue;
///  * emitCpp -- a self-contained struct with a step() member, suitable
///    for dropping into a C/C++ code base (the kernel use case).
///
/// The synthesized-LoC column of Table 1 is measured on the JavaScript
/// output via countLines().
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CODEGEN_CODEEMITTER_H
#define TEMOS_CODEGEN_CODEEMITTER_H

#include "game/Mealy.h"
#include "logic/Specification.h"

#include <string>

namespace temos {

/// Emits the controller as a JavaScript factory function.
std::string emitJavaScript(const MealyMachine &M, const Alphabet &AB,
                           const Specification &Spec);

/// Emits the controller as a self-contained C++ struct.
std::string emitCpp(const MealyMachine &M, const Alphabet &AB,
                    const Specification &Spec);

/// Lines of code of an emitted program (Table 1's LoC column).
size_t countLines(const std::string &Code);

} // namespace temos

#endif // TEMOS_CODEGEN_CODEEMITTER_H
