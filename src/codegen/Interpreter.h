//===- codegen/Interpreter.h - Execute synthesized controllers -*- C++ -*-===//
///
/// \file
/// Executes a synthesized Mealy machine directly on concrete values:
/// each step evaluates the specification's predicate terms on the
/// current inputs+cells (via the theory evaluator), feeds the resulting
/// valuation to the machine, and applies the chosen update terms
/// simultaneously. This replaces the paper's generated-JS runtime for
/// the in-repo case studies (music synthesizer, CFS scheduler): the
/// same controller the JS emitter prints is run natively.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CODEGEN_INTERPRETER_H
#define TEMOS_CODEGEN_INTERPRETER_H

#include "game/Mealy.h"
#include "logic/Specification.h"
#include "theory/Evaluator.h"

#include <optional>

namespace temos {

/// Runs a synthesized controller on concrete values.
class Controller {
public:
  Controller(const MealyMachine &M, const Alphabet &AB,
             const Specification &Spec);

  /// Current cell (and output) values.
  const Assignment &cells() const { return CellValues; }

  /// Value of one cell/output; asserts it exists.
  const Value &cell(const std::string &Name) const;

  /// Machine state (for tests/traces).
  uint32_t state() const { return State; }

  /// Outcome of one controller step.
  struct StepOutcome {
    uint32_t InputBits = 0;
    uint32_t OutputLetter = 0;
    /// The update atoms that fired this step, one per cell.
    std::vector<const Formula *> FiredUpdates;
  };

  /// Executes one step with the given input-signal values. Returns
  /// nullopt if some predicate or update term cannot be evaluated
  /// concretely (e.g. uninterpreted functions without an
  /// interpretation).
  std::optional<StepOutcome> step(const Assignment &Inputs);

  /// Resets state and cells to their initial values.
  void reset();

private:
  const MealyMachine &M;
  const Alphabet &AB;
  const Specification &Spec;
  Evaluator Eval;
  Assignment CellValues;
  uint32_t State = 0;
};

} // namespace temos

#endif // TEMOS_CODEGEN_INTERPRETER_H
