//===- codegen/Interpreter.cpp - Execute synthesized controllers -----------===//

#include "codegen/Interpreter.h"

using namespace temos;

namespace {

Value initialValue(Sort S, const Term *Init, const Evaluator &Eval) {
  if (Init) {
    auto V = Eval.evaluate(Init, {});
    if (V)
      return *V;
  }
  switch (S) {
  case Sort::Bool:
    return Value::boolean(false);
  case Sort::Int:
  case Sort::Real:
    return Value::integer(0);
  case Sort::Opaque:
    return Value::symbol("@init");
  }
  return Value::integer(0);
}

} // namespace

Controller::Controller(const MealyMachine &M, const Alphabet &AB,
                       const Specification &Spec)
    : M(M), AB(AB), Spec(Spec) {
  reset();
}

void Controller::reset() {
  State = M.initialState();
  CellValues.clear();
  for (const CellDecl &D : Spec.Cells)
    CellValues[D.Name] = initialValue(D.S, D.Init, Eval);
  for (const SignalDecl &D : Spec.Outputs)
    CellValues[D.Name] = initialValue(D.S, nullptr, Eval);
}

const Value &Controller::cell(const std::string &Name) const {
  auto It = CellValues.find(Name);
  assert(It != CellValues.end() && "unknown cell");
  return It->second;
}

std::optional<Controller::StepOutcome>
Controller::step(const Assignment &Inputs) {
  // Environment view: inputs plus the memorized cell values.
  Assignment Env = Inputs;
  for (const auto &[Name, V] : CellValues)
    Env[Name] = V;

  // Evaluate every predicate term to form the input letter.
  StepOutcome Outcome;
  for (size_t I = 0; I < AB.predicates().size(); ++I) {
    auto B = Eval.evaluateBool(AB.predicates()[I], Env);
    if (!B)
      return std::nullopt;
    if (*B)
      Outcome.InputBits |= uint32_t(1) << I;
  }

  MealyMachine::Edge E = M.step(State, Outcome.InputBits);
  Outcome.OutputLetter = E.Output;

  // Apply the chosen updates simultaneously (right-hand sides all read
  // the pre-step environment).
  std::vector<unsigned> Choices = AB.decodeOutput(E.Output);
  Assignment Next = CellValues;
  for (size_t C = 0; C < AB.cells().size(); ++C) {
    const Formula *Update = AB.cells()[C].Options[Choices[C]];
    Outcome.FiredUpdates.push_back(Update);
    auto V = Eval.evaluate(Update->updateValue(), Env);
    if (!V)
      return std::nullopt;
    Next[Update->cell()] = *V;
  }

  CellValues = std::move(Next);
  State = E.NextState;
  return Outcome;
}
