//===- codegen/TraceChecker.h - Finite-trace TSL checking ------*- C++ -*-===//
///
/// \file
/// Bounded-semantics evaluation of TSL formulas over recorded controller
/// traces: each trace step carries the predicate valuation and the
/// updates that fired. Used by integration tests and the examples to
/// check that synthesized controllers actually satisfy their
/// specification on concrete runs (safety exactly; liveness under the
/// usual finite-trace approximations).
///
/// Verdicts are four-valued in spirit but collapsed to three:
///  * Holds      -- the formula is satisfied on every infinite extension
///                  (e.g. a fulfilled F, a violated-free G so far is NOT
///                  enough -- see PresumedHolds),
///  * Violated   -- no extension can satisfy it (safety violation),
///  * Undecided  -- depends on the unseen future (pending F/U, or a G
///                  that has not failed yet).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CODEGEN_TRACECHECKER_H
#define TEMOS_CODEGEN_TRACECHECKER_H

#include "codegen/Interpreter.h"
#include "logic/Formula.h"

#include <vector>

namespace temos {

/// One recorded step: which atoms held.
struct TraceStep {
  /// Predicate terms true at this step.
  std::vector<const Term *> TruePredicates;
  /// Update atoms that fired at this step.
  std::vector<const Formula *> FiredUpdates;
};

/// Finite-trace verdicts.
enum class TraceVerdict {
  Holds,
  Violated,
  Undecided,
};

/// A recorded controller execution.
class Trace {
public:
  void append(const TraceStep &Step) { Steps.push_back(Step); }
  /// Records a step from a Controller outcome (predicates decoded from
  /// the input bits using the alphabet).
  void append(const Alphabet &AB, const Controller::StepOutcome &Outcome);

  size_t length() const { return Steps.size(); }
  const TraceStep &step(size_t I) const { return Steps[I]; }

  /// Evaluates \p F at trace position \p At under bounded semantics.
  TraceVerdict check(const Formula *F, size_t At = 0) const;

  /// True when \p F is not Violated anywhere (safety monitoring): the
  /// usual acceptance criterion for finite executions.
  bool noViolation(const Formula *F) const {
    return check(F) != TraceVerdict::Violated;
  }

private:
  bool atomHolds(const Formula *Atom, size_t At) const;

  std::vector<TraceStep> Steps;
};

} // namespace temos

#endif // TEMOS_CODEGEN_TRACECHECKER_H
