//===- core/Synthesizer.cpp - TSL-MT synthesis pipeline --------------------===//

#include "core/Synthesizer.h"

#include "logic/Simplify.h"
#include "support/Rational.h"
#include "support/Timer.h"

#include <algorithm>
#include <mutex>
#include <numeric>

using namespace temos;

std::string PipelineOptions::validate() const {
  if (Parallelism.NumThreads == 0)
    return "Parallelism.NumThreads must be at least 1 (0 would leave the "
           "solver pool with no thread to run queries)";
  if (MaxLoopAssumptions > MaxSygusAssumptions)
    return "MaxLoopAssumptions (" + std::to_string(MaxLoopAssumptions) +
           ") exceeds MaxSygusAssumptions (" +
           std::to_string(MaxSygusAssumptions) +
           "): loop assumptions count against the SyGuS cap, so the "
           "surplus budget can never be used";
  // Zero is a meaningful "phase disabled" setting for MaxObligations /
  // MaxSubsetSize / the assumption caps, so those are not rejected; only
  // combinations no configuration could ever want are.
  if (MaxRefinements > 0 && MaxSygusAssumptions == 0)
    return "MaxRefinements > 0 with MaxSygusAssumptions == 0: the "
           "refinement loop (Alg. 4) only ever replaces SyGuS-generated "
           "assumptions, so there is nothing it could refine";
  if (Budget.TotalSeconds < 0 || Budget.ConsistencySeconds < 0 ||
      Budget.SygusSeconds < 0 || Budget.ReactiveSeconds < 0)
    return "time budgets must be non-negative (0 means unlimited)";
  if (InjectSpinHang && Budget.TotalSeconds == 0 && Budget.SygusSeconds == 0)
    return "InjectSpinHang without a total or SyGuS time budget would spin "
           "forever: the injected fault is only ever exited through a "
           "deadline poll";
  return "";
}

const Formula *Synthesizer::formulaWithAssumptions(
    const Specification &Spec, const std::vector<const Formula *> &Assumptions) {
  const Formula *Guar = Spec.guaranteeFormula(Ctx);
  std::vector<const Formula *> Assume;
  for (const Formula *A : Spec.Assumptions)
    Assume.push_back(Ctx.Formulas.globally(A));
  // Generated assumptions are already G-wrapped by construction.
  Assume.insert(Assume.end(), Assumptions.begin(), Assumptions.end());
  if (Assume.empty())
    return Guar;
  return Ctx.Formulas.implies(Ctx.Formulas.andF(std::move(Assume)), Guar);
}

namespace {

/// Builds the Unknown result for an exception that unwound the whole
/// pipeline (as opposed to the per-phase degradations, which keep their
/// partial results).
PipelineResult pipelineFailure(FailureKind Kind, std::string Detail) {
  PipelineResult Result;
  Result.Status = Realizability::Unknown;
  Result.Diagnostic = "pipeline aborted: " + Detail;
  Result.Stats.Failures.push_back(
      {Kind, "pipeline", std::move(Detail)});
  return Result;
}

} // namespace

PipelineResult Synthesizer::run(const Specification &Spec,
                                const PipelineOptions &Options) {
  if (std::string Problem = Options.validate(); !Problem.empty()) {
    PipelineResult Result;
    Result.Status = Realizability::Unknown;
    Result.Diagnostic = std::move(Problem);
    return Result;
  }
  // Failure containment: nothing thrown below this frame terminates the
  // process. Per-phase handlers degrade in place (keeping partial
  // results); anything that still unwinds to here -- including worker
  // exceptions rethrown deterministically at SolverPool::wait() -- is
  // mapped onto the failure taxonomy and reported as Unknown.
  try {
    return Options.Eager ? runEager(Spec, Options) : runLazy(Spec, Options);
  } catch (const DeadlineExpired &E) {
    return pipelineFailure(FailureKind::Timeout, E.what());
  } catch (const RationalOverflow &E) {
    return pipelineFailure(FailureKind::Overflow, E.what());
  } catch (const std::exception &E) {
    return pipelineFailure(FailureKind::WorkerException, E.what());
  } catch (...) {
    return pipelineFailure(FailureKind::Internal, "unknown exception");
  }
}

SolverService &Synthesizer::ensureService(Theory Th,
                                          const PipelineOptions &Options) {
  if (Service) {
    bool Matches = Service->theory() == Th;
    // An injected service's configuration wins; only the lazily owned
    // one is rebuilt to track the options.
    if (!ServiceInjected)
      Matches = Matches &&
                Service->config().NumThreads == Options.Parallelism.NumThreads &&
                Service->config().CacheEnabled == Options.Parallelism.CacheEnabled;
    if (Matches)
      return *Service;
  }
  SolverService::Config C;
  C.NumThreads = Options.Parallelism.NumThreads;
  C.CacheEnabled = Options.Parallelism.CacheEnabled;
  Service = std::make_shared<SolverService>(Th, C);
  ServiceInjected = false;
  return *Service;
}

namespace {

/// |phi| for Table 1: total AST size of the user's specification.
size_t specSize(const Specification &Spec) {
  size_t Total = 0;
  for (const Formula *F : Spec.Assumptions)
    Total += F->size();
  for (const Formula *F : Spec.AlwaysGuarantees)
    Total += F->size();
  for (const Formula *F : Spec.Guarantees)
    Total += F->size();
  return Total;
}

/// Deadline for a phase: the phase budget starts ticking now, and the
/// run-global deadline caps it from above.
Deadline phaseDeadline(const Deadline &Global, double PhaseSeconds) {
  Deadline Phase =
      PhaseSeconds > 0 ? Deadline::after(PhaseSeconds) : Deadline();
  return Deadline::earlier(Global, Phase);
}

/// Classifies a reactive-synthesis Unknown into the failure taxonomy:
/// deadline expiry is a Timeout, the state/transition budgets are
/// StateBudget.
void recordReactiveFailure(PipelineResult &Result,
                           const SynthesisResult &Reactive) {
  FailureKind Kind = Reactive.Stats.TimedOut ? FailureKind::Timeout
                                             : FailureKind::StateBudget;
  std::string Detail;
  if (Reactive.Stats.Tableau.BudgetExceeded)
    Detail = Reactive.Stats.TimedOut
                 ? "deadline expired during UCW construction"
                 : "tableau state/transition budget exceeded";
  else
    Detail = Reactive.Stats.TimedOut
                 ? "deadline expired during game exploration/solving"
                 : "game state budget exceeded";
  Result.Stats.Failures.push_back({Kind, "reactive", std::move(Detail)});
}

} // namespace

void Synthesizer::generateAssumptions(const Specification &Spec,
                                      const PipelineOptions &Options,
                                      AssumptionGenerator &Generator,
                                      PipelineResult &Result,
                                      const Deadline &Global) {
  Decomposition Decomp = decompose(Spec, Ctx, Options.Decomp);
  Result.Stats.SpecSize = specSize(Spec);
  Result.Stats.PredicateCount = Decomp.PredicateLiterals.size();
  Result.Stats.UpdateTermCount = Decomp.UpdateTerms.size();

  SolverService &Svc = ensureService(Spec.Th, Options);
  ConsistencyOptions ConsOpts = Options.Consistency;
  if (!ConsOpts.Dl.armed())
    ConsOpts.Dl = phaseDeadline(Global, Options.Budget.ConsistencySeconds);
  // The service deadline is (re)set at the start of every phase, so a
  // deadline left over from a previous phase or run can never leak into
  // this one's queries.
  Svc.setDeadline(ConsOpts.Dl);
  ConsistencyResult Consistency = checkConsistency(
      Decomp.PredicateLiterals, Spec.Th, Ctx, ConsOpts, &Svc);
  Result.ConsistencyAssumptions = Consistency.Assumptions;
  Result.Stats.ConsistencyQueries = Consistency.SolverQueries;
  if (Consistency.DeadlineSkipped > 0)
    Result.Stats.Failures.push_back(
        {FailureKind::Timeout, "consistency",
         std::to_string(Consistency.DeadlineSkipped) +
             " literal combinations left unchecked; the emitted "
             "assumptions remain individually valid"});

  // SyGuS per obligation. Obligations are independent, so with pool
  // workers available they are generated concurrently (one
  // AssumptionGenerator per task; the shared Context factories are
  // internally synchronized) and merged afterwards. The merge order is
  // obligation order under DeterministicMerge (byte-identical output
  // for every NumThreads value) or completion order otherwise.
  const std::vector<Obligation> &Obs = Decomp.Obligations;
  const Deadline SygusDl =
      phaseDeadline(Global, Options.Budget.SygusSeconds);
  Svc.setDeadline(SygusDl);
  Generator.setDeadline(SygusDl);
  Generator.setSpinHangForTesting(Options.InjectSpinHang);
  size_t TimedOutObligations = 0;
  const bool Parallel = Svc.pool().workerCount() > 0 && Obs.size() > 1;
  std::vector<std::optional<GeneratedAssumption>> Generated;
  std::vector<size_t> Order(Obs.size());
  std::iota(Order.begin(), Order.end(), size_t(0));
  if (Parallel) {
    Generated.resize(Obs.size());
    std::mutex CompletionMutex;
    std::vector<size_t> Completion;
    Completion.reserve(Obs.size());
    Svc.pool().forEach(Obs.size(), [&](size_t I) {
      AssumptionGenerator Worker(Spec, Ctx);
      Worker.Opts = Options.Sygus;
      Worker.setService(&Svc);
      Worker.setDeadline(SygusDl);
      Worker.setSpinHangForTesting(Options.InjectSpinHang);
      // Deadline expiry mid-search marks this obligation unresolved
      // (nullopt) and lets every other worker finish its own search;
      // any other exception propagates through the pool's capture +
      // deterministic rethrow and unwinds the run.
      std::optional<GeneratedAssumption> G;
      bool TimedOut = false;
      try {
        G = Worker.generate(Obs[I]);
      } catch (const DeadlineExpired &) {
        TimedOut = true;
      }
      std::lock_guard<std::mutex> Lock(CompletionMutex);
      Generated[I] = std::move(G);
      TimedOutObligations += TimedOut ? 1 : 0;
      Completion.push_back(I);
    });
    if (!Options.Parallelism.DeterministicMerge)
      Order = std::move(Completion);
  }

  // Merge with two levels of deduplication: exact formula identity
  // (hash-consing) and (update chain, post) pairs -- the same
  // program/post with a stronger pre-condition adds nothing. The caps
  // are applied at merge time, so the serial path generates lazily and
  // stops at the cap exactly like the pre-service pipeline.
  std::vector<const Formula *> SeenAssumptions;
  std::vector<std::pair<const Formula *, const Formula *>> SeenUpdPost;
  size_t LoopCount = 0;
  for (size_t I : Order) {
    if (Result.SygusAssumptions.size() >= Options.MaxSygusAssumptions)
      break;
    std::optional<GeneratedAssumption> G;
    if (Parallel) {
      G = std::move(Generated[I]);
    } else {
      try {
        G = Generator.generate(Obs[I]);
      } catch (const DeadlineExpired &) {
        // Obligation unresolved; the ones already merged stay. Later
        // obligations still run (and fail fast on the tripped token).
        ++TimedOutObligations;
      }
    }
    if (!G)
      continue;
    if (G->IsLoop && LoopCount >= Options.MaxLoopAssumptions)
      continue;
    if (std::find(SeenAssumptions.begin(), SeenAssumptions.end(),
                  G->Assumption) != SeenAssumptions.end())
      continue;
    auto Pair = std::make_pair(G->UpdFormula, G->PostFormula);
    if (std::find(SeenUpdPost.begin(), SeenUpdPost.end(), Pair) !=
        SeenUpdPost.end())
      continue;
    SeenAssumptions.push_back(G->Assumption);
    SeenUpdPost.push_back(Pair);
    LoopCount += G->IsLoop ? 1 : 0;
    Result.SygusAssumptions.push_back(std::move(*G));
  }
  if (TimedOutObligations > 0)
    Result.Stats.Failures.push_back(
        {FailureKind::Timeout, "sygus",
         std::to_string(TimedOutObligations) + " of " +
             std::to_string(Obs.size()) +
             " obligations unresolved (deadline expired mid-search)"});
}

void Synthesizer::recordReactiveRun(PipelineResult &Result, unsigned Round,
                                    const SynthesisResult &Reactive) {
  ReactiveRunStats RS;
  RS.Round = Round;
  RS.Status = Reactive.Status;
  RS.NbaCacheHit = Reactive.Stats.NbaCacheHit;
  RS.ArenaStatesReused = Reactive.Stats.ArenaStatesReused;
  RS.GameStates = Reactive.Stats.GameStates;
  RS.BoundUsed = Reactive.Stats.BoundUsed;
  RS.NbaSeconds = Reactive.Stats.NbaSeconds;
  RS.GameSeconds = Reactive.Stats.GameSeconds;
  Result.Stats.ReactiveDetail.push_back(RS);
}

PipelineResult Synthesizer::runEager(const Specification &Spec,
                                     const PipelineOptions &Options) {
  PipelineResult Result;
  const Deadline Global = Options.Budget.TotalSeconds > 0
                              ? Deadline::after(Options.Budget.TotalSeconds)
                              : Deadline();
  SolverService &Svc = ensureService(Spec.Th, Options);
  const size_t Hits0 = Svc.cache().hits();
  const size_t Misses0 = Svc.cache().misses();
  const size_t Evictions0 = Svc.cache().evictions();
  const size_t NbaHits0 = Engine.nbaCacheHits();
  const size_t NbaMisses0 = Engine.nbaCacheMisses();
  const size_t ExpHits0 = Engine.expansionCacheHits();
  const size_t ExpMisses0 = Engine.expansionCacheMisses();
  auto CaptureCacheStats = [&] {
    Result.Stats.CacheHits = Svc.cache().hits() - Hits0;
    Result.Stats.CacheMisses = Svc.cache().misses() - Misses0;
    Result.Stats.CacheEvictions = Svc.cache().evictions() - Evictions0;
    Result.Stats.NbaCacheHits = Engine.nbaCacheHits() - NbaHits0;
    Result.Stats.NbaCacheMisses = Engine.nbaCacheMisses() - NbaMisses0;
    Result.Stats.ExpansionCacheHits = Engine.expansionCacheHits() - ExpHits0;
    Result.Stats.ExpansionCacheMisses =
        Engine.expansionCacheMisses() - ExpMisses0;
  };
  Timer PsiTimer;
  CpuTimer PsiCpu;

  // --- Decomposition, consistency checking, SyGuS (Secs. 4.1-4.3). -------
  AssumptionGenerator Generator(Spec, Ctx);
  Generator.Opts = Options.Sygus;
  Generator.setService(&Svc);
  generateAssumptions(Spec, Options, Generator, Result, Global);

  Result.Stats.PsiGenSeconds = PsiTimer.seconds();
  Result.Stats.PsiGenCpuSeconds = PsiCpu.seconds();

  // --- Reactive synthesis + refinement loop (Sec. 4.4, Alg. 4). ----------
  Timer SynthTimer;
  CpuTimer SynthCpu;
  // One deadline covers the whole phase: every reactive invocation and
  // every refinement re-synthesis shares it.
  const Deadline SynthDl =
      phaseDeadline(Global, Options.Budget.ReactiveSeconds);
  Svc.setDeadline(SynthDl);
  Generator.setDeadline(SynthDl);
  SynthesisOptions ReactiveOpts = Options.Reactive;
  if (!ReactiveOpts.Dl.armed())
    ReactiveOpts.Dl = SynthDl;
  // Per-obligation exclusion lists for refinement.
  std::vector<std::vector<SequentialProgram>> ExcludedSeq(
      Result.SygusAssumptions.size());
  std::vector<std::vector<LoopProgram>> ExcludedLoop(
      Result.SygusAssumptions.size());

  for (unsigned Round = 0; Round <= Options.MaxRefinements; ++Round) {
    // Assemble the current assumption set.
    Result.Assumptions = Result.ConsistencyAssumptions;
    for (const GeneratedAssumption &A : Result.SygusAssumptions)
      Result.Assumptions.push_back(A.Assumption);
    Result.Stats.AssumptionCount = Result.Assumptions.size();

    const Formula *Phi = formulaWithAssumptions(Spec, Result.Assumptions);
    if (Options.SimplifyBeforeSynthesis)
      Phi = simplify(Phi, Ctx.Formulas);
    std::vector<const Formula *> ForAlphabet = Result.Assumptions;
    ForAlphabet.push_back(Phi);
    Result.AB = Alphabet::build(Spec, Ctx, ForAlphabet);

    ++Result.Stats.ReactiveRuns;
    SynthesisResult Reactive =
        Engine.synthesize(Phi, Ctx, Result.AB, ReactiveOpts, &Svc.pool());
    recordReactiveRun(Result, Round, Reactive);
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Reactive.Stats.GameStates);

    if (Reactive.Status == Realizability::Realizable) {
      Result.Status = Realizability::Realizable;
      Result.Machine = std::move(Reactive.Machine);
      Result.Stats.SynthesisSeconds = SynthTimer.seconds();
      Result.Stats.SynthesisCpuSeconds = SynthCpu.seconds();
      CaptureCacheStats();
      return Result;
    }
    if (Reactive.Status == Realizability::Unknown) {
      Result.Status = Realizability::Unknown;
      recordReactiveFailure(Result, Reactive);
      Result.Stats.SynthesisSeconds = SynthTimer.seconds();
      Result.Stats.SynthesisCpuSeconds = SynthCpu.seconds();
      CaptureCacheStats();
      return Result;
    }

    // Unrealizable: look for an "unhelpful" assumption (Alg. 4) -- one
    // whose update chain can never be executed when its pre-condition
    // holds, detected by the unsatisfiability of
    // phi && G(pre -> upd) && F pre. The F pre conjunct makes the check
    // consider executions where the pre-condition actually occurs
    // (Example 4.6 implicitly starts from x = 0).
    // The satisfiability check conjoins the constraints (Example 4.6
    // checks the plain conjunction): environment assumptions, generated
    // assumptions, the guarantees, and the committed update chain.
    std::vector<const Formula *> Conjuncts;
    for (const Formula *A : Spec.Assumptions)
      Conjuncts.push_back(Ctx.Formulas.globally(A));
    Conjuncts.insert(Conjuncts.end(), Result.Assumptions.begin(),
                     Result.Assumptions.end());
    Conjuncts.push_back(Spec.guaranteeFormula(Ctx));
    const Formula *AllConstraints = Ctx.Formulas.andF(std::move(Conjuncts));

    bool Refined = false;
    for (size_t I = 0; I < Result.SygusAssumptions.size() && !Refined; ++I) {
      GeneratedAssumption &A = Result.SygusAssumptions[I];
      const Formula *Guarantee = Generator.refinementGuarantee(A);
      const Formula *Check = Ctx.Formulas.andF(
          {AllConstraints, Guarantee,
           Ctx.Formulas.finallyF(A.PreFormula)});
      std::vector<const Formula *> CheckExtra = ForAlphabet;
      CheckExtra.push_back(Check);
      Alphabet CheckAB = Alphabet::build(Spec, Ctx, CheckExtra);
      if (isSatisfiable(Check, Ctx, CheckAB))
        continue; // Helpful (executable) assumption: keep it.

      // Re-run SyGuS, excluding the unhelpful program.
      if (A.IsLoop)
        ExcludedLoop[I].push_back(A.Loop);
      else
        ExcludedSeq[I].push_back(A.Sequential);
      std::optional<GeneratedAssumption> Replacement;
      try {
        Replacement = Generator.generate(A.Ob, ExcludedSeq[I], ExcludedLoop[I]);
      } catch (const DeadlineExpired &) {
        // Out of time mid-refinement: fall through to the drop path
        // (dropping only weakens psi, so the degraded run stays sound).
        Result.Stats.Failures.push_back(
            {FailureKind::Timeout, "sygus",
             "refinement re-synthesis timed out; assumption dropped"});
      }
      ++Result.Stats.Refinements;
      if (Replacement) {
        A = std::move(*Replacement);
      } else {
        // No alternative program exists: drop the assumption (dropping
        // only weakens psi; soundness is preserved).
        Result.SygusAssumptions.erase(Result.SygusAssumptions.begin() + I);
        ExcludedSeq.erase(ExcludedSeq.begin() + I);
        ExcludedLoop.erase(ExcludedLoop.begin() + I);
      }
      Refined = true;
    }
    if (!Refined)
      break; // Every assumption is executable: genuinely unrealizable.
  }

  Result.Status = Realizability::Unrealizable;
  Result.Stats.SynthesisSeconds = SynthTimer.seconds();
  Result.Stats.SynthesisCpuSeconds = SynthCpu.seconds();
  CaptureCacheStats();
  return Result;
}

PipelineResult Synthesizer::runLazy(const Specification &Spec,
                                    const PipelineOptions &Options) {
  // Lazy alternative (Sec. 5.2's discussion): add assumptions one at a
  // time, re-running reactive synthesis after each addition, stopping at
  // the first realizable set. Generation still happens once up front;
  // the measured difference is the repeated reactive-synthesis runs.
  PipelineOptions EagerOptions = Options;
  EagerOptions.Eager = true;

  PipelineResult Result;
  const Deadline Global = Options.Budget.TotalSeconds > 0
                              ? Deadline::after(Options.Budget.TotalSeconds)
                              : Deadline();
  SolverService &Svc = ensureService(Spec.Th, Options);
  const size_t Hits0 = Svc.cache().hits();
  const size_t Misses0 = Svc.cache().misses();
  const size_t Evictions0 = Svc.cache().evictions();
  const size_t NbaHits0 = Engine.nbaCacheHits();
  const size_t NbaMisses0 = Engine.nbaCacheMisses();
  const size_t ExpHits0 = Engine.expansionCacheHits();
  const size_t ExpMisses0 = Engine.expansionCacheMisses();
  Timer PsiTimer;
  CpuTimer PsiCpu;
  AssumptionGenerator Generator(Spec, Ctx);
  Generator.Opts = Options.Sygus;
  Generator.setService(&Svc);
  generateAssumptions(Spec, Options, Generator, Result, Global);
  Result.Stats.PsiGenSeconds = PsiTimer.seconds();
  Result.Stats.PsiGenCpuSeconds = PsiCpu.seconds();

  Timer SynthTimer;
  CpuTimer SynthCpu;
  const Deadline SynthDl =
      phaseDeadline(Global, Options.Budget.ReactiveSeconds);
  Svc.setDeadline(SynthDl);
  SynthesisOptions ReactiveOpts = Options.Reactive;
  if (!ReactiveOpts.Dl.armed())
    ReactiveOpts.Dl = SynthDl;
  std::vector<const Formula *> Current = Result.ConsistencyAssumptions;
  size_t NextSygus = 0;
  for (;;) {
    Result.Assumptions = Current;
    Result.Stats.AssumptionCount = Current.size();
    const Formula *Phi = formulaWithAssumptions(Spec, Current);
    if (Options.SimplifyBeforeSynthesis)
      Phi = simplify(Phi, Ctx.Formulas);
    std::vector<const Formula *> ForAlphabet = Current;
    ForAlphabet.push_back(Phi);
    Result.AB = Alphabet::build(Spec, Ctx, ForAlphabet);

    ++Result.Stats.ReactiveRuns;
    SynthesisResult Reactive =
        Engine.synthesize(Phi, Ctx, Result.AB, ReactiveOpts, &Svc.pool());
    recordReactiveRun(Result, static_cast<unsigned>(NextSygus), Reactive);
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Reactive.Stats.GameStates);
    if (Reactive.Status == Realizability::Realizable) {
      Result.Status = Realizability::Realizable;
      Result.Machine = std::move(Reactive.Machine);
      break;
    }
    if (Reactive.Status == Realizability::Unknown) {
      Result.Status = Realizability::Unknown;
      recordReactiveFailure(Result, Reactive);
      break;
    }
    if (NextSygus >= Result.SygusAssumptions.size()) {
      Result.Status = Realizability::Unrealizable;
      break;
    }
    Current.push_back(Result.SygusAssumptions[NextSygus++].Assumption);
  }
  Result.Stats.SynthesisSeconds = SynthTimer.seconds();
  Result.Stats.SynthesisCpuSeconds = SynthCpu.seconds();
  Result.Stats.CacheHits = Svc.cache().hits() - Hits0;
  Result.Stats.CacheMisses = Svc.cache().misses() - Misses0;
  Result.Stats.CacheEvictions = Svc.cache().evictions() - Evictions0;
  Result.Stats.NbaCacheHits = Engine.nbaCacheHits() - NbaHits0;
  Result.Stats.NbaCacheMisses = Engine.nbaCacheMisses() - NbaMisses0;
  Result.Stats.ExpansionCacheHits = Engine.expansionCacheHits() - ExpHits0;
  Result.Stats.ExpansionCacheMisses =
      Engine.expansionCacheMisses() - ExpMisses0;
  return Result;
}
