//===- core/Synthesizer.cpp - TSL-MT synthesis pipeline --------------------===//

#include "core/Synthesizer.h"

#include "logic/Simplify.h"
#include "support/Timer.h"

#include <algorithm>

using namespace temos;

const Formula *Synthesizer::formulaWithAssumptions(
    const Specification &Spec, const std::vector<const Formula *> &Assumptions) {
  const Formula *Guar = Spec.guaranteeFormula(Ctx);
  std::vector<const Formula *> Assume;
  for (const Formula *A : Spec.Assumptions)
    Assume.push_back(Ctx.Formulas.globally(A));
  // Generated assumptions are already G-wrapped by construction.
  Assume.insert(Assume.end(), Assumptions.begin(), Assumptions.end());
  if (Assume.empty())
    return Guar;
  return Ctx.Formulas.implies(Ctx.Formulas.andF(std::move(Assume)), Guar);
}

PipelineResult Synthesizer::run(const Specification &Spec,
                                const PipelineOptions &Options) {
  return Options.Eager ? runEager(Spec, Options) : runLazy(Spec, Options);
}

namespace {

/// |phi| for Table 1: total AST size of the user's specification.
size_t specSize(const Specification &Spec) {
  size_t Total = 0;
  for (const Formula *F : Spec.Assumptions)
    Total += F->size();
  for (const Formula *F : Spec.AlwaysGuarantees)
    Total += F->size();
  for (const Formula *F : Spec.Guarantees)
    Total += F->size();
  return Total;
}

} // namespace

void Synthesizer::generateAssumptions(const Specification &Spec,
                                      const PipelineOptions &Options,
                                      AssumptionGenerator &Generator,
                                      PipelineResult &Result) {
  Decomposition Decomp = decompose(Spec, Ctx, Options.Decomp);
  Result.Stats.SpecSize = specSize(Spec);
  Result.Stats.PredicateCount = Decomp.PredicateLiterals.size();
  Result.Stats.UpdateTermCount = Decomp.UpdateTerms.size();

  ConsistencyResult Consistency = checkConsistency(
      Decomp.PredicateLiterals, Spec.Th, Ctx, Options.Consistency);
  Result.ConsistencyAssumptions = Consistency.Assumptions;
  Result.Stats.ConsistencyQueries = Consistency.SolverQueries;

  // SyGuS per obligation, with two levels of deduplication: exact
  // formula identity (hash-consing) and (update chain, post) pairs --
  // the same program/post with a stronger pre-condition adds nothing.
  std::vector<const Formula *> SeenAssumptions;
  std::vector<std::pair<const Formula *, const Formula *>> SeenUpdPost;
  size_t LoopCount = 0;
  for (const Obligation &Ob : Decomp.Obligations) {
    if (Result.SygusAssumptions.size() >= Options.MaxSygusAssumptions)
      break;
    auto Generated = Generator.generate(Ob);
    if (!Generated)
      continue;
    if (Generated->IsLoop && LoopCount >= Options.MaxLoopAssumptions)
      continue;
    if (std::find(SeenAssumptions.begin(), SeenAssumptions.end(),
                  Generated->Assumption) != SeenAssumptions.end())
      continue;
    auto Pair = std::make_pair(Generated->UpdFormula, Generated->PostFormula);
    if (std::find(SeenUpdPost.begin(), SeenUpdPost.end(), Pair) !=
        SeenUpdPost.end())
      continue;
    SeenAssumptions.push_back(Generated->Assumption);
    SeenUpdPost.push_back(Pair);
    LoopCount += Generated->IsLoop ? 1 : 0;
    Result.SygusAssumptions.push_back(std::move(*Generated));
  }
}

PipelineResult Synthesizer::runEager(const Specification &Spec,
                                     const PipelineOptions &Options) {
  PipelineResult Result;
  Timer PsiTimer;

  // --- Decomposition, consistency checking, SyGuS (Secs. 4.1-4.3). -------
  AssumptionGenerator Generator(Spec, Ctx);
  Generator.Opts = Options.Sygus;
  generateAssumptions(Spec, Options, Generator, Result);

  Result.Stats.PsiGenSeconds = PsiTimer.seconds();

  // --- Reactive synthesis + refinement loop (Sec. 4.4, Alg. 4). ----------
  Timer SynthTimer;
  // Per-obligation exclusion lists for refinement.
  std::vector<std::vector<SequentialProgram>> ExcludedSeq(
      Result.SygusAssumptions.size());
  std::vector<std::vector<LoopProgram>> ExcludedLoop(
      Result.SygusAssumptions.size());

  for (unsigned Round = 0; Round <= Options.MaxRefinements; ++Round) {
    // Assemble the current assumption set.
    Result.Assumptions = Result.ConsistencyAssumptions;
    for (const GeneratedAssumption &A : Result.SygusAssumptions)
      Result.Assumptions.push_back(A.Assumption);
    Result.Stats.AssumptionCount = Result.Assumptions.size();

    const Formula *Phi = formulaWithAssumptions(Spec, Result.Assumptions);
    if (Options.SimplifyBeforeSynthesis)
      Phi = simplify(Phi, Ctx.Formulas);
    std::vector<const Formula *> ForAlphabet = Result.Assumptions;
    ForAlphabet.push_back(Phi);
    Result.AB = Alphabet::build(Spec, Ctx, ForAlphabet);

    ++Result.Stats.ReactiveRuns;
    SynthesisResult Reactive =
        synthesizeLtl(Phi, Ctx, Result.AB, Options.Reactive);
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Reactive.Stats.GameStates);

    if (Reactive.Status == Realizability::Realizable) {
      Result.Status = Realizability::Realizable;
      Result.Machine = std::move(Reactive.Machine);
      Result.Stats.SynthesisSeconds = SynthTimer.seconds();
      return Result;
    }
    if (Reactive.Status == Realizability::Unknown) {
      Result.Status = Realizability::Unknown;
      Result.Stats.SynthesisSeconds = SynthTimer.seconds();
      return Result;
    }

    // Unrealizable: look for an "unhelpful" assumption (Alg. 4) -- one
    // whose update chain can never be executed when its pre-condition
    // holds, detected by the unsatisfiability of
    // phi && G(pre -> upd) && F pre. The F pre conjunct makes the check
    // consider executions where the pre-condition actually occurs
    // (Example 4.6 implicitly starts from x = 0).
    // The satisfiability check conjoins the constraints (Example 4.6
    // checks the plain conjunction): environment assumptions, generated
    // assumptions, the guarantees, and the committed update chain.
    std::vector<const Formula *> Conjuncts;
    for (const Formula *A : Spec.Assumptions)
      Conjuncts.push_back(Ctx.Formulas.globally(A));
    Conjuncts.insert(Conjuncts.end(), Result.Assumptions.begin(),
                     Result.Assumptions.end());
    Conjuncts.push_back(Spec.guaranteeFormula(Ctx));
    const Formula *AllConstraints = Ctx.Formulas.andF(std::move(Conjuncts));

    bool Refined = false;
    for (size_t I = 0; I < Result.SygusAssumptions.size() && !Refined; ++I) {
      GeneratedAssumption &A = Result.SygusAssumptions[I];
      const Formula *Guarantee = Generator.refinementGuarantee(A);
      const Formula *Check = Ctx.Formulas.andF(
          {AllConstraints, Guarantee,
           Ctx.Formulas.finallyF(A.PreFormula)});
      std::vector<const Formula *> CheckExtra = ForAlphabet;
      CheckExtra.push_back(Check);
      Alphabet CheckAB = Alphabet::build(Spec, Ctx, CheckExtra);
      if (isSatisfiable(Check, Ctx, CheckAB))
        continue; // Helpful (executable) assumption: keep it.

      // Re-run SyGuS, excluding the unhelpful program.
      if (A.IsLoop)
        ExcludedLoop[I].push_back(A.Loop);
      else
        ExcludedSeq[I].push_back(A.Sequential);
      auto Replacement =
          Generator.generate(A.Ob, ExcludedSeq[I], ExcludedLoop[I]);
      ++Result.Stats.Refinements;
      if (Replacement) {
        A = std::move(*Replacement);
      } else {
        // No alternative program exists: drop the assumption (dropping
        // only weakens psi; soundness is preserved).
        Result.SygusAssumptions.erase(Result.SygusAssumptions.begin() + I);
        ExcludedSeq.erase(ExcludedSeq.begin() + I);
        ExcludedLoop.erase(ExcludedLoop.begin() + I);
      }
      Refined = true;
    }
    if (!Refined)
      break; // Every assumption is executable: genuinely unrealizable.
  }

  Result.Status = Realizability::Unrealizable;
  Result.Stats.SynthesisSeconds = SynthTimer.seconds();
  return Result;
}

PipelineResult Synthesizer::runLazy(const Specification &Spec,
                                    const PipelineOptions &Options) {
  // Lazy alternative (Sec. 5.2's discussion): add assumptions one at a
  // time, re-running reactive synthesis after each addition, stopping at
  // the first realizable set. Generation still happens once up front;
  // the measured difference is the repeated reactive-synthesis runs.
  PipelineOptions EagerOptions = Options;
  EagerOptions.Eager = true;

  PipelineResult Result;
  Timer PsiTimer;
  AssumptionGenerator Generator(Spec, Ctx);
  Generator.Opts = Options.Sygus;
  generateAssumptions(Spec, Options, Generator, Result);
  Result.Stats.PsiGenSeconds = PsiTimer.seconds();

  Timer SynthTimer;
  std::vector<const Formula *> Current = Result.ConsistencyAssumptions;
  size_t NextSygus = 0;
  for (;;) {
    Result.Assumptions = Current;
    Result.Stats.AssumptionCount = Current.size();
    const Formula *Phi = formulaWithAssumptions(Spec, Current);
    if (Options.SimplifyBeforeSynthesis)
      Phi = simplify(Phi, Ctx.Formulas);
    std::vector<const Formula *> ForAlphabet = Current;
    ForAlphabet.push_back(Phi);
    Result.AB = Alphabet::build(Spec, Ctx, ForAlphabet);

    ++Result.Stats.ReactiveRuns;
    SynthesisResult Reactive =
        synthesizeLtl(Phi, Ctx, Result.AB, Options.Reactive);
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Reactive.Stats.GameStates);
    if (Reactive.Status == Realizability::Realizable) {
      Result.Status = Realizability::Realizable;
      Result.Machine = std::move(Reactive.Machine);
      break;
    }
    if (Reactive.Status == Realizability::Unknown) {
      Result.Status = Realizability::Unknown;
      break;
    }
    if (NextSygus >= Result.SygusAssumptions.size()) {
      Result.Status = Realizability::Unrealizable;
      break;
    }
    Current.push_back(Result.SygusAssumptions[NextSygus++].Assumption);
  }
  Result.Stats.SynthesisSeconds = SynthTimer.seconds();
  return Result;
}
