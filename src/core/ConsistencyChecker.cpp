//===- core/ConsistencyChecker.cpp - Consistency checking (4.2) ------------===//

#include "core/ConsistencyChecker.h"

#include <algorithm>

using namespace temos;

ConsistencyResult
temos::checkConsistency(const std::vector<const Term *> &Predicates,
                        Theory Th, Context &Ctx,
                        const ConsistencyOptions &Options) {
  ConsistencyResult Result;
  SmtSolver Solver(Th);
  const size_t N = Predicates.size();
  if (N == 0)
    return Result;
  assert(N <= 24 && "too many predicates for powerset consistency checking");

  // Combinations already found unsatisfiable (as bitmasks), used to skip
  // supersets in minimal-core mode.
  std::vector<uint32_t> UnsatMasks;

  // Enumerate subsets by increasing size so minimal cores are found
  // before their supersets.
  for (unsigned Size = 1; Size <= std::min<size_t>(Options.MaxSubsetSize, N);
       ++Size) {
    for (uint32_t Mask = 1; Mask < (uint32_t(1) << N); ++Mask) {
      if (static_cast<unsigned>(__builtin_popcount(Mask)) != Size)
        continue;
      if (Options.MinimalCoresOnly) {
        bool Subsumed = false;
        for (uint32_t Core : UnsatMasks)
          if ((Mask & Core) == Core) {
            Subsumed = true;
            break;
          }
        if (Subsumed)
          continue;
      }

      std::vector<TheoryLiteral> Literals;
      for (size_t I = 0; I < N; ++I)
        if (Mask & (uint32_t(1) << I))
          Literals.push_back({Predicates[I], true});

      ++Result.SolverQueries;
      if (Solver.checkLiterals(Literals) != SatResult::Unsat)
        continue;

      UnsatMasks.push_back(Mask);
      // G !(p1 && ... && pk).
      std::vector<const Formula *> Conjuncts;
      for (const TheoryLiteral &L : Literals)
        Conjuncts.push_back(Ctx.Formulas.pred(L.Atom));
      Result.Assumptions.push_back(Ctx.Formulas.globally(
          Ctx.Formulas.notF(Ctx.Formulas.andF(std::move(Conjuncts)))));
    }
  }
  return Result;
}
