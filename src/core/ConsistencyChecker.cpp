//===- core/ConsistencyChecker.cpp - Consistency checking (4.2) ------------===//

#include "core/ConsistencyChecker.h"

#include <algorithm>
#include <atomic>

using namespace temos;

namespace {

/// Builds the positive literal vector selected by \p Mask.
std::vector<TheoryLiteral>
maskLiterals(uint32_t Mask, const std::vector<const Term *> &Predicates) {
  std::vector<TheoryLiteral> Literals;
  for (size_t I = 0; I < Predicates.size(); ++I)
    if (Mask & (uint32_t(1) << I))
      Literals.push_back({Predicates[I], true});
  return Literals;
}

/// Emits the assumption G !(p1 && ... && pk) for an unsat combination.
const Formula *maskAssumption(uint32_t Mask,
                              const std::vector<const Term *> &Predicates,
                              Context &Ctx) {
  std::vector<const Formula *> Conjuncts;
  for (const TheoryLiteral &L : maskLiterals(Mask, Predicates))
    Conjuncts.push_back(Ctx.Formulas.pred(L.Atom));
  return Ctx.Formulas.globally(
      Ctx.Formulas.notF(Ctx.Formulas.andF(std::move(Conjuncts))));
}

/// All masks over \p N bits with popcount in [1, MaxSize], ordered by
/// (popcount, value) -- the order the serial algorithm visits them in.
std::vector<uint32_t> candidateMasks(size_t N, unsigned MaxSize) {
  std::vector<uint32_t> Masks;
  for (unsigned Size = 1; Size <= std::min<size_t>(MaxSize, N); ++Size) {
    // Gosper's hack: next mask with the same popcount, ascending.
    uint32_t Mask = (uint32_t(1) << Size) - 1;
    uint32_t Limit = uint32_t(1) << N;
    while (Mask < Limit) {
      Masks.push_back(Mask);
      uint32_t Lowest = Mask & (~Mask + 1);
      uint32_t Ripple = Mask + Lowest;
      Mask = Ripple | (((Mask ^ Ripple) >> 2) / Lowest);
    }
  }
  return Masks;
}

/// The serial Sec. 4.2 sweep, optionally routing queries through a
/// service for memoization. This is the reference semantics the
/// parallel path reproduces.
ConsistencyResult checkSerial(const std::vector<const Term *> &Predicates,
                              Theory Th, Context &Ctx,
                              const ConsistencyOptions &Options,
                              SolverService *Service) {
  ConsistencyResult Result;
  SmtSolver Solver(Th);
  Solver.setDeadline(Options.Dl);
  const size_t N = Predicates.size();

  // Combinations already found unsatisfiable (as bitmasks), used to skip
  // supersets in minimal-core mode.
  std::vector<uint32_t> UnsatMasks;

  // Enumerate subsets by increasing size so minimal cores are found
  // before their supersets.
  for (uint32_t Mask : candidateMasks(N, Options.MaxSubsetSize)) {
    if (Options.MinimalCoresOnly) {
      bool Subsumed = false;
      for (uint32_t Core : UnsatMasks)
        if ((Mask & Core) == Core) {
          Subsumed = true;
          break;
        }
      if (Subsumed)
        continue;
    }

    // Degrade gracefully on deadline expiry: skip the remaining
    // combinations but keep everything found so far (each emitted
    // assumption is individually valid).
    if (Options.Dl.expired()) {
      ++Result.DeadlineSkipped;
      continue;
    }

    std::vector<TheoryLiteral> Literals = maskLiterals(Mask, Predicates);
    ++Result.SolverQueries;
    SatResult R;
    try {
      R = Service ? Service->checkLiterals(Literals)
                  : Solver.checkLiterals(Literals);
    } catch (const DeadlineExpired &) {
      ++Result.DeadlineSkipped;
      continue;
    }
    if (R != SatResult::Unsat)
      continue;

    UnsatMasks.push_back(Mask);
    Result.Assumptions.push_back(maskAssumption(Mask, Predicates, Ctx));
  }
  return Result;
}

/// Parallel sweep: fan every candidate subset out across the service's
/// pool, with opportunistic superset pruning through a shared core
/// store, then replay the serial acceptance order over the verdicts.
///
/// Determinism argument: a mask is only skipped when a published unsat
/// core is a *proper* subset (equal-size masks cannot subsume each
/// other and a mask cannot be in the store before its own check), so
/// every *minimal* unsat mask is always queried, whatever the
/// interleaving. The post-filter accepts exactly the unsat masks with
/// no accepted proper subset, which is precisely the set of minimal
/// unsat masks -- the same set the serial sweep emits -- visited in the
/// same (size, value) order. Formula construction stays on the calling
/// thread.
ConsistencyResult checkParallel(const std::vector<const Term *> &Predicates,
                                Context &Ctx,
                                const ConsistencyOptions &Options,
                                SolverService &Service) {
  ConsistencyResult Result;
  const std::vector<uint32_t> Masks =
      candidateMasks(Predicates.size(), Options.MaxSubsetSize);

  enum class Verdict : int8_t { Skipped, Sat, Unsat, Unknown };
  std::vector<Verdict> Verdicts(Masks.size(), Verdict::Skipped);
  UnsatCoreStore Cores;
  std::atomic<size_t> Queries{0};
  std::atomic<size_t> DeadlineSkipped{0};

  Service.pool().forEach(Masks.size(), [&](size_t I) {
    uint32_t Mask = Masks[I];
    if (Options.MinimalCoresOnly && Cores.subsumes(Mask))
      return; // Verdict stays Skipped.
    // Degraded mode: past the deadline, tasks become no-ops and the
    // post-filter emits whatever the completed checks establish.
    if (Options.Dl.expired()) {
      DeadlineSkipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Queries.fetch_add(1, std::memory_order_relaxed);
    try {
      switch (Service.checkLiterals(maskLiterals(Mask, Predicates))) {
      case SatResult::Unsat:
        Verdicts[I] = Verdict::Unsat;
        Cores.publish(Mask);
        break;
      case SatResult::Sat:
        Verdicts[I] = Verdict::Sat;
        break;
      case SatResult::Unknown:
        Verdicts[I] = Verdict::Unknown;
        break;
      }
    } catch (const DeadlineExpired &) {
      DeadlineSkipped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  Result.SolverQueries = Queries.load();
  Result.DeadlineSkipped = DeadlineSkipped.load();

  // Deterministic merge: accept in (size, value) order, filtering
  // supersets of accepted cores exactly like the serial sweep.
  std::vector<uint32_t> Accepted;
  for (size_t I = 0; I < Masks.size(); ++I) {
    if (Verdicts[I] != Verdict::Unsat)
      continue;
    if (Options.MinimalCoresOnly) {
      bool Subsumed = false;
      for (uint32_t Core : Accepted)
        if ((Masks[I] & Core) == Core) {
          Subsumed = true;
          break;
        }
      if (Subsumed)
        continue;
    }
    Accepted.push_back(Masks[I]);
    Result.Assumptions.push_back(maskAssumption(Masks[I], Predicates, Ctx));
  }
  return Result;
}

} // namespace

ConsistencyResult
temos::checkConsistency(const std::vector<const Term *> &Predicates,
                        Theory Th, Context &Ctx,
                        const ConsistencyOptions &Options,
                        SolverService *Service) {
  if (Predicates.empty())
    return ConsistencyResult();
  assert(Predicates.size() <= 24 &&
         "too many predicates for powerset consistency checking");
  if (Service && Service->pool().workerCount() > 0)
    return checkParallel(Predicates, Ctx, Options, *Service);
  return checkSerial(Predicates, Th, Ctx, Options, Service);
}
