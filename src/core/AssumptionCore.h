//===- core/AssumptionCore.h - Fig. 4 oracle -------------------*- C++ -*-===//
///
/// \file
/// The oracle of the paper's Fig. 4 comparison: the minimum
/// realizability core of the TSL-with-assumptions formula. The paper
/// builds it with tsltools' minimum-realizability-core feature; we use
/// greedy delete-one minimization under realizability checks. The
/// oracle's synthesis time is then measured on the reduced formula only
/// -- no psi-generation overhead and no superfluous assumptions -- which
/// is the "theoretical best possible runtime" the paper compares
/// against.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_ASSUMPTIONCORE_H
#define TEMOS_CORE_ASSUMPTIONCORE_H

#include "core/Synthesizer.h"

namespace temos {

/// Result of the oracle computation.
struct OracleResult {
  Realizability Status = Realizability::Unknown;
  /// Minimal assumption subset that keeps the spec realizable.
  std::vector<const Formula *> Core;
  /// Wall time of computing the core (NOT charged to the oracle).
  double MinimizationSeconds = 0;
  /// Wall time of one reactive synthesis run on the reduced formula --
  /// the oracle bar of Fig. 4.
  double OracleSynthesisSeconds = 0;
  size_t RealizabilityChecks = 0;
};

/// Minimizes \p Assumptions for \p Spec and times synthesis on the
/// reduced formula.
OracleResult computeOracle(const Specification &Spec,
                           const std::vector<const Formula *> &Assumptions,
                           Context &Ctx, const SynthesisOptions &Options = {});

} // namespace temos

#endif // TEMOS_CORE_ASSUMPTIONCORE_H
