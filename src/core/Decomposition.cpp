//===- core/Decomposition.cpp - Syntactic decomposition (Alg. 1) -----------===//

#include "core/Decomposition.h"

#include "logic/Traversal.h"

#include <algorithm>

using namespace temos;

std::string Obligation::str() const {
  auto Lits = [](const std::vector<TheoryLiteral> &Ls) {
    std::string Out;
    for (size_t I = 0; I < Ls.size(); ++I) {
      if (I != 0)
        Out += " && ";
      if (!Ls[I].Positive)
        Out += "!";
      Out += Ls[I].Atom->str();
    }
    return Out.empty() ? std::string("true") : Out;
  };
  std::string Arrow = K == Kind::Exact
                          ? " --[" + std::to_string(Steps) + " steps]--> "
                          : " --[eventually]--> ";
  return Lits(Pre) + Arrow + Lits(Post);
}

namespace {

/// A post-condition candidate discovered by the AST traversal.
struct PostCandidate {
  TheoryLiteral Literal;
  Obligation::Kind K = Obligation::Kind::Eventually;
  unsigned Steps = 1;
  /// Traversal-derived candidates (under an actual temporal operator)
  /// combine with every pre-condition; the synthetic all-literal
  /// candidates only with positive ones, to keep the obligation set
  /// from drowning reactive synthesis in valid-but-idle assumptions.
  bool FromTraversal = true;

  bool operator==(const PostCandidate &RHS) const {
    return Literal.Atom == RHS.Literal.Atom &&
           Literal.Positive == RHS.Literal.Positive && K == RHS.K &&
           Steps == RHS.Steps;
  }
};

/// Walks the NNF formula recording the temporal context of every
/// predicate literal (Alg. 1's upward traversal, realized top-down).
void collectPostCandidates(const Formula *F, unsigned NextDepth,
                           bool UnderEventually,
                           std::vector<PostCandidate> &Out) {
  auto Emit = [&](const Term *Atom, bool Positive) {
    PostCandidate C;
    C.Literal = {Atom, Positive};
    if (UnderEventually) {
      C.K = Obligation::Kind::Eventually;
    } else if (NextDepth > 0) {
      C.K = Obligation::Kind::Exact;
      C.Steps = NextDepth;
    } else {
      return; // No temporal operator: not a post-condition.
    }
    if (std::find(Out.begin(), Out.end(), C) == Out.end())
      Out.push_back(C);
  };

  switch (F->kind()) {
  case Formula::Kind::True:
  case Formula::Kind::False:
  case Formula::Kind::Update:
    return;
  case Formula::Kind::Pred:
    Emit(F->pred(), true);
    return;
  case Formula::Kind::Not:
    if (F->child(0)->is(Formula::Kind::Pred))
      Emit(F->child(0)->pred(), false);
    return;
  case Formula::Kind::And:
  case Formula::Kind::Or:
    for (const Formula *Kid : F->children())
      collectPostCandidates(Kid, NextDepth, UnderEventually, Out);
    return;
  case Formula::Kind::Next:
    collectPostCandidates(F->child(0), NextDepth + 1, UnderEventually, Out);
    return;
  case Formula::Kind::Globally:
    // G is transparent: the relative timing below it is unchanged.
    collectPostCandidates(F->child(0), NextDepth, UnderEventually, Out);
    return;
  case Formula::Kind::Finally:
    collectPostCandidates(F->child(0), NextDepth, /*UnderEventually=*/true,
                          Out);
    return;
  case Formula::Kind::Until:
  case Formula::Kind::WeakUntil:
    // Right-hand side: the model must be able to produce F rhs; the
    // left-hand side of U likewise reduces to F lhs (F F p = F p,
    // Sec. 4.1).
    collectPostCandidates(F->rhs(), NextDepth, /*UnderEventually=*/true, Out);
    collectPostCandidates(F->lhs(), NextDepth,
                          F->is(Formula::Kind::Until), Out);
    return;
  case Formula::Kind::Release:
    collectPostCandidates(F->lhs(), NextDepth, UnderEventually, Out);
    collectPostCandidates(F->rhs(), NextDepth, UnderEventually, Out);
    return;
  case Formula::Kind::Implies:
  case Formula::Kind::Iff:
    assert(false && "NNF input expected");
    return;
  }
}

} // namespace

namespace {

/// Canonicalizes literals modulo the background theory: !(f <= 10) and
/// (f > 10) denote the same predicate evaluation, and keeping both
/// multiplies the obligation set (and the assumption automaton) for
/// nothing. Two literals are identified when the SMT solver proves them
/// equivalent.
class LiteralCanonicalizer {
public:
  LiteralCanonicalizer(Theory Th) : Solver(Th) {}

  /// Returns the canonical representative of \p L (possibly \p L
  /// itself, registering it).
  TheoryLiteral canonical(const TheoryLiteral &L) {
    for (const TheoryLiteral &Rep : Representatives)
      if (equivalent(Rep, L))
        return Rep;
    Representatives.push_back(L);
    return L;
  }

private:
  bool equivalent(const TheoryLiteral &A, const TheoryLiteral &B) {
    // A && !B unsat and !A && B unsat.
    return Solver.checkLiterals({{A.Atom, A.Positive},
                                 {B.Atom, !B.Positive}}) == SatResult::Unsat &&
           Solver.checkLiterals({{A.Atom, !A.Positive},
                                 {B.Atom, B.Positive}}) == SatResult::Unsat;
  }

  SmtSolver Solver;
  std::vector<TheoryLiteral> Representatives;
};

} // namespace

Decomposition temos::decompose(const Specification &Spec, Context &Ctx,
                               const DecompositionOptions &Options) {
  Decomposition Result;
  Result.PredicateLiterals = collectPredicateTerms(Spec);
  Result.UpdateTerms = collectUpdateTerms(Spec);
  LiteralCanonicalizer Canon(Spec.Th);

  // Collect post-condition candidates from every (NNF) spec formula.
  std::vector<PostCandidate> Posts;
  auto Scan = [&](const std::vector<const Formula *> &Fs) {
    for (const Formula *F : Fs)
      collectPostCandidates(Ctx.Formulas.toNNF(F), 0, false, Posts);
  };
  Scan(Spec.Assumptions);
  Scan(Spec.AlwaysGuarantees);
  Scan(Spec.Guarantees);

  // The "powerset of post-conditions": every literal is a reachability
  // target (traversal-derived posts keep priority by coming first).
  if (Options.AllLiteralsAsEventualPosts) {
    for (const Term *P : Result.PredicateLiterals) {
      PostCandidate C;
      C.Literal = {P, true};
      C.K = Obligation::Kind::Eventually;
      C.FromTraversal = false;
      if (std::find(Posts.begin(), Posts.end(), C) == Posts.end())
        Posts.push_back(C);
    }
  }

  // Pre-condition combinations: literal singletons (both polarities when
  // enabled) and, if requested, positive conjunctions up to the cap.
  std::vector<std::vector<TheoryLiteral>> Pres;
  for (const Term *P : Result.PredicateLiterals) {
    Pres.push_back({TheoryLiteral{P, true}});
    if (Options.NegatedPreLiterals)
      Pres.push_back({TheoryLiteral{P, false}});
  }
  if (Options.MaxPreConjuncts >= 2) {
    for (size_t I = 0; I < Result.PredicateLiterals.size(); ++I)
      for (size_t J = I + 1; J < Result.PredicateLiterals.size(); ++J)
        Pres.push_back({TheoryLiteral{Result.PredicateLiterals[I], true},
                        TheoryLiteral{Result.PredicateLiterals[J], true}});
  }

  // Canonicalize literals modulo the theory and deduplicate.
  auto CanonList = [&](std::vector<PostCandidate> &List) {
    std::vector<PostCandidate> Out;
    for (PostCandidate &C : List) {
      C.Literal = Canon.canonical(C.Literal);
      if (std::find(Out.begin(), Out.end(), C) == Out.end())
        Out.push_back(C);
    }
    List = std::move(Out);
  };
  CanonList(Posts);
  {
    std::vector<std::vector<TheoryLiteral>> Out;
    for (auto &Pre : Pres) {
      for (TheoryLiteral &L : Pre)
        L = Canon.canonical(L);
      bool Duplicate = false;
      for (const auto &Existing : Out) {
        if (Existing.size() != Pre.size())
          continue;
        bool Same = true;
        for (size_t I = 0; I < Pre.size(); ++I)
          Same &= Existing[I].Atom == Pre[I].Atom &&
                  Existing[I].Positive == Pre[I].Positive;
        if (Same) {
          Duplicate = true;
          break;
        }
      }
      if (!Duplicate)
        Out.push_back(Pre);
    }
    Pres = std::move(Out);
  }

  // Cross pre-combinations with post-candidates (Alg. 1 lines 26-30).
  for (const PostCandidate &Post : Posts) {
    for (const auto &Pre : Pres) {
      if (Result.Obligations.size() >= Options.MaxObligations)
        return Result;
      // F p given p as pre-condition is trivially fulfilled: skip.
      if (Post.K == Obligation::Kind::Eventually && Pre.size() == 1 &&
          Pre[0].Atom == Post.Literal.Atom &&
          Pre[0].Positive == Post.Literal.Positive)
        continue;
      // Synthetic posts pair only with positive pre-conditions.
      if (!Post.FromTraversal) {
        bool AnyNegative = false;
        for (const TheoryLiteral &L : Pre)
          AnyNegative |= !L.Positive;
        if (AnyNegative)
          continue;
      }
      Obligation Ob;
      Ob.Pre = Pre;
      Ob.Post = {Post.Literal};
      Ob.K = Post.K;
      Ob.Steps = Post.Steps;
      Result.Obligations.push_back(std::move(Ob));
    }
  }

  // Prioritize obligations whose pre-condition mentions a signal of the
  // post-condition: the (update, post) deduplication downstream keeps
  // the first assumption per pair, and the related-pre variant is the
  // one reactive synthesis can actually trigger.
  auto SharesSignals = [](const Obligation &Ob) {
    std::vector<std::string> PostSignals;
    for (const TheoryLiteral &L : Ob.Post)
      collectSignals(L.Atom, PostSignals);
    for (const TheoryLiteral &L : Ob.Pre) {
      std::vector<std::string> PreSignals;
      collectSignals(L.Atom, PreSignals);
      for (const std::string &Name : PreSignals)
        if (std::find(PostSignals.begin(), PostSignals.end(), Name) !=
            PostSignals.end())
          return true;
    }
    return false;
  };
  std::stable_partition(Result.Obligations.begin(), Result.Obligations.end(),
                        SharesSignals);
  return Result;
}
