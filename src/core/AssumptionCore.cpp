//===- core/AssumptionCore.cpp - Fig. 4 oracle -----------------------------===//

#include "core/AssumptionCore.h"

#include "support/Timer.h"

using namespace temos;

OracleResult
temos::computeOracle(const Specification &Spec,
                     const std::vector<const Formula *> &Assumptions,
                     Context &Ctx, const SynthesisOptions &Options) {
  OracleResult Result;
  Synthesizer Synth(Ctx);

  auto Realizable = [&](const std::vector<const Formula *> &Set) {
    const Formula *Phi = Synth.formulaWithAssumptions(Spec, Set);
    std::vector<const Formula *> ForAlphabet = Set;
    ForAlphabet.push_back(Phi);
    Alphabet AB = Alphabet::build(Spec, Ctx, ForAlphabet);
    ++Result.RealizabilityChecks;
    return checkRealizable(Phi, Ctx, AB, Options) ==
           Realizability::Realizable;
  };

  Timer MinimizeTimer;
  if (!Realizable(Assumptions)) {
    // The full set is already unrealizable: no core exists.
    Result.Status = Realizability::Unrealizable;
    Result.MinimizationSeconds = MinimizeTimer.seconds();
    return Result;
  }

  // Greedy delete-one minimization.
  std::vector<const Formula *> Core = Assumptions;
  for (size_t I = 0; I < Core.size();) {
    std::vector<const Formula *> Without = Core;
    Without.erase(Without.begin() + I);
    if (Realizable(Without))
      Core = std::move(Without); // Not needed: drop permanently.
    else
      ++I;
  }
  Result.MinimizationSeconds = MinimizeTimer.seconds();
  Result.Core = Core;
  Result.Status = Realizability::Realizable;

  // The oracle's reported cost: one synthesis run on the reduced
  // formula.
  Timer OracleTimer;
  const Formula *Phi = Synth.formulaWithAssumptions(Spec, Core);
  std::vector<const Formula *> ForAlphabet = Core;
  ForAlphabet.push_back(Phi);
  Alphabet AB = Alphabet::build(Spec, Ctx, ForAlphabet);
  synthesizeLtl(Phi, Ctx, AB, Options);
  Result.OracleSynthesisSeconds = OracleTimer.seconds();
  return Result;
}
