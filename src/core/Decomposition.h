//===- core/Decomposition.h - Syntactic decomposition (Alg. 1) -*- C++ -*-===//
///
/// \file
/// The syntactic decomposition of TSL-MT specifications (Sec. 4.1,
/// Algorithm 1): extract the predicate literals, then derive the data
/// transformation obligations -- Hoare-style (pre-condition, program?,
/// post-condition) synthesis tasks where the temporal operator over each
/// post-condition literal determines the obligation's shape:
///
///  * a chain of n X operators  ->  exact n-step obligation,
///  * an U/W right-hand side or an F  ->  reachability obligation,
///  * an U left-hand side  ->  reachability obligation (the paper notes
///    G(p -> F p) collapses to F p since F F p = F p).
///
/// Pre- and post-conditions are combined from the literal sets
/// ("powerset" in the paper); the combination breadth is configurable
/// because the full powerset is exponential.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_DECOMPOSITION_H
#define TEMOS_CORE_DECOMPOSITION_H

#include "logic/Specification.h"
#include "theory/SmtSolver.h"

#include <vector>

namespace temos {

/// A data transformation obligation (Sec. 4.1).
struct Obligation {
  enum class Kind {
    /// Post-condition must hold after exactly Steps time steps.
    Exact,
    /// Post-condition must eventually hold (F / U-derived).
    Eventually,
  };

  std::vector<TheoryLiteral> Pre;
  std::vector<TheoryLiteral> Post;
  Kind K = Kind::Eventually;
  unsigned Steps = 1;

  std::string str() const;
};

/// Decomposition tunables.
struct DecompositionOptions {
  /// Maximum number of literals conjoined in a pre-condition (the paper
  /// uses the full powerset; size caps keep obligation counts sane).
  unsigned MaxPreConjuncts = 1;
  /// Also try negated pre-condition literals.
  bool NegatedPreLiterals = true;
  /// Treat every predicate literal (both polarities) as a reachability
  /// post-condition candidate in addition to the ones discovered by the
  /// AST traversal. This realizes the paper's "powerset of
  /// post-conditions" and is what derives the CFS vruntime-flip
  /// properties of Sec. 2, which appear under no temporal operator in
  /// Fig. 2.
  bool AllLiteralsAsEventualPosts = true;
  /// Hard cap on emitted obligations.
  size_t MaxObligations = 256;
};

/// Result of decomposing a specification.
struct Decomposition {
  /// All distinct predicate terms (the paper's predicate literals and
  /// Table 1's |P|).
  std::vector<const Term *> PredicateLiterals;
  /// All distinct update atoms (Table 1's |F|).
  std::vector<const Formula *> UpdateTerms;
  /// The data transformation obligations.
  std::vector<Obligation> Obligations;
};

/// Runs syntactic decomposition on \p Spec.
Decomposition decompose(const Specification &Spec, Context &Ctx,
                        const DecompositionOptions &Options = {});

} // namespace temos

#endif // TEMOS_CORE_DECOMPOSITION_H
