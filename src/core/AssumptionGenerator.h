//===- core/AssumptionGenerator.h - SyGuS->TSL translation -----*- C++ -*-===//
///
/// \file
/// Bridges SyGuS results back into TSL (Sec. 4.3, Algorithms 2 and 3,
/// Theorems 4.1/4.4): a data transformation obligation is turned into a
/// SyGuS query over the update terms the specification offers; the
/// synthesized program is unrolled into a chain of update atoms with X
/// prefixes (sequential) or a W-encoded loop body, producing the valid
/// TSL assumption
///
///   G (pre && upd_0 && X upd_1 && ... -> X^n post)          (Alg. 2)
///   G (pre && (upd W post) -> F post)                        (Alg. 3)
///
/// that weakens the TSL underapproximation just enough for reactive
/// synthesis to exploit the theory semantics.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_ASSUMPTIONGENERATOR_H
#define TEMOS_CORE_ASSUMPTIONGENERATOR_H

#include "core/Decomposition.h"
#include "sygus/SygusSolver.h"

#include <optional>

namespace temos {

/// One generated assumption, with the pieces the refinement loop
/// (Alg. 4) needs: the (pre, upd, post) split and the originating
/// obligation/program so SyGuS can be re-run with exclusions.
struct GeneratedAssumption {
  /// The full G(pre && upd -> post') formula added to the spec.
  const Formula *Assumption = nullptr;
  /// Conjunction of pre-condition literals.
  const Formula *PreFormula = nullptr;
  /// The update chain (with X prefixes) or loop body conjunction.
  const Formula *UpdFormula = nullptr;
  /// X^n post or F post.
  const Formula *PostFormula = nullptr;

  Obligation Ob;
  bool IsLoop = false;
  SequentialProgram Sequential;
  LoopProgram Loop;
};

/// Generates TSL assumptions from obligations via SyGuS.
///
/// Construction is cheap (no per-spec precomputation), so the parallel
/// pipeline builds one generator per pool worker: generators share the
/// Context (whose factories are internally synchronized) but nothing
/// else, and obligations are independent, so concurrent generate()
/// calls on distinct instances are safe.
class AssumptionGenerator {
public:
  AssumptionGenerator(const Specification &Spec, Context &Ctx)
      : Spec(Spec), Ctx(Ctx), Solver(Ctx, Spec.Th) {}

  /// Routes the inner SyGuS verifier's verdict-only SMT checks through
  /// \p Service (shared query cache across workers and runs).
  void setService(SolverService *S) { Solver.setService(S); }

  /// Attaches a cooperative deadline to the inner SyGuS solver (and its
  /// private SMT solver); generate() throws DeadlineExpired mid-search
  /// when it trips.
  void setDeadline(const Deadline &D) { Solver.setDeadline(D); }

  /// Fault injection passthrough: makes the inner enumeration
  /// deliberately non-terminating (see SygusSolver::Options).
  void setSpinHangForTesting(bool On) { Solver.Opts.SpinHangForTesting = On; }

  struct Options {
    /// Sequential search depth for reachability obligations before
    /// falling back to loop synthesis.
    unsigned MaxSequentialSteps = 3;
  };
  Options Opts;

  /// Builds the SyGuS query for \p Ob: semantic constraints from the
  /// obligation, syntactic constraints (the chain grammar) from the
  /// update terms the spec makes available for the post-condition's
  /// cells (Sec. 4.3.1).
  SygusQuery buildQuery(const Obligation &Ob) const;

  /// Runs SyGuS on \p Ob and encodes the result. Programs in the
  /// exclusion lists are skipped (refinement, Alg. 4). Returns nullopt
  /// when no program verifies.
  std::optional<GeneratedAssumption>
  generate(const Obligation &Ob,
           const std::vector<SequentialProgram> &ExcludedSeq = {},
           const std::vector<LoopProgram> &ExcludedLoop = {},
           SygusStats *Stats = nullptr);

  /// Encodes a sequential program as a TSL assumption (Algorithm 2).
  GeneratedAssumption encodeSequential(const Obligation &Ob,
                                       const SequentialProgram &Program);
  /// Encodes a loop program as a TSL assumption (Algorithm 3).
  GeneratedAssumption encodeLoop(const Obligation &Ob,
                                 const LoopProgram &Program);

  /// The refinement guarantee G(pre -> upd) used to identify
  /// "unhelpful" assumptions (Alg. 4).
  const Formula *refinementGuarantee(const GeneratedAssumption &A);

private:
  const Formula *literalConjunction(const std::vector<TheoryLiteral> &Ls);
  const Formula *stepConjunction(const StepChoice &Step);

  const Specification &Spec;
  Context &Ctx;
  SygusSolver Solver;
};

} // namespace temos

#endif // TEMOS_CORE_ASSUMPTIONGENERATOR_H
