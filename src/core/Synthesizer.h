//===- core/Synthesizer.h - TSL-MT synthesis pipeline ----------*- C++ -*-===//
///
/// \file
/// The complete temos pipeline (Fig. 3 of the paper):
///
///   TSL-MT spec --> syntactic decomposition --> { predicate literals,
///   TSL spec, data transformation obligations } --> consistency
///   checking + SyGuS --> TSL with assumptions --> reactive synthesis
///   (with the Alg. 4 refinement loop) --> reactive program.
///
/// The per-phase timings and counts reported in PipelineStats are the
/// columns of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_SYNTHESIZER_H
#define TEMOS_CORE_SYNTHESIZER_H

#include "core/AssumptionGenerator.h"
#include "core/ConsistencyChecker.h"
#include "core/Decomposition.h"
#include "game/BoundedSynthesis.h"
#include "support/Deadline.h"
#include "theory/SolverService.h"

#include <memory>
#include <string>

namespace temos {

/// Solver-service tunables: how the pipeline fans independent SMT and
/// SyGuS work out across workers, and whether verdicts are memoized.
struct ParallelismOptions {
  /// Worker threads for the solver service. 1 (the default) runs
  /// everything inline on the calling thread, exactly like the
  /// pre-service pipeline.
  unsigned NumThreads = 1;
  /// Memoize SMT verdicts in the service's query cache. The cache is
  /// keyed structurally, so it survives across pipeline runs on the
  /// same Synthesizer and serves repeated runs (PipelineStats reports
  /// the hit/miss split per run).
  bool CacheEnabled = true;
  /// Merge parallel results in task order so the emitted assumption
  /// set is byte-identical for every NumThreads value. Off merges in
  /// completion order: the assumption *set* generated per obligation is
  /// unchanged but cap-induced truncation may differ between runs.
  bool DeterministicMerge = true;
};

/// Wall-clock budgets for one pipeline run, in seconds; 0 = unlimited.
/// Each per-phase budget starts ticking when its phase starts and is
/// additionally capped by the global budget (whichever deadline falls
/// earlier wins). Expiry never aborts the process: the affected phase
/// degrades -- consistency checking emits the (individually valid)
/// assumptions found so far, SyGuS marks the obligation unresolved,
/// reactive synthesis reports Unknown -- and every degradation is
/// recorded as a Timeout entry in PipelineStats::Failures.
struct TimeBudget {
  double TotalSeconds = 0;
  double ConsistencySeconds = 0;
  double SygusSeconds = 0;
  /// Covers reactive synthesis plus the Alg. 4 refinement loop.
  double ReactiveSeconds = 0;
};

/// Pipeline tunables.
struct PipelineOptions {
  DecompositionOptions Decomp;
  ConsistencyOptions Consistency;
  SynthesisOptions Reactive;
  AssumptionGenerator::Options Sygus;
  ParallelismOptions Parallelism;
  TimeBudget Budget;
  /// Refinement-loop iterations (Alg. 4) before giving up.
  unsigned MaxRefinements = 8;
  /// Cap on SyGuS-generated assumptions: assumptions beyond the cap are
  /// not generated (obligation order gives traversal-derived posts
  /// priority). Keeps the assumption automaton tractable.
  size_t MaxSygusAssumptions = 16;
  /// Separate, tighter cap on W-encoded loop assumptions (Alg. 3): each
  /// one adds an Until and an Eventually acceptance set to the
  /// underlying automaton, which the explicit tableau pays for
  /// exponentially.
  size_t MaxLoopAssumptions = 3;
  /// Apply the equivalence-preserving formula simplifier to the final
  /// TSL-with-assumptions formula before automaton construction.
  bool SimplifyBeforeSynthesis = true;
  /// Eager mode (the paper's approach) generates every assumption up
  /// front. Lazy mode adds assumptions one at a time, re-running
  /// reactive synthesis after each -- the alternative discussed in
  /// Sec. 5.2, implemented for the ablation bench.
  bool Eager = true;
  /// Fault injection for the deadline machinery (never set in
  /// production): makes the SyGuS enumeration deliberately
  /// non-terminating (see SygusSolver::Options::SpinHangForTesting), so
  /// the run only finishes if a deadline poll trips. validate() rejects
  /// this flag without a total or SyGuS time budget.
  bool InjectSpinHang = false;

  /// Checks the option combination for contradictions the pipeline
  /// cannot honor (zero worker threads, a loop-assumption cap above the
  /// total SyGuS cap, refinement with SyGuS disabled, ...). Zero-valued
  /// phase budgets mean "phase disabled" and are accepted. Returns an
  /// empty string when the options are coherent, otherwise a
  /// human-readable diagnostic. Synthesizer::run calls this up front
  /// and refuses to run on a non-empty answer.
  std::string validate() const;
};

/// One reactive-synthesis invocation of a pipeline run, as recorded for
/// the --bench-json emitter: which refinement round it served, whether
/// the incremental engine reused cached work, and the phase split.
struct ReactiveRunStats {
  /// Refinement round (eager) or assumption-prefix length (lazy).
  unsigned Round = 0;
  Realizability Status = Realizability::Unknown;
  bool NbaCacheHit = false;
  size_t ArenaStatesReused = 0;
  size_t GameStates = 0;
  /// Bound that produced the strategy (0 unless Realizable).
  unsigned BoundUsed = 0;
  double NbaSeconds = 0;
  double GameSeconds = 0;
};

/// Table 1's per-benchmark columns, plus solver-service accounting.
struct PipelineStats {
  size_t SpecSize = 0;        // |phi|
  size_t PredicateCount = 0;  // |P|
  size_t UpdateTermCount = 0; // |F|
  size_t AssumptionCount = 0; // |psi|
  double PsiGenSeconds = 0;   // psi generation, wall clock
  double SynthesisSeconds = 0; // TSL synthesis, wall clock
  /// CPU time (summed over all service workers) per phase. With N
  /// workers busy, CPU time approaches N x wall time; the ratio is the
  /// observed parallel utilization Table-1 speedup reports cite.
  double PsiGenCpuSeconds = 0;
  double SynthesisCpuSeconds = 0;
  unsigned Refinements = 0;
  unsigned ReactiveRuns = 0;
  size_t GameStates = 0;
  size_t ConsistencyQueries = 0;
  /// Query-cache hits/misses/evictions attributable to this run (the
  /// cache itself persists across runs on the same Synthesizer, which
  /// is where repeated-run hits come from).
  size_t CacheHits = 0;
  size_t CacheMisses = 0;
  size_t CacheEvictions = 0;
  /// Incremental reactive-engine cache traffic for this run. Hits mean
  /// a refinement round (or repeated run) skipped UCW construction /
  /// replayed tableau expansions instead of re-deriving them.
  size_t NbaCacheHits = 0;
  size_t NbaCacheMisses = 0;
  size_t ExpansionCacheHits = 0;
  size_t ExpansionCacheMisses = 0;
  /// One entry per reactive invocation (ReactiveRuns entries), in
  /// order. Surfaced via --bench-json; never part of the text summary.
  std::vector<ReactiveRunStats> ReactiveDetail;
  /// Structured failure taxonomy for this run, in the order the
  /// degradations happened: deadline expiries (Timeout), resource-budget
  /// aborts (StateBudget), arithmetic overflow (Overflow), exceptions
  /// escaping pool workers (WorkerException), and everything else
  /// (Internal). Empty on a clean run. Surfaced through --emit=summary,
  /// the bench JSON records, and the CLI exit code.
  std::vector<FailureRecord> Failures;
};

/// Result of running the pipeline.
struct PipelineResult {
  Realizability Status = Realizability::Unknown;
  /// Non-empty when the run was refused up front (option validation
  /// failure); Status is Unknown in that case.
  std::string Diagnostic;
  std::optional<MealyMachine> Machine;
  /// Alphabet used for the final (successful) reactive synthesis run.
  Alphabet AB;
  /// All assumptions fed to reactive synthesis.
  std::vector<const Formula *> Assumptions;
  std::vector<const Formula *> ConsistencyAssumptions;
  std::vector<GeneratedAssumption> SygusAssumptions;
  PipelineStats Stats;
};

/// The TSL-MT synthesizer.
class Synthesizer {
public:
  explicit Synthesizer(Context &Ctx) : Ctx(Ctx) {}

  /// Runs the full pipeline on \p Spec. Refuses to run (Status Unknown,
  /// Diagnostic set) when Options.validate() reports a problem.
  PipelineResult run(const Specification &Spec,
                     const PipelineOptions &Options = {});

  /// Builds the "TSL with assumptions" formula
  /// (assumptions && psi) -> guarantees for a given assumption set.
  const Formula *formulaWithAssumptions(
      const Specification &Spec,
      const std::vector<const Formula *> &Assumptions);

  /// Injects a solver service to use instead of the lazily created one
  /// -- benches and tests share one cache across Synthesizer instances
  /// this way. The injected service's configuration wins over
  /// PipelineOptions::Parallelism.
  void setSolverService(std::shared_ptr<SolverService> S) {
    Service = std::move(S);
    ServiceInjected = Service != nullptr;
  }

  /// The service the pipeline is using (null until the first run unless
  /// one was injected). Its cache persists across run() calls, which is
  /// what makes repeated runs report cache hits.
  std::shared_ptr<SolverService> solverService() const { return Service; }

  /// The reactive-synthesis engine. Like the solver service's query
  /// cache, its NBA/arena caches persist across run() calls on this
  /// Synthesizer, so repeated runs of the same benchmark serve the UCW
  /// and the explored game from cache.
  SynthesisEngine &engine() { return Engine; }

private:
  PipelineResult runEager(const Specification &Spec,
                          const PipelineOptions &Options);
  PipelineResult runLazy(const Specification &Spec,
                         const PipelineOptions &Options);
  /// Shared front half: decomposition, consistency checking and SyGuS
  /// assumption generation (with semantic deduplication). Fans
  /// independent obligations out across the service's pool.
  void generateAssumptions(const Specification &Spec,
                           const PipelineOptions &Options,
                           AssumptionGenerator &Generator,
                           PipelineResult &Result, const Deadline &Global);
  /// Returns the service to use for this run, (re)creating the lazily
  /// owned one when the theory or parallelism configuration changed.
  SolverService &ensureService(Theory Th, const PipelineOptions &Options);

  /// Records one reactive invocation into Result's stats.
  static void recordReactiveRun(PipelineResult &Result, unsigned Round,
                                const SynthesisResult &Reactive);

  Context &Ctx;
  std::shared_ptr<SolverService> Service;
  bool ServiceInjected = false;
  SynthesisEngine Engine;
};

} // namespace temos

#endif // TEMOS_CORE_SYNTHESIZER_H
