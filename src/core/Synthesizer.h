//===- core/Synthesizer.h - TSL-MT synthesis pipeline ----------*- C++ -*-===//
///
/// \file
/// The complete temos pipeline (Fig. 3 of the paper):
///
///   TSL-MT spec --> syntactic decomposition --> { predicate literals,
///   TSL spec, data transformation obligations } --> consistency
///   checking + SyGuS --> TSL with assumptions --> reactive synthesis
///   (with the Alg. 4 refinement loop) --> reactive program.
///
/// The per-phase timings and counts reported in PipelineStats are the
/// columns of Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_SYNTHESIZER_H
#define TEMOS_CORE_SYNTHESIZER_H

#include "core/AssumptionGenerator.h"
#include "core/ConsistencyChecker.h"
#include "core/Decomposition.h"
#include "game/BoundedSynthesis.h"

namespace temos {

/// Pipeline tunables.
struct PipelineOptions {
  DecompositionOptions Decomp;
  ConsistencyOptions Consistency;
  SynthesisOptions Reactive;
  AssumptionGenerator::Options Sygus;
  /// Refinement-loop iterations (Alg. 4) before giving up.
  unsigned MaxRefinements = 8;
  /// Cap on SyGuS-generated assumptions: assumptions beyond the cap are
  /// not generated (obligation order gives traversal-derived posts
  /// priority). Keeps the assumption automaton tractable.
  size_t MaxSygusAssumptions = 16;
  /// Separate, tighter cap on W-encoded loop assumptions (Alg. 3): each
  /// one adds an Until and an Eventually acceptance set to the
  /// underlying automaton, which the explicit tableau pays for
  /// exponentially.
  size_t MaxLoopAssumptions = 3;
  /// Apply the equivalence-preserving formula simplifier to the final
  /// TSL-with-assumptions formula before automaton construction.
  bool SimplifyBeforeSynthesis = true;
  /// Eager mode (the paper's approach) generates every assumption up
  /// front. Lazy mode adds assumptions one at a time, re-running
  /// reactive synthesis after each -- the alternative discussed in
  /// Sec. 5.2, implemented for the ablation bench.
  bool Eager = true;
};

/// Table 1's per-benchmark columns.
struct PipelineStats {
  size_t SpecSize = 0;        // |phi|
  size_t PredicateCount = 0;  // |P|
  size_t UpdateTermCount = 0; // |F|
  size_t AssumptionCount = 0; // |psi|
  double PsiGenSeconds = 0;   // psi generation
  double SynthesisSeconds = 0; // TSL synthesis
  unsigned Refinements = 0;
  unsigned ReactiveRuns = 0;
  size_t GameStates = 0;
  size_t ConsistencyQueries = 0;
};

/// Result of running the pipeline.
struct PipelineResult {
  Realizability Status = Realizability::Unknown;
  std::optional<MealyMachine> Machine;
  /// Alphabet used for the final (successful) reactive synthesis run.
  Alphabet AB;
  /// All assumptions fed to reactive synthesis.
  std::vector<const Formula *> Assumptions;
  std::vector<const Formula *> ConsistencyAssumptions;
  std::vector<GeneratedAssumption> SygusAssumptions;
  PipelineStats Stats;
};

/// The TSL-MT synthesizer.
class Synthesizer {
public:
  explicit Synthesizer(Context &Ctx) : Ctx(Ctx) {}

  /// Runs the full pipeline on \p Spec.
  PipelineResult run(const Specification &Spec,
                     const PipelineOptions &Options = {});

  /// Builds the "TSL with assumptions" formula
  /// (assumptions && psi) -> guarantees for a given assumption set.
  const Formula *formulaWithAssumptions(
      const Specification &Spec,
      const std::vector<const Formula *> &Assumptions);

private:
  PipelineResult runEager(const Specification &Spec,
                          const PipelineOptions &Options);
  PipelineResult runLazy(const Specification &Spec,
                         const PipelineOptions &Options);
  /// Shared front half: decomposition, consistency checking and SyGuS
  /// assumption generation (with semantic deduplication).
  void generateAssumptions(const Specification &Spec,
                           const PipelineOptions &Options,
                           AssumptionGenerator &Generator,
                           PipelineResult &Result);

  Context &Ctx;
};

} // namespace temos

#endif // TEMOS_CORE_SYNTHESIZER_H
