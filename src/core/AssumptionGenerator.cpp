//===- core/AssumptionGenerator.cpp - SyGuS->TSL translation ---------------===//

#include "core/AssumptionGenerator.h"

#include "logic/Traversal.h"

#include <algorithm>

using namespace temos;

SygusQuery AssumptionGenerator::buildQuery(const Obligation &Ob) const {
  SygusQuery Query;
  Query.Pre = Ob.Pre;
  Query.Post = Ob.Post;

  // Cells relevant to the obligation: updatable signals occurring in the
  // post-condition terms.
  std::vector<std::string> Relevant;
  for (const TheoryLiteral &L : Ob.Post) {
    std::vector<std::string> Names;
    collectSignals(L.Atom, Names);
    for (const std::string &Name : Names)
      if (Spec.isUpdatable(Name) &&
          std::find(Relevant.begin(), Relevant.end(), Name) == Relevant.end())
        Relevant.push_back(Name);
  }

  // Available update right-hand sides per cell, from the spec's update
  // terms (the chain grammar's F set, Sec. 4.3.1).
  std::vector<const Formula *> Updates;
  auto Collect = [&](const std::vector<const Formula *> &Fs) {
    for (const Formula *F : Fs)
      for (const Formula *U : collectUpdateTerms(F))
        if (std::find(Updates.begin(), Updates.end(), U) == Updates.end())
          Updates.push_back(U);
  };
  Collect(Spec.Assumptions);
  Collect(Spec.AlwaysGuarantees);
  Collect(Spec.Guarantees);

  for (const std::string &Name : Relevant) {
    CellSpec Cell;
    Cell.Name = Name;
    Cell.S = *Spec.signalSort(Name);
    for (const Formula *U : Updates)
      if (U->cell() == Name)
        Cell.Updates.push_back(U->updateValue());
    // The chain grammar's terminal s_i (Sec. 4.3.1): the identity update
    // is always available (a cell not written keeps its value).
    const Term *Identity = Ctx.Terms.signal(Name, Cell.S);
    if (std::find(Cell.Updates.begin(), Cell.Updates.end(), Identity) ==
        Cell.Updates.end())
      Cell.Updates.push_back(Identity);
    Query.Cells.push_back(std::move(Cell));
  }

  // Ambient facts: non-temporal predicate literals from the 'always
  // assume' block (e.g. weight > 0) strengthen the SyGuS semantic
  // constraint -- the encoded TSL assumption stays valid because the
  // environment assumption is conjoined globally in phi.
  for (const Formula *A : Spec.Assumptions) {
    const Formula *Nnf = Ctx.Formulas.toNNF(A);
    std::vector<const Formula *> Conjuncts =
        Nnf->is(Formula::Kind::And) ? Nnf->children()
                                    : std::vector<const Formula *>{Nnf};
    for (const Formula *C : Conjuncts) {
      TheoryLiteral L;
      if (C->is(Formula::Kind::Pred))
        L = {C->pred(), true};
      else if (C->is(Formula::Kind::Not) &&
               C->child(0)->is(Formula::Kind::Pred))
        L = {C->child(0)->pred(), false};
      else
        continue;
      bool Duplicate = false;
      for (const TheoryLiteral &Existing : Query.Ambient)
        Duplicate |= Existing.Atom == L.Atom;
      if (!Duplicate)
        Query.Ambient.push_back(L);
    }
  }
  return Query;
}

const Formula *AssumptionGenerator::literalConjunction(
    const std::vector<TheoryLiteral> &Ls) {
  std::vector<const Formula *> Parts;
  for (const TheoryLiteral &L : Ls) {
    const Formula *Atom = Ctx.Formulas.pred(L.Atom);
    Parts.push_back(L.Positive ? Atom : Ctx.Formulas.notF(Atom));
  }
  return Ctx.Formulas.andF(std::move(Parts));
}

const Formula *AssumptionGenerator::stepConjunction(const StepChoice &Step) {
  std::vector<const Formula *> Parts;
  for (const auto &[Cell, Rhs] : Step)
    Parts.push_back(Ctx.Formulas.update(Cell, Rhs));
  return Ctx.Formulas.andF(std::move(Parts));
}

GeneratedAssumption
AssumptionGenerator::encodeSequential(const Obligation &Ob,
                                      const SequentialProgram &Program) {
  GeneratedAssumption Result;
  Result.Ob = Ob;
  Result.Sequential = Program;
  Result.PreFormula = literalConjunction(Ob.Pre);
  Result.PostFormula = Ctx.Formulas.nextN(
      literalConjunction(Ob.Post),
      static_cast<unsigned>(Program.Steps.size()));

  // Algorithm 2: upd = upd_0 && X upd_1 && ... && X^(n-1) upd_(n-1).
  std::vector<const Formula *> Chain;
  for (size_t J = 0; J < Program.Steps.size(); ++J)
    Chain.push_back(Ctx.Formulas.nextN(stepConjunction(Program.Steps[J]),
                                       static_cast<unsigned>(J)));
  Result.UpdFormula = Ctx.Formulas.andF(std::move(Chain));

  Result.Assumption = Ctx.Formulas.globally(Ctx.Formulas.implies(
      Ctx.Formulas.andF(Result.PreFormula, Result.UpdFormula),
      Result.PostFormula));
  return Result;
}

GeneratedAssumption AssumptionGenerator::encodeLoop(const Obligation &Ob,
                                                    const LoopProgram &Program) {
  assert(Program.Body.size() == 1 &&
         "only single-step loop bodies are encoded as assumptions");
  GeneratedAssumption Result;
  Result.Ob = Ob;
  Result.IsLoop = true;
  Result.Loop = Program;
  Result.PreFormula = literalConjunction(Ob.Pre);
  const Formula *Post = literalConjunction(Ob.Post);
  Result.PostFormula = Ctx.Formulas.finallyF(Post);
  const Formula *Body = stepConjunction(Program.Body[0]);
  // Algorithm 3: G (pre && (upd W post) -> F post).
  Result.UpdFormula = Ctx.Formulas.weakUntil(Body, Post);
  Result.Assumption = Ctx.Formulas.globally(Ctx.Formulas.implies(
      Ctx.Formulas.andF(Result.PreFormula, Result.UpdFormula),
      Result.PostFormula));
  return Result;
}

std::optional<GeneratedAssumption> AssumptionGenerator::generate(
    const Obligation &Ob, const std::vector<SequentialProgram> &ExcludedSeq,
    const std::vector<LoopProgram> &ExcludedLoop, SygusStats *Stats) {
  SygusQuery Query = buildQuery(Ob);
  if (Query.Cells.empty())
    return std::nullopt; // Nothing updatable: no data transformation.

  if (Ob.K == Obligation::Kind::Exact) {
    auto Program =
        Solver.synthesizeSequential(Query, Ob.Steps, ExcludedSeq, Stats);
    if (!Program)
      return std::nullopt;
    return encodeSequential(Ob, *Program);
  }

  // Reachability: prefer short sequential witnesses (the intro example's
  // two increments), then fall back to loops (Example 4.5).
  Solver.Opts.MaxSteps = Opts.MaxSequentialSteps;
  if (auto Program =
          Solver.synthesizeSequentialUpTo(Query, ExcludedSeq, Stats))
    return encodeSequential(Ob, *Program);
  Solver.Opts.MaxBodySteps = 1; // Only 1-step bodies are encodable.
  if (auto Program = Solver.synthesizeLoop(Query, ExcludedLoop, Stats))
    return encodeLoop(Ob, *Program);
  return std::nullopt;
}

const Formula *
AssumptionGenerator::refinementGuarantee(const GeneratedAssumption &A) {
  // Alg. 4: the assumption is "unhelpful" if committing to its update
  // chain whenever the pre-condition holds contradicts the rest of the
  // specification: guarantee = G (pre -> upd).
  return Ctx.Formulas.globally(
      Ctx.Formulas.implies(A.PreFormula, A.UpdFormula));
}
