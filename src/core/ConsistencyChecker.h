//===- core/ConsistencyChecker.h - Consistency checking (4.2) --*- C++ -*-===//
///
/// \file
/// Consistency checking (Sec. 4.2): the environment can only produce
/// input valuations that are satisfiable in the background theory, but
/// the reactive layer treats predicates as opaque inputs. For every
/// theory-unsatisfiable combination of predicate literals this pass
/// emits the assumption G !(p1 && ... && pk), e.g. G !(x < y && y < x)
/// for the mutex example.
///
/// The paper enumerates the full powerset (O(2^n) SMT queries). We
/// support that, plus a minimal-core mode that suppresses subsumed
/// combinations (if {a,b} is unsat, {a,b,c} adds nothing) -- the
/// ablation bench compares the two.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_CONSISTENCYCHECKER_H
#define TEMOS_CORE_CONSISTENCYCHECKER_H

#include "logic/Specification.h"
#include "theory/SmtSolver.h"

#include <vector>

namespace temos {

/// Consistency-checking tunables.
struct ConsistencyOptions {
  /// Largest literal combination checked (full powerset up to this
  /// size). The paper's powerset corresponds to the predicate count.
  unsigned MaxSubsetSize = 3;
  /// Emit only minimal unsatisfiable combinations (supersets of an
  /// already-unsat set are skipped). Off reproduces the paper's plain
  /// powerset enumeration.
  bool MinimalCoresOnly = true;
};

/// Result of a consistency-checking run.
struct ConsistencyResult {
  /// G !(...) assumptions, one per unsatisfiable combination.
  std::vector<const Formula *> Assumptions;
  /// Number of SMT satisfiability queries issued.
  size_t SolverQueries = 0;
};

/// Runs consistency checking over the predicate literals of \p Spec.
ConsistencyResult checkConsistency(const std::vector<const Term *> &Predicates,
                                   Theory Th, Context &Ctx,
                                   const ConsistencyOptions &Options = {});

} // namespace temos

#endif // TEMOS_CORE_CONSISTENCYCHECKER_H
