//===- core/ConsistencyChecker.h - Consistency checking (4.2) --*- C++ -*-===//
///
/// \file
/// Consistency checking (Sec. 4.2): the environment can only produce
/// input valuations that are satisfiable in the background theory, but
/// the reactive layer treats predicates as opaque inputs. For every
/// theory-unsatisfiable combination of predicate literals this pass
/// emits the assumption G !(p1 && ... && pk), e.g. G !(x < y && y < x)
/// for the mutex example.
///
/// The paper enumerates the full powerset (O(2^n) SMT queries). We
/// support that, plus a minimal-core mode that suppresses subsumed
/// combinations (if {a,b} is unsat, {a,b,c} adds nothing) -- the
/// ablation bench compares the two.
///
/// The subset checks are independent SMT queries, so when a
/// SolverService with workers is supplied they are fanned out across
/// its pool: workers publish unsat cores to a shared UnsatCoreStore and
/// skip supersets opportunistically, and a deterministic post-filter
/// replays the serial acceptance order over the collected verdicts.
/// The emitted assumption list is therefore byte-identical for every
/// thread count (see docs/ARCHITECTURE.md for the argument).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_CORE_CONSISTENCYCHECKER_H
#define TEMOS_CORE_CONSISTENCYCHECKER_H

#include "logic/Specification.h"
#include "support/Deadline.h"
#include "theory/SmtSolver.h"
#include "theory/SolverService.h"

#include <vector>

namespace temos {

/// Consistency-checking tunables.
struct ConsistencyOptions {
  /// Largest literal combination checked (full powerset up to this
  /// size). The paper's powerset corresponds to the predicate count.
  unsigned MaxSubsetSize = 3;
  /// Emit only minimal unsatisfiable combinations (supersets of an
  /// already-unsat set are skipped). Off reproduces the paper's plain
  /// powerset enumeration.
  bool MinimalCoresOnly = true;
  /// Cooperative deadline, polled once per candidate combination. On
  /// expiry the sweep degrades gracefully: remaining combinations are
  /// skipped (counted in ConsistencyResult::DeadlineSkipped) and the
  /// assumptions found so far are still emitted -- each one is valid on
  /// its own, so a partial sweep only under-constrains the environment.
  Deadline Dl;
};

/// Result of a consistency-checking run.
struct ConsistencyResult {
  /// G !(...) assumptions, one per unsatisfiable combination.
  std::vector<const Formula *> Assumptions;
  /// Number of SMT satisfiability queries issued (including queries
  /// answered by the service's cache). In minimal-core mode with
  /// workers the count can vary with scheduling -- opportunistic
  /// pruning races -- while the assumption list never does.
  size_t SolverQueries = 0;
  /// Candidate combinations not checked because the deadline expired
  /// mid-sweep (either skipped before their query or aborted inside
  /// it). Non-zero means Assumptions is a valid-but-incomplete prefix
  /// of the full sweep's output.
  size_t DeadlineSkipped = 0;
};

/// Runs consistency checking over the predicate literals of \p Spec.
/// With a null \p Service (or a single-threaded one) the checks run
/// serially on the calling thread; a service with workers fans them out
/// across its pool and serves repeats from its query cache.
ConsistencyResult checkConsistency(const std::vector<const Term *> &Predicates,
                                   Theory Th, Context &Ctx,
                                   const ConsistencyOptions &Options = {},
                                   SolverService *Service = nullptr);

} // namespace temos

#endif // TEMOS_CORE_CONSISTENCYCHECKER_H
