//===- tsl2ltl/Alphabet.h - TSL underapproximation alphabet ----*- C++ -*-===//
///
/// \file
/// The TSL-to-LTL underapproximation of [Finkbeiner et al., CAV 2019],
/// which temos relies on for reactive synthesis (Sec. 4.4): every
/// distinct predicate term becomes an *input* proposition (chosen by the
/// environment each step) and every update term [c <- tau] becomes an
/// *output* proposition (chosen by the system), with the side constraint
/// that exactly one update fires per cell per step.
///
/// Instead of encoding the exactly-one constraints as LTL formulas, the
/// alphabet is kept factored: an input letter is a bitset over predicate
/// terms, and an output letter is one update choice per cell. This makes
/// mutual exclusion structural and keeps the game alphabet small
/// (2^|P| x prod_c |updates(c)| instead of 2^(|P|+|U|)).
///
/// Example 4.3's "(y_to_y || x_to_y) && !(y_to_y && x_to_y)" encoding is
/// exactly what this class realizes.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_TSL2LTL_ALPHABET_H
#define TEMOS_TSL2LTL_ALPHABET_H

#include "logic/Specification.h"
#include "logic/Traversal.h"

#include <cstdint>
#include <string>
#include <vector>

namespace temos {

/// One step's combined environment/system choice.
struct Letter {
  /// Bit i = truth of predicate term i.
  uint32_t InputBits = 0;
  /// Encoded per-cell update choice (mixed-radix index).
  uint32_t OutputIndex = 0;

  bool operator==(const Letter &RHS) const {
    return InputBits == RHS.InputBits && OutputIndex == RHS.OutputIndex;
  }
};

/// The factored input/output alphabet of the underapproximated
/// specification.
class Alphabet {
public:
  /// A cell (or output signal) with its available update options.
  struct CellUpdates {
    std::string Cell;
    Sort S = Sort::Int;
    /// Update atoms [cell <- term]; index = choice id.
    std::vector<const Formula *> Options;
  };

  /// Builds the alphabet for \p Spec extended with \p Extra formulas
  /// (generated assumptions may mention update chains not in the
  /// original spec). Each cell additionally gets the implicit
  /// self-update [c <- c] unless already present. Cells with no updates
  /// anywhere still get the self-update (they are inert).
  static Alphabet build(const Specification &Spec, Context &Ctx,
                        const std::vector<const Formula *> &Extra = {});

  const std::vector<const Term *> &predicates() const { return Predicates; }
  const std::vector<CellUpdates> &cells() const { return Cells; }

  size_t inputLetterCount() const { return size_t(1) << Predicates.size(); }
  size_t outputLetterCount() const { return OutputCount; }

  /// Index of predicate term \p P; -1 if unknown.
  int predicateIndex(const Term *P) const;
  /// (cell index, option index) of update atom \p U; (-1,-1) if unknown.
  std::pair<int, int> updateIndex(const Formula *U) const;

  /// Decodes an output letter into one option index per cell.
  std::vector<unsigned> decodeOutput(uint32_t OutputIndex) const;
  /// Inverse of decodeOutput.
  uint32_t encodeOutput(const std::vector<unsigned> &Choices) const;

  /// Truth of an atom under \p L. The atom must be a Pred or Update node
  /// registered in this alphabet.
  bool holds(const Formula *Atom, const Letter &L) const;

  /// Human-readable rendering of a letter (for traces and tests).
  std::string letterStr(const Letter &L) const;

  /// A structural key identifying this alphabet: the predicate renderings
  /// in index order plus every cell's update options in option order.
  /// Two alphabets with equal keys assign identical meanings to input
  /// bits and output letters, so compiled guards and whole automata are
  /// interchangeable between them. Used by the tableau and NBA caches.
  std::string signatureKey() const;

private:
  std::vector<const Term *> Predicates;
  std::vector<CellUpdates> Cells;
  size_t OutputCount = 1;
};

} // namespace temos

#endif // TEMOS_TSL2LTL_ALPHABET_H
