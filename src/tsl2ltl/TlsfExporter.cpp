//===- tsl2ltl/TlsfExporter.cpp - TLSF export -------------------------------===//

#include "tsl2ltl/TlsfExporter.h"

#include <cctype>

using namespace temos;

namespace {

/// Mangles an arbitrary term string into a TLSF-safe identifier.
std::string mangle(const std::string &Text) {
  std::string Out;
  for (char C : Text) {
    if (std::isalnum(static_cast<unsigned char>(C)))
      Out += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    else if (C == '<')
      Out += "lt";
    else if (C == '>')
      Out += "gt";
    else if (C == '=')
      Out += "eq";
    else if (C == '+')
      Out += "add";
    else if (C == '-')
      Out += "sub";
    else if (!Out.empty() && Out.back() != '_')
      Out += '_';
  }
  while (!Out.empty() && Out.back() == '_')
    Out.pop_back();
  return Out.empty() ? "p" : Out;
}

/// Renders a formula in TLSF's LTL syntax, mapping atoms to the boolean
/// propositions of the encoding.
std::string render(const Formula *F, const Alphabet &AB) {
  switch (F->kind()) {
  case Formula::Kind::True:
    return "true";
  case Formula::Kind::False:
    return "false";
  case Formula::Kind::Pred: {
    int I = AB.predicateIndex(F->pred());
    assert(I >= 0 && "predicate not in alphabet");
    return tlsfInputName(AB, static_cast<size_t>(I));
  }
  case Formula::Kind::Update: {
    auto [Cell, Option] = AB.updateIndex(F);
    assert(Cell >= 0 && Option >= 0 && "update not in alphabet");
    return tlsfOutputName(AB, static_cast<size_t>(Cell),
                          static_cast<size_t>(Option));
  }
  case Formula::Kind::Not:
    return "!" + render(F->child(0), AB);
  case Formula::Kind::And: {
    std::string Out = "(";
    for (size_t I = 0; I < F->children().size(); ++I) {
      if (I)
        Out += " && ";
      Out += render(F->child(I), AB);
    }
    return Out + ")";
  }
  case Formula::Kind::Or: {
    std::string Out = "(";
    for (size_t I = 0; I < F->children().size(); ++I) {
      if (I)
        Out += " || ";
      Out += render(F->child(I), AB);
    }
    return Out + ")";
  }
  case Formula::Kind::Implies:
    return "(" + render(F->lhs(), AB) + " -> " + render(F->rhs(), AB) + ")";
  case Formula::Kind::Iff:
    return "(" + render(F->lhs(), AB) + " <-> " + render(F->rhs(), AB) + ")";
  case Formula::Kind::Next:
    return "(X " + render(F->child(0), AB) + ")";
  case Formula::Kind::Globally:
    return "(G " + render(F->child(0), AB) + ")";
  case Formula::Kind::Finally:
    return "(F " + render(F->child(0), AB) + ")";
  case Formula::Kind::Until:
    return "(" + render(F->lhs(), AB) + " U " + render(F->rhs(), AB) + ")";
  case Formula::Kind::WeakUntil:
    return "(" + render(F->lhs(), AB) + " W " + render(F->rhs(), AB) + ")";
  case Formula::Kind::Release:
    return "(" + render(F->lhs(), AB) + " R " + render(F->rhs(), AB) + ")";
  }
  return "true";
}

} // namespace

std::string temos::tlsfInputName(const Alphabet &AB, size_t Index) {
  return "p_" + mangle(AB.predicates()[Index]->str()) + "_" +
         std::to_string(Index);
}

std::string temos::tlsfOutputName(const Alphabet &AB, size_t Cell,
                                  size_t Option) {
  return "u_" + mangle(AB.cells()[Cell].Cell) + "_" + std::to_string(Option);
}

std::string temos::exportTlsf(const Specification &Spec, const Alphabet &AB,
                              Context &Ctx,
                              const std::vector<const Formula *> &Assumptions) {
  std::string Out;
  Out += "INFO {\n";
  Out += "  TITLE:       \"" + Spec.Name + "\"\n";
  Out += "  DESCRIPTION: \"TSL modulo " + std::string(theoryName(Spec.Th)) +
         " underapproximation (temoscpp)\"\n";
  Out += "  SEMANTICS:   Mealy\n";
  Out += "  TARGET:      Mealy\n";
  Out += "}\n\n";

  Out += "MAIN {\n";
  Out += "  INPUTS {\n";
  for (size_t I = 0; I < AB.predicates().size(); ++I)
    Out += "    " + tlsfInputName(AB, I) + ";\n";
  Out += "  }\n";
  Out += "  OUTPUTS {\n";
  for (size_t C = 0; C < AB.cells().size(); ++C)
    for (size_t O = 0; O < AB.cells()[C].Options.size(); ++O)
      Out += "    " + tlsfOutputName(AB, C, O) + ";\n";
  Out += "  }\n";

  Out += "  ASSUMPTIONS {\n";
  for (const Formula *A : Spec.Assumptions)
    Out += "    G " + render(A, AB) + ";\n";
  for (const Formula *A : Assumptions)
    Out += "    " + render(A, AB) + ";\n";
  Out += "  }\n";

  Out += "  GUARANTEES {\n";
  // The exactly-one-update-per-cell side constraints our factored
  // alphabet keeps structural (tsltools emits the same shape).
  for (size_t C = 0; C < AB.cells().size(); ++C) {
    const auto &Options = AB.cells()[C].Options;
    std::string AtLeastOne = "(";
    for (size_t O = 0; O < Options.size(); ++O) {
      if (O)
        AtLeastOne += " || ";
      AtLeastOne += tlsfOutputName(AB, C, O);
    }
    AtLeastOne += ")";
    Out += "    G " + AtLeastOne + ";\n";
    for (size_t O1 = 0; O1 < Options.size(); ++O1)
      for (size_t O2 = O1 + 1; O2 < Options.size(); ++O2)
        Out += "    G !(" + tlsfOutputName(AB, C, O1) + " && " +
               tlsfOutputName(AB, C, O2) + ");\n";
  }
  for (const Formula *G : Spec.AlwaysGuarantees)
    Out += "    G " + render(G, AB) + ";\n";
  for (const Formula *G : Spec.Guarantees)
    Out += "    " + render(G, AB) + ";\n";
  Out += "  }\n";
  Out += "}\n";
  (void)Ctx;
  return Out;
}
