//===- tsl2ltl/Alphabet.cpp - TSL underapproximation alphabet --------------===//

#include "tsl2ltl/Alphabet.h"

#include <algorithm>
#include <cassert>

using namespace temos;

Alphabet Alphabet::build(const Specification &Spec, Context &Ctx,
                         const std::vector<const Formula *> &Extra) {
  Alphabet AB;

  // Predicate terms from the spec and the generated assumptions.
  AB.Predicates = collectPredicateTerms(Spec);
  for (const Formula *F : Extra)
    for (const Term *P : collectPredicateTerms(F))
      if (std::find(AB.Predicates.begin(), AB.Predicates.end(), P) ==
          AB.Predicates.end())
        AB.Predicates.push_back(P);
  assert(AB.Predicates.size() <= 20 &&
         "too many predicate terms for an explicit alphabet");

  // Updatable signals: declared cells and outputs, in declaration order.
  auto AddCell = [&](const std::string &Name, Sort S) {
    CellUpdates CU;
    CU.Cell = Name;
    CU.S = S;
    AB.Cells.push_back(CU);
  };
  for (const CellDecl &D : Spec.Cells)
    AddCell(D.Name, D.S);
  for (const SignalDecl &D : Spec.Outputs)
    AddCell(D.Name, D.S);

  // Update options per cell.
  std::vector<const Formula *> Updates = collectUpdateTerms(Spec);
  for (const Formula *F : Extra)
    for (const Formula *U : collectUpdateTerms(F))
      if (std::find(Updates.begin(), Updates.end(), U) == Updates.end())
        Updates.push_back(U);
  for (const Formula *U : Updates) {
    for (CellUpdates &CU : AB.Cells)
      if (CU.Cell == U->cell()) {
        CU.Options.push_back(U);
        break;
      }
  }

  // Implicit self-updates: a cell keeps its value when nothing else is
  // chosen (TSL semantics). Outputs always need at least one option.
  for (CellUpdates &CU : AB.Cells) {
    const Formula *SelfUpdate =
        Ctx.Formulas.update(CU.Cell, Ctx.Terms.signal(CU.Cell, CU.S));
    if (std::find(CU.Options.begin(), CU.Options.end(), SelfUpdate) ==
        CU.Options.end())
      CU.Options.push_back(SelfUpdate);
  }

  AB.OutputCount = 1;
  for (const CellUpdates &CU : AB.Cells)
    AB.OutputCount *= CU.Options.size();
  assert(AB.OutputCount <= (1u << 16) &&
         "output alphabet too large for explicit games");
  return AB;
}

int Alphabet::predicateIndex(const Term *P) const {
  for (size_t I = 0; I < Predicates.size(); ++I)
    if (Predicates[I] == P)
      return static_cast<int>(I);
  return -1;
}

std::pair<int, int> Alphabet::updateIndex(const Formula *U) const {
  assert(U->is(Formula::Kind::Update) && "not an update atom");
  for (size_t C = 0; C < Cells.size(); ++C) {
    if (Cells[C].Cell != U->cell())
      continue;
    for (size_t O = 0; O < Cells[C].Options.size(); ++O)
      if (Cells[C].Options[O] == U)
        return {static_cast<int>(C), static_cast<int>(O)};
    return {static_cast<int>(C), -1};
  }
  return {-1, -1};
}

std::vector<unsigned> Alphabet::decodeOutput(uint32_t OutputIndex) const {
  std::vector<unsigned> Choices(Cells.size(), 0);
  for (size_t C = 0; C < Cells.size(); ++C) {
    unsigned Base = static_cast<unsigned>(Cells[C].Options.size());
    Choices[C] = OutputIndex % Base;
    OutputIndex /= Base;
  }
  return Choices;
}

uint32_t Alphabet::encodeOutput(const std::vector<unsigned> &Choices) const {
  assert(Choices.size() == Cells.size() && "choice vector size mismatch");
  uint32_t Index = 0;
  for (size_t C = Cells.size(); C-- > 0;) {
    unsigned Base = static_cast<unsigned>(Cells[C].Options.size());
    assert(Choices[C] < Base && "choice out of range");
    Index = Index * Base + Choices[C];
  }
  return Index;
}

bool Alphabet::holds(const Formula *Atom, const Letter &L) const {
  if (Atom->is(Formula::Kind::Pred)) {
    int I = predicateIndex(Atom->pred());
    assert(I >= 0 && "predicate term not in alphabet");
    return (L.InputBits >> I) & 1;
  }
  assert(Atom->is(Formula::Kind::Update) && "atom must be Pred or Update");
  auto [C, O] = updateIndex(Atom);
  assert(C >= 0 && "update cell not in alphabet");
  if (O < 0)
    return false; // Update term not among the options: never fires.
  std::vector<unsigned> Choices = decodeOutput(L.OutputIndex);
  return Choices[static_cast<size_t>(C)] == static_cast<unsigned>(O);
}

std::string Alphabet::signatureKey() const {
  std::string Key;
  for (const Term *P : Predicates) {
    Key += 'p';
    Key += P->str();
    Key += ';';
  }
  for (const CellUpdates &C : Cells) {
    Key += 'c';
    Key += C.Cell;
    Key += '{';
    for (const Formula *O : C.Options) {
      Key += O->str();
      Key += ',';
    }
    Key += '}';
  }
  return Key;
}

std::string Alphabet::letterStr(const Letter &L) const {
  std::string Out = "{";
  for (size_t I = 0; I < Predicates.size(); ++I) {
    if (!((L.InputBits >> I) & 1))
      continue;
    if (Out.size() > 1)
      Out += ", ";
    Out += Predicates[I]->str();
  }
  Out += " | ";
  std::vector<unsigned> Choices = decodeOutput(L.OutputIndex);
  for (size_t C = 0; C < Cells.size(); ++C) {
    if (C != 0)
      Out += ", ";
    Out += Cells[C].Options[Choices[C]]->str();
  }
  return Out + "}";
}
