//===- tsl2ltl/TlsfExporter.h - TLSF export ---------------------*- C++ -*-===//
///
/// \file
/// Exports the underapproximated LTL problem in the TLSF format
/// (Jacobs/Klein/Schirmer, "A high-level LTL synthesis format: TLSF
/// v1.1"), the interface the paper's toolchain uses between tsltools and
/// Strix (Sec. 5.1). Predicate terms become boolean inputs, update atoms
/// become boolean outputs, and the per-cell exactly-one constraints that
/// our factored alphabet keeps structural are spelled out as explicit
/// GUARANTEES, exactly as the tsltools encoding does.
///
/// This makes the repository interoperable with external LTL synthesis
/// tools: feed the exported TLSF to Strix/ltlsynt and compare against
/// the built-in bounded-synthesis engine.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_TSL2LTL_TLSFEXPORTER_H
#define TEMOS_TSL2LTL_TLSFEXPORTER_H

#include "logic/Specification.h"
#include "tsl2ltl/Alphabet.h"

#include <string>

namespace temos {

/// Exports spec + assumptions as a TLSF problem over \p AB.
/// \p Assumptions are the generated psi formulas (already G-wrapped).
std::string exportTlsf(const Specification &Spec, const Alphabet &AB,
                       Context &Ctx,
                       const std::vector<const Formula *> &Assumptions = {});

/// The boolean proposition name used for predicate term \p Index.
std::string tlsfInputName(const Alphabet &AB, size_t Index);

/// The boolean proposition name used for update option \p Option of cell
/// \p Cell (e.g. "u_x_0" for the first update of cell x).
std::string tlsfOutputName(const Alphabet &AB, size_t Cell, size_t Option);

} // namespace temos

#endif // TEMOS_TSL2LTL_TLSFEXPORTER_H
