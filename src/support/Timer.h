//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
///
/// \file
/// A tiny wall-clock stopwatch used by the synthesis pipeline to report
/// the per-phase timings that Table 1 and Figure 4 of the paper record.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_TIMER_H
#define TEMOS_SUPPORT_TIMER_H

#include <chrono>

namespace temos {

/// Wall-clock stopwatch. Construction starts the clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Resets the stopwatch to zero.
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace temos

#endif // TEMOS_SUPPORT_TIMER_H
