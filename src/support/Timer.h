//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
///
/// \file
/// A tiny wall-clock stopwatch used by the synthesis pipeline to report
/// the per-phase timings that Table 1 and Figure 4 of the paper record,
/// plus a process-CPU stopwatch: with the solver service fanning work
/// out across threads, wall and CPU time diverge, and the pipeline
/// reports both per phase (CPU/wall ~ utilized parallelism).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_TIMER_H
#define TEMOS_SUPPORT_TIMER_H

#include <chrono>
#include <ctime>

namespace temos {

/// Wall-clock stopwatch. Construction starts the clock.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Resets the stopwatch to zero.
  void restart() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Process-CPU stopwatch: seconds of CPU consumed by every thread of
/// the process since construction. Construction starts the clock.
class CpuTimer {
public:
  CpuTimer() : Start(now()) {}

  double seconds() const { return now() - Start; }
  void restart() { Start = now(); }

private:
  static double now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec Ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &Ts) == 0)
      return double(Ts.tv_sec) + double(Ts.tv_nsec) * 1e-9;
#endif
    return double(std::clock()) / CLOCKS_PER_SEC;
  }

  double Start;
};

} // namespace temos

#endif // TEMOS_SUPPORT_TIMER_H
