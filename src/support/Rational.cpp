//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"

#include <cstdlib>
#include <numeric>

using namespace temos;

namespace {

/// Narrows a 128-bit intermediate back to int64, asserting on overflow.
int64_t narrow(__int128 Value) {
  assert(Value <= INT64_MAX && Value >= INT64_MIN &&
         "rational arithmetic overflow");
  return static_cast<int64_t>(Value);
}

/// gcd for 128-bit intermediates; std::gcd does not accept __int128.
__int128 gcd128(__int128 A, __int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

} // namespace

Rational::Rational(int64_t Numerator, int64_t Denominator) {
  assert(Denominator != 0 && "rational with zero denominator");
  if (Denominator < 0) {
    Numerator = -Numerator;
    Denominator = -Denominator;
  }
  int64_t G = std::gcd(Numerator < 0 ? -Numerator : Numerator, Denominator);
  if (G == 0)
    G = 1;
  Num = Numerator / G;
  Den = Denominator / G;
}

int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  return -((-Num + Den - 1) / Den);
}

int64_t Rational::ceil() const { return -(-*this).floor(); }

Rational Rational::operator-() const {
  Rational R;
  R.Num = -Num;
  R.Den = Den;
  return R;
}

Rational Rational::operator+(const Rational &RHS) const {
  __int128 N = static_cast<__int128>(Num) * RHS.Den +
               static_cast<__int128>(RHS.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

Rational Rational::operator-(const Rational &RHS) const {
  return *this + (-RHS);
}

Rational Rational::operator*(const Rational &RHS) const {
  __int128 N = static_cast<__int128>(Num) * RHS.Num;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

Rational Rational::operator/(const Rational &RHS) const {
  assert(!RHS.isZero() && "division by zero rational");
  Rational Inverse;
  if (RHS.Num < 0) {
    Inverse.Num = -RHS.Den;
    Inverse.Den = -RHS.Num;
  } else {
    Inverse.Num = RHS.Den;
    Inverse.Den = RHS.Num;
  }
  return *this * Inverse;
}

bool Rational::operator<(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <
         static_cast<__int128>(RHS.Num) * Den;
}

bool Rational::operator<=(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <=
         static_cast<__int128>(RHS.Num) * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}

bool Rational::parse(const std::string &Text, Rational &Out) {
  if (Text.empty())
    return false;
  // "n/d" form.
  if (auto Slash = Text.find('/'); Slash != std::string::npos) {
    errno = 0;
    char *End = nullptr;
    long long N = std::strtoll(Text.c_str(), &End, 10);
    if (End != Text.c_str() + Slash || errno != 0)
      return false;
    long long D = std::strtoll(Text.c_str() + Slash + 1, &End, 10);
    if (*End != '\0' || errno != 0 || D == 0)
      return false;
    Out = Rational(N, D);
    return true;
  }
  // "x.y" decimal form.
  if (auto Dot = Text.find('.'); Dot != std::string::npos) {
    std::string Whole = Text.substr(0, Dot);
    std::string Frac = Text.substr(Dot + 1);
    if (Frac.empty() || Frac.size() > 15)
      return false;
    for (char C : Frac)
      if (C < '0' || C > '9')
        return false;
    errno = 0;
    char *End = nullptr;
    long long W = std::strtoll(Whole.c_str(), &End, 10);
    if (*End != '\0' || errno != 0)
      return false;
    int64_t Scale = 1;
    for (size_t I = 0; I < Frac.size(); ++I)
      Scale *= 10;
    long long F = std::strtoll(Frac.c_str(), &End, 10);
    if (*End != '\0' || errno != 0)
      return false;
    bool Negative = !Whole.empty() && Whole[0] == '-';
    Out = Rational(W) + Rational(Negative ? -F : F, Scale);
    return true;
  }
  // Plain integer.
  errno = 0;
  char *End = nullptr;
  long long N = std::strtoll(Text.c_str(), &End, 10);
  if (*End != '\0' || End == Text.c_str() || errno != 0)
    return false;
  Out = Rational(N);
  return true;
}

std::string DeltaRational::str() const {
  if (Delta.isZero())
    return Real.str();
  return Real.str() + (Delta.isNegative() ? "" : "+") + Delta.str() + "d";
}
