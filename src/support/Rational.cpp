//===- support/Rational.cpp - Exact rational arithmetic ------------------===//

#include "support/Rational.h"

#include <cstdlib>
#include <numeric>
#include <stdexcept>

using namespace temos;

namespace {

/// Narrows a 128-bit intermediate back to int64. Always checked: a
/// silent wrap here would corrupt simplex pivots and bound comparisons,
/// so overflow throws instead of being an NDEBUG-only assert.
int64_t narrow(__int128 Value) {
  if (Value > INT64_MAX || Value < INT64_MIN)
    throw RationalOverflow("rational arithmetic overflow");
  return static_cast<int64_t>(Value);
}

/// |x| as uint64, safe for INT64_MIN (whose int64 negation is UB).
uint64_t uabs64(int64_t X) {
  return X < 0 ? 0u - static_cast<uint64_t>(X) : static_cast<uint64_t>(X);
}

/// Checked int64 negation; -INT64_MIN does not fit.
int64_t negate64(int64_t X) {
  if (X == INT64_MIN)
    throw RationalOverflow("rational arithmetic overflow");
  return -X;
}

/// gcd for 128-bit intermediates; std::gcd does not accept __int128.
__int128 gcd128(__int128 A, __int128 B) {
  if (A < 0)
    A = -A;
  if (B < 0)
    B = -B;
  while (B != 0) {
    __int128 T = A % B;
    A = B;
    B = T;
  }
  return A;
}

} // namespace

Rational::Rational(int64_t Numerator, int64_t Denominator) {
  if (Denominator == 0)
    throw RationalOverflow("rational with zero denominator");
  // Canonicalize the sign into the numerator via uint64 magnitudes so
  // INT64_MIN inputs are caught by the narrow instead of hitting UB.
  uint64_t N = uabs64(Numerator);
  uint64_t D = uabs64(Denominator);
  bool Negative = (Numerator < 0) != (Denominator < 0);
  uint64_t G = std::gcd(N, D);
  if (G == 0)
    G = 1;
  N /= G;
  D /= G;
  if (D > static_cast<uint64_t>(INT64_MAX) ||
      N > static_cast<uint64_t>(INT64_MAX) + (Negative ? 1u : 0u))
    throw RationalOverflow("rational arithmetic overflow");
  Num = Negative ? static_cast<int64_t>(0u - N) : static_cast<int64_t>(N);
  Den = static_cast<int64_t>(D);
}

int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  // -((-Num + Den - 1) / Den) in 128-bit: -Num overflows int64 for
  // Num == INT64_MIN, and the sum can exceed int64 even when the
  // quotient fits.
  __int128 N = -static_cast<__int128>(Num);
  __int128 D = Den;
  return narrow(-((N + D - 1) / D));
}

int64_t Rational::ceil() const {
  if (Num <= 0) {
    // Truncation rounds toward zero, which is ceil for non-positives.
    return Num / Den;
  }
  __int128 N = Num;
  __int128 D = Den;
  return narrow((N + D - 1) / D);
}

Rational Rational::operator-() const {
  Rational R;
  R.Num = negate64(Num);
  R.Den = Den;
  return R;
}

Rational Rational::operator+(const Rational &RHS) const {
  __int128 N = static_cast<__int128>(Num) * RHS.Den +
               static_cast<__int128>(RHS.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

Rational Rational::operator-(const Rational &RHS) const {
  __int128 N = static_cast<__int128>(Num) * RHS.Den -
               static_cast<__int128>(RHS.Num) * Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

Rational Rational::operator*(const Rational &RHS) const {
  __int128 N = static_cast<__int128>(Num) * RHS.Num;
  __int128 D = static_cast<__int128>(Den) * RHS.Den;
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

Rational Rational::operator/(const Rational &RHS) const {
  if (RHS.isZero())
    throw RationalOverflow("division by zero rational");
  // a/b / c/d = (a*d) / (b*c), canonicalized by the checked ctor path.
  __int128 N = static_cast<__int128>(Num) * RHS.Den;
  __int128 D = static_cast<__int128>(Den) * RHS.Num;
  if (D < 0) {
    N = -N;
    D = -D;
  }
  __int128 G = gcd128(N, D);
  if (G == 0)
    G = 1;
  return Rational(narrow(N / G), narrow(D / G));
}

bool Rational::operator<(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <
         static_cast<__int128>(RHS.Num) * Den;
}

bool Rational::operator<=(const Rational &RHS) const {
  return static_cast<__int128>(Num) * RHS.Den <=
         static_cast<__int128>(RHS.Num) * Den;
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}

bool Rational::parse(const std::string &Text, Rational &Out) {
  try {
    if (Text.empty())
      return false;
    // "n/d" form.
    if (auto Slash = Text.find('/'); Slash != std::string::npos) {
      errno = 0;
      char *End = nullptr;
      long long N = std::strtoll(Text.c_str(), &End, 10);
      if (End != Text.c_str() + Slash || errno != 0)
        return false;
      long long D = std::strtoll(Text.c_str() + Slash + 1, &End, 10);
      if (*End != '\0' || errno != 0 || D == 0)
        return false;
      Out = Rational(N, D);
      return true;
    }
    // "x.y" decimal form.
    if (auto Dot = Text.find('.'); Dot != std::string::npos) {
      std::string Whole = Text.substr(0, Dot);
      std::string Frac = Text.substr(Dot + 1);
      if (Frac.empty() || Frac.size() > 15)
        return false;
      for (char C : Frac)
        if (C < '0' || C > '9')
          return false;
      errno = 0;
      char *End = nullptr;
      long long W = std::strtoll(Whole.c_str(), &End, 10);
      if (*End != '\0' || errno != 0)
        return false;
      int64_t Scale = 1;
      for (size_t I = 0; I < Frac.size(); ++I)
        Scale *= 10;
      long long F = std::strtoll(Frac.c_str(), &End, 10);
      if (*End != '\0' || errno != 0)
        return false;
      bool Negative = !Whole.empty() && Whole[0] == '-';
      Out = Rational(W) + Rational(Negative ? -F : F, Scale);
      return true;
    }
    // Plain integer.
    errno = 0;
    char *End = nullptr;
    long long N = std::strtoll(Text.c_str(), &End, 10);
    if (*End != '\0' || End == Text.c_str() || errno != 0)
      return false;
    Out = Rational(N);
    return true;
  } catch (const RationalOverflow &) {
    // Values that canonicalize outside int64 range are malformed input,
    // not a crash.
    return false;
  }
}

std::string DeltaRational::str() const {
  if (Delta.isZero())
    return Real.str();
  return Real.str() + (Delta.isNegative() ? "" : "+") + Delta.str() + "d";
}
