//===- support/SolverPool.h - Fixed-size worker pool -----------*- C++ -*-===//
///
/// \file
/// A fixed-size thread pool with a FIFO work queue, sized for the solver
/// service: the pipeline's embarrassingly parallel phases (the Sec. 4.2
/// powerset consistency check and per-obligation SyGuS enumeration) fan
/// their independent SMT/SyGuS tasks out across the workers.
///
/// A pool constructed with one thread spawns no workers at all: submit()
/// runs the task inline on the caller's thread. That makes the
/// single-threaded configuration byte-for-byte identical to the code
/// before the pool existed -- no scheduling, no locks on the hot path --
/// which is what the deterministic-merge guarantee of the pipeline is
/// anchored on.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_SOLVERPOOL_H
#define TEMOS_SUPPORT_SOLVERPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace temos {

/// Fixed-size thread pool with a work queue.
class SolverPool {
public:
  /// Creates a pool of \p NumThreads workers. \p NumThreads <= 1 creates
  /// an inline pool: no threads, submit() executes immediately.
  explicit SolverPool(unsigned NumThreads);
  ~SolverPool();

  SolverPool(const SolverPool &) = delete;
  SolverPool &operator=(const SolverPool &) = delete;

  /// Number of worker threads (0 for an inline pool).
  size_t workerCount() const { return Workers.size(); }
  /// Degree of parallelism: max(1, workerCount()).
  size_t parallelism() const { return Workers.empty() ? 1 : Workers.size(); }

  /// Enqueues \p Task. Inline pools run it before returning.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished. Tasks may submit
  /// further tasks; wait() covers those too.
  ///
  /// Exception safety: an exception escaping a pooled task never
  /// reaches the worker thread's top frame (which would be
  /// std::terminate) -- it is captured as a std::exception_ptr, tagged
  /// with the task's submission ticket, and the remaining tasks still
  /// run to completion. wait() then rethrows the captured exception
  /// with the *smallest ticket* -- i.e. first in merge order -- so the
  /// surfaced error is deterministic across pool widths and matches
  /// what an inline pool (which executes tasks in submission order and
  /// propagates the first throw naturally) would have raised.
  void wait();

  /// Runs Body(0) .. Body(N-1), distributing indices across workers in
  /// submission order, and waits for completion. Chunks adjacent indices
  /// together to amortize queue overhead on fine-grained work. Rethrows
  /// the smallest-index exception via wait().
  void forEach(size_t N, const std::function<void(size_t)> &Body);

private:
  void workerLoop();
  void rethrowFirstCaptured(std::unique_lock<std::mutex> &Lock);

  std::vector<std::thread> Workers;
  std::queue<std::pair<uint64_t, std::function<void()>>> Queue;
  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0;
  bool Stopping = false;
  /// Submission ticket of the next enqueued task; pairs each task with
  /// its merge-order position for deterministic rethrow.
  uint64_t NextTicket = 0;
  /// Exceptions captured from pooled tasks, tagged with their ticket.
  std::vector<std::pair<uint64_t, std::exception_ptr>> Captured;
};

} // namespace temos

#endif // TEMOS_SUPPORT_SOLVERPOOL_H
