//===- support/Rational.h - Exact rational arithmetic ----------*- C++ -*-===//
//
// Part of temoscpp, a reproduction of "Can Reactive Synthesis and
// Syntax-Guided Synthesis Be Friends?" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational numbers over 64-bit numerator/denominator with 128-bit
/// intermediates, plus DeltaRational (a + b*delta) used by the simplex
/// solver to represent strict inequality bounds exactly.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_RATIONAL_H
#define TEMOS_SUPPORT_RATIONAL_H

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace temos {

/// Thrown when rational arithmetic leaves the int64 numerator or
/// denominator range (or divides by zero). Callers that must not throw
/// — notably the SMT entry points — catch this and degrade to an
/// Unknown verdict, which is always sound.
class RationalOverflow : public std::overflow_error {
public:
  using std::overflow_error::overflow_error;
};

/// An exact rational number. Always kept in canonical form: the
/// denominator is positive and gcd(|num|, den) == 1. Arithmetic checks
/// every 128→64-bit narrowing unconditionally (in release builds too)
/// and throws RationalOverflow instead of silently wrapping.
class Rational {
public:
  Rational() : Num(0), Den(1) {}
  Rational(int64_t Value) : Num(Value), Den(1) {}
  Rational(int64_t Numerator, int64_t Denominator);

  static Rational zero() { return Rational(0); }
  static Rational one() { return Rational(1); }

  int64_t numerator() const { return Num; }
  int64_t denominator() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isPositive() const { return Num > 0; }
  bool isInteger() const { return Den == 1; }

  /// Largest integer <= this value.
  int64_t floor() const;
  /// Smallest integer >= this value.
  int64_t ceil() const;

  Rational operator-() const;
  Rational operator+(const Rational &RHS) const;
  Rational operator-(const Rational &RHS) const;
  Rational operator*(const Rational &RHS) const;
  /// Division; throws RationalOverflow when RHS == 0.
  Rational operator/(const Rational &RHS) const;

  Rational &operator+=(const Rational &RHS) { return *this = *this + RHS; }
  Rational &operator-=(const Rational &RHS) { return *this = *this - RHS; }
  Rational &operator*=(const Rational &RHS) { return *this = *this * RHS; }
  Rational &operator/=(const Rational &RHS) { return *this = *this / RHS; }

  bool operator==(const Rational &RHS) const {
    return Num == RHS.Num && Den == RHS.Den;
  }
  bool operator!=(const Rational &RHS) const { return !(*this == RHS); }
  bool operator<(const Rational &RHS) const;
  bool operator<=(const Rational &RHS) const;
  bool operator>(const Rational &RHS) const { return RHS < *this; }
  bool operator>=(const Rational &RHS) const { return RHS <= *this; }

  /// Renders "n" for integers and "n/d" otherwise.
  std::string str() const;

  /// Parses decimal integer or "n/d" or "x.y" decimal notation. Returns
  /// false on malformed input.
  static bool parse(const std::string &Text, Rational &Out);

  size_t hash() const {
    return std::hash<int64_t>()(Num) * 31 ^ std::hash<int64_t>()(Den);
  }

private:
  int64_t Num;
  int64_t Den;
};

/// A value of the form A + B*delta where delta is a positive
/// infinitesimal. Used to encode strict bounds in the simplex solver:
/// x < c becomes x <= c - delta.
class DeltaRational {
public:
  DeltaRational() = default;
  DeltaRational(Rational Real) : Real(Real), Delta(0) {}
  DeltaRational(Rational Real, Rational Delta) : Real(Real), Delta(Delta) {}

  const Rational &real() const { return Real; }
  const Rational &delta() const { return Delta; }

  DeltaRational operator+(const DeltaRational &RHS) const {
    return DeltaRational(Real + RHS.Real, Delta + RHS.Delta);
  }
  DeltaRational operator-(const DeltaRational &RHS) const {
    return DeltaRational(Real - RHS.Real, Delta - RHS.Delta);
  }
  DeltaRational operator*(const Rational &Scale) const {
    return DeltaRational(Real * Scale, Delta * Scale);
  }

  bool operator==(const DeltaRational &RHS) const {
    return Real == RHS.Real && Delta == RHS.Delta;
  }
  bool operator!=(const DeltaRational &RHS) const { return !(*this == RHS); }
  bool operator<(const DeltaRational &RHS) const {
    if (Real != RHS.Real)
      return Real < RHS.Real;
    return Delta < RHS.Delta;
  }
  bool operator<=(const DeltaRational &RHS) const {
    return *this == RHS || *this < RHS;
  }
  bool operator>(const DeltaRational &RHS) const { return RHS < *this; }
  bool operator>=(const DeltaRational &RHS) const { return RHS <= *this; }

  std::string str() const;

private:
  Rational Real;
  Rational Delta;
};

} // namespace temos

#endif // TEMOS_SUPPORT_RATIONAL_H
