//===- support/Rng.h - Deterministic PRNG for tests and fuzzing *- C++ -*-===//
///
/// \file
/// A small deterministic xorshift PRNG shared by the property tests and
/// the differential fuzzing harness (tools/fuzz). Determinism is the
/// whole point: every failure reproduces from the printed seed, so the
/// generator must be stable across platforms and build types -- no
/// std::random_device, no unseeded state.
///
/// resolveSeed() implements the TEMOS_SEED environment knob: test
/// binaries combine their built-in per-suite seeds with the override so
/// a failure printed as "TEMOS_SEED=12345" reruns identically via
/// `TEMOS_SEED=12345 ctest -R ...`.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_RNG_H
#define TEMOS_SUPPORT_RNG_H

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace temos {

/// Deterministic xorshift64 PRNG. Identical sequences for identical
/// seeds, on every platform.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}

  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }

  /// Uniform-ish value in [Lo, Hi] (inclusive). Requires Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }

  /// True with probability Percent/100.
  bool chance(int Percent) { return range(0, 99) < Percent; }

  /// A uniformly chosen element of \p Options (must be non-empty).
  template <typename T> const T &pick(const std::vector<T> &Options) {
    return Options[static_cast<size_t>(range(
        0, static_cast<int64_t>(Options.size()) - 1))];
  }

private:
  uint64_t State;
};

/// The effective seed for a randomized test or fuzz run: the TEMOS_SEED
/// environment variable when set (and parseable), otherwise \p Fallback.
inline uint64_t resolveSeed(uint64_t Fallback) {
  if (const char *Env = std::getenv("TEMOS_SEED")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Env, &End, 10);
    if (End != Env && *End == '\0')
      return static_cast<uint64_t>(V);
  }
  return Fallback;
}

/// Mixes a per-suite salt into a base seed so different test suites
/// driven by one TEMOS_SEED value still explore different streams.
inline uint64_t mixSeed(uint64_t Base, uint64_t Salt) {
  uint64_t X = Base + 0x9e3779b97f4a7c15ull * (Salt + 1);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  return X;
}

} // namespace temos

#endif // TEMOS_SUPPORT_RNG_H
