//===- support/SolverPool.cpp - Fixed-size worker pool ---------------------===//

#include "support/SolverPool.h"

#include <algorithm>

using namespace temos;

SolverPool::SolverPool(unsigned NumThreads) {
  if (NumThreads <= 1)
    return; // Inline pool.
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SolverPool::~SolverPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void SolverPool::workerLoop() {
  for (;;) {
    uint64_t Ticket = 0;
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Ticket = Queue.front().first;
      Task = std::move(Queue.front().second);
      Queue.pop();
    }
    // An exception escaping Task() here would hit the thread's top
    // frame and std::terminate the whole process. Capture it instead;
    // wait() rethrows the smallest-ticket one deterministically.
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (Error)
        Captured.emplace_back(Ticket, Error);
      if (--InFlight == 0 && Queue.empty())
        AllDone.notify_all();
    }
  }
}

void SolverPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    // Inline pool: tasks run in submission order, so the first throw
    // *is* the smallest-ticket throw; let it propagate naturally.
    ++NextTicket;
    Task();
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.emplace(NextTicket++, std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void SolverPool::rethrowFirstCaptured(std::unique_lock<std::mutex> &Lock) {
  if (Captured.empty())
    return;
  auto First = std::min_element(
      Captured.begin(), Captured.end(),
      [](const auto &A, const auto &B) { return A.first < B.first; });
  std::exception_ptr Error = First->second;
  Captured.clear(); // Leave the pool reusable after the throw.
  Lock.unlock();
  std::rethrow_exception(Error);
}

void SolverPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0 && Queue.empty(); });
  rethrowFirstCaptured(Lock);
}

void SolverPool::forEach(size_t N, const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  // ~4 chunks per worker balances queue overhead against load imbalance
  // from uneven task costs (subsumption-pruned masks are near-free).
  size_t ChunkCount = std::min(N, Workers.size() * 4);
  size_t ChunkSize = (N + ChunkCount - 1) / ChunkCount;
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    size_t End = std::min(N, Begin + ChunkSize);
    submit([&Body, Begin, End] {
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }
  wait();
}
