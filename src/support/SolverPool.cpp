//===- support/SolverPool.cpp - Fixed-size worker pool ---------------------===//

#include "support/SolverPool.h"

#include <algorithm>

using namespace temos;

SolverPool::SolverPool(unsigned NumThreads) {
  if (NumThreads <= 1)
    return; // Inline pool.
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SolverPool::~SolverPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void SolverPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--InFlight == 0 && Queue.empty())
        AllDone.notify_all();
    }
  }
}

void SolverPool::submit(std::function<void()> Task) {
  if (Workers.empty()) {
    Task();
    return;
  }
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Queue.push(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void SolverPool::wait() {
  if (Workers.empty())
    return;
  std::unique_lock<std::mutex> Lock(Mutex);
  AllDone.wait(Lock, [this] { return InFlight == 0 && Queue.empty(); });
}

void SolverPool::forEach(size_t N, const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    return;
  }
  // ~4 chunks per worker balances queue overhead against load imbalance
  // from uneven task costs (subsumption-pruned masks are near-free).
  size_t ChunkCount = std::min(N, Workers.size() * 4);
  size_t ChunkSize = (N + ChunkCount - 1) / ChunkCount;
  for (size_t Begin = 0; Begin < N; Begin += ChunkSize) {
    size_t End = std::min(N, Begin + ChunkSize);
    submit([&Body, Begin, End] {
      for (size_t I = Begin; I < End; ++I)
        Body(I);
    });
  }
  wait();
}
