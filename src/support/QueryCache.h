//===- support/QueryCache.h - Memoized solver query results ----*- C++ -*-===//
///
/// \file
/// A thread-safe memo table for solver verdicts, shared by every worker
/// of the solver service. Keys are *canonical*: the same set of literals
/// in any order (and under any duplication) maps to the same key, so a
/// consistency-check subset and a SyGuS side-condition that happen to
/// ask the same theory question share one SMT run.
///
/// The key scheme is structural, not pointer-based: literals are
/// rendered to their concrete syntax and sorted. That makes keys stable
/// across Context instances -- a cache can outlive a pipeline run and
/// serve a repeated run from a fresh Context, which is where the
/// repeated-run cache hits reported in PipelineStats come from.
///
/// The table is capacity-bounded with least-recently-used eviction so a
/// long-lived service cannot grow without limit; evicting an entry only
/// costs a future recomputation, never a verdict change.
///
/// Verdicts are stored as int so this lowest-layer component does not
/// depend on the theory layer's SatResult; the solver service casts.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_QUERYCACHE_H
#define TEMOS_SUPPORT_QUERYCACHE_H

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace temos {

/// Thread-safe string-keyed verdict memo with hit/miss/eviction
/// accounting and an LRU size cap.
class QueryCache {
public:
  /// Default entry cap. Far above any bundled workload's working set
  /// (the whole 16-benchmark suite interns a few hundred keys), so
  /// default-configured runs never evict; it exists to bound a
  /// long-lived service under open-ended traffic.
  static constexpr size_t DefaultCapacity = 1 << 16;

  /// \p Capacity == 0 means unbounded (no eviction).
  explicit QueryCache(size_t Capacity = DefaultCapacity)
      : Capacity(Capacity) {}

  /// Canonical key for a literal-set query: \p TheoryTag (queries in
  /// different theories never collide) plus the literal renderings,
  /// sorted and deduplicated. A literal is (rendering, polarity);
  /// "p" asserted positively and "p" asserted negatively produce
  /// distinct keys.
  static std::string
  canonicalKey(const std::string &TheoryTag,
               std::vector<std::pair<std::string, bool>> Literals);

  /// Returns the stored verdict, or nullopt on a miss. Counts a hit or
  /// a miss; a hit marks the entry most recently used.
  std::optional<int> lookup(const std::string &Key);

  /// Stores \p Verdict under \p Key, evicting the least recently used
  /// entry if the cache is full. Last writer wins; concurrent writers
  /// for the same key necessarily computed the same verdict, so the
  /// race is benign.
  void insert(const std::string &Key, int Verdict);

  size_t hits() const;
  size_t misses() const;
  /// Number of entries dropped by the LRU cap since construction/clear.
  size_t evictions() const;
  size_t size() const;
  size_t capacity() const { return Capacity; }
  void clear();

private:
  struct Entry {
    std::string Key;
    int Verdict;
  };

  mutable std::mutex Mutex;
  /// Recency list, most recently used at the front. Entries own the key
  /// storage; the index map points into the list.
  std::list<Entry> Order;
  std::unordered_map<std::string, std::list<Entry>::iterator> Index;
  const size_t Capacity;
  size_t Hits = 0;
  size_t Misses = 0;
  size_t Evictions = 0;
};

} // namespace temos

#endif // TEMOS_SUPPORT_QUERYCACHE_H
