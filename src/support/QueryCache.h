//===- support/QueryCache.h - Memoized solver query results ----*- C++ -*-===//
///
/// \file
/// A thread-safe memo table for solver verdicts, shared by every worker
/// of the solver service. Keys are *canonical*: the same set of literals
/// in any order (and under any duplication) maps to the same key, so a
/// consistency-check subset and a SyGuS side-condition that happen to
/// ask the same theory question share one SMT run.
///
/// The key scheme is structural, not pointer-based: literals are
/// rendered to their concrete syntax and sorted. That makes keys stable
/// across Context instances -- a cache can outlive a pipeline run and
/// serve a repeated run from a fresh Context, which is where the
/// repeated-run cache hits reported in PipelineStats come from.
///
/// Verdicts are stored as int so this lowest-layer component does not
/// depend on the theory layer's SatResult; the solver service casts.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_QUERYCACHE_H
#define TEMOS_SUPPORT_QUERYCACHE_H

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace temos {

/// Thread-safe string-keyed verdict memo with hit/miss accounting.
class QueryCache {
public:
  /// Canonical key for a literal-set query: \p TheoryTag (queries in
  /// different theories never collide) plus the literal renderings,
  /// sorted and deduplicated. A literal is (rendering, polarity);
  /// "p" asserted positively and "p" asserted negatively produce
  /// distinct keys.
  static std::string
  canonicalKey(const std::string &TheoryTag,
               std::vector<std::pair<std::string, bool>> Literals);

  /// Returns the stored verdict, or nullopt on a miss. Counts a hit or
  /// a miss.
  std::optional<int> lookup(const std::string &Key);

  /// Stores \p Verdict under \p Key. Last writer wins; concurrent
  /// writers for the same key necessarily computed the same verdict, so
  /// the race is benign.
  void insert(const std::string &Key, int Verdict);

  size_t hits() const;
  size_t misses() const;
  size_t size() const;
  void clear();

private:
  mutable std::mutex Mutex;
  std::unordered_map<std::string, int> Entries;
  size_t Hits = 0;
  size_t Misses = 0;
};

} // namespace temos

#endif // TEMOS_SUPPORT_QUERYCACHE_H
