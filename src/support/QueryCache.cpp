//===- support/QueryCache.cpp - Memoized solver query results --------------===//

#include "support/QueryCache.h"

#include <algorithm>

using namespace temos;

std::string
QueryCache::canonicalKey(const std::string &TheoryTag,
                         std::vector<std::pair<std::string, bool>> Literals) {
  // Polarity is folded into the rendering before sorting so the sort
  // order (and therefore the key) only depends on the literal *set*.
  std::vector<std::string> Rendered;
  Rendered.reserve(Literals.size());
  for (auto &[Text, Positive] : Literals)
    Rendered.push_back((Positive ? "+" : "-") + std::move(Text));
  std::sort(Rendered.begin(), Rendered.end());
  Rendered.erase(std::unique(Rendered.begin(), Rendered.end()),
                 Rendered.end());

  std::string Key = TheoryTag;
  for (const std::string &R : Rendered) {
    // Length-prefix each literal: {"ab","c"} and {"a","bc"} must not
    // concatenate to the same key.
    Key += '|';
    Key += std::to_string(R.size());
    Key += ':';
    Key += R;
  }
  return Key;
}

std::optional<int> QueryCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Misses;
    return std::nullopt;
  }
  ++Hits;
  Order.splice(Order.begin(), Order, It->second);
  return It->second->Verdict;
}

void QueryCache::insert(const std::string &Key, int Verdict) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->Verdict = Verdict;
    Order.splice(Order.begin(), Order, It->second);
    return;
  }
  if (Capacity != 0 && Order.size() >= Capacity) {
    Index.erase(Order.back().Key);
    Order.pop_back();
    ++Evictions;
  }
  Order.push_front(Entry{Key, Verdict});
  Index.emplace(Order.front().Key, Order.begin());
}

size_t QueryCache::hits() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Hits;
}

size_t QueryCache::misses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Misses;
}

size_t QueryCache::evictions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Evictions;
}

size_t QueryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Order.size();
}

void QueryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Order.clear();
  Index.clear();
  Hits = Misses = Evictions = 0;
}
