//===- support/Deadline.h - Deadlines + failure taxonomy -------*- C++ -*-===//
///
/// \file
/// A shared cancellation token with an optional monotonic deadline, and
/// the pipeline-wide failure taxonomy. The paper's tool inherits
/// per-query wall-clock timeouts from the external solvers it shells out
/// to (CVC4, Strix); our from-scratch substrates have no such safety
/// net, so every long-running loop (simplex pivoting, branch-and-bound,
/// SyGuS enumeration, tableau expansion, game exploration) polls a
/// Deadline cooperatively and unwinds with DeadlineExpired when the
/// budget is gone. A default-constructed Deadline never expires and its
/// poll is a single null-pointer test, so the machinery is free -- and
/// observationally invisible -- when no budget is configured.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_DEADLINE_H
#define TEMOS_SUPPORT_DEADLINE_H

#include <atomic>
#include <chrono>
#include <exception>
#include <limits>
#include <memory>
#include <string>

namespace temos {

/// Thrown by Deadline::check() when the budget is exhausted. Pipeline
/// phases catch it at the same level they catch RationalOverflow and
/// degrade to an Unknown/partial result instead of aborting.
class DeadlineExpired : public std::exception {
public:
  const char *what() const noexcept override {
    return "temos: deadline expired";
  }
};

/// Shared cancellation token + monotonic wall-clock deadline.
///
/// Copies share one underlying state: cancelling any copy (or letting
/// the clock pass the due time) trips every copy, so a single token can
/// be handed to solver clones across pool workers. Default-constructed
/// tokens carry no state at all and never expire.
class Deadline {
public:
  /// A deadline that never expires (the no-budget fast path).
  Deadline() = default;

  /// A deadline \p Seconds from now on the monotonic clock.
  /// Non-positive budgets produce an already-expired deadline.
  static Deadline after(double Seconds) {
    Deadline D;
    D.S = std::make_shared<State>();
    D.S->Due = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double>(Seconds));
    return D;
  }

  /// The earlier of two deadlines; an armed deadline always beats an
  /// unarmed one. Used to combine the global budget with a phase budget.
  static Deadline earlier(const Deadline &A, const Deadline &B) {
    if (!A.S)
      return B;
    if (!B.S)
      return A;
    return A.S->Due <= B.S->Due ? A : B;
  }

  /// Whether any budget is attached at all.
  bool armed() const { return S != nullptr; }

  /// Polls the token. Cheap: a null test when unarmed, one relaxed
  /// atomic load when already tripped, one clock read otherwise.
  bool expired() const {
    if (!S)
      return false;
    if (S->Cancelled.load(std::memory_order_relaxed))
      return true;
    if (Clock::now() < S->Due)
      return false;
    S->Cancelled.store(true, std::memory_order_relaxed);
    return true;
  }

  /// Polls and throws DeadlineExpired when the budget is gone.
  void check() const {
    if (expired())
      throw DeadlineExpired();
  }

  /// Trips the token immediately (cooperative cancellation without a
  /// clock). No-op on an unarmed deadline.
  void cancel() const {
    if (S)
      S->Cancelled.store(true, std::memory_order_relaxed);
  }

  /// Seconds until expiry (<= 0 when expired; +inf when unarmed).
  double remainingSeconds() const {
    if (!S)
      return std::numeric_limits<double>::infinity();
    if (S->Cancelled.load(std::memory_order_relaxed))
      return 0.0;
    return std::chrono::duration<double>(S->Due - Clock::now()).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  struct State {
    Clock::time_point Due;
    std::atomic<bool> Cancelled{false};
  };
  std::shared_ptr<State> S;
};

/// What went wrong, structurally. Carried in PipelineStats, surfaced in
/// --emit=summary, the temos-bench-v1 JSON record, and the CLI exit
/// code.
enum class FailureKind {
  Timeout,         ///< a time budget expired (Deadline tripped)
  StateBudget,     ///< the game-state / tableau budget was exhausted
  Overflow,        ///< RationalOverflow: 128->64-bit narrowing lost bits
  WorkerException, ///< an exception escaped a pooled task
  Internal,        ///< anything else (a bug; never expected)
};

inline const char *failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::Timeout:
    return "timeout";
  case FailureKind::StateBudget:
    return "state-budget";
  case FailureKind::Overflow:
    return "overflow";
  case FailureKind::WorkerException:
    return "worker-exception";
  case FailureKind::Internal:
    return "internal";
  }
  return "internal";
}

/// One recorded failure: which phase degraded, why, and any detail
/// (e.g. how many consistency obligations went unchecked).
struct FailureRecord {
  FailureKind Kind = FailureKind::Internal;
  std::string Phase;  ///< "consistency", "sygus", "reactive", "pipeline"
  std::string Detail; ///< free-form, human-readable
};

} // namespace temos

#endif // TEMOS_SUPPORT_DEADLINE_H
