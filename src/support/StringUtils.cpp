//===- support/StringUtils.cpp - Small string helpers --------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace temos;

std::string temos::trim(const std::string &Text) {
  size_t Begin = 0;
  size_t End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::vector<std::string> temos::split(const std::string &Text,
                                      char Separator) {
  std::vector<std::string> Pieces;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Separator) {
      Pieces.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Pieces;
}

std::string temos::join(const std::vector<std::string> &Pieces,
                        const std::string &Separator) {
  std::string Result;
  for (size_t I = 0; I < Pieces.size(); ++I) {
    if (I != 0)
      Result += Separator;
    Result += Pieces[I];
  }
  return Result;
}

bool temos::isIdentifier(const std::string &Text) {
  if (Text.empty())
    return false;
  if (!std::isalpha(static_cast<unsigned char>(Text[0])) && Text[0] != '_')
    return false;
  for (char C : Text)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '\'')
      return false;
  return true;
}

std::string temos::replaceAll(std::string Text, const std::string &From,
                              const std::string &To) {
  if (From.empty())
    return Text;
  size_t Pos = 0;
  while ((Pos = Text.find(From, Pos)) != std::string::npos) {
    Text.replace(Pos, From.size(), To);
    Pos += To.size();
  }
  return Text;
}
