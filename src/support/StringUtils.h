//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
///
/// \file
/// Minimal string helpers used across the project (trim/split/join and
/// identifier checks for the TSL parser and code emitters).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_SUPPORT_STRINGUTILS_H
#define TEMOS_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace temos {

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// Splits \p Text on \p Separator; empty pieces are kept.
std::vector<std::string> split(const std::string &Text, char Separator);

/// Joins \p Pieces with \p Separator between elements.
std::string join(const std::vector<std::string> &Pieces,
                 const std::string &Separator);

/// True if \p Text is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool isIdentifier(const std::string &Text);

/// Replaces every occurrence of \p From in \p Text with \p To.
std::string replaceAll(std::string Text, const std::string &From,
                       const std::string &To);

} // namespace temos

#endif // TEMOS_SUPPORT_STRINGUTILS_H
