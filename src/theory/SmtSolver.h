//===- theory/SmtSolver.h - Quantifier-free SMT driver ---------*- C++ -*-===//
///
/// \file
/// A small SMT solver for the quantifier-free fragments the temos
/// pipeline emits: boolean combinations of (a) linear Int/Real
/// comparisons and (b) EUF atoms (equalities over opaque terms, boolean
/// uninterpreted predicates). Architecture:
///
///  * a DPLL-style case split over the boolean structure,
///  * simplex (theory/Simplex.h) with branch-and-bound for integers,
///  * congruence closure (theory/CongruenceClosure.h) for EUF,
///  * one-directional Nelson-Oppen propagation: equalities derived by
///    congruence over numeric-sorted terms are forwarded to simplex.
///
/// Completeness note: equalities *implied* by arithmetic (x <= y && y <=
/// x) are not forwarded back to the EUF side, so some mixed UF+LIA
/// inputs may be reported Sat that are really Unsat. All pipeline uses
/// are safe in that direction: consistency checking (Sec. 4.2) only acts
/// on proven-Unsat answers, and SyGuS verification treats non-Unsat
/// counterexample queries as candidate rejection.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_SMTSOLVER_H
#define TEMOS_THEORY_SMTSOLVER_H

#include "logic/Formula.h"
#include "logic/Specification.h"
#include "support/Deadline.h"
#include "theory/Value.h"

#include <vector>

namespace temos {

/// Three-valued satisfiability verdict.
enum class SatResult {
  Sat,
  Unsat,
  /// Resource limit hit (branch-and-bound depth); treat conservatively.
  Unknown,
};

/// A theory literal: a Bool-sorted term, possibly negated.
struct TheoryLiteral {
  const Term *Atom = nullptr;
  bool Positive = true;
};

/// Quantifier-free SMT solver over the specification's theory.
///
/// Instances keep no state between queries, which the solver-service
/// layer exploits: clone() hands every pool worker its own instance for
/// the price of copying the theory tag, and reset() is the explicit
/// point where any future incremental state (learned lemmas, pushed
/// scopes) must be discarded to keep that contract.
class SmtSolver {
public:
  explicit SmtSolver(Theory Th) : Th(Th) {}

  Theory theory() const { return Th; }

  /// A fresh, independent solver for the same theory. Cheap by design;
  /// the solver service clones one prototype per query/worker. Clones
  /// share the prototype's deadline token: tripping it cancels every
  /// in-flight query.
  SmtSolver clone() const {
    SmtSolver S(Th);
    S.Dl = Dl;
    return S;
  }

  /// Attaches a cooperative deadline. The DPLL case split, the
  /// disequality splitter, branch-and-bound, and the simplex pivot loop
  /// all poll it and throw DeadlineExpired when the budget is gone.
  /// A default Deadline (never expires) detaches.
  void setDeadline(const Deadline &D) { Dl = D; }
  const Deadline &deadline() const { return Dl; }

  /// Drops any state carried across queries. Currently a no-op (the
  /// solver is stateless); part of the API contract so future
  /// incremental features cannot silently leak state between workers.
  void reset() {}

  /// Satisfiability of the conjunction of \p Literals. On Sat and
  /// non-null \p Model, fills values for every signal occurring in the
  /// literals.
  SatResult checkLiterals(const std::vector<TheoryLiteral> &Literals,
                          Assignment *Model = nullptr);

  /// Satisfiability of a boolean-structure formula whose atoms are
  /// predicate terms (no temporal operators, no update terms).
  SatResult checkFormula(const Formula *F, Assignment *Model = nullptr);

  /// Validity of \p F (all atoms predicate terms): Sat means "valid".
  /// Implemented as Unsat(!F) with the NNF built in \p Ctx.
  SatResult checkValid(const Formula *F, Context &Ctx);

private:
  SatResult dpll(const Formula *F, std::vector<const Term *> &Atoms,
                 size_t Index, std::vector<TheoryLiteral> &Trail,
                 Assignment *Model);
  SatResult theoryCheck(const std::vector<TheoryLiteral> &Literals,
                        Assignment *Model);

  Theory Th;
  Deadline Dl;
};

} // namespace temos

#endif // TEMOS_THEORY_SMTSOLVER_H
