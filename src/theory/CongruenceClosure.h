//===- theory/CongruenceClosure.h - EUF congruence closure -----*- C++ -*-===//
///
/// \file
/// Congruence closure over ground terms for the theory of equality with
/// uninterpreted functions (EUF). Drives the UF part of consistency
/// checking (Sec. 4.2) and plain-TSL reasoning (TSL = TSL-MT over UF,
/// Sec. 3.3). Terms are hash-consed, so the structure works directly on
/// Term pointers.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_CONGRUENCECLOSURE_H
#define TEMOS_THEORY_CONGRUENCECLOSURE_H

#include "logic/Term.h"

#include <unordered_map>
#include <vector>

namespace temos {

/// Union-find based congruence closure.
class CongruenceClosure {
public:
  /// Registers \p T and all its subterms.
  void add(const Term *T);

  /// Asserts T1 = T2 and propagates congruences. Returns false if this
  /// contradicts a previously asserted disequality.
  bool merge(const Term *T1, const Term *T2);

  /// Asserts T1 != T2. Returns false if T1 and T2 are already equal.
  bool addDisequality(const Term *T1, const Term *T2);

  /// True if the two terms are in the same class.
  bool areEqual(const Term *T1, const Term *T2);

  /// Representative of \p T's class.
  const Term *find(const Term *T);

  /// All registered terms (insertion order).
  const std::vector<const Term *> &terms() const { return Terms; }

  /// Pairs (T1, T2) of registered terms that are congruent-equal; used
  /// to propagate equalities into the arithmetic solver.
  std::vector<std::pair<const Term *, const Term *>> equalPairs();

private:
  bool propagate();

  std::unordered_map<const Term *, const Term *> Parent;
  std::vector<const Term *> Terms;
  std::vector<std::pair<const Term *, const Term *>> Disequalities;
};

} // namespace temos

#endif // TEMOS_THEORY_CONGRUENCECLOSURE_H
