//===- theory/Simplex.h - General simplex for linear arithmetic *- C++ -*-===//
///
/// \file
/// A general simplex solver in the style of Dutertre and de Moura ("A
/// fast linear-arithmetic solver for DPLL(T)", CAV 2006). Variables range
/// over delta-rationals so strict inequalities are represented exactly
/// (x < c is x <= c - delta). Used by SmtSolver for LRA conjunctions and,
/// under branch-and-bound, for LIA.
///
/// The object is copyable; branch-and-bound snapshots the whole state.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_SIMPLEX_H
#define TEMOS_THEORY_SIMPLEX_H

#include "support/Deadline.h"
#include "support/Rational.h"
#include "theory/LinearExpr.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace temos {

/// General simplex over delta-rationals.
class Simplex {
public:
  using VarId = int;

  /// Returns the variable for \p Name, creating it on first use.
  VarId getVariable(const std::string &Name, bool IsInt);

  /// True if \p Name has been introduced.
  bool hasVariable(const std::string &Name) const {
    return VarIds.count(Name) != 0;
  }

  /// Asserts \p Atom (over named variables; variables are created with
  /// \p IntByDefault integrality when unseen). Returns false on an
  /// immediately detected bound conflict.
  bool assertAtom(const LinearAtom &Atom, bool IntByDefault);

  /// Runs the simplex check. True = satisfiable over the rationals.
  bool check();

  /// Current assignment of \p Name; only meaningful after check()
  /// returned true.
  DeltaRational value(const std::string &Name) const;

  /// All integer-declared variables whose current assignment is not
  /// integral (candidates for branch-and-bound).
  std::vector<std::string> fractionalIntVariables() const;

  /// Asserts Name <= Bound (upper) or Name >= Bound (lower); used by
  /// branch-and-bound. Returns false on immediate conflict.
  bool assertVariableBound(const std::string &Name, bool Upper,
                           const DeltaRational &Bound);

  /// Concretizes delta-rational assignments into plain rationals by
  /// choosing a small enough epsilon > 0. Only valid after a successful
  /// check().
  std::map<std::string, Rational> concreteModel() const;

  size_t variableCount() const { return Vars.size(); }
  size_t pivotCount() const { return Pivots; }

  /// Attaches a cooperative deadline polled once per pivot iteration;
  /// check() throws DeadlineExpired when it trips. Copies (the
  /// branch-and-bound snapshots) share the same token.
  void setDeadline(const Deadline &D) { Dl = D; }

private:
  struct VarInfo {
    std::string Name;
    bool IsInt = false;
    std::optional<DeltaRational> Lower;
    std::optional<DeltaRational> Upper;
    DeltaRational Assignment;
    bool IsBasic = false;
  };

  VarId newVariable(const std::string &Name, bool IsInt);
  bool assertBound(VarId X, bool Upper, const DeltaRational &Bound);
  void updateNonbasic(VarId X, const DeltaRational &NewValue);
  void pivotAndUpdate(VarId Basic, VarId Nonbasic, const DeltaRational &V);
  void pivot(VarId Basic, VarId Nonbasic);
  DeltaRational rowValue(const std::map<VarId, Rational> &Row) const;

  std::vector<VarInfo> Vars;
  std::map<std::string, VarId> VarIds;
  /// Rows of basic variables: Basic -> (Nonbasic -> coefficient).
  std::map<VarId, std::map<VarId, Rational>> Rows;
  size_t Pivots = 0;
  int SlackCounter = 0;
  Deadline Dl;
};

} // namespace temos

#endif // TEMOS_THEORY_SIMPLEX_H
