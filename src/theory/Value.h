//===- theory/Value.h - Runtime values for TSL-MT signals ------*- C++ -*-===//
///
/// \file
/// Concrete values carried by signals at run time and inside the SMT
/// layer: booleans, exact rationals (Int/Real sorts) and symbols (values
/// of uninterpreted/opaque sorts, identified by name).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_VALUE_H
#define TEMOS_THEORY_VALUE_H

#include "support/Rational.h"

#include <cassert>
#include <map>
#include <string>
#include <variant>

namespace temos {

/// A concrete runtime value.
class Value {
public:
  Value() : Data(false) {}
  static Value boolean(bool B) { return Value(B); }
  static Value number(const Rational &R) { return Value(R); }
  static Value integer(int64_t I) { return Value(Rational(I)); }
  /// A value of an uninterpreted sort, identified by name.
  static Value symbol(const std::string &Name) { return Value(Name); }

  bool isBool() const { return std::holds_alternative<bool>(Data); }
  bool isNumber() const { return std::holds_alternative<Rational>(Data); }
  bool isSymbol() const { return std::holds_alternative<std::string>(Data); }

  bool getBool() const {
    assert(isBool() && "getBool() on non-boolean value");
    return std::get<bool>(Data);
  }
  const Rational &getNumber() const {
    assert(isNumber() && "getNumber() on non-numeric value");
    return std::get<Rational>(Data);
  }
  const std::string &getSymbol() const {
    assert(isSymbol() && "getSymbol() on non-symbol value");
    return std::get<std::string>(Data);
  }

  bool operator==(const Value &RHS) const { return Data == RHS.Data; }
  bool operator!=(const Value &RHS) const { return !(*this == RHS); }
  /// Arbitrary total order (used for container keys).
  bool operator<(const Value &RHS) const { return Data < RHS.Data; }

  std::string str() const {
    if (isBool())
      return getBool() ? "true" : "false";
    if (isNumber())
      return getNumber().str();
    return getSymbol();
  }

private:
  explicit Value(bool B) : Data(B) {}
  explicit Value(const Rational &R) : Data(R) {}
  explicit Value(const std::string &S) : Data(S) {}

  std::variant<bool, Rational, std::string> Data;
};

/// A (partial) assignment of values to signal names.
using Assignment = std::map<std::string, Value>;

} // namespace temos

#endif // TEMOS_THEORY_VALUE_H
