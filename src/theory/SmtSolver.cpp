//===- theory/SmtSolver.cpp - Quantifier-free SMT driver -------------------===//

#include "theory/SmtSolver.h"

#include "support/Rational.h"
#include "theory/CongruenceClosure.h"
#include "theory/Simplex.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace temos;

namespace {

constexpr int MaxBranchDepth = 64;

bool isNumericSort(Sort S) { return S == Sort::Int || S == Sort::Real; }

bool isComparisonSymbol(const std::string &Name) {
  return Name == "<" || Name == "<=" || Name == ">" || Name == ">=" ||
         Name == "=" || Name == "!=";
}

/// True if \p T is a comparison whose operands are numeric (handled by
/// the arithmetic core rather than congruence closure).
bool isNumericComparison(const Term *T) {
  if (!T->isApply() || T->arity() != 2 || !isComparisonSymbol(T->name()))
    return false;
  return isNumericSort(T->args()[0]->sort()) &&
         isNumericSort(T->args()[1]->sort());
}

/// Collects every signal (and its sort) under \p T.
void collectTypedSignals(const Term *T, std::map<std::string, Sort> &Out) {
  if (T->isSignal()) {
    Out.emplace(T->name(), T->sort());
    return;
  }
  for (const Term *Arg : T->args())
    collectTypedSignals(Arg, Out);
}

/// Collects purification variables: every maximal numeric-sorted
/// non-arithmetic application below \p T, keyed by canonical string.
void collectPurifiedVars(const Term *T, std::map<std::string, Sort> &Out) {
  if (T->isApply() &&
      (T->name() == "+" || T->name() == "-" || T->name() == "*")) {
    for (const Term *Arg : T->args())
      collectPurifiedVars(Arg, Out);
    return;
  }
  if (T->isApply() && T->arity() > 0 && isNumericSort(T->sort()))
    Out.emplace(T->str(), T->sort());
  // Recurse anyway: nested numeric applications inside opaque ones.
  for (const Term *Arg : T->args())
    collectPurifiedVars(Arg, Out);
}

/// Floor of a delta-rational, accounting for the infinitesimal.
int64_t floorDR(const DeltaRational &V) {
  if (V.real().isInteger()) {
    if (V.delta().isNegative())
      return V.real().floor() - 1;
    return V.real().floor();
  }
  return V.real().floor();
}

/// The arithmetic sub-problem: atoms plus numeric disequalities, solved
/// by simplex with case splits and branch-and-bound.
class ArithmeticCore {
public:
  ArithmeticCore(const std::map<std::string, Sort> &VarSorts,
                 const Deadline &Dl)
      : VarSorts(VarSorts), Dl(Dl) {}

  std::vector<LinearAtom> Atoms;
  /// Each entry D means D != 0 (split into D < 0 or D > 0).
  std::vector<LinearExpr> Disequalities;

  SatResult solve(std::map<std::string, Rational> *Model) {
    Simplex S;
    S.setDeadline(Dl);
    for (const auto &[Name, VarSort] : VarSorts)
      S.getVariable(Name, VarSort == Sort::Int);
    for (const LinearAtom &Atom : Atoms)
      if (!S.assertAtom(Atom, /*IntByDefault=*/false))
        return SatResult::Unsat;
    return splitDisequalities(S, 0, MaxBranchDepth, Model);
  }

private:
  SatResult splitDisequalities(Simplex S, size_t Index, int Budget,
                               std::map<std::string, Rational> *Model) {
    Dl.check();
    if (Index == Disequalities.size())
      return branchAndBound(std::move(S), Budget, Model);
    bool SawUnknown = false;
    for (LinearRel Rel : {LinearRel::LT, LinearRel::GT}) {
      Simplex Branch = S;
      if (!Branch.assertAtom(LinearAtom{Disequalities[Index], Rel},
                             /*IntByDefault=*/false))
        continue;
      SatResult R = splitDisequalities(std::move(Branch), Index + 1, Budget,
                                       Model);
      if (R == SatResult::Sat)
        return R;
      if (R == SatResult::Unknown)
        SawUnknown = true;
    }
    return SawUnknown ? SatResult::Unknown : SatResult::Unsat;
  }

  SatResult branchAndBound(Simplex S, int Budget,
                           std::map<std::string, Rational> *Model) {
    Dl.check();
    if (!S.check())
      return SatResult::Unsat;
    std::vector<std::string> Fractional = S.fractionalIntVariables();
    if (Fractional.empty()) {
      if (Model)
        *Model = S.concreteModel();
      return SatResult::Sat;
    }
    if (Budget <= 0)
      return SatResult::Unknown;

    const std::string &Var = Fractional.front();
    int64_t K = floorDR(S.value(Var));
    bool SawUnknown = false;
    // x <= floor(v).
    {
      Simplex Below = S;
      if (Below.assertVariableBound(Var, /*Upper=*/true,
                                    DeltaRational(Rational(K)))) {
        SatResult R = branchAndBound(std::move(Below), Budget - 1, Model);
        if (R == SatResult::Sat)
          return R;
        SawUnknown |= R == SatResult::Unknown;
      }
    }
    // x >= floor(v) + 1.
    {
      Simplex Above = std::move(S);
      if (Above.assertVariableBound(Var, /*Upper=*/false,
                                    DeltaRational(Rational(K + 1)))) {
        SatResult R = branchAndBound(std::move(Above), Budget - 1, Model);
        if (R == SatResult::Sat)
          return R;
        SawUnknown |= R == SatResult::Unknown;
      }
    }
    return SawUnknown ? SatResult::Unknown : SatResult::Unsat;
  }

  const std::map<std::string, Sort> &VarSorts;
  Deadline Dl;
};

/// Three-valued evaluation of a boolean-structure formula under a
/// partial atom assignment.
std::optional<bool>
evalPartial(const Formula *F,
            const std::unordered_map<const Term *, bool> &AtomValues) {
  switch (F->kind()) {
  case Formula::Kind::True:
    return true;
  case Formula::Kind::False:
    return false;
  case Formula::Kind::Pred: {
    auto It = AtomValues.find(F->pred());
    if (It == AtomValues.end())
      return std::nullopt;
    return It->second;
  }
  case Formula::Kind::Not: {
    auto V = evalPartial(F->child(0), AtomValues);
    if (!V)
      return std::nullopt;
    return !*V;
  }
  case Formula::Kind::And: {
    bool AnyUnknown = false;
    for (const Formula *Kid : F->children()) {
      auto V = evalPartial(Kid, AtomValues);
      if (!V)
        AnyUnknown = true;
      else if (!*V)
        return false;
    }
    if (AnyUnknown)
      return std::nullopt;
    return true;
  }
  case Formula::Kind::Or: {
    bool AnyUnknown = false;
    for (const Formula *Kid : F->children()) {
      auto V = evalPartial(Kid, AtomValues);
      if (!V)
        AnyUnknown = true;
      else if (*V)
        return true;
    }
    if (AnyUnknown)
      return std::nullopt;
    return false;
  }
  case Formula::Kind::Implies: {
    auto A = evalPartial(F->lhs(), AtomValues);
    auto B = evalPartial(F->rhs(), AtomValues);
    if (A && !*A)
      return true;
    if (B && *B)
      return true;
    if (A && B)
      return !*A || *B;
    return std::nullopt;
  }
  case Formula::Kind::Iff: {
    auto A = evalPartial(F->lhs(), AtomValues);
    auto B = evalPartial(F->rhs(), AtomValues);
    if (A && B)
      return *A == *B;
    return std::nullopt;
  }
  default:
    assert(false && "temporal/update node in SMT formula");
    return std::nullopt;
  }
}

} // namespace

SatResult SmtSolver::checkFormula(const Formula *F, Assignment *Model) {
  // Collect the distinct predicate atoms.
  std::vector<const Term *> Atoms;
  std::unordered_set<const Term *> Seen;
  bool Unsupported = false;
  std::function<void(const Formula *)> Walk = [&](const Formula *Node) {
    if (Node->is(Formula::Kind::Pred)) {
      if (Seen.insert(Node->pred()).second)
        Atoms.push_back(Node->pred());
      return;
    }
    if (Node->isTemporal() || Node->is(Formula::Kind::Update)) {
      Unsupported = true;
      return;
    }
    for (const Formula *Kid : Node->children())
      Walk(Kid);
  };
  Walk(F);
  if (Unsupported)
    return SatResult::Unknown;

  std::vector<TheoryLiteral> Trail;
  try {
    return dpll(F, Atoms, 0, Trail, Model);
  } catch (const RationalOverflow &) {
    // Coefficients escaped int64 range mid-solve; Unknown is the only
    // sound verdict.
    return SatResult::Unknown;
  }
}

SatResult SmtSolver::checkValid(const Formula *F, Context &Ctx) {
  SatResult R = checkFormula(Ctx.Formulas.toNNF(Ctx.Formulas.notF(F)));
  if (R == SatResult::Unsat)
    return SatResult::Sat; // Negation unsatisfiable: valid.
  if (R == SatResult::Sat)
    return SatResult::Unsat;
  return SatResult::Unknown;
}

SatResult SmtSolver::dpll(const Formula *F, std::vector<const Term *> &Atoms,
                          size_t Index, std::vector<TheoryLiteral> &Trail,
                          Assignment *Model) {
  Dl.check();
  // Evaluate under the current partial assignment.
  std::unordered_map<const Term *, bool> AtomValues;
  for (const TheoryLiteral &L : Trail)
    AtomValues[L.Atom] = L.Positive;
  auto V = evalPartial(F, AtomValues);
  if (V && !*V)
    return SatResult::Unsat;
  if (V && *V)
    return theoryCheck(Trail, Model);

  // The formula is undetermined: there must be an unassigned atom left.
  assert(Index < Atoms.size() && "undetermined formula with no atoms left");
  bool SawUnknown = false;
  for (bool Polarity : {true, false}) {
    Trail.push_back({Atoms[Index], Polarity});
    SatResult R = dpll(F, Atoms, Index + 1, Trail, Model);
    Trail.pop_back();
    if (R == SatResult::Sat)
      return R;
    SawUnknown |= R == SatResult::Unknown;
  }
  return SawUnknown ? SatResult::Unknown : SatResult::Unsat;
}

SatResult SmtSolver::checkLiterals(const std::vector<TheoryLiteral> &Literals,
                                   Assignment *Model) {
  try {
    return theoryCheck(Literals, Model);
  } catch (const RationalOverflow &) {
    return SatResult::Unknown;
  }
}

SatResult SmtSolver::theoryCheck(const std::vector<TheoryLiteral> &Literals,
                                 Assignment *Model) {
  // Marker terms for boolean-valued EUF atoms.
  TermFactory Markers;
  const Term *TrueMark = Markers.apply("$true", Sort::Bool, {});
  const Term *FalseMark = Markers.apply("$false", Sort::Bool, {});

  CongruenceClosure CC;
  if (!CC.addDisequality(TrueMark, FalseMark))
    return SatResult::Unsat;

  // Variable sorts for the arithmetic core. Also register every term in
  // the congruence closure so that function congruence fires even for
  // terms that only occur inside arithmetic atoms (x = y, f(x) < f(y)).
  std::map<std::string, Sort> VarSorts;
  for (const TheoryLiteral &L : Literals) {
    collectTypedSignals(L.Atom, VarSorts);
    collectPurifiedVars(L.Atom, VarSorts);
    CC.add(L.Atom);
  }

  ArithmeticCore Arith(VarSorts, Dl);
  std::vector<std::pair<const Term *, const Term *>> NumericEqualities;

  for (const TheoryLiteral &L : Literals) {
    const Term *Atom = L.Atom;

    // Constant boolean atoms.
    if (Atom->isApply() && Atom->arity() == 0 && Atom->name() == "True") {
      if (!L.Positive)
        return SatResult::Unsat;
      continue;
    }
    if (Atom->isApply() && Atom->arity() == 0 && Atom->name() == "False") {
      if (L.Positive)
        return SatResult::Unsat;
      continue;
    }

    if (isNumericComparison(Atom)) {
      const std::string &Op = Atom->name();
      bool IsEq = Op == "=";
      bool IsNeq = Op == "!=";
      bool WantEqual = (IsEq && L.Positive) || (IsNeq && !L.Positive);
      bool WantDistinct = (IsEq && !L.Positive) || (IsNeq && L.Positive);
      auto LHS = LinearExpr::fromTerm(Atom->args()[0]);
      auto RHS = LinearExpr::fromTerm(Atom->args()[1]);
      if (!LHS || !RHS)
        return SatResult::Unknown; // Nonlinear.
      if (WantEqual) {
        Arith.Atoms.push_back({*LHS - *RHS, LinearRel::EQ});
        NumericEqualities.emplace_back(Atom->args()[0], Atom->args()[1]);
        continue;
      }
      if (WantDistinct) {
        Arith.Disequalities.push_back(*LHS - *RHS);
        continue;
      }
      auto MaybeAtom = LinearAtom::fromComparison(Atom, !L.Positive);
      if (!MaybeAtom)
        return SatResult::Unknown;
      Arith.Atoms.push_back(*MaybeAtom);
      continue;
    }

    // EUF equalities/disequalities over non-numeric operands.
    if (Atom->isApply() && Atom->arity() == 2 &&
        (Atom->name() == "=" || Atom->name() == "!=")) {
      bool WantEqual = (Atom->name() == "=") == L.Positive;
      const Term *A = Atom->args()[0];
      const Term *B = Atom->args()[1];
      bool Ok = WantEqual ? CC.merge(A, B) : CC.addDisequality(A, B);
      if (!Ok)
        return SatResult::Unsat;
      continue;
    }

    // Uninterpreted boolean predicate or boolean signal: tie the atom to
    // a truth marker so congruence decides clashes like p(x) && !p(y)
    // with x = y.
    if (!CC.merge(Atom, L.Positive ? TrueMark : FalseMark))
      return SatResult::Unsat;
  }

  // Nelson-Oppen forward direction: explicit numeric equalities
  // participate in congruence; congruence-derived equalities between
  // numeric terms feed back into the arithmetic core.
  for (const auto &[A, B] : NumericEqualities)
    if (!CC.merge(A, B))
      return SatResult::Unsat;
  for (const auto &[A, B] : CC.equalPairs()) {
    if (!isNumericSort(A->sort()) || !isNumericSort(B->sort()))
      continue;
    auto LHS = LinearExpr::fromTerm(A);
    auto RHS = LinearExpr::fromTerm(B);
    if (LHS && RHS)
      Arith.Atoms.push_back({*LHS - *RHS, LinearRel::EQ});
  }

  std::map<std::string, Rational> NumericModel;
  SatResult R = Arith.solve(Model ? &NumericModel : nullptr);
  if (R != SatResult::Sat)
    return R;

  if (Model) {
    for (const auto &[Name, VarSort] : VarSorts) {
      // Skip purified application variables: only signals get values.
      if (Name.find('(') != std::string::npos)
        continue;
      if (VarSort == Sort::Int || VarSort == Sort::Real) {
        auto It = NumericModel.find(Name);
        (*Model)[Name] =
            Value::number(It != NumericModel.end() ? It->second : Rational(0));
      }
    }
    // Boolean and opaque signals from the EUF side. Values must respect
    // the congruence classes: signals asserted equal (directly or via
    // congruence) get the same symbol, and boolean signals take the
    // truth marker their class was merged with, so the returned model
    // actually satisfies the EUF literals it came from.
    std::map<const Term *, std::string> ClassSymbol;
    std::function<void(const Term *)> AssignEuf = [&](const Term *T) {
      if (T->isSignal() && !Model->count(T->name())) {
        if (T->sort() == Sort::Bool) {
          (*Model)[T->name()] = Value::boolean(CC.areEqual(T, TrueMark));
        } else if (T->sort() == Sort::Opaque) {
          const Term *Rep = CC.find(T);
          auto It = ClassSymbol.find(Rep);
          if (It == ClassSymbol.end())
            It = ClassSymbol.emplace(Rep, "@" + T->name()).first;
          (*Model)[T->name()] = Value::symbol(It->second);
        }
      }
      for (const Term *Arg : T->args())
        AssignEuf(Arg);
    };
    for (const TheoryLiteral &L : Literals)
      AssignEuf(L.Atom);
  }
  return SatResult::Sat;
}
