//===- theory/SolverService.h - Shared parallel solver service -*- C++ -*-===//
///
/// \file
/// The solver-service layer: a shared front door to SMT satisfiability
/// for every pipeline phase. It combines
///
///  * a SolverPool of workers, each running its own SmtSolver clone
///    (SmtSolver::clone() is cheap because the solver keeps no state
///    between queries),
///  * a QueryCache memoizing verdicts under canonical structural keys
///    (theory tag + sorted literal renderings), and
///  * an UnsatCoreStore that consistency-check workers publish cores to
///    so concurrent workers can skip supersets (best-effort pruning; the
///    deterministic post-filter in the consistency checker makes the
///    emitted assumption set independent of the pruning races).
///
/// Model-producing queries bypass the cache: the cache stores verdicts
/// only, and callers that need a model need the actual solver run.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_SOLVERSERVICE_H
#define TEMOS_THEORY_SOLVERSERVICE_H

#include "support/QueryCache.h"
#include "support/SolverPool.h"
#include "theory/SmtSolver.h"

#include <cstdint>
#include <functional>
#include <memory>

namespace temos {

/// Shared store of unsatisfiable literal combinations, as bitmasks over
/// a fixed predicate numbering. Workers publish cores as they find them
/// and consult the store to skip supersets whose verdict is implied.
class UnsatCoreStore {
public:
  void publish(uint32_t Mask) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Cores.push_back(Mask);
  }

  /// True if some published core is a subset of \p Mask (the mask's
  /// unsatisfiability is already implied).
  bool subsumes(uint32_t Mask) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (uint32_t Core : Cores)
      if ((Mask & Core) == Core)
        return true;
    return false;
  }

  std::vector<uint32_t> snapshot() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return Cores;
  }

private:
  mutable std::mutex Mutex;
  std::vector<uint32_t> Cores;
};

/// Parallel, memoizing satisfiability service over one theory.
class SolverService {
public:
  struct Config {
    /// Worker threads; 1 means run inline on the caller's thread.
    unsigned NumThreads = 1;
    /// Memoize verdicts in the query cache.
    bool CacheEnabled = true;
    /// Entry cap for the query cache (LRU eviction past it); 0 means
    /// unbounded.
    size_t CacheCapacity = QueryCache::DefaultCapacity;
  };

  explicit SolverService(Theory Th) : SolverService(Th, Config()) {}
  SolverService(Theory Th, Config C);

  Theory theory() const { return Prototype.theory(); }
  const Config &config() const { return Cfg; }

  /// Satisfiability of a literal conjunction, served from the cache
  /// when possible. Pass \p Model to obtain a satisfying assignment;
  /// model queries always run the solver.
  SatResult checkLiterals(const std::vector<TheoryLiteral> &Literals,
                          Assignment *Model = nullptr);

  /// Satisfiability of a boolean-structure formula (cached).
  SatResult checkFormula(const Formula *F, Assignment *Model = nullptr);

  /// Validity of \p F (cached). NNF construction happens in \p Ctx.
  SatResult checkValid(const Formula *F, Context &Ctx);

  /// The worker pool, for phases that fan out their own task structure
  /// (the consistency checker's subset sweep, per-obligation SyGuS).
  SolverPool &pool() { return Pool; }

  /// Attaches a cooperative deadline to the prototype solver; every
  /// per-query clone inherits the shared token, so one call bounds all
  /// in-flight and future queries. Default Deadline detaches.
  void setDeadline(const Deadline &D) { Prototype.setDeadline(D); }
  const Deadline &deadline() const { return Prototype.deadline(); }

  QueryCache &cache() { return Cache; }
  const QueryCache &cache() const { return Cache; }

private:
  SatResult cached(const std::string &Key,
                   const std::function<SatResult()> &Compute);

  Config Cfg;
  SmtSolver Prototype;
  SolverPool Pool;
  QueryCache Cache;
};

} // namespace temos

#endif // TEMOS_THEORY_SOLVERSERVICE_H
