//===- theory/Evaluator.h - Ground term evaluation -------------*- C++ -*-===//
///
/// \file
/// Evaluates ground TSL-MT terms under a concrete assignment of signal
/// values. This is the semantic backbone shared by:
///  * the SyGuS enumerator (observational-equivalence pruning and
///    example-based candidate rejection),
///  * the code-generation Interpreter (executing synthesized systems),
///  * tests (differential checking against the SMT solver).
///
/// Builtin interpretations: numerals, +, -, * (linear), comparisons,
/// True()/False(). Applications of uninterpreted functions evaluate to
/// symbols canonically derived from the function name and evaluated
/// arguments, which realizes a term-model semantics: two UF applications
/// are equal iff their arguments evaluate equal (congruence).
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_EVALUATOR_H
#define TEMOS_THEORY_EVALUATOR_H

#include "logic/Term.h"
#include "theory/Value.h"

#include <optional>

namespace temos {

/// Evaluates ground terms under an assignment.
class Evaluator {
public:
  /// Evaluates \p T under \p Env. Returns nullopt when a signal is
  /// unassigned, a builtin receives ill-sorted operands, or the result
  /// would require division by zero.
  std::optional<Value> evaluate(const Term *T, const Assignment &Env) const;

  /// Evaluates a Bool-sorted term to a boolean; nullopt on failure.
  std::optional<bool> evaluateBool(const Term *T, const Assignment &Env) const;
};

} // namespace temos

#endif // TEMOS_THEORY_EVALUATOR_H
