//===- theory/SolverService.cpp - Shared parallel solver service -----------===//

#include "theory/SolverService.h"

using namespace temos;

SolverService::SolverService(Theory Th, Config C)
    : Cfg(C), Prototype(Th), Pool(C.NumThreads), Cache(C.CacheCapacity) {}

SatResult SolverService::cached(const std::string &Key,
                                const std::function<SatResult()> &Compute) {
  if (!Cfg.CacheEnabled)
    return Compute();
  if (auto Hit = Cache.lookup(Key))
    return static_cast<SatResult>(*Hit);
  SatResult R = Compute();
  // Unknown verdicts are resource-limit artifacts, not facts about the
  // query; don't memoize them.
  if (R != SatResult::Unknown)
    Cache.insert(Key, static_cast<int>(R));
  return R;
}

SatResult SolverService::checkLiterals(const std::vector<TheoryLiteral> &Literals,
                                       Assignment *Model) {
  SmtSolver Solver = Prototype.clone();
  if (Model)
    return Solver.checkLiterals(Literals, Model);
  std::vector<std::pair<std::string, bool>> Rendered;
  Rendered.reserve(Literals.size());
  for (const TheoryLiteral &L : Literals)
    Rendered.emplace_back(L.Atom->str(), L.Positive);
  std::string Key =
      QueryCache::canonicalKey(std::string("lits/") + theoryName(theory()),
                               std::move(Rendered));
  return cached(Key, [&] { return Solver.checkLiterals(Literals); });
}

SatResult SolverService::checkFormula(const Formula *F, Assignment *Model) {
  SmtSolver Solver = Prototype.clone();
  if (Model)
    return Solver.checkFormula(F, Model);
  std::string Key = std::string("formula/") + theoryName(theory()) + "|" +
                    F->str();
  return cached(Key, [&] { return Solver.checkFormula(F); });
}

SatResult SolverService::checkValid(const Formula *F, Context &Ctx) {
  SmtSolver Solver = Prototype.clone();
  std::string Key = std::string("valid/") + theoryName(theory()) + "|" +
                    F->str();
  return cached(Key, [&] { return Solver.checkValid(F, Ctx); });
}
