//===- theory/Evaluator.cpp - Ground term evaluation -----------------------===//

#include "theory/Evaluator.h"

using namespace temos;

std::optional<Value> Evaluator::evaluate(const Term *T,
                                         const Assignment &Env) const {
  switch (T->kind()) {
  case Term::Kind::Numeral:
    return Value::number(T->value());
  case Term::Kind::Signal: {
    auto It = Env.find(T->name());
    if (It == Env.end())
      return std::nullopt;
    return It->second;
  }
  case Term::Kind::Apply:
    break;
  }

  const std::string &F = T->name();

  // Nullary builtins and constants.
  if (T->arity() == 0) {
    if (F == "True")
      return Value::boolean(true);
    if (F == "False")
      return Value::boolean(false);
    // Opaque constants evaluate to themselves as symbols.
    return Value::symbol(F + "()");
  }

  // Evaluate arguments first.
  std::vector<Value> Args;
  Args.reserve(T->arity());
  for (const Term *Arg : T->args()) {
    auto V = evaluate(Arg, Env);
    if (!V)
      return std::nullopt;
    Args.push_back(*V);
  }

  auto BothNumbers = [&]() {
    return Args.size() == 2 && Args[0].isNumber() && Args[1].isNumber();
  };

  if (F == "+" && BothNumbers())
    return Value::number(Args[0].getNumber() + Args[1].getNumber());
  if (F == "-" && BothNumbers())
    return Value::number(Args[0].getNumber() - Args[1].getNumber());
  if (F == "*" && BothNumbers())
    return Value::number(Args[0].getNumber() * Args[1].getNumber());
  if (F == "<" && BothNumbers())
    return Value::boolean(Args[0].getNumber() < Args[1].getNumber());
  if (F == "<=" && BothNumbers())
    return Value::boolean(Args[0].getNumber() <= Args[1].getNumber());
  if (F == ">" && BothNumbers())
    return Value::boolean(Args[0].getNumber() > Args[1].getNumber());
  if (F == ">=" && BothNumbers())
    return Value::boolean(Args[0].getNumber() >= Args[1].getNumber());
  if (F == "=" && Args.size() == 2)
    return Value::boolean(Args[0] == Args[1]);
  if (F == "!=" && Args.size() == 2)
    return Value::boolean(Args[0] != Args[1]);

  // Sort mismatch on a builtin (e.g. "<" on symbols) is an evaluation
  // failure, not a symbolic application.
  static const char *Builtins[] = {"+", "-", "*", "<", "<=", ">", ">="};
  for (const char *B : Builtins)
    if (F == B)
      return std::nullopt;

  // Uninterpreted function: canonical symbolic value over evaluated
  // arguments (term-model semantics -> congruence holds by construction).
  std::string Canonical = "(" + F;
  for (const Value &Arg : Args)
    Canonical += " " + Arg.str();
  Canonical += ")";
  if (T->sort() == Sort::Bool) {
    // Boolean UF applications have no truth value under the term model;
    // the caller decides (the SMT layer treats them as atoms). For
    // evaluation purposes we expose them as symbols via evaluate() and
    // fail in evaluateBool().
    return Value::symbol(Canonical);
  }
  return Value::symbol(Canonical);
}

std::optional<bool> Evaluator::evaluateBool(const Term *T,
                                            const Assignment &Env) const {
  auto V = evaluate(T, Env);
  if (!V || !V->isBool())
    return std::nullopt;
  return V->getBool();
}
