//===- theory/Simplex.cpp - General simplex for linear arithmetic ---------===//

#include "theory/Simplex.h"

#include <algorithm>
#include <cassert>

using namespace temos;

Simplex::VarId Simplex::newVariable(const std::string &Name, bool IsInt) {
  VarId Id = static_cast<VarId>(Vars.size());
  VarInfo Info;
  Info.Name = Name;
  Info.IsInt = IsInt;
  Vars.push_back(Info);
  VarIds[Name] = Id;
  return Id;
}

Simplex::VarId Simplex::getVariable(const std::string &Name, bool IsInt) {
  auto It = VarIds.find(Name);
  if (It != VarIds.end())
    return It->second;
  return newVariable(Name, IsInt);
}

DeltaRational Simplex::rowValue(const std::map<VarId, Rational> &Row) const {
  DeltaRational Sum;
  for (const auto &[Var, Coeff] : Row)
    Sum = Sum + Vars[Var].Assignment * Coeff;
  return Sum;
}

bool Simplex::assertAtom(const LinearAtom &Atom, bool IntByDefault) {
  // Ensure all mentioned variables exist.
  std::map<VarId, Rational> Combination;
  for (const auto &[Name, Coeff] : Atom.Expr.coefficients()) {
    VarId X = getVariable(Name, IntByDefault);
    Combination[X] = Coeff;
  }

  if (Combination.empty()) {
    // Ground atom: constant Rel 0.
    const Rational &C = Atom.Expr.constant();
    switch (Atom.Rel) {
    case LinearRel::LE:
      return C <= Rational(0);
    case LinearRel::LT:
      return C < Rational(0);
    case LinearRel::GE:
      return C >= Rational(0);
    case LinearRel::GT:
      return C > Rational(0);
    case LinearRel::EQ:
      return C.isZero();
    }
  }

  // Determine the target variable to bound: a fresh slack variable
  // s = sum(coeff * x), unless the combination is a single variable with
  // coefficient 1.
  VarId Target;
  Rational TargetScale(1);
  if (Combination.size() == 1 && Combination.begin()->second == Rational(1)) {
    Target = Combination.begin()->first;
  } else {
    std::string SlackName = "$slack" + std::to_string(SlackCounter++);
    Target = newVariable(SlackName, /*IsInt=*/false);
    // Substitute rows of basic variables so the new row mentions only
    // nonbasic variables.
    std::map<VarId, Rational> Row;
    for (const auto &[Var, Coeff] : Combination) {
      if (Vars[Var].IsBasic) {
        for (const auto &[Inner, InnerCoeff] : Rows[Var]) {
          Rational &Slot = Row[Inner];
          Slot += Coeff * InnerCoeff;
          if (Slot.isZero())
            Row.erase(Inner);
        }
      } else {
        Rational &Slot = Row[Var];
        Slot += Coeff;
        if (Slot.isZero())
          Row.erase(Var);
      }
    }
    Vars[Target].IsBasic = true;
    Rows[Target] = Row;
    Vars[Target].Assignment = rowValue(Row);
  }
  (void)TargetScale;

  // The atom is: Target + Expr.constant Rel 0, i.e. Target Rel -constant.
  Rational Bound = -Atom.Expr.constant();
  switch (Atom.Rel) {
  case LinearRel::LE:
    return assertBound(Target, /*Upper=*/true, DeltaRational(Bound));
  case LinearRel::LT:
    return assertBound(Target, /*Upper=*/true,
                       DeltaRational(Bound, Rational(-1)));
  case LinearRel::GE:
    return assertBound(Target, /*Upper=*/false, DeltaRational(Bound));
  case LinearRel::GT:
    return assertBound(Target, /*Upper=*/false,
                       DeltaRational(Bound, Rational(1)));
  case LinearRel::EQ:
    return assertBound(Target, /*Upper=*/true, DeltaRational(Bound)) &&
           assertBound(Target, /*Upper=*/false, DeltaRational(Bound));
  }
  return false;
}

bool Simplex::assertVariableBound(const std::string &Name, bool Upper,
                                  const DeltaRational &Bound) {
  VarId X = getVariable(Name, /*IsInt=*/true);
  return assertBound(X, Upper, Bound);
}

bool Simplex::assertBound(VarId X, bool Upper, const DeltaRational &Bound) {
  VarInfo &Info = Vars[X];
  if (Upper) {
    if (Info.Upper && *Info.Upper <= Bound)
      return true; // No tightening.
    if (Info.Lower && Bound < *Info.Lower)
      return false; // Immediate conflict.
    Info.Upper = Bound;
    if (!Info.IsBasic && Bound < Info.Assignment)
      updateNonbasic(X, Bound);
    return true;
  }
  if (Info.Lower && Bound <= *Info.Lower)
    return true;
  if (Info.Upper && *Info.Upper < Bound)
    return false;
  Info.Lower = Bound;
  if (!Info.IsBasic && Info.Assignment < Bound)
    updateNonbasic(X, Bound);
  return true;
}

void Simplex::updateNonbasic(VarId X, const DeltaRational &NewValue) {
  assert(!Vars[X].IsBasic && "update() requires a nonbasic variable");
  DeltaRational Delta = NewValue - Vars[X].Assignment;
  for (auto &[Basic, Row] : Rows) {
    auto It = Row.find(X);
    if (It != Row.end())
      Vars[Basic].Assignment = Vars[Basic].Assignment + Delta * It->second;
  }
  Vars[X].Assignment = NewValue;
}

void Simplex::pivot(VarId Basic, VarId Nonbasic) {
  ++Pivots;
  std::map<VarId, Rational> Row = Rows[Basic];
  Rows.erase(Basic);
  Rational A = Row[Nonbasic];
  assert(!A.isZero() && "pivot on zero coefficient");

  // Solve x_basic = ... for x_nonbasic:
  //   x_nonbasic = (1/A) x_basic - sum_{i != nonbasic} (c_i / A) x_i.
  std::map<VarId, Rational> NewRow;
  NewRow[Basic] = Rational(1) / A;
  for (const auto &[Var, Coeff] : Row) {
    if (Var == Nonbasic)
      continue;
    NewRow[Var] = -(Coeff / A);
  }
  Vars[Basic].IsBasic = false;
  Vars[Nonbasic].IsBasic = true;
  Rows[Nonbasic] = NewRow;

  // Substitute into the other rows.
  for (auto &[OtherBasic, OtherRow] : Rows) {
    if (OtherBasic == Nonbasic)
      continue;
    auto It = OtherRow.find(Nonbasic);
    if (It == OtherRow.end())
      continue;
    Rational Factor = It->second;
    OtherRow.erase(It);
    for (const auto &[Var, Coeff] : NewRow) {
      Rational &Slot = OtherRow[Var];
      Slot += Factor * Coeff;
      if (Slot.isZero())
        OtherRow.erase(Var);
    }
  }
}

void Simplex::pivotAndUpdate(VarId Basic, VarId Nonbasic,
                             const DeltaRational &V) {
  Rational A = Rows[Basic][Nonbasic];
  DeltaRational Theta = (V - Vars[Basic].Assignment) * (Rational(1) / A);
  Vars[Basic].Assignment = V;
  Vars[Nonbasic].Assignment = Vars[Nonbasic].Assignment + Theta;
  for (const auto &[OtherBasic, Row] : Rows) {
    if (OtherBasic == Basic)
      continue;
    auto It = Row.find(Nonbasic);
    if (It != Row.end())
      Vars[OtherBasic].Assignment =
          Vars[OtherBasic].Assignment + Theta * It->second;
  }
  pivot(Basic, Nonbasic);
}

bool Simplex::check() {
  for (;;) {
    Dl.check();
    // Bland's rule: smallest violating basic variable.
    VarId Violating = -1;
    bool BelowLower = false;
    for (const auto &[Basic, Row] : Rows) {
      (void)Row;
      const VarInfo &Info = Vars[Basic];
      if (Info.Lower && Info.Assignment < *Info.Lower) {
        Violating = Basic;
        BelowLower = true;
        break;
      }
      if (Info.Upper && *Info.Upper < Info.Assignment) {
        Violating = Basic;
        BelowLower = false;
        break;
      }
    }
    if (Violating < 0)
      return true;

    const std::map<VarId, Rational> &Row = Rows[Violating];
    VarId Pivot = -1;
    for (const auto &[Var, Coeff] : Row) {
      const VarInfo &Info = Vars[Var];
      bool Suitable;
      if (BelowLower)
        Suitable = (Coeff.isPositive() &&
                    (!Info.Upper || Info.Assignment < *Info.Upper)) ||
                   (Coeff.isNegative() &&
                    (!Info.Lower || *Info.Lower < Info.Assignment));
      else
        Suitable = (Coeff.isNegative() &&
                    (!Info.Upper || Info.Assignment < *Info.Upper)) ||
                   (Coeff.isPositive() &&
                    (!Info.Lower || *Info.Lower < Info.Assignment));
      if (Suitable && (Pivot < 0 || Var < Pivot))
        Pivot = Var;
    }
    if (Pivot < 0)
      return false; // No suitable pivot: UNSAT.

    const VarInfo &Info = Vars[Violating];
    pivotAndUpdate(Violating, Pivot, BelowLower ? *Info.Lower : *Info.Upper);
  }
}

DeltaRational Simplex::value(const std::string &Name) const {
  auto It = VarIds.find(Name);
  assert(It != VarIds.end() && "value() of unknown variable");
  return Vars[It->second].Assignment;
}

std::vector<std::string> Simplex::fractionalIntVariables() const {
  std::vector<std::string> Result;
  for (const VarInfo &Info : Vars) {
    if (!Info.IsInt)
      continue;
    bool Integral =
        Info.Assignment.delta().isZero() && Info.Assignment.real().isInteger();
    if (!Integral)
      Result.push_back(Info.Name);
  }
  return Result;
}

std::map<std::string, Rational> Simplex::concreteModel() const {
  // Choose epsilon small enough that every assignment (r + d*eps) stays
  // within its bounds (br + bd*eps). For each binding constraint derive
  // an upper limit on eps.
  Rational Epsilon(1);
  auto Limit = [&](const DeltaRational &Value, const DeltaRational &Bound,
                   bool Upper) {
    // Need: value.real + value.delta*eps <= bound.real + bound.delta*eps
    // (or >= for lower bounds).
    Rational DeltaGap =
        Upper ? Value.delta() - Bound.delta() : Bound.delta() - Value.delta();
    Rational RealGap =
        Upper ? Bound.real() - Value.real() : Value.real() - Bound.real();
    if (DeltaGap.isPositive()) {
      assert(RealGap >= Rational(0) && "bound violated in concretization");
      if (!RealGap.isZero()) {
        Rational Candidate = RealGap / DeltaGap;
        if (Candidate < Epsilon)
          Epsilon = Candidate;
      } else {
        // RealGap == 0 with positive DeltaGap would violate the bound for
        // every eps > 0; check() guarantees this cannot happen.
        assert(false && "strict bound violated in concretization");
      }
    }
  };
  for (const VarInfo &Info : Vars) {
    if (Info.Upper)
      Limit(Info.Assignment, *Info.Upper, /*Upper=*/true);
    if (Info.Lower)
      Limit(Info.Assignment, *Info.Lower, /*Upper=*/false);
  }
  // Halve once more for safety margin.
  Epsilon = Epsilon * Rational(1, 2);

  std::map<std::string, Rational> Model;
  for (const VarInfo &Info : Vars) {
    if (Info.Name.rfind("$slack", 0) == 0)
      continue;
    Model[Info.Name] =
        Info.Assignment.real() + Info.Assignment.delta() * Epsilon;
  }
  return Model;
}
