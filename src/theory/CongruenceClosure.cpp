//===- theory/CongruenceClosure.cpp - EUF congruence closure ---------------===//

#include "theory/CongruenceClosure.h"

using namespace temos;

void CongruenceClosure::add(const Term *T) {
  if (Parent.count(T))
    return;
  Parent[T] = T;
  Terms.push_back(T);
  for (const Term *Arg : T->args())
    add(Arg);
}

const Term *CongruenceClosure::find(const Term *T) {
  add(T);
  const Term *Root = T;
  while (Parent[Root] != Root)
    Root = Parent[Root];
  // Path compression.
  while (Parent[T] != Root) {
    const Term *Next = Parent[T];
    Parent[T] = Root;
    T = Next;
  }
  return Root;
}

bool CongruenceClosure::areEqual(const Term *T1, const Term *T2) {
  return find(T1) == find(T2);
}

bool CongruenceClosure::merge(const Term *T1, const Term *T2) {
  add(T1);
  add(T2);
  const Term *R1 = find(T1);
  const Term *R2 = find(T2);
  if (R1 != R2)
    Parent[R1] = R2;
  if (!propagate())
    return false;
  // Check disequalities after propagation.
  for (const auto &[A, B] : Disequalities)
    if (find(A) == find(B))
      return false;
  return true;
}

bool CongruenceClosure::propagate() {
  // Naive fixpoint: merge any two applications with the same function
  // symbol and pairwise-equal argument classes. Quadratic, which is fine
  // for the small term sets the pipeline produces.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Terms.size(); ++I) {
      const Term *A = Terms[I];
      if (!A->isApply() || A->arity() == 0)
        continue;
      for (size_t J = I + 1; J < Terms.size(); ++J) {
        const Term *B = Terms[J];
        if (!B->isApply() || B->name() != A->name() ||
            B->arity() != A->arity())
          continue;
        if (find(A) == find(B))
          continue;
        bool ArgsEqual = true;
        for (size_t K = 0; K < A->arity(); ++K)
          if (find(A->args()[K]) != find(B->args()[K])) {
            ArgsEqual = false;
            break;
          }
        if (ArgsEqual) {
          Parent[find(A)] = find(B);
          Changed = true;
        }
      }
    }
  }
  return true;
}

bool CongruenceClosure::addDisequality(const Term *T1, const Term *T2) {
  add(T1);
  add(T2);
  Disequalities.emplace_back(T1, T2);
  return find(T1) != find(T2);
}

std::vector<std::pair<const Term *, const Term *>>
CongruenceClosure::equalPairs() {
  std::vector<std::pair<const Term *, const Term *>> Result;
  for (size_t I = 0; I < Terms.size(); ++I)
    for (size_t J = I + 1; J < Terms.size(); ++J)
      if (Terms[I] != Terms[J] && find(Terms[I]) == find(Terms[J]))
        Result.emplace_back(Terms[I], Terms[J]);
  return Result;
}
