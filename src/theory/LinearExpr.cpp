//===- theory/LinearExpr.cpp - Linear arithmetic expressions ---------------===//

#include "theory/LinearExpr.h"

using namespace temos;

LinearExpr LinearExpr::operator+(const LinearExpr &RHS) const {
  LinearExpr Result = *this;
  Result.Constant += RHS.Constant;
  for (const auto &[Name, Coeff] : RHS.Coefficients) {
    Rational &Slot = Result.Coefficients[Name];
    Slot += Coeff;
    if (Slot.isZero())
      Result.Coefficients.erase(Name);
  }
  return Result;
}

LinearExpr LinearExpr::operator-(const LinearExpr &RHS) const {
  return *this + RHS.scaled(Rational(-1));
}

LinearExpr LinearExpr::scaled(const Rational &Factor) const {
  LinearExpr Result;
  if (Factor.isZero())
    return Result;
  Result.Constant = Constant * Factor;
  for (const auto &[Name, Coeff] : Coefficients)
    Result.Coefficients[Name] = Coeff * Factor;
  return Result;
}

std::string LinearExpr::str() const {
  std::string Out;
  for (const auto &[Name, Coeff] : Coefficients) {
    if (!Out.empty())
      Out += " + ";
    if (Coeff == Rational(1))
      Out += Name;
    else
      Out += Coeff.str() + "*" + Name;
  }
  if (Out.empty() || !Constant.isZero()) {
    if (!Out.empty())
      Out += " + ";
    Out += Constant.str();
  }
  return Out;
}

std::optional<LinearExpr> LinearExpr::fromTerm(const Term *T) {
  switch (T->kind()) {
  case Term::Kind::Numeral:
    return LinearExpr(T->value());
  case Term::Kind::Signal:
    if (T->sort() != Sort::Int && T->sort() != Sort::Real)
      return std::nullopt;
    return LinearExpr::variable(T->name());
  case Term::Kind::Apply:
    break;
  }

  const std::string &F = T->name();
  if ((F == "+" || F == "-") && T->arity() == 2) {
    auto A = fromTerm(T->args()[0]);
    auto B = fromTerm(T->args()[1]);
    if (!A || !B)
      return std::nullopt;
    return F == "+" ? *A + *B : *A - *B;
  }
  if (F == "*" && T->arity() == 2) {
    auto A = fromTerm(T->args()[0]);
    auto B = fromTerm(T->args()[1]);
    if (!A || !B)
      return std::nullopt;
    if (A->isConstant())
      return B->scaled(A->constant());
    if (B->isConstant())
      return A->scaled(B->constant());
    return std::nullopt; // Nonlinear.
  }

  // Purification: a numeric-sorted UF application is an atomic variable
  // keyed by its canonical string.
  if (T->sort() == Sort::Int || T->sort() == Sort::Real)
    return LinearExpr::variable(T->str());
  return std::nullopt;
}

LinearRel temos::negateRel(LinearRel Rel) {
  switch (Rel) {
  case LinearRel::LE:
    return LinearRel::GT;
  case LinearRel::LT:
    return LinearRel::GE;
  case LinearRel::GE:
    return LinearRel::LT;
  case LinearRel::GT:
    return LinearRel::LE;
  case LinearRel::EQ:
    // Negated equality is a disequality and needs a case split; callers
    // handle EQ specially before calling negateRel.
    assert(false && "cannot negate EQ into a single linear relation");
    return LinearRel::EQ;
  }
  return LinearRel::LE;
}

std::string LinearAtom::str() const {
  const char *RelName = "?";
  switch (Rel) {
  case LinearRel::LE:
    RelName = "<=";
    break;
  case LinearRel::LT:
    RelName = "<";
    break;
  case LinearRel::GE:
    RelName = ">=";
    break;
  case LinearRel::GT:
    RelName = ">";
    break;
  case LinearRel::EQ:
    RelName = "=";
    break;
  }
  return Expr.str() + " " + RelName + " 0";
}

std::optional<LinearAtom> LinearAtom::fromComparison(const Term *T,
                                                     bool Negated) {
  if (!T->isApply() || T->arity() != 2)
    return std::nullopt;
  const std::string &F = T->name();
  LinearRel Rel;
  if (F == "<")
    Rel = LinearRel::LT;
  else if (F == "<=")
    Rel = LinearRel::LE;
  else if (F == ">")
    Rel = LinearRel::GT;
  else if (F == ">=")
    Rel = LinearRel::GE;
  else if (F == "=")
    Rel = LinearRel::EQ;
  else
    return std::nullopt;

  Sort L = T->args()[0]->sort();
  Sort R = T->args()[1]->sort();
  bool Numeric = (L == Sort::Int || L == Sort::Real) &&
                 (R == Sort::Int || R == Sort::Real);
  if (!Numeric)
    return std::nullopt;

  auto A = LinearExpr::fromTerm(T->args()[0]);
  auto B = LinearExpr::fromTerm(T->args()[1]);
  if (!A || !B)
    return std::nullopt;

  if (Negated) {
    if (Rel == LinearRel::EQ)
      return std::nullopt; // Disequalities need a case split upstream.
    Rel = negateRel(Rel);
  }
  return LinearAtom{*A - *B, Rel};
}
