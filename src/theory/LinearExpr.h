//===- theory/LinearExpr.h - Linear arithmetic expressions -----*- C++ -*-===//
///
/// \file
/// Linear polynomials over named variables with exact rational
/// coefficients, and extraction of linear form from TSL-MT terms.
///
/// Numeric-sorted applications of *uninterpreted* functions are
/// abstracted as atomic variables named by their canonical term string
/// (e.g. "(f x)"), which is the purification step of a Nelson-Oppen-style
/// combination: the congruence-closure layer later links such variables
/// with equality constraints.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_THEORY_LINEAREXPR_H
#define TEMOS_THEORY_LINEAREXPR_H

#include "logic/Term.h"
#include "support/Rational.h"

#include <map>
#include <optional>
#include <string>

namespace temos {

/// A linear polynomial: sum of coefficient * variable plus a constant.
class LinearExpr {
public:
  LinearExpr() = default;
  explicit LinearExpr(const Rational &Constant) : Constant(Constant) {}

  static LinearExpr variable(const std::string &Name) {
    LinearExpr E;
    E.Coefficients[Name] = Rational(1);
    return E;
  }

  const std::map<std::string, Rational> &coefficients() const {
    return Coefficients;
  }
  const Rational &constant() const { return Constant; }

  bool isConstant() const { return Coefficients.empty(); }

  LinearExpr operator+(const LinearExpr &RHS) const;
  LinearExpr operator-(const LinearExpr &RHS) const;
  LinearExpr scaled(const Rational &Factor) const;

  std::string str() const;

  /// Extracts the linear form of \p T. Numeric UF applications become
  /// atomic variables (purification). Returns nullopt for genuinely
  /// nonlinear terms (variable * variable).
  static std::optional<LinearExpr> fromTerm(const Term *T);

private:
  std::map<std::string, Rational> Coefficients;
  Rational Constant;
};

/// Relations of linear atoms.
enum class LinearRel { LE, LT, GE, GT, EQ };

/// Negation of a relation: !(a <= b) is a > b, etc.
LinearRel negateRel(LinearRel Rel);

/// A linear atom: Expr Rel 0 (normalized, constant folded into Expr).
struct LinearAtom {
  LinearExpr Expr;
  LinearRel Rel = LinearRel::LE;

  std::string str() const;

  /// Builds the atom for a comparison term (<, <=, >, >=, = over numeric
  /// operands). Returns nullopt when \p T is not such a comparison or the
  /// operands are not linear.
  static std::optional<LinearAtom> fromComparison(const Term *T,
                                                  bool Negated);
};

} // namespace temos

#endif // TEMOS_THEORY_LINEAREXPR_H
