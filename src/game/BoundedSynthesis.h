//===- game/BoundedSynthesis.h - Bounded LTL synthesis ---------*- C++ -*-===//
///
/// \file
/// Bounded synthesis (Schewe/Finkbeiner; the BoSy approach) as the
/// reactive-synthesis engine, replacing Strix in the paper's pipeline
/// (Sec. 5.1): the negated specification is turned into an NBA, read as
/// a universal co-Buechi automaton, and for increasing counter bounds k
/// the k-counting determinization is solved as a safety game between
/// the environment (picks predicate valuations) and the system (picks
/// one update per cell). A winning system strategy is extracted as a
/// Mealy machine.
///
/// Unrealizability is approximate: if no bound in the schedule
/// admits a strategy, the problem is reported Unrealizable. This mirrors
/// the incompleteness the paper accepts (Sec. 4.5: "most existing SyGuS
/// solvers do not halt on unrealizable inputs").
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_GAME_BOUNDEDSYNTHESIS_H
#define TEMOS_GAME_BOUNDEDSYNTHESIS_H

#include "automata/Tableau.h"
#include "game/Mealy.h"

#include <optional>

namespace temos {

/// Realizability verdict.
enum class Realizability {
  Realizable,
  /// No strategy up to the configured counter bound / state budget.
  Unrealizable,
  /// Resource budget exceeded.
  Unknown,
};

/// Tunables for the bounded synthesis loop.
struct SynthesisOptions {
  /// Counter bounds tried, in order. Realizability is monotone in k, so
  /// trying a mid-size bound first skips the small-k explorations that
  /// liveness specs always fail (and costs nothing extra on safety
  /// specs, whose counters never move).
  std::vector<unsigned> BoundSchedule = {1, 3};
  /// Abort when a single game exceeds this many counting states.
  size_t StateBudget = 500000;
};

/// Statistics of one synthesis run.
struct SynthesisStats {
  unsigned BoundUsed = 0;
  size_t GameStates = 0;
  TableauStats Tableau;
};

/// Result of reactive synthesis.
struct SynthesisResult {
  Realizability Status = Realizability::Unknown;
  std::optional<MealyMachine> Machine;
  SynthesisStats Stats;
};

/// Synthesizes a Mealy machine realizing \p Spec over \p AB, or reports
/// (bounded) unrealizability.
SynthesisResult synthesizeLtl(const Formula *Spec, Context &Ctx,
                              const Alphabet &AB,
                              const SynthesisOptions &Options = {});

/// Realizability only (no strategy extraction); used by the Fig. 4
/// oracle's minimization loop.
Realizability checkRealizable(const Formula *Spec, Context &Ctx,
                              const Alphabet &AB,
                              const SynthesisOptions &Options = {});

} // namespace temos

#endif // TEMOS_GAME_BOUNDEDSYNTHESIS_H
