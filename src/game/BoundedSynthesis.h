//===- game/BoundedSynthesis.h - Bounded LTL synthesis ---------*- C++ -*-===//
///
/// \file
/// Bounded synthesis (Schewe/Finkbeiner; the BoSy approach) as the
/// reactive-synthesis engine, replacing Strix in the paper's pipeline
/// (Sec. 5.1): the negated specification is turned into an NBA, read as
/// a universal co-Buechi automaton, and for increasing counter bounds k
/// the k-counting determinization is solved as a safety game between
/// the environment (picks predicate valuations) and the system (picks
/// one update per cell). A winning system strategy is extracted as a
/// Mealy machine.
///
/// The engine is *incremental* along three axes (see
/// docs/ARCHITECTURE.md):
///
///  * NBA construction is memoized per (alphabet, NNF rendering), so the
///    refinement loop's repeated invocations on an unchanged negated
///    specification skip the tableau entirely, and the tableau's
///    per-state expansions are shared across builds via TableauCache.
///  * One counting-game arena (state interning tables, weighted move
///    lists) is kept alive across the whole bound schedule and across
///    calls: the counting transition relation does not depend on k, only
///    the overflow cutoff does, so escalating the bound merely
///    re-examines previously overflowing moves instead of re-deriving
///    the reachable graph.
///  * Solving bound k' >= k is seeded with the winning-region
///    certificate of bound k. Winning transfers upward (a bound-k
///    strategy also keeps counters <= k'), so certified states are
///    pinned and the fixpoint only iterates on the rest. (The losing
///    region does *not* transfer upward, so it is never reused.)
///
/// Extraction renumbers machine states by a breadth-first walk of the
/// chosen strategy, which makes the emitted Mealy machine independent of
/// arena internals: incremental and from-scratch runs produce
/// byte-identical machines (enforced by the parity test suite).
///
/// Unrealizability is approximate: if no bound in the schedule
/// admits a strategy, the problem is reported Unrealizable. This mirrors
/// the incompleteness the paper accepts (Sec. 4.5: "most existing SyGuS
/// solvers do not halt on unrealizable inputs").
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_GAME_BOUNDEDSYNTHESIS_H
#define TEMOS_GAME_BOUNDEDSYNTHESIS_H

#include "automata/Tableau.h"
#include "game/Mealy.h"

#include <memory>
#include <optional>

namespace temos {

class SolverPool;

/// Realizability verdict.
enum class Realizability {
  Realizable,
  /// No strategy up to the configured counter bound / state budget.
  Unrealizable,
  /// Resource budget exceeded.
  Unknown,
};

/// Tunables for the bounded synthesis loop.
struct SynthesisOptions {
  /// Counter bounds tried, in order. Realizability is monotone in k, so
  /// trying a mid-size bound first skips the small-k explorations that
  /// liveness specs always fail (and costs nothing extra on safety
  /// specs, whose counters never move).
  std::vector<unsigned> BoundSchedule = {1, 3};
  /// Abort when a game exceeds this many counting states. The check is
  /// applied before interning: the arena never holds more than this
  /// many states.
  size_t StateBudget = 500000;
  /// Reuse NBAs, tableau expansions, and game arenas across bounds and
  /// calls. Off = rebuild everything per bound and per call (the
  /// pre-incremental behavior; kept selectable for the parity suite and
  /// the differential fuzzer).
  bool Incremental = true;
  /// Budgets for the tableau construction of the UCW.
  TableauLimits Tableau;
  /// Cooperative deadline for the whole reactive phase, polled at wave
  /// boundaries of arena exploration and per gfp iteration (also copy
  /// it into Tableau.Dl to bound the UCW construction). Expiry degrades
  /// to Unknown with Stats.TimedOut set. NOT part of any cache key: an
  /// interrupted extension leaves the arena at a consistent
  /// sequential-prefix state and never records certificates, so reuse
  /// stays byte-identical.
  Deadline Dl;
};

/// Statistics of one synthesis run.
struct SynthesisStats {
  unsigned BoundUsed = 0;
  size_t GameStates = 0;
  TableauStats Tableau;
  /// The UCW was served from the engine's NBA cache.
  bool NbaCacheHit = false;
  /// Tableau per-state expansion cache traffic during this call.
  size_t ExpansionCacheHits = 0;
  size_t ExpansionCacheMisses = 0;
  /// Game states already present in the reused arena when the call
  /// started (0 for a fresh arena).
  size_t ArenaStatesReused = 0;
  /// Wall-clock split: UCW construction vs. game exploration/solving.
  double NbaSeconds = 0;
  double GameSeconds = 0;
  /// An Unknown verdict was caused by the cooperative deadline (wall
  /// clock), as opposed to the state/transition budgets.
  bool TimedOut = false;
};

/// Result of reactive synthesis.
struct SynthesisResult {
  Realizability Status = Realizability::Unknown;
  std::optional<MealyMachine> Machine;
  SynthesisStats Stats;
};

/// The incremental reactive-synthesis engine. Owns the NBA cache, the
/// tableau expansion cache, and the live game arenas; one instance
/// serves every reactive invocation of a pipeline run (the Synthesizer
/// keeps one per instance).
///
/// All cache keys involve formula renderings and formula ids, so an
/// engine must only ever be used with a single Context (checked). Not
/// thread-safe; calls are expected from the pipeline thread. The
/// optional SolverPool is used *within* a call to explore counting-game
/// successor cells in parallel with a deterministic merge: results are
/// byte-identical for every pool width.
class SynthesisEngine {
public:
  SynthesisEngine();
  ~SynthesisEngine();
  SynthesisEngine(const SynthesisEngine &) = delete;
  SynthesisEngine &operator=(const SynthesisEngine &) = delete;

  /// Synthesizes a Mealy machine realizing \p Spec over \p AB, or
  /// reports (bounded) unrealizability. With Options.Incremental, work
  /// is served from / recorded into the engine's caches.
  SynthesisResult synthesize(const Formula *Spec, Context &Ctx,
                             const Alphabet &AB,
                             const SynthesisOptions &Options = {},
                             SolverPool *Pool = nullptr);

  /// Cumulative cache counters across every call on this engine.
  size_t nbaCacheHits() const;
  size_t nbaCacheMisses() const;
  size_t expansionCacheHits() const;
  size_t expansionCacheMisses() const;

  /// Drops every cached NBA and arena (counters reset too).
  void clearCaches();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Synthesizes a Mealy machine realizing \p Spec over \p AB, or reports
/// (bounded) unrealizability. Convenience wrapper constructing a
/// throwaway SynthesisEngine; cross-call reuse requires holding an
/// engine instead.
SynthesisResult synthesizeLtl(const Formula *Spec, Context &Ctx,
                              const Alphabet &AB,
                              const SynthesisOptions &Options = {});

/// Realizability only (no strategy extraction); used by the Fig. 4
/// oracle's minimization loop.
Realizability checkRealizable(const Formula *Spec, Context &Ctx,
                              const Alphabet &AB,
                              const SynthesisOptions &Options = {});

} // namespace temos

#endif // TEMOS_GAME_BOUNDEDSYNTHESIS_H
