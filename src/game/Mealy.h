//===- game/Mealy.h - Mealy machines ---------------------------*- C++ -*-===//
///
/// \file
/// Explicit Mealy machines: the strategies extracted from the bounded
/// synthesis game. An input letter is a predicate-valuation bitset and
/// an output letter is one update choice per cell (see
/// tsl2ltl/Alphabet.h). This is our stand-in for the paper's Control
/// Flow Model (CFM) representation [18]; the codegen module renders it
/// as JavaScript/C++ or executes it directly.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_GAME_MEALY_H
#define TEMOS_GAME_MEALY_H

#include "tsl2ltl/Alphabet.h"

#include <cstdint>
#include <vector>

namespace temos {

/// A deterministic Mealy machine over the factored alphabet.
class MealyMachine {
public:
  /// Reaction to one input letter.
  struct Edge {
    uint32_t Output = 0;
    uint32_t NextState = 0;
  };

  MealyMachine() = default;
  MealyMachine(size_t NumStates, size_t NumInputs)
      : Table(NumStates, std::vector<Edge>(NumInputs)) {}

  size_t stateCount() const { return Table.size(); }
  size_t inputCount() const { return Table.empty() ? 0 : Table[0].size(); }
  uint32_t initialState() const { return Initial; }
  void setInitialState(uint32_t S) { Initial = S; }

  const Edge &edge(uint32_t State, uint32_t InputBits) const {
    return Table[State][InputBits];
  }
  void setEdge(uint32_t State, uint32_t InputBits, Edge E) {
    Table[State][InputBits] = E;
  }

  /// Runs one step from \p State on \p InputBits.
  Edge step(uint32_t State, uint32_t InputBits) const {
    return Table[State][InputBits];
  }

private:
  std::vector<std::vector<Edge>> Table;
  uint32_t Initial = 0;
};

} // namespace temos

#endif // TEMOS_GAME_MEALY_H
