//===- game/BoundedSynthesis.cpp - Bounded LTL synthesis -------------------===//

#include "game/BoundedSynthesis.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

using namespace temos;

namespace {

/// A state of the k-counting game: counters for the *active* UCW states
/// only, sorted by state id (sparse -- UCWs run to thousands of states
/// while only a handful are active at a time).
using CountVector = std::vector<std::pair<uint32_t, uint8_t>>;

std::string countKey(const CountVector &Counts) {
  std::string Key;
  Key.reserve(Counts.size() * 5);
  for (const auto &[State, Count] : Counts) {
    Key.append(reinterpret_cast<const char *>(&State), 4);
    Key.push_back(static_cast<char>(Count));
  }
  return Key;
}

/// Letter-indexed UCW successor cache, shared by the games for every
/// counter bound (the transition relation does not depend on k).
struct SuccessorCache {
  SuccessorCache(const Nba &Ucw, const Alphabet &AB)
      : Ucw(Ucw), AB(AB), Live(Ucw.liveStates()) {
    OutputChoices.reserve(AB.outputLetterCount());
    for (uint32_t O = 0; O < AB.outputLetterCount(); ++O)
      OutputChoices.push_back(AB.decodeOutput(O));
    NumLetters = AB.inputLetterCount() * AB.outputLetterCount();
    SuccOffsets.assign(Ucw.stateCount(), {});
  }

  /// Successor list of UCW state \p Q under a concrete letter; guard
  /// matching happens once per (state, letter) pair.
  const std::pair<uint32_t, uint32_t> &get(uint32_t Q, uint32_t InputBits,
                                           uint32_t Output) {
    std::vector<std::pair<uint32_t, uint32_t>> &PerLetter = SuccOffsets[Q];
    if (PerLetter.empty()) {
      PerLetter.assign(NumLetters, {0, 0});
      for (uint32_t In = 0; In < AB.inputLetterCount(); ++In) {
        for (uint32_t Out = 0; Out < AB.outputLetterCount(); ++Out) {
          uint32_t Offset = static_cast<uint32_t>(SuccArena.size());
          for (const Nba::Transition &T : Ucw.transitions(Q)) {
            // Runs through non-live states never reject: drop them.
            if (!Live[T.Target])
              continue;
            if (!T.Guard.matches(In, OutputChoices[Out]))
              continue;
            bool Found = false;
            for (size_t I = Offset; I < SuccArena.size(); ++I)
              if (SuccArena[I].first == T.Target) {
                SuccArena[I].second |= T.Accepting ? 1 : 0;
                Found = true;
                break;
              }
            if (!Found)
              SuccArena.emplace_back(T.Target, T.Accepting ? 1 : 0);
          }
          PerLetter[In * AB.outputLetterCount() + Out] = {
              Offset, static_cast<uint32_t>(SuccArena.size()) - Offset};
        }
      }
    }
    return PerLetter[InputBits * AB.outputLetterCount() + Output];
  }

  const Nba &Ucw;
  const Alphabet &AB;
  std::vector<bool> Live;
  std::vector<std::vector<unsigned>> OutputChoices;
  size_t NumLetters = 0;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> SuccOffsets;
  std::vector<std::pair<uint32_t, uint8_t>> SuccArena;
};

/// The k-counting safety game over the UCW.
class CountingGame {
public:
  CountingGame(const Nba &Ucw, const Alphabet &AB, SuccessorCache &Cache,
               unsigned Bound, size_t StateBudget)
      : Ucw(Ucw), AB(AB), Cache(Cache), Bound(Bound),
        StateBudget(StateBudget) {}

  /// Explores the reachable game graph. Returns false if the state
  /// budget is exceeded.
  bool explore();

  /// Solves the safety condition. Returns true if the initial state is
  /// winning for the system.
  bool solve();

  /// Extracts the winning strategy as a Mealy machine. Requires solve()
  /// returned true.
  MealyMachine extractStrategy() const;

  size_t stateCount() const { return States.size(); }

private:
  /// Successor counting state, or nullopt if a counter overflows the
  /// bound (unsafe).
  std::optional<CountVector> successor(const CountVector &Counts,
                                       uint32_t InputBits, uint32_t Output);
  uint32_t internState(const CountVector &Counts);

  const Nba &Ucw;
  const Alphabet &AB;
  SuccessorCache &Cache;
  unsigned Bound;
  size_t StateBudget;

  std::vector<int16_t> Scratch;
  std::vector<uint32_t> Touched;
  std::vector<CountVector> States;
  std::unordered_map<std::string, uint32_t> StateIds;
  /// Moves[state][input] = list of (output, successor id); only safe
  /// successors are recorded.
  std::vector<std::vector<std::vector<std::pair<uint32_t, uint32_t>>>> Moves;
  std::vector<bool> Winning;
};

uint32_t CountingGame::internState(const CountVector &Counts) {
  std::string Key = countKey(Counts);
  auto It = StateIds.find(Key);
  if (It != StateIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(States.size());
  StateIds.emplace(std::move(Key), Id);
  States.push_back(Counts);
  return Id;
}

std::optional<CountVector>
CountingGame::successor(const CountVector &Counts, uint32_t InputBits,
                        uint32_t Output) {
  // Dense scratch, reused across calls; Touched tracks what to reset.
  if (Scratch.size() < Ucw.stateCount())
    Scratch.assign(Ucw.stateCount(), -1);
  Touched.clear();

  bool Overflow = false;
  for (const auto &[Q, Count] : Counts) {
    auto [Offset, Length] = Cache.get(Q, InputBits, Output);
    for (uint32_t I = Offset; I < Offset + Length; ++I) {
      auto [Target, Accepting] = Cache.SuccArena[I];
      int NewCount = Count + Accepting;
      if (NewCount > static_cast<int>(Bound)) {
        Overflow = true;
        break;
      }
      if (Scratch[Target] < 0)
        Touched.push_back(Target);
      if (Scratch[Target] < NewCount)
        Scratch[Target] = static_cast<int16_t>(NewCount);
    }
    if (Overflow)
      break;
  }

  std::optional<CountVector> Result;
  if (!Overflow) {
    std::sort(Touched.begin(), Touched.end());
    CountVector Next;
    Next.reserve(Touched.size());
    for (uint32_t T : Touched)
      Next.emplace_back(T, static_cast<uint8_t>(Scratch[T]));
    Result = std::move(Next);
  }
  for (uint32_t T : Touched)
    Scratch[T] = -1;
  return Result;
}

bool CountingGame::explore() {
  CountVector InitialCounts = {{Ucw.initial(), 0}};
  uint32_t InitialId = internState(InitialCounts);
  (void)InitialId;

  const size_t NumInputs = AB.inputLetterCount();
  const size_t NumOutputs = AB.outputLetterCount();

  std::deque<uint32_t> Queue;
  Queue.push_back(0);
  size_t Processed = 0;
  while (!Queue.empty()) {
    uint32_t S = Queue.front();
    Queue.pop_front();
    if (S < Moves.size() && !Moves[S].empty())
      continue; // Already expanded.
    if (Moves.size() <= S)
      Moves.resize(States.size());
    Moves[S].assign(NumInputs, {});
    ++Processed;

    for (uint32_t In = 0; In < NumInputs; ++In) {
      for (uint32_t Out = 0; Out < NumOutputs; ++Out) {
        auto Next = successor(States[S], In, Out);
        if (!Next)
          continue;
        size_t Before = States.size();
        uint32_t Target = internState(*Next);
        if (States.size() > StateBudget)
          return false;
        if (States.size() != Before)
          Queue.push_back(Target);
        Moves[S][In].emplace_back(Out, Target);
      }
    }
  }
  Moves.resize(States.size());
  return true;
}

bool CountingGame::solve() {
  // Greatest fixpoint: a state is winning while for every input some
  // output leads to a winning state. Iterate removal until stable.
  Winning.assign(States.size(), true);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t S = 0; S < States.size(); ++S) {
      if (!Winning[S])
        continue;
      bool Safe = true;
      for (const auto &PerInput : Moves[S]) {
        bool SomeOutputWins = false;
        for (const auto &[Out, Target] : PerInput) {
          (void)Out;
          if (Winning[Target]) {
            SomeOutputWins = true;
            break;
          }
        }
        if (!SomeOutputWins) {
          Safe = false;
          break;
        }
      }
      if (!Safe) {
        Winning[S] = false;
        Changed = true;
      }
    }
  }
  return !States.empty() && Winning[0];
}

MealyMachine CountingGame::extractStrategy() const {
  const size_t NumInputs = AB.inputLetterCount();

  // Collect the winning states reachable under the least-output
  // strategy and renumber them densely.
  std::unordered_map<uint32_t, uint32_t> Renumber;
  std::vector<uint32_t> Order;
  std::deque<uint32_t> Queue;
  Renumber.emplace(0, 0);
  Order.push_back(0);
  Queue.push_back(0);

  // Chosen move per (game state, input).
  std::vector<std::vector<uint32_t>> ChosenOutput;
  std::vector<std::vector<uint32_t>> ChosenTarget;

  while (!Queue.empty()) {
    uint32_t S = Queue.front();
    Queue.pop_front();
    for (uint32_t In = 0; In < NumInputs; ++In) {
      uint32_t PickedOutput = 0;
      uint32_t PickedTarget = 0;
      bool Found = false;
      for (const auto &[Out, Target] : Moves[S][In]) {
        if (Winning[Target]) {
          PickedOutput = Out;
          PickedTarget = Target;
          Found = true;
          break;
        }
      }
      assert(Found && "winning state lost on some input");
      (void)Found;
      if (!Renumber.count(PickedTarget)) {
        Renumber.emplace(PickedTarget,
                         static_cast<uint32_t>(Order.size()));
        Order.push_back(PickedTarget);
        Queue.push_back(PickedTarget);
      }
      if (ChosenOutput.size() < Order.size()) {
        ChosenOutput.resize(Order.size());
        ChosenTarget.resize(Order.size());
      }
      uint32_t Dense = Renumber.at(S);
      if (ChosenOutput[Dense].empty()) {
        ChosenOutput[Dense].assign(NumInputs, 0);
        ChosenTarget[Dense].assign(NumInputs, 0);
      }
      ChosenOutput[Dense][In] = PickedOutput;
      ChosenTarget[Dense][In] = Renumber.at(PickedTarget);
    }
  }

  MealyMachine M(Order.size(), NumInputs);
  M.setInitialState(0);
  for (uint32_t Dense = 0; Dense < Order.size(); ++Dense)
    for (uint32_t In = 0; In < NumInputs; ++In)
      M.setEdge(Dense, In,
                {ChosenOutput[Dense][In], ChosenTarget[Dense][In]});
  return M;
}

} // namespace

SynthesisResult temos::synthesizeLtl(const Formula *Spec, Context &Ctx,
                                     const Alphabet &AB,
                                     const SynthesisOptions &Options) {
  SynthesisResult Result;

  // UCW = NBA of the negated specification.
  const Formula *Negated = Ctx.Formulas.notF(Spec);
  Nba Ucw = buildNba(Negated, Ctx, AB, &Result.Stats.Tableau);
  if (Result.Stats.Tableau.BudgetExceeded) {
    Result.Status = Realizability::Unknown;
    return Result;
  }

  SuccessorCache Cache(Ucw, AB);
  for (unsigned Bound : Options.BoundSchedule) {
    CountingGame Game(Ucw, AB, Cache, Bound, Options.StateBudget);
    if (!Game.explore()) {
      Result.Status = Realizability::Unknown;
      Result.Stats.GameStates = Game.stateCount();
      return Result;
    }
    if (Game.solve()) {
      Result.Status = Realizability::Realizable;
      Result.Stats.BoundUsed = Bound;
      Result.Stats.GameStates = Game.stateCount();
      Result.Machine = Game.extractStrategy();
      return Result;
    }
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Game.stateCount());
  }
  Result.Status = Realizability::Unrealizable;
  return Result;
}

Realizability temos::checkRealizable(const Formula *Spec, Context &Ctx,
                                     const Alphabet &AB,
                                     const SynthesisOptions &Options) {
  return synthesizeLtl(Spec, Ctx, AB, Options).Status;
}
