//===- game/BoundedSynthesis.cpp - Bounded LTL synthesis -------------------===//
//
// Incremental counting-game engine. The key observation: the counting
// successor relation does not depend on the bound k -- only the overflow
// cutoff does. Every explored move therefore records its *weight* (the
// largest counter value it produces); a move is legal at bound B iff
// weight <= B. Escalating the bound re-examines the moves that
// overflowed at the old cutoff instead of re-deriving the reachable
// graph, and solving restricts the fixpoint to moves of weight <= B.
//
// Parity with the from-scratch engine is structural, not accidental:
//  * Reachable sets are monotone in k (a bound-k move is a bound-k'
//    move for k' >= k and produces the same successor), so the
//    cumulative arena restricted to weight <= B is exactly the bound-B
//    game, and the bound-B subgraph is closed under its own moves.
//  * The greatest fixpoint over the full arena therefore assigns every
//    bound-B-reachable state the same winning value as the bound-B game
//    would, and certificate pinning only ever pins truly winning states
//    (winning transfers upward in k).
//  * Strategy extraction renumbers states breadth-first from the
//    initial state picking the least winning output per input, which is
//    invariant under arena state numbering -- incremental and
//    from-scratch runs emit byte-identical Mealy machines.
//
//===----------------------------------------------------------------------===//

#include "game/BoundedSynthesis.h"

#include "support/SolverPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <unordered_map>

using namespace temos;

namespace {

/// A state of the k-counting game: counters for the *active* UCW states
/// only, sorted by state id (sparse -- UCWs run to thousands of states
/// while only a handful are active at a time).
using CountVector = std::vector<std::pair<uint32_t, uint8_t>>;

std::string countKey(const CountVector &Counts) {
  std::string Key;
  Key.reserve(Counts.size() * 5);
  for (const auto &[State, Count] : Counts) {
    Key.append(reinterpret_cast<const char *>(&State), 4);
    Key.push_back(static_cast<char>(Count));
  }
  return Key;
}

/// Letter-indexed UCW successor cache. Entries are per UCW state and
/// filled at most once; because each fill writes only its own
/// preallocated slot, distinct states can be filled from pool workers
/// concurrently without synchronization.
struct SuccessorCache {
  struct Entry {
    bool Filled = false;
    /// (offset, length) into Arena, indexed by In * |Out| + Out.
    std::vector<std::pair<uint32_t, uint32_t>> PerLetter;
    /// (target, accepting) successor pairs.
    std::vector<std::pair<uint32_t, uint8_t>> Arena;
  };

  SuccessorCache(const Nba &Ucw, const Alphabet &AB)
      : Ucw(Ucw), AB(AB), Live(Ucw.liveStates()) {
    OutputChoices.reserve(AB.outputLetterCount());
    for (uint32_t O = 0; O < AB.outputLetterCount(); ++O)
      OutputChoices.push_back(AB.decodeOutput(O));
    Entries.resize(Ucw.stateCount());
  }

  bool filled(uint32_t Q) const { return Entries[Q].Filled; }

  /// Computes the per-letter successor table of UCW state \p Q.
  /// Idempotent; touches only Entries[Q].
  void fill(uint32_t Q) {
    Entry &E = Entries[Q];
    if (E.Filled)
      return;
    const size_t NumOutputs = AB.outputLetterCount();
    E.PerLetter.assign(AB.inputLetterCount() * NumOutputs, {0, 0});
    for (uint32_t In = 0; In < AB.inputLetterCount(); ++In) {
      for (uint32_t Out = 0; Out < NumOutputs; ++Out) {
        uint32_t Offset = static_cast<uint32_t>(E.Arena.size());
        for (const Nba::Transition &T : Ucw.transitions(Q)) {
          // Runs through non-live states never reject: drop them.
          if (!Live[T.Target])
            continue;
          if (!T.Guard.matches(In, OutputChoices[Out]))
            continue;
          bool Found = false;
          for (size_t I = Offset; I < E.Arena.size(); ++I)
            if (E.Arena[I].first == T.Target) {
              E.Arena[I].second |= T.Accepting ? 1 : 0;
              Found = true;
              break;
            }
          if (!Found)
            E.Arena.emplace_back(T.Target, T.Accepting ? 1 : 0);
        }
        E.PerLetter[In * NumOutputs + Out] = {
            Offset, static_cast<uint32_t>(E.Arena.size()) - Offset};
      }
    }
    E.Filled = true;
  }

  const Nba &Ucw;
  const Alphabet &AB;
  std::vector<bool> Live;
  std::vector<std::vector<unsigned>> OutputChoices;
  std::vector<Entry> Entries;
};

/// Per-thread scratch for successor computation (dense counter array
/// plus a touched list for O(active) reset). The invariant between
/// calls is "every entry is -1".
struct SuccScratch {
  std::vector<int16_t> Counts;
  std::vector<uint32_t> Touched;
};

SuccScratch &succScratch() {
  thread_local SuccScratch S;
  return S;
}

/// The persistent counting-game arena for one (UCW, alphabet, budget).
/// Interned states, weighted move lists, and the still-overflowing move
/// list all survive bound escalation and repeated solve calls.
class GameArena {
public:
  GameArena(std::shared_ptr<const Nba> UcwPtr, const Alphabet &AB,
            size_t StateBudget)
      : UcwPtr(std::move(UcwPtr)), Ucw(*this->UcwPtr), AB(AB),
        StateBudget(StateBudget), Succ(Ucw, AB) {
    CountVector InitialCounts = {{Ucw.initial(), 0}};
    (void)internState(InitialCounts);
  }

  GameArena(const GameArena &) = delete;
  GameArena &operator=(const GameArena &) = delete;

  /// Extends exploration so every move of weight <= \p B is present.
  /// Returns false when the state budget is exhausted or \p Dl expired
  /// (verdict: Unknown; timedOut() distinguishes). With \p Pool,
  /// successor cells of a wave of frontier states are computed in
  /// parallel and merged in deterministic order; the arena is identical
  /// for every pool width. Deadline polls happen only at wave
  /// boundaries, where the arena is exactly a sequential-execution
  /// prefix: an interrupted extension can be resumed (or the arena
  /// reused) without breaking determinism.
  bool extendTo(unsigned B, SolverPool *Pool, const Deadline &Dl);

  /// Solves the bound-\p B safety game over the explored arena,
  /// seeding the fixpoint with winning certificates of bounds <= B and
  /// recording the result as the bound-B certificate. Requires a
  /// successful extendTo(B). Returns null when \p Dl expires
  /// mid-fixpoint; a partial fixpoint is an over-approximation of the
  /// winning region, so it is neither returned nor recorded as a
  /// certificate.
  const std::vector<char> *solve(unsigned B, const Deadline &Dl);

  /// Whether the last failed extendTo()/solve() was stopped by the
  /// deadline rather than the state budget.
  bool timedOut() const { return TimedOut; }

  /// Extracts the winning strategy at bound \p B. Requires
  /// initialWinning(solve(B)).
  MealyMachine extract(unsigned B, const std::vector<char> &Winning) const;

  bool initialWinning(const std::vector<char> &Winning) const {
    return !Winning.empty() && Winning[0];
  }

  size_t stateCount() const { return States.size(); }
  bool exhausted() const { return Exhausted; }

  /// True if serving \p Schedule would need a bound this exhausted
  /// arena can neither solve from its usable prefix nor extend to
  /// (extension already failed at a higher bound, but a *smaller*
  /// unexplored bound might still fit the budget from scratch).
  bool needsRebuildFor(const std::vector<unsigned> &Schedule) const {
    if (!Exhausted)
      return false;
    for (unsigned B : Schedule)
      if (static_cast<int64_t>(B) > ExploredBound &&
          static_cast<int64_t>(B) < ExhaustedBound)
        return true;
    return false;
  }

private:
  struct Move {
    uint32_t Out;
    uint32_t Target;
    uint32_t Weight;
  };
  struct OverflowMove {
    uint32_t S;
    uint32_t In;
    uint32_t Out;
  };

  /// Interns \p Counts, enqueueing new states for expansion. Returns
  /// nullopt when the state is new and the budget is already full (the
  /// arena never holds more than StateBudget states).
  std::optional<uint32_t> internState(const CountVector &Counts) {
    std::string Key = countKey(Counts);
    auto It = StateIds.find(Key);
    if (It != StateIds.end())
      return It->second;
    if (States.size() >= StateBudget)
      return std::nullopt;
    uint32_t Id = static_cast<uint32_t>(States.size());
    StateIds.emplace(std::move(Key), Id);
    States.push_back(Counts);
    Moves.emplace_back();
    Pending.push_back(Id);
    return Id;
  }

  void ensureSucc(const CountVector &Counts) {
    for (const auto &[Q, Count] : Counts) {
      (void)Count;
      if (!Succ.filled(Q))
        Succ.fill(Q);
    }
  }

  /// Successor counting state of (Counts, In, Out) with overflow cutoff
  /// \p Cutoff. Returns false if some counter would exceed the cutoff;
  /// otherwise fills \p Next (sorted by UCW state) and \p Weight (the
  /// largest counter produced -- the bound-independent legality
  /// threshold of this move). Requires successor-cache entries for
  /// every state in \p Counts; uses per-thread scratch only, so
  /// concurrent calls for different game states are safe.
  bool successor(const CountVector &Counts, uint32_t In, uint32_t Out,
                 unsigned Cutoff, CountVector &Next, uint32_t &Weight) const {
    SuccScratch &SS = succScratch();
    if (SS.Counts.size() < Ucw.stateCount())
      SS.Counts.resize(Ucw.stateCount(), -1);
    SS.Touched.clear();

    const size_t NumOutputs = AB.outputLetterCount();
    bool Overflowed = false;
    uint32_t MaxCount = 0;
    for (const auto &[Q, Count] : Counts) {
      const SuccessorCache::Entry &E = Succ.Entries[Q];
      auto [Offset, Length] = E.PerLetter[In * NumOutputs + Out];
      for (uint32_t I = Offset; I < Offset + Length; ++I) {
        auto [Target, Accepting] = E.Arena[I];
        int NewCount = Count + Accepting;
        if (NewCount > static_cast<int>(Cutoff)) {
          Overflowed = true;
          break;
        }
        if (SS.Counts[Target] < 0)
          SS.Touched.push_back(Target);
        if (SS.Counts[Target] < NewCount)
          SS.Counts[Target] = static_cast<int16_t>(NewCount);
        if (static_cast<uint32_t>(NewCount) > MaxCount)
          MaxCount = static_cast<uint32_t>(NewCount);
      }
      if (Overflowed)
        break;
    }

    if (!Overflowed) {
      std::sort(SS.Touched.begin(), SS.Touched.end());
      Next.clear();
      Next.reserve(SS.Touched.size());
      for (uint32_t T : SS.Touched)
        Next.emplace_back(T, static_cast<uint8_t>(SS.Counts[T]));
      Weight = MaxCount;
    }
    for (uint32_t T : SS.Touched)
      SS.Counts[T] = -1;
    return !Overflowed;
  }

  void insertMoveSorted(uint32_t S, uint32_t In, Move M) {
    std::vector<Move> &List = Moves[S][In];
    auto Pos = std::lower_bound(
        List.begin(), List.end(), M,
        [](const Move &A, const Move &B) { return A.Out < B.Out; });
    List.insert(Pos, M);
  }

  void markExhausted(unsigned B) {
    Exhausted = true;
    ExhaustedBound = B;
  }

  bool drainPending(unsigned B, SolverPool *Pool, const Deadline &Dl);

  std::shared_ptr<const Nba> UcwPtr;
  const Nba &Ucw;
  Alphabet AB; // Own copy: callers' alphabets are per-round temporaries.
  size_t StateBudget;
  SuccessorCache Succ;

  std::vector<CountVector> States;
  std::unordered_map<std::string, uint32_t> StateIds;
  /// Moves[state][input], sorted by output letter; only moves whose
  /// weight fit the explored bound are present.
  std::vector<std::vector<std::vector<Move>>> Moves;
  /// Moves that overflowed every cutoff tried so far, re-examined when
  /// the bound escalates.
  std::vector<OverflowMove> Overflow;
  /// Interned-but-unexpanded frontier (FIFO).
  std::deque<uint32_t> Pending;
  /// Highest bound fully explored; -1 = nothing expanded yet.
  int64_t ExploredBound = -1;
  bool Exhausted = false;
  int64_t ExhaustedBound = -1;

  /// Winning-region certificates: (bound, winning flags over the first
  /// |cert| arena states at solve time). Winning transfers upward in
  /// the bound, so any certificate of bound <= B pins states when
  /// solving bound B.
  std::vector<std::pair<unsigned, std::vector<char>>> Certificates;
  std::vector<char> CurrentWinning;
  /// Last failure cause: deadline (true) vs. state budget (false).
  bool TimedOut = false;
};

bool GameArena::extendTo(unsigned B, SolverPool *Pool, const Deadline &Dl) {
  TimedOut = false;
  if (Exhausted) {
    // The usable prefix (bounds <= ExploredBound) remains exact; any
    // further extension already failed the budget.
    return static_cast<int64_t>(B) <= ExploredBound;
  }
  if (static_cast<int64_t>(B) <= ExploredBound)
    return true;
  if (Dl.expired()) {
    // Poll only before the overflow re-examination mutates anything:
    // aborting mid-loop would leave duplicate moves on resume.
    TimedOut = true;
    return false;
  }

  // Re-examine previously overflowing moves at the new cutoff. Entries
  // whose source states were expanded earlier have their successor
  // cache rows filled already.
  std::vector<OverflowMove> Still;
  Still.reserve(Overflow.size());
  for (const OverflowMove &OM : Overflow) {
    CountVector Next;
    uint32_t Weight = 0;
    ensureSucc(States[OM.S]);
    if (!successor(States[OM.S], OM.In, OM.Out, B, Next, Weight)) {
      Still.push_back(OM);
      continue;
    }
    std::optional<uint32_t> Target = internState(Next);
    if (!Target) {
      markExhausted(B);
      return false;
    }
    insertMoveSorted(OM.S, OM.In, {OM.Out, *Target, Weight});
  }
  Overflow = std::move(Still);

  if (!drainPending(B, Pool, Dl))
    return false;
  ExploredBound = B;
  return true;
}

bool GameArena::drainPending(unsigned B, SolverPool *Pool,
                             const Deadline &Dl) {
  const size_t NumInputs = AB.inputLetterCount();
  const size_t NumOutputs = AB.outputLetterCount();
  const size_t Workers = Pool ? Pool->workerCount() : 0;
  // Wave size: how many frontier states are expanded per parallel
  // round. 1 (pure sequential) when no pool workers exist.
  const size_t WaveCap = Workers > 0 ? 256 : 1;

  struct Item {
    uint32_t In;
    uint32_t Out;
    uint32_t Weight;
    bool Legal;
    CountVector Next;
  };
  std::vector<uint32_t> Wave;
  std::vector<std::vector<Item>> WaveItems;
  std::vector<char> FillMark(Workers > 0 ? Ucw.stateCount() : 0, 0);

  while (!Pending.empty()) {
    if (Dl.expired()) {
      // Wave boundary: every popped wave is fully merged and Pending
      // holds the untouched frontier, i.e. the arena is exactly some
      // sequential-execution prefix. Safe to stop (and to resume).
      TimedOut = true;
      return false;
    }
    const size_t WaveLen = std::min(Pending.size(), WaveCap);
    Wave.assign(Pending.begin(), Pending.begin() + WaveLen);
    Pending.erase(Pending.begin(), Pending.begin() + WaveLen);

    if (Workers == 0) {
      // Sequential fast path: expand and merge one state at a time.
      uint32_t S = Wave[0];
      Moves[S].assign(NumInputs, {});
      ensureSucc(States[S]);
      CountVector Next;
      for (uint32_t In = 0; In < NumInputs; ++In) {
        for (uint32_t Out = 0; Out < NumOutputs; ++Out) {
          uint32_t Weight = 0;
          if (!successor(States[S], In, Out, B, Next, Weight)) {
            Overflow.push_back({S, In, static_cast<uint32_t>(Out)});
            continue;
          }
          std::optional<uint32_t> Target = internState(Next);
          if (!Target) {
            markExhausted(B);
            return false;
          }
          Moves[S][In].push_back({Out, *Target, Weight});
        }
      }
      continue;
    }

    // Phase 1: fill the successor-cache rows this wave needs. Each row
    // is an independent slot, so the fills fan out across the pool.
    std::vector<uint32_t> NeedFill;
    for (uint32_t S : Wave)
      for (const auto &[Q, Count] : States[S]) {
        (void)Count;
        if (!Succ.filled(Q) && !FillMark[Q]) {
          FillMark[Q] = 1;
          NeedFill.push_back(Q);
        }
      }
    if (!NeedFill.empty())
      Pool->forEach(NeedFill.size(),
                    [&](size_t I) { Succ.fill(NeedFill[I]); });
    for (uint32_t Q : NeedFill)
      FillMark[Q] = 0;

    // Phase 2: compute every (input, output) successor of every wave
    // state concurrently. Reads are confined to the (now filled)
    // successor cache and the immutable States prefix; writes go to
    // per-state buffers.
    WaveItems.assign(WaveLen, {});
    Pool->forEach(WaveLen, [&](size_t W) {
      uint32_t S = Wave[W];
      std::vector<Item> &Items = WaveItems[W];
      Items.reserve(NumInputs * NumOutputs);
      for (uint32_t In = 0; In < NumInputs; ++In)
        for (uint32_t Out = 0; Out < NumOutputs; ++Out) {
          Item It{In, Out, 0, false, {}};
          It.Legal = successor(States[S], In, Out, B, It.Next, It.Weight);
          Items.push_back(std::move(It));
        }
    });

    // Phase 3: merge sequentially in wave order. Interning order is
    // exactly the order the sequential path would produce, so state
    // ids -- and everything downstream -- are identical for every pool
    // width.
    for (size_t W = 0; W < WaveLen; ++W) {
      uint32_t S = Wave[W];
      Moves[S].assign(NumInputs, {});
      for (Item &It : WaveItems[W]) {
        if (!It.Legal) {
          Overflow.push_back({S, It.In, It.Out});
          continue;
        }
        std::optional<uint32_t> Target = internState(It.Next);
        if (!Target) {
          markExhausted(B);
          return false;
        }
        Moves[S][It.In].push_back({It.Out, *Target, It.Weight});
      }
    }
  }
  return true;
}

const std::vector<char> *GameArena::solve(unsigned B, const Deadline &Dl) {
  // Greatest fixpoint: a state is winning while for every input some
  // legal (weight <= B) output leads to a winning state. States covered
  // by a certificate of a smaller-or-equal bound are winning a priori
  // and pinned out of the iteration.
  TimedOut = false;
  CurrentWinning.assign(States.size(), 1);
  std::vector<char> Pinned(States.size(), 0);
  for (const auto &[CertBound, Cert] : Certificates) {
    if (CertBound > B)
      continue;
    for (size_t I = 0; I < Cert.size() && I < Pinned.size(); ++I)
      if (Cert[I])
        Pinned[I] = 1;
  }

  bool Changed = true;
  while (Changed) {
    if (Dl.expired()) {
      // A partially-converged gfp over-approximates the winning region:
      // unsound to report or to pin as a certificate. Drop it.
      TimedOut = true;
      return nullptr;
    }
    Changed = false;
    for (uint32_t S = 0; S < States.size(); ++S) {
      if (!CurrentWinning[S] || Pinned[S])
        continue;
      bool Safe = true;
      for (const std::vector<Move> &PerInput : Moves[S]) {
        bool SomeOutputWins = false;
        for (const Move &M : PerInput) {
          if (M.Weight <= B && CurrentWinning[M.Target]) {
            SomeOutputWins = true;
            break;
          }
        }
        if (!SomeOutputWins) {
          Safe = false;
          break;
        }
      }
      if (!Safe) {
        CurrentWinning[S] = 0;
        Changed = true;
      }
    }
  }

  for (auto &[CertBound, Cert] : Certificates)
    if (CertBound == B) {
      Cert = CurrentWinning;
      return &CurrentWinning;
    }
  Certificates.emplace_back(B, CurrentWinning);
  return &CurrentWinning;
}

MealyMachine GameArena::extract(unsigned B,
                                const std::vector<char> &Winning) const {
  const size_t NumInputs = AB.inputLetterCount();

  // Collect the winning states reachable under the least-output
  // strategy and renumber them densely (breadth-first from the initial
  // state: the numbering -- and therefore the machine -- does not
  // depend on arena state ids).
  std::unordered_map<uint32_t, uint32_t> Renumber;
  std::vector<uint32_t> Order;
  std::deque<uint32_t> Queue;
  Renumber.emplace(0, 0);
  Order.push_back(0);
  Queue.push_back(0);

  // Chosen move per (game state, input).
  std::vector<std::vector<uint32_t>> ChosenOutput;
  std::vector<std::vector<uint32_t>> ChosenTarget;

  while (!Queue.empty()) {
    uint32_t S = Queue.front();
    Queue.pop_front();
    for (uint32_t In = 0; In < NumInputs; ++In) {
      uint32_t PickedOutput = 0;
      uint32_t PickedTarget = 0;
      bool Found = false;
      for (const Move &M : Moves[S][In]) {
        if (M.Weight <= B && Winning[M.Target]) {
          PickedOutput = M.Out;
          PickedTarget = M.Target;
          Found = true;
          break;
        }
      }
      assert(Found && "winning state lost on some input");
      (void)Found;
      if (!Renumber.count(PickedTarget)) {
        Renumber.emplace(PickedTarget, static_cast<uint32_t>(Order.size()));
        Order.push_back(PickedTarget);
        Queue.push_back(PickedTarget);
      }
      if (ChosenOutput.size() < Order.size()) {
        ChosenOutput.resize(Order.size());
        ChosenTarget.resize(Order.size());
      }
      uint32_t Dense = Renumber.at(S);
      if (ChosenOutput[Dense].empty()) {
        ChosenOutput[Dense].assign(NumInputs, 0);
        ChosenTarget[Dense].assign(NumInputs, 0);
      }
      ChosenOutput[Dense][In] = PickedOutput;
      ChosenTarget[Dense][In] = Renumber.at(PickedTarget);
    }
  }

  MealyMachine M(Order.size(), NumInputs);
  M.setInitialState(0);
  for (uint32_t Dense = 0; Dense < Order.size(); ++Dense)
    for (uint32_t In = 0; In < NumInputs; ++In)
      M.setEdge(Dense, In, {ChosenOutput[Dense][In], ChosenTarget[Dense][In]});
  return M;
}

std::string limitsKey(const TableauLimits &Limits) {
  return "g" + std::to_string(Limits.MaxGeneralizedStates) + "t" +
         std::to_string(Limits.MaxTransitions);
}

} // namespace

struct SynthesisEngine::Impl {
  struct NbaEntry {
    std::shared_ptr<const Nba> Ucw;
    TableauStats Stats;
  };

  /// Caps chosen for a pipeline run's working set: a refinement loop
  /// touches a handful of distinct specifications, each with one arena
  /// per budget. Overflow drops everything (deterministic; entries are
  /// re-derivable).
  static constexpr size_t MaxNbas = 32;
  static constexpr size_t MaxArenas = 8;

  /// Cache keys render formulas and use Context-interned ids; an engine
  /// is bound to the first Context it sees.
  const Context *BoundCtx = nullptr;

  TableauCache ExpCache;
  std::unordered_map<std::string, NbaEntry> NbaCache;
  std::unordered_map<std::string, std::unique_ptr<GameArena>> Arenas;
  size_t NbaHits = 0;
  size_t NbaMisses = 0;

  SynthesisResult synthesize(const Formula *Spec, Context &Ctx,
                             const Alphabet &AB,
                             const SynthesisOptions &Options,
                             SolverPool *Pool);
};

SynthesisResult SynthesisEngine::Impl::synthesize(const Formula *Spec,
                                                  Context &Ctx,
                                                  const Alphabet &AB,
                                                  const SynthesisOptions &Options,
                                                  SolverPool *Pool) {
  SynthesisResult Result;

  if (BoundCtx && BoundCtx != &Ctx) {
    // A different Context invalidates every formula-id-based key.
    NbaCache.clear();
    Arenas.clear();
    ExpCache.clear();
    BoundCtx = nullptr;
  }
  if (!BoundCtx)
    BoundCtx = &Ctx;

  const bool Incremental = Options.Incremental;
  Timer NbaTimer;

  // The tableau inherits the phase deadline unless it carries its own.
  // The deadline never enters limitsKey (it cannot change a completed
  // automaton, and aborted builds are never cached).
  TableauLimits TabLimits = Options.Tableau;
  if (!TabLimits.Dl.armed())
    TabLimits.Dl = Options.Dl;

  // UCW = NBA of the negated specification.
  const Formula *Negated = Ctx.Formulas.notF(Spec);
  std::shared_ptr<const Nba> Ucw;
  std::string NbaKey;
  if (Incremental) {
    const Formula *Nnf = Ctx.Formulas.toNNF(Negated);
    NbaKey = AB.signatureKey() + "|" + limitsKey(Options.Tableau) + "|" +
             Nnf->str();
    auto It = NbaCache.find(NbaKey);
    if (It != NbaCache.end()) {
      ++NbaHits;
      Result.Stats.NbaCacheHit = true;
      Result.Stats.Tableau = It->second.Stats;
      Ucw = It->second.Ucw;
    } else {
      ++NbaMisses;
      size_t Hits0 = ExpCache.hits(), Misses0 = ExpCache.misses();
      TableauStats TS;
      Nba Built = buildNba(Negated, Ctx, AB, &TS, TabLimits, &ExpCache);
      Result.Stats.ExpansionCacheHits = ExpCache.hits() - Hits0;
      Result.Stats.ExpansionCacheMisses = ExpCache.misses() - Misses0;
      Result.Stats.Tableau = TS;
      Ucw = std::make_shared<const Nba>(std::move(Built));
      // Budget-exceeded automata are unusable artifacts: never cache.
      if (!TS.BudgetExceeded) {
        if (NbaCache.size() >= MaxNbas)
          NbaCache.clear();
        NbaCache.emplace(NbaKey, NbaEntry{Ucw, TS});
      }
    }
  } else {
    TableauStats TS;
    Nba Built = buildNba(Negated, Ctx, AB, &TS, TabLimits);
    Result.Stats.Tableau = TS;
    Ucw = std::make_shared<const Nba>(std::move(Built));
  }
  Result.Stats.NbaSeconds = NbaTimer.seconds();

  if (Result.Stats.Tableau.BudgetExceeded) {
    Result.Status = Realizability::Unknown;
    Result.Stats.TimedOut = Result.Stats.Tableau.TimedOut;
    return Result;
  }

  Timer GameTimer;
  GameArena *Arena = nullptr;
  std::unique_ptr<GameArena> Local;
  if (Incremental) {
    std::string ArenaKey = NbaKey + "|b" + std::to_string(Options.StateBudget);
    auto It = Arenas.find(ArenaKey);
    if (It != Arenas.end() &&
        It->second->needsRebuildFor(Options.BoundSchedule))
      Arenas.erase(It), It = Arenas.end();
    if (It == Arenas.end()) {
      if (Arenas.size() >= MaxArenas)
        Arenas.clear();
      It = Arenas
               .emplace(ArenaKey, std::make_unique<GameArena>(
                                      Ucw, AB, Options.StateBudget))
               .first;
    }
    Arena = It->second.get();
    // The fresh arena holds just the interned initial state; anything
    // beyond one state is reuse from an earlier call.
    Result.Stats.ArenaStatesReused =
        Arena->stateCount() > 1 ? Arena->stateCount() : 0;
  }

  for (unsigned Bound : Options.BoundSchedule) {
    if (!Incremental) {
      // Pre-incremental behavior: a fresh game per bound.
      Local = std::make_unique<GameArena>(Ucw, AB, Options.StateBudget);
      Arena = Local.get();
    }
    if (!Arena->extendTo(Bound, Pool, Options.Dl)) {
      Result.Status = Realizability::Unknown;
      Result.Stats.TimedOut = Arena->timedOut();
      Result.Stats.GameStates =
          std::max(Result.Stats.GameStates, Arena->stateCount());
      Result.Stats.GameSeconds = GameTimer.seconds();
      return Result;
    }
    const std::vector<char> *Winning = Arena->solve(Bound, Options.Dl);
    if (!Winning) {
      Result.Status = Realizability::Unknown;
      Result.Stats.TimedOut = true;
      Result.Stats.GameStates =
          std::max(Result.Stats.GameStates, Arena->stateCount());
      Result.Stats.GameSeconds = GameTimer.seconds();
      return Result;
    }
    if (Arena->initialWinning(*Winning)) {
      Result.Status = Realizability::Realizable;
      Result.Stats.BoundUsed = Bound;
      Result.Stats.GameStates = Arena->stateCount();
      Result.Machine = Arena->extract(Bound, *Winning);
      Result.Stats.GameSeconds = GameTimer.seconds();
      return Result;
    }
    Result.Stats.GameStates =
        std::max(Result.Stats.GameStates, Arena->stateCount());
  }
  Result.Status = Realizability::Unrealizable;
  Result.Stats.GameSeconds = GameTimer.seconds();
  return Result;
}

SynthesisEngine::SynthesisEngine() : I(new Impl) {}
SynthesisEngine::~SynthesisEngine() = default;

SynthesisResult SynthesisEngine::synthesize(const Formula *Spec, Context &Ctx,
                                            const Alphabet &AB,
                                            const SynthesisOptions &Options,
                                            SolverPool *Pool) {
  return I->synthesize(Spec, Ctx, AB, Options, Pool);
}

size_t SynthesisEngine::nbaCacheHits() const { return I->NbaHits; }
size_t SynthesisEngine::nbaCacheMisses() const { return I->NbaMisses; }
size_t SynthesisEngine::expansionCacheHits() const {
  return I->ExpCache.hits();
}
size_t SynthesisEngine::expansionCacheMisses() const {
  return I->ExpCache.misses();
}

void SynthesisEngine::clearCaches() {
  I->NbaCache.clear();
  I->Arenas.clear();
  I->ExpCache.clear();
  I->NbaHits = I->NbaMisses = 0;
  I->BoundCtx = nullptr;
}

SynthesisResult temos::synthesizeLtl(const Formula *Spec, Context &Ctx,
                                     const Alphabet &AB,
                                     const SynthesisOptions &Options) {
  SynthesisEngine Engine;
  return Engine.synthesize(Spec, Ctx, AB, Options, nullptr);
}

Realizability temos::checkRealizable(const Formula *Spec, Context &Ctx,
                                     const Alphabet &AB,
                                     const SynthesisOptions &Options) {
  return synthesizeLtl(Spec, Ctx, AB, Options).Status;
}
