//===- benchmarks/Runner.cpp - Shared benchmark harness --------------------===//

#include "benchmarks/Runner.h"

#include "codegen/CodeEmitter.h"
#include "logic/Parser.h"

#include <cstdio>

using namespace temos;

BenchmarkRun temos::runBenchmark(const BenchmarkSpec &B,
                                 const PipelineOptions &Options,
                                 unsigned Repeats) {
  BenchmarkRun Run;
  Run.Ctx = std::make_shared<Context>();
  Run.Row.Family = B.Family;
  Run.Row.Name = B.Name;

  auto Spec = parseSpecification(B.Source, *Run.Ctx);
  if (!Spec)
    return Run;
  Run.Spec = *Spec;
  Run.Row.Parsed = true;

  Synthesizer Synth(*Run.Ctx);
  Run.Result = Synth.run(Run.Spec, Options);
  for (unsigned I = 1; I < Repeats; ++I) {
    PipelineResult Again = Synth.run(Run.Spec, Options);
    Run.RepeatStats.push_back(Again.Stats);
  }

  const PipelineStats &S = Run.Result.Stats;
  Run.Row.Status = Run.Result.Status;
  Run.Row.SpecSize = S.SpecSize;
  Run.Row.PredicateCount = S.PredicateCount;
  Run.Row.UpdateTermCount = S.UpdateTermCount;
  Run.Row.AssumptionCount = S.AssumptionCount;
  Run.Row.PsiGenSeconds = S.PsiGenSeconds;
  Run.Row.SynthesisSeconds = S.SynthesisSeconds;
  Run.Row.SumSeconds = S.PsiGenSeconds + S.SynthesisSeconds;
  Run.Row.Refinements = S.Refinements;
  if (Run.Result.Machine) {
    std::string Js =
        emitJavaScript(*Run.Result.Machine, Run.Result.AB, Run.Spec);
    Run.Row.SynthesizedLoc = countLines(Js);
  }
  return Run;
}

std::string temos::formatTable(const std::vector<BenchmarkRow> &Rows) {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-18s %-14s %5s %4s %4s %5s %10s %9s %8s %6s %s\n",
                "Benchmark", "", "|phi|", "|P|", "|F|", "|psi|",
                "psi-gen(s)", "synth(s)", "sum(s)", "LoC", "status");
  Out += Line;
  Out += std::string(110, '-') + "\n";
  std::string LastFamily;
  for (const BenchmarkRow &R : Rows) {
    if (R.Family != LastFamily) {
      Out += R.Family + "\n";
      LastFamily = R.Family;
    }
    const char *Status = !R.Parsed ? "PARSE-ERROR"
                         : R.Status == Realizability::Realizable
                             ? "ok"
                             : (R.Status == Realizability::Unrealizable
                                    ? "UNREALIZABLE"
                                    : "UNKNOWN");
    std::snprintf(Line, sizeof(Line),
                  "%-18s %-14s %5zu %4zu %4zu %5zu %10.3f %9.3f %8.3f %6zu %s\n",
                  "", R.Name.c_str(), R.SpecSize, R.PredicateCount,
                  R.UpdateTermCount, R.AssumptionCount, R.PsiGenSeconds,
                  R.SynthesisSeconds, R.SumSeconds, R.SynthesizedLoc, Status);
    Out += Line;
  }
  return Out;
}
