//===- benchmarks/Runner.h - Shared benchmark harness ----------*- C++ -*-===//
///
/// \file
/// Runs one Table-1 benchmark end to end (parse -> pipeline -> codegen)
/// and collects the row data Table 1 reports. Shared by the bench
/// binaries, the integration tests and EXPERIMENTS.md generation.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_BENCHMARKS_RUNNER_H
#define TEMOS_BENCHMARKS_RUNNER_H

#include "benchmarks/Benchmarks.h"
#include "core/Synthesizer.h"

#include <memory>

namespace temos {

/// One Table-1 row as measured on this machine.
struct BenchmarkRow {
  std::string Family;
  std::string Name;
  bool Parsed = false;
  Realizability Status = Realizability::Unknown;
  size_t SpecSize = 0;        // |phi|
  size_t PredicateCount = 0;  // |P|
  size_t UpdateTermCount = 0; // |F|
  size_t AssumptionCount = 0; // |psi|
  double PsiGenSeconds = 0;
  double SynthesisSeconds = 0;
  double SumSeconds = 0;
  size_t SynthesizedLoc = 0;
  unsigned Refinements = 0;
};

/// Full result of one run, keeping the context alive for callers that
/// want the machine/alphabet (examples, Fig. 4 oracle).
struct BenchmarkRun {
  BenchmarkRow Row;
  std::shared_ptr<Context> Ctx;
  Specification Spec;
  /// First pipeline run (the Table-1 measurement).
  PipelineResult Result;
  /// Stats of runs 2..Repeats on the same Synthesizer; with the
  /// incremental engine these show the cross-run NBA/arena reuse the
  /// BENCH_*.json records carry.
  std::vector<PipelineStats> RepeatStats;
};

/// Parses and synthesizes benchmark \p B. \p Options tweaks the
/// pipeline (ablation benches). \p Repeats > 1 reruns the pipeline on
/// the same Synthesizer, filling RepeatStats.
BenchmarkRun runBenchmark(const BenchmarkSpec &B,
                          const PipelineOptions &Options = {},
                          unsigned Repeats = 1);

/// Formats rows as the Table 1 layout.
std::string formatTable(const std::vector<BenchmarkRow> &Rows);

} // namespace temos

#endif // TEMOS_BENCHMARKS_RUNNER_H
