//===- benchmarks/Benchmarks.h - The Table 1 benchmark suite ---*- C++ -*-===//
///
/// \file
/// Re-authored TSL-MT specifications for the paper's 16 benchmarks
/// (Table 1): four families (Music Synthesizer, Pong, Escalator, CPU
/// Scheduler) with four benchmarks each. The published specs live in the
/// temos repository and are not available offline; these versions mirror
/// their structure (same domains, same temporal/data coupling, |phi|,
/// |P| and |F| in the same regime) and are tuned to our bounded
/// synthesis engine. Shared by tests, the benches regenerating Table 1
/// and Fig. 4, and the examples.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_BENCHMARKS_BENCHMARKS_H
#define TEMOS_BENCHMARKS_BENCHMARKS_H

#include <string>
#include <vector>

namespace temos {

/// One named benchmark specification.
struct BenchmarkSpec {
  const char *Family;
  const char *Name;
  const char *Source;
};

/// All 16 Table-1 benchmarks, in the paper's row order.
const std::vector<BenchmarkSpec> &allBenchmarks();

/// Lookup by name; nullptr if unknown.
const BenchmarkSpec *findBenchmark(const std::string &Name);

} // namespace temos

#endif // TEMOS_BENCHMARKS_BENCHMARKS_H
