//===- benchmarks/BenchJson.h - Machine-readable bench results -*- C++ -*-===//
///
/// \file
/// Serializes one pipeline run into the "temos-bench-v1" JSON document
/// that `temos --bench-json` and the bench binaries emit as
/// BENCH_<name>.json. The schema (documented in docs/ARCHITECTURE.md)
/// carries the Table-1 phase timings plus the incremental-engine
/// counters (NBA/expansion/SMT cache traffic, per-reactive-invocation
/// reuse), so CI can gate on perf regressions without scraping the
/// human-readable summary -- which stays byte-stable on purpose.
///
//===----------------------------------------------------------------------===//

#ifndef TEMOS_BENCHMARKS_BENCHJSON_H
#define TEMOS_BENCHMARKS_BENCHJSON_H

#include "core/Synthesizer.h"

#include <string>

namespace temos {

/// Renders the temos-bench-v1 document for one run. \p MachineStates
/// and \p JsLoc are 0 when no machine was synthesized. A non-null
/// \p Repeat adds a "repeat" object with the stats of a second pipeline
/// run on the same engine -- the record that demonstrates cross-run
/// NBA/arena reuse (nba_cache.hits > 0, smaller game wall time).
std::string benchJson(const std::string &Name, Realizability Status,
                      unsigned Jobs, bool CacheEnabled,
                      const PipelineStats &Stats, size_t MachineStates,
                      size_t JsLoc, const PipelineStats *Repeat = nullptr);

/// "BENCH_<name>.json" with the name sanitized to [A-Za-z0-9_-].
std::string benchJsonFileName(const std::string &Name);

/// Writes \p Json to \p Dir / benchJsonFileName(\p Name) ("" = current
/// directory). Returns the path written, or the empty string on I/O
/// failure.
std::string writeBenchJson(const std::string &Dir, const std::string &Name,
                           const std::string &Json);

} // namespace temos

#endif // TEMOS_BENCHMARKS_BENCHJSON_H
