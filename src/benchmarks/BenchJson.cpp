//===- benchmarks/BenchJson.cpp - Machine-readable bench results -----------===//

#include "benchmarks/BenchJson.h"

#include <cctype>
#include <cstdio>
#include <fstream>

using namespace temos;

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

std::string jsonStr(const std::string &S) {
  std::string Out = "\"";
  appendEscaped(Out, S);
  return Out + "\"";
}

std::string jsonNum(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

const char *statusStr(Realizability S) {
  switch (S) {
  case Realizability::Realizable:
    return "realizable";
  case Realizability::Unrealizable:
    return "unrealizable";
  case Realizability::Unknown:
    return "unknown";
  }
  return "unknown";
}

} // namespace

namespace {

/// The per-run stats body shared by the top-level document and the
/// "repeat" object. \p Indent is the leading whitespace of each line;
/// the caller wraps the lines in braces.
std::string statsBody(const PipelineStats &S, const std::string &Indent) {
  std::string J;
  J += Indent + "\"phases\": {\"psi_gen_wall_s\": " + jsonNum(S.PsiGenSeconds) +
       ", \"psi_gen_cpu_s\": " + jsonNum(S.PsiGenCpuSeconds) +
       ", \"synthesis_wall_s\": " + jsonNum(S.SynthesisSeconds) +
       ", \"synthesis_cpu_s\": " + jsonNum(S.SynthesisCpuSeconds) + "},\n";
  J += Indent + "\"refinements\": " + std::to_string(S.Refinements) + ",\n";
  J += Indent + "\"reactive_runs\": " + std::to_string(S.ReactiveRuns) + ",\n";
  J += Indent + "\"game_states\": " + std::to_string(S.GameStates) + ",\n";
  J += Indent + "\"smt_cache\": {\"hits\": " + std::to_string(S.CacheHits) +
       ", \"misses\": " + std::to_string(S.CacheMisses) +
       ", \"evictions\": " + std::to_string(S.CacheEvictions) + "},\n";
  J += Indent + "\"nba_cache\": {\"hits\": " + std::to_string(S.NbaCacheHits) +
       ", \"misses\": " + std::to_string(S.NbaCacheMisses) + "},\n";
  J += Indent + "\"expansion_cache\": {\"hits\": " +
       std::to_string(S.ExpansionCacheHits) +
       ", \"misses\": " + std::to_string(S.ExpansionCacheMisses) + "},\n";
  J += Indent + "\"reactive\": [";
  for (size_t I = 0; I < S.ReactiveDetail.size(); ++I) {
    const ReactiveRunStats &R = S.ReactiveDetail[I];
    J += I == 0 ? "\n" : ",\n";
    J += Indent + "  {\"round\": " + std::to_string(R.Round) +
         ", \"status\": " + jsonStr(statusStr(R.Status)) +
         ", \"bound\": " + std::to_string(R.BoundUsed) +
         ", \"nba_cache_hit\": " + (R.NbaCacheHit ? "true" : "false") +
         ", \"arena_states_reused\": " + std::to_string(R.ArenaStatesReused) +
         ", \"game_states\": " + std::to_string(R.GameStates) +
         ", \"nba_wall_s\": " + jsonNum(R.NbaSeconds) +
         ", \"game_wall_s\": " + jsonNum(R.GameSeconds) + "}";
  }
  J += S.ReactiveDetail.empty() ? "]" : "\n" + Indent + "]";
  J += ",\n";
  // Always present (empty on a clean run), so consumers can gate on
  // degraded runs without probing for the key.
  J += Indent + "\"failures\": [";
  for (size_t I = 0; I < S.Failures.size(); ++I) {
    const FailureRecord &F = S.Failures[I];
    J += I == 0 ? "\n" : ",\n";
    J += Indent + "  {\"kind\": " + jsonStr(failureKindName(F.Kind)) +
         ", \"phase\": " + jsonStr(F.Phase) +
         ", \"detail\": " + jsonStr(F.Detail) + "}";
  }
  J += S.Failures.empty() ? "]" : "\n" + Indent + "]";
  return J;
}

} // namespace

std::string temos::benchJson(const std::string &Name, Realizability Status,
                             unsigned Jobs, bool CacheEnabled,
                             const PipelineStats &S, size_t MachineStates,
                             size_t JsLoc, const PipelineStats *Repeat) {
  std::string J = "{\n";
  J += "  \"schema\": \"temos-bench-v1\",\n";
  J += "  \"name\": " + jsonStr(Name) + ",\n";
  J += "  \"status\": " + jsonStr(statusStr(Status)) + ",\n";
  J += "  \"jobs\": " + std::to_string(Jobs) + ",\n";
  J += std::string("  \"cache\": ") + (CacheEnabled ? "true" : "false") + ",\n";
  J += "  \"spec\": {\"phi\": " + std::to_string(S.SpecSize) +
       ", \"predicates\": " + std::to_string(S.PredicateCount) +
       ", \"updates\": " + std::to_string(S.UpdateTermCount) +
       ", \"assumptions\": " + std::to_string(S.AssumptionCount) + "},\n";
  J += statsBody(S, "  ") + ",\n";
  if (Repeat) {
    J += "  \"repeat\": {\n";
    J += statsBody(*Repeat, "    ") + "\n";
    J += "  },\n";
  }
  J += "  \"machine_states\": " + std::to_string(MachineStates) + ",\n";
  J += "  \"js_loc\": " + std::to_string(JsLoc) + "\n";
  J += "}\n";
  return J;
}

std::string temos::benchJsonFileName(const std::string &Name) {
  std::string Safe;
  for (char C : Name)
    Safe += (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
             C == '-')
                ? C
                : '_';
  return "BENCH_" + Safe + ".json";
}

std::string temos::writeBenchJson(const std::string &Dir,
                                  const std::string &Name,
                                  const std::string &Json) {
  std::string Path = Dir.empty() ? benchJsonFileName(Name)
                                 : Dir + "/" + benchJsonFileName(Name);
  std::ofstream Out(Path);
  if (!Out)
    return "";
  Out << Json;
  Out.close();
  return Out ? Path : "";
}
