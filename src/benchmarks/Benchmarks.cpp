//===- benchmarks/Benchmarks.cpp - The Table 1 benchmark suite -------------===//

#include "benchmarks/Benchmarks.h"

using namespace temos;

namespace {

//===----------------------------------------------------------------------===//
// Music Synthesizer (Sec. 5.3; Fig. 5 shows the published Vibrato spec).
//===----------------------------------------------------------------------===//

/// Fig. 5: the LFO toggles around the frequency threshold c10(); turning
/// it off raises the frequency, turning it on lowers it, and both states
/// must recur forever.
const char *VibratoSrc = R"(
#RA#
spec Vibrato
cells { real lfoFreq = 0; bool lfo; }
always guarantee {
  G F [lfo <- True()];
  G F [lfo <- False()];
  lfoFreq <= c10() -> [lfo <- False()] U lfoFreq > c10();
  lfoFreq > c10() -> [lfo <- True()] U lfoFreq <= c10();
  [lfo <- False()] -> [lfoFreq <- lfoFreq + c1()];
  [lfo <- True()] -> [lfoFreq <- lfoFreq - c1()];
}
)";

/// FM modulation: like the LFO but on the modulation depth, plus a note
/// input that demands modulation on high notes.
const char *ModulationSrc = R"(
#RA#
spec Modulation
inputs { real note; }
cells { real depth = 0; bool mod; }
always guarantee {
  G F [mod <- True()];
  G F [mod <- False()];
  depth <= c5() -> [mod <- False()] U depth > c5();
  depth > c5() -> [mod <- True()] U depth <= c5();
  [mod <- False()] -> [depth <- depth + c1()];
  [mod <- True()] -> [depth <- depth - c1()];
  G (note > c60() -> F [mod <- True()]);
}
)";

/// Vibrato and modulation intertwined: the LFO oscillator drives its
/// frequency, the modulation depth follows the mod flag, and the two
/// effect flags must never be raised simultaneously.
const char *IntertwinedSrc = R"(
#RA#
spec Intertwined
cells { real lfoFreq = 0; real depth = 0; bool lfo; bool mod; }
always guarantee {
  G F [lfo <- True()];
  G F [mod <- True()];
  lfoFreq <= c10() -> [lfo <- False()] U lfoFreq > c10();
  lfoFreq > c10() -> [lfo <- True()] U lfoFreq <= c10();
  [lfo <- False()] -> [lfoFreq <- lfoFreq + c1()];
  [lfo <- True()] -> [lfoFreq <- lfoFreq - c1()];
  G (! ([lfo <- True()] && [mod <- True()]));
  G ([mod <- True()] -> [depth <- depth + c1()]);
  G ([mod <- False()] -> [depth <- depth - c1()]);
}
)";

/// Three independent effect parameters, each with threshold-crossing
/// liveness; the largest music benchmark and the slowest row of the
/// family in the paper.
const char *MultiEffectSrc = R"(
#RA#
spec MultiEffect
cells { real lfoFreq = 0; real depth = 0; real echo = 0;
        bool lfo; bool mod; bool del; }
always guarantee {
  G F [lfo <- True()];
  G F [mod <- True()];
  G F [del <- True()];
  lfoFreq <= c10() -> [lfo <- False()] U lfoFreq > c10();
  lfoFreq > c10() -> [lfo <- True()] U lfoFreq <= c10();
  [lfo <- False()] -> [lfoFreq <- lfoFreq + c1()];
  [lfo <- True()] -> [lfoFreq <- lfoFreq - c1()];
  G ([mod <- True()] -> [depth <- depth + c1()]);
  G ([mod <- False()] -> [depth <- depth - c1()]);
  G ([del <- True()] -> [echo <- echo + c1()]);
  G ([del <- False()] -> [echo <- echo - c1()]);
  G (! ([lfo <- True()] && [mod <- True()]));
  G (! ([mod <- True()] && [del <- True()]));
}
)";

//===----------------------------------------------------------------------===//
// Pong.
//===----------------------------------------------------------------------===//

/// Single-player: the paddle must track the ball inside the court.
const char *PongSingleSrc = R"(
#LIA#
spec PongSingle
inputs { int ball; }
cells { int paddle = 0; }
always assume { ball >= c0(); ball <= c9(); }
always guarantee {
  [paddle <- paddle + 1] || [paddle <- paddle - 1] || [paddle <- paddle];
  G (paddle < ball -> ! [paddle <- paddle - 1]);
  paddle < ball -> F (paddle >= c9() || ! (paddle < ball));
}
)";

/// Two-player: two independent paddles, each tracking the ball.
const char *PongTwoSrc = R"(
#LIA#
spec PongTwo
inputs { int ball; }
cells { int left = 0; int right = 0; }
always assume { ball >= c0(); ball <= c9(); }
always guarantee {
  [left <- left + 1] || [left <- left - 1] || [left <- left];
  [right <- right + 1] || [right <- right - 1] || [right <- right];
  G (left < ball -> ! [left <- left - 1]);
  G (ball < right -> ! [right <- right + 1]);
  left < ball -> F (left >= c9() || ! (left < ball));
}
)";

/// Bouncing ball: the position oscillates between the two walls forever.
const char *PongBouncingSrc = R"(
#LIA#
spec PongBouncing
cells { int bally = 0; }
always guarantee {
  [bally <- bally + 1] || [bally <- bally - 1];
  bally <= c0() -> F (bally >= c8());
  bally >= c8() -> F (bally <= c0());
  G (bally <= c0() -> ! [bally <- bally - 1]);
  G (bally >= c8() -> ! [bally <- bally + 1]);
}
)";

/// Automatic: paddle tracking plus a score counter fed by hits.
const char *PongAutomaticSrc = R"(
#LIA#
spec PongAutomatic
inputs { int ball; }
cells { int paddle = 0; int score = 0; }
always assume { ball >= c0(); ball <= c9(); }
always guarantee {
  [paddle <- paddle + 1] || [paddle <- paddle - 1] || [paddle <- paddle];
  G (paddle < ball -> ! [paddle <- paddle - 1]);
  G (paddle = ball -> [score <- score + 1]);
  G (! (paddle = ball) -> [score <- score]);
  paddle < ball -> F (paddle >= c9() || ! (paddle < ball));
}
)";

//===----------------------------------------------------------------------===//
// Escalator (the paper's Fig. 4 caption calls this family "Elevator").
//===----------------------------------------------------------------------===//

/// Simple: the motor runs exactly while a rider requests it.
const char *EscalatorSimpleSrc = R"(
#LIA#
spec EscalatorSimple
inputs { bool request; }
cells { int motor = 0; }
always guarantee {
  G (request -> [motor <- c1()]);
  G (! request -> [motor <- c0()]);
}
)";

/// Counting: maintain the rider count from enter/leave events.
const char *EscalatorCountingSrc = R"(
#LIA#
spec EscalatorCounting
inputs { bool enter, leave; }
cells { int count = 0; }
always guarantee {
  G (enter && ! leave -> [count <- count + 1]);
  G (leave && ! enter -> [count <- count - 1]);
  G ((enter && leave) || (! enter && ! leave) -> [count <- count]);
}
)";

/// Bidirectional: count riders and drive the direction from requests.
const char *EscalatorBidirectionalSrc = R"(
#LIA#
spec EscalatorBidirectional
inputs { bool up, down; bool enter, leave; }
cells { int dir = 0; int count = 0; }
always guarantee {
  G (up && ! down -> [dir <- c1()]);
  G (down && ! up -> [dir <- 0 - c1()]);
  G (! up && ! down -> [dir <- c0()]);
  G (enter && ! leave -> [count <- count + 1]);
  G (leave && ! enter -> [count <- count - 1]);
  G ((enter && leave) || (! enter && ! leave) -> [count <- count]);
}
)";

/// Smart: an idle timer parks the escalator after five quiet steps; if
/// requests stop forever, the timer must eventually expire.
const char *EscalatorSmartSrc = R"(
#LIA#
spec EscalatorSmart
inputs { bool request; }
cells { int idle = 0; int motor = 0; }
always guarantee {
  G (request -> [idle <- c0()]);
  G (! request -> [idle <- idle + 1]);
  G (request -> [motor <- c1()]);
  G (idle >= c5() && ! request -> [motor <- c0()]);
}
guarantee {
  F request || F (idle >= c5());
}
)";

//===----------------------------------------------------------------------===//
// CPU Scheduler (Sec. 2 and Sec. 5.4).
//===----------------------------------------------------------------------===//

/// Round robin over two tasks, with a free-running lag counter that
/// must keep returning below zero.
const char *RoundRobinSrc = R"(
#LIA#
spec RoundRobin
inputs { opaque task1, task2; }
outputs { opaque next; }
cells { int lag = 0; }
always guarantee {
  [next <- task1] || [next <- task2];
  [next <- task1] -> X [next <- task2];
  [next <- task2] -> X [next <- task1];
  G F [next <- task1];
  G F [next <- task2];
  [lag <- lag + 1] || [lag <- lag - 1];
  lag > c0() -> F (lag <= c0());
}
)";

/// Load balancer: jobs go to the shorter queue.
const char *LoadBalancerSrc = R"(
#LIA#
spec LoadBalancer
outputs { opaque next; }
cells { int q1 = 0; int q2 = 0; }
functions { opaque one(); opaque two(); }
always guarantee {
  [next <- one()] || [next <- two()];
  G (q1 < q2 -> ! [next <- two()]);
  G (q2 < q1 -> ! [next <- one()]);
  G ([next <- one()] <-> [q1 <- q1 + 1]);
  G ([next <- two()] <-> [q2 <- q2 + 1]);
  q1 < q2 -> F ! (q1 < q2);
  q2 < q1 -> F ! (q2 < q1);
}
)";

/// Preemptive: urgent work preempts task2, but under fair urgency task2
/// still runs infinitely often and the time slice keeps resetting.
const char *PreemptiveSrc = R"(
#LIA#
spec Preemptive
inputs { opaque task1, task2; bool urgent; }
outputs { opaque next; }
cells { int slice = 0; }
always assume {
  F ! urgent;
}
always guarantee {
  [next <- task1] || [next <- task2];
  G (urgent -> [next <- task1]);
  G F [next <- task2];
  [slice <- slice + 1] || [slice <- c0()];
  slice >= c4() -> F (slice < c4());
}
)";

/// The Completely Fair Scheduler of Fig. 2 (two tasks, constant
/// weights, task2 permanently runnable; see DESIGN.md for the
/// substitutions).
const char *CfsSrc = R"(
#LIA#
spec CFS
inputs { opaque task1, task2; bool enq1, deq1; }
outputs { opaque next; }
cells { int vr1 = 0; int vr2 = 0; }
functions { opaque idle(); }
always guarantee {
  [next <- task1] || [next <- task2] || [next <- idle()];
  G (enq1 -> F ([next <- task1] || deq1));
  G (deq1 -> (! [next <- task1]) W enq1);
  G ([next <- task1] <-> [vr1 <- vr1 + c2()]);
  G ([next <- task2] <-> [vr2 <- vr2 + c3()]);
  G (vr1 < vr2 -> ! [next <- task2]);
  G (vr2 < vr1 -> ! [next <- task1]);
}
)";

const std::vector<BenchmarkSpec> Registry = {
    {"Music Synthesizer", "Vibrato", VibratoSrc},
    {"Music Synthesizer", "Modulation", ModulationSrc},
    {"Music Synthesizer", "Intertwined", IntertwinedSrc},
    {"Music Synthesizer", "Multi-effect", MultiEffectSrc},
    {"Pong", "Single-Player", PongSingleSrc},
    {"Pong", "Two-Player", PongTwoSrc},
    {"Pong", "Bouncing", PongBouncingSrc},
    {"Pong", "Automatic", PongAutomaticSrc},
    {"Escalator", "Simple", EscalatorSimpleSrc},
    {"Escalator", "Counting", EscalatorCountingSrc},
    {"Escalator", "Bidirectional", EscalatorBidirectionalSrc},
    {"Escalator", "Smart", EscalatorSmartSrc},
    {"CPU Scheduler", "Round Robin", RoundRobinSrc},
    {"CPU Scheduler", "Load Balancer", LoadBalancerSrc},
    {"CPU Scheduler", "Preemptive", PreemptiveSrc},
    {"CPU Scheduler", "CFS", CfsSrc},
};

} // namespace

const std::vector<BenchmarkSpec> &temos::allBenchmarks() { return Registry; }

const BenchmarkSpec *temos::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &B : Registry)
    if (Name == B.Name)
      return &B;
  return nullptr;
}
