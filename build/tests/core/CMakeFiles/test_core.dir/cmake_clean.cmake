file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/AssumptionCoreTest.cpp.o"
  "CMakeFiles/test_core.dir/AssumptionCoreTest.cpp.o.d"
  "CMakeFiles/test_core.dir/AssumptionGeneratorTest.cpp.o"
  "CMakeFiles/test_core.dir/AssumptionGeneratorTest.cpp.o.d"
  "CMakeFiles/test_core.dir/ConsistencyCheckerTest.cpp.o"
  "CMakeFiles/test_core.dir/ConsistencyCheckerTest.cpp.o.d"
  "CMakeFiles/test_core.dir/DecompositionTest.cpp.o"
  "CMakeFiles/test_core.dir/DecompositionTest.cpp.o.d"
  "CMakeFiles/test_core.dir/GoldenPipelineTest.cpp.o"
  "CMakeFiles/test_core.dir/GoldenPipelineTest.cpp.o.d"
  "CMakeFiles/test_core.dir/SynthesizerTest.cpp.o"
  "CMakeFiles/test_core.dir/SynthesizerTest.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
