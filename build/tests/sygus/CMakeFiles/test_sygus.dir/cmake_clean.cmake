file(REMOVE_RECURSE
  "CMakeFiles/test_sygus.dir/GrammarTest.cpp.o"
  "CMakeFiles/test_sygus.dir/GrammarTest.cpp.o.d"
  "CMakeFiles/test_sygus.dir/ProgramTest.cpp.o"
  "CMakeFiles/test_sygus.dir/ProgramTest.cpp.o.d"
  "CMakeFiles/test_sygus.dir/SygusSolverTest.cpp.o"
  "CMakeFiles/test_sygus.dir/SygusSolverTest.cpp.o.d"
  "test_sygus"
  "test_sygus.pdb"
  "test_sygus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sygus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
