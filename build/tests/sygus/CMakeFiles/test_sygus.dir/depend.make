# Empty dependencies file for test_sygus.
# This may be replaced when dependencies are built.
