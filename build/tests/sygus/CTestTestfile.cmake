# CMake generated Testfile for 
# Source directory: /root/repo/tests/sygus
# Build directory: /root/repo/build/tests/sygus
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sygus/test_sygus[1]_include.cmake")
