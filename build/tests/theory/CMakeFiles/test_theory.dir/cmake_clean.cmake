file(REMOVE_RECURSE
  "CMakeFiles/test_theory.dir/CongruenceClosureTest.cpp.o"
  "CMakeFiles/test_theory.dir/CongruenceClosureTest.cpp.o.d"
  "CMakeFiles/test_theory.dir/EvaluatorTest.cpp.o"
  "CMakeFiles/test_theory.dir/EvaluatorTest.cpp.o.d"
  "CMakeFiles/test_theory.dir/LinearExprTest.cpp.o"
  "CMakeFiles/test_theory.dir/LinearExprTest.cpp.o.d"
  "CMakeFiles/test_theory.dir/SimplexTest.cpp.o"
  "CMakeFiles/test_theory.dir/SimplexTest.cpp.o.d"
  "CMakeFiles/test_theory.dir/SmtSolverTest.cpp.o"
  "CMakeFiles/test_theory.dir/SmtSolverTest.cpp.o.d"
  "test_theory"
  "test_theory.pdb"
  "test_theory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
