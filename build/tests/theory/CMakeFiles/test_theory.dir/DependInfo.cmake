
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/theory/CongruenceClosureTest.cpp" "tests/theory/CMakeFiles/test_theory.dir/CongruenceClosureTest.cpp.o" "gcc" "tests/theory/CMakeFiles/test_theory.dir/CongruenceClosureTest.cpp.o.d"
  "/root/repo/tests/theory/EvaluatorTest.cpp" "tests/theory/CMakeFiles/test_theory.dir/EvaluatorTest.cpp.o" "gcc" "tests/theory/CMakeFiles/test_theory.dir/EvaluatorTest.cpp.o.d"
  "/root/repo/tests/theory/LinearExprTest.cpp" "tests/theory/CMakeFiles/test_theory.dir/LinearExprTest.cpp.o" "gcc" "tests/theory/CMakeFiles/test_theory.dir/LinearExprTest.cpp.o.d"
  "/root/repo/tests/theory/SimplexTest.cpp" "tests/theory/CMakeFiles/test_theory.dir/SimplexTest.cpp.o" "gcc" "tests/theory/CMakeFiles/test_theory.dir/SimplexTest.cpp.o.d"
  "/root/repo/tests/theory/SmtSolverTest.cpp" "tests/theory/CMakeFiles/test_theory.dir/SmtSolverTest.cpp.o" "gcc" "tests/theory/CMakeFiles/test_theory.dir/SmtSolverTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/theory/CMakeFiles/temos_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
