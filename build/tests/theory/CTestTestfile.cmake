# CMake generated Testfile for 
# Source directory: /root/repo/tests/theory
# Build directory: /root/repo/build/tests/theory
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/theory/test_theory[1]_include.cmake")
