# CMake generated Testfile for 
# Source directory: /root/repo/tests/benchmarks
# Build directory: /root/repo/build/tests/benchmarks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/benchmarks/test_benchmarks[1]_include.cmake")
