# CMake generated Testfile for 
# Source directory: /root/repo/tests/automata
# Build directory: /root/repo/build/tests/automata
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/automata/test_automata[1]_include.cmake")
