file(REMOVE_RECURSE
  "CMakeFiles/test_automata.dir/NbaTest.cpp.o"
  "CMakeFiles/test_automata.dir/NbaTest.cpp.o.d"
  "CMakeFiles/test_automata.dir/TableauTest.cpp.o"
  "CMakeFiles/test_automata.dir/TableauTest.cpp.o.d"
  "test_automata"
  "test_automata.pdb"
  "test_automata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
