# CMake generated Testfile for 
# Source directory: /root/repo/tests/tools
# Build directory: /root/repo/build/tests/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tools/test_cli[1]_include.cmake")
