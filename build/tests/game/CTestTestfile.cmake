# CMake generated Testfile for 
# Source directory: /root/repo/tests/game
# Build directory: /root/repo/build/tests/game
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/game/test_game[1]_include.cmake")
