# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("logic")
subdirs("theory")
subdirs("sygus")
subdirs("tsl2ltl")
subdirs("automata")
subdirs("game")
subdirs("codegen")
subdirs("core")
subdirs("benchmarks")
subdirs("property")
subdirs("tools")
