# CMake generated Testfile for 
# Source directory: /root/repo/tests/tsl2ltl
# Build directory: /root/repo/build/tests/tsl2ltl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tsl2ltl/test_tsl2ltl[1]_include.cmake")
