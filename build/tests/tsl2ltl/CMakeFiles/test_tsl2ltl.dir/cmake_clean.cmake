file(REMOVE_RECURSE
  "CMakeFiles/test_tsl2ltl.dir/AlphabetTest.cpp.o"
  "CMakeFiles/test_tsl2ltl.dir/AlphabetTest.cpp.o.d"
  "CMakeFiles/test_tsl2ltl.dir/TlsfExporterTest.cpp.o"
  "CMakeFiles/test_tsl2ltl.dir/TlsfExporterTest.cpp.o.d"
  "test_tsl2ltl"
  "test_tsl2ltl.pdb"
  "test_tsl2ltl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tsl2ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
