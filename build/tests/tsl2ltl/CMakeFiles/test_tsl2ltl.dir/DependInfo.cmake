
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tsl2ltl/AlphabetTest.cpp" "tests/tsl2ltl/CMakeFiles/test_tsl2ltl.dir/AlphabetTest.cpp.o" "gcc" "tests/tsl2ltl/CMakeFiles/test_tsl2ltl.dir/AlphabetTest.cpp.o.d"
  "/root/repo/tests/tsl2ltl/TlsfExporterTest.cpp" "tests/tsl2ltl/CMakeFiles/test_tsl2ltl.dir/TlsfExporterTest.cpp.o" "gcc" "tests/tsl2ltl/CMakeFiles/test_tsl2ltl.dir/TlsfExporterTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
