# Empty dependencies file for test_tsl2ltl.
# This may be replaced when dependencies are built.
