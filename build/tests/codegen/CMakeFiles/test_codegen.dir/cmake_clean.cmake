file(REMOVE_RECURSE
  "CMakeFiles/test_codegen.dir/CodeEmitterTest.cpp.o"
  "CMakeFiles/test_codegen.dir/CodeEmitterTest.cpp.o.d"
  "CMakeFiles/test_codegen.dir/CppDifferentialTest.cpp.o"
  "CMakeFiles/test_codegen.dir/CppDifferentialTest.cpp.o.d"
  "CMakeFiles/test_codegen.dir/InterpreterTest.cpp.o"
  "CMakeFiles/test_codegen.dir/InterpreterTest.cpp.o.d"
  "CMakeFiles/test_codegen.dir/JsDifferentialTest.cpp.o"
  "CMakeFiles/test_codegen.dir/JsDifferentialTest.cpp.o.d"
  "CMakeFiles/test_codegen.dir/TraceCheckerTest.cpp.o"
  "CMakeFiles/test_codegen.dir/TraceCheckerTest.cpp.o.d"
  "test_codegen"
  "test_codegen.pdb"
  "test_codegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
