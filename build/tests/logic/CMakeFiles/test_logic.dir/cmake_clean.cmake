file(REMOVE_RECURSE
  "CMakeFiles/test_logic.dir/FormulaTest.cpp.o"
  "CMakeFiles/test_logic.dir/FormulaTest.cpp.o.d"
  "CMakeFiles/test_logic.dir/ParserTest.cpp.o"
  "CMakeFiles/test_logic.dir/ParserTest.cpp.o.d"
  "CMakeFiles/test_logic.dir/SimplifyTest.cpp.o"
  "CMakeFiles/test_logic.dir/SimplifyTest.cpp.o.d"
  "CMakeFiles/test_logic.dir/TermTest.cpp.o"
  "CMakeFiles/test_logic.dir/TermTest.cpp.o.d"
  "test_logic"
  "test_logic.pdb"
  "test_logic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
