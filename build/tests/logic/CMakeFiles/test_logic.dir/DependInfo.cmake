
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/logic/FormulaTest.cpp" "tests/logic/CMakeFiles/test_logic.dir/FormulaTest.cpp.o" "gcc" "tests/logic/CMakeFiles/test_logic.dir/FormulaTest.cpp.o.d"
  "/root/repo/tests/logic/ParserTest.cpp" "tests/logic/CMakeFiles/test_logic.dir/ParserTest.cpp.o" "gcc" "tests/logic/CMakeFiles/test_logic.dir/ParserTest.cpp.o.d"
  "/root/repo/tests/logic/SimplifyTest.cpp" "tests/logic/CMakeFiles/test_logic.dir/SimplifyTest.cpp.o" "gcc" "tests/logic/CMakeFiles/test_logic.dir/SimplifyTest.cpp.o.d"
  "/root/repo/tests/logic/TermTest.cpp" "tests/logic/CMakeFiles/test_logic.dir/TermTest.cpp.o" "gcc" "tests/logic/CMakeFiles/test_logic.dir/TermTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
