file(REMOVE_RECURSE
  "CMakeFiles/ablation_eager_lazy.dir/ablation_eager_lazy.cpp.o"
  "CMakeFiles/ablation_eager_lazy.dir/ablation_eager_lazy.cpp.o.d"
  "ablation_eager_lazy"
  "ablation_eager_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
