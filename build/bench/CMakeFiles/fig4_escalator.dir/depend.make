# Empty dependencies file for fig4_escalator.
# This may be replaced when dependencies are built.
