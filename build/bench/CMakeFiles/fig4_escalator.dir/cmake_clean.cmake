file(REMOVE_RECURSE
  "CMakeFiles/fig4_escalator.dir/fig4_escalator.cpp.o"
  "CMakeFiles/fig4_escalator.dir/fig4_escalator.cpp.o.d"
  "fig4_escalator"
  "fig4_escalator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_escalator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
