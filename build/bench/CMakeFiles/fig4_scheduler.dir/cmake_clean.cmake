file(REMOVE_RECURSE
  "CMakeFiles/fig4_scheduler.dir/fig4_scheduler.cpp.o"
  "CMakeFiles/fig4_scheduler.dir/fig4_scheduler.cpp.o.d"
  "fig4_scheduler"
  "fig4_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
