# Empty dependencies file for fig4_scheduler.
# This may be replaced when dependencies are built.
