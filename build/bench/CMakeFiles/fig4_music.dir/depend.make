# Empty dependencies file for fig4_music.
# This may be replaced when dependencies are built.
