file(REMOVE_RECURSE
  "CMakeFiles/fig4_music.dir/fig4_music.cpp.o"
  "CMakeFiles/fig4_music.dir/fig4_music.cpp.o.d"
  "fig4_music"
  "fig4_music.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
