
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_music.cpp" "bench/CMakeFiles/fig4_music.dir/fig4_music.cpp.o" "gcc" "bench/CMakeFiles/fig4_music.dir/fig4_music.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmarks/CMakeFiles/temos_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/temos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sygus/CMakeFiles/temos_sygus.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/temos_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/game/CMakeFiles/temos_game.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/temos_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/temos_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
