# Empty dependencies file for fig4_pong.
# This may be replaced when dependencies are built.
