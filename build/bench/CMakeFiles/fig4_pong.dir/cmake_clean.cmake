file(REMOVE_RECURSE
  "CMakeFiles/fig4_pong.dir/fig4_pong.cpp.o"
  "CMakeFiles/fig4_pong.dir/fig4_pong.cpp.o.d"
  "fig4_pong"
  "fig4_pong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
