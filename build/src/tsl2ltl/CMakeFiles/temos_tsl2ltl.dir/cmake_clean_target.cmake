file(REMOVE_RECURSE
  "libtemos_tsl2ltl.a"
)
