
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tsl2ltl/Alphabet.cpp" "src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/Alphabet.cpp.o" "gcc" "src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/Alphabet.cpp.o.d"
  "/root/repo/src/tsl2ltl/TlsfExporter.cpp" "src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/TlsfExporter.cpp.o" "gcc" "src/tsl2ltl/CMakeFiles/temos_tsl2ltl.dir/TlsfExporter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
