file(REMOVE_RECURSE
  "CMakeFiles/temos_tsl2ltl.dir/Alphabet.cpp.o"
  "CMakeFiles/temos_tsl2ltl.dir/Alphabet.cpp.o.d"
  "CMakeFiles/temos_tsl2ltl.dir/TlsfExporter.cpp.o"
  "CMakeFiles/temos_tsl2ltl.dir/TlsfExporter.cpp.o.d"
  "libtemos_tsl2ltl.a"
  "libtemos_tsl2ltl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_tsl2ltl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
