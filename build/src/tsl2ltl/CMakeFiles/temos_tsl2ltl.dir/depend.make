# Empty dependencies file for temos_tsl2ltl.
# This may be replaced when dependencies are built.
