# CMake generated Testfile for 
# Source directory: /root/repo/src/tsl2ltl
# Build directory: /root/repo/build/src/tsl2ltl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
