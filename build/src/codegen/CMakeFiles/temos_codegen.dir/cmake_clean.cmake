file(REMOVE_RECURSE
  "CMakeFiles/temos_codegen.dir/CodeEmitter.cpp.o"
  "CMakeFiles/temos_codegen.dir/CodeEmitter.cpp.o.d"
  "CMakeFiles/temos_codegen.dir/Interpreter.cpp.o"
  "CMakeFiles/temos_codegen.dir/Interpreter.cpp.o.d"
  "CMakeFiles/temos_codegen.dir/TraceChecker.cpp.o"
  "CMakeFiles/temos_codegen.dir/TraceChecker.cpp.o.d"
  "libtemos_codegen.a"
  "libtemos_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
