# Empty compiler generated dependencies file for temos_codegen.
# This may be replaced when dependencies are built.
