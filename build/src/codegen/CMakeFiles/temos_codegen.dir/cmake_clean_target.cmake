file(REMOVE_RECURSE
  "libtemos_codegen.a"
)
