file(REMOVE_RECURSE
  "libtemos_game.a"
)
