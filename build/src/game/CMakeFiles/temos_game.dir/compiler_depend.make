# Empty compiler generated dependencies file for temos_game.
# This may be replaced when dependencies are built.
