file(REMOVE_RECURSE
  "CMakeFiles/temos_game.dir/BoundedSynthesis.cpp.o"
  "CMakeFiles/temos_game.dir/BoundedSynthesis.cpp.o.d"
  "libtemos_game.a"
  "libtemos_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
