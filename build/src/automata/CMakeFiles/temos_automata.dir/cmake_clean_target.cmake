file(REMOVE_RECURSE
  "libtemos_automata.a"
)
