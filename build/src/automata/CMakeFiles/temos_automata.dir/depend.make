# Empty dependencies file for temos_automata.
# This may be replaced when dependencies are built.
