file(REMOVE_RECURSE
  "CMakeFiles/temos_automata.dir/Nba.cpp.o"
  "CMakeFiles/temos_automata.dir/Nba.cpp.o.d"
  "CMakeFiles/temos_automata.dir/Tableau.cpp.o"
  "CMakeFiles/temos_automata.dir/Tableau.cpp.o.d"
  "libtemos_automata.a"
  "libtemos_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
