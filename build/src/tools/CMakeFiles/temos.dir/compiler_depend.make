# Empty compiler generated dependencies file for temos.
# This may be replaced when dependencies are built.
