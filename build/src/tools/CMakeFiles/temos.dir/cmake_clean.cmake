file(REMOVE_RECURSE
  "CMakeFiles/temos.dir/temos.cpp.o"
  "CMakeFiles/temos.dir/temos.cpp.o.d"
  "temos"
  "temos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
