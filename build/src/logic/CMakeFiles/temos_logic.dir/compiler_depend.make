# Empty compiler generated dependencies file for temos_logic.
# This may be replaced when dependencies are built.
