
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/Formula.cpp" "src/logic/CMakeFiles/temos_logic.dir/Formula.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Formula.cpp.o.d"
  "/root/repo/src/logic/Parser.cpp" "src/logic/CMakeFiles/temos_logic.dir/Parser.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Parser.cpp.o.d"
  "/root/repo/src/logic/Simplify.cpp" "src/logic/CMakeFiles/temos_logic.dir/Simplify.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Simplify.cpp.o.d"
  "/root/repo/src/logic/Specification.cpp" "src/logic/CMakeFiles/temos_logic.dir/Specification.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Specification.cpp.o.d"
  "/root/repo/src/logic/Term.cpp" "src/logic/CMakeFiles/temos_logic.dir/Term.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Term.cpp.o.d"
  "/root/repo/src/logic/Traversal.cpp" "src/logic/CMakeFiles/temos_logic.dir/Traversal.cpp.o" "gcc" "src/logic/CMakeFiles/temos_logic.dir/Traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
