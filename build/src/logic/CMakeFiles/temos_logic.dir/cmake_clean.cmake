file(REMOVE_RECURSE
  "CMakeFiles/temos_logic.dir/Formula.cpp.o"
  "CMakeFiles/temos_logic.dir/Formula.cpp.o.d"
  "CMakeFiles/temos_logic.dir/Parser.cpp.o"
  "CMakeFiles/temos_logic.dir/Parser.cpp.o.d"
  "CMakeFiles/temos_logic.dir/Simplify.cpp.o"
  "CMakeFiles/temos_logic.dir/Simplify.cpp.o.d"
  "CMakeFiles/temos_logic.dir/Specification.cpp.o"
  "CMakeFiles/temos_logic.dir/Specification.cpp.o.d"
  "CMakeFiles/temos_logic.dir/Term.cpp.o"
  "CMakeFiles/temos_logic.dir/Term.cpp.o.d"
  "CMakeFiles/temos_logic.dir/Traversal.cpp.o"
  "CMakeFiles/temos_logic.dir/Traversal.cpp.o.d"
  "libtemos_logic.a"
  "libtemos_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
