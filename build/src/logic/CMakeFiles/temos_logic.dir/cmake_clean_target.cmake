file(REMOVE_RECURSE
  "libtemos_logic.a"
)
