file(REMOVE_RECURSE
  "CMakeFiles/temos_benchmarks.dir/Benchmarks.cpp.o"
  "CMakeFiles/temos_benchmarks.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/temos_benchmarks.dir/Runner.cpp.o"
  "CMakeFiles/temos_benchmarks.dir/Runner.cpp.o.d"
  "libtemos_benchmarks.a"
  "libtemos_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
