# Empty compiler generated dependencies file for temos_benchmarks.
# This may be replaced when dependencies are built.
