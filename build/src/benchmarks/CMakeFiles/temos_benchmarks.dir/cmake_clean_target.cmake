file(REMOVE_RECURSE
  "libtemos_benchmarks.a"
)
