# Empty compiler generated dependencies file for temos_sygus.
# This may be replaced when dependencies are built.
