file(REMOVE_RECURSE
  "libtemos_sygus.a"
)
