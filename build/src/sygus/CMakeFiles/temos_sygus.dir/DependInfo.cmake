
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sygus/Grammar.cpp" "src/sygus/CMakeFiles/temos_sygus.dir/Grammar.cpp.o" "gcc" "src/sygus/CMakeFiles/temos_sygus.dir/Grammar.cpp.o.d"
  "/root/repo/src/sygus/Program.cpp" "src/sygus/CMakeFiles/temos_sygus.dir/Program.cpp.o" "gcc" "src/sygus/CMakeFiles/temos_sygus.dir/Program.cpp.o.d"
  "/root/repo/src/sygus/SygusSolver.cpp" "src/sygus/CMakeFiles/temos_sygus.dir/SygusSolver.cpp.o" "gcc" "src/sygus/CMakeFiles/temos_sygus.dir/SygusSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/theory/CMakeFiles/temos_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
