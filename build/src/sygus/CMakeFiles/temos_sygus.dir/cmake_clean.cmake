file(REMOVE_RECURSE
  "CMakeFiles/temos_sygus.dir/Grammar.cpp.o"
  "CMakeFiles/temos_sygus.dir/Grammar.cpp.o.d"
  "CMakeFiles/temos_sygus.dir/Program.cpp.o"
  "CMakeFiles/temos_sygus.dir/Program.cpp.o.d"
  "CMakeFiles/temos_sygus.dir/SygusSolver.cpp.o"
  "CMakeFiles/temos_sygus.dir/SygusSolver.cpp.o.d"
  "libtemos_sygus.a"
  "libtemos_sygus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_sygus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
