file(REMOVE_RECURSE
  "CMakeFiles/temos_core.dir/AssumptionCore.cpp.o"
  "CMakeFiles/temos_core.dir/AssumptionCore.cpp.o.d"
  "CMakeFiles/temos_core.dir/AssumptionGenerator.cpp.o"
  "CMakeFiles/temos_core.dir/AssumptionGenerator.cpp.o.d"
  "CMakeFiles/temos_core.dir/ConsistencyChecker.cpp.o"
  "CMakeFiles/temos_core.dir/ConsistencyChecker.cpp.o.d"
  "CMakeFiles/temos_core.dir/Decomposition.cpp.o"
  "CMakeFiles/temos_core.dir/Decomposition.cpp.o.d"
  "CMakeFiles/temos_core.dir/Synthesizer.cpp.o"
  "CMakeFiles/temos_core.dir/Synthesizer.cpp.o.d"
  "libtemos_core.a"
  "libtemos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
