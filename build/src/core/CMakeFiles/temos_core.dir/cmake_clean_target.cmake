file(REMOVE_RECURSE
  "libtemos_core.a"
)
