# Empty dependencies file for temos_core.
# This may be replaced when dependencies are built.
