file(REMOVE_RECURSE
  "CMakeFiles/temos_support.dir/Rational.cpp.o"
  "CMakeFiles/temos_support.dir/Rational.cpp.o.d"
  "CMakeFiles/temos_support.dir/StringUtils.cpp.o"
  "CMakeFiles/temos_support.dir/StringUtils.cpp.o.d"
  "libtemos_support.a"
  "libtemos_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
