# Empty dependencies file for temos_support.
# This may be replaced when dependencies are built.
