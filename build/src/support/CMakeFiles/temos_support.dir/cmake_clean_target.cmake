file(REMOVE_RECURSE
  "libtemos_support.a"
)
