
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/CongruenceClosure.cpp" "src/theory/CMakeFiles/temos_theory.dir/CongruenceClosure.cpp.o" "gcc" "src/theory/CMakeFiles/temos_theory.dir/CongruenceClosure.cpp.o.d"
  "/root/repo/src/theory/Evaluator.cpp" "src/theory/CMakeFiles/temos_theory.dir/Evaluator.cpp.o" "gcc" "src/theory/CMakeFiles/temos_theory.dir/Evaluator.cpp.o.d"
  "/root/repo/src/theory/LinearExpr.cpp" "src/theory/CMakeFiles/temos_theory.dir/LinearExpr.cpp.o" "gcc" "src/theory/CMakeFiles/temos_theory.dir/LinearExpr.cpp.o.d"
  "/root/repo/src/theory/Simplex.cpp" "src/theory/CMakeFiles/temos_theory.dir/Simplex.cpp.o" "gcc" "src/theory/CMakeFiles/temos_theory.dir/Simplex.cpp.o.d"
  "/root/repo/src/theory/SmtSolver.cpp" "src/theory/CMakeFiles/temos_theory.dir/SmtSolver.cpp.o" "gcc" "src/theory/CMakeFiles/temos_theory.dir/SmtSolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/temos_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/temos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
