# Empty compiler generated dependencies file for temos_theory.
# This may be replaced when dependencies are built.
