file(REMOVE_RECURSE
  "CMakeFiles/temos_theory.dir/CongruenceClosure.cpp.o"
  "CMakeFiles/temos_theory.dir/CongruenceClosure.cpp.o.d"
  "CMakeFiles/temos_theory.dir/Evaluator.cpp.o"
  "CMakeFiles/temos_theory.dir/Evaluator.cpp.o.d"
  "CMakeFiles/temos_theory.dir/LinearExpr.cpp.o"
  "CMakeFiles/temos_theory.dir/LinearExpr.cpp.o.d"
  "CMakeFiles/temos_theory.dir/Simplex.cpp.o"
  "CMakeFiles/temos_theory.dir/Simplex.cpp.o.d"
  "CMakeFiles/temos_theory.dir/SmtSolver.cpp.o"
  "CMakeFiles/temos_theory.dir/SmtSolver.cpp.o.d"
  "libtemos_theory.a"
  "libtemos_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temos_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
