file(REMOVE_RECURSE
  "libtemos_theory.a"
)
