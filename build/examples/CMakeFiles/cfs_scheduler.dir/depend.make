# Empty dependencies file for cfs_scheduler.
# This may be replaced when dependencies are built.
