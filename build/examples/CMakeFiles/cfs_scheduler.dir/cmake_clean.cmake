file(REMOVE_RECURSE
  "CMakeFiles/cfs_scheduler.dir/cfs_scheduler.cpp.o"
  "CMakeFiles/cfs_scheduler.dir/cfs_scheduler.cpp.o.d"
  "cfs_scheduler"
  "cfs_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfs_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
