# Empty compiler generated dependencies file for cfs_scheduler.
# This may be replaced when dependencies are built.
