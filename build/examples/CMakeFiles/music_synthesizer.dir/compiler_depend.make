# Empty compiler generated dependencies file for music_synthesizer.
# This may be replaced when dependencies are built.
