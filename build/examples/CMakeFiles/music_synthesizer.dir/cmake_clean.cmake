file(REMOVE_RECURSE
  "CMakeFiles/music_synthesizer.dir/music_synthesizer.cpp.o"
  "CMakeFiles/music_synthesizer.dir/music_synthesizer.cpp.o.d"
  "music_synthesizer"
  "music_synthesizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_synthesizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
