file(REMOVE_RECURSE
  "CMakeFiles/pong_game.dir/pong_game.cpp.o"
  "CMakeFiles/pong_game.dir/pong_game.cpp.o.d"
  "pong_game"
  "pong_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pong_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
