# Empty dependencies file for pong_game.
# This may be replaced when dependencies are built.
