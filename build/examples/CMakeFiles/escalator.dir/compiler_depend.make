# Empty compiler generated dependencies file for escalator.
# This may be replaced when dependencies are built.
