file(REMOVE_RECURSE
  "CMakeFiles/escalator.dir/escalator.cpp.o"
  "CMakeFiles/escalator.dir/escalator.cpp.o.d"
  "escalator"
  "escalator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escalator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
