#!/usr/bin/env bash
# Full CI ladder: tier-1 build + ctest, ThreadSanitizer on the
# concurrency-sensitive tests, and a bounded differential-fuzz sweep.
# Fails on the first broken rung. See docs/TESTING.md for the tier map.
#
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier 1: build + ctest =="
cmake -B "$BUILD_DIR" -S . -G Ninja >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== bench smoke: incremental-engine reuse + perf gate =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
TEMOS_BIN="$(cd "$BUILD_DIR" && pwd)/src/tools/temos"
(cd "$SMOKE_DIR" &&
  "$TEMOS_BIN" --benchmark Vibrato --repeat 2 --bench-json >/dev/null)
python3 scripts/check_bench_json.py "$SMOKE_DIR/BENCH_Vibrato.json" \
  bench/baselines/BENCH_Vibrato.baseline.json

echo "== degraded path: injected hang must trip the deadline =="
# A planted non-terminating SyGuS search under a 2s budget: the CLI must
# come back with the resource-exhausted exit code (4), a degraded bench
# record carrying failure entries, and a replayable artifact. timeout(1)
# at 30s is the backstop for a deadline regression that hangs outright.
DEGRADED_DIR="$SMOKE_DIR/degraded"
mkdir -p "$DEGRADED_DIR"
set +e
(cd "$DEGRADED_DIR" &&
  timeout 30 "$TEMOS_BIN" --benchmark Vibrato --time-budget 2 \
    --inject-fault=spin-hang --artifacts artifacts --bench-json \
    >/dev/null 2>&1)
DEGRADED_EXIT=$?
set -e
if [ "$DEGRADED_EXIT" -ne 4 ]; then
  echo "degraded run exited $DEGRADED_EXIT, expected 4 (resource exhausted)"
  exit 1
fi
test -f "$DEGRADED_DIR/artifacts/temos-artifact-Vibrato.tslmt"
python3 scripts/check_bench_json.py --expect-status=unknown \
  "$DEGRADED_DIR/BENCH_Vibrato.json"
set +e
"$BUILD_DIR/src/tools/temos-fuzz" \
  --replay "$DEGRADED_DIR/artifacts/temos-artifact-Vibrato.tslmt" >/dev/null
REPLAY_EXIT=$?
set -e
if [ "$REPLAY_EXIT" -ne 1 ]; then
  echo "artifact replay exited $REPLAY_EXIT, expected 1 (reproduces)"
  exit 1
fi

echo "== tier 5: ThreadSanitizer on the solver-service tests =="
scripts/run_tsan.sh

echo "== tier 3: differential fuzz sweep (500 iterations/oracle) =="
"$BUILD_DIR/src/tools/temos-fuzz" --seed "${TEMOS_SEED:-1}" --iters 500

echo "CI ladder green."
