#!/usr/bin/env bash
# Full CI ladder: tier-1 build + ctest, ThreadSanitizer on the
# concurrency-sensitive tests, and a bounded differential-fuzz sweep.
# Fails on the first broken rung. See docs/TESTING.md for the tier map.
#
# Usage: scripts/ci.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier 1: build + ctest =="
cmake -B "$BUILD_DIR" -S . -G Ninja >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== bench smoke: incremental-engine reuse + perf gate =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
TEMOS_BIN="$(cd "$BUILD_DIR" && pwd)/src/tools/temos"
(cd "$SMOKE_DIR" &&
  "$TEMOS_BIN" --benchmark Vibrato --repeat 2 --bench-json >/dev/null)
python3 scripts/check_bench_json.py "$SMOKE_DIR/BENCH_Vibrato.json" \
  bench/baselines/BENCH_Vibrato.baseline.json

echo "== tier 5: ThreadSanitizer on the solver-service tests =="
scripts/run_tsan.sh

echo "== tier 3: differential fuzz sweep (500 iterations/oracle) =="
"$BUILD_DIR/src/tools/temos-fuzz" --seed "${TEMOS_SEED:-1}" --iters 500

echo "CI ladder green."
