#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs
# them. The solver-service layer (SolverPool, QueryCache, the parallel
# consistency checker and per-obligation SyGuS fan-out) is where data
# races would live, so this drives the tests that exercise it with
# multiple pool workers.
#
# Usage: scripts/run_tsan.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# TSan costs ~10-20x wall clock, so the per-test timeout backstop gets
# a matching raise; it still catches an outright hang.
cmake -B "$BUILD_DIR" -S . -DTEMOS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTEMOS_TEST_TIMEOUT=3600
cmake --build "$BUILD_DIR" -j"$(nproc)" --target test_support test_core

# halt_on_error keeps a race from scrolling past; second_deadlock_stack
# makes lock-order reports actionable.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

(cd "$BUILD_DIR" && ctest --output-on-failure \
    -R "QueryCache|ParallelConsistency|PipelineValidate")

echo "TSan run clean."
