#!/bin/sh
# Regenerates the canonical measured outputs checked into the repo root:
# test_output.txt (ctest), bench_output.txt (bench binaries), and
# examples_output.txt (runnable examples).
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build
ctest --test-dir build --timeout 600 2>&1 | tee test_output.txt
{ for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] && "$b"
  done; } 2>&1 | tee bench_output.txt
{ for e in build/examples/*; do
    [ -f "$e" ] && [ -x "$e" ] && "$e"
  done; } 2>&1 | tee examples_output.txt
