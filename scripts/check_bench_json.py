#!/usr/bin/env python3
"""Validate a temos-bench-v1 record and gate on perf regressions.

Usage: check_bench_json.py [--expect-status=STATUS] CURRENT.json [BASELINE.json]

Checks that CURRENT.json has the temos-bench-v1 shape, that the run had
the expected status (realizable by default), and -- when the record
carries a "repeat" object -- that the incremental engine's cross-run
reuse actually fired (nba_cache.hits > 0 and no slower game phase than
the cold run).

Every record carries a "failures" array (empty on a clean run). A
realizable run must have no failures; with --expect-status=unknown the
run must instead carry at least one structured failure record (that is
the degraded-path contract: a budget-exhausted run never comes back
empty-handed about why).

With BASELINE.json, also fails if the current synthesis wall time
regresses by more than 25% against the baseline. Timings below a 0.25s
floor are never compared: at that scale the noise dwarfs the signal, so
a freshly recorded tiny baseline can't flake the gate.
"""

import json
import sys

REGRESSION_SLACK = 1.25
FLOOR_SECONDS = 0.25

REQUIRED_KEYS = [
    "schema", "name", "status", "jobs", "cache", "spec", "phases",
    "refinements", "reactive_runs", "game_states", "smt_cache",
    "nba_cache", "expansion_cache", "reactive", "failures",
    "machine_states", "js_loc",
]
PHASE_KEYS = ["psi_gen_wall_s", "psi_gen_cpu_s", "synthesis_wall_s",
              "synthesis_cpu_s"]
REACTIVE_KEYS = ["round", "status", "bound", "nba_cache_hit",
                 "arena_states_reused", "game_states", "nba_wall_s",
                 "game_wall_s"]
FAILURE_KEYS = ["kind", "phase", "detail"]
FAILURE_KINDS = ["timeout", "state-budget", "overflow", "worker-exception",
                 "internal"]


def fail(message):
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_failures(doc, expect_status):
    failures = doc.get("failures")
    if not isinstance(failures, list):
        fail("failures missing or not a list")
    for entry in failures:
        for key in FAILURE_KEYS:
            if not isinstance(entry.get(key), str):
                fail(f"failure entry missing string {key!r}: {entry!r}")
        if entry["kind"] not in FAILURE_KINDS:
            fail(f"unknown failure kind {entry['kind']!r}")
        if not entry["detail"]:
            fail("failure entry has an empty detail")
    if expect_status == "realizable" and failures:
        fail(f"realizable run carries {len(failures)} failure record(s)")
    if expect_status == "unknown" and not failures:
        fail("unknown run carries no failure records: the degraded path "
             "must say why it gave up")


def check_shape(doc, expect_status="realizable"):
    if doc.get("schema") != "temos-bench-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    for key in REQUIRED_KEYS:
        if key not in doc:
            fail(f"missing key {key!r}")
    for key in PHASE_KEYS:
        if not isinstance(doc["phases"].get(key), (int, float)):
            fail(f"phases.{key} missing or not a number")
    if not isinstance(doc["reactive"], list):
        fail("reactive array missing")
    # A degraded run may never have reached the reactive phase; a
    # realizable one must have.
    if expect_status == "realizable" and not doc["reactive"]:
        fail("reactive array empty")
    for entry in doc["reactive"]:
        for key in REACTIVE_KEYS:
            if key not in entry:
                fail(f"reactive entry missing {key!r}")
    check_failures(doc, expect_status)
    if doc["status"] != expect_status:
        fail(f"run was {doc['status']}, expected {expect_status}")


def check_repeat(doc):
    repeat = doc.get("repeat")
    if repeat is None:
        return
    if repeat["nba_cache"]["hits"] < 1:
        fail("repeat run had no NBA cache hits: incremental reuse is dead")
    if not all(r["nba_cache_hit"] for r in repeat["reactive"]):
        fail("a repeat reactive invocation missed the NBA cache")
    cold = sum(r["game_wall_s"] for r in doc["reactive"])
    warm = sum(r["game_wall_s"] for r in repeat["reactive"])
    if cold >= FLOOR_SECONDS and warm > cold * REGRESSION_SLACK:
        fail(f"repeat game phase slower than cold run "
             f"({warm:.3f}s vs {cold:.3f}s)")


def check_baseline(doc, baseline):
    current = doc["phases"]["synthesis_wall_s"]
    reference = baseline["phases"]["synthesis_wall_s"]
    if max(current, reference) < FLOOR_SECONDS:
        print(f"check_bench_json: baseline compare skipped "
              f"({current:.3f}s vs {reference:.3f}s, below "
              f"{FLOOR_SECONDS}s floor)")
        return
    if current > max(reference * REGRESSION_SLACK, FLOOR_SECONDS):
        fail(f"synthesis wall time regressed: {current:.3f}s vs "
             f"baseline {reference:.3f}s "
             f"(limit {REGRESSION_SLACK:.2f}x)")
    print(f"check_bench_json: perf ok ({current:.3f}s vs "
          f"baseline {reference:.3f}s)")


def main(argv):
    expect_status = "realizable"
    positional = []
    for arg in argv[1:]:
        if arg.startswith("--expect-status="):
            expect_status = arg.split("=", 1)[1]
            if expect_status not in ("realizable", "unrealizable", "unknown"):
                fail(f"bad --expect-status value {expect_status!r}")
        else:
            positional.append(arg)
    if len(positional) not in (1, 2):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(positional[0]) as handle:
        doc = json.load(handle)
    check_shape(doc, expect_status)
    check_repeat(doc)
    if len(positional) == 2:
        with open(positional[1]) as handle:
            baseline = json.load(handle)
        check_shape(baseline)
        check_baseline(doc, baseline)
    print(f"check_bench_json: {doc['name']} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
