#!/usr/bin/env python3
"""Validate a temos-bench-v1 record and gate on perf regressions.

Usage: check_bench_json.py CURRENT.json [BASELINE.json]

Checks that CURRENT.json has the temos-bench-v1 shape, that the run was
realizable, and -- when the record carries a "repeat" object -- that the
incremental engine's cross-run reuse actually fired (nba_cache.hits > 0
and no slower game phase than the cold run).

With BASELINE.json, also fails if the current synthesis wall time
regresses by more than 25% against the baseline. Timings below a 0.25s
floor are never compared: at that scale the noise dwarfs the signal, so
a freshly recorded tiny baseline can't flake the gate.
"""

import json
import sys

REGRESSION_SLACK = 1.25
FLOOR_SECONDS = 0.25

REQUIRED_KEYS = [
    "schema", "name", "status", "jobs", "cache", "spec", "phases",
    "refinements", "reactive_runs", "game_states", "smt_cache",
    "nba_cache", "expansion_cache", "reactive", "machine_states", "js_loc",
]
PHASE_KEYS = ["psi_gen_wall_s", "psi_gen_cpu_s", "synthesis_wall_s",
              "synthesis_cpu_s"]
REACTIVE_KEYS = ["round", "status", "bound", "nba_cache_hit",
                 "arena_states_reused", "game_states", "nba_wall_s",
                 "game_wall_s"]


def fail(message):
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_shape(doc):
    if doc.get("schema") != "temos-bench-v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    for key in REQUIRED_KEYS:
        if key not in doc:
            fail(f"missing key {key!r}")
    for key in PHASE_KEYS:
        if not isinstance(doc["phases"].get(key), (int, float)):
            fail(f"phases.{key} missing or not a number")
    if not isinstance(doc["reactive"], list) or not doc["reactive"]:
        fail("reactive array missing or empty")
    for entry in doc["reactive"]:
        for key in REACTIVE_KEYS:
            if key not in entry:
                fail(f"reactive entry missing {key!r}")
    if doc["status"] != "realizable":
        fail(f"run was {doc['status']}, expected realizable")


def check_repeat(doc):
    repeat = doc.get("repeat")
    if repeat is None:
        return
    if repeat["nba_cache"]["hits"] < 1:
        fail("repeat run had no NBA cache hits: incremental reuse is dead")
    if not all(r["nba_cache_hit"] for r in repeat["reactive"]):
        fail("a repeat reactive invocation missed the NBA cache")
    cold = sum(r["game_wall_s"] for r in doc["reactive"])
    warm = sum(r["game_wall_s"] for r in repeat["reactive"])
    if cold >= FLOOR_SECONDS and warm > cold * REGRESSION_SLACK:
        fail(f"repeat game phase slower than cold run "
             f"({warm:.3f}s vs {cold:.3f}s)")


def check_baseline(doc, baseline):
    current = doc["phases"]["synthesis_wall_s"]
    reference = baseline["phases"]["synthesis_wall_s"]
    if max(current, reference) < FLOOR_SECONDS:
        print(f"check_bench_json: baseline compare skipped "
              f"({current:.3f}s vs {reference:.3f}s, below "
              f"{FLOOR_SECONDS}s floor)")
        return
    if current > max(reference * REGRESSION_SLACK, FLOOR_SECONDS):
        fail(f"synthesis wall time regressed: {current:.3f}s vs "
             f"baseline {reference:.3f}s "
             f"(limit {REGRESSION_SLACK:.2f}x)")
    print(f"check_bench_json: perf ok ({current:.3f}s vs "
          f"baseline {reference:.3f}s)")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1]) as handle:
        doc = json.load(handle)
    check_shape(doc)
    check_repeat(doc)
    if len(argv) == 3:
        with open(argv[2]) as handle:
            baseline = json.load(handle)
        check_shape(baseline)
        check_baseline(doc, baseline)
    print(f"check_bench_json: {doc['name']} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
