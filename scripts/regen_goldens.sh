#!/usr/bin/env bash
# Regenerates the golden-file corpus under tests/golden/ from the bundled
# benchmarks. Run after an intentional change to assumption generation or
# the summary format, review the diff, and commit the result:
#
#   scripts/regen_goldens.sh [path/to/temos]
#
# Summaries are normalized: wall/cpu timings vary per run and are
# replaced by <T>s. Everything else (status, counts, machine size,
# assumption text) is expected to be byte-stable; GoldenFileTest fails
# when it drifts.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TEMOS="${1:-$REPO_ROOT/build/src/tools/temos}"
OUT_DIR="$REPO_ROOT/tests/golden"

if [ ! -x "$TEMOS" ]; then
  echo "error: temos binary not found at $TEMOS (build first or pass a path)" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"

normalize_summary() {
  sed -E 's/[0-9]+\.[0-9]+s/<T>s/g'
}

slugify() {
  echo "$1" | tr 'A-Z' 'a-z' | tr ' -' '__'
}

"$TEMOS" --list | sed 's/ *(.*//' | while IFS= read -r NAME; do
  SLUG="$(slugify "$NAME")"
  echo "regenerating $SLUG (benchmark '$NAME')"
  "$TEMOS" --benchmark "$NAME" --emit=assumptions \
    > "$OUT_DIR/$SLUG.assumptions.golden"
  "$TEMOS" --benchmark "$NAME" --emit=summary | normalize_summary \
    > "$OUT_DIR/$SLUG.summary.golden"
done

echo "done: $(ls "$OUT_DIR" | grep -c '\.golden$') golden files in $OUT_DIR"
