//===- examples/pong_game.cpp - Pong with a synthesized paddle ------------===//
///
/// \file
/// The Pong benchmark family as a runnable game: the paddle controller
/// is synthesized from the Single-Player TSL-MT specification, then
/// plays against a scripted ball. The specification's guarantees are
/// monitored on the recorded trace (never retreat while chasing; from a
/// chasing position, eventually reach the top of the court or catch up)
/// and an ASCII rendering of the rally is printed.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"
#include "codegen/Interpreter.h"
#include "codegen/TraceChecker.h"

#include <cstdio>

using namespace temos;

int main() {
  const BenchmarkSpec *B = findBenchmark("Single-Player");
  if (!B)
    return 1;

  BenchmarkRun Run = runBenchmark(*B);
  if (Run.Row.Status != Realizability::Realizable) {
    std::fprintf(stderr, "pong synthesis failed\n");
    return 1;
  }
  std::printf("Pong paddle synthesized in %.3fs (%zu machine states)\n\n",
              Run.Row.SumSeconds, Run.Result.Machine->stateCount());

  Controller C(*Run.Result.Machine, Run.Result.AB, Run.Spec);
  Trace T;

  // The ball bounces between rows 0 and 9.
  auto BallAt = [](size_t Tick) -> int64_t {
    size_t Phase = Tick % 18;
    return Phase < 9 ? static_cast<int64_t>(Phase)
                     : static_cast<int64_t>(18 - Phase);
  };

  size_t RetreatMoves = 0;
  size_t ChaseResolved = 0, ChaseStarted = 0;
  std::printf("=== Rally (b = ball, P = paddle, X = both) ===\n");
  for (size_t Tick = 0; Tick < 48; ++Tick) {
    int64_t Ball = BallAt(Tick);
    int64_t PaddleBefore = C.cell("paddle").getNumber().numerator();
    auto Outcome = C.step({{"ball", Value::integer(Ball)}});
    if (!Outcome) {
      std::fprintf(stderr, "evaluation failed at tick %zu\n", Tick);
      return 1;
    }
    T.append(Run.Result.AB, *Outcome);
    int64_t Paddle = C.cell("paddle").getNumber().numerator();

    // The spec's safety guarantee: while chasing upward, never retreat.
    if (PaddleBefore < Ball && Paddle < PaddleBefore)
      ++RetreatMoves;
    // The liveness milestone: a chase resolves by catching up or by
    // reaching the top of the court.
    if (PaddleBefore < Ball)
      ++ChaseStarted;
    if (PaddleBefore < Ball && (Paddle >= Ball || Paddle >= 9))
      ++ChaseResolved;

    if (Tick < 24) {
      char Row[12];
      for (int I = 0; I < 10; ++I)
        Row[I] = '.';
      Row[10] = 0;
      Row[Ball] = 'b';
      if (Paddle >= 0 && Paddle < 10)
        Row[Paddle] = Row[Paddle] == 'b' ? 'X' : 'P';
      std::printf("  %2zu |%s|\n", Tick, Row);
    }
  }

  // Monitor every G-wrapped guarantee on the recorded trace.
  size_t Violations = 0;
  for (const Formula *G : Run.Spec.AlwaysGuarantees)
    if (!T.noViolation(Run.Ctx->Formulas.globally(G))) {
      std::printf("VIOLATED: G %s\n", G->str().c_str());
      ++Violations;
    }

  std::printf("\nretreats while chasing: %zu; chase steps resolved: "
              "%zu/%zu; guarantee violations on trace: %zu\n",
              RetreatMoves, ChaseResolved, ChaseStarted, Violations);
  // The synthesized strategy may simply stay ahead of the ball for the
  // whole rally (no chase ever starts) -- that satisfies the spec too.
  bool Ok = RetreatMoves == 0 && Violations == 0 &&
            (ChaseStarted == 0 || ChaseResolved > 0);
  std::printf("%s\n", Ok ? "Pong case study PASSED" : "Pong case study FAILED");
  return Ok ? 0 : 1;
}
