//===- examples/escalator.cpp - Smart escalator, monitored ----------------===//
///
/// \file
/// The Escalator family's "Smart" benchmark as a runnable scenario: the
/// synthesized controller drives the motor from rider requests and an
/// idle timer (five quiet steps park the escalator). A day of simulated
/// traffic is replayed -- rush hour, a quiet spell long enough to park,
/// a lone late rider -- and the recorded trace is checked against every
/// guarantee with the trace monitor.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"
#include "codegen/Interpreter.h"
#include "codegen/TraceChecker.h"

#include <cstdio>

using namespace temos;

int main() {
  const BenchmarkSpec *B = findBenchmark("Smart");
  if (!B)
    return 1;

  BenchmarkRun Run = runBenchmark(*B);
  if (Run.Row.Status != Realizability::Realizable) {
    std::fprintf(stderr, "escalator synthesis failed\n");
    return 1;
  }
  std::printf("Smart escalator synthesized in %.3fs "
              "(%zu machine states, |psi| = %zu)\n\n",
              Run.Row.SumSeconds, Run.Result.Machine->stateCount(),
              Run.Row.AssumptionCount);

  Controller C(*Run.Result.Machine, Run.Result.AB, Run.Spec);
  Trace T;

  // Traffic script: rush (0-9), quiet (10-24), one late rider (25),
  // quiet again (26-39).
  auto RequestAt = [](size_t Tick) {
    return Tick < 10 || Tick == 25;
  };

  size_t MotorOnDuringRequests = 0, Requests = 0;
  size_t ParkedAfterTimeout = 0, DeepIdleTicks = 0;
  std::printf("=== Day replay (tick: request -> motor, idle) ===\n");
  for (size_t Tick = 0; Tick < 40; ++Tick) {
    bool Request = RequestAt(Tick);
    // The spec's guards read the idle timer *before* the step's update.
    int64_t IdleBefore = C.cell("idle").getNumber().numerator();
    auto Outcome = C.step({{"request", Value::boolean(Request)}});
    if (!Outcome) {
      std::fprintf(stderr, "evaluation failed at tick %zu\n", Tick);
      return 1;
    }
    T.append(Run.Result.AB, *Outcome);
    int64_t Motor = C.cell("motor").getNumber().numerator();
    int64_t Idle = C.cell("idle").getNumber().numerator();

    Requests += Request;
    MotorOnDuringRequests += Request && Motor == 1;
    if (IdleBefore >= 5 && !Request) {
      ++DeepIdleTicks;
      ParkedAfterTimeout += Motor == 0;
    }
    (void)Idle;

    if (Tick < 14 || (Tick >= 24 && Tick < 30))
      std::printf("  %2zu: %-7s -> motor=%lld idle=%lld\n", Tick,
                  Request ? "request" : "quiet", Motor, Idle);
  }

  // Monitor the specification on the recorded trace.
  size_t Violations = 0;
  for (const Formula *G : Run.Spec.AlwaysGuarantees)
    if (!T.noViolation(Run.Ctx->Formulas.globally(G))) {
      std::printf("VIOLATED: G %s\n", G->str().c_str());
      ++Violations;
    }
  for (const Formula *G : Run.Spec.Guarantees)
    if (!T.noViolation(G)) {
      std::printf("VIOLATED: %s\n", G->str().c_str());
      ++Violations;
    }

  std::printf("\nmotor on for %zu/%zu request ticks; parked on %zu/%zu "
              "deep-idle ticks; trace violations: %zu\n",
              MotorOnDuringRequests, Requests, ParkedAfterTimeout,
              DeepIdleTicks, Violations);
  bool Ok = MotorOnDuringRequests == Requests &&
            ParkedAfterTimeout == DeepIdleTicks && DeepIdleTicks > 0 &&
            Violations == 0;
  std::printf("%s\n",
              Ok ? "Escalator case study PASSED" : "Escalator case study FAILED");
  return Ok ? 0 : 1;
}
