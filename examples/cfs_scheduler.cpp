//===- examples/cfs_scheduler.cpp - The Sec. 5.4 case study ---------------===//
///
/// \file
/// The Linux Completely Fair Scheduler case study (Sec. 2 and 5.4):
/// synthesize the CFS controller from the Fig. 2 specification and run
/// it against a simulated task workload (standing in for the kernel's
/// enqueue_task/dequeue_task/task_tick hooks). The key CFS property is
/// checked empirically: the task with the lower virtual runtime is
/// always preferred, and with both tasks enqueued neither starves.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"
#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"

#include <cstdio>

using namespace temos;

int main() {
  const BenchmarkSpec *B = findBenchmark("CFS");
  if (!B)
    return 1;
  std::printf("=== CFS specification (Fig. 2) ===\n%s\n", B->Source);

  BenchmarkRun Run = runBenchmark(*B);
  if (Run.Row.Status != Realizability::Realizable) {
    std::fprintf(stderr, "CFS synthesis failed\n");
    return 1;
  }
  std::printf("synthesized in %.3fs (|psi| = %zu, %zu machine states, "
              "%zu LoC of generated code)\n\n",
              Run.Row.SumSeconds, Run.Row.AssumptionCount,
              Run.Result.Machine->stateCount(), Run.Row.SynthesizedLoc);

  Controller C(*Run.Result.Machine, Run.Result.AB, Run.Spec);

  // Workload: both tasks enqueued at tick 0; task1 dequeued during
  // [40, 50); re-enqueued afterwards.
  auto Inputs = [&](size_t Tick) {
    Assignment In;
    In["task1"] = Value::symbol("T1");
    In["task2"] = Value::symbol("T2");
    bool Deq1Window = Tick >= 40 && Tick < 50;
    In["enq1"] = Value::boolean(Tick == 0 || Tick == 50);
    In["enq2"] = Value::boolean(Tick == 0);
    In["deq1"] = Value::boolean(Tick == 40);
    In["deq2"] = Value::boolean(false);
    (void)Deq1Window;
    return In;
  };

  size_t ScheduledT1 = 0, ScheduledT2 = 0, Idle = 0;
  size_t T1WhileDequeued = 0;
  size_t WrongPick = 0;
  std::printf("=== Trace (first 12 ticks) ===\n");
  for (size_t Tick = 0; Tick < 200; ++Tick) {
    Rational Vr1 = C.cell("vr1").getNumber();
    Rational Vr2 = C.cell("vr2").getNumber();
    auto Outcome = C.step(Inputs(Tick));
    if (!Outcome) {
      std::fprintf(stderr, "evaluation failed at tick %zu\n", Tick);
      return 1;
    }
    const Value &Next = C.cell("next");
    bool PickedT1 = Next == Value::symbol("T1");
    bool PickedT2 = Next == Value::symbol("T2");
    ScheduledT1 += PickedT1;
    ScheduledT2 += PickedT2;
    Idle += !PickedT1 && !PickedT2;

    // Fairness invariant (Fig. 2's last two formulas): never schedule
    // the task with the strictly larger vruntime.
    if ((PickedT2 && Vr1 < Vr2) || (PickedT1 && Vr2 < Vr1))
      ++WrongPick;
    // Dequeue window: task1 must not be scheduled in [40, 50).
    if (PickedT1 && Tick >= 40 && Tick < 50)
      ++T1WhileDequeued;

    if (Tick < 12)
      std::printf("  tick %2zu: next=%-4s vr1=%-4s vr2=%-4s\n", Tick,
                  Next.str().c_str(), C.cell("vr1").str().c_str(),
                  C.cell("vr2").str().c_str());
  }

  std::printf("\n=== 200-tick summary ===\n");
  std::printf("  task1 scheduled: %zu\n", ScheduledT1);
  std::printf("  task2 scheduled: %zu\n", ScheduledT2);
  std::printf("  idle:            %zu\n", Idle);
  std::printf("  fairness violations (picked larger vruntime): %zu\n",
              WrongPick);
  std::printf("  task1 runs while dequeued: %zu\n", T1WhileDequeued);
  std::printf("  final vruntimes: vr1=%s vr2=%s\n",
              C.cell("vr1").str().c_str(), C.cell("vr2").str().c_str());

  bool Ok = WrongPick == 0 && T1WhileDequeued == 0 && ScheduledT1 > 10 &&
            ScheduledT2 > 10;
  std::printf("\n%s\n", Ok ? "CFS case study PASSED"
                           : "CFS case study FAILED");

  // The kernel integration artifact: C++ code in the style of the
  // paper's sched_class drop-in.
  std::string Cpp = emitCpp(*Run.Result.Machine, Run.Result.AB, Run.Spec);
  std::printf("\nGenerated C++ controller: %zu LoC "
              "(cf. the paper's cfs.c kernel patch)\n",
              countLines(Cpp));
  return Ok ? 0 : 1;
}
