//===- examples/music_synthesizer.cpp - The Sec. 5.3 case study -----------===//
///
/// \file
/// The music keyboard synthesizer case study (Sec. 5.3): synthesize the
/// vibrato controller from its TSL-MT specification (Fig. 5) and drive
/// it with a note stream standing in for the WebMIDI keyboard of the
/// paper's demo. The synthesized system must keep the LFO oscillating
/// around the frequency threshold: off while the frequency climbs to
/// c10(), on while it falls back -- producing the vibrato effect.
///
/// The paper runs the generated JavaScript on WebAudio; here the same
/// controller is executed natively and its JS rendering is printed, so
/// the output can be dropped into the paper's web harness unchanged.
///
//===----------------------------------------------------------------------===//

#include "benchmarks/Runner.h"
#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"

#include <cstdio>

using namespace temos;

namespace {

/// A few bars of "Autumn Leaves" (the tune of the paper's demo video),
/// as MIDI note numbers.
const int AutumnLeaves[] = {64, 69, 72, 76, 62, 67, 71, 74,
                            60, 65, 69, 72, 59, 62, 66, 71};

} // namespace

int main() {
  const BenchmarkSpec *B = findBenchmark("Vibrato");
  if (!B)
    return 1;
  std::printf("=== Vibrato specification (Fig. 5) ===\n%s\n", B->Source);

  BenchmarkRun Run = runBenchmark(*B);
  if (Run.Row.Status != Realizability::Realizable) {
    std::fprintf(stderr, "vibrato synthesis failed\n");
    return 1;
  }
  std::printf("synthesized in %.3fs (psi: %zu assumptions, %zu machine "
              "states)\n\n",
              Run.Row.SumSeconds, Run.Row.AssumptionCount,
              Run.Result.Machine->stateCount());

  // Play the tune: one controller step per note tick. The controller
  // needs no note input (the LFO runs autonomously), but we log the
  // note being played against the LFO state as the paper's demo does.
  Controller C(*Run.Result.Machine, Run.Result.AB, Run.Spec);
  std::printf("=== Playing (note | lfoFreq | lfo) ===\n");
  int LfoToggles = 0;
  bool LastLfo = false;
  Rational MinFreq(1000), MaxFreq(-1000);
  for (size_t Tick = 0; Tick < 64; ++Tick) {
    auto Outcome = C.step({});
    if (!Outcome) {
      std::fprintf(stderr, "evaluation failed at tick %zu\n", Tick);
      return 1;
    }
    bool Lfo = C.cell("lfo").getBool();
    const Rational &Freq = C.cell("lfoFreq").getNumber();
    if (Freq < MinFreq)
      MinFreq = Freq;
    if (MaxFreq < Freq)
      MaxFreq = Freq;
    if (Lfo != LastLfo)
      ++LfoToggles;
    LastLfo = Lfo;
    if (Tick < 16)
      std::printf("  note %3d | freq %5s | lfo %s\n",
                  AutumnLeaves[Tick % 16], Freq.str().c_str(),
                  Lfo ? "ON " : "off");
  }

  std::printf("\nLFO toggled %d times over 64 ticks; frequency ranged "
              "[%s, %s]\n",
              LfoToggles, MinFreq.str().c_str(), MaxFreq.str().c_str());

  // The vibrato property: the effect must keep oscillating (the Fig. 5
  // G F guarantees) and the frequency must stay in a band around the
  // threshold.
  if (LfoToggles < 2) {
    std::fprintf(stderr, "FAILED: LFO did not oscillate\n");
    return 1;
  }
  std::printf("\n=== Generated JavaScript (first 24 lines of %zu) ===\n",
              countLines(emitJavaScript(*Run.Result.Machine, Run.Result.AB,
                                        Run.Spec)));
  std::string Js =
      emitJavaScript(*Run.Result.Machine, Run.Result.AB, Run.Spec);
  size_t Printed = 0, Pos = 0;
  while (Printed < 24 && Pos < Js.size()) {
    size_t End = Js.find('\n', Pos);
    std::printf("%s\n", Js.substr(Pos, End - Pos).c_str());
    Pos = End + 1;
    ++Printed;
  }
  std::printf("...\n");
  return 0;
}
