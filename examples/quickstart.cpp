//===- examples/quickstart.cpp - temoscpp in five minutes -----------------===//
///
/// \file
/// The introduction's running example, end to end:
///
///   G ([x <- x + 1] || [x <- x - 1])      every step: inc or dec
///   G (x = 0 -> F (x = 2))                from 0, eventually reach 2
///
/// Plain TSL cannot realize this (+ and = are uninterpreted); TSL modulo
/// LIA can, once SyGuS supplies the assumption that two increments take
/// 0 to 2. This example runs the whole pipeline, prints the generated
/// assumptions, executes the synthesized controller, and prints the
/// generated JavaScript.
///
//===----------------------------------------------------------------------===//

#include "codegen/CodeEmitter.h"
#include "codegen/Interpreter.h"
#include "core/Synthesizer.h"
#include "logic/Parser.h"

#include <cstdio>

using namespace temos;

int main() {
  const char *Source = R"(
    #LIA#
    spec Counter
    cells { int x = 0; }
    always guarantee {
      [x <- x + 1] || [x <- x - 1];
      x = 0 -> F (x = 2);
    }
  )";

  Context Ctx;
  auto Spec = parseSpecification(Source, Ctx);
  if (!Spec) {
    std::fprintf(stderr, "parse error: %s\n", Spec.error().str().c_str());
    return 1;
  }

  std::printf("=== Specification (TSL modulo %s) ===\n%s\n",
              theoryName(Spec->Th), Spec->str().c_str());

  Synthesizer Synth(Ctx);
  PipelineResult R = Synth.run(*Spec);
  if (R.Status != Realizability::Realizable) {
    std::fprintf(stderr, "synthesis failed\n");
    return 1;
  }

  std::printf("=== Generated assumptions (psi) ===\n");
  for (const Formula *A : R.Assumptions)
    std::printf("  %s\n", A->str().c_str());
  std::printf("\npsi generation: %.3fs, reactive synthesis: %.3fs, "
              "machine states: %zu\n\n",
              R.Stats.PsiGenSeconds, R.Stats.SynthesisSeconds,
              R.Machine->stateCount());

  // Execute the synthesized controller: watch x travel from 0 to 2.
  std::printf("=== Execution trace ===\n");
  Controller C(*R.Machine, R.AB, *Spec);
  for (int Step = 0; Step < 8; ++Step) {
    auto Outcome = C.step({});
    if (!Outcome)
      break;
    std::printf("  step %d: x = %s (%s)\n", Step,
                C.cell("x").str().c_str(),
                Outcome->FiredUpdates[0]->str().c_str());
  }

  std::printf("\n=== Generated JavaScript (%zu LoC) ===\n",
              countLines(emitJavaScript(*R.Machine, R.AB, *Spec)));
  std::printf("%s", emitJavaScript(*R.Machine, R.AB, *Spec).c_str());
  return 0;
}
